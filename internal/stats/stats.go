// Package stats provides the small statistical toolkit the evaluation
// needs: min/mean/max summaries, discrete distributions and the
// Bhattacharyya coefficient the paper uses to quantify the similarity of
// error-signature histograms (Section III-A, citing Aherne et al.).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary is a [min, mean, max] description of a sample, the format the
// paper's Tables I and II use.
type Summary struct {
	Min  float64
	Mean float64
	Max  float64
	N    int
}

// Summarize computes a Summary over xs. An empty sample yields zeros.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Min: xs[0], Max: xs[0], N: len(xs)}
	var sum float64
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	return s
}

// SummarizeInts is Summarize for integer samples.
func SummarizeInts(xs []int) Summary {
	f := make([]float64, len(xs))
	for i, x := range xs {
		f[i] = float64(x)
	}
	return Summarize(f)
}

// String renders the summary the way the paper prints ranges.
func (s Summary) String() string {
	return fmt.Sprintf("[%.4g, %.4g, %.4g]", s.Min, s.Mean, s.Max)
}

// Normalize converts counts to a probability vector. An all-zero vector
// stays all-zero.
func Normalize(counts []float64) []float64 {
	var total float64
	for _, c := range counts {
		total += c
	}
	out := make([]float64, len(counts))
	if total == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = c / total
	}
	return out
}

// Bhattacharyya computes the Bhattacharyya coefficient between two aligned
// discrete probability distributions: sum_i sqrt(p_i * q_i). It is 1 for
// identical distributions and 0 for distributions with disjoint support.
// The inputs must be the same length; they are not renormalised.
func Bhattacharyya(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: Bhattacharyya on mismatched lengths")
	}
	var bc float64
	for i := range p {
		if p[i] > 0 && q[i] > 0 {
			bc += math.Sqrt(p[i] * q[i])
		}
	}
	// Guard against floating-point drift above 1.
	if bc > 1 {
		bc = 1
	}
	return bc
}

// MeanPairwiseBC returns, for each distribution, the average Bhattacharyya
// coefficient against every other distribution — the per-unit "BC across
// other CPU units" of the paper's Figures 4 and 5.
func MeanPairwiseBC(dists [][]float64) []float64 {
	n := len(dists)
	out := make([]float64, n)
	if n < 2 {
		return out
	}
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			if i != j {
				sum += Bhattacharyya(dists[i], dists[j])
			}
		}
		out[i] = sum / float64(n-1)
	}
	return out
}

// Mean returns the arithmetic mean of xs (0 for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// ArgsortDesc returns the indices of xs ordered by descending value, ties
// broken by ascending index for determinism.
func ArgsortDesc(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] })
	return idx
}

// ArgsortAsc returns the indices of xs ordered by ascending value, ties
// broken by ascending index.
func ArgsortAsc(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	return idx
}

// Percent formats a ratio as a percentage string.
func Percent(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
