package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.Min != 1 || s.Max != 3 || s.Mean != 2 || s.N != 3 {
		t.Fatalf("summary %+v", s)
	}
	if z := Summarize(nil); z != (Summary{}) {
		t.Fatalf("empty summary %+v", z)
	}
	si := SummarizeInts([]int{5, 10})
	if si.Min != 5 || si.Max != 10 || si.Mean != 7.5 {
		t.Fatalf("int summary %+v", si)
	}
}

// TestSummarizeProperties: min <= mean <= max for any sample.
func TestSummarizeProperties(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.N == len(clean)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalize(t *testing.T) {
	p := Normalize([]float64{1, 3})
	if p[0] != 0.25 || p[1] != 0.75 {
		t.Fatalf("normalize %v", p)
	}
	z := Normalize([]float64{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Fatalf("zero normalize %v", z)
	}
}

func TestBhattacharyyaIdentity(t *testing.T) {
	p := Normalize([]float64{1, 2, 3, 4})
	if bc := Bhattacharyya(p, p); math.Abs(bc-1) > 1e-12 {
		t.Fatalf("BC(p,p) = %v, want 1", bc)
	}
}

func TestBhattacharyyaDisjoint(t *testing.T) {
	p := []float64{1, 0}
	q := []float64{0, 1}
	if bc := Bhattacharyya(p, q); bc != 0 {
		t.Fatalf("BC disjoint = %v, want 0", bc)
	}
}

// TestBhattacharyyaProperties: symmetric and in [0, 1] for any pair of
// random distributions.
func TestBhattacharyyaProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(30)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.Float64()
			b[i] = rng.Float64()
		}
		p, q := Normalize(a), Normalize(b)
		pq := Bhattacharyya(p, q)
		qp := Bhattacharyya(q, p)
		if math.Abs(pq-qp) > 1e-12 {
			t.Fatalf("not symmetric: %v vs %v", pq, qp)
		}
		if pq < 0 || pq > 1 {
			t.Fatalf("out of range: %v", pq)
		}
	}
}

func TestBhattacharyyaMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched lengths")
		}
	}()
	Bhattacharyya([]float64{1}, []float64{0.5, 0.5})
}

func TestMeanPairwiseBC(t *testing.T) {
	// Two identical distributions and one disjoint.
	a := []float64{1, 0, 0}
	b := []float64{1, 0, 0}
	c := []float64{0, 1, 0}
	bc := MeanPairwiseBC([][]float64{a, b, c})
	if math.Abs(bc[0]-0.5) > 1e-12 { // avg(BC(a,b)=1, BC(a,c)=0)
		t.Fatalf("bc[0] = %v", bc[0])
	}
	if bc[2] != 0 {
		t.Fatalf("bc[2] = %v", bc[2])
	}
	if out := MeanPairwiseBC([][]float64{a}); out[0] != 0 {
		t.Fatalf("single dist bc = %v", out[0])
	}
}

func TestArgsort(t *testing.T) {
	xs := []float64{2, 5, 5, 1}
	desc := ArgsortDesc(xs)
	if desc[0] != 1 || desc[1] != 2 || desc[2] != 0 || desc[3] != 3 {
		t.Fatalf("desc %v", desc)
	}
	asc := ArgsortAsc(xs)
	if asc[0] != 3 || asc[1] != 0 || asc[2] != 1 || asc[3] != 2 {
		t.Fatalf("asc %v", asc)
	}
}

// TestArgsortIsPermutation via quick.
func TestArgsortIsPermutation(t *testing.T) {
	f := func(xs []float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) {
				xs[i] = 0
			}
		}
		idx := ArgsortDesc(xs)
		seen := make([]bool, len(xs))
		for _, i := range idx {
			if i < 0 || i >= len(xs) || seen[i] {
				return false
			}
			seen[i] = true
		}
		for i := 1; i < len(idx); i++ {
			if xs[idx[i-1]] < xs[idx[i]] {
				return false
			}
		}
		return len(idx) == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanAndPercent(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("mean of empty")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
	if Percent(0.125) != "12.5%" {
		t.Fatalf("percent: %s", Percent(0.125))
	}
}

func TestSummaryString(t *testing.T) {
	s := Summary{Min: 1, Mean: 2.5, Max: 10}
	if got := s.String(); got != "[1, 2.5, 10]" {
		t.Fatalf("string: %q", got)
	}
}
