package cpu

import (
	"fmt"

	"lockstep/internal/units"
)

// Reg describes one named flop register of the CPU: the logical unit it
// belongs to (coarse and fine), its width in bits, and accessors into a
// State. The registry enables the fault-injection methodology of Section IV
// of the paper: every flip-flop in the CPU is individually addressable for
// transient flips and stuck-at forcing.
type Reg struct {
	Name  string
	Unit  units.Unit
	Fine  units.Fine
	Width uint8
	Get   func(*State) uint32
	Set   func(*State, uint32)
}

// Flop addresses one bit of one register.
type Flop struct {
	Reg int   // index into Registry()
	Bit uint8 // 0-based bit within the register
}

var (
	registry   []Reg
	flopOfIdx  []Flop // flat flop index -> (reg, bit)
	flopBase   []int  // reg index -> first flat flop index
	flopsFine  [units.NumFine]int
	flopsUnit  [units.NumUnits]int
	totalFlops int
)

// Registry returns the full register list. The slice is shared; callers
// must not modify it.
func Registry() []Reg { return registry }

// NumFlops returns the total number of injectable flip-flops in the CPU.
func NumFlops() int { return totalFlops }

// FlopAt maps a flat flop index to its register and bit.
func FlopAt(i int) Flop { return flopOfIdx[i] }

// FlopIndex maps (register, bit) back to the flat flop index.
func FlopIndex(f Flop) int { return flopBase[f.Reg] + int(f.Bit) }

// FlopUnit returns the coarse unit owning flop i.
func FlopUnit(i int) units.Unit { return registry[flopOfIdx[i].Reg].Unit }

// FlopFine returns the fine unit owning flop i.
func FlopFine(i int) units.Fine { return registry[flopOfIdx[i].Reg].Fine }

// FlopName renders flop i as "Reg[bit]".
func FlopName(i int) string {
	f := flopOfIdx[i]
	return fmt.Sprintf("%s[%d]", registry[f.Reg].Name, f.Bit)
}

// UnitFlops returns the number of flops in a coarse unit.
func UnitFlops(u units.Unit) int { return flopsUnit[u] }

// FineFlops returns the number of flops in a fine unit.
func FineFlops(f units.Fine) int { return flopsFine[f] }

// FlipBit inverts flop i in s: a single-cycle transient (soft) fault when
// applied once after a clock edge.
func FlipBit(s *State, i int) {
	f := flopOfIdx[i]
	r := &registry[f.Reg]
	r.Set(s, r.Get(s)^(1<<f.Bit))
}

// ForceBit forces flop i in s to v: applied after every clock edge it
// models a stuck-at (hard) fault.
func ForceBit(s *State, i int, v bool) {
	f := flopOfIdx[i]
	r := &registry[f.Reg]
	cur := r.Get(s)
	if v {
		cur |= 1 << f.Bit
	} else {
		cur &^= 1 << f.Bit
	}
	r.Set(s, cur)
}

// GetBit reads flop i in s.
func GetBit(s *State, i int) bool {
	f := flopOfIdx[i]
	return registry[f.Reg].Get(s)>>f.Bit&1 != 0
}

// ---- registry construction -------------------------------------------------

func init() {
	buildRegistry()
	flopBase = make([]int, len(registry))
	for ri, r := range registry {
		flopBase[ri] = totalFlops
		for b := uint8(0); b < r.Width; b++ {
			flopOfIdx = append(flopOfIdx, Flop{Reg: ri, Bit: b})
		}
		totalFlops += int(r.Width)
		flopsUnit[r.Unit] += int(r.Width)
		flopsFine[r.Fine] += int(r.Width)
	}
}

func add(name string, fine units.Fine, width uint8,
	get func(*State) uint32, set func(*State, uint32)) {
	registry = append(registry, Reg{
		Name: name, Unit: fine.Coarse(), Fine: fine, Width: width,
		Get: get, Set: set,
	})
}

func addU32(name string, fine units.Fine, p func(*State) *uint32) {
	add(name, fine, 32,
		func(s *State) uint32 { return *p(s) },
		func(s *State, v uint32) { *p(s) = v })
}

func addU8(name string, fine units.Fine, width uint8, p func(*State) *uint8) {
	mask := uint8(1<<width - 1)
	add(name, fine, width,
		func(s *State) uint32 { return uint32(*p(s) & mask) },
		func(s *State, v uint32) { *p(s) = uint8(v) & mask })
}

func addBool(name string, fine units.Fine, p func(*State) *bool) {
	add(name, fine, 1,
		func(s *State) uint32 { return b2u(*p(s)) },
		func(s *State, v uint32) { *p(s) = v&1 != 0 })
}

func buildRegistry() {
	// --- PFU ---
	addU32("PC", units.FinePFU, func(s *State) *uint32 { return &s.PC })
	addU32("FQInstr0", units.FinePFU, func(s *State) *uint32 { return &s.FQInstr[0] })
	addU32("FQInstr1", units.FinePFU, func(s *State) *uint32 { return &s.FQInstr[1] })
	addU32("FQPC0", units.FinePFU, func(s *State) *uint32 { return &s.FQPC[0] })
	addU32("FQPC1", units.FinePFU, func(s *State) *uint32 { return &s.FQPC[1] })
	addBool("FQValid0", units.FinePFU, func(s *State) *bool { return &s.FQValid[0] })
	addBool("FQValid1", units.FinePFU, func(s *State) *bool { return &s.FQValid[1] })
	addU8("FQHead", units.FinePFU, 1, func(s *State) *uint8 { return &s.FQHead })

	// --- IMC ---
	addU32("IReqAddr", units.FineIMC, func(s *State) *uint32 { return &s.IReqAddr })
	addBool("IReqValid", units.FineIMC, func(s *State) *bool { return &s.IReqValid })
	addU32("IFData", units.FineIMC, func(s *State) *uint32 { return &s.IFData })

	// --- DPU: decode ---
	addU8("DXOp", units.FineDPUDecode, 6, func(s *State) *uint8 { return &s.DXOp })
	addU8("DXRd", units.FineDPUDecode, 4, func(s *State) *uint8 { return &s.DXRd })
	addU32("DXImm", units.FineDPUDecode, func(s *State) *uint32 { return &s.DXImm })
	addU32("DXPC", units.FineDPUDecode, func(s *State) *uint32 { return &s.DXPC })
	addU32("DXInstr", units.FineDPUDecode, func(s *State) *uint32 { return &s.DXInstr })
	addBool("DXValid", units.FineDPUDecode, func(s *State) *bool { return &s.DXValid })

	// --- DPU: operand ---
	addU32("DXRs1Val", units.FineDPUOperand, func(s *State) *uint32 { return &s.DXRs1Val })
	addU32("DXRs2Val", units.FineDPUOperand, func(s *State) *uint32 { return &s.DXRs2Val })
	addU8("DXRs1", units.FineDPUOperand, 4, func(s *State) *uint8 { return &s.DXRs1 })
	addU8("DXRs2", units.FineDPUOperand, 4, func(s *State) *uint8 { return &s.DXRs2 })

	// --- DPU: register file (R0 is hardwired zero, not a flop) ---
	for i := 1; i < 16; i++ {
		i := i
		addU32(fmt.Sprintf("R%d", i), units.FineDPURegFile,
			func(s *State) *uint32 { return &s.Regs[i] })
	}

	// --- DPU: ALU (EX/MEM latch) ---
	addU8("XMOp", units.FineDPUALU, 6, func(s *State) *uint8 { return &s.XMOp })
	addU8("XMRd", units.FineDPUALU, 4, func(s *State) *uint8 { return &s.XMRd })
	addU32("XMAlu", units.FineDPUALU, func(s *State) *uint32 { return &s.XMAlu })
	addU32("XMStore", units.FineDPUALU, func(s *State) *uint32 { return &s.XMStore })
	addU32("XMPC", units.FineDPUALU, func(s *State) *uint32 { return &s.XMPC })
	addU32("XMInstr", units.FineDPUALU, func(s *State) *uint32 { return &s.XMInstr })
	addBool("XMValid", units.FineDPUALU, func(s *State) *bool { return &s.XMValid })

	// --- DPU: multiplier ---
	addBool("MulBusy", units.FineDPUMul, func(s *State) *bool { return &s.MulBusy })
	addU32("MulA", units.FineDPUMul, func(s *State) *uint32 { return &s.MulA })
	addU32("MulB", units.FineDPUMul, func(s *State) *uint32 { return &s.MulB })
	addBool("MulHiSel", units.FineDPUMul, func(s *State) *bool { return &s.MulHiSel })

	// --- DPU: divider ---
	addBool("DivBusy", units.FineDPUDiv, func(s *State) *bool { return &s.DivBusy })
	addU8("DivCnt", units.FineDPUDiv, 5, func(s *State) *uint8 { return &s.DivCnt })
	addU32("DivRem", units.FineDPUDiv, func(s *State) *uint32 { return &s.DivRem })
	addU32("DivQuot", units.FineDPUDiv, func(s *State) *uint32 { return &s.DivQuot })
	addU32("DivDivisor", units.FineDPUDiv, func(s *State) *uint32 { return &s.DivDivisor })
	addBool("DivNegQ", units.FineDPUDiv, func(s *State) *bool { return &s.DivNegQ })
	addBool("DivNegR", units.FineDPUDiv, func(s *State) *bool { return &s.DivNegR })
	addBool("DivIsRem", units.FineDPUDiv, func(s *State) *bool { return &s.DivIsRem })

	// --- DPU: retire (MEM/WB latch) ---
	addU8("MWRd", units.FineDPURetire, 4, func(s *State) *uint8 { return &s.MWRd })
	addU32("MWVal", units.FineDPURetire, func(s *State) *uint32 { return &s.MWVal })
	addU32("MWPC", units.FineDPURetire, func(s *State) *uint32 { return &s.MWPC })
	addU32("MWInstr", units.FineDPURetire, func(s *State) *uint32 { return &s.MWInstr })
	addBool("MWValid", units.FineDPURetire, func(s *State) *bool { return &s.MWValid })
	addBool("MWWen", units.FineDPURetire, func(s *State) *bool { return &s.MWWen })

	// --- LSU ---
	addU32("LSUAddr", units.FineLSU, func(s *State) *uint32 { return &s.LSUAddr })
	addU32("LSUData", units.FineLSU, func(s *State) *uint32 { return &s.LSUData })
	addU8("LSUBE", units.FineLSU, 4, func(s *State) *uint8 { return &s.LSUBE })
	addBool("LSURe", units.FineLSU, func(s *State) *bool { return &s.LSURe })
	addBool("LSUWe", units.FineLSU, func(s *State) *bool { return &s.LSUWe })

	// --- DMC ---
	addU32("DAddr", units.FineDMC, func(s *State) *uint32 { return &s.DAddr })
	addU32("DWData", units.FineDMC, func(s *State) *uint32 { return &s.DWData })
	addU8("DBE", units.FineDMC, 4, func(s *State) *uint8 { return &s.DBE })
	addBool("DRe", units.FineDMC, func(s *State) *bool { return &s.DRe })
	addBool("DWe", units.FineDMC, func(s *State) *bool { return &s.DWe })
	addU32("DRData", units.FineDMC, func(s *State) *uint32 { return &s.DRData })

	// --- BIU ---
	addU32("ExtAddr", units.FineBIU, func(s *State) *uint32 { return &s.ExtAddr })
	addU32("ExtWData", units.FineBIU, func(s *State) *uint32 { return &s.ExtWData })
	addU8("ExtBE", units.FineBIU, 4, func(s *State) *uint8 { return &s.ExtBE })
	addBool("ExtRe", units.FineBIU, func(s *State) *bool { return &s.ExtRe })
	addBool("ExtWe", units.FineBIU, func(s *State) *bool { return &s.ExtWe })
	addBool("ExtBusy", units.FineBIU, func(s *State) *bool { return &s.ExtBusy })
	addU8("ExtCnt", units.FineBIU, 2, func(s *State) *uint8 { return &s.ExtCnt })
	addU32("ExtRData", units.FineBIU, func(s *State) *uint32 { return &s.ExtRData })

	// --- SCU ---
	addU32("CycCnt", units.FineSCU, func(s *State) *uint32 { return &s.CycCnt })
	addU32("RetCnt", units.FineSCU, func(s *State) *uint32 { return &s.RetCnt })
	addBool("Halted", units.FineSCU, func(s *State) *bool { return &s.Halted })
	addBool("ExcValid", units.FineSCU, func(s *State) *bool { return &s.ExcValid })
	addU8("ExcCause", units.FineSCU, 3, func(s *State) *uint8 { return &s.ExcCause })
	addU32("EPC", units.FineSCU, func(s *State) *uint32 { return &s.EPC })
	for i := 0; i < MPURegions; i++ {
		i := i
		addU32(fmt.Sprintf("MPUBase%d", i), units.FineSCU,
			func(s *State) *uint32 { return &s.MPUBase[i] })
		addU32(fmt.Sprintf("MPULimit%d", i), units.FineSCU,
			func(s *State) *uint32 { return &s.MPULimit[i] })
		addU8(fmt.Sprintf("MPUAttr%d", i), units.FineSCU, 2,
			func(s *State) *uint8 { return &s.MPUAttr[i] })
	}
}
