package cpu_test

import (
	"fmt"
	"math/rand"
	"testing"

	"lockstep/internal/asm"
	"lockstep/internal/cpu"
	"lockstep/internal/isa"
	"lockstep/internal/iss"
	"lockstep/internal/mem"
)

// runBoth assembles src, runs it to HALT on both the ISS and the pipelined
// CPU (each against its own memory), and returns both machines and systems.
func runBoth(t *testing.T, src string, maxInstrs, maxCycles int) (*iss.Machine, *cpu.CPU, *mem.System, *mem.System) {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	sysI := mem.NewSystem()
	sysC := mem.NewSystem()
	if err := sysI.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	if err := sysC.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	m := iss.New(sysI, prog.Entry)
	if _, err := m.Run(maxInstrs); err != nil {
		t.Fatalf("iss trap: %v", err)
	}
	if !m.Halted {
		t.Fatalf("iss did not halt within %d instructions", maxInstrs)
	}
	c := cpu.New(sysC, prog.Entry)
	c.Run(maxCycles)
	if !c.State.Halted {
		t.Fatalf("cpu did not halt within %d cycles", maxCycles)
	}
	if c.State.Trapped() {
		t.Fatalf("cpu trapped: cause=%d epc=0x%x", c.State.ExcCause, c.State.EPC)
	}
	return m, c, sysI, sysC
}

// checkArchMatch compares architectural registers and a memory window.
func checkArchMatch(t *testing.T, m *iss.Machine, c *cpu.CPU, sysI, sysC *mem.System, dataBase uint32, dataWords int) {
	t.Helper()
	for r := 1; r < isa.NumRegs; r++ {
		if m.Regs[r] != c.State.Regs[r] {
			t.Errorf("R%d: iss=0x%x cpu=0x%x", r, m.Regs[r], c.State.Regs[r])
		}
	}
	if dataWords > 0 {
		wi := sysI.Snapshot(dataBase, dataWords)
		wc := sysC.Snapshot(dataBase, dataWords)
		for i := range wi {
			if wi[i] != wc[i] {
				t.Errorf("mem[0x%x]: iss=0x%x cpu=0x%x", dataBase+uint32(i*4), wi[i], wc[i])
			}
		}
	}
}

func TestFibonacci(t *testing.T) {
	src := `
        li   r1, 0        ; fib(0)
        li   r2, 1        ; fib(1)
        li   r3, 20       ; iterations
loop:   add  r4, r1, r2
        mv   r1, r2
        mv   r2, r4
        dec  r3
        bne  r3, r0, loop
        halt
`
	m, c, si, sc := runBoth(t, src, 1000, 10000)
	checkArchMatch(t, m, c, si, sc, 0, 0)
	if m.Regs[2] != 10946 {
		t.Fatalf("fib(21) = %d, want 10946", m.Regs[2])
	}
}

func TestMemoryKernel(t *testing.T) {
	src := `
        .equ SRC, 0x8000
        .equ DST, 0x9000
        li   r1, SRC
        li   r2, DST
        li   r3, 16        ; word count
        li   r5, 1
fill:   sw   r5, 0(r1)     ; src[i] = i*i
        mul  r6, r5, r5
        sw   r6, 0(r1)
        addi r1, r1, 4
        inc  r5
        dec  r3
        bne  r3, r0, fill
        li   r1, SRC
        li   r3, 16
copy:   lw   r6, 0(r1)
        sw   r6, 0(r2)
        addi r1, r1, 4
        addi r2, r2, 4
        dec  r3
        bne  r3, r0, copy
        halt
`
	m, c, si, sc := runBoth(t, src, 5000, 50000)
	checkArchMatch(t, m, c, si, sc, 0x9000, 16)
	want := sc.Snapshot(0x9000, 16)
	for i, w := range want {
		if w != uint32((i+1)*(i+1)) {
			t.Fatalf("dst[%d] = %d, want %d", i, w, (i+1)*(i+1))
		}
	}
}

func TestDivideChain(t *testing.T) {
	src := `
        li   r1, 1000000
        li   r2, 7
        div  r3, r1, r2    ; 142857
        rem  r4, r1, r2    ; 1
        li   r5, -1000000
        div  r6, r5, r2    ; -142857
        rem  r7, r5, r2    ; -1
        div  r8, r1, r0    ; div by zero -> all ones
        rem  r9, r1, r0    ; rem by zero -> dividend
        li   r10, 3
        mulh r11, r1, r1   ; high half of 10^12
        halt
`
	m, c, si, sc := runBoth(t, src, 1000, 10000)
	checkArchMatch(t, m, c, si, sc, 0, 0)
	if m.Regs[3] != 142857 || m.Regs[4] != 1 {
		t.Fatalf("div/rem: got %d, %d", m.Regs[3], m.Regs[4])
	}
	if int32(m.Regs[6]) != -142857 || int32(m.Regs[7]) != -1 {
		t.Fatalf("signed div/rem: got %d, %d", int32(m.Regs[6]), int32(m.Regs[7]))
	}
	if m.Regs[8] != 0xFFFFFFFF || m.Regs[9] != 1000000 {
		t.Fatalf("div by zero: got 0x%x, %d", m.Regs[8], m.Regs[9])
	}
	if m.Regs[11] != uint32(uint64(1000000*1000000)>>32) {
		t.Fatalf("mulh: got 0x%x", m.Regs[11])
	}
}

func TestCallReturn(t *testing.T) {
	src := `
        li   r1, 5
        li   r2, 0
        call square        ; r3 = r1*r1
        add  r2, r2, r3
        li   r1, 9
        call square
        add  r2, r2, r3    ; 25 + 81
        halt
square: mul  r3, r1, r1
        ret
`
	m, c, si, sc := runBoth(t, src, 1000, 10000)
	checkArchMatch(t, m, c, si, sc, 0, 0)
	if m.Regs[2] != 106 {
		t.Fatalf("sum of squares = %d, want 106", m.Regs[2])
	}
}

func TestSubwordAccess(t *testing.T) {
	src := `
        .equ BUF, 0xA000
        li   r1, BUF
        li   r2, 0x12345678
        sw   r2, 0(r1)
        lb   r3, 0(r1)     ; 0x78
        lb   r4, 3(r1)     ; 0x12
        lbu  r5, 1(r1)     ; 0x56
        lh   r6, 0(r1)     ; 0x5678
        lhu  r7, 2(r1)     ; 0x1234
        li   r8, 0xAB
        sb   r8, 1(r1)     ; word -> 0x1234AB78
        lw   r9, 0(r1)
        li   r10, 0xBEEF
        sh   r10, 2(r1)    ; word -> 0xBEEFAB78
        lw   r11, 0(r1)
        li   r12, -2       ; 0xFFFFFFFE
        sw   r12, 4(r1)
        lb   r13, 4(r1)    ; sign-extended -2
        halt
`
	m, c, si, sc := runBoth(t, src, 1000, 10000)
	checkArchMatch(t, m, c, si, sc, 0xA000, 2)
	if m.Regs[9] != 0x1234AB78 || m.Regs[11] != 0xBEEFAB78 {
		t.Fatalf("byte/half stores: got 0x%x, 0x%x", m.Regs[9], m.Regs[11])
	}
	if int32(m.Regs[13]) != -2 {
		t.Fatalf("lb sign extension: got %d", int32(m.Regs[13]))
	}
}

func TestExternalPeripheral(t *testing.T) {
	src := `
        li   r1, 0x80000000
        lw   r2, 0(r1)      ; sensor read
        lw   r3, 16(r1)
        add  r4, r2, r3
        sw   r4, 32(r1)     ; actuator write
        halt
`
	prog := asm.MustAssemble(src)
	sys := mem.NewSystem()
	if err := sys.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	c := cpu.New(sys, prog.Entry)
	c.Run(10000)
	if !c.State.Halted || c.State.Trapped() {
		t.Fatalf("bad final state: halted=%v trapped=%v", c.State.Halted, c.State.Trapped())
	}
	want := mem.SensorValue(0x80000000) + mem.SensorValue(0x80000010)
	if c.State.Regs[4] != want {
		t.Fatalf("sensor sum: got 0x%x want 0x%x", c.State.Regs[4], want)
	}
	if got := sys.Ext().Actuator[8]; got != want {
		t.Fatalf("actuator[8]: got 0x%x want 0x%x", got, want)
	}
	if sys.Ext().Writes != 1 {
		t.Fatalf("actuator writes: got %d want 1", sys.Ext().Writes)
	}
}

func TestIllegalInstructionTraps(t *testing.T) {
	prog := &asm.Program{Origin: 0, Words: []uint32{0xFFFFFFFF}, Entry: 0}
	sys := mem.NewSystem()
	if err := sys.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	c := cpu.New(sys, 0)
	c.Run(100)
	if !c.State.Trapped() || c.State.ExcCause != cpu.CauseIllegal {
		t.Fatalf("want illegal trap, got halted=%v cause=%d", c.State.Halted, c.State.ExcCause)
	}
	if c.State.EPC != 0 {
		t.Fatalf("EPC = 0x%x, want 0", c.State.EPC)
	}
}

func TestMisalignedAccessTraps(t *testing.T) {
	src := `
        li  r1, 0x8001
        lw  r2, 0(r1)
        halt
`
	prog := asm.MustAssemble(src)
	sys := mem.NewSystem()
	if err := sys.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	c := cpu.New(sys, prog.Entry)
	c.Run(100)
	if !c.State.Trapped() || c.State.ExcCause != cpu.CauseMisaligned {
		t.Fatalf("want misaligned trap, got cause=%d", c.State.ExcCause)
	}
}

func TestBusFaultTraps(t *testing.T) {
	src := `
        li  r1, 0x100000   ; beyond 256KB RAM, below peripheral base
        lw  r2, 0(r1)
        halt
`
	prog := asm.MustAssemble(src)
	sys := mem.NewSystem()
	if err := sys.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	c := cpu.New(sys, prog.Entry)
	c.Run(100)
	if !c.State.Trapped() || c.State.ExcCause != cpu.CauseBusFault {
		t.Fatalf("want bus fault, got cause=%d", c.State.ExcCause)
	}
}

func TestFetchFaultTraps(t *testing.T) {
	src := `
        li   r1, 0x200000
        jalr r0, r1, 0     ; jump outside RAM
`
	prog := asm.MustAssemble(src)
	sys := mem.NewSystem()
	if err := sys.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	c := cpu.New(sys, prog.Entry)
	c.Run(100)
	if !c.State.Trapped() || c.State.ExcCause != cpu.CauseIFetch {
		t.Fatalf("want ifetch fault, got cause=%d", c.State.ExcCause)
	}
}

// TestLockstepDeterminism verifies the fundamental lockstep property: two
// identically reset CPUs running the same program produce bit-identical
// output vectors on every cycle.
func TestLockstepDeterminism(t *testing.T) {
	src := `
        li   r1, 0
        li   r2, 123
loop:   mul  r3, r2, r2
        div  r4, r3, r2
        addi r1, r1, 1
        sw   r3, 0x8000(r0)
        lw   r5, 0x8000(r0)
        bne  r1, r2, loop
        halt
`
	prog := asm.MustAssemble(src)
	sys := mem.NewSystem()
	if err := sys.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	main := cpu.New(sys, prog.Entry)
	red := cpu.New(mem.Monitor{Sys: sys}, prog.Entry)
	for cyc := 0; cyc < 20000; cyc++ {
		main.StepCycle()
		red.StepCycle()
		om, or := main.State.Outputs(), red.State.Outputs()
		if d := cpu.Diverge(&om, &or); d != 0 {
			t.Fatalf("cycle %d: spurious divergence map %#x", cyc, d)
		}
		if main.State.Halted {
			return
		}
	}
	t.Fatal("program did not halt")
}

// randProgram generates a structured random program: straight-line blocks
// of arithmetic and memory operations with forward-only branches, plus a
// bounded counting loop, terminated by HALT. Forward-only control flow
// guarantees termination.
func randProgram(r *rand.Rand) string {
	var b []string
	emit := func(f string, a ...any) { b = append(b, fmt.Sprintf(f, a...)) }
	emit("        .equ BUF, 0xC000")
	// Seed registers (r12 reserved as buffer base, r11 as loop counter).
	emit("        li r12, BUF")
	for r0 := 1; r0 <= 10; r0++ {
		emit("        li r%d, %d", r0, r.Int31n(1<<16)-1<<15)
	}
	// Pre-fill buffer.
	for i := 0; i < 8; i++ {
		emit("        li r13, %d", r.Int31())
		emit("        sw r13, %d(r12)", i*4)
	}
	nBlocks := 4 + r.Intn(4)
	for blk := 0; blk < nBlocks; blk++ {
		n := 4 + r.Intn(10)
		for i := 0; i < n; i++ {
			rd := 1 + r.Intn(10)
			rs1 := 1 + r.Intn(10)
			rs2 := 1 + r.Intn(10)
			switch r.Intn(20) {
			case 0:
				emit("        add r%d, r%d, r%d", rd, rs1, rs2)
			case 1:
				emit("        sub r%d, r%d, r%d", rd, rs1, rs2)
			case 2:
				emit("        xor r%d, r%d, r%d", rd, rs1, rs2)
			case 3:
				emit("        and r%d, r%d, r%d", rd, rs1, rs2)
			case 4:
				emit("        mul r%d, r%d, r%d", rd, rs1, rs2)
			case 5:
				emit("        div r%d, r%d, r%d", rd, rs1, rs2)
			case 6:
				emit("        rem r%d, r%d, r%d", rd, rs1, rs2)
			case 7:
				emit("        slt r%d, r%d, r%d", rd, rs1, rs2)
			case 8:
				emit("        addi r%d, r%d, %d", rd, rs1, r.Int31n(4096)-2048)
			case 9:
				emit("        srai r%d, r%d, %d", rd, rs1, r.Intn(31))
			case 10:
				emit("        lw r%d, %d(r12)", rd, 4*r.Intn(8))
			case 11:
				emit("        sw r%d, %d(r12)", rs1, 4*r.Intn(8))
			case 12:
				emit("        lb r%d, %d(r12)", rd, r.Intn(32))
			case 13:
				emit("        lbu r%d, %d(r12)", rd, r.Intn(32))
			case 14:
				emit("        lh r%d, %d(r12)", rd, 2*r.Intn(16))
			case 15:
				emit("        lhu r%d, %d(r12)", rd, 2*r.Intn(16))
			case 16:
				emit("        sb r%d, %d(r12)", rs1, r.Intn(32))
			case 17:
				emit("        sh r%d, %d(r12)", rs1, 2*r.Intn(16))
			case 18:
				emit("        sltu r%d, r%d, r%d", rd, rs1, rs2)
			case 19:
				emit("        sll r%d, r%d, r%d", rd, rs1, rs2)
			}
		}
		// Forward conditional branch over the next block.
		if blk < nBlocks-1 {
			emit("        blt r%d, r%d, skip%d", 1+r.Intn(10), 1+r.Intn(10), blk)
			emit("        addi r%d, r%d, 1", 1+r.Intn(10), 1+r.Intn(10))
			emit("skip%d:  nop", blk)
		}
	}
	// A leaf call to exercise JAL/JALR link handling.
	emit("        call leaf")
	// A bounded loop to exercise backward branches and hazards.
	emit("        li r11, %d", 3+r.Intn(8))
	emit("tail:   lw r1, 0(r12)")
	emit("        addi r1, r1, 7")
	emit("        sw r1, 0(r12)")
	emit("        mul r2, r1, r11")
	emit("        dec r11")
	emit("        bne r11, r0, tail")
	emit("        halt")
	emit("leaf:   xor r9, r9, r%d", 1+r.Intn(10))
	emit("        addi r9, r9, %d", r.Intn(64))
	emit("        ret")
	var out string
	for _, l := range b {
		out += l + "\n"
	}
	return out
}

// TestRandomProgramsMatchISS is the differential property test: for many
// seeded random programs, the pipelined CPU's architectural results must
// equal the functional simulator's.
func TestRandomProgramsMatchISS(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 10
	}
	for seed := 0; seed < n; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			src := randProgram(rand.New(rand.NewSource(int64(seed))))
			m, c, si, sc := runBoth(t, src, 50000, 500000)
			checkArchMatch(t, m, c, si, sc, 0xC000, 8)
		})
	}
}

// TestHaltQuiesces verifies a halted CPU's outputs become static.
func TestHaltQuiesces(t *testing.T) {
	prog := asm.MustAssemble("        li r1, 3\n        halt\n")
	sys := mem.NewSystem()
	if err := sys.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	c := cpu.New(sys, prog.Entry)
	c.Run(1000)
	if !c.State.Halted {
		t.Fatal("did not halt")
	}
	// Drain, then check that the output port is fully static.
	for i := 0; i < 10; i++ {
		c.StepCycle()
	}
	before := c.State.Outputs()
	c.StepCycle()
	after := c.State.Outputs()
	if d := cpu.Diverge(&before, &after); d != 0 {
		t.Fatalf("outputs not quiescent after halt: map %#x", d)
	}
}
