package cpu

// This file defines the CPU output port compared by the lockstep error
// checker and its grouping into signal categories (SCs). Per Section III-A
// of the paper, related output signals form a signal category; the checker
// OR-reduces per-SC differences into a one-bit divergence flag per SC
// (the Divergence Status Register).
//
// SR5 exposes 62 SCs — the same DSR width as the paper's Cortex-R5 — built
// exclusively from signals a CPU macro genuinely drives out of its sphere
// of replication:
//
//   - the instruction-port request (address + strobe)
//   - the data-port request (address, write data, strobes, byte enables)
//   - the external (BIU) bus master request
//   - the ETM-style trace port (retired PC, retired instruction,
//     writeback value/register) — the Cortex-R5 exports exactly such a
//     trace interface, and lockstep checkers compare it
//   - the exception/status outputs (exception valid, cause, EPC, halted)
//
// Internal state (fetch queue occupancy, counters, input-capture registers)
// is deliberately NOT compared: a fault must propagate to a real output
// before the checker can see it, which is what gives error manifestation
// its latency distribution and the diverged-SC sets their variety.
//
// Multi-bit buses are split into nibble- or byte-granular SCs exactly as
// the paper splits, e.g., 32 D-cache address bits into address SCs.

// NumSC is the number of signal categories (the DSR width).
const NumSC = 62

// OutVec is the CPU's registered output port sampled after a clock edge,
// one value per signal category.
type OutVec [NumSC]uint32

// SC indices. Suffix N<i> is the i-th nibble, B<i> the i-th byte,
// least significant first.
const (
	SCIAddr0 = iota // instruction port address, nibbles 0..7
	SCIAddr1
	SCIAddr2
	SCIAddr3
	SCIAddr4
	SCIAddr5
	SCIAddr6
	SCIAddr7
	SCICtl   // instruction port request strobe
	SCDAddr0 // data port address, nibbles 0..7
	SCDAddr1
	SCDAddr2
	SCDAddr3
	SCDAddr4
	SCDAddr5
	SCDAddr6
	SCDAddr7
	SCDWData0 // data port write data, nibbles 0..7
	SCDWData1
	SCDWData2
	SCDWData3
	SCDWData4
	SCDWData5
	SCDWData6
	SCDWData7
	SCDCtlRW   // data port read/write strobes
	SCDCtlBE   // data port byte enables
	SCExtAddr0 // external bus address, bytes 0..3
	SCExtAddr1
	SCExtAddr2
	SCExtAddr3
	SCExtWData0 // external bus write data, bytes 0..3
	SCExtWData1
	SCExtWData2
	SCExtWData3
	SCExtCtlRW // external bus strobes / busy / wait count
	SCExtCtlBE // external bus byte enables
	SCRetPC0   // trace: retired instruction address, bytes 0..3
	SCRetPC1
	SCRetPC2
	SCRetPC3
	SCRetInstr0 // trace: retired instruction word, bytes 0..3
	SCRetInstr1
	SCRetInstr2
	SCRetInstr3
	SCWBData0 // trace: writeback value, nibbles 0..7
	SCWBData1
	SCWBData2
	SCWBData3
	SCWBData4
	SCWBData5
	SCWBData6
	SCWBData7
	SCWBCtl // trace: retire valid / writeback enable
	SCWBReg // trace: writeback register number
	SCEPC0  // exception PC, bytes 0..3
	SCEPC1
	SCEPC2
	SCEPC3
	SCExcValid // exception flag output
	SCHalted   // halted/standby status output
	SCExcCause // exception cause bus
)

var scNames = [NumSC]string{
	"IAddrN0", "IAddrN1", "IAddrN2", "IAddrN3",
	"IAddrN4", "IAddrN5", "IAddrN6", "IAddrN7",
	"ICtl",
	"DAddrN0", "DAddrN1", "DAddrN2", "DAddrN3",
	"DAddrN4", "DAddrN5", "DAddrN6", "DAddrN7",
	"DWDataN0", "DWDataN1", "DWDataN2", "DWDataN3",
	"DWDataN4", "DWDataN5", "DWDataN6", "DWDataN7",
	"DCtlRW", "DCtlBE",
	"ExtAddrB0", "ExtAddrB1", "ExtAddrB2", "ExtAddrB3",
	"ExtWDataB0", "ExtWDataB1", "ExtWDataB2", "ExtWDataB3",
	"ExtCtlRW", "ExtCtlBE",
	"RetPCB0", "RetPCB1", "RetPCB2", "RetPCB3",
	"RetInstrB0", "RetInstrB1", "RetInstrB2", "RetInstrB3",
	"WBDataN0", "WBDataN1", "WBDataN2", "WBDataN3",
	"WBDataN4", "WBDataN5", "WBDataN6", "WBDataN7",
	"WBCtl", "WBReg",
	"EPCB0", "EPCB1", "EPCB2", "EPCB3",
	"ExcValid", "Halted", "ExcCause",
}

// SCName returns the name of signal category i.
func SCName(i int) string { return scNames[i] }

// scWidths is the number of compared signal bits in each SC.
var scWidths = func() [NumSC]int {
	var w [NumSC]int
	set := func(base, n, bits int) {
		for i := 0; i < n; i++ {
			w[base+i] = bits
		}
	}
	set(SCIAddr0, 8, 4)
	w[SCICtl] = 1
	set(SCDAddr0, 8, 4)
	set(SCDWData0, 8, 4)
	w[SCDCtlRW] = 2
	w[SCDCtlBE] = 4
	set(SCExtAddr0, 4, 8)
	set(SCExtWData0, 4, 8)
	w[SCExtCtlRW] = 5
	w[SCExtCtlBE] = 4
	set(SCRetPC0, 4, 8)
	set(SCRetInstr0, 4, 8)
	set(SCWBData0, 8, 4)
	w[SCWBCtl] = 2
	w[SCWBReg] = 4
	set(SCEPC0, 4, 8)
	w[SCExcValid] = 1
	w[SCHalted] = 1
	w[SCExcCause] = 3
	return w
}()

// SCWidth returns the number of signal bits in SC i.
func SCWidth(i int) int { return scWidths[i] }

// OutputPortBits is the total number of output-port signal bits each CPU
// drives to the checker (the paper's Cortex-R5 exposes ~2500; SR5 is
// proportionally smaller).
func OutputPortBits() int {
	total := 0
	for _, w := range scWidths {
		total += w
	}
	return total
}

// Outputs samples the registered output port as a function of the current
// flop state. Both lockstepped CPUs produce identical vectors every cycle
// in the absence of faults.
//
// The comparison is QUALIFIED, as in production lockstep checkers: payload
// buses (addresses, data, trace values) are only compared while their
// valid strobes are asserted, because between transactions those registers
// legitimately hold stale values the system never consumes. The strobes
// themselves are always compared, so a diverging transaction *presence* is
// still caught immediately.
func (s *State) Outputs() OutVec {
	var o OutVec
	if s.IReqValid {
		putNibbles(&o, SCIAddr0, s.IReqAddr)
	}
	o[SCICtl] = b2u(s.IReqValid)
	if s.DRe || s.DWe {
		putNibbles(&o, SCDAddr0, s.DAddr)
		o[SCDCtlBE] = uint32(s.DBE & 0xF)
	}
	if s.DWe {
		putNibbles(&o, SCDWData0, s.DWData)
	}
	o[SCDCtlRW] = b2u(s.DRe) | b2u(s.DWe)<<1
	if s.ExtBusy || s.ExtRe || s.ExtWe {
		putBytes(&o, SCExtAddr0, s.ExtAddr)
		o[SCExtCtlBE] = uint32(s.ExtBE & 0xF)
		if s.ExtWe {
			putBytes(&o, SCExtWData0, s.ExtWData)
		}
	}
	o[SCExtCtlRW] = b2u(s.ExtRe) | b2u(s.ExtWe)<<1 | b2u(s.ExtBusy)<<2 |
		uint32(s.ExtCnt&3)<<3
	if s.MWValid {
		putBytes(&o, SCRetPC0, s.MWPC)
		putBytes(&o, SCRetInstr0, s.MWInstr)
		if s.MWWen {
			putNibbles(&o, SCWBData0, s.MWVal)
			o[SCWBReg] = uint32(s.MWRd & 0xF)
		}
	}
	o[SCWBCtl] = b2u(s.MWValid) | b2u(s.MWWen)<<1
	if s.ExcValid {
		putBytes(&o, SCEPC0, s.EPC)
		o[SCExcCause] = uint32(s.ExcCause & 7)
	}
	o[SCExcValid] = b2u(s.ExcValid)
	o[SCHalted] = b2u(s.Halted)
	return o
}

func putBytes(o *OutVec, base int, v uint32) {
	o[base] = v & 0xFF
	o[base+1] = v >> 8 & 0xFF
	o[base+2] = v >> 16 & 0xFF
	o[base+3] = v >> 24 & 0xFF
}

func putNibbles(o *OutVec, base int, v uint32) {
	for i := 0; i < 8; i++ {
		o[base+i] = v >> (4 * i) & 0xF
	}
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// Diverge compares two output vectors and returns the per-SC divergence
// map as a 62-bit set (bit i set means SC i differs). This models the
// per-SC OR-reduction trees feeding the Divergence Status Register in the
// paper's Figure 6.
func Diverge(a, b *OutVec) uint64 {
	var m uint64
	for i := 0; i < NumSC; i++ {
		if a[i] != b[i] {
			m |= 1 << uint(i)
		}
	}
	return m
}
