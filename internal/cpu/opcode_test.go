package cpu_test

import (
	"fmt"
	"testing"

	"lockstep/internal/asm"
	"lockstep/internal/cpu"
	"lockstep/internal/iss"
	"lockstep/internal/mem"
)

// boundary operand values that historically break ALU/shift/div corner
// cases.
var boundaryVals = []uint32{
	0, 1, 2, 3, 0xFFFFFFFF, 0xFFFFFFFE, // 0, 1, 2, 3, -1, -2
	0x7FFFFFFF, 0x80000000, 0x80000001, // INT_MAX, INT_MIN, INT_MIN+1
	31, 32, 33, 0xAAAAAAAA, 0x55555555, 0x12345678,
}

// runOpProgram executes "op r3, r1, r2" for every boundary operand pair on
// both engines and compares the results.
func runOpProgram(t *testing.T, mnemonic string) {
	t.Helper()
	for _, a := range boundaryVals {
		for _, b := range boundaryVals {
			src := fmt.Sprintf(`
        li   r1, 0x%x
        li   r2, 0x%x
        %s  r3, r1, r2
        halt
`, a, b, mnemonic)
			prog, err := asm.Assemble(src)
			if err != nil {
				t.Fatalf("%s(%#x, %#x): %v", mnemonic, a, b, err)
			}

			sysI := mem.NewSystem()
			if err := sysI.LoadProgram(prog); err != nil {
				t.Fatal(err)
			}
			m := iss.New(sysI, prog.Entry)
			if _, err := m.Run(200); err != nil {
				t.Fatalf("%s(%#x, %#x) iss trap: %v", mnemonic, a, b, err)
			}

			sysC := mem.NewSystem()
			if err := sysC.LoadProgram(prog); err != nil {
				t.Fatal(err)
			}
			c := cpu.New(sysC, prog.Entry)
			c.Run(2000)
			if !c.State.Drained() || c.State.Trapped() {
				t.Fatalf("%s(%#x, %#x) cpu did not finish cleanly", mnemonic, a, b)
			}

			if m.Regs[3] != c.State.Regs[3] {
				t.Fatalf("%s(%#x, %#x): iss=%#x cpu=%#x",
					mnemonic, a, b, m.Regs[3], c.State.Regs[3])
			}
		}
	}
}

// TestALUOpcodeBoundaries runs every R-type ALU opcode over the full
// boundary-value cross product on both engines. This nails the divider's
// INT_MIN/-1 and divide-by-zero conventions and the shifters' modulo-32
// semantics in the pipeline.
func TestALUOpcodeBoundaries(t *testing.T) {
	ops := []string{
		"add", "sub", "and", "or", "xor",
		"sll", "srl", "sra", "slt", "sltu",
		"mul", "mulh", "div", "rem",
	}
	if testing.Short() {
		ops = []string{"div", "rem", "mulh", "sra"}
	}
	for _, op := range ops {
		op := op
		t.Run(op, func(t *testing.T) { runOpProgram(t, op) })
	}
}

// TestImmediateOpcodeBoundaries covers the I-type ALU forms with boundary
// register values and representative immediates.
func TestImmediateOpcodeBoundaries(t *testing.T) {
	type icase struct {
		op  string
		imm int32
	}
	cases := []icase{
		{"addi", -1}, {"addi", 131071}, {"addi", -131072},
		{"andi", 0xFF}, {"ori", -1}, {"xori", -1},
		{"slti", 0}, {"slti", -1},
		{"slli", 0}, {"slli", 31}, {"srli", 31}, {"srai", 31},
	}
	for _, c := range cases {
		for _, a := range boundaryVals {
			src := fmt.Sprintf(`
        li   r1, 0x%x
        %s  r3, r1, %d
        halt
`, a, c.op, c.imm)
			prog, err := asm.Assemble(src)
			if err != nil {
				t.Fatalf("%s imm %d: %v", c.op, c.imm, err)
			}
			sysI := mem.NewSystem()
			if err := sysI.LoadProgram(prog); err != nil {
				t.Fatal(err)
			}
			m := iss.New(sysI, prog.Entry)
			if _, err := m.Run(100); err != nil {
				t.Fatal(err)
			}
			sysC := mem.NewSystem()
			if err := sysC.LoadProgram(prog); err != nil {
				t.Fatal(err)
			}
			cp := cpu.New(sysC, prog.Entry)
			cp.Run(1000)
			if m.Regs[3] != cp.State.Regs[3] {
				t.Fatalf("%s(%#x, %d): iss=%#x cpu=%#x",
					c.op, a, c.imm, m.Regs[3], cp.State.Regs[3])
			}
		}
	}
}

// TestBranchOpcodeBoundaries checks every branch condition over signed and
// unsigned boundary pairs on both engines (taken/not-taken agreement).
func TestBranchOpcodeBoundaries(t *testing.T) {
	ops := []string{"beq", "bne", "blt", "bge", "bltu", "bgeu"}
	pairs := [][2]uint32{
		{0, 0}, {1, 0}, {0, 1},
		{0x7FFFFFFF, 0x80000000}, {0x80000000, 0x7FFFFFFF},
		{0xFFFFFFFF, 0}, {0, 0xFFFFFFFF}, {0xFFFFFFFF, 0xFFFFFFFF},
		{0x80000000, 0x80000000},
	}
	for _, op := range ops {
		for _, pr := range pairs {
			src := fmt.Sprintf(`
        li   r1, 0x%x
        li   r2, 0x%x
        li   r3, 0
        %s  r1, r2, taken
        addi r3, r3, 1     ; not taken path
taken:  addi r3, r3, 2
        halt
`, pr[0], pr[1], op)
			prog, err := asm.Assemble(src)
			if err != nil {
				t.Fatal(err)
			}
			sysI := mem.NewSystem()
			if err := sysI.LoadProgram(prog); err != nil {
				t.Fatal(err)
			}
			m := iss.New(sysI, prog.Entry)
			if _, err := m.Run(100); err != nil {
				t.Fatal(err)
			}
			sysC := mem.NewSystem()
			if err := sysC.LoadProgram(prog); err != nil {
				t.Fatal(err)
			}
			cp := cpu.New(sysC, prog.Entry)
			cp.Run(1000)
			if m.Regs[3] != cp.State.Regs[3] {
				t.Fatalf("%s(%#x, %#x): iss r3=%d cpu r3=%d",
					op, pr[0], pr[1], m.Regs[3], cp.State.Regs[3])
			}
		}
	}
}

// TestLoadStoreWidthBoundaries crosses every load/store width with every
// alignment-legal offset and sign pattern on both engines.
func TestLoadStoreWidthBoundaries(t *testing.T) {
	patterns := []uint32{0x00000000, 0xFFFFFFFF, 0x80808080, 0x7F7F7F7F, 0x12345678}
	for _, pat := range patterns {
		src := fmt.Sprintf(`
        .equ BUF, 0x9000
        li   r1, BUF
        li   r2, 0x%x
        sw   r2, 0(r1)
        lb   r3, 0(r1)
        lb   r4, 1(r1)
        lb   r5, 2(r1)
        lb   r6, 3(r1)
        lbu  r7, 3(r1)
        lh   r8, 0(r1)
        lh   r9, 2(r1)
        lhu  r10, 2(r1)
        sb   r2, 5(r1)
        sh   r2, 10(r1)
        lw   r11, 4(r1)
        lw   r12, 8(r1)
        halt
`, pat)
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Fatal(err)
		}
		sysI := mem.NewSystem()
		if err := sysI.LoadProgram(prog); err != nil {
			t.Fatal(err)
		}
		m := iss.New(sysI, prog.Entry)
		if _, err := m.Run(200); err != nil {
			t.Fatal(err)
		}
		sysC := mem.NewSystem()
		if err := sysC.LoadProgram(prog); err != nil {
			t.Fatal(err)
		}
		cp := cpu.New(sysC, prog.Entry)
		cp.Run(2000)
		for r := 3; r <= 12; r++ {
			if m.Regs[r] != cp.State.Regs[r] {
				t.Fatalf("pattern %#x: r%d iss=%#x cpu=%#x",
					pat, r, m.Regs[r], cp.State.Regs[r])
			}
		}
	}
}
