package cpu

// Fingerprint condenses every flip-flop of a State into 64 bits (FNV-1a
// over the register values, with narrow fields packed into shared words).
// The golden trace stores one fingerprint per cycle so the injection
// replay path can run the soft-fault convergence check without a live
// main CPU: equal states always produce equal fingerprints, so a
// mismatch proves the redundant CPU has not re-joined the golden state.
// A match is only a filter — the caller confirms against the exactly
// reconstructed golden state — so a hash collision can cost time, never
// correctness.
//
// Every field of State must feed the hash: the registry cross-check in
// fingerprint_test.go flips each of the NumFlops() flip-flops and fails
// if any of them leaves the fingerprint unchanged, which catches a State
// field added without a matching line here.
func Fingerprint(s *State) uint64 {
	const prime = 0x100000001b3
	h := uint64(0xcbf29ce484222325)
	mix := func(v uint32) {
		h = (h ^ uint64(v)) * prime
	}

	// --- PFU / IMC ---
	mix(s.PC)
	mix(s.FQInstr[0])
	mix(s.FQInstr[1])
	mix(s.FQPC[0])
	mix(s.FQPC[1])
	mix(s.IReqAddr)
	mix(s.IFData)

	// --- DPU ---
	mix(s.DXImm)
	mix(s.DXPC)
	mix(s.DXInstr)
	mix(s.DXRs1Val)
	mix(s.DXRs2Val)
	for i := 0; i < 16; i++ {
		mix(s.Regs[i])
	}
	mix(s.XMAlu)
	mix(s.XMStore)
	mix(s.XMPC)
	mix(s.XMInstr)
	mix(s.MulA)
	mix(s.MulB)
	mix(s.DivRem)
	mix(s.DivQuot)
	mix(s.DivDivisor)
	mix(s.MWVal)
	mix(s.MWPC)
	mix(s.MWInstr)

	// --- LSU / DMC / BIU ---
	mix(s.LSUAddr)
	mix(s.LSUData)
	mix(s.DAddr)
	mix(s.DWData)
	mix(s.DRData)
	mix(s.ExtAddr)
	mix(s.ExtWData)
	mix(s.ExtRData)

	// --- SCU ---
	mix(s.CycCnt)
	mix(s.RetCnt)
	mix(s.EPC)
	for i := 0; i < MPURegions; i++ {
		mix(s.MPUBase[i])
		mix(s.MPULimit[i])
	}

	// Narrow fields, packed byte-per-field into shared words (each field
	// keeps its own lanes, so any single-flop change alters the word).
	mix(uint32(s.FQHead) | uint32(s.DXOp)<<8 | uint32(s.DXRd)<<16 | uint32(s.DXRs1)<<24)
	mix(uint32(s.DXRs2) | uint32(s.XMOp)<<8 | uint32(s.XMRd)<<16 | uint32(s.DivCnt)<<24)
	mix(uint32(s.MWRd) | uint32(s.LSUBE)<<8 | uint32(s.DBE)<<16 | uint32(s.ExtBE)<<24)
	mix(uint32(s.ExtCnt) | uint32(s.ExcCause)<<8)
	for i := 0; i < MPURegions; i++ {
		mix(uint32(s.MPUAttr[i]))
	}

	// Single-bit flops, one lane each.
	mix(b2u(s.FQValid[0]) |
		b2u(s.FQValid[1])<<1 |
		b2u(s.IReqValid)<<2 |
		b2u(s.DXValid)<<3 |
		b2u(s.XMValid)<<4 |
		b2u(s.MulBusy)<<5 |
		b2u(s.MulHiSel)<<6 |
		b2u(s.DivBusy)<<7 |
		b2u(s.DivNegQ)<<8 |
		b2u(s.DivNegR)<<9 |
		b2u(s.DivIsRem)<<10 |
		b2u(s.MWValid)<<11 |
		b2u(s.MWWen)<<12 |
		b2u(s.LSURe)<<13 |
		b2u(s.LSUWe)<<14 |
		b2u(s.DRe)<<15 |
		b2u(s.DWe)<<16 |
		b2u(s.ExtRe)<<17 |
		b2u(s.ExtWe)<<18 |
		b2u(s.ExtBusy)<<19 |
		b2u(s.Halted)<<20 |
		b2u(s.ExcValid)<<21)

	h ^= h >> 32
	return h
}
