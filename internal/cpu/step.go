package cpu

import (
	"lockstep/internal/isa"
	"lockstep/internal/mem"
)

// Step advances the CPU by one clock cycle: it evaluates the combinational
// logic of all five stages against the current flop state and bus, then
// latches the next state. Stages are evaluated back-to-front (WB, MEM, EX,
// ID, IF) so that stall and flush signals flow naturally.
//
// Memory timing: tightly-coupled RAM is synchronous with single-cycle
// access; external (peripheral) accesses occupy the memory stage for
// ExtLatency cycles via the BIU state machine.
func Step(s *State, bus mem.Bus) {
	n := *s // next state; explicit assignments below override held values
	n.CycCnt = s.CycCnt + 1

	// ---------------- WB stage ----------------
	if s.MWValid {
		n.RetCnt = s.RetCnt + 1
		if s.MWWen && s.MWRd != 0 {
			n.Regs[s.MWRd&0xF] = s.MWVal
		}
	}

	// ---------------- MEM stage ----------------
	// Interface registers idle unless an access happens this cycle.
	n.DRe, n.DWe = false, false

	memDone := false
	memExc := uint8(CauseNone)
	var mwVal uint32
	var mwWen bool
	if s.XMValid {
		op := isa.Op(s.XMOp)
		switch {
		case isa.IsLoad(op) || isa.IsStore(op):
			memDone, memExc, mwVal, mwWen = stepMemAccess(s, &n, bus, op)
		default:
			memDone = true
			mwVal = s.XMAlu
			mwWen = isa.WritesReg(op)
		}
	} else {
		memDone = true // empty stage accepts a new instruction
	}

	// MEM/WB latch.
	if s.XMValid && memDone && memExc == CauseNone {
		n.MWValid = true
		n.MWRd = s.XMRd & 0xF
		n.MWVal = mwVal
		n.MWWen = mwWen
		n.MWPC = s.XMPC
		n.MWInstr = s.XMInstr
	} else {
		n.MWValid = false
	}
	if memExc != CauseNone {
		raise(&n, memExc, s.XMPC)
		n.LSURe, n.LSUWe = false, false
	}

	canPushXM := !s.XMValid || memDone

	// ---------------- EX stage ----------------
	exComplete := false
	redirect := false
	var redirectPC uint32
	var xmAlu, xmStore uint32
	var haltReq bool
	if s.DXValid {
		op := isa.Op(s.DXOp)
		a := fwdOperand(s, s.DXRs1, s.DXRs1Val)
		b := fwdOperand(s, s.DXRs2, s.DXRs2Val)
		// Refresh the operand capture latches every cycle the instruction
		// waits in EX, so values forwarded from transient XM/MW producers
		// are retained after the producers retire to the register file.
		n.DXRs1Val, n.DXRs2Val = a, b

		// A load sitting in MEM whose destination we need has no result
		// yet; wait for it to reach the MEM/WB latch.
		exBlocked := s.XMValid && isa.IsLoad(isa.Op(s.XMOp)) && s.XMRd != 0 &&
			(s.XMRd == s.DXRs1 && usesRs1(op) || s.XMRd == s.DXRs2 && usesRs2(op))

		switch op {
		case isa.OpMUL, isa.OpMULH:
			switch {
			case !s.MulBusy && exBlocked:
				// Wait for the operand-producing load before latching.
			case !s.MulBusy:
				n.MulBusy = true
				n.MulA, n.MulB = a, b
				n.MulHiSel = op == isa.OpMULH
			case canPushXM:
				p := int64(int32(s.MulA)) * int64(int32(s.MulB))
				if s.MulHiSel {
					xmAlu = uint32(uint64(p) >> 32)
				} else {
					xmAlu = uint32(p)
				}
				n.MulBusy = false
				exComplete = true
			}
		case isa.OpDIV, isa.OpREM:
			switch {
			case !s.DivBusy && exBlocked:
				// Wait for the operand-producing load before latching.
			case !s.DivBusy:
				startDivide(&n, op, a, b)
			case s.DivCnt > 0:
				stepDivide(s, &n)
			case canPushXM:
				xmAlu = finishDivide(s)
				n.DivBusy = false
				exComplete = true
			}
		default:
			if canPushXM && !exBlocked {
				exComplete = true
				xmAlu, xmStore, redirect, redirectPC, haltReq = execSimple(s, op, a, b)
			}
		}

		if exComplete {
			n.XMValid = true
			n.XMOp = s.DXOp
			n.XMRd = s.DXRd & 0xF
			n.XMAlu = xmAlu
			n.XMStore = xmStore
			n.XMPC = s.DXPC
			n.XMInstr = s.DXInstr
			if isa.IsLoad(op) || isa.IsStore(op) {
				latchLSU(&n, op, xmAlu, xmStore)
			}
			if haltReq {
				n.Halted = true
			}
		}
	}
	if !exComplete && canPushXM {
		n.XMValid = false // bubble
	}

	if redirect {
		n.PC = redirectPC &^ 3
	}

	// ---------------- ID stage ----------------
	dxFree := !s.DXValid || exComplete
	issued := false
	illegal := false
	head := s.FQHead & 1
	headValid := s.FQValid[head]
	if dxFree {
		switch {
		case redirect || s.Halted || n.Halted:
			n.DXValid = false
		case headValid:
			in := isa.Decode(s.FQInstr[head])
			if in.Op == isa.OpInvalid {
				illegal = true
				raise(&n, CauseIllegal, s.FQPC[head])
				n.DXValid = false
			} else {
				issued = true
				n.DXValid = true
				n.DXOp = uint8(in.Op)
				n.DXRd = in.Rd
				n.DXRs1 = in.Rs1
				n.DXRs2 = in.Rs2
				n.DXImm = uint32(in.Imm)
				n.DXPC = s.FQPC[head]
				n.DXInstr = s.FQInstr[head]
				n.DXRs1Val = idRegRead(s, in.Rs1)
				n.DXRs2Val = idRegRead(s, in.Rs2)
			}
		default:
			n.DXValid = false
		}
	}

	// ---------------- IF stage (PFU + IMC) ----------------
	n.IReqValid = false
	if redirect || illegal {
		n.FQValid[0], n.FQValid[1] = false, false
		n.FQHead = 0
		*s = n
		return
	}
	if issued {
		n.FQValid[head] = false
		n.FQHead = (head ^ 1) & 1
	}
	if !s.Halted && !n.Halted {
		if slot, ok := freeFQSlot(&n); ok {
			pc := s.PC
			if pc&3 != 0 || pc >= mem.RAMBytes {
				raise(&n, CauseIFetch, pc)
			} else {
				w := bus.ReadWord(pc)
				n.FQInstr[slot] = w
				n.FQPC[slot] = pc
				n.FQValid[slot] = true
				n.IReqAddr = pc
				n.IReqValid = true
				n.IFData = w
				n.PC = pc + 4
			}
		}
	}
	*s = n
}

// raise records the first exception (sticky) and halts the CPU.
func raise(n *State, cause uint8, pc uint32) {
	if !n.ExcValid {
		n.ExcValid = true
		n.ExcCause = cause & 7
		n.EPC = pc
	}
	n.Halted = true
}

// idRegRead reads a register in decode with a write-through bypass from the
// retiring instruction, so a value written back this cycle is visible to an
// instruction reading it in the same cycle.
func idRegRead(s *State, r uint8) uint32 {
	r &= 0xF
	if r == 0 {
		return 0
	}
	if s.MWValid && s.MWWen && s.MWRd == r {
		return s.MWVal
	}
	return s.Regs[r]
}

// fwdOperand resolves an EX operand with forwarding from the MEM-stage ALU
// result and the WB-stage value, falling back to the operand capture latch.
func fwdOperand(s *State, r uint8, captured uint32) uint32 {
	r &= 0xF
	if r == 0 {
		return 0
	}
	if s.XMValid && s.XMRd == r && !isa.IsLoad(isa.Op(s.XMOp)) &&
		isa.WritesReg(isa.Op(s.XMOp)) {
		return s.XMAlu
	}
	if s.MWValid && s.MWWen && s.MWRd == r {
		return s.MWVal
	}
	return captured
}

func usesRs1(op isa.Op) bool {
	switch isa.FormatOf(op) {
	case isa.FormatR, isa.FormatB:
		return true
	case isa.FormatI:
		return op != isa.OpRDCYC
	}
	return false
}

func usesRs2(op isa.Op) bool {
	switch isa.FormatOf(op) {
	case isa.FormatR, isa.FormatB:
		return true
	}
	return false
}

// execSimple executes all single-cycle operations, returning the ALU/link
// result, store data, and any PC redirect.
func execSimple(s *State, op isa.Op, a, b uint32) (alu, store uint32, redirect bool, target uint32, halt bool) {
	imm := s.DXImm
	switch op {
	case isa.OpADD:
		alu = a + b
	case isa.OpSUB:
		alu = a - b
	case isa.OpAND:
		alu = a & b
	case isa.OpOR:
		alu = a | b
	case isa.OpXOR:
		alu = a ^ b
	case isa.OpSLL:
		alu = a << (b & 31)
	case isa.OpSRL:
		alu = a >> (b & 31)
	case isa.OpSRA:
		alu = uint32(int32(a) >> (b & 31))
	case isa.OpSLT:
		if int32(a) < int32(b) {
			alu = 1
		}
	case isa.OpSLTU:
		if a < b {
			alu = 1
		}
	case isa.OpADDI:
		alu = a + imm
	case isa.OpANDI:
		alu = a & imm
	case isa.OpORI:
		alu = a | imm
	case isa.OpXORI:
		alu = a ^ imm
	case isa.OpSLTI:
		if int32(a) < int32(imm) {
			alu = 1
		}
	case isa.OpSLLI:
		alu = a << (imm & 31)
	case isa.OpSRLI:
		alu = a >> (imm & 31)
	case isa.OpSRAI:
		alu = uint32(int32(a) >> (imm & 31))
	case isa.OpLUI:
		alu = imm
	case isa.OpLW, isa.OpLH, isa.OpLHU, isa.OpLB, isa.OpLBU:
		alu = a + imm
	case isa.OpSW, isa.OpSH, isa.OpSB:
		alu = a + imm
		store = b
	case isa.OpBEQ:
		redirect = a == b
	case isa.OpBNE:
		redirect = a != b
	case isa.OpBLT:
		redirect = int32(a) < int32(b)
	case isa.OpBGE:
		redirect = int32(a) >= int32(b)
	case isa.OpBLTU:
		redirect = a < b
	case isa.OpBGEU:
		redirect = a >= b
	case isa.OpJAL:
		alu = s.DXPC + 4
		redirect = true
	case isa.OpJALR:
		alu = s.DXPC + 4
		redirect = true
		target = a + imm
	case isa.OpRDCYC:
		alu = s.CycCnt
	case isa.OpHALT:
		halt = true
	}
	if redirect && op != isa.OpJALR {
		target = s.DXPC + 4 + imm*4
	}
	return alu, store, redirect, target, halt
}

// latchLSU captures an in-flight data access into the load/store unit:
// the effective address, lane-aligned store data and byte enables.
func latchLSU(n *State, op isa.Op, addr, store uint32) {
	size := isa.MemBytes(op)
	off := addr & 3
	n.LSUAddr = addr
	n.LSUBE = uint8(((1 << size) - 1) << off & 0xF)
	n.LSUData = store << (8 * off)
	n.LSURe = isa.IsLoad(op)
	n.LSUWe = isa.IsStore(op)
}

// stepMemAccess performs the MEM-stage work of a load or store using the
// LSU registers latched at EX completion. TCM accesses complete in one
// cycle through the DMC; external accesses engage the BIU state machine.
func stepMemAccess(s *State, n *State, bus mem.Bus, op isa.Op) (done bool, exc uint8, mwVal uint32, mwWen bool) {
	addr := s.LSUAddr
	size := isa.MemBytes(op)
	if size > 1 && addr&(size-1) != 0 {
		return true, CauseMisaligned, 0, false
	}
	// System-register window: internal SCU access, no external port
	// activity, never MPU-checked.
	if addr >= MMIOBase && addr < MMIOEnd {
		if s.LSUWe {
			n.MPUWrite(addr&^3, s.LSUData, mem.ByteLaneMask(uint32(s.LSUBE)))
		} else {
			mwVal = extractLoad(op, s.MPURead(addr&^3), addr)
			mwWen = true
		}
		n.LSURe, n.LSUWe = false, false
		return true, CauseNone, mwVal, mwWen
	}
	if !s.MPUAllows(addr, s.LSUWe) {
		return true, CauseMPU, 0, false
	}
	if addr >= mem.ExtBase {
		return stepExtAccess(s, n, bus, op)
	}
	if addr >= mem.RAMBytes {
		return true, CauseBusFault, 0, false
	}
	// Tightly-coupled RAM through the DMC: synchronous single-cycle.
	n.DAddr = addr
	n.DBE = s.LSUBE
	if s.LSUWe {
		n.DWe = true
		n.DWData = s.LSUData
		bus.WriteMasked(addr&^3, s.LSUData, mem.ByteLaneMask(uint32(s.LSUBE)))
	} else {
		n.DRe = true
		w := bus.ReadWord(addr &^ 3)
		n.DRData = w
		mwVal = extractLoad(op, w, addr)
		mwWen = true
	}
	n.LSURe, n.LSUWe = false, false
	return true, CauseNone, mwVal, mwWen
}

// stepExtAccess drives the BIU for a peripheral access: a setup cycle, wait
// states, then the bus transaction on the final cycle.
func stepExtAccess(s *State, n *State, bus mem.Bus, op isa.Op) (done bool, exc uint8, mwVal uint32, mwWen bool) {
	switch {
	case !s.ExtBusy:
		n.ExtBusy = true
		n.ExtCnt = ExtLatency - 1
		n.ExtAddr = s.LSUAddr
		n.ExtWData = s.LSUData
		n.ExtBE = s.LSUBE
		n.ExtRe = s.LSURe
		n.ExtWe = s.LSUWe
		return false, CauseNone, 0, false
	case s.ExtCnt > 0:
		n.ExtCnt = s.ExtCnt - 1
		return false, CauseNone, 0, false
	default:
		if s.ExtWe {
			bus.WriteMasked(s.ExtAddr&^3, s.ExtWData, mem.ByteLaneMask(uint32(s.ExtBE)))
		} else {
			w := bus.ReadWord(s.ExtAddr &^ 3)
			n.ExtRData = w
			mwVal = extractLoad(op, w, s.ExtAddr)
			mwWen = true
		}
		n.ExtBusy = false
		n.ExtRe, n.ExtWe = false, false
		n.LSURe, n.LSUWe = false, false
		return true, CauseNone, mwVal, mwWen
	}
}

// extractLoad pulls the addressed lanes out of a memory word and extends
// them per the load opcode.
func extractLoad(op isa.Op, word, addr uint32) uint32 {
	v := word >> (8 * (addr & 3))
	switch op {
	case isa.OpLB:
		return uint32(int32(int8(v)))
	case isa.OpLBU:
		return v & 0xFF
	case isa.OpLH:
		return uint32(int32(int16(v)))
	case isa.OpLHU:
		return v & 0xFFFF
	default:
		return v
	}
}

// startDivide initialises the restoring divider. Divide-by-zero short
// circuits with the RISC-V convention (quotient all-ones, remainder equal
// to the dividend).
func startDivide(n *State, op isa.Op, a, b uint32) {
	n.DivBusy = true
	n.DivIsRem = op == isa.OpREM
	if b == 0 {
		n.DivQuot = 0xFFFF_FFFF
		n.DivRem = a
		n.DivNegQ = false
		n.DivNegR = false
		n.DivCnt = 0
		return
	}
	negA := int32(a) < 0
	negB := int32(b) < 0
	n.DivNegQ = negA != negB
	n.DivNegR = negA
	n.DivQuot = absU32(a)
	n.DivDivisor = absU32(b)
	n.DivRem = 0
	n.DivCnt = 16
}

// stepDivide advances the restoring division by two bits.
func stepDivide(s *State, n *State) {
	rem, quot := s.DivRem, s.DivQuot
	div := s.DivDivisor
	for i := 0; i < 2; i++ {
		rem = rem<<1 | quot>>31
		quot <<= 1
		if rem >= div {
			rem -= div
			quot |= 1
		}
	}
	n.DivRem = rem
	n.DivQuot = quot
	n.DivCnt = s.DivCnt - 1
}

// finishDivide applies the sign fixups and selects quotient or remainder.
func finishDivide(s *State) uint32 {
	q, r := s.DivQuot, s.DivRem
	if s.DivNegQ {
		q = -q
	}
	if s.DivNegR {
		r = -r
	}
	if s.DivIsRem {
		return r
	}
	return q
}

func absU32(v uint32) uint32 {
	if int32(v) < 0 {
		return -v
	}
	return v
}

// freeFQSlot returns the fetch-queue slot a new instruction should fill,
// honouring the head pointer so entries stay in order.
func freeFQSlot(n *State) (int, bool) {
	head := int(n.FQHead & 1)
	if !n.FQValid[head] && !n.FQValid[head^1] {
		return head, true
	}
	if n.FQValid[head] && !n.FQValid[head^1] {
		return head ^ 1, true
	}
	return 0, false
}
