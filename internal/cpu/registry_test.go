package cpu

import (
	"math/rand"
	"testing"
	"testing/quick"
	"unsafe"

	"lockstep/internal/mem"
	"lockstep/internal/units"
)

func TestRegistryNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range Registry() {
		if r.Name == "" {
			t.Fatal("unnamed register")
		}
		if seen[r.Name] {
			t.Fatalf("duplicate register name %q", r.Name)
		}
		seen[r.Name] = true
		if r.Width == 0 || r.Width > 32 {
			t.Fatalf("%s: width %d", r.Name, r.Width)
		}
		if !r.Unit.Valid() || !r.Fine.Valid() {
			t.Fatalf("%s: bad unit tags", r.Name)
		}
		if r.Fine.Coarse() != r.Unit {
			t.Fatalf("%s: fine %v does not map to coarse %v", r.Name, r.Fine, r.Unit)
		}
	}
}

// TestRegistryGetSetRoundTrip: every register stores and returns arbitrary
// patterns masked to its width, without touching other registers.
func TestRegistryGetSetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for ri, r := range Registry() {
		var s State
		pattern := rng.Uint32()
		r.Set(&s, pattern)
		mask := uint32(1)<<r.Width - 1
		if r.Width == 32 {
			mask = ^uint32(0)
		}
		if got := r.Get(&s); got != pattern&mask {
			t.Fatalf("%s: set %#x, got %#x (mask %#x)", r.Name, pattern, got, mask)
		}
		// No other register changed.
		for rj, other := range Registry() {
			if rj != ri && other.Get(&s) != 0 {
				t.Fatalf("setting %s leaked into %s", r.Name, other.Name)
			}
		}
	}
}

// TestFlipBitInvolution: flipping the same flop twice restores the state.
func TestFlipBitInvolution(t *testing.T) {
	f := func(flopRaw uint32, seed int64) bool {
		flop := int(flopRaw) % NumFlops()
		rng := rand.New(rand.NewSource(seed))
		var s State
		for _, r := range Registry() {
			r.Set(&s, rng.Uint32())
		}
		orig := s
		FlipBit(&s, flop)
		if s == orig {
			return false // must change something
		}
		FlipBit(&s, flop)
		return s == orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestForceBitIdempotent: forcing is idempotent and GetBit observes it.
func TestForceBitIdempotent(t *testing.T) {
	f := func(flopRaw uint32, v bool) bool {
		flop := int(flopRaw) % NumFlops()
		var s State
		ForceBit(&s, flop, v)
		once := s
		ForceBit(&s, flop, v)
		return s == once && GetBit(&s, flop) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFlopIndexBijection(t *testing.T) {
	for i := 0; i < NumFlops(); i++ {
		if got := FlopIndex(FlopAt(i)); got != i {
			t.Fatalf("flop %d round-trips to %d", i, got)
		}
	}
}

func TestFlopCountsConsistent(t *testing.T) {
	var unitSum, fineSum int
	for u := 0; u < units.NumUnits; u++ {
		unitSum += UnitFlops(units.Unit(u))
	}
	for f := 0; f < units.NumFine; f++ {
		fineSum += FineFlops(units.Fine(f))
	}
	if unitSum != NumFlops() || fineSum != NumFlops() {
		t.Fatalf("unit sum %d, fine sum %d, total %d", unitSum, fineSum, NumFlops())
	}
	// DPU coarse = sum of its fine sub-units.
	var dpu int
	for f := units.FineDPUDecode; f < units.NumFine; f++ {
		dpu += FineFlops(f)
	}
	if dpu != UnitFlops(units.DPU) {
		t.Fatalf("DPU fine sum %d != coarse %d", dpu, UnitFlops(units.DPU))
	}
	// Every unit has some state.
	for u := 0; u < units.NumUnits; u++ {
		if UnitFlops(units.Unit(u)) == 0 {
			t.Fatalf("unit %v has no flops", units.Unit(u))
		}
	}
}

// TestRegistryWidthAccounting cross-checks the registry's total width
// against a manual census of the State struct: every injectable bit is
// registered exactly once (the paper's methodology requires covering
// every flip-flop).
func TestRegistryWidthAccounting(t *testing.T) {
	// Architectural census of State (see state.go):
	want := 0
	want += 32 + 2*32 + 2*32 + 2*1 + 1       // PFU: PC, FQInstr, FQPC, FQValid, FQHead
	want += 32 + 1 + 32                      // IMC
	want += 6 + 4 + 32 + 32 + 32 + 1         // DPU decode
	want += 32 + 32 + 4 + 4                  // DPU operand
	want += 15 * 32                          // DPU regfile (R0 hardwired)
	want += 6 + 4 + 32 + 32 + 32 + 32 + 1    // DPU ALU latch
	want += 1 + 32 + 32 + 1                  // DPU mul
	want += 1 + 5 + 32 + 32 + 32 + 1 + 1 + 1 // DPU div
	want += 4 + 32 + 32 + 32 + 1 + 1         // DPU retire
	want += 32 + 32 + 4 + 1 + 1              // LSU
	want += 32 + 32 + 4 + 1 + 1 + 32         // DMC
	want += 32 + 32 + 4 + 1 + 1 + 1 + 2 + 32 // BIU
	want += 32 + 32 + 1 + 1 + 3 + 32         // SCU core
	want += MPURegions * (32 + 32 + 2)       // SCU MPU
	if NumFlops() != want {
		t.Fatalf("registry covers %d flops, census says %d", NumFlops(), want)
	}
	// The State struct itself should not dwarf the census (a new field
	// would likely change the size; this is a tripwire, not an exact
	// check).
	if unsafe.Sizeof(State{}) > 1024 {
		t.Fatalf("State grew to %d bytes; update the registry and census", unsafe.Sizeof(State{}))
	}
}

// TestStepTotalOnRandomStates: fault injection can leave the CPU in any
// state the registry can express; Step must be total (no panics, no
// out-of-range anything) from every such state.
func TestStepTotalOnRandomStates(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sys := mem.NewSystem()
	for trial := 0; trial < 300; trial++ {
		var s State
		for _, r := range Registry() {
			r.Set(&s, rng.Uint32())
		}
		for i := 0; i < 25; i++ {
			Step(&s, sys)
			_ = s.Outputs()
		}
	}
}

func TestFlopNameFormat(t *testing.T) {
	if name := FlopName(0); name != "PC[0]" {
		t.Fatalf("first flop name %q", name)
	}
}

func TestFlopUnitTagging(t *testing.T) {
	for i := 0; i < NumFlops(); i++ {
		if FlopFine(i).Coarse() != FlopUnit(i) {
			t.Fatalf("flop %d: inconsistent unit tags", i)
		}
	}
}
