package cpu

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSCNamesComplete(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < NumSC; i++ {
		name := SCName(i)
		if name == "" {
			t.Fatalf("SC %d unnamed", i)
		}
		if seen[name] {
			t.Fatalf("duplicate SC name %q", name)
		}
		seen[name] = true
	}
}

func TestSCWidthsSumToPortBits(t *testing.T) {
	sum := 0
	for i := 0; i < NumSC; i++ {
		w := SCWidth(i)
		if w <= 0 || w > 8 {
			t.Fatalf("SC %d width %d", i, w)
		}
		sum += w
	}
	if sum != OutputPortBits() {
		t.Fatalf("SC widths sum %d != port bits %d", sum, OutputPortBits())
	}
	// The port is a meaningful fraction of a bus-level interface: three
	// 32-bit address/data pairs plus trace and status.
	if sum < 250 || sum > 400 {
		t.Fatalf("port bits %d outside plausible range", sum)
	}
}

func TestDivergeSelfIsZero(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s State
		for _, r := range Registry() {
			r.Set(&s, rng.Uint32())
		}
		o := s.Outputs()
		return Diverge(&o, &o) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDivergeSymmetric(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		mk := func(seed int64) OutVec {
			rng := rand.New(rand.NewSource(seed))
			var s State
			for _, r := range Registry() {
				r.Set(&s, rng.Uint32())
			}
			return s.Outputs()
		}
		a, b := mk(seedA), mk(seedB)
		return Diverge(&a, &b) == Diverge(&b, &a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQualifiedComparisonGatesPayloads: with the valid strobes low, the
// payload buses are not compared — stale data-port or trace values cannot
// raise a divergence on their own.
func TestQualifiedComparisonGatesPayloads(t *testing.T) {
	var a, b State
	a.Reset(0)
	b.Reset(0)

	// Stale data-port registers differ, strobes idle: no divergence.
	a.DAddr, b.DAddr = 0x1000, 0x2000
	a.DWData, b.DWData = 1, 2
	a.MWPC, b.MWPC = 0x40, 0x80 // retire trace invalid
	a.EPC, b.EPC = 0x1, 0x2     // no exception
	oa, ob := a.Outputs(), b.Outputs()
	if d := Diverge(&oa, &ob); d != 0 {
		t.Fatalf("idle payloads compared: map %#x", d)
	}

	// Raise the strobe on one side: both the strobe SC and the payload
	// SCs diverge.
	a.DRe = true
	oa = a.Outputs()
	d := Diverge(&oa, &ob)
	if d&(1<<SCDCtlRW) == 0 {
		t.Fatal("strobe divergence not flagged")
	}
	if d&(0xFF<<SCDAddr0) == 0 {
		t.Fatal("payload not compared once qualified")
	}

	// Both strobes high: payload difference alone diverges.
	b.DRe = true
	oa, ob = a.Outputs(), b.Outputs()
	d = Diverge(&oa, &ob)
	if d&(1<<SCDCtlRW) != 0 {
		t.Fatal("strobes agree but flagged")
	}
	if d&(0xFF<<SCDAddr0) == 0 {
		t.Fatal("qualified payload difference missed")
	}
}

func TestTraceGatedByRetire(t *testing.T) {
	var a, b State
	a.MWVal, b.MWVal = 10, 20
	a.MWWen, b.MWWen = true, true
	oa, ob := a.Outputs(), b.Outputs()
	if Diverge(&oa, &ob) != 0 {
		t.Fatal("invalid retire slot compared")
	}
	a.MWValid, b.MWValid = true, true
	oa, ob = a.Outputs(), b.Outputs()
	if Diverge(&oa, &ob)&(0xFF<<SCWBData0) == 0 {
		t.Fatal("valid writeback value not compared")
	}
}

func TestExceptionOutputsGated(t *testing.T) {
	var a, b State
	a.EPC, b.EPC = 0x100, 0x200
	a.ExcCause, b.ExcCause = 1, 2
	oa, ob := a.Outputs(), b.Outputs()
	if Diverge(&oa, &ob) != 0 {
		t.Fatal("exception payload compared while no exception")
	}
	a.ExcValid = true
	oa = a.Outputs()
	d := Diverge(&oa, &ob)
	if d&(1<<SCExcValid) == 0 || d&(0xF<<SCEPC0) == 0 {
		t.Fatalf("exception divergence map %#x", d)
	}
}

func TestHaltedVisible(t *testing.T) {
	var a, b State
	a.Halted = true
	oa, ob := a.Outputs(), b.Outputs()
	if Diverge(&oa, &ob)&(1<<SCHalted) == 0 {
		t.Fatal("halted status not compared")
	}
}

func TestDumpSmoke(t *testing.T) {
	var s State
	s.Reset(0x40)
	var buf1 strings.Builder
	s.Dump(&buf1)
	if !strings.Contains(buf1.String(), "pc=0x00000040") {
		t.Fatalf("dump missing PC:\n%s", buf1.String())
	}
	// Populate some state and re-dump.
	s.DXValid = true
	s.DXInstr = 0x04400001 // some instruction word
	s.MulBusy = true
	s.ExcValid = true
	s.ExcCause = CauseMPU
	s.MPUAttr[0] = 3
	s.MPULimit[0] = 0x3FFFF
	var buf2 strings.Builder
	s.Dump(&buf2)
	out := buf2.String()
	for _, m := range []string{"mul busy", "EXC cause=5", "mpu0"} {
		if !strings.Contains(out, m) {
			t.Errorf("dump missing %q", m)
		}
	}
}
