package cpu

import (
	"fmt"
	"io"

	"lockstep/internal/isa"
)

// Dump renders the pipeline and unit state for humans — the debugging view
// behind sr5-run -dump and lockstep-trace. One line per pipeline stage
// with disassembly, then the architectural registers and unit status.
func (s *State) Dump(w io.Writer) {
	fmt.Fprintf(w, "cycle %d  retired %d  halted=%v", s.CycCnt, s.RetCnt, s.Halted)
	if s.ExcValid {
		fmt.Fprintf(w, "  EXC cause=%d epc=%#x", s.ExcCause, s.EPC)
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "  IF : pc=%#08x fq=[%s %s] head=%d\n",
		s.PC, fqEntry(s, 0), fqEntry(s, 1), s.FQHead&1)
	fmt.Fprintf(w, "  EX : %s\n", stageInstr(s.DXValid, s.DXPC, s.DXInstr))
	if s.MulBusy {
		fmt.Fprintf(w, "       mul busy: %#x * %#x (hi=%v)\n", s.MulA, s.MulB, s.MulHiSel)
	}
	if s.DivBusy {
		fmt.Fprintf(w, "       div busy: cnt=%d rem=%#x quot=%#x\n", s.DivCnt, s.DivRem, s.DivQuot)
	}
	fmt.Fprintf(w, "  MEM: %s", stageInstr(s.XMValid, s.XMPC, s.XMInstr))
	if s.XMValid && (isa.IsLoad(isa.Op(s.XMOp)) || isa.IsStore(isa.Op(s.XMOp))) {
		fmt.Fprintf(w, "  [lsu addr=%#x be=%x re=%v we=%v]", s.LSUAddr, s.LSUBE, s.LSURe, s.LSUWe)
	}
	if s.ExtBusy {
		fmt.Fprintf(w, "  [biu busy cnt=%d addr=%#x]", s.ExtCnt, s.ExtAddr)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  WB : %s", stageInstr(s.MWValid, s.MWPC, s.MWInstr))
	if s.MWValid && s.MWWen {
		fmt.Fprintf(w, "  r%d <- %#x", s.MWRd, s.MWVal)
	}
	fmt.Fprintln(w)

	for i := 0; i < 16; i += 4 {
		fmt.Fprintf(w, "  r%-2d=%08x r%-2d=%08x r%-2d=%08x r%-2d=%08x\n",
			i, s.Regs[i], i+1, s.Regs[i+1], i+2, s.Regs[i+2], i+3, s.Regs[i+3])
	}
	for i := 0; i < MPURegions; i++ {
		if s.MPUAttr[i]&1 != 0 {
			fmt.Fprintf(w, "  mpu%d: [%#x, %#x] attr=%x\n",
				i, s.MPUBase[i], s.MPULimit[i], s.MPUAttr[i])
		}
	}
}

func fqEntry(s *State, i int) string {
	if !s.FQValid[i] {
		return "-"
	}
	return fmt.Sprintf("%#x", s.FQPC[i])
}

func stageInstr(valid bool, pc, instr uint32) string {
	if !valid {
		return "(bubble)"
	}
	return fmt.Sprintf("%#08x: %s", pc, isa.Disassemble(isa.Decode(instr)))
}
