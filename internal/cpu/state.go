// Package cpu implements SR5, a cycle-accurate five-stage in-order RISC CPU
// written at register-transfer level: every microarchitectural state bit is
// an explicitly enumerated flip-flop tagged with the logical unit it belongs
// to (see internal/units), so fault-injection campaigns can target any flop
// with single-cycle transient flips or persistent stuck-at forcing — the
// same methodology the paper applies to a Cortex-R5 netlist.
//
// The CPU is organised into the seven coarse units of the paper's Figure 8:
//
//	PFU  prefetch unit: PC, two-entry fetch queue, redirect handling
//	IMC  instruction memory control: instruction-port interface registers
//	DPU  data processing unit: decode/operand latches, register file, ALU
//	     (EX/MEM latch), 2-cycle multiplier, iterative divider, retire latch
//	LSU  load/store unit: in-flight access registers
//	DMC  data memory control: data-port interface registers
//	BIU  bus interface unit: external (peripheral) bus master
//	SCU  system control unit: counters, exception and halt state
//
// All output-port signals compared by the lockstep checker are registered
// (pure functions of State), so a divergence observed by the checker at
// cycle N reflects flop state latched at the end of cycle N.
package cpu

import "lockstep/internal/mem"

// Exception causes recorded in the SCU when the CPU enters its trapped
// (halted-with-error) state.
const (
	CauseNone       = 0
	CauseIllegal    = 1 // undefined opcode reached decode
	CauseMisaligned = 2 // data access not aligned to its size
	CauseBusFault   = 3 // data access outside RAM and peripheral regions
	CauseIFetch     = 4 // instruction fetch from a non-executable address
	CauseMPU        = 5 // data access denied by the memory protection unit
)

// ExtLatency is the number of cycles an external (BIU) access occupies the
// memory stage: one setup cycle plus ExtLatency-1 wait states.
const ExtLatency = 3

// State holds every flip-flop of the SR5 CPU. It is a plain comparable
// value: copying it snapshots the CPU and == detects state convergence
// after a masked transient fault. Field groups correspond to the flop
// registry in registry.go; adding a field requires adding it there too
// (the registry test cross-checks total width against unsafe.Sizeof-based
// accounting of known fields).
type State struct {
	// --- PFU ---
	PC      uint32    // next fetch address
	FQInstr [2]uint32 // fetch queue: instruction words
	FQPC    [2]uint32 // fetch queue: fetch addresses
	FQValid [2]bool   // fetch queue: entry valid bits
	FQHead  uint8     // index of oldest valid entry (1 bit)

	// --- IMC ---
	IReqAddr  uint32 // registered instruction-port address
	IReqValid bool   // registered instruction-port request strobe
	IFData    uint32 // registered fetched instruction word

	// --- DPU: decode (ID/EX control latch) ---
	DXOp    uint8  // opcode (6 bits)
	DXRd    uint8  // destination register (4 bits)
	DXImm   uint32 // sign-extended immediate
	DXPC    uint32 // instruction address
	DXInstr uint32 // raw instruction word (trace)
	DXValid bool

	// --- DPU: operand latches ---
	DXRs1Val uint32 // captured/refreshed source 1 value
	DXRs2Val uint32 // captured/refreshed source 2 value
	DXRs1    uint8  // source 1 register number (4 bits)
	DXRs2    uint8  // source 2 register number (4 bits)

	// --- DPU: register file (R0 is hardwired zero, not a flop) ---
	Regs [16]uint32

	// --- DPU: ALU (EX/MEM latch) ---
	XMOp    uint8
	XMRd    uint8
	XMAlu   uint32 // ALU result / effective address / link value
	XMStore uint32 // store data (pre-lane-alignment)
	XMPC    uint32
	XMInstr uint32
	XMValid bool

	// --- DPU: multiplier (2-cycle) ---
	MulBusy  bool
	MulA     uint32
	MulB     uint32
	MulHiSel bool // true for MULH

	// --- DPU: iterative divider (2 bits per cycle, restoring) ---
	DivBusy    bool
	DivCnt     uint8 // remaining iteration pairs (5 bits)
	DivRem     uint32
	DivQuot    uint32
	DivDivisor uint32
	DivNegQ    bool // quotient sign fixup
	DivNegR    bool // remainder sign fixup
	DivIsRem   bool // REM selects remainder

	// --- DPU: retire (MEM/WB latch) ---
	MWRd    uint8
	MWVal   uint32
	MWPC    uint32
	MWInstr uint32
	MWValid bool
	MWWen   bool

	// --- LSU: in-flight data access ---
	LSUAddr uint32
	LSUData uint32 // store data shifted to byte lanes
	LSUBE   uint8  // byte enables (4 bits)
	LSURe   bool
	LSUWe   bool

	// --- DMC: data-port interface registers ---
	DAddr  uint32
	DWData uint32
	DBE    uint8
	DRe    bool
	DWe    bool
	DRData uint32 // registered read data

	// --- BIU: external bus master ---
	ExtAddr  uint32
	ExtWData uint32
	ExtBE    uint8
	ExtRe    bool
	ExtWe    bool
	ExtBusy  bool
	ExtCnt   uint8 // wait-state countdown (2 bits)
	ExtRData uint32

	// --- SCU ---
	CycCnt   uint32
	RetCnt   uint32
	Halted   bool
	ExcValid bool
	ExcCause uint8 // 3 bits
	EPC      uint32

	// --- SCU: memory protection unit ---
	// Eight data-side regions programmed through the system-register
	// window (MMIOBase). A region allows accesses in [Base, Limit] when
	// its attr enable bit is set; stores additionally need the write bit.
	// With no region enabled the MPU is inactive (reset state). This is
	// the configured-once, consulted-always state a real-time CPU like the
	// Cortex-R5 carries; transient faults in it are almost always
	// harmless while stuck-at faults eventually deny or corrupt accesses.
	MPUBase  [MPURegions]uint32
	MPULimit [MPURegions]uint32
	MPUAttr  [MPURegions]uint8 // bit0 enable, bit1 write-allow
}

// MPURegions is the number of MPU regions.
const MPURegions = 8

// System-register window (data side): the MPU programming interface.
// Region i occupies 16 bytes: +0 base, +4 limit, +8 attr.
const (
	MMIOBase = 0x000F0000
	MMIOEnd  = MMIOBase + MPURegions*16
)

// MPUAllows checks a data access against the MPU configuration.
func (s *State) MPUAllows(addr uint32, write bool) bool {
	any := false
	for i := 0; i < MPURegions; i++ {
		attr := s.MPUAttr[i]
		if attr&1 == 0 {
			continue
		}
		any = true
		if addr >= s.MPUBase[i] && addr <= s.MPULimit[i] && (!write || attr&2 != 0) {
			return true
		}
	}
	return !any
}

// MPURead returns the system-register word at a window offset.
func (s *State) MPURead(addr uint32) uint32 {
	off := addr - MMIOBase
	i := off / 16
	switch off % 16 {
	case 0:
		return s.MPUBase[i]
	case 4:
		return s.MPULimit[i]
	case 8:
		return uint32(s.MPUAttr[i] & 3)
	}
	return 0
}

// MPUWrite updates the system-register word at a window offset.
func (s *State) MPUWrite(addr, data, mask uint32) {
	off := addr - MMIOBase
	i := off / 16
	switch off % 16 {
	case 0:
		s.MPUBase[i] = s.MPUBase[i]&^mask | data&mask
	case 4:
		s.MPULimit[i] = s.MPULimit[i]&^mask | data&mask
	case 8:
		s.MPUAttr[i] = uint8((uint32(s.MPUAttr[i])&^mask | data&mask) & 3)
	}
}

// Reset initialises the CPU to its architectural reset state with the given
// entry PC. Lockstep requires main and redundant CPUs to reset to identical
// internal state (Section II of the paper); zeroing every flop guarantees
// that.
func (s *State) Reset(entry uint32) {
	*s = State{PC: entry}
}

// Halted CPUs have quiesced: no fetch, no issue; the pipeline drains.
// Trapped reports whether the CPU halted due to an exception.
func (s *State) Trapped() bool { return s.Halted && s.ExcValid }

// Drained reports whether the CPU has halted and all in-flight
// instructions have retired.
func (s *State) Drained() bool {
	return s.Halted && !s.DXValid && !s.XMValid && !s.MWValid && !s.ExtBusy
}

// CPU bundles a State with the bus it executes against. The zero CPU is
// not usable; construct with New.
type CPU struct {
	State State
	Bus   mem.Bus
}

// New returns a CPU reset to entry, executing against bus.
func New(bus mem.Bus, entry uint32) *CPU {
	c := &CPU{Bus: bus}
	c.State.Reset(entry)
	return c
}

// StepCycle advances the CPU by one clock cycle.
func (c *CPU) StepCycle() { Step(&c.State, c.Bus) }

// Fork returns a new CPU whose flop state is a bit-identical copy of c,
// executing against bus. State is a plain value so the copy shares nothing
// with the original; the lockstep harness uses this to bring up redundant
// CPUs mid-run and the campaign driver to replicate golden state into
// per-experiment simulator instances on concurrent workers.
func (c *CPU) Fork(bus mem.Bus) *CPU { return &CPU{State: c.State, Bus: bus} }

// Run steps until the CPU halts and drains, or maxCycles elapse, returning
// the number of cycles executed.
func (c *CPU) Run(maxCycles int) int {
	for i := 0; i < maxCycles; i++ {
		if c.State.Drained() {
			return i
		}
		c.StepCycle()
	}
	return maxCycles
}
