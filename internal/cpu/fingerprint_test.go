package cpu

import (
	"testing"

	"lockstep/internal/mem"
)

// TestFingerprintCoversEveryFlop is the registry cross-check promised in
// fingerprint.go: flipping any single flip-flop of a State must change
// its fingerprint, both from reset state and from a mid-execution state.
// A State field added without a matching mix line in Fingerprint shows up
// here as an unchanged hash.
func TestFingerprintCoversEveryFlop(t *testing.T) {
	states := map[string]State{}
	var reset State
	reset.Reset(0)
	states["reset"] = reset

	// A warmed-up state with valid bits set and non-trivial values in the
	// datapath registers.
	sys := mem.NewSystem()
	c := New(sys, 0)
	for i := 0; i < 200; i++ {
		c.StepCycle()
	}
	states["warm"] = c.State

	for name, base := range states {
		ref := Fingerprint(&base)
		for flop := 0; flop < NumFlops(); flop++ {
			s := base
			FlipBit(&s, flop)
			if Fingerprint(&s) == ref {
				f := FlopAt(flop)
				t.Errorf("%s state: flipping flop %d (reg %d bit %d) left the fingerprint unchanged",
					name, flop, f.Reg, f.Bit)
			}
		}
	}
}

// TestFingerprintDeterministic: equal states hash equal (the property the
// convergence filter's soundness direction rests on).
func TestFingerprintDeterministic(t *testing.T) {
	var a, b State
	a.Reset(0x40)
	b.Reset(0x40)
	if a != b {
		t.Fatal("reset states differ")
	}
	if Fingerprint(&a) != Fingerprint(&b) {
		t.Fatal("equal states produced different fingerprints")
	}
}
