package cpu_test

import (
	"testing"

	"lockstep/internal/asm"
	"lockstep/internal/cpu"
	"lockstep/internal/mem"
)

// runCycles assembles src, runs to drain, and returns (cycles, instret).
func runCycles(t *testing.T, src string) (int, uint32) {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	sys := mem.NewSystem()
	if err := sys.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	c := cpu.New(sys, prog.Entry)
	cycles := c.Run(100000)
	if !c.State.Drained() {
		t.Fatal("did not drain")
	}
	if c.State.Trapped() {
		t.Fatalf("trapped: cause=%d", c.State.ExcCause)
	}
	return cycles, c.State.RetCnt
}

// TestStraightLineCPI: a long chain of independent ALU instructions
// sustains one instruction per cycle once the pipeline is full.
func TestStraightLineCPI(t *testing.T) {
	body := ""
	for i := 0; i < 200; i++ {
		body += "        addi r1, r1, 1\n        addi r2, r2, 2\n"
	}
	cycles, instret := runCycles(t, body+"        halt\n")
	cpi := float64(cycles) / float64(instret)
	if cpi > 1.2 {
		t.Fatalf("straight-line CPI %.2f (cycles=%d, instret=%d); pipeline not streaming",
			cpi, cycles, instret)
	}
}

// TestBackToBackForwarding: dependent ALU chains must not stall (EX<-MEM
// and EX<-WB forwarding paths).
func TestBackToBackForwarding(t *testing.T) {
	indep := ""
	dep := ""
	for i := 0; i < 100; i++ {
		indep += "        addi r1, r1, 1\n        addi r2, r2, 1\n        addi r3, r3, 1\n"
		dep += "        addi r1, r1, 1\n        addi r1, r1, 1\n        addi r1, r1, 1\n"
	}
	ci, _ := runCycles(t, indep+"        halt\n")
	cd, _ := runCycles(t, dep+"        halt\n")
	if diff := cd - ci; diff > 5 {
		t.Fatalf("dependent chain costs %d extra cycles; forwarding broken", diff)
	}
}

// TestLoadUseStallIsOneBubble: a dependent use immediately after a load
// costs exactly one extra cycle compared to an independent instruction in
// between.
func TestLoadUseStallIsOneBubble(t *testing.T) {
	prologue := `
        li   r10, 0x8000
        li   r9, 42
        sw   r9, 0(r10)
`
	direct := prologue
	spaced := prologue
	for i := 0; i < 50; i++ {
		direct += "        lw r1, 0(r10)\n        add r2, r1, r1\n"
		spaced += "        lw r1, 0(r10)\n        addi r5, r5, 1\n        add r2, r1, r1\n"
	}
	cd, id := runCycles(t, direct+"        halt\n")
	cs, is := runCycles(t, spaced+"        halt\n")
	// spaced executes 50 more instructions; if the load-use bubble is one
	// cycle, both bodies take about the same number of cycles.
	if is-id != 50 {
		t.Fatalf("instruction count delta %d, want 50", is-id)
	}
	if delta := cs - cd; delta < -5 || delta > 10 {
		t.Fatalf("load-use bubble wrong: direct=%d cyc, spaced=%d cyc", cd, cs)
	}
}

// TestTakenBranchPenalty: taken branches cost a small, bounded flush
// penalty.
func TestTakenBranchPenalty(t *testing.T) {
	// Loop with one taken branch per 4 instructions.
	loop := `
        li   r1, 200
loop:   addi r2, r2, 1
        addi r3, r3, 1
        dec  r1
        bne  r1, r0, loop
        halt
`
	cycles, instret := runCycles(t, loop)
	cpi := float64(cycles) / float64(instret)
	// 1 taken branch per 4 instructions; penalty p gives CPI = 1 + p/4.
	if cpi < 1.2 || cpi > 2.6 {
		t.Fatalf("branch-heavy CPI %.2f outside plausible flush-penalty band", cpi)
	}
}

// TestNotTakenBranchIsCheap: a never-taken branch adds no flush penalty.
func TestNotTakenBranchIsCheap(t *testing.T) {
	body := ""
	for i := 0; i < 100; i++ {
		body += "        beq r1, r2, never\n        addi r3, r3, 1\n"
	}
	body += "        halt\nnever:  halt\n"
	cycles, instret := runCycles(t, "        li r1, 1\n        li r2, 2\n"+body)
	cpi := float64(cycles) / float64(instret)
	if cpi > 1.2 {
		t.Fatalf("not-taken branch CPI %.2f; static not-taken fetch broken", cpi)
	}
}

// TestDividerLatency: DIV occupies EX for a bounded iterative latency.
func TestDividerLatency(t *testing.T) {
	base, _ := runCycles(t, "        li r1, 1000\n        li r2, 7\n        halt\n")
	withDiv, _ := runCycles(t, "        li r1, 1000\n        li r2, 7\n        div r3, r1, r2\n        halt\n")
	lat := withDiv - base
	if lat < 15 || lat > 22 {
		t.Fatalf("divider latency %d cycles, want ~18 (1 init + 16 iterate + 1 finish)", lat)
	}
}

// TestMultiplierLatency: MUL costs one extra cycle over an ALU op.
func TestMultiplierLatency(t *testing.T) {
	withAdd, _ := runCycles(t, "        li r1, 3\n        li r2, 5\n        add r3, r1, r2\n        halt\n")
	withMul, _ := runCycles(t, "        li r1, 3\n        li r2, 5\n        mul r3, r1, r2\n        halt\n")
	if lat := withMul - withAdd; lat != 1 {
		t.Fatalf("multiplier adds %d cycles over ALU, want 1 (2-cycle pipelined)", lat)
	}
}

// TestExternalAccessLatency: peripheral loads occupy the memory stage for
// ExtLatency cycles.
func TestExternalAccessLatency(t *testing.T) {
	tcm, _ := runCycles(t, `
        li r1, 0x8000
        lw r2, 0(r1)
        halt
`)
	ext, _ := runCycles(t, `
        li r1, 0x80000000
        lw r2, 0(r1)
        halt
`)
	// li of the 32-bit peripheral base is 2 words vs 1, costing one extra
	// instruction; the remaining delta is BIU wait states.
	if delta := ext - tcm; delta < cpu.ExtLatency-1 || delta > cpu.ExtLatency+2 {
		t.Fatalf("external access delta %d cycles, ExtLatency=%d", delta, cpu.ExtLatency)
	}
}

// TestStoreToLoadThroughMemory: a store followed immediately by a load of
// the same address returns the stored value (no stale forwarding).
func TestStoreToLoadThroughMemory(t *testing.T) {
	prog := asm.MustAssemble(`
        li  r1, 0x8000
        li  r2, 1234
        sw  r2, 0(r1)
        lw  r3, 0(r1)
        add r4, r3, r3
        halt
`)
	sys := mem.NewSystem()
	if err := sys.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	c := cpu.New(sys, prog.Entry)
	c.Run(1000)
	if c.State.Regs[3] != 1234 || c.State.Regs[4] != 2468 {
		t.Fatalf("r3=%d r4=%d", c.State.Regs[3], c.State.Regs[4])
	}
}

// TestJALRLinkAndTarget: the link register and the computed target are
// both correct under forwarding.
func TestJALRLinkAndTarget(t *testing.T) {
	prog := asm.MustAssemble(`
        li   r1, target
        addi r1, r1, 0     ; forwarded target address
        jalr r2, r1, 0
dead:   halt               ; skipped
target: addi r3, r0, 7
        halt
`)
	sys := mem.NewSystem()
	if err := sys.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	c := cpu.New(sys, prog.Entry)
	c.Run(1000)
	if c.State.Regs[3] != 7 {
		t.Fatal("jalr did not reach target")
	}
	if c.State.Regs[2] != prog.Symbols["dead"] {
		t.Fatalf("link=%#x, want %#x", c.State.Regs[2], prog.Symbols["dead"])
	}
}

// TestRDCYCMonotone: successive RDCYCs observe strictly increasing cycle
// counts.
func TestRDCYCMonotone(t *testing.T) {
	prog := asm.MustAssemble(`
        rdcyc r1
        rdcyc r2
        rdcyc r3
        halt
`)
	sys := mem.NewSystem()
	if err := sys.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	c := cpu.New(sys, prog.Entry)
	c.Run(100)
	if !(c.State.Regs[1] < c.State.Regs[2] && c.State.Regs[2] < c.State.Regs[3]) {
		t.Fatalf("rdcyc sequence %d, %d, %d not increasing",
			c.State.Regs[1], c.State.Regs[2], c.State.Regs[3])
	}
}

// TestMPUFaultInPipeline: the pipelined CPU raises the MPU cause, with the
// EPC pointing at the denied access.
func TestMPUFaultInPipeline(t *testing.T) {
	prog := asm.MustAssemble(`
        .equ WIN, 0xF0000
        li   r1, WIN
        li   r2, 0x8000
        sw   r2, 0(r1)
        li   r2, 0x8FFF
        sw   r2, 4(r1)
        li   r2, 3
        sw   r2, 8(r1)
        li   r3, 0x9000
denied: lw   r4, 0(r3)
        halt
`)
	sys := mem.NewSystem()
	if err := sys.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	c := cpu.New(sys, prog.Entry)
	c.Run(1000)
	if !c.State.Trapped() || c.State.ExcCause != cpu.CauseMPU {
		t.Fatalf("want MPU trap, got halted=%v cause=%d", c.State.Halted, c.State.ExcCause)
	}
	if c.State.EPC != prog.Symbols["denied"] {
		t.Fatalf("EPC=%#x, want %#x", c.State.EPC, prog.Symbols["denied"])
	}
}

// TestMPUReadback: system-register loads come back through the pipeline.
func TestMPUReadback(t *testing.T) {
	prog := asm.MustAssemble(`
        .equ WIN, 0xF0000
        li   r1, WIN
        li   r2, 0xABCD
        sw   r2, 16(r1)     ; region 1 base
        lw   r3, 16(r1)
        halt
`)
	sys := mem.NewSystem()
	if err := sys.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	c := cpu.New(sys, prog.Entry)
	c.Run(1000)
	if c.State.Regs[3] != 0xABCD {
		t.Fatalf("readback %#x", c.State.Regs[3])
	}
	if c.State.MPUBase[1] != 0xABCD {
		t.Fatalf("MPU register not written: %#x", c.State.MPUBase[1])
	}
}

// TestMPUReadOnlyRegionBlocksStores: the pipeline honours the write-allow
// attribute bit.
func TestMPUReadOnlyRegionBlocksStores(t *testing.T) {
	prog := asm.MustAssemble(`
        .equ WIN, 0xF0000
        li   r1, WIN
        sw   r0, 0(r1)
        li   r2, 0x3FFFF
        sw   r2, 4(r1)
        li   r2, 1          ; enabled, read-only
        sw   r2, 8(r1)
        lw   r3, 0x8000(r0) ; read allowed
        sw   r3, 0x8000(r0) ; write denied
        halt
`)
	sys := mem.NewSystem()
	if err := sys.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	c := cpu.New(sys, prog.Entry)
	c.Run(1000)
	if !c.State.Trapped() || c.State.ExcCause != cpu.CauseMPU {
		t.Fatalf("want MPU trap on read-only store, got cause=%d", c.State.ExcCause)
	}
}

// TestDivThenExternalAccess: an iterative divide immediately followed by a
// multi-cycle peripheral access (back-to-back EX and MEM stalls) retires
// correctly.
func TestDivThenExternalAccess(t *testing.T) {
	prog := asm.MustAssemble(`
        li   r1, 1000003
        li   r2, 17
        div  r3, r1, r2
        li   r4, 0x80000000
        sw   r3, 8(r4)
        lw   r5, 0(r4)
        div  r6, r5, r2
        halt
`)
	sys := mem.NewSystem()
	if err := sys.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	c := cpu.New(sys, prog.Entry)
	c.Run(5000)
	if !c.State.Drained() || c.State.Trapped() {
		t.Fatal("did not finish cleanly")
	}
	if c.State.Regs[3] != 1000003/17 {
		t.Fatalf("div result %d", c.State.Regs[3])
	}
	if got := sys.Ext().Actuator[2]; got != 1000003/17 {
		t.Fatalf("actuator %d", got)
	}
	want := uint32(int32(mem.SensorValue(0x80000000)) / 17) // DIV is signed
	if c.State.Regs[6] != want {
		t.Fatalf("second div %d, want %d", c.State.Regs[6], want)
	}
}
