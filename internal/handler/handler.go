// Package handler implements the lockstep error handler — the software the
// paper's Section III-C describes running when the checker detects an
// error: it is invoked by interrupt, reads the Prediction Table Address
// Register "similar to an exception handler accessing the exception vector
// table", fetches the prediction entry, and drives the reaction to a safe
// state: either an immediate reset-and-restart (predicted soft) or an
// SBIST session over the predicted unit order followed by failure
// reporting or restart.
//
// Unlike the analytical models in internal/sbist (which score reaction
// times over logged datasets), this package executes the reaction against
// a live lockstep.DMR system and produces a cycle-stamped timeline — the
// end-to-end flow of Figures 2 and 9c.
package handler

import (
	"fmt"
	"io"

	"lockstep/internal/core"
	"lockstep/internal/dataset"
	"lockstep/internal/lockstep"
	"lockstep/internal/sbist"
	"lockstep/internal/telemetry"
)

// Phase labels for the reaction timeline.
const (
	PhaseDetect    = "error-detected"
	PhaseTableRead = "prediction-read"
	PhaseSTL       = "stl"
	PhaseRestart   = "reset-restart"
	PhaseFail      = "report-failure"
	PhaseSafe      = "safe-state"
)

// Event is one timeline entry of a reaction.
type Event struct {
	Cycle int64  // cycles since error detection
	Phase string // one of the Phase constants
	Note  string
}

// Reaction is the complete record of one error handling episode.
type Reaction struct {
	DSR        uint64
	PTAR       int
	KnownSet   bool
	PredHard   bool
	PredOrder  []uint8
	Timeline   []Event
	LERT       int64 // detection to safe state, in cycles
	FoundHard  bool  // SBIST located a permanent fault
	FaultyUnit int   // unit the SBIST identified (-1 if none)
	Restarted  bool  // reaction ended in reset & restart
}

// Handler is the error-handling software plus its hardware interface: the
// predictor front-end and the latency environment.
type Handler struct {
	Frontend core.Frontend
	Cfg      sbist.Config
	// Truth oracle for STL outcomes: given a unit, does its STL find a
	// hard fault? In a real system this is the STL itself; here the
	// fault-injection framework supplies ground truth (STL coverage is
	// assumed 100%, as in the paper).
	stlFinds func(unit int) bool
}

// New builds a handler around a trained prediction table.
func New(table *core.Table, cfg sbist.Config) *Handler {
	return &Handler{Frontend: core.Frontend{Table: table}, Cfg: cfg}
}

// Prediction is the pure prediction step of a reaction: the DSR latched
// into the front-end, the PTAR it mapped to, and the entry the handler
// would fetch — without driving any reaction. It is what an online
// consumer (lockstep-serve's /v1/predict) needs at error-detection time.
type Prediction struct {
	DSR   uint64
	PTAR  int      // prediction table address the DSR mapped to
	Known bool     // false when the DSR hit the default entry
	Hard  bool     // predicted error type
	Order []uint8  // predicted unit test order (unit IDs at Cfg.Gran)
	Units []string // the same order as unit names
}

// Predict performs the handler's DSR→PTAR→table flow (latch the DSR,
// resolve the table address, fetch the entry) and returns the prediction
// without reacting. HandleRecord/HandleLive drive the same front-end, so
// a Reaction's PTAR/KnownSet/PredHard/PredOrder always agree with
// Predict on the same DSR. Handlers are not safe for concurrent use
// (the front-end latches state); concurrent callers build one Handler
// each — construction is two words around the shared read-only table.
func (h *Handler) Predict(dsr uint64) Prediction {
	h.Frontend.LatchError(dsr)
	pred := h.Frontend.ReadEntry()
	names := make([]string, len(pred.Units))
	for i, u := range pred.Units {
		names[i] = h.Cfg.Gran.UnitName(int(u))
	}
	return Prediction{
		DSR:   dsr,
		PTAR:  h.Frontend.PTAR,
		Known: h.Frontend.Hit,
		Hard:  pred.Hard,
		Order: pred.Units,
		Units: names,
	}
}

// HandleRecord reacts to a logged error record (ground truth comes from
// the record itself). It is the executable twin of sbist.PredComb.React.
func (h *Handler) HandleRecord(r dataset.Record) Reaction {
	h.stlFinds = func(unit int) bool {
		return r.Hard() && unit == h.Cfg.Gran.UnitOf(r)
	}
	return h.react(r.DSR, r.Kernel)
}

// HandleLive reacts to an error latched by a live DMR system: it reads the
// checker's DSR, drives the reaction, and — when the reaction ends in a
// restart — resets the lockstep pair. The faulty unit oracle is supplied
// by the caller (the injection framework knows where the fault is).
func (h *Handler) HandleLive(d *lockstep.DMR, kernel string, faultyUnit int, hard bool) (Reaction, error) {
	h.stlFinds = func(unit int) bool { return hard && unit == faultyUnit }
	re := h.react(d.Chk.DSR, kernel)
	if re.Restarted {
		if err := d.Restart(); err != nil {
			return re, err
		}
	}
	return re, nil
}

// ForwardRecoveryCycles is the cost of the MMR forward recovery of
// Section II: saving the majority's architectural state to memory,
// resetting all CPUs and restoring the state to bring them back into
// lockstep — far cheaper than a full task restart.
const ForwardRecoveryCycles = 500

// HandleTMR reacts to a voted TMR error (Section II's MMR flow): the voter
// has already identified the erring CPU, so a predicted-soft error is
// healed by forward recovery (no task restart), and a predicted-hard error
// is diagnosed by running STLs on the erring CPU only; a confirmed
// permanent fault takes that CPU out of the vote while the system
// continues in checked-dual mode.
func (h *Handler) HandleTMR(tmr *lockstep.TMR, vote lockstep.VoteResult, kernel string, faultyUnit int, hard bool) Reaction {
	h.stlFinds = func(unit int) bool { return hard && unit == faultyUnit }
	re := h.reactTMR(tmr, vote)
	observe(re)
	return re
}

// reactTMR is the MMR reaction flow proper; HandleTMR wraps it with
// telemetry.
func (h *Handler) reactTMR(tmr *lockstep.TMR, vote lockstep.VoteResult) Reaction {
	re := Reaction{DSR: vote.DSR, FaultyUnit: -1}
	now := int64(0)
	log := func(phase, note string) {
		re.Timeline = append(re.Timeline, Event{Cycle: now, Phase: phase, Note: note})
	}
	log(PhaseDetect, fmt.Sprintf("voter flagged CPU %d, DSR %#x", vote.Erring, vote.DSR))

	h.Frontend.LatchError(vote.DSR)
	pred := h.Frontend.ReadEntry()
	now += h.Cfg.TableAccess
	re.PTAR = h.Frontend.PTAR
	re.KnownSet = h.Frontend.Hit
	re.PredHard = pred.Hard
	re.PredOrder = pred.Units
	log(PhaseTableRead, fmt.Sprintf("PTAR=%d known=%v type=%s",
		re.PTAR, re.KnownSet, typeName(pred.Hard)))

	if !pred.Hard {
		// Predicted soft: forward recovery re-joins the erring CPU.
		now += ForwardRecoveryCycles
		majority := 0
		if vote.Erring == 0 {
			majority = 1
		}
		tmr.ForwardRecover(majority)
		log(PhaseRestart, "predicted soft: forward recovery, erring CPU re-joined")
		log(PhaseSafe, "triple lockstep restored")
		re.Restarted = true
		re.LERT = now
		return re
	}

	for i, u := range pred.Units {
		now += h.Cfg.STL[u]
		if h.stlFinds(int(u)) {
			log(PhaseSTL, fmt.Sprintf("STL %d/%d on CPU %d: unit %s FAILED",
				i+1, len(pred.Units), vote.Erring, h.Cfg.Gran.UnitName(int(u))))
			log(PhaseFail, fmt.Sprintf("permanent fault: CPU %d removed from vote, continuing checked-dual", vote.Erring))
			log(PhaseSafe, "degraded but safe")
			re.FoundHard = true
			re.FaultyUnit = int(u)
			re.LERT = now
			return re
		}
		log(PhaseSTL, fmt.Sprintf("STL %d/%d on CPU %d: unit %s clean",
			i+1, len(pred.Units), vote.Erring, h.Cfg.Gran.UnitName(int(u))))
	}
	now += ForwardRecoveryCycles
	majority := 0
	if vote.Erring == 0 {
		majority = 1
	}
	tmr.ForwardRecover(majority)
	log(PhaseRestart, "no hard fault: transient; forward recovery")
	log(PhaseSafe, "triple lockstep restored")
	re.Restarted = true
	re.LERT = now
	return re
}

// react runs the handler flow of Figure 9c and records the reaction's
// telemetry.
func (h *Handler) react(dsr uint64, kernel string) Reaction {
	re := h.reactFlow(dsr, kernel)
	observe(re)
	return re
}

// observe records one reaction episode into the default telemetry
// registry: the end-to-end LERT split by prediction outcome (predicted
// type x table hit/miss), the cycles attributed to each reaction phase,
// and a reaction-result counter. Pure atomic recording — the reaction
// itself is unaffected.
func observe(re Reaction) {
	pred := "soft"
	if re.PredHard {
		pred = "hard"
	}
	known := "miss"
	if re.KnownSet {
		known = "hit"
	}
	telemetry.Default.Histogram("handler.lert", telemetry.CycleBuckets,
		telemetry.L("pred", pred), telemetry.L("known", known)).Observe(re.LERT)
	// Attribute timeline cycle deltas to the phase that consumed them.
	prev := int64(0)
	for _, e := range re.Timeline {
		if d := e.Cycle - prev; d > 0 {
			telemetry.Default.Histogram("handler.phase_cycles", telemetry.CycleBuckets,
				telemetry.L("phase", e.Phase)).Observe(d)
		}
		prev = e.Cycle
	}
	result := "restart"
	if re.FoundHard {
		result = "hard-fault"
	}
	telemetry.Default.Counter("handler.reactions",
		telemetry.L("pred", pred), telemetry.L("known", known),
		telemetry.L("result", result)).Inc()
}

// reactFlow is the reaction flow proper; react wraps it with telemetry.
func (h *Handler) reactFlow(dsr uint64, kernel string) Reaction {
	re := Reaction{DSR: dsr, FaultyUnit: -1}
	now := int64(0)
	log := func(phase, note string) {
		re.Timeline = append(re.Timeline, Event{Cycle: now, Phase: phase, Note: note})
	}
	log(PhaseDetect, fmt.Sprintf("checker latched DSR %#x", dsr))

	// Read the PTAR and fetch the prediction entry from table memory.
	h.Frontend.LatchError(dsr)
	pred := h.Frontend.ReadEntry()
	now += h.Cfg.TableAccess
	re.PTAR = h.Frontend.PTAR
	re.KnownSet = h.Frontend.Hit
	re.PredHard = pred.Hard
	re.PredOrder = pred.Units
	log(PhaseTableRead, fmt.Sprintf("PTAR=%d known=%v type=%s order=%v",
		re.PTAR, re.KnownSet, typeName(pred.Hard), pred.Units))

	if !pred.Hard {
		// Predicted soft: reset & restart immediately.
		now += h.Cfg.RestartOf(kernel)
		log(PhaseRestart, "predicted soft: reset CPUs, restart task")
		log(PhaseSafe, "system available again")
		re.Restarted = true
		re.LERT = now
		return re
	}

	// Predicted hard: run STLs in the predicted order. The order may be
	// partial (top-K tables); untested units follow implicitly — the
	// handler in this configuration stores the full order.
	for i, u := range pred.Units {
		now += h.Cfg.STL[u]
		if h.stlFinds(int(u)) {
			log(PhaseSTL, fmt.Sprintf("STL %d/%d: unit %s FAILED",
				i+1, len(pred.Units), h.Cfg.Gran.UnitName(int(u))))
			log(PhaseFail, "permanent fault confirmed: alert system, hold safe state")
			log(PhaseSafe, "fail-safe reached")
			re.FoundHard = true
			re.FaultyUnit = int(u)
			re.LERT = now
			return re
		}
		log(PhaseSTL, fmt.Sprintf("STL %d/%d: unit %s clean",
			i+1, len(pred.Units), h.Cfg.Gran.UnitName(int(u))))
	}

	// No hard fault found: the error was soft after all.
	now += h.Cfg.RestartOf(kernel)
	log(PhaseRestart, "no hard fault found: error was transient; reset & restart")
	log(PhaseSafe, "system available again")
	re.Restarted = true
	re.LERT = now
	return re
}

func typeName(hard bool) string {
	if hard {
		return "hard"
	}
	return "soft"
}

// PrintTimeline renders a reaction for humans.
func (re Reaction) PrintTimeline(w io.Writer) {
	for _, e := range re.Timeline {
		fmt.Fprintf(w, "  +%-8d %-16s %s\n", e.Cycle, e.Phase, e.Note)
	}
	fmt.Fprintf(w, "  LERT: %d cycles\n", re.LERT)
}
