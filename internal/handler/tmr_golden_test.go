package handler

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"lockstep/internal/lockstep"
	"lockstep/internal/units"
	"lockstep/internal/workload"
)

// TestPrintTMRTimelineGolden pins the rendered reaction timelines of the
// voted-TMR flow — the mode a tmr campaign's records feed — against
// testdata/tmr_timelines.golden: a predicted-soft forward recovery, a
// located permanent fault (erring CPU removed from the vote), and a
// hard-looking transient that pays the STL scan before recovering.
// Regenerate with -update.
func TestPrintTMRTimelineGolden(t *testing.T) {
	tmr, err := lockstep.NewTMR(workload.ByName("ttsprk"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		tmr.Step()
	}
	h := testHandler()
	cases := []struct {
		title      string
		vote       lockstep.VoteResult
		faultyUnit int
		hard       bool
	}{
		{"soft PFU flip on CPU 1, signature known: forward recovery",
			lockstep.VoteResult{Diverged: true, DSR: 1 << 20, Erring: 1}, 0, false},
		{"hard LSU stuck-at on CPU 2: diagnosed, vote degraded to dual",
			lockstep.VoteResult{Diverged: true, DSR: 1 << 3, Erring: 2}, int(units.LSU), true},
		{"soft IMC flip with a hard-looking signature: STL scan, then recovery",
			lockstep.VoteResult{Diverged: true, DSR: 1 << 2, Erring: 0}, 0, false},
	}

	var buf bytes.Buffer
	for _, c := range cases {
		re := h.HandleTMR(tmr, c.vote, "k", c.faultyUnit, c.hard)
		fmt.Fprintf(&buf, "== %s ==\n", c.title)
		re.PrintTimeline(&buf)
		fmt.Fprintln(&buf)
	}

	golden := filepath.Join("testdata", "tmr_timelines.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/handler/ -update` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("TMR timeline format drifted from %s (re-run with -update if intended):\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}
}
