package handler

import (
	"bytes"
	"strings"
	"testing"

	"lockstep/internal/core"
	"lockstep/internal/dataset"
	"lockstep/internal/lockstep"
	"lockstep/internal/sbist"
	"lockstep/internal/units"
	"lockstep/internal/workload"
)

// trainedTable builds a table with a hard LSU set (1<<3), a soft PFU set
// (1<<20) and per-unit hard sets.
func trainedTable() *core.Table {
	d := &dataset.Dataset{}
	fines := []units.Fine{units.FinePFU, units.FineIMC, units.FineLSU,
		units.FineDMC, units.FineBIU, units.FineSCU, units.FineDPUALU}
	for u, f := range fines {
		for i := 0; i < 6; i++ {
			d.Records = append(d.Records, dataset.Record{
				Kernel: "k", Detected: true, DSR: 1 << uint(u+1),
				Unit: f.Coarse(), Fine: f, Kind: lockstep.Stuck1,
				InjectCycle: 1, DetectCycle: 2,
			})
		}
	}
	for i := 0; i < 6; i++ {
		d.Records = append(d.Records, dataset.Record{
			Kernel: "k", Detected: true, DSR: 1 << 20,
			Unit: units.PFU, Fine: units.FinePFU, Kind: lockstep.SoftFlip,
			InjectCycle: 1, DetectCycle: 2,
		})
	}
	return core.Train(d, core.Coarse7, 0)
}

func testHandler() *Handler {
	cfg := sbist.NewConfig(core.Coarse7, map[string]int64{"k": 5000}, sbist.OffChipTableAccess)
	return New(trainedTable(), cfg)
}

func TestHandleHardErrorFlow(t *testing.T) {
	h := testHandler()
	r := dataset.Record{
		Kernel: "k", Detected: true, DSR: 1 << 3,
		Unit: units.LSU, Fine: units.FineLSU, Kind: lockstep.Stuck0,
	}
	re := h.HandleRecord(r)
	if !re.FoundHard || re.FaultyUnit != int(units.LSU) {
		t.Fatalf("hard fault not located: %+v", re)
	}
	if re.Restarted {
		t.Fatal("permanent fault must not restart")
	}
	if want := h.Cfg.TableAccess + h.Cfg.STL[units.LSU]; re.LERT != want {
		t.Fatalf("LERT %d, want %d", re.LERT, want)
	}
	// The timeline ends in fail-safe.
	last := re.Timeline[len(re.Timeline)-1]
	if last.Phase != PhaseSafe {
		t.Fatalf("timeline ends in %q", last.Phase)
	}
	if !re.KnownSet || !re.PredHard {
		t.Fatalf("prediction fields wrong: %+v", re)
	}
}

func TestHandlePredictedSoftSkipsSTLs(t *testing.T) {
	h := testHandler()
	r := dataset.Record{
		Kernel: "k", Detected: true, DSR: 1 << 20,
		Unit: units.PFU, Fine: units.FinePFU, Kind: lockstep.SoftFlip,
	}
	re := h.HandleRecord(r)
	if !re.Restarted || re.FoundHard {
		t.Fatalf("soft flow wrong: %+v", re)
	}
	for _, e := range re.Timeline {
		if e.Phase == PhaseSTL {
			t.Fatal("predicted-soft reaction ran an STL")
		}
	}
	if want := h.Cfg.TableAccess + 5000; re.LERT != want {
		t.Fatalf("LERT %d, want %d", re.LERT, want)
	}
}

func TestHandleSoftMispredictedAsHard(t *testing.T) {
	h := testHandler()
	// A soft error with a hard-looking signature: STLs all pass, then
	// restart.
	r := dataset.Record{
		Kernel: "k", Detected: true, DSR: 1 << 2, // IMC hard set
		Unit: units.IMC, Fine: units.FineIMC, Kind: lockstep.SoftFlip,
	}
	re := h.HandleRecord(r)
	if !re.Restarted || re.FoundHard {
		t.Fatalf("mispredicted soft flow wrong: %+v", re)
	}
	stls := 0
	for _, e := range re.Timeline {
		if e.Phase == PhaseSTL {
			stls++
		}
	}
	if stls != 7 {
		t.Fatalf("ran %d STLs, want all 7 before concluding soft", stls)
	}
}

func TestHandleUnknownSetDefaultsToHard(t *testing.T) {
	h := testHandler()
	r := dataset.Record{
		Kernel: "k", Detected: true, DSR: 0xDEADBEEF,
		Unit: units.DMC, Fine: units.FineDMC, Kind: lockstep.Stuck1,
	}
	re := h.HandleRecord(r)
	if re.KnownSet {
		t.Fatal("unknown set flagged as known")
	}
	if !re.PredHard {
		t.Fatal("unknown sets must be treated as hard (Section III-C)")
	}
	if !re.FoundHard || re.FaultyUnit != int(units.DMC) {
		t.Fatalf("default-order diagnosis failed: %+v", re)
	}
}

// TestHandleLiveEndToEnd runs the complete loop on a live DMR: inject,
// detect, handle, restart, verify lockstep resumes.
func TestHandleLiveEndToEnd(t *testing.T) {
	d, err := lockstep.NewDMR(workload.ByName("rspeed"))
	if err != nil {
		t.Fatal(err)
	}
	// Train a small real predictor on a quick campaign of this kernel so
	// live DSRs have a chance of hitting trained entries.
	h := testHandler()

	// A transient in the decode immediate field.
	d.Arm(lockstep.Injection{Flop: 300, Kind: lockstep.SoftFlip, Cycle: 900})
	dsr, _, ok := d.RunToError(6000)
	if !ok {
		t.Skip("transient masked on this flop; acceptable")
	}
	re, err := h.HandleLive(d, "rspeed", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if re.DSR != dsr {
		t.Fatal("handler did not read the checker's DSR")
	}
	if re.FoundHard {
		t.Fatal("no hard fault exists")
	}
	if !re.Restarted {
		t.Fatal("soft reaction must end in restart")
	}
	d.Disarm()
	// After the handler restarted the pair, lockstep must hold.
	for i := 0; i < 4000; i++ {
		if d.Step() {
			t.Fatalf("divergence after handled restart at +%d", i)
		}
	}
}

func TestPrintTimeline(t *testing.T) {
	h := testHandler()
	re := h.HandleRecord(dataset.Record{
		Kernel: "k", Detected: true, DSR: 1 << 3,
		Unit: units.LSU, Fine: units.FineLSU, Kind: lockstep.Stuck1,
	})
	var buf bytes.Buffer
	re.PrintTimeline(&buf)
	out := buf.String()
	for _, want := range []string{PhaseDetect, PhaseTableRead, "FAILED", "LERT:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
}

// TestHandleTMRSoftForwardRecovery: a voted transient heals via forward
// recovery and the triple resumes lockstep.
func TestHandleTMRSoftForwardRecovery(t *testing.T) {
	tmr, err := lockstep.NewTMR(workload.ByName("puwmod"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1200; i++ {
		tmr.Step()
	}
	tmr.Arm(1, lockstep.Injection{Flop: 5, Kind: lockstep.SoftFlip, Cycle: tmr.Cycle + 1})
	var vote *lockstep.VoteResult
	for i := 0; i < 20000; i++ {
		v := tmr.Step()
		if v.Diverged {
			vote = &v
			break
		}
	}
	if vote == nil {
		t.Skip("transient masked; acceptable")
	}

	h := testHandler()
	re := h.HandleTMR(tmr, *vote, "puwmod", 0, false)
	if !re.Restarted || re.FoundHard {
		t.Fatalf("TMR soft flow wrong: %+v", re)
	}
	// If the signature was recognised as soft, forward recovery is the
	// whole reaction; an unknown/hard-looking signature legitimately pays
	// the STL scan first, then recovers.
	if !re.PredHard && re.LERT > ForwardRecoveryCycles+h.Cfg.TableAccess {
		t.Fatalf("predicted-soft TMR reaction cost %d, want table access + forward recovery", re.LERT)
	}
	for i := 0; i < 5000; i++ {
		if v := tmr.Step(); v.Diverged {
			t.Fatalf("divergence after forward recovery at +%d", i)
		}
	}
}

// TestHandleTMRHardDiagnosis: a voted stuck-at is diagnosed on the erring
// CPU only and the reaction ends in the degraded-but-safe state.
func TestHandleTMRHardDiagnosis(t *testing.T) {
	tmr, err := lockstep.NewTMR(workload.ByName("canrdr"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		tmr.Step()
	}
	tmr.Arm(2, lockstep.Injection{Flop: 40, Kind: lockstep.Stuck1, Cycle: tmr.Cycle + 1})
	var vote *lockstep.VoteResult
	for i := 0; i < 30000; i++ {
		v := tmr.Step()
		if v.Diverged {
			vote = &v
			break
		}
	}
	if vote == nil {
		t.Skip("stuck-at masked on this flop")
	}
	if vote.Erring != 2 {
		t.Fatalf("voter blamed CPU %d", vote.Erring)
	}

	h := testHandler()
	// Tell the handler the ground truth: hard fault in the PFU (flop 40
	// is an FQInstr bit).
	re := h.HandleTMR(tmr, *vote, "canrdr", int(units.PFU), true)
	if !re.FoundHard || re.FaultyUnit != int(units.PFU) {
		t.Fatalf("TMR hard flow wrong: %+v", re)
	}
	if re.Restarted {
		t.Fatal("permanent fault must not forward-recover")
	}
}
