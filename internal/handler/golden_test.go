package handler

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"lockstep/internal/dataset"
	"lockstep/internal/lockstep"
	"lockstep/internal/units"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestPrintTimelineGolden pins the human-readable reaction timeline
// format: the rendered flows for a located hard fault, a predicted-soft
// restart, and an unknown-signature (table miss) reaction are compared
// against testdata/timelines.golden. Regenerate with -update.
func TestPrintTimelineGolden(t *testing.T) {
	h := testHandler()
	cases := []struct {
		title string
		rec   dataset.Record
	}{
		{"hard LSU stuck-at-0, signature known", dataset.Record{
			Kernel: "k", Detected: true, DSR: 1 << 3,
			Unit: units.LSU, Fine: units.FineLSU, Kind: lockstep.Stuck0,
		}},
		{"soft PFU flip, signature known", dataset.Record{
			Kernel: "k", Detected: true, DSR: 1 << 20,
			Unit: units.PFU, Fine: units.FinePFU, Kind: lockstep.SoftFlip,
		}},
		{"soft flip, unknown signature (table miss)", dataset.Record{
			Kernel: "k", Detected: true, DSR: 1<<40 | 1<<41,
			Unit: units.DPU, Fine: units.FineDPUALU, Kind: lockstep.SoftFlip,
		}},
	}

	var buf bytes.Buffer
	for _, c := range cases {
		re := h.HandleRecord(c.rec)
		fmt.Fprintf(&buf, "== %s ==\n", c.title)
		re.PrintTimeline(&buf)
		fmt.Fprintln(&buf)
	}

	golden := filepath.Join("testdata", "timelines.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/handler/ -update` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("timeline format drifted from %s (re-run with -update if intended):\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}
}
