package handler

import (
	"reflect"
	"testing"

	"lockstep/internal/dataset"
	"lockstep/internal/lockstep"
	"lockstep/internal/units"
)

// TestPredictMatchesReaction: the library prediction entry point must
// report exactly what a driven reaction would have predicted — same
// PTAR, same table hit, same type bit, same unit order — for trained
// sets, the default entry, and both error types.
func TestPredictMatchesReaction(t *testing.T) {
	h := testHandler()
	records := []dataset.Record{
		{Kernel: "k", Detected: true, DSR: 1 << 3,
			Unit: units.LSU, Fine: units.FineLSU, Kind: lockstep.Stuck0},
		{Kernel: "k", Detected: true, DSR: 1 << 20,
			Unit: units.PFU, Fine: units.FinePFU, Kind: lockstep.SoftFlip},
		{Kernel: "k", Detected: true, DSR: 0xdead, // never trained: default entry
			Unit: units.DPU, Fine: units.FineDPUALU, Kind: lockstep.Stuck1},
	}
	for _, r := range records {
		p := h.Predict(r.DSR)
		re := h.HandleRecord(r)
		if p.PTAR != re.PTAR || p.Known != re.KnownSet || p.Hard != re.PredHard {
			t.Fatalf("DSR %#x: Predict (PTAR %d known %v hard %v) disagrees with reaction (PTAR %d known %v hard %v)",
				r.DSR, p.PTAR, p.Known, p.Hard, re.PTAR, re.KnownSet, re.PredHard)
		}
		if !reflect.DeepEqual(p.Order, re.PredOrder) {
			t.Fatalf("DSR %#x: Predict order %v != reaction order %v", r.DSR, p.Order, re.PredOrder)
		}
		if len(p.Units) != len(p.Order) {
			t.Fatalf("DSR %#x: %d unit names for %d units", r.DSR, len(p.Units), len(p.Order))
		}
		for i, u := range p.Order {
			if want := h.Cfg.Gran.UnitName(int(u)); p.Units[i] != want {
				t.Fatalf("DSR %#x: unit name %q at %d, want %q", r.DSR, p.Units[i], i, want)
			}
		}
	}
}
