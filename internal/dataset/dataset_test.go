package dataset

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"lockstep/internal/lockstep"
	"lockstep/internal/units"
)

func randRecord(rng *rand.Rand) Record {
	fine := units.Fine(rng.Intn(units.NumFine))
	r := Record{
		Kernel:      []string{"ttsprk", "rspeed", "matrix"}[rng.Intn(3)],
		Flop:        rng.Intn(2000),
		Unit:        fine.Coarse(),
		Fine:        fine,
		Kind:        lockstep.FaultKind(rng.Intn(lockstep.NumFaultKinds)),
		InjectCycle: rng.Intn(10000),
	}
	if rng.Intn(2) == 0 {
		r.Detected = true
		r.DetectCycle = r.InjectCycle + rng.Intn(2000)
		r.DSR = rng.Uint64() & (1<<62 - 1)
		if r.DSR == 0 {
			r.DSR = 1
		}
	} else if r.Kind == lockstep.SoftFlip {
		r.Converged = rng.Intn(2) == 0
	}
	return r
}

func randDataset(rng *rand.Rand, n int) *Dataset {
	d := &Dataset{}
	for i := 0; i < n; i++ {
		d.Records = append(d.Records, randRecord(rng))
	}
	return d
}

// TestCSVRoundTrip: WriteCSV then ReadCSV reproduces the dataset exactly.
func TestCSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		d := randDataset(rng, rng.Intn(200))
		var buf bytes.Buffer
		if err := d.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != d.Len() {
			t.Fatalf("lengths: %d vs %d", got.Len(), d.Len())
		}
		for i := range d.Records {
			if got.Records[i] != d.Records[i] {
				t.Fatalf("record %d: %+v vs %+v", i, got.Records[i], d.Records[i])
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"wrong,header\n",
		csvHeader + "\nttsprk,notanumber,0,0,0,0,false,0,0,false\n",
		csvHeader + "\nttsprk,1,99,0,0,0,false,0,0,false\n", // bad unit
		csvHeader + "\nttsprk,1,0,99,0,0,false,0,0,false\n", // bad fine
		csvHeader + "\nttsprk,1,0,0,9,0,false,0,0,false\n",  // bad kind
		csvHeader + "\nttsprk,1,0,0,0,0,maybe,0,0,false\n",  // bad bool
		csvHeader + "\nttsprk,1,0,0,0,0,false,0,zz,false\n", // bad dsr
		csvHeader + "\nttsprk,1,0,0,0,0,false,0\n",          // short row
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestManifestedFilters(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := randDataset(rng, 500)
	man := d.Manifested()
	for _, r := range man.Records {
		if !r.Detected {
			t.Fatal("undetected record in manifested view")
		}
	}
	count := 0
	for _, r := range d.Records {
		if r.Detected {
			count++
		}
	}
	if man.Len() != count {
		t.Fatalf("manifested %d, want %d", man.Len(), count)
	}
}

// TestSplitPartition: split is a disjoint exhaustive partition.
func TestSplitPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := randDataset(rng, 300)
	train, test := d.Split(rng, 0.8)
	if train.Len()+test.Len() != d.Len() {
		t.Fatalf("split sizes %d + %d != %d", train.Len(), test.Len(), d.Len())
	}
	if train.Len() != 240 {
		t.Fatalf("train size %d, want 240", train.Len())
	}
}

// TestFoldsPartition: each record appears in exactly one fold's test split
// and in k-1 folds' train splits.
func TestFoldsPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := randDataset(rng, 137)
	const k = 5
	folds := d.Folds(rng, k)
	if len(folds) != k {
		t.Fatalf("%d folds", len(folds))
	}
	testTotal, trainTotal := 0, 0
	for _, f := range folds {
		testTotal += f.Test.Len()
		trainTotal += f.Train.Len()
		if f.Test.Len()+f.Train.Len() != d.Len() {
			t.Fatalf("fold does not cover dataset: %d + %d", f.Test.Len(), f.Train.Len())
		}
	}
	if testTotal != d.Len() {
		t.Fatalf("test totals %d, want %d", testTotal, d.Len())
	}
	if trainTotal != (k-1)*d.Len() {
		t.Fatalf("train totals %d, want %d", trainTotal, (k-1)*d.Len())
	}
}

func TestFoldsMinimumK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := randDataset(rng, 10)
	if got := len(d.Folds(rng, 0)); got != 2 {
		t.Fatalf("k clamp: %d folds", got)
	}
}

// TestBalancedInvariants: equal class counts, all detected, subset of the
// original records.
func TestBalancedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := randDataset(rng, 400)
	bal := d.Balanced(rng)
	soft, hard := 0, 0
	for _, r := range bal.Records {
		if !r.Detected {
			t.Fatal("undetected record in balanced set")
		}
		if r.Hard() {
			hard++
		} else {
			soft++
		}
	}
	if soft != hard {
		t.Fatalf("unbalanced: soft %d, hard %d", soft, hard)
	}
	if soft == 0 {
		t.Fatal("empty balanced set")
	}
}

func TestByUnitConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := randDataset(rng, 600)
	for _, hard := range []bool{false, true} {
		coarse := d.ByUnit(hard)
		fine := d.ByFine(hard)
		var cInj, fInj, cMan, fMan int
		for _, s := range coarse {
			cInj += s.Injected
			cMan += s.Manifested
		}
		for _, s := range fine {
			fInj += s.Injected
			fMan += s.Manifested
		}
		if cInj != fInj || cMan != fMan {
			t.Fatalf("coarse/fine totals disagree: %d/%d vs %d/%d", cInj, cMan, fInj, fMan)
		}
		// DPU coarse = sum of DPU fine sub-units.
		dpuFine := 0
		for f := units.FineDPUDecode; f < units.NumFine; f++ {
			dpuFine += fine[f].Injected
		}
		if coarse[units.DPU].Injected != dpuFine {
			t.Fatalf("DPU coarse %d != sum of fine %d", coarse[units.DPU].Injected, dpuFine)
		}
	}
}

func TestUnitStatsMath(t *testing.T) {
	var u UnitStats
	if u.Rate() != 0 || u.MeanTime() != 0 {
		t.Fatal("zero-value stats should be zero")
	}
	u.add(Record{Detected: true, InjectCycle: 10, DetectCycle: 30})
	u.add(Record{Detected: true, InjectCycle: 10, DetectCycle: 20})
	u.add(Record{Detected: false})
	if u.Injected != 3 || u.Manifested != 2 {
		t.Fatalf("%+v", u)
	}
	if u.Rate() != 2.0/3.0 {
		t.Fatalf("rate %v", u.Rate())
	}
	if u.MeanTime() != 15 {
		t.Fatalf("mean time %v", u.MeanTime())
	}
	if u.ManifestMin != 10 || u.ManifestMax != 20 {
		t.Fatalf("min/max %d/%d", u.ManifestMin, u.ManifestMax)
	}
}

func TestDistinctDSRs(t *testing.T) {
	d := &Dataset{Records: []Record{
		{Detected: true, DSR: 5},
		{Detected: true, DSR: 5},
		{Detected: true, DSR: 9},
		{Detected: false, DSR: 1}, // not counted
	}}
	if got := d.DistinctDSRs(); got != 2 {
		t.Fatalf("distinct %d, want 2", got)
	}
}
