// Package dataset holds the logged results of fault-injection experiments
// (the "lockstep error data logging" stage of the paper's Figure 7) and the
// train/test machinery: random-sampling splits and 5-fold cross validation.
package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"lockstep/internal/lockstep"
	"lockstep/internal/units"
)

// Record is one fault-injection experiment's log entry. Every injection is
// recorded; only records with Detected set carry a meaningful DSR and
// detection cycle and participate in predictor training.
type Record struct {
	Kernel      string
	Flop        int
	Unit        units.Unit
	Fine        units.Fine
	Kind        lockstep.FaultKind
	InjectCycle int
	Detected    bool
	DetectCycle int
	DSR         uint64
	Converged   bool // soft fault provably masked before the horizon
	Failed      bool // experiment aborted by the campaign harness (panic/budget)
	// Mode is the lockstep organization the experiment ran under. The
	// zero value (DCLS) serializes to nothing: dcls rows keep the
	// pre-mode 11-field layout byte for byte, so dcls datasets and
	// checkpoints are bit-identical to those of pre-mode builds.
	Mode lockstep.Mode
}

// Hard reports whether the injected fault was permanent.
func (r Record) Hard() bool { return r.Kind.IsHard() }

// ManifestationCycles is fault occurrence to error detection (only
// meaningful when Detected).
func (r Record) ManifestationCycles() int { return r.DetectCycle - r.InjectCycle }

// Dataset is an ordered collection of records.
type Dataset struct {
	Records []Record
}

// Manifested returns the sub-dataset of detected errors — the ~2M
// "manifested error data points" of Section IV-A, at our scale.
func (d *Dataset) Manifested() *Dataset {
	out := &Dataset{}
	for _, r := range d.Records {
		if r.Detected {
			out.Records = append(out.Records, r)
		}
	}
	return out
}

// Len returns the number of records.
func (d *Dataset) Len() int { return len(d.Records) }

// Split partitions the dataset into train and test by random sampling with
// the given train fraction, as in the paper's Figure 7.
func (d *Dataset) Split(rng *rand.Rand, trainFrac float64) (train, test *Dataset) {
	perm := rng.Perm(len(d.Records))
	nTrain := int(float64(len(d.Records)) * trainFrac)
	train, test = &Dataset{}, &Dataset{}
	for i, p := range perm {
		if i < nTrain {
			train.Records = append(train.Records, d.Records[p])
		} else {
			test.Records = append(test.Records, d.Records[p])
		}
	}
	return train, test
}

// Balanced returns a class-balanced sub-dataset of detected errors: equal
// numbers of soft and hard records, sampled without replacement. The
// paper's train/test datasets are class-balanced — its Table III overall
// accuracy (67% from 86% soft / 49% hard) and the "43% fewer SBIST
// invocations" statistic are only consistent with a roughly 50/50
// soft/hard error mix.
func (d *Dataset) Balanced(rng *rand.Rand) *Dataset {
	var soft, hard []Record
	for _, r := range d.Records {
		if !r.Detected {
			continue
		}
		if r.Hard() {
			hard = append(hard, r)
		} else {
			soft = append(soft, r)
		}
	}
	n := len(soft)
	if len(hard) < n {
		n = len(hard)
	}
	rng.Shuffle(len(soft), func(i, j int) { soft[i], soft[j] = soft[j], soft[i] })
	rng.Shuffle(len(hard), func(i, j int) { hard[i], hard[j] = hard[j], hard[i] })
	out := &Dataset{Records: make([]Record, 0, 2*n)}
	out.Records = append(out.Records, soft[:n]...)
	out.Records = append(out.Records, hard[:n]...)
	rng.Shuffle(len(out.Records), func(i, j int) {
		out.Records[i], out.Records[j] = out.Records[j], out.Records[i]
	})
	return out
}

// Fold is one cross-validation fold.
type Fold struct {
	Train *Dataset
	Test  *Dataset
}

// Folds produces k-fold cross-validation splits after a random shuffle
// (the paper uses 5-fold cross validation).
func (d *Dataset) Folds(rng *rand.Rand, k int) []Fold {
	if k < 2 {
		k = 2
	}
	perm := rng.Perm(len(d.Records))
	folds := make([]Fold, k)
	for f := 0; f < k; f++ {
		folds[f].Train = &Dataset{}
		folds[f].Test = &Dataset{}
	}
	for i, p := range perm {
		bucket := i % k
		for f := 0; f < k; f++ {
			if f == bucket {
				folds[f].Test.Records = append(folds[f].Test.Records, d.Records[p])
			} else {
				folds[f].Train.Records = append(folds[f].Train.Records, d.Records[p])
			}
		}
	}
	return folds
}

// UnitStats aggregates per-unit manifestation statistics, the raw material
// of the paper's Table I.
type UnitStats struct {
	Injected    int
	Manifested  int
	ManifestSum int64 // sum of manifestation times (cycles)
	ManifestMin int
	ManifestMax int
}

// Rate is the unit's error manifestation rate: manifested / injected.
func (u UnitStats) Rate() float64 {
	if u.Injected == 0 {
		return 0
	}
	return float64(u.Manifested) / float64(u.Injected)
}

// MeanTime is the unit's mean manifestation time in cycles.
func (u UnitStats) MeanTime() float64 {
	if u.Manifested == 0 {
		return 0
	}
	return float64(u.ManifestSum) / float64(u.Manifested)
}

func (u *UnitStats) add(r Record) {
	u.Injected++
	if !r.Detected {
		return
	}
	t := r.ManifestationCycles()
	if u.Manifested == 0 || t < u.ManifestMin {
		u.ManifestMin = t
	}
	if t > u.ManifestMax {
		u.ManifestMax = t
	}
	u.Manifested++
	u.ManifestSum += int64(t)
}

// ByUnit aggregates records of one fault class ("hard" selects permanent
// faults) into per-coarse-unit statistics.
func (d *Dataset) ByUnit(hard bool) [units.NumUnits]UnitStats {
	var out [units.NumUnits]UnitStats
	for _, r := range d.Records {
		if r.Hard() == hard {
			out[r.Unit].add(r)
		}
	}
	return out
}

// ByFine aggregates per-fine-unit statistics.
func (d *Dataset) ByFine(hard bool) [units.NumFine]UnitStats {
	var out [units.NumFine]UnitStats
	for _, r := range d.Records {
		if r.Hard() == hard {
			out[r.Fine].add(r)
		}
	}
	return out
}

// DistinctDSRs counts the distinct diverged-SC sets among detected records
// (the paper observes about 1200 on the Cortex-R5).
func (d *Dataset) DistinctDSRs() int {
	seen := make(map[uint64]struct{})
	for _, r := range d.Records {
		if r.Detected {
			seen[r.DSR] = struct{}{}
		}
	}
	return len(seen)
}

// ---- serialization -------------------------------------------------------

// csvHeader is the on-disk column layout. Datasets carrying any non-DCLS
// record append the optional 12th "mode" column (csvHeaderMode); pure
// dcls datasets keep the original layout so their bytes are stable
// across the introduction of lockstep modes.
const csvHeader = "kernel,flop,unit,fine,kind,inject,detected,detect,dsr,converged,failed"

// csvHeaderMode is the extended header of mode-bearing datasets.
const csvHeaderMode = csvHeader + ",mode"

// MarshalCSV renders one record as a CSV row (no trailing newline), the
// exact line WriteCSV emits for it. It is exported so partial logs — e.g.
// the campaign checkpoint files of internal/inject — serialize records in
// the same stable format as full datasets. A non-DCLS record appends the
// mode as a 12th field; dcls rows are byte-identical to pre-mode builds.
func (r Record) MarshalCSV() string {
	row := fmt.Sprintf("%s,%d,%d,%d,%d,%d,%t,%d,%x,%t,%t",
		r.Kernel, r.Flop, r.Unit, r.Fine, r.Kind, r.InjectCycle,
		r.Detected, r.DetectCycle, r.DSR, r.Converged, r.Failed)
	if r.Mode != (lockstep.Mode{}) {
		row += "," + r.Mode.String()
	}
	return row
}

// ParseRecord parses one MarshalCSV row — 11 fields, or 12 when the row
// carries a lockstep mode. It is the single row decoder: ReadCSV and the
// checkpoint reader of internal/inject both funnel through it, so the two
// on-disk formats cannot drift apart.
func ParseRecord(text string) (Record, error) {
	f := strings.Split(text, ",")
	if len(f) != 11 && len(f) != 12 {
		return Record{}, fmt.Errorf("%d fields, want 11 or 12", len(f))
	}
	var rec Record
	rec.Kernel = f[0]
	var err error
	if rec.Flop, err = strconv.Atoi(f[1]); err != nil {
		return Record{}, fmt.Errorf("flop: %w", err)
	}
	u, err := strconv.Atoi(f[2])
	if err != nil || u < 0 || u >= units.NumUnits {
		return Record{}, fmt.Errorf("bad unit %q", f[2])
	}
	rec.Unit = units.Unit(u)
	fu, err := strconv.Atoi(f[3])
	if err != nil || fu < 0 || fu >= units.NumFine {
		return Record{}, fmt.Errorf("bad fine unit %q", f[3])
	}
	rec.Fine = units.Fine(fu)
	kd, err := strconv.Atoi(f[4])
	if err != nil || kd < 0 || kd >= lockstep.NumFaultKinds {
		return Record{}, fmt.Errorf("bad kind %q", f[4])
	}
	rec.Kind = lockstep.FaultKind(kd)
	if rec.InjectCycle, err = strconv.Atoi(f[5]); err != nil {
		return Record{}, fmt.Errorf("inject: %w", err)
	}
	if rec.Detected, err = strconv.ParseBool(f[6]); err != nil {
		return Record{}, fmt.Errorf("detected: %w", err)
	}
	if rec.DetectCycle, err = strconv.Atoi(f[7]); err != nil {
		return Record{}, fmt.Errorf("detect: %w", err)
	}
	if rec.DSR, err = strconv.ParseUint(f[8], 16, 64); err != nil {
		return Record{}, fmt.Errorf("dsr: %w", err)
	}
	if rec.Converged, err = strconv.ParseBool(f[9]); err != nil {
		return Record{}, fmt.Errorf("converged: %w", err)
	}
	if rec.Failed, err = strconv.ParseBool(f[10]); err != nil {
		return Record{}, fmt.Errorf("failed: %w", err)
	}
	if len(f) == 12 {
		if rec.Mode, err = lockstep.ParseMode(f[11]); err != nil {
			return Record{}, fmt.Errorf("mode: %w", err)
		}
	}
	return rec, nil
}

// Mode returns the single lockstep mode every record of the dataset ran
// under (DCLS for an empty dataset). A dataset mixing modes is rejected:
// the predictor tables trained from a dataset are mode-specific, so the
// training and serving layers must be able to pin one mode per dataset.
func (d *Dataset) Mode() (lockstep.Mode, error) {
	var mode lockstep.Mode
	for i, r := range d.Records {
		if i == 0 {
			mode = r.Mode
		} else if r.Mode != mode {
			return lockstep.Mode{}, fmt.Errorf("dataset: mixed lockstep modes (%s and %s)", mode, r.Mode)
		}
	}
	return mode, nil
}

// WriteCSV streams the dataset in a stable text format. The header gains
// the mode column exactly when some record carries a non-DCLS mode, so
// dcls datasets remain byte-identical to pre-mode builds.
func (d *Dataset) WriteCSV(w io.Writer) error {
	header := csvHeader
	for _, r := range d.Records {
		if r.Mode != (lockstep.Mode{}) {
			header = csvHeaderMode
			break
		}
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, header); err != nil {
		return err
	}
	for _, r := range d.Records {
		if _, err := fmt.Fprintln(bw, r.MarshalCSV()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a dataset written by WriteCSV.
func ReadCSV(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	d := &Dataset{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if line == 1 {
			if text != csvHeader && text != csvHeaderMode {
				return nil, fmt.Errorf("dataset: bad header %q", text)
			}
			continue
		}
		if text == "" {
			continue
		}
		rec, err := ParseRecord(text)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		d.Records = append(d.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}
