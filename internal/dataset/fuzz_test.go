package dataset

import (
	"bytes"
	"strings"
	"testing"

	"lockstep/internal/lockstep"
	"lockstep/internal/units"
)

// FuzzReadCSV hammers the campaign-log parser with corrupted inputs:
// malformed files must produce a clean error, never a panic, and anything
// that parses must survive a write/re-read round trip.
func FuzzReadCSV(f *testing.F) {
	// Seed with genuine WriteCSV output...
	ds := &Dataset{Records: []Record{
		{Kernel: "ttsprk", Flop: 0, Unit: 0, Fine: 0, Kind: lockstep.SoftFlip,
			InjectCycle: 10, Detected: true, DetectCycle: 25, DSR: 0x5},
		{Kernel: "rspeed", Flop: 911, Unit: units.NumUnits - 1, Fine: units.NumFine - 1,
			Kind: lockstep.Stuck1, InjectCycle: 4000, Detected: false, Converged: true},
	}}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	// ...and hand-picked corruptions.
	f.Add([]byte(""))
	f.Add([]byte(csvHeader))
	f.Add([]byte(csvHeader + "\n"))
	f.Add([]byte("not,a,header\n"))
	f.Add([]byte(csvHeader + "\nttsprk,0,0,0,0,10,true,25,5,false,false\n"))
	f.Add([]byte(csvHeader + "\nttsprk,0,0,0,0,10,true,25,5,false,true\n"))   // failed row
	f.Add([]byte(csvHeader + "\nttsprk,0,0,0,0,10,true,25,5,false\n"))        // pre-failed 10-field row
	f.Add([]byte(csvHeader + "\nttsprk,0,0,0,0,10,true,25\n"))                // short row
	f.Add([]byte(csvHeader + "\nttsprk,x,0,0,0,10,true,25,5,false,false\n"))  // bad int
	f.Add([]byte(csvHeader + "\nttsprk,0,99,0,0,10,true,25,5,false,false\n")) // unit out of range
	f.Add([]byte(csvHeader + "\nttsprk,0,0,0,7,10,true,25,5,false,false\n"))  // kind out of range
	f.Add([]byte(csvHeader + "\nttsprk,0,0,0,0,10,maybe,25,5,false,false\n")) // bad bool
	f.Add([]byte(csvHeader + "\nttsprk,0,0,0,0,10,true,25,zz,false,false\n")) // bad hex
	f.Add([]byte(csvHeader + "\nttsprk,0,0,0,0,10,true,25,5,false,maybe\n"))  // bad failed flag
	f.Add([]byte(csvHeader + "\nttsprk,-1,0,0,0,-10,true,-25,ffffffffffffffff,false,false\n"))
	f.Add([]byte(csvHeader + "\n\n\n" + strings.Repeat(",", 10) + "\n"))
	f.Add(bytes.Repeat([]byte("a"), 4096))

	f.Fuzz(func(t *testing.T, data []byte) {
		ds, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			if ds != nil {
				t.Fatal("non-nil dataset alongside error")
			}
			return
		}
		// Whatever parsed must re-serialize and re-parse losslessly in
		// count (fields are canonicalized on write, so values may differ
		// only in formatting, never in arity).
		var buf bytes.Buffer
		if err := ds.WriteCSV(&buf); err != nil {
			t.Fatalf("re-serialize of parsed dataset failed: %v", err)
		}
		rt, err := ReadCSV(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip of parsed dataset failed: %v", err)
		}
		if rt.Len() != ds.Len() {
			t.Fatalf("round trip changed record count: %d -> %d", ds.Len(), rt.Len())
		}
		// Aggregations must not panic on any parsed dataset.
		_ = ds.Manifested()
		_ = ds.ByUnit(true)
		_ = ds.ByFine(false)
		_ = ds.DistinctDSRs()
	})
}
