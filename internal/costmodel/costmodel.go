// Package costmodel estimates silicon area and worst-case total power for
// the error-correlation predictor hardware and the CPUs it attaches to —
// the substitute for the paper's Synopsys Design Compiler / IC Compiler /
// PrimeTime PX flow in 32nm libraries (Section V-E).
//
// The model is a gate-count model: blocks are described as (flop count,
// NAND2-equivalent combinational gate count) and costed with per-cell area
// and power constants representative of a 32nm commercial standard-cell
// library. Table IV reports *ratios* (predictor vs dual-CPU lockstep and
// vs a single CPU), which a consistent gate-count model preserves.
package costmodel

import (
	"lockstep/internal/cpu"
)

// 32nm-class standard cell constants. Absolute values are representative;
// only their ratios matter for the Table IV reproduction.
const (
	NAND2AreaUM2 = 0.85 // NAND2-equivalent combinational cell area
	FlopAreaUM2  = 4.5  // D flip-flop area
	NAND2PowerUW = 0.03 // worst-case total power per gate at nominal clock
	FlopPowerUW  = 0.17 // worst-case total power per flop
)

// CombGatesPerFlop models the combinational cloud attached to each state
// bit of a synthesized in-order CPU (datapath muxing, next-state logic).
const CombGatesPerFlop = 6

// CPUFixedGates covers the large shared combinational blocks of the SR5:
// ALU, shifter, 32x32 multiplier array, divider datapath and decode PLA.
const CPUFixedGates = 12000

// Block is a hardware block in gate-count terms.
type Block struct {
	Name  string
	Flops int
	Gates int // NAND2-equivalent combinational gates
}

// AreaUM2 returns the block's cell area.
func (b Block) AreaUM2() float64 {
	return float64(b.Flops)*FlopAreaUM2 + float64(b.Gates)*NAND2AreaUM2
}

// PowerUW returns the block's worst-case total power.
func (b Block) PowerUW() float64 {
	return float64(b.Flops)*FlopPowerUW + float64(b.Gates)*NAND2PowerUW
}

// Add composes blocks.
func (b Block) Add(o Block) Block {
	return Block{Name: b.Name + "+" + o.Name, Flops: b.Flops + o.Flops, Gates: b.Gates + o.Gates}
}

// SR5CPU is one SR5 CPU as modelled in this repository: the flop count
// comes straight from the fault-injection registry.
func SR5CPU() Block {
	flops := cpu.NumFlops()
	return Block{Name: "SR5 CPU", Flops: flops, Gates: flops*CombGatesPerFlop + CPUFixedGates}
}

// R5ClassCPU is a Cortex-R5-class reference point for calibration against
// the paper's absolute ratios: a mid-size real-time CPU is roughly an
// order of magnitude larger than SR5 (tens of thousands of flops).
func R5ClassCPU() Block {
	const flops = 28000
	return Block{Name: "R5-class CPU", Flops: flops, Gates: flops*CombGatesPerFlop + 90000}
}

// Checker is the lockstep error checker for n CPUs: per compared output
// bit, an XOR per redundant CPU plus the OR-reduction trees producing the
// per-SC and final error signals (Figure 6, black box).
func Checker(portBits, nCPUs int) Block {
	xors := portBits * (nCPUs - 1)
	orTree := portBits * (nCPUs - 1) // ~1 OR-equivalent per reduced bit
	return Block{Name: "checker", Gates: xors + orTree}
}

// Predictor is the error-correlation prediction logic of Figure 6 (red
// box): the DSR (one flop per SC), the PTAR, and the address-mapping logic
// resolving a DSR value to a table index. The SC OR-reduction trees are
// already part of the checker and contribute no extra predictor cost; the
// prediction table itself lives in existing (ECC-protected) memory and is
// likewise not predictor silicon.
//
// The mapping logic is modelled as a hash-based mapper (XOR-fold of the
// DSR into the PTAR plus a small per-set disambiguation term): ~2 gates
// per mapped set entry plus a fixed hash network. A fully parallel CAM
// would be ~4x larger; the paper's <2%-of-DMR total implies a hashed
// implementation.
func Predictor(numSC, ptarBits, numSets int) Block {
	mapGates := 2*numSets + 400
	return Block{Name: "predictor", Flops: numSC + ptarBits, Gates: mapGates}
}

// Overhead is a relative area/power cost.
type Overhead struct {
	Area  float64
	Power float64
}

// Relative computes block b's overhead relative to base.
func Relative(b, base Block) Overhead {
	return Overhead{
		Area:  b.AreaUM2() / base.AreaUM2(),
		Power: b.PowerUW() / base.PowerUW(),
	}
}

// TableIV computes the paper's Table IV for this repository: the predictor
// overhead relative to the dual-CPU lockstep processor (two CPUs plus
// checker) and relative to a single CPU, for both the SR5 as built and an
// R5-class reference CPU.
type TableIV struct {
	Predictor Block
	SR5       Block
	SR5DMR    Block
	R5        Block
	R5DMR     Block

	VsSR5DMR Overhead
	VsSR5    Overhead
	VsR5DMR  Overhead
	VsR5     Overhead
}

// ComputeTableIV builds the full comparison. ptarBits and numSets come
// from the trained prediction table.
func ComputeTableIV(ptarBits, numSets int) TableIV {
	pred := Predictor(cpu.NumSC, ptarBits, numSets)
	sr5 := SR5CPU()
	r5 := R5ClassCPU()
	chkSR5 := Checker(cpu.OutputPortBits(), 2)
	// An R5-class lockstep checker compares ~2500 signals (Section IV-A).
	chkR5 := Checker(2500, 2)
	sr5dmr := sr5.Add(sr5).Add(chkSR5)
	r5dmr := r5.Add(r5).Add(chkR5)
	return TableIV{
		Predictor: pred,
		SR5:       sr5,
		SR5DMR:    sr5dmr,
		R5:        r5,
		R5DMR:     r5dmr,
		VsSR5DMR:  Relative(pred, sr5dmr),
		VsSR5:     Relative(pred, sr5),
		VsR5DMR:   Relative(pred, r5dmr),
		VsR5:      Relative(pred, r5),
	}
}
