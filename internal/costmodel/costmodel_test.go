package costmodel

import (
	"testing"

	"lockstep/internal/cpu"
)

func TestBlockCosting(t *testing.T) {
	b := Block{Name: "x", Flops: 10, Gates: 100}
	wantArea := 10*FlopAreaUM2 + 100*NAND2AreaUM2
	if b.AreaUM2() != wantArea {
		t.Fatalf("area %v, want %v", b.AreaUM2(), wantArea)
	}
	wantPower := 10*FlopPowerUW + 100*NAND2PowerUW
	if b.PowerUW() != wantPower {
		t.Fatalf("power %v, want %v", b.PowerUW(), wantPower)
	}
	sum := b.Add(Block{Flops: 5, Gates: 50})
	if sum.Flops != 15 || sum.Gates != 150 {
		t.Fatalf("add: %+v", sum)
	}
}

func TestSR5CPUUsesRegistryFlops(t *testing.T) {
	b := SR5CPU()
	if b.Flops != cpu.NumFlops() {
		t.Fatalf("SR5 flops %d, registry says %d", b.Flops, cpu.NumFlops())
	}
	if b.Gates <= b.Flops {
		t.Fatal("combinational estimate implausibly small")
	}
}

func TestCheckerScalesWithPortAndCPUs(t *testing.T) {
	c2 := Checker(100, 2)
	c3 := Checker(100, 3)
	if c3.Gates != 2*c2.Gates {
		t.Fatalf("TMR checker gates %d, want double DMR's %d", c3.Gates, c2.Gates)
	}
	if Checker(200, 2).Gates != 2*c2.Gates {
		t.Fatal("checker should scale linearly with port width")
	}
	if c2.Flops != 0 {
		t.Fatal("checker modelled with flops")
	}
}

func TestPredictorComposition(t *testing.T) {
	p := Predictor(62, 11, 1200)
	if p.Flops != 62+11 {
		t.Fatalf("predictor flops %d, want DSR+PTAR = 73", p.Flops)
	}
	if p.Gates <= 0 {
		t.Fatal("no mapping logic")
	}
	// More sets -> more mapping logic, monotonic.
	if Predictor(62, 12, 2400).Gates <= p.Gates {
		t.Fatal("mapping logic should grow with set count")
	}
}

func TestTableIVShape(t *testing.T) {
	tiv := ComputeTableIV(11, 1200)
	// Predictor is a small fraction of the lockstep processor at every
	// scale, and the R5-scale ratios are within the paper's <2% claim.
	if tiv.VsSR5DMR.Area <= 0 || tiv.VsSR5DMR.Area > 0.15 {
		t.Fatalf("vs SR5 DMR area ratio %v", tiv.VsSR5DMR.Area)
	}
	if tiv.VsR5DMR.Area > 0.02 || tiv.VsR5DMR.Power > 0.02 {
		t.Fatalf("vs R5 DMR exceeds 2%%: %+v", tiv.VsR5DMR)
	}
	// Single-CPU ratios are about twice the DMR ratios.
	ratio := tiv.VsSR5.Area / tiv.VsSR5DMR.Area
	if ratio < 1.8 || ratio > 2.3 {
		t.Fatalf("single/dual ratio %v, want ~2", ratio)
	}
	// DMR is more than twice one CPU (checker added).
	if tiv.SR5DMR.AreaUM2() <= 2*tiv.SR5.AreaUM2() {
		t.Fatal("DMR should cost more than two bare CPUs")
	}
}

func TestRelative(t *testing.T) {
	a := Block{Flops: 1, Gates: 0}
	b := Block{Flops: 10, Gates: 0}
	ov := Relative(a, b)
	const eps = 1e-12
	if ov.Area < 0.1-eps || ov.Area > 0.1+eps || ov.Power < 0.1-eps || ov.Power > 0.1+eps {
		t.Fatalf("relative: %+v", ov)
	}
}
