package telemetry

import (
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on the default mux
)

// ServeDebug starts the process debug HTTP server on addr (e.g.
// "localhost:6060", or ":0" for an ephemeral port) and returns its base
// URL. The default mux carries net/http/pprof under /debug/pprof/ and
// expvar under /debug/vars, where the Default registry appears as
// "lockstep.telemetry" — so a long campaign can be profiled and its
// metrics watched live. The server runs until the process exits.
func ServeDebug(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: http.DefaultServeMux}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(), nil
}
