// Package telemetry is a small, dependency-free metrics layer for the
// lockstep campaign infrastructure: atomic counters and gauges,
// fixed-bucket latency histograms with quantile estimation, and labeled
// metric registries whose Snapshot serializes deterministically to JSON.
//
// The paper's whole argument is quantitative — detection latencies, DSR
// bit patterns, LERT per reaction phase — so the simulator's hot paths
// (inject, lockstep, handler) record into the Default registry and the
// campaign CLIs expose it via -metrics (JSON snapshot) and -pprof
// (net/http/pprof plus expvar, where the Default registry is published
// as "lockstep.telemetry").
//
// All metric updates are single atomic operations: they are safe from any
// number of goroutines, never block, and never perturb campaign
// determinism (no RNG, no time, no ordering dependence). A Snapshot taken
// while writers are active is internally consistent per value but not
// across values; quiescent snapshots are exact.
package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the counter to stay monotone; this is
// not enforced).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (set/add semantics).
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram of int64 observations (cycle
// counts, in this repo). Bucket bounds are inclusive upper limits; an
// observation larger than the last bound lands in an implicit overflow
// bucket. Count, sum, min and max are tracked exactly; quantiles are
// estimated by linear interpolation inside the bucket that holds the
// requested rank.
type Histogram struct {
	bounds   []int64
	counts   []atomic.Int64 // len(bounds), plus overflow below
	overflow atomic.Int64
	count    atomic.Int64
	sum      atomic.Int64
	min      atomic.Int64 // valid only when count > 0
	max      atomic.Int64
}

// CycleBuckets is the default bound set for cycle-denominated latencies
// (detection latency, LERT, per-phase reaction time): exponential from 1
// to ~1M cycles.
var CycleBuckets = []int64{
	1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
	1024, 2048, 4096, 8192, 16384, 32768, 65536,
	131072, 262144, 524288, 1048576,
}

// PopBuckets is the default bound set for DSR bit-population counts
// (1..64 set bits).
var PopBuckets = []int64{1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 32, 40, 48, 56, 64}

// NewHistogram builds a histogram over the given inclusive upper bounds,
// which must be strictly increasing and non-empty.
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly increasing")
		}
	}
	h := &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)),
	}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.min.Load()
		if v >= old || h.min.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
	idx := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	if idx < len(h.bounds) {
		h.counts[idx].Add(1)
	} else {
		h.overflow.Add(1)
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Min returns the smallest observation (0 if none).
func (h *Histogram) Min() int64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest observation (0 if none).
func (h *Histogram) Max() int64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.max.Load()
}

// Bounds returns the bucket upper bounds (shared; do not mutate).
func (h *Histogram) Bounds() []int64 { return h.bounds }

// BucketCount returns the count of the i-th bucket; i == len(Bounds())
// addresses the overflow bucket.
func (h *Histogram) BucketCount(i int) int64 {
	if i == len(h.bounds) {
		return h.overflow.Load()
	}
	return h.counts[i].Load()
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation within the bucket containing the rank, clamped to the
// observed [min, max]. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	lower := int64(0)
	est := float64(h.max.Load()) // falls through to overflow bucket
	for i, b := range h.bounds {
		c := h.counts[i].Load()
		if c > 0 && float64(cum)+float64(c) >= rank {
			frac := (rank - float64(cum)) / float64(c)
			est = float64(lower) + frac*float64(b-lower)
			break
		}
		cum += c
		lower = b
	}
	if mn := float64(h.Min()); est < mn {
		est = mn
	}
	if mx := float64(h.Max()); est > mx {
		est = mx
	}
	return est
}
