package telemetry

import (
	"expvar"
	"sort"
	"strings"
	"sync"
)

// Label is one name=value dimension of a metric.
type Label struct {
	Key, Value string
}

// L builds a Label, keeping call sites short.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metricKind discriminates registry entries.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	}
	return "histogram"
}

type entry struct {
	name   string
	labels []Label // sorted by key
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry is a labeled metric namespace. Metric handles are created on
// first use (get-or-create, keyed by name plus the sorted label set) and
// are stable thereafter: hot paths should hold the returned handle, but a
// per-event lookup is also cheap (an RWMutex read plus one map probe).
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{entries: map[string]*entry{}}
}

// Default is the process-wide registry the simulator packages record
// into. It is published under expvar as "lockstep.telemetry".
var Default = New()

func init() {
	expvar.Publish("lockstep.telemetry", expvar.Func(func() any {
		return Default.Snapshot()
	}))
}

// canonical returns the registry key "name{k=v,k2=v2}" with label keys
// sorted, which is also the metric's identity in snapshots.
func canonical(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

func sortLabels(labels []Label) []Label {
	if len(labels) < 2 {
		return labels
	}
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// get returns the entry for (name, labels), creating it with mk on first
// use. Asking for an existing metric with a different kind panics: it is
// a programming error that would silently split a metric's identity.
func (r *Registry) get(name string, labels []Label, kind metricKind, mk func(*entry)) *entry {
	labels = sortLabels(labels)
	id := canonical(name, labels)
	r.mu.RLock()
	e := r.entries[id]
	r.mu.RUnlock()
	if e == nil {
		r.mu.Lock()
		if e = r.entries[id]; e == nil {
			e = &entry{name: name, labels: labels, kind: kind}
			mk(e)
			r.entries[id] = e
		}
		r.mu.Unlock()
	}
	if e.kind != kind {
		panic("telemetry: metric " + id + " already registered as " + e.kind.String())
	}
	return e
}

// Counter returns the counter for (name, labels), creating it on first
// use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.get(name, labels, kindCounter, func(e *entry) { e.c = &Counter{} }).c
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.get(name, labels, kindGauge, func(e *entry) { e.g = &Gauge{} }).g
}

// Histogram returns the histogram for (name, labels), creating it with
// the given bucket bounds on first use. The bounds of an existing
// histogram are kept (they are part of the metric's contract, not of the
// call site).
func (r *Registry) Histogram(name string, bounds []int64, labels ...Label) *Histogram {
	return r.get(name, labels, kindHistogram, func(e *entry) { e.h = NewHistogram(bounds) }).h
}

// Reset drops every metric. Intended for tests.
func (r *Registry) Reset() {
	r.mu.Lock()
	r.entries = map[string]*entry{}
	r.mu.Unlock()
}

// sorted returns the entries ordered by canonical id.
func (r *Registry) sorted() []*entry {
	r.mu.RLock()
	ids := make([]string, 0, len(r.entries))
	for id := range r.entries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*entry, len(ids))
	for i, id := range ids {
		out[i] = r.entries[id]
	}
	r.mu.RUnlock()
	return out
}
