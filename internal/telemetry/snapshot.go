package telemetry

import (
	"encoding/json"
	"io"
	"math"
)

// Snapshot is a point-in-time, JSON-serializable view of a registry.
// Serialization is deterministic for a fixed set of recorded
// observations: metrics are ordered by canonical id, label maps are
// rendered with sorted keys (encoding/json), and quantiles are rounded
// to 3 decimals so float formatting is stable.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// CounterValue is one counter's snapshot.
type CounterValue struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// GaugeValue is one gauge's snapshot.
type GaugeValue struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// Bucket is one histogram bucket in a snapshot. Cumulative is the count
// of observations <= Le, so the sequence is monotone non-decreasing; the
// overflow bucket (> last bound) is not listed — it is Count minus the
// last Cumulative.
type Bucket struct {
	Le         int64 `json:"le"`
	Cumulative int64 `json:"cumulative"`
}

// HistogramValue is one histogram's snapshot.
type HistogramValue struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Min     int64             `json:"min"`
	Max     int64             `json:"max"`
	P50     float64           `json:"p50"`
	P95     float64           `json:"p95"`
	P99     float64           `json:"p99"`
	Buckets []Bucket          `json:"buckets,omitempty"`
}

func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

// Snapshot captures the registry. Slices are non-nil so an empty
// registry serializes as [] rather than null.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   []CounterValue{},
		Gauges:     []GaugeValue{},
		Histograms: []HistogramValue{},
	}
	for _, e := range r.sorted() {
		switch e.kind {
		case kindCounter:
			s.Counters = append(s.Counters, CounterValue{
				Name: e.name, Labels: labelMap(e.labels), Value: e.c.Value(),
			})
		case kindGauge:
			s.Gauges = append(s.Gauges, GaugeValue{
				Name: e.name, Labels: labelMap(e.labels), Value: e.g.Value(),
			})
		case kindHistogram:
			h := e.h
			hv := HistogramValue{
				Name: e.name, Labels: labelMap(e.labels),
				Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max(),
				P50: round3(h.Quantile(0.50)),
				P95: round3(h.Quantile(0.95)),
				P99: round3(h.Quantile(0.99)),
			}
			var cum int64
			for i, b := range h.Bounds() {
				cum += h.BucketCount(i)
				hv.Buckets = append(hv.Buckets, Bucket{Le: b, Cumulative: cum})
			}
			s.Histograms = append(s.Histograms, hv)
		}
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
