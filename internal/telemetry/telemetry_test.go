package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := New()
	c := r.Counter("hits")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("hits"); again != c {
		t.Fatal("Counter did not return the existing handle")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
}

func TestLabelsCanonicalOrder(t *testing.T) {
	r := New()
	a := r.Counter("m", L("b", "2"), L("a", "1"))
	b := r.Counter("m", L("a", "1"), L("b", "2"))
	if a != b {
		t.Fatal("label order created two distinct metrics")
	}
	if c := r.Counter("m", L("a", "1"), L("b", "other")); c == a {
		t.Fatal("different label values shared a metric")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("gauge reuse of a counter name did not panic")
		}
	}()
	r.Gauge("m")
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram([]int64{10, 20, 40})
	for _, v := range []int64{1, 10, 11, 25, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 147 {
		t.Fatalf("count=%d sum=%d, want 5/147", h.Count(), h.Sum())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min=%d max=%d, want 1/100", h.Min(), h.Max())
	}
	// Buckets: <=10 holds {1,10}, <=20 holds {11}, <=40 holds {25},
	// overflow holds {100}.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.BucketCount(i); got != w {
			t.Fatalf("bucket %d count=%d, want %d", i, got, w)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(CycleBuckets)
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram p50 = %v, want 0", q)
	}
	// 100 observations of exactly 100 cycles: every quantile is 100 (the
	// interpolation is clamped to the observed min/max).
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got := h.Quantile(q); got != 100 {
			t.Fatalf("q%.0f = %v, want 100", q*100, got)
		}
	}
	// An order-of-magnitude outlier moves p99 toward it but not p50.
	for i := 0; i < 5; i++ {
		h.Observe(10000)
	}
	if p50 := h.Quantile(0.5); p50 != 100 {
		t.Fatalf("p50 = %v, want 100", p50)
	}
	if p99 := h.Quantile(0.99); p99 <= 1000 {
		t.Fatalf("p99 = %v, want > 1000", p99)
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	for _, bounds := range [][]int64{{}, {5, 5}, {10, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v accepted", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestRegistryReset(t *testing.T) {
	r := New()
	r.Counter("c").Inc()
	r.Reset()
	if n := len(r.Snapshot().Counters); n != 0 {
		t.Fatalf("%d counters after Reset", n)
	}
}

func TestSnapshotEmptySerializesToArrays(t *testing.T) {
	var b strings.Builder
	if err := New().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"counters": []`, `"gauges": []`, `"histograms": []`} {
		if !strings.Contains(b.String(), key) {
			t.Fatalf("empty snapshot missing %s:\n%s", key, b.String())
		}
	}
}

// TestServeDebug starts the debug server on an ephemeral port and checks
// that expvar (with the published default registry) and pprof respond.
func TestServeDebug(t *testing.T) {
	Default.Counter("test.debug_probe").Inc()
	url, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Get(url + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("expvar output is not JSON: %v", err)
	}
	if _, ok := vars["lockstep.telemetry"]; !ok {
		t.Fatal("default registry not published under expvar")
	}
	if !strings.Contains(string(vars["lockstep.telemetry"]), "test.debug_probe") {
		t.Fatal("published snapshot is missing a recorded counter")
	}
	res, err = http.Get(url + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("pprof endpoint returned %d", res.StatusCode)
	}
}
