package telemetry

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"
)

// TestConcurrentCounters hammers one counter and one labeled counter set
// from NumCPU goroutines and checks the totals are exact (run under
// -race via `make ci`).
func TestConcurrentCounters(t *testing.T) {
	r := New()
	workers := runtime.NumCPU()
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Half the workers grab the handle once, half look it up per
			// event — both paths must agree.
			if w%2 == 0 {
				c := r.Counter("hot", L("shard", "a"))
				for i := 0; i < perWorker; i++ {
					c.Inc()
				}
			} else {
				for i := 0; i < perWorker; i++ {
					r.Counter("hot", L("shard", "a")).Inc()
				}
			}
		}(w)
	}
	wg.Wait()
	if got, want := r.Counter("hot", L("shard", "a")).Value(), int64(workers*perWorker); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
}

// TestConcurrentHistogram checks exact count/sum under parallel
// observation and that the snapshot's cumulative bucket counts are
// monotone and bounded by the total count.
func TestConcurrentHistogram(t *testing.T) {
	r := New()
	h := r.Histogram("lat", CycleBuckets)
	workers := runtime.NumCPU()
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				h.Observe(int64(rng.Intn(2_000_000))) // overflow bucket included
			}
		}(w)
	}
	wg.Wait()

	want := int64(workers * perWorker)
	if h.Count() != want {
		t.Fatalf("count = %d, want %d", h.Count(), want)
	}
	var sum int64
	for w := 0; w < workers; w++ {
		rng := rand.New(rand.NewSource(int64(w)))
		for i := 0; i < perWorker; i++ {
			sum += int64(rng.Intn(2_000_000))
		}
	}
	if h.Sum() != sum {
		t.Fatalf("sum = %d, want %d", h.Sum(), sum)
	}

	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("%d histograms in snapshot", len(snap.Histograms))
	}
	hv := snap.Histograms[0]
	prev := int64(0)
	for i, b := range hv.Buckets {
		if b.Cumulative < prev {
			t.Fatalf("bucket %d cumulative %d < previous %d", i, b.Cumulative, prev)
		}
		prev = b.Cumulative
	}
	if prev > hv.Count {
		t.Fatalf("last cumulative %d exceeds count %d", prev, hv.Count)
	}
	if hv.Count != want {
		t.Fatalf("snapshot count = %d, want %d", hv.Count, want)
	}
}

// TestSnapshotWhileWriting snapshots concurrently with writers; the race
// detector is the assertion.
func TestSnapshotWhileWriting(t *testing.T) {
	r := New()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := r.Histogram("h", PopBuckets, L("w", string(rune('a'+w))))
			c := r.Counter("c")
			g := r.Gauge("g")
			for i := int64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
					h.Observe(i % 70)
					c.Inc()
					g.Set(i)
				}
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		if _, err := json.Marshal(r.Snapshot()); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestSnapshotDeterministic is the property test: two registries fed the
// same multiset of observations — in different orders, from different
// goroutine interleavings — serialize to byte-identical JSON.
func TestSnapshotDeterministic(t *testing.T) {
	obs := make([]int64, 4096)
	rng := rand.New(rand.NewSource(42))
	for i := range obs {
		obs[i] = int64(rng.Intn(1 << 21))
	}

	build := func(order []int64, shards int) []byte {
		r := New()
		var wg sync.WaitGroup
		per := (len(order) + shards - 1) / shards
		for s := 0; s < shards; s++ {
			lo := s * per
			hi := lo + per
			if hi > len(order) {
				hi = len(order)
			}
			wg.Add(1)
			go func(chunk []int64) {
				defer wg.Done()
				for _, v := range chunk {
					r.Histogram("lat", CycleBuckets, L("k", "x")).Observe(v)
					r.Counter("n", L("parity", []string{"even", "odd"}[v%2])).Inc()
					r.Gauge("last_bucket").Set(v % 7)
				}
			}(order[lo:hi])
		}
		wg.Wait()
		// The gauge is order-dependent by nature; pin it so the rest of
		// the snapshot's determinism is what the test measures.
		r.Gauge("last_bucket").Set(0)
		data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	shuffled := append([]int64(nil), obs...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

	a := build(obs, 1)
	b := build(shuffled, runtime.NumCPU())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("snapshots differ for the same observation multiset:\n%s\n----\n%s", a, b)
	}
}
