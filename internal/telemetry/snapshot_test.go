package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry records a fixed observation sequence; the golden file
// pins the snapshot JSON format so accidental drift is caught in review.
func goldenRegistry() *Registry {
	r := New()
	r.Counter("inject.outcomes",
		L("kernel", "ttsprk"), L("kind", "soft"), L("outcome", "detected")).Add(42)
	r.Counter("inject.outcomes",
		L("kernel", "ttsprk"), L("kind", "soft"), L("outcome", "converged")).Add(17)
	r.Counter("inject.outcomes",
		L("kernel", "ttsprk"), L("kind", "stuck-at-1"), L("outcome", "detected")).Add(63)
	r.Counter("inject.replay_restores").Add(122)
	r.Gauge("inject.workers").Set(4)
	r.Gauge("inject.golden_trace_bytes").Set(3 * 1024 * 1024)
	h := r.Histogram("inject.detect_latency", CycleBuckets, L("kernel", "ttsprk"), L("kind", "soft"))
	for _, v := range []int64{3, 5, 9, 17, 33, 65, 129, 257, 1025, 70000} {
		h.Observe(v)
	}
	p := r.Histogram("lockstep.dsr_popcount", PopBuckets, L("source", "inject"))
	for _, v := range []int64{1, 1, 2, 3, 5, 8, 13, 21, 34, 55} {
		p.Observe(v)
	}
	return r
}

func TestSnapshotGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "snapshot.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/telemetry/ -update` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("snapshot JSON drifted from %s (re-run with -update if intended):\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}
}
