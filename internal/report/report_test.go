package report

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"lockstep/internal/experiments"
)

var (
	ctxOnce sync.Once
	ctx     *experiments.Context
	ctxErr  error
)

func sharedContext(t *testing.T) *experiments.Context {
	t.Helper()
	ctxOnce.Do(func() {
		scale := experiments.Small
		scale.FlopStride = 12
		ctx, ctxErr = experiments.NewContext(scale, nil)
	})
	if ctxErr != nil {
		t.Fatal(ctxErr)
	}
	return ctx
}

func TestGenerateWellFormed(t *testing.T) {
	c := sharedContext(t)
	var buf bytes.Buffer
	if err := Generate(&buf, c); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	musts := []string{
		"<!DOCTYPE html", "</html>",
		"Table I", "Table II", "Table III", "Table IV",
		"Figure 4", "Figure 5", "Figure 11", "Figure 12", "Figure 14", "Figure 15",
		"<svg", "</svg>",
	}
	for _, m := range musts {
		if !strings.Contains(out, m) {
			t.Errorf("report missing %q", m)
		}
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Error("report contains NaN/Inf values")
	}
	// Every opened SVG closes.
	if strings.Count(out, "<svg") != strings.Count(out, "</svg>") {
		t.Error("unbalanced svg tags")
	}
	if buf.Len() < 10_000 {
		t.Errorf("suspiciously small report: %d bytes", buf.Len())
	}
}

func TestBarChartBasics(t *testing.T) {
	svg := BarChart("title", []string{"a", "b"}, []float64{1, 2}, "%")
	for _, m := range []string{"<svg", "</svg>", "title", "rect", ">a<", ">b<"} {
		if !strings.Contains(svg, m) {
			t.Errorf("bar chart missing %q", m)
		}
	}
	// Empty data must not panic and still closes.
	empty := BarChart("t", nil, nil, "")
	if !strings.Contains(empty, "</svg>") {
		t.Error("empty bar chart malformed")
	}
}

func TestLineChartBasics(t *testing.T) {
	svg := LineChart("sweep", []int{1, 2, 3},
		map[string][]float64{"acc": {10, 20, 30}, "spd": {5, 6, 7}}, "%")
	for _, m := range []string{"<svg", "path", "circle", "acc", "spd"} {
		if !strings.Contains(svg, m) {
			t.Errorf("line chart missing %q", m)
		}
	}
	// Deterministic output: map ordering must not leak.
	again := LineChart("sweep", []int{1, 2, 3},
		map[string][]float64{"spd": {5, 6, 7}, "acc": {10, 20, 30}}, "%")
	if svg != again {
		t.Error("line chart output depends on map iteration order")
	}
	if !strings.Contains(LineChart("x", nil, nil, ""), "</svg>") {
		t.Error("empty line chart malformed")
	}
}

func TestHistogram(t *testing.T) {
	svg := Histogram("unit", []float64{0.5, 0.3, 0.2, 0.0}, 2)
	if !strings.Contains(svg, ">s0<") || !strings.Contains(svg, ">s1<") {
		t.Error("histogram labels wrong")
	}
	if strings.Contains(svg, ">s2<") {
		t.Error("topN truncation failed")
	}
}

func TestEscape(t *testing.T) {
	if got := escape("<a&b>"); got != "&lt;a&amp;b&gt;" {
		t.Fatalf("escape: %q", got)
	}
}

func TestNiceMax(t *testing.T) {
	cases := map[float64]float64{0: 1, 0.7: 1, 3: 5, 12: 20, 87: 100, 130000: 200000}
	for in, want := range cases {
		if got := niceMax(in); got != want {
			t.Errorf("niceMax(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestFmtTick(t *testing.T) {
	cases := map[float64]string{5: "5", 2500: "2.5k", 1_200_000: "1.2M"}
	for in, want := range cases {
		if got := fmtTick(in); got != want {
			t.Errorf("fmtTick(%v) = %q, want %q", in, got, want)
		}
	}
}
