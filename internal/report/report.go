package report

import (
	"fmt"
	"io"

	"lockstep/internal/core"
	"lockstep/internal/experiments"
	"lockstep/internal/sbist"
	"lockstep/internal/stats"
)

// Generate writes the full paper-vs-measured reproduction report as a
// self-contained HTML page: every table as HTML, every data-bearing figure
// as an inline SVG chart.
func Generate(w io.Writer, c *experiments.Context) error {
	p := &printer{w: w}
	p.printf(`<!DOCTYPE html><html><head><meta charset="utf-8">
<title>Error Correlation Prediction — reproduction report</title>
<style>
 body { font-family: sans-serif; max-width: 1000px; margin: 24px auto; color: #222; }
 h1 { font-size: 22px; } h2 { font-size: 17px; margin-top: 32px; }
 table { border-collapse: collapse; margin: 8px 0; }
 td, th { border: 1px solid #ccc; padding: 4px 10px; font-size: 13px; text-align: right; }
 th { background: #f2f2f2; } td:first-child, th:first-child { text-align: left; }
 .paper { color: #777; font-size: 12px; }
 .panel { display: inline-block; margin: 4px; vertical-align: top; }
</style></head><body>
<h1>Error Correlation Prediction in Lockstep Processors — reproduction report</h1>
<p>Campaign: scale <b>%s</b>, %d experiments, %d manifested errors.
Paper values shown in grey for comparison.</p>`,
		c.Scale.Name, c.DS.Len(), c.DS.Manifested().Len())

	p.table1(c)
	p.table2(c)
	p.table3(c)
	p.table4(c)
	p.figBC(c, true)
	p.figBC(c, false)
	p.modelChart(c, core.Coarse7)
	p.sweepCharts(c, core.Coarse7)
	p.modelChart(c, core.Fine13)
	p.sweepCharts(c, core.Fine13)
	p.spread(c)

	p.printf("</body></html>\n")
	return p.err
}

type printer struct {
	w   io.Writer
	err error
}

func (p *printer) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *printer) table1(c *experiments.Context) {
	t := c.Table1()
	p.printf(`<h2>Table I — fault injection statistics</h2>
<table><tr><th>statistic</th><th>measured [min, mean, max]</th><th class="paper">paper</th></tr>
<tr><td>Soft error manifestation rate</td><td>%s</td><td class="paper">[0.2%%, 5%%, 27%%]</td></tr>
<tr><td>Hard error manifestation rate</td><td>%s</td><td class="paper">[3%%, 40%%, 88%%]</td></tr>
<tr><td>Soft error manifestation time (cyc)</td><td>%s</td><td class="paper">[2, 700, 80k]</td></tr>
<tr><td>Hard error manifestation time (cyc)</td><td>%s</td><td class="paper">[2, 1800, 130k]</td></tr>
<tr><td>Distinct diverged SC sets</td><td>%d</td><td class="paper">~1200</td></tr>
</table>`,
		pct3(t.SoftRate), pct3(t.HardRate), t.SoftTime, t.HardTime, t.DistinctSets)
}

func pct3(s stats.Summary) string {
	return fmt.Sprintf("[%.1f%%, %.1f%%, %.1f%%]", 100*s.Min, 100*s.Mean, 100*s.Max)
}

func (p *printer) table2(c *experiments.Context) {
	t := c.Table2()
	p.printf(`<h2>Table II — model latencies (cycles)</h2>
<table><tr><th>latency</th><th>measured</th><th class="paper">paper</th></tr>
<tr><td>Prediction table access</td><td>%d / %d</td><td class="paper">2 / 100</td></tr>
<tr><td>STL range</td><td>%s</td><td class="paper">[25k, 170k, 700k]</td></tr>
<tr><td>Restart range</td><td>%s</td><td class="paper">[2k, 10k, 36k]</td></tr>
</table>`, t.OnChipAccess, t.OffChipAccess, t.STL, t.Restart)
}

func (p *printer) table3(c *experiments.Context) {
	t := c.Table3()
	p.printf(`<h2>Table III — error type prediction accuracy</h2>
<table><tr><th>error type</th><th>measured</th><th class="paper">paper</th></tr>
<tr><td>Soft</td><td>%.1f%%</td><td class="paper">86%%</td></tr>
<tr><td>Hard</td><td>%.1f%%</td><td class="paper">49%%</td></tr>
<tr><td>Overall</td><td>%.1f%%</td><td class="paper">67%%</td></tr>
</table>`, 100*t.Soft, 100*t.Hard, 100*t.Overall)
}

func (p *printer) table4(c *experiments.Context) {
	t := c.Table4()
	p.printf(`<h2>Table IV — predictor area and power overhead</h2>
<table><tr><th>relative to</th><th>area</th><th>power</th><th class="paper">paper</th></tr>
<tr><td>Dual-SR5 lockstep</td><td>%.1f%%</td><td>%.1f%%</td><td class="paper">0.6%% / 1.8%% (dual-R5)</td></tr>
<tr><td>Single SR5 CPU</td><td>%.1f%%</td><td>%.1f%%</td><td class="paper">1.4%% / 4.2%% (one R5)</td></tr>
<tr><td>Dual R5-class lockstep (calibration)</td><td>%.1f%%</td><td>%.1f%%</td><td class="paper">&lt;2%%</td></tr>
</table>`,
		100*t.VsSR5DMR.Area, 100*t.VsSR5DMR.Power,
		100*t.VsSR5.Area, 100*t.VsSR5.Power,
		100*t.VsR5DMR.Area, 100*t.VsR5DMR.Power)
}

func (p *printer) figBC(c *experiments.Context, hard bool) {
	f := c.FigUnitBC(hard)
	kind, figure, paperAvg := "soft", "Figure 5", 0.32
	if hard {
		kind, figure, paperAvg = "hard", "Figure 4", 0.39
	}
	p.printf(`<h2>%s — %s error distributions over diverged SC sets</h2>
<p>Average pairwise Bhattacharyya coefficient %.2f <span class="paper">(paper ~%.2f)</span>;
min/median/max-BC units shown.</p>`, figure, kind, f.AvgBC, paperAvg)
	for _, u := range []int{f.MinUnit, f.MedUnit, f.MaxUnit} {
		title := fmt.Sprintf("%s (avg BC %.2f)", core.Coarse7.UnitName(u), f.UnitBC[u])
		p.printf(`<div class="panel">%s</div>`, Histogram(title, f.Dists[u], 8))
	}
}

func (p *printer) modelChart(c *experiments.Context, gran core.Granularity) {
	mc := c.Compare(gran, sbist.OnChipTableAccess)
	figure := "Figure 11 — average LERT per error (7 units)"
	if gran == core.Fine13 {
		figure = "Figure 14 — average LERT per error (13 units)"
	}
	labels := make([]string, len(mc.Rows))
	values := make([]float64, len(mc.Rows))
	for i, r := range mc.Rows {
		labels[i] = r.Model
		values[i] = r.MeanLERT
	}
	p.printf(`<h2>%s</h2><div class="panel">%s</div>
<p>pred-comb reduction: %.1f%% vs base-manifest, %.1f%% vs base-ascending,
%.1f%% vs pred-location-only <span class="paper">(paper: %s)</span></p>`,
		figure, BarChart("average LERT (cycles)", labels, values, ""),
		100*mc.CombVsManifest, 100*mc.CombVsAscending, 100*mc.CombVsLocation,
		paperSpeedups(gran))
}

func paperSpeedups(gran core.Granularity) string {
	if gran == core.Fine13 {
		return "64% / 42% / 34%"
	}
	return "65% / 64% / 39%"
}

func (p *printer) sweepCharts(c *experiments.Context, gran core.Granularity) {
	sw := c.SweepTopK(gran)
	accFig, lertFig := "Figure 12", "Figure 13"
	if gran == core.Fine13 {
		accFig, lertFig = "Figure 15", "Figure 16"
	}
	acc := make([]float64, len(sw.K))
	spd := make([]float64, len(sw.K))
	for i := range sw.K {
		acc[i] = 100 * sw.Accuracy[i]
		spd[i] = 100 * sw.Speedup[i]
	}
	p.printf(`<h2>%s / %s — predicted unit count sweep (%v)</h2>
<div class="panel">%s</div><div class="panel">%s</div>`,
		accFig, lertFig, gran,
		LineChart("location prediction accuracy", sw.K,
			map[string][]float64{"accuracy %": acc}, ""),
		LineChart("speedup vs base-ascending", sw.K,
			map[string][]float64{"speedup %": spd}, ""))
}

func (p *printer) spread(c *experiments.Context) {
	sp := c.SpreadAnalysis()
	p.printf(`<h2>Section III-B — diverged-SC-set spread (same flops)</h2>
<table><tr><th>class</th><th>distinct sets</th><th>avg SCs at detection</th></tr>
<tr><td>soft</td><td>%d</td><td>%.2f</td></tr>
<tr><td>hard</td><td>%d</td><td>%.2f</td></tr>
</table>
<p>Hard errors produce %.0f%% more distinct sets
<span class="paper">(paper: 54%% more)</span>.</p>`,
		sp.SoftSets, sp.SoftAvgSCs, sp.HardSets, sp.HardAvgSCs, 100*sp.MorePct)
}
