// Package report renders the reproduction results as a self-contained HTML
// page with inline SVG charts — bar charts for the model-comparison
// figures, line charts for the predicted-unit-count sweeps, and histogram
// panels for the signature-distribution figures — so a full paper-vs-
// measured report can be generated with no dependencies beyond the
// standard library.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Chart geometry shared by all SVG renderings.
const (
	chartW   = 640
	chartH   = 300
	padL     = 70
	padR     = 20
	padT     = 36
	padB     = 58
	plotW    = chartW - padL - padR
	plotH    = chartH - padT - padB
	axisGrey = "#888"
	inkGrey  = "#333"
)

// palette is a small colour cycle for series and bars.
var palette = []string{"#4878a8", "#e49444", "#5bae7a", "#b05cc6", "#d1605e", "#857aab"}

type svgBuf struct{ strings.Builder }

func (b *svgBuf) open(w, h int) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`, w, h, w, h)
}

func (b *svgBuf) text(x, y float64, size int, anchor, fill, s string) {
	fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="%d" text-anchor="%s" fill="%s">%s</text>`,
		x, y, size, anchor, fill, escape(s))
}

func (b *svgBuf) line(x1, y1, x2, y2 float64, stroke string, width float64) {
	fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`,
		x1, y1, x2, y2, stroke, width)
}

func (b *svgBuf) rect(x, y, w, h float64, fill string) {
	fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`,
		x, y, w, h, fill)
}

func (b *svgBuf) close() { b.WriteString("</svg>") }

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// niceMax rounds a maximum up to a pleasant axis bound.
func niceMax(v float64) float64 {
	if v <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(v)))
	for _, m := range []float64{1, 2, 2.5, 5, 10} {
		if v <= m*mag {
			return m * mag
		}
	}
	return 10 * mag
}

func fmtTick(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.3gk", v/1e3)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// BarChart renders labelled vertical bars with value annotations — the
// shape of the paper's Figures 11 and 14.
func BarChart(title string, labels []string, values []float64, valueUnit string) string {
	var b svgBuf
	b.open(chartW, chartH)
	b.text(chartW/2, 18, 14, "middle", inkGrey, title)

	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	max = niceMax(max)

	// Axes and gridlines.
	b.line(padL, padT, padL, padT+plotH, axisGrey, 1)
	b.line(padL, padT+plotH, padL+plotW, padT+plotH, axisGrey, 1)
	for i := 0; i <= 4; i++ {
		v := max * float64(i) / 4
		y := float64(padT+plotH) - float64(plotH)*float64(i)/4
		b.line(padL, y, padL+plotW, y, "#e0e0e0", 0.5)
		b.text(padL-6, y+4, 10, "end", axisGrey, fmtTick(v))
	}

	n := len(values)
	if n == 0 {
		b.close()
		return b.String()
	}
	slot := float64(plotW) / float64(n)
	barW := slot * 0.62
	for i, v := range values {
		h := float64(plotH) * v / max
		x := float64(padL) + slot*float64(i) + (slot-barW)/2
		y := float64(padT+plotH) - h
		b.rect(x, y, barW, h, palette[i%len(palette)])
		b.text(x+barW/2, y-4, 10, "middle", inkGrey, fmtTick(v)+valueUnit)
		b.text(x+barW/2, float64(padT+plotH)+14, 10, "middle", inkGrey, trimLabel(labels[i]))
	}
	b.close()
	return b.String()
}

func trimLabel(s string) string {
	s = strings.TrimPrefix(s, "base-")
	s = strings.TrimPrefix(s, "pred-")
	return s
}

// LineChart renders one or more series over a shared integer x axis — the
// shape of the paper's Figures 12/13/15/16.
func LineChart(title string, xs []int, series map[string][]float64, yUnit string) string {
	var b svgBuf
	b.open(chartW, chartH)
	b.text(chartW/2, 18, 14, "middle", inkGrey, title)

	max := 0.0
	for _, ys := range series {
		for _, v := range ys {
			if v > max {
				max = v
			}
		}
	}
	max = niceMax(max)

	b.line(padL, padT, padL, padT+plotH, axisGrey, 1)
	b.line(padL, padT+plotH, padL+plotW, padT+plotH, axisGrey, 1)
	for i := 0; i <= 4; i++ {
		v := max * float64(i) / 4
		y := float64(padT+plotH) - float64(plotH)*float64(i)/4
		b.line(padL, y, padL+plotW, y, "#e0e0e0", 0.5)
		b.text(padL-6, y+4, 10, "end", axisGrey, fmtTick(v)+yUnit)
	}
	if len(xs) == 0 {
		b.close()
		return b.String()
	}
	xpos := func(i int) float64 {
		if len(xs) == 1 {
			return padL + plotW/2
		}
		return float64(padL) + float64(plotW)*float64(i)/float64(len(xs)-1)
	}
	for i, x := range xs {
		b.text(xpos(i), float64(padT+plotH)+14, 10, "middle", axisGrey, fmt.Sprintf("%d", x))
	}
	b.text(chartW/2, chartH-6, 11, "middle", axisGrey, "predicted units (K)")

	// Stable series order for deterministic output.
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sortStrings(names)
	for si, name := range names {
		ys := series[name]
		color := palette[si%len(palette)]
		var path strings.Builder
		for i, v := range ys {
			y := float64(padT+plotH) - float64(plotH)*v/max
			if i == 0 {
				fmt.Fprintf(&path, "M%.1f %.1f", xpos(i), y)
			} else {
				fmt.Fprintf(&path, " L%.1f %.1f", xpos(i), y)
			}
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s"/>`, xpos(i), y, color)
		}
		fmt.Fprintf(&b, `<path d="%s" stroke="%s" stroke-width="1.8" fill="none"/>`, path.String(), color)
		// Legend.
		lx := float64(padL) + 10
		ly := float64(padT) + 14*float64(si) + 6
		b.line(lx, ly, lx+18, ly, color, 2.5)
		b.text(lx+24, ly+4, 10, "start", inkGrey, name)
	}
	b.close()
	return b.String()
}

// Histogram renders a probability distribution head (top bars) — one panel
// of the paper's Figures 4/5.
func Histogram(title string, probs []float64, topN int) string {
	idx := argsortDesc(probs)
	if len(idx) > topN {
		idx = idx[:topN]
	}
	labels := make([]string, len(idx))
	vals := make([]float64, len(idx))
	for i, id := range idx {
		labels[i] = fmt.Sprintf("s%d", id)
		vals[i] = probs[id] * 100
	}
	return BarChart(title, labels, vals, "%")
}

func argsortDesc(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && xs[idx[j]] > xs[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
