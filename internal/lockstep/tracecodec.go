package lockstep

import (
	"encoding/binary"
	"fmt"

	"lockstep/internal/cpu"
	"lockstep/internal/mem"
)

// Serialized golden-trace codec. The in-memory trace (goldenTrace) is
// already compacted — interned OutVec table, 4-byte ids and fingerprints
// — and the codec flattens that layout further for storage or shipping to
// campaign worker nodes:
//
//	magic "lktr" | uvarint TraceVersion
//	uvarint cycles(=len(outID)) | RLE pairs (uvarint id, uvarint runLen)
//	uvarint len(outTab) | NumSC uvarints per vector
//	uvarint len(fp) | 4-byte LE XOR-delta vs the previous fingerprint
//	uvarint len(writes) | per event: zigzag cycle delta, zigzag addr
//	                      delta, uvarint data, uvarint mask
//	uvarint len(reads)  | per event: zigzag cycle delta, zigzag addr
//	                      delta, uvarint data
//
// The id stream is run-length encoded because kernels are loops: long
// spans of cycles repeat the same interned output vector. Event cycles
// and addresses are delta-encoded because both streams are generated in
// ascending cycle order with strong address locality; zigzag keeps the
// codec total (any event order round-trips) rather than only valid for
// sorted streams. decodeTrace is fuzz-hardened: every count is validated
// against what the remaining input could possibly hold before anything is
// allocated, so arbitrary bytes produce an error, never a panic or an
// attacker-sized allocation.
const traceMagic = "lktr"

// maxTraceCycles caps the decoded trace length. Real campaign traces are
// tens of thousands of cycles; the cap only bounds what a corrupt or
// hostile header can make the decoder allocate.
const maxTraceCycles = 1 << 22

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendZigzag(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// encodeTrace serializes t. The result always decodes back to an equal
// goldenTrace via decodeTrace.
func encodeTrace(t *goldenTrace) []byte {
	b := append([]byte(nil), traceMagic...)
	b = appendUvarint(b, TraceVersion)

	b = appendUvarint(b, uint64(len(t.outID)))
	for i := 0; i < len(t.outID); {
		j := i + 1
		for j < len(t.outID) && t.outID[j] == t.outID[i] {
			j++
		}
		b = appendUvarint(b, uint64(t.outID[i]))
		b = appendUvarint(b, uint64(j-i))
		i = j
	}

	b = appendUvarint(b, uint64(len(t.outTab)))
	for i := range t.outTab {
		for _, w := range t.outTab[i] {
			b = appendUvarint(b, uint64(w))
		}
	}

	b = appendUvarint(b, uint64(len(t.fp)))
	prev := uint32(0)
	for _, f := range t.fp {
		b = binary.LittleEndian.AppendUint32(b, f^prev)
		prev = f
	}

	b = appendUvarint(b, uint64(len(t.writes)))
	var pc, pa int64
	for _, w := range t.writes {
		b = appendZigzag(b, int64(w.Cycle)-pc)
		b = appendZigzag(b, int64(w.Addr)-pa)
		b = appendUvarint(b, uint64(w.Data))
		b = appendUvarint(b, uint64(w.Mask))
		pc, pa = int64(w.Cycle), int64(w.Addr)
	}

	b = appendUvarint(b, uint64(len(t.reads)))
	pc, pa = 0, 0
	for _, r := range t.reads {
		b = appendZigzag(b, int64(r.Cycle)-pc)
		b = appendZigzag(b, int64(r.Addr)-pa)
		b = appendUvarint(b, uint64(r.Data))
		pc, pa = int64(r.Cycle), int64(r.Addr)
	}
	return b
}

// traceReader is a bounds-checked cursor over an encoded trace.
type traceReader struct {
	b   []byte
	err error
}

func (r *traceReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("lockstep: bad trace: "+format, args...)
	}
}

func (r *traceReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail("truncated or oversized uvarint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *traceReader) zigzag() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail("truncated or oversized varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *traceReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 4 {
		r.fail("truncated fingerprint")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

// count reads an element count and rejects it unless the remaining input
// could hold that many elements of at least minBytes each (minBytes = 0
// for RLE-compressed streams, which are capped separately).
func (r *traceReader) count(what string, max int, minBytes int) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if v > uint64(max) {
		r.fail("%s count %d exceeds cap %d", what, v, max)
		return 0
	}
	if minBytes > 0 && v > uint64(len(r.b)/minBytes) {
		r.fail("%s count %d exceeds remaining input", what, v)
		return 0
	}
	return int(v)
}

func u32InRange(r *traceReader, what string, v int64) uint32 {
	if v < 0 || v > int64(^uint32(0)) {
		r.fail("%s %d out of uint32 range", what, v)
		return 0
	}
	return uint32(v)
}

// decodeTrace parses an encodeTrace result. It returns an error (never
// panics, never allocates beyond what the input length justifies) on
// arbitrary input; FuzzTraceDecode holds it to that.
func decodeTrace(b []byte) (*goldenTrace, error) {
	r := &traceReader{b: b}
	if len(b) < len(traceMagic) || string(b[:len(traceMagic)]) != traceMagic {
		return nil, fmt.Errorf("lockstep: bad trace: missing %q magic", traceMagic)
	}
	r.b = b[len(traceMagic):]
	if v := r.uvarint(); r.err == nil && v != TraceVersion {
		r.fail("version %d, want %d", v, TraceVersion)
	}

	t := &goldenTrace{}
	cycles := r.count("cycle", maxTraceCycles, 0)
	if r.err == nil {
		t.outID = make([]uint32, 0, cycles)
	}
	for len(t.outID) < cycles && r.err == nil {
		id := r.uvarint()
		run := r.uvarint()
		if r.err != nil {
			break
		}
		if id > uint64(^uint32(0)) {
			r.fail("outvec id %d out of range", id)
			break
		}
		if run == 0 || run > uint64(cycles-len(t.outID)) {
			r.fail("outvec run %d outside remaining %d cycles", run, cycles-len(t.outID))
			break
		}
		for i := uint64(0); i < run; i++ {
			t.outID = append(t.outID, uint32(id))
		}
	}

	nTab := r.count("outvec table", maxTraceCycles, cpu.NumSC)
	if r.err == nil {
		t.outTab = make([]cpu.OutVec, nTab)
	}
	for i := 0; i < nTab && r.err == nil; i++ {
		for j := 0; j < cpu.NumSC; j++ {
			w := r.uvarint()
			if w > uint64(^uint32(0)) {
				r.fail("outvec word out of range")
				break
			}
			t.outTab[i][j] = uint32(w)
		}
	}
	for _, id := range t.outID {
		if int(id) >= nTab {
			r.fail("outvec id %d outside table of %d", id, nTab)
			break
		}
	}

	nFP := r.count("fingerprint", maxTraceCycles, 4)
	if r.err == nil {
		t.fp = make([]uint32, nFP)
	}
	prev := uint32(0)
	for i := 0; i < nFP && r.err == nil; i++ {
		prev ^= r.u32()
		t.fp[i] = prev
	}

	nW := r.count("write event", maxTraceCycles, 4)
	if r.err == nil {
		t.writes = make([]mem.WriteEvent, 0, nW)
	}
	var pc, pa int64
	for i := 0; i < nW && r.err == nil; i++ {
		pc += r.zigzag()
		pa += r.zigzag()
		data := r.uvarint()
		mask := r.uvarint()
		if r.err != nil {
			break
		}
		if pc < 0 || pc > int64(^uint32(0)>>1) {
			r.fail("write cycle %d out of range", pc)
			break
		}
		if data > uint64(^uint32(0)) || mask > uint64(^uint32(0)) {
			r.fail("write payload out of uint32 range")
			break
		}
		t.writes = append(t.writes, mem.WriteEvent{
			Cycle: int32(pc),
			Addr:  u32InRange(r, "write addr", pa),
			Data:  uint32(data),
			Mask:  uint32(mask),
		})
	}

	nR := r.count("read event", maxTraceCycles, 3)
	if r.err == nil {
		t.reads = make([]mem.ReadEvent, 0, nR)
	}
	pc, pa = 0, 0
	for i := 0; i < nR && r.err == nil; i++ {
		pc += r.zigzag()
		pa += r.zigzag()
		data := r.uvarint()
		if r.err != nil {
			break
		}
		if pc < 0 || pc > int64(^uint32(0)>>1) {
			r.fail("read cycle %d out of range", pc)
			break
		}
		if data > uint64(^uint32(0)) {
			r.fail("read data out of uint32 range")
			break
		}
		t.reads = append(t.reads, mem.ReadEvent{
			Cycle: int32(pc),
			Addr:  u32InRange(r, "read addr", pa),
			Data:  uint32(data),
		})
	}

	if r.err == nil && len(r.b) != 0 {
		r.fail("%d trailing bytes", len(r.b))
	}
	if r.err != nil {
		return nil, r.err
	}
	return t, nil
}
