package lockstep

import (
	"math/bits"
	"strconv"
	"strings"

	"lockstep/internal/cpu"
	"lockstep/internal/isa"
)

// This file implements static fault-equivalence pruning: classifying
// (flop, kind, cycle) injection sites as provably Masked (or, for soft
// faults, provably Converged) from the recorded golden run alone, without
// simulating a single faulty cycle. The campaign driver consults
// Golden.Prune before dispatching an experiment; a differential-oracle
// test layer (TestPruneSoundness, plus an always-on runtime sample inside
// inject.Run) re-simulates pruned sites through the full Replayer and
// asserts the prediction, so the static argument is continuously proven
// against the simulator it replaces.
//
// # The soundness argument
//
// Both injection paths maintain the loop invariant "at the top of
// iteration R the faulty CPU holds the end-of-cycle-R state": outputs are
// compared against the golden vector of cycle R, then one cycle is
// stepped and the fault re-forced (stuck-at) or the flipped flop restored
// to its golden value (soft, one cycle after injection).
//
// Call flop F "observed at cycle R" when its end-of-R value can influence
// anything outside F itself:
//
//   - it is exposed on the compared output port (outputs.go qualifies
//     payload buses by their valid strobes, so e.g. IReqAddr is exposed
//     only while IReqValid), or
//   - the combinational logic of step R -> R+1 reads it into the next
//     value of any OTHER flop (bus writes don't count: a redundant CPU's
//     writes are dropped by Monitor and ReplayBus alike).
//
// If F is NOT observed at R, then two states that differ only in F
// produce equal outputs at R and step to next states that again differ at
// most in F. From this, per kind:
//
//   - Stuck-at-v at (F, C) is Masked iff there is no cycle R in
//     [C, TotalCycles) where F is observed AND the golden value of F
//     differs from v. By induction the faulty state equals the golden
//     state except possibly bit F (re-forced to v after every edge), the
//     checker never fires, and the run reaches the horizon: Outcome{}.
//     For an always-observed flop this degrades gracefully into pure
//     value stability — forcing a bit to the value it already holds for
//     the rest of the run is a no-op (this is how constant upper address
//     bits, a never-asserted Halted flag, or a configured-once MPU
//     register absorb matching stuck-at faults).
//
//   - A soft flip at (F, C) is Converged iff F is not observed at C: the
//     compare at C passes, the step to C+1 corrupts nothing else, and the
//     flop itself is restored to its golden value right after that step —
//     the faulty state IS the golden state at C+1. Convergence is
//     absorbing (see softCheckDue), so the simulated path returns
//     Outcome{Converged: true} at its first post-injection check. The one
//     exception is C == TotalCycles-1: the injection loop exits before
//     the first convergence check is due, so the simulated outcome for
//     that site is Outcome{} (Masked), and Prune predicts exactly that.
//
// # Observation streams
//
// Flops are grouped into streams with a common observation condition,
// each a function of golden end-of-cycle state that provably does not
// involve the stream's own flops (no circularity). The conditions
// over-approximate: counting a cycle as observed when the flop was not
// actually read costs pruning coverage, never soundness. Derived from
// cpu.Step and cpu.(*State).Outputs:
//
//   - register file R1..R15: read only by idRegRead at issue, for the
//     source fields the fetch-queue head decodes to (the write-back
//     bypass is ignored — an over-approximation);
//   - MPUBase/MPULimit of region i: MPUAllows reads them only while the
//     region's attr enable bit is set and a load/store occupies MEM; any
//     access in the MPU programming window observes every MPU register;
//   - MPUAttr: read for every region on every MEM-stage load/store;
//   - divider/multiplier data registers: read only while the matching
//     opcode sits valid in EX with the unit busy (the busy bits
//     themselves are read whenever the opcode is valid in EX);
//   - LSU registers: read only while a load/store occupies MEM;
//   - DX/XM/MW payload latches: read and/or exposed only under their
//     valid (and, for WB data, write-enable — over-approximated to
//     MWValid) strobes;
//   - fetch-queue payload: decoded only for the valid head entry;
//   - EPC/ExcCause: exposed only under ExcValid, never read back;
//   - RetCnt: increments (a cross-bit read of itself) only when an
//     instruction retires;
//   - IReqAddr / DAddr / DBE / DWData / external-bus payload: pure output
//     registers, exposed only under their port strobes;
//   - IFData, DRData, ExtRData: input-capture registers that nothing ever
//     reads — every injection into them is prunable;
//   - everything else (PC, valid bits, strobes, SCU counters and status):
//     conservatively always observed, so soft faults are never pruned
//     there and stuck-at faults prune only via value stability.
const (
	lvAlways = iota // conservatively observed every cycle
	lvNever         // input-capture sinks: never read, never exposed
	lvExc           // EPC, ExcCause: ExcValid
	lvRet           // RetCnt: MWValid (self-increment carries cross bits)
	lvDX            // decode/operand payload: DXValid
	lvXM            // EX/MEM payload: XMValid
	lvMW            // MEM/WB payload: MWValid
	lvFQ0           // fetch-queue entry 0 payload: FQValid[0] at head
	lvFQ1           // fetch-queue entry 1 payload: FQValid[1] at head
	lvIReq          // IReqAddr: IReqValid
	lvDAddr         // DAddr, DBE: DRe || DWe
	lvDWData        // DWData: DWe
	lvExtPay        // ExtAddr, ExtWData, ExtBE: ExtBusy || ExtRe || ExtWe
	lvLSU           // LSU registers: load/store valid in MEM
	lvMulBusy       // MulBusy: MUL/MULH valid in EX
	lvMulData       // MulA/MulB/MulHiSel: MUL/MULH in EX and MulBusy
	lvDivBusy       // DivBusy: DIV/REM valid in EX
	lvDivData       // divider data registers: DIV/REM in EX and DivBusy
	lvMPUAttr       // MPUAttr[*]: any MEM-stage load/store
	lvMPUBL0        // MPUBase/MPULimit of region i: lvMPUBL0+i
	numStreams = lvMPUBL0 + cpu.MPURegions + 15
	lvReg1     = lvMPUBL0 + cpu.MPURegions // Regs[i]: lvReg1 + i - 1
)

// liveness is the per-kernel static pruning table, built once during
// NewGolden's recording pass and immutable afterwards (shared by clones).
type liveness struct {
	cycles  int                  // observations cover cycles [0, cycles-1]
	stream  []uint8              // flop index -> observation stream
	obs     [numStreams][]uint64 // per-stream observed-cycle bitmaps (nil for always/never)
	lastVal [2][]int32           // lastVal[b][f]: last observed cycle where flop f held bit b, -1 if none
}

// observed reports whether flop f is observed at cycle c (see the file
// comment for the definition this soundly over-approximates).
func (lv *liveness) observed(f, c int) bool {
	switch st := lv.stream[f]; st {
	case lvAlways:
		return true
	case lvNever:
		return false
	default:
		if c < 0 || c >= lv.cycles {
			return true // out of analyzed range: claim nothing
		}
		return lv.obs[st][c>>6]>>(uint(c)&63)&1 != 0
	}
}

// Prune statically classifies an injection against the golden run's
// liveness analysis. ok=true means the outcome is provably what the
// simulated paths (Replayer.InjectW and the legacy dual-CPU oracle) would
// return — byte-identical, including the absence of a cycle field on
// Converged outcomes — so the campaign driver may record it without
// simulating. ok=false claims nothing: the site must be simulated.
func (g *Golden) Prune(inj Injection) (Outcome, bool) {
	lv := g.live
	if lv == nil || inj.Cycle < 0 || inj.Cycle >= g.TotalCycles {
		return Outcome{}, false
	}
	switch inj.Kind {
	case SoftFlip:
		if lv.observed(inj.Flop, inj.Cycle) {
			return Outcome{}, false
		}
		if inj.Cycle == g.TotalCycles-1 {
			// The injection loop exits before the first convergence
			// check, so the simulated outcome is Masked, not Converged.
			return Outcome{}, true
		}
		return Outcome{Converged: true}, true
	case Stuck0:
		if int(lv.lastVal[1][inj.Flop]) >= inj.Cycle {
			return Outcome{}, false
		}
		return Outcome{}, true
	case Stuck1:
		if int(lv.lastVal[0][inj.Flop]) >= inj.Cycle {
			return Outcome{}, false
		}
		return Outcome{}, true
	}
	return Outcome{}, false
}

// liveStreamMask evaluates every stream's observation condition on one
// golden end-of-cycle state. Bit s of the result is set when stream s is
// observed that cycle. Each condition must not involve the stream's own
// flops; see the file comment for the per-stream derivation from cpu.Step.
func liveStreamMask(s *cpu.State) uint64 {
	m := uint64(1) << lvAlways
	if s.ExcValid {
		m |= 1 << lvExc
	}
	if s.MWValid {
		m |= 1<<lvRet | 1<<lvMW
	}
	if s.DXValid {
		m |= 1 << lvDX
		switch isa.Op(s.DXOp) {
		case isa.OpMUL, isa.OpMULH:
			m |= 1 << lvMulBusy
			if s.MulBusy {
				m |= 1 << lvMulData
			}
		case isa.OpDIV, isa.OpREM:
			m |= 1 << lvDivBusy
			if s.DivBusy {
				m |= 1 << lvDivData
			}
		}
	}
	if s.XMValid {
		m |= 1 << lvXM
		if op := isa.Op(s.XMOp); isa.IsLoad(op) || isa.IsStore(op) {
			m |= 1<<lvLSU | 1<<lvMPUAttr
			if s.LSUAddr >= cpu.MMIOBase && s.LSUAddr < cpu.MMIOEnd {
				// MPU programming window: a masked register write reads
				// the untouched bits back, so the access observes every
				// MPU register.
				for i := 0; i < cpu.MPURegions; i++ {
					m |= 1 << (lvMPUBL0 + i)
				}
			} else {
				for i := 0; i < cpu.MPURegions; i++ {
					if s.MPUAttr[i]&1 != 0 {
						m |= 1 << (lvMPUBL0 + i)
					}
				}
			}
		}
	}
	head := s.FQHead & 1
	if s.FQValid[head] {
		if head == 0 {
			m |= 1 << lvFQ0
		} else {
			m |= 1 << lvFQ1
		}
		// Issue reads exactly the source registers the head instruction
		// decodes to (idRegRead; R0 is hardwired and never a flop read).
		in := isa.Decode(s.FQInstr[head])
		if r := in.Rs1 & 0xF; r != 0 {
			m |= 1 << (lvReg1 + int(r) - 1)
		}
		if r := in.Rs2 & 0xF; r != 0 {
			m |= 1 << (lvReg1 + int(r) - 1)
		}
	}
	if s.IReqValid {
		m |= 1 << lvIReq
	}
	if s.DRe || s.DWe {
		m |= 1 << lvDAddr
	}
	if s.DWe {
		m |= 1 << lvDWData
	}
	if s.ExtBusy || s.ExtRe || s.ExtWe {
		m |= 1 << lvExtPay
	}
	return m
}

// streamForReg maps one registry register to its observation stream.
// Unknown names land on lvAlways: a future registry addition is never
// pruned until someone derives (and tests) its read set.
func streamForReg(name string) int {
	switch name {
	case "EPC", "ExcCause":
		return lvExc
	case "RetCnt":
		return lvRet
	case "DXOp", "DXRd", "DXImm", "DXPC", "DXInstr",
		"DXRs1Val", "DXRs2Val", "DXRs1", "DXRs2":
		return lvDX
	case "XMOp", "XMRd", "XMAlu", "XMStore", "XMPC", "XMInstr":
		return lvXM
	case "MWRd", "MWVal", "MWPC", "MWInstr":
		return lvMW
	case "FQInstr0", "FQPC0":
		return lvFQ0
	case "FQInstr1", "FQPC1":
		return lvFQ1
	case "IReqAddr":
		return lvIReq
	case "DAddr", "DBE":
		return lvDAddr
	case "DWData":
		return lvDWData
	case "ExtAddr", "ExtWData", "ExtBE":
		return lvExtPay
	case "LSUAddr", "LSUData", "LSUBE", "LSURe", "LSUWe":
		return lvLSU
	case "MulBusy":
		return lvMulBusy
	case "MulA", "MulB", "MulHiSel":
		return lvMulData
	case "DivBusy":
		return lvDivBusy
	case "DivCnt", "DivRem", "DivQuot", "DivDivisor",
		"DivNegQ", "DivNegR", "DivIsRem":
		return lvDivData
	case "IFData", "DRData", "ExtRData":
		return lvNever
	}
	if n, ok := regionSuffix(name, "MPUBase"); ok {
		return lvMPUBL0 + n
	}
	if n, ok := regionSuffix(name, "MPULimit"); ok {
		return lvMPUBL0 + n
	}
	if strings.HasPrefix(name, "MPUAttr") {
		return lvMPUAttr
	}
	if rest, ok := strings.CutPrefix(name, "R"); ok {
		if n, err := strconv.Atoi(rest); err == nil && n >= 1 && n < 16 {
			return lvReg1 + n - 1
		}
	}
	return lvAlways
}

func regionSuffix(name, prefix string) (int, bool) {
	rest, ok := strings.CutPrefix(name, prefix)
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 || n >= cpu.MPURegions {
		return 0, false
	}
	return n, true
}

// livenessBuilder accumulates the pruning table during the golden
// recording pass. Per cycle it costs one registry value sweep (to detect
// flop transitions) plus one stream-condition evaluation; the per-flop
// lastVal tables are maintained incrementally from value segments, so the
// whole analysis is a small constant factor on NewGolden.
type livenessBuilder struct {
	lv       *liveness
	regBase  []int    // registry index -> first flat flop index
	prev     []uint32 // registry index -> value at the previously recorded cycle
	segStart []int32  // flop -> first cycle of its current value segment
	lastObs  [numStreams]int32
}

func newLivenessBuilder(totalCycles int) *livenessBuilder {
	regs := cpu.Registry()
	n := cpu.NumFlops()
	lv := &liveness{cycles: totalCycles, stream: make([]uint8, n)}
	lv.lastVal[0] = make([]int32, n)
	lv.lastVal[1] = make([]int32, n)
	for i := range lv.lastVal[0] {
		lv.lastVal[0][i] = -1
		lv.lastVal[1][i] = -1
	}
	b := &livenessBuilder{
		lv:       lv,
		regBase:  make([]int, len(regs)),
		prev:     make([]uint32, len(regs)),
		segStart: make([]int32, n),
	}
	for ri, r := range regs {
		base := cpu.FlopIndex(cpu.Flop{Reg: ri})
		b.regBase[ri] = base
		st := streamForReg(r.Name)
		for bit := 0; bit < int(r.Width); bit++ {
			lv.stream[base+bit] = uint8(st)
		}
	}
	words := (totalCycles + 63) / 64
	for st := range lv.obs {
		if st != lvAlways && st != lvNever {
			lv.obs[st] = make([]uint64, words)
		}
	}
	for st := range b.lastObs {
		b.lastObs[st] = -1
	}
	return b
}

// record folds one golden end-of-cycle state into the analysis. It must
// be called for cyc = 0 (reset state) through totalCycles in order; the
// final call only closes value segments, since cycle totalCycles is never
// compared or stepped from by the injection loop.
func (b *livenessBuilder) record(s *cpu.State, cyc int) {
	regs := cpu.Registry()
	if cyc == 0 {
		for ri := range regs {
			b.prev[ri] = regs[ri].Get(s)
		}
	} else {
		for ri := range regs {
			cur := regs[ri].Get(s)
			old := b.prev[ri]
			diff := old ^ cur
			if diff == 0 {
				continue
			}
			b.prev[ri] = cur
			base := b.regBase[ri]
			for d := diff; d != 0; d &= d - 1 {
				bit := bits.TrailingZeros32(d)
				f := base + bit
				// The segment holding the old value ends at cyc-1; its
				// last observed cycle, if any, is the stream's lastObs
				// (obs marks for cyc happen after this loop, so lastObs
				// is still <= cyc-1 here).
				if lo := b.lastObs[b.lv.stream[f]]; lo >= b.segStart[f] {
					b.lv.lastVal[old>>uint(bit)&1][f] = lo
				}
				b.segStart[f] = int32(cyc)
			}
		}
	}
	if cyc >= b.lv.cycles {
		return
	}
	for m := liveStreamMask(s); m != 0; m &= m - 1 {
		st := bits.TrailingZeros64(m)
		b.lastObs[st] = int32(cyc)
		if w := b.lv.obs[st]; w != nil {
			w[cyc>>6] |= 1 << (uint(cyc) & 63)
		}
	}
}

// finish closes every flop's final value segment and returns the
// completed table.
func (b *livenessBuilder) finish() *liveness {
	regs := cpu.Registry()
	for ri := range regs {
		base, v := b.regBase[ri], b.prev[ri]
		for bit := 0; bit < int(regs[ri].Width); bit++ {
			f := base + bit
			if lo := b.lastObs[b.lv.stream[f]]; lo >= b.segStart[f] {
				b.lv.lastVal[v>>uint(bit)&1][f] = lo
			}
		}
	}
	return b.lv
}
