package lockstep

import (
	"lockstep/internal/cpu"
	"lockstep/internal/mem"
	"lockstep/internal/workload"
)

// DMR is a live dual-CPU lockstep processor: the main CPU drives the
// memory system, the redundant CPU is compare-only, and the checker
// compares the output ports every cycle, latching the Divergence Status
// Register on the first error. It is the runtime counterpart of the
// campaign-oriented Golden.Inject harness, for embedding in applications
// (see examples/) and for driving the error-handling flow end to end:
//
//	dmr.Arm(...)                     // optional fault forcing
//	dsr, cycle, ok := dmr.RunToError(limit)
//	pred := frontend.LatchError(dsr) // core.Frontend + prediction table
//	... SBIST / restart ...
//	dmr.Restart()                    // soft recovery: reset & re-run
type DMR struct {
	Main  cpu.CPU
	Red   cpu.CPU
	Sys   *mem.System
	Chk   Checker
	Cycle int

	entry   uint32
	kernel  *workload.Kernel
	fault   Injection
	faultOn bool
	softHot bool
}

// NewDMR builds a dual lockstep system running the kernel.
func NewDMR(k *workload.Kernel) (*DMR, error) {
	sys, entry, err := k.NewSystem()
	if err != nil {
		return nil, err
	}
	d := &DMR{Sys: sys, entry: entry, kernel: k}
	d.Main = cpu.CPU{Bus: sys}
	d.Main.State.Reset(entry)
	d.Red = cpu.CPU{Bus: mem.Monitor{Sys: sys}}
	d.Red.State.Reset(entry)
	return d, nil
}

// Arm schedules fault forcing on the redundant CPU from inj.Cycle
// (absolute cycle count) onward.
func (d *DMR) Arm(inj Injection) {
	d.fault = inj
	d.faultOn = true
	d.softHot = false
}

// Disarm cancels fault forcing (e.g., after a repaired transient).
func (d *DMR) Disarm() {
	d.faultOn = false
	d.softHot = false
}

// Step advances both CPUs one cycle, applies any armed fault, and feeds
// the checker. It returns true on the cycle the checker latches an error.
func (d *DMR) Step() bool {
	d.Cycle++
	d.Main.StepCycle()
	d.Red.StepCycle()
	if d.faultOn && d.Cycle >= d.fault.Cycle {
		st := &d.Red.State
		switch d.fault.Kind {
		case SoftFlip:
			switch {
			case d.Cycle == d.fault.Cycle:
				cpu.FlipBit(st, d.fault.Flop)
				d.softHot = true
			case d.softHot:
				// The transient passes; the flop recovers to the
				// fault-free value.
				cpu.ForceBit(st, d.fault.Flop, cpu.GetBit(&d.Main.State, d.fault.Flop))
				d.softHot = false
			}
		case Stuck0:
			cpu.ForceBit(st, d.fault.Flop, false)
		case Stuck1:
			cpu.ForceBit(st, d.fault.Flop, true)
		}
	}
	om := d.Main.State.Outputs()
	or := d.Red.State.Outputs()
	return d.Chk.Compare(&om, &or)
}

// RunToError steps until the checker latches an error or limit cycles
// elapse. On detection it keeps stepping for the checker's StopLatency,
// OR-accumulating further diverged SCs into the returned map — exactly
// what the Divergence Status Register holds when the error handler reads
// it. Returns the accumulated DSR, the detection cycle and whether an
// error occurred.
func (d *DMR) RunToError(limit int) (dsr uint64, detectCycle int, ok bool) {
	for i := 0; i < limit; i++ {
		if d.Step() {
			detectCycle = d.Cycle
			dsr = d.Chk.DSR
			for w := 1; w < StopLatency; w++ {
				d.Cycle++
				d.Main.StepCycle()
				d.Red.StepCycle()
				if d.faultOn {
					switch d.fault.Kind {
					case SoftFlip:
						if d.softHot {
							// The transient passes mid-window, exactly as
							// in Step and the Inject harness.
							cpu.ForceBit(&d.Red.State, d.fault.Flop,
								cpu.GetBit(&d.Main.State, d.fault.Flop))
							d.softHot = false
						}
					case Stuck0:
						cpu.ForceBit(&d.Red.State, d.fault.Flop, false)
					case Stuck1:
						cpu.ForceBit(&d.Red.State, d.fault.Flop, true)
					}
				}
				om := d.Main.State.Outputs()
				or := d.Red.State.Outputs()
				dsr |= cpu.Diverge(&om, &or)
			}
			d.Chk.DSR = dsr
			return dsr, detectCycle, true
		}
	}
	return 0, 0, false
}

// Restart performs the soft-error recovery of Section II: both CPUs are
// reset to the identical architectural reset state, memory is reloaded,
// the checker is cleared, and the real-time task starts over. The
// workload's measured restart latency is the reaction-time cost of this
// operation.
func (d *DMR) Restart() error {
	d.Sys.Reset()
	prog, err := d.kernel.Program()
	if err != nil {
		return err
	}
	if err := d.Sys.LoadProgram(prog); err != nil {
		return err
	}
	d.Main.State.Reset(d.entry)
	d.Red.State.Reset(d.entry)
	d.Chk.Reset()
	d.softHot = false
	return nil
}
