package lockstep

import (
	"lockstep/internal/cpu"
	"lockstep/internal/mem"
	"lockstep/internal/workload"
)

// TMR is a triple-core lockstep processor (the MMR configuration of
// Section II). CPU 0 drives the memory system; CPUs 1 and 2 are
// compare-only. The majority voter identifies the erring CPU when exactly
// one disagrees, which enables forward recovery: the architectural state of
// the majority is saved, all CPUs reset, and the state restored to bring
// the erring CPU back into lockstep — as in the TCLS Cortex-R5 system the
// paper cites.
type TMR struct {
	CPUs  [3]cpu.CPU
	Sys   *mem.System
	Cycle int

	// Fault forcing applied per CPU, mirroring the Inject harness. Arm
	// accumulates, so multi-fault scenarios (two CPUs erring at once —
	// the voter-ambiguity case TMR cannot recover from) are expressible.
	faults []armedFault
}

// armedFault is one scheduled fault forcing on one CPU of the triple.
type armedFault struct {
	inj Injection
	cpu int
}

// NewTMR builds a triple lockstep system running the kernel.
func NewTMR(k *workload.Kernel) (*TMR, error) {
	sys, entry, err := k.NewSystem()
	if err != nil {
		return nil, err
	}
	t := &TMR{Sys: sys}
	t.CPUs[0] = cpu.CPU{Bus: sys}
	t.CPUs[0].State.Reset(entry)
	for i := 1; i < 3; i++ {
		t.CPUs[i] = cpu.CPU{Bus: mem.Monitor{Sys: sys}}
		t.CPUs[i].State.Reset(entry)
	}
	return t, nil
}

// Arm schedules fault forcing on one CPU (0..2) starting at inj.Cycle.
// Successive calls accumulate: arming faults on two CPUs models the
// double-fault case where the majority vote becomes ambiguous.
func (t *TMR) Arm(cpuIdx int, inj Injection) {
	t.faults = append(t.faults, armedFault{inj: inj, cpu: cpuIdx})
}

// VoteResult is the majority voter's view of one cycle.
type VoteResult struct {
	Diverged bool
	DSR      uint64 // diverged-SC map of the erring CPU vs the majority
	Erring   int    // erring CPU index, or -1 if all three disagree
}

// Step advances all three CPUs one cycle, applies any armed fault, and
// votes on the output ports.
func (t *TMR) Step() VoteResult {
	t.Cycle++
	for i := range t.CPUs {
		t.CPUs[i].StepCycle()
	}
	for i := range t.faults {
		f := &t.faults[i]
		if t.Cycle < f.inj.Cycle {
			continue
		}
		st := &t.CPUs[f.cpu].State
		switch f.inj.Kind {
		case SoftFlip:
			switch t.Cycle {
			case f.inj.Cycle:
				cpu.FlipBit(st, f.inj.Flop)
			case f.inj.Cycle + 1:
				// The transient passes: restore the flop to the value a
				// (presumed) fault-free neighbour CPU holds.
				ref := &t.CPUs[(f.cpu+1)%3].State
				cpu.ForceBit(st, f.inj.Flop, cpu.GetBit(ref, f.inj.Flop))
			}
		case Stuck0:
			cpu.ForceBit(st, f.inj.Flop, false)
		case Stuck1:
			cpu.ForceBit(st, f.inj.Flop, true)
		}
	}
	o0 := t.CPUs[0].State.Outputs()
	o1 := t.CPUs[1].State.Outputs()
	o2 := t.CPUs[2].State.Outputs()
	d01 := cpu.Diverge(&o0, &o1)
	d02 := cpu.Diverge(&o0, &o2)
	d12 := cpu.Diverge(&o1, &o2)
	switch {
	case d01 == 0 && d02 == 0 && d12 == 0:
		return VoteResult{Erring: -1}
	case d01 == 0: // 0 and 1 agree -> 2 errs
		return VoteResult{Diverged: true, DSR: d02, Erring: 2}
	case d02 == 0: // 0 and 2 agree -> 1 errs
		return VoteResult{Diverged: true, DSR: d01, Erring: 1}
	case d12 == 0: // 1 and 2 agree -> 0 errs
		return VoteResult{Diverged: true, DSR: d01, Erring: 0}
	default:
		return VoteResult{Diverged: true, DSR: d01 | d02 | d12, Erring: -1}
	}
}

// ForwardRecover performs the MMR soft-error recovery of Section II: the
// architectural register state of a majority CPU is captured, every CPU is
// reset to it, and the erring CPU rejoins lockstep. Microarchitectural
// state is cleared by the reset, so the three CPUs restart bit-identical
// at the majority's retired PC.
//
// It returns the recovered architectural PC. The caller is responsible for
// only invoking this after the diagnostic flow has classified the error as
// soft (or after the voter identified the erring CPU).
func (t *TMR) ForwardRecover(majority int) uint32 {
	arch := t.CPUs[majority].State
	// Resume from the next fetch address of the majority CPU with its
	// register file; all transient pipeline state is discarded.
	pc := arch.PC
	regs := arch.Regs
	for i := range t.CPUs {
		t.CPUs[i].State.Reset(pc)
		t.CPUs[i].State.Regs = regs
	}
	t.faults = t.faults[:0]
	return pc
}
