package lockstep

import (
	"math/rand"
	"testing"

	"lockstep/internal/cpu"
	"lockstep/internal/workload"
)

// TestPruneSoundness is the differential-oracle proof behind static
// fault-equivalence pruning (`make prune-soundness`): for every stock
// bench kernel and every fault kind it enumerates a flop-strided grid of
// injection sites, collects each site the static analysis claims to
// prune together with its predicted Outcome, and re-simulates a seeded
// deterministic sample (>=1% per (kernel, kind), never fewer than 64
// sites) through the full Replayer path. Any mismatch names the exact
// (flop, cycle, kind) so the unsound stream condition can be found.
//
// inject.Run layers a second, always-on runtime sample of the same
// contract over every real campaign; this test is the dense version that
// runs in CI against all three kinds and the stuck-at value-stability
// logic specifically.
func TestPruneSoundness(t *testing.T) {
	const (
		cycles    = 1200
		snapEvery = 300
		flopStep  = 9 // coprime with every registry field width in use
	)
	rep := NewReplayer()
	for _, kn := range []string{"ttsprk", "rspeed", "puwmod"} {
		g, err := NewGolden(workload.ByName(kn), cycles, snapEvery)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range []FaultKind{SoftFlip, Stuck0, Stuck1} {
			var sites []Injection
			var predicted []Outcome
			total := 0
			for f := 0; f < cpu.NumFlops(); f += flopStep {
				for c := 0; c < cycles; c++ {
					total++
					inj := Injection{Flop: f, Kind: kind, Cycle: c}
					if out, ok := g.Prune(inj); ok {
						sites = append(sites, inj)
						predicted = append(predicted, out)
					}
				}
			}
			if len(sites) == 0 {
				t.Fatalf("%s/%s: static analysis pruned nothing out of %d sites", kn, kind, total)
			}
			sample := len(sites)/100 + 1
			if sample < 64 {
				sample = 64
			}
			if sample > len(sites) {
				sample = len(sites)
			}
			rng := rand.New(rand.NewSource(int64(len(kn))<<8 | int64(kind)))
			for _, i := range rng.Perm(len(sites))[:sample] {
				if got := rep.InjectW(g, sites[i], StopLatency); got != predicted[i] {
					t.Errorf("%s: pruned %s at flop %d (%s) cycle %d: predicted %+v, simulated %+v",
						kn, sites[i].Kind, sites[i].Flop, cpu.FlopName(sites[i].Flop),
						sites[i].Cycle, predicted[i], got)
				}
			}
			t.Logf("%s/%s: %d/%d sites pruned (%.1f%%), %d re-simulated",
				kn, kind, len(sites), total, 100*float64(len(sites))/float64(total), sample)
		}
	}
}

// TestPruneRejectsOutOfRange pins the claim-nothing paths: out-of-range
// cycles and a Golden without a liveness table must never prune.
func TestPruneRejectsOutOfRange(t *testing.T) {
	g, err := NewGolden(workload.ByName("puwmod"), 300, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, inj := range []Injection{
		{Flop: 0, Kind: SoftFlip, Cycle: -1},
		{Flop: 0, Kind: Stuck0, Cycle: 300},
		{Flop: 0, Kind: Stuck1, Cycle: 1 << 30},
	} {
		if _, ok := g.Prune(inj); ok {
			t.Errorf("pruned out-of-range injection %+v", inj)
		}
	}
	bare := &Golden{TotalCycles: 300}
	if _, ok := bare.Prune(Injection{Flop: 0, Kind: SoftFlip, Cycle: 10}); ok {
		t.Error("Golden without liveness table pruned an injection")
	}
}

// TestPruneSoftLastCycle pins the one soft-fault special case: an
// unobserved flip on the final cycle exits the injection loop before the
// first convergence check, so the simulated — and therefore the predicted
// — outcome is Masked, not Converged.
func TestPruneSoftLastCycle(t *testing.T) {
	g, err := NewGolden(workload.ByName("puwmod"), 600, 200)
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReplayer()
	found := 0
	for f := 0; f < cpu.NumFlops() && found < 8; f++ {
		inj := Injection{Flop: f, Kind: SoftFlip, Cycle: g.TotalCycles - 1}
		out, ok := g.Prune(inj)
		if !ok {
			continue
		}
		found++
		if out != (Outcome{}) {
			t.Fatalf("flop %d: predicted %+v for a last-cycle soft flip, want Masked", f, out)
		}
		if got := rep.InjectW(g, inj, StopLatency); got != out {
			t.Fatalf("flop %d: last-cycle soft flip simulated %+v, predicted %+v", f, got, out)
		}
	}
	if found == 0 {
		t.Fatal("no prunable last-cycle soft site found")
	}
}

// TestStreamClassification is the completeness check on the flop ->
// observation-stream map: every register the registry exposes must be
// deliberately classified. A register is allowed on the conservative
// always-observed stream only if listed here, so adding a registry field
// without deriving (and testing) its read set fails this test instead of
// silently losing pruning coverage — and, symmetrically, a typo in
// streamForReg that drops a register to a narrower stream than intended
// shows up as an unexpected classification.
func TestStreamClassification(t *testing.T) {
	wantAlways := map[string]bool{
		"PC": true, "FQValid0": true, "FQValid1": true, "FQHead": true,
		"IReqValid": true, "DXValid": true, "XMValid": true,
		"MWValid": true, "MWWen": true, "DRe": true, "DWe": true,
		"ExtRe": true, "ExtWe": true, "ExtBusy": true, "ExtCnt": true,
		"CycCnt": true, "Halted": true, "ExcValid": true,
	}
	wantNever := map[string]bool{"IFData": true, "DRData": true, "ExtRData": true}
	seenAlways := map[string]bool{}
	for _, r := range cpu.Registry() {
		switch st := streamForReg(r.Name); st {
		case lvAlways:
			if !wantAlways[r.Name] {
				t.Errorf("register %s fell through to the always-observed stream; classify its read set", r.Name)
			}
			seenAlways[r.Name] = true
		case lvNever:
			if !wantNever[r.Name] {
				t.Errorf("register %s classified never-observed; only write-only sinks may be", r.Name)
			}
		default:
			if wantAlways[r.Name] || wantNever[r.Name] {
				t.Errorf("register %s expected on the always/never stream, got stream %d", r.Name, st)
			}
			if st < 0 || st >= numStreams {
				t.Errorf("register %s mapped to out-of-range stream %d", r.Name, st)
			}
		}
	}
	for name := range wantAlways {
		if !seenAlways[name] {
			t.Errorf("expected always-observed register %s missing from the registry", name)
		}
	}
	// Spot-check the indexed streams line up with their register names.
	if got := streamForReg("R5"); got != lvReg1+4 {
		t.Errorf("R5 mapped to stream %d, want %d", got, lvReg1+4)
	}
	if got := streamForReg("MPUBase3"); got != lvMPUBL0+3 {
		t.Errorf("MPUBase3 mapped to stream %d, want %d", got, lvMPUBL0+3)
	}
	if got := streamForReg("MPULimit7"); got != lvMPUBL0+7 {
		t.Errorf("MPULimit7 mapped to stream %d, want %d", got, lvMPUBL0+7)
	}
	if got := streamForReg("SomeFutureRegister"); got != lvAlways {
		t.Errorf("unknown register mapped to stream %d, want conservative always", got)
	}
	if numStreams > 64 {
		t.Fatalf("numStreams %d exceeds the 64-bit stream mask", numStreams)
	}
}

// TestPruneCoverageSubstantial pins the economics: on a stock kernel the
// static analysis must prune a meaningful share of the campaign grid
// (regressions that silently lose coverage — a stream condition widened
// to always-on, a lastVal bug — surface here long before a benchmark
// run).
func TestPruneCoverageSubstantial(t *testing.T) {
	g, err := NewGolden(workload.ByName("rspeed"), 1200, 300)
	if err != nil {
		t.Fatal(err)
	}
	pruned, total := 0, 0
	for f := 0; f < cpu.NumFlops(); f += 5 {
		for c := 0; c < g.TotalCycles; c += 7 {
			for _, kind := range []FaultKind{SoftFlip, Stuck0, Stuck1} {
				total++
				if _, ok := g.Prune(Injection{Flop: f, Kind: kind, Cycle: c}); ok {
					pruned++
				}
			}
		}
	}
	if frac := float64(pruned) / float64(total); frac < 0.25 {
		t.Fatalf("pruned %.1f%% of %d sites, want >=25%%", 100*frac, total)
	} else {
		t.Logf("pruned %.1f%% of %d sites", 100*frac, total)
	}
}
