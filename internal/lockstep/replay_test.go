package lockstep

import (
	"math/rand"
	"testing"

	"lockstep/internal/cpu"
	"lockstep/internal/mem"
	"lockstep/internal/workload"
)

// TestReplayMatchesLegacyOracle is the differential test for the
// golden-trace replay injection path: a randomized sample of experiments
// — all three fault kinds, detected, soft-converged and masked cases —
// runs through both the Replayer and the legacy dual-CPU oracle, and
// every Outcome must be bit-identical. Boundary cycles (0, an exact
// snapshot cycle, horizon-1) and the degenerate window=1 are pinned in
// explicitly.
func TestReplayMatchesLegacyOracle(t *testing.T) {
	for _, kn := range []string{"puwmod", "ttsprk"} {
		t.Run(kn, func(t *testing.T) {
			const horizon, snapEvery = 4000, 500
			g, err := NewGolden(workload.ByName(kn), horizon, snapEvery)
			if err != nil {
				t.Fatal(err)
			}
			rep := NewReplayer()

			type exp struct {
				inj    Injection
				window int
			}
			var exps []exp
			// Boundary cycles for every kind, default and minimal window.
			for kind := FaultKind(0); kind < NumFaultKinds; kind++ {
				for _, cyc := range []int{0, snapEvery, horizon - 1} {
					exps = append(exps,
						exp{Injection{Flop: 11, Kind: kind, Cycle: cyc}, StopLatency},
						exp{Injection{Flop: 173, Kind: kind, Cycle: cyc}, 1})
				}
			}
			rng := rand.New(rand.NewSource(42))
			for i := 0; i < 200; i++ {
				exps = append(exps, exp{
					inj: Injection{
						Flop:  rng.Intn(cpu.NumFlops()),
						Kind:  FaultKind(rng.Intn(NumFaultKinds)),
						Cycle: rng.Intn(horizon),
					},
					window: StopLatency,
				})
			}

			var detected, converged, masked int
			for _, e := range exps {
				want := g.InjectLegacyW(e.inj, e.window)
				got := rep.InjectW(g, e.inj, e.window)
				if got != want {
					t.Fatalf("injection %+v window %d: replay %+v != legacy %+v",
						e.inj, e.window, got, want)
				}
				// The pooled convenience entry point must agree too.
				if pooled := g.InjectW(e.inj, e.window); pooled != want {
					t.Fatalf("injection %+v window %d: pooled replay %+v != legacy %+v",
						e.inj, e.window, pooled, want)
				}
				switch {
				case want.Detected:
					detected++
				case want.Converged:
					converged++
				default:
					masked++
				}
			}
			if detected == 0 || converged == 0 || masked == 0 {
				t.Fatalf("sample did not exercise all outcome classes: %d detected, %d converged, %d masked",
					detected, converged, masked)
			}
		})
	}
}

// TestSnapIndexBoundaries pins restore's binary-search snapshot lookup at
// the boundary cycles: cycle 0, cycles exactly on a snapshot, one before
// a snapshot, and horizon-1.
func TestSnapIndexBoundaries(t *testing.T) {
	const horizon, snapEvery = 3000, 500
	g, err := NewGolden(workload.ByName("puwmod"), horizon, snapEvery)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.snaps) != horizon/snapEvery+1 {
		t.Fatalf("got %d snapshots, want %d", len(g.snaps), horizon/snapEvery+1)
	}
	cases := []struct {
		cycle     int
		wantIndex int
		wantCycle int
	}{
		{cycle: 0, wantIndex: 0, wantCycle: 0},
		{cycle: 1, wantIndex: 0, wantCycle: 0},
		{cycle: snapEvery - 1, wantIndex: 0, wantCycle: 0},
		{cycle: snapEvery, wantIndex: 1, wantCycle: snapEvery},
		{cycle: snapEvery + 1, wantIndex: 1, wantCycle: snapEvery},
		{cycle: 2*snapEvery - 1, wantIndex: 1, wantCycle: snapEvery},
		{cycle: 2 * snapEvery, wantIndex: 2, wantCycle: 2 * snapEvery},
		{cycle: horizon - 1, wantIndex: horizon/snapEvery - 1, wantCycle: horizon - snapEvery},
		{cycle: horizon, wantIndex: horizon / snapEvery, wantCycle: horizon},
	}
	for _, c := range cases {
		if got := g.snapIndex(c.cycle); got != c.wantIndex {
			t.Errorf("snapIndex(%d) = %d, want %d", c.cycle, got, c.wantIndex)
		}
		_, cpuAt, snapCycle := g.restore(c.cycle)
		if snapCycle != c.wantCycle {
			t.Errorf("restore(%d) snapshot cycle = %d, want %d", c.cycle, snapCycle, c.wantCycle)
		}
		if cpuAt.State != g.snaps[c.wantIndex].cpu {
			t.Errorf("restore(%d) CPU state is not snapshot %d's", c.cycle, c.wantIndex)
		}
	}
}

// replayCheckBus wraps the ReplayBus a fault-free verification replay
// runs against and diffs every read against the recorded golden read
// stream.
type replayCheckBus struct {
	t     *testing.T
	bus   *mem.ReplayBus
	reads []mem.ReadEvent
	pos   int
	cycle int
}

func (b *replayCheckBus) ReadWord(addr uint32) uint32 {
	w := b.bus.ReadWord(addr)
	if b.pos >= len(b.reads) {
		b.t.Fatalf("cycle %d: replay read #%d (addr 0x%x) beyond the %d-entry golden read log",
			b.cycle, b.pos, addr, len(b.reads))
	}
	want := b.reads[b.pos]
	if int(want.Cycle) != b.cycle || want.Addr != addr&^3 || want.Data != w {
		b.t.Fatalf("replay read #%d = {cycle %d addr 0x%x data 0x%x}, golden log has {cycle %d addr 0x%x data 0x%x}",
			b.pos, b.cycle, addr&^3, w, want.Cycle, want.Addr, want.Data)
	}
	b.pos++
	return w
}

func (b *replayCheckBus) WriteMasked(addr, data, mask uint32) {
	b.bus.WriteMasked(addr, data, mask)
}

// TestGoldenTraceSelfCheck replays the fault-free execution through a
// ReplayBus and asserts it reproduces the golden run exactly: the same
// read stream (cycle, address and data of every bus read), the same
// per-cycle output vectors and state fingerprints. This is the
// end-to-end proof that AdvanceTo-then-step serves byte-identical memory
// inputs, which the injection replay path's prefix and convergence
// verification both rely on.
func TestGoldenTraceSelfCheck(t *testing.T) {
	for _, kn := range []string{"puwmod", "rspeed"} {
		g, err := NewGolden(workload.ByName(kn), 3000, 500)
		if err != nil {
			t.Fatal(err)
		}
		var bus mem.ReplayBus
		s := &g.snaps[0]
		bus.Load(s.ram, s.cycle, g.trace.writes)
		check := &replayCheckBus{t: t, bus: &bus, reads: g.trace.reads}
		c := cpu.CPU{State: s.cpu, Bus: check}
		for cyc := 0; cyc < g.TotalCycles; cyc++ {
			bus.AdvanceTo(cyc + 1)
			check.cycle = cyc + 1
			c.StepCycle()
			out := c.State.Outputs()
			if d := cpu.Diverge(g.trace.outAt(cyc+1), &out); d != 0 {
				t.Fatalf("%s: replayed outputs diverge from trace at cycle %d (dsr %#x)", kn, cyc+1, d)
			}
			if fp := uint32(cpu.Fingerprint(&c.State)); fp != g.trace.fp[cyc+1] {
				t.Fatalf("%s: replayed fingerprint differs from trace at cycle %d", kn, cyc+1)
			}
		}
		if check.pos != len(g.trace.reads) {
			t.Fatalf("%s: replay consumed %d reads, golden log has %d", kn, check.pos, len(g.trace.reads))
		}
	}
}

// TestInjectReplayZeroAlloc is the allocation regression guard for the
// campaign hot path: after warm-up, a Replayer runs experiments of every
// outcome class with zero heap allocations per InjectW. (Skipped under
// -race, whose instrumentation allocates.)
func TestInjectReplayZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	g, err := NewGolden(workload.ByName("puwmod"), 3000, 500)
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReplayer()

	// A mix covering the detected / converged / masked code paths
	// (including the goldenStateAt convergence confirmation, which has
	// its own lazily allocated verification bus).
	var injs []Injection
	var haveConverged, haveDetected, haveMasked bool
	for flop := 0; flop < cpu.NumFlops(); flop += 3 {
		for kind := FaultKind(0); kind < NumFaultKinds; kind++ {
			inj := Injection{Flop: flop, Kind: kind, Cycle: 700 + flop%1500}
			out := rep.InjectW(g, inj, StopLatency)
			keep := false
			switch {
			case out.Detected:
				keep = !haveDetected
				haveDetected = true
			case out.Converged:
				keep = !haveConverged
				haveConverged = true
			default:
				keep = !haveMasked
				haveMasked = true
			}
			if keep {
				injs = append(injs, inj)
			}
		}
		if haveConverged && haveDetected && haveMasked {
			break
		}
	}
	if !haveDetected || !haveConverged || !haveMasked {
		t.Fatalf("could not find all outcome classes (detected %v converged %v masked %v)",
			haveDetected, haveConverged, haveMasked)
	}

	i := 0
	avg := testing.AllocsPerRun(100, func() {
		rep.InjectW(g, injs[i%len(injs)], StopLatency)
		i++
	})
	if avg != 0 {
		t.Fatalf("steady-state InjectW allocates %.2f times per run, want 0", avg)
	}
}
