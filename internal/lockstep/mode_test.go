package lockstep

import (
	"fmt"
	"math/rand"
	"testing"

	"lockstep/internal/cpu"
	"lockstep/internal/workload"
)

func TestParseModeRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want Mode
	}{
		{"", Mode{}},
		{"dcls", Mode{}},
		{"tmr", Mode{Kind: ModeTMR}},
		{"slip:0", Mode{Kind: ModeSlip, Slip: 0}},
		{"slip:3", Mode{Kind: ModeSlip, Slip: 3}},
		{"slip:-3", Mode{Kind: ModeSlip, Slip: -3}},
		{"slip:4096", Mode{Kind: ModeSlip, Slip: 4096}},
	}
	for _, c := range cases {
		got, err := ParseMode(c.in)
		if err != nil {
			t.Fatalf("ParseMode(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("ParseMode(%q) = %+v, want %+v", c.in, got, c.want)
		}
		rt, err := ParseMode(got.String())
		if err != nil || rt != got {
			t.Fatalf("round trip of %q via %q: %+v, %v", c.in, got.String(), rt, err)
		}
	}
	for _, bad := range []string{"slip:", "slip:+3", "slip:007", "slip:0x3", "slip:3 ", "SLIP:3", "dmr", "tmr ", "slip"} {
		if m, err := ParseMode(bad); err == nil {
			t.Fatalf("ParseMode(%q) accepted as %+v", bad, m)
		}
	}
}

func TestModeStringCanonical(t *testing.T) {
	if s := (Mode{}).String(); s != "dcls" {
		t.Fatalf("zero Mode renders %q", s)
	}
	if s := (Mode{Kind: ModeSlip, Slip: 7}).String(); s != "slip:7" {
		t.Fatalf("slip mode renders %q", s)
	}
	if s := (Mode{Kind: ModeTMR}).String(); s != "tmr" {
		t.Fatalf("tmr mode renders %q", s)
	}
}

// modeTestGolden builds one small shared Golden for the cross-mode
// equivalence tests.
func modeTestGolden(t *testing.T, kernel string, cycles int) *Golden {
	t.Helper()
	g, err := NewGolden(workload.ByName(kernel), cycles, cycles/8)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// modeSample enumerates a deterministic spread of injection sites.
func modeSample(g *Golden, stride, perKind int, seed int64) []Injection {
	rng := rand.New(rand.NewSource(seed))
	var out []Injection
	for flop := 0; flop < cpu.NumFlops(); flop += stride {
		for kind := FaultKind(0); kind < NumFaultKinds; kind++ {
			for i := 0; i < perKind; i++ {
				out = append(out, Injection{Flop: flop, Kind: kind, Cycle: rng.Intn(g.TotalCycles)})
			}
		}
	}
	return out
}

// TestSlipZeroEquivalence: slip:0 must equal dcls experiment-for-
// experiment on both the fast path and the oracle — acceptance (b) of the
// mode-determinism gate.
func TestSlipZeroEquivalence(t *testing.T) {
	g := modeTestGolden(t, "ttsprk", 2000)
	slip0 := Mode{Kind: ModeSlip, Slip: 0}
	r := NewReplayer()
	for _, inj := range modeSample(g, 29, 1, 11) {
		dcls := r.InjectMode(g, inj, Mode{}, StopLatency)
		s0 := r.InjectMode(g, inj, slip0, StopLatency)
		if dcls != s0 {
			t.Fatalf("%+v: slip:0 %+v != dcls %+v", inj, s0, dcls)
		}
		if lg := g.InjectLegacyMode(inj, slip0, StopLatency); lg != dcls {
			t.Fatalf("%+v: legacy slip:0 %+v != dcls %+v", inj, lg, dcls)
		}
	}
}

// TestSlipMatchesLegacyOracle: the slip fast path (horizon-truncated
// replay) must match the dual-CPU full simulation for every sampled site,
// and detection latencies must shift by exactly the stagger.
func TestSlipMatchesLegacyOracle(t *testing.T) {
	g := modeTestGolden(t, "rspeed", 2000)
	r := NewReplayer()
	for _, slip := range []int{1, 7, 64} {
		mode := Mode{Kind: ModeSlip, Slip: slip}
		dclsDetect := 0
		shifted := 0
		for _, inj := range modeSample(g, 43, 1, int64(100+slip)) {
			fast := r.InjectMode(g, inj, mode, StopLatency)
			oracle := g.InjectLegacyMode(inj, mode, StopLatency)
			if fast != oracle {
				t.Fatalf("slip:%d %+v: fast %+v != oracle %+v", slip, inj, fast, oracle)
			}
			if dcls := r.InjectMode(g, inj, Mode{}, StopLatency); dcls.Detected {
				dclsDetect++
				if fast.Detected && fast.DetectCycle == dcls.DetectCycle+slip {
					shifted++
				}
			}
		}
		if dclsDetect == 0 {
			t.Fatalf("slip:%d: sample produced no detections", slip)
		}
		if shifted == 0 {
			t.Fatalf("slip:%d: no detection latency observed shifted by the stagger", slip)
		}
	}
}

// TestTMRMatchesLegacyOracle: the TMR fast path (replay detection + live
// forward-recovery recheck) must match the triple-CPU voted oracle for
// every sampled site, and the sample must exercise both recovery results.
func TestTMRMatchesLegacyOracle(t *testing.T) {
	g := modeTestGolden(t, "ttsprk", 2000)
	mode := Mode{Kind: ModeTMR}
	r := NewReplayer()
	var detected, recovered, stuck int
	for _, inj := range modeSample(g, 17, 1, 7) {
		fast := r.InjectMode(g, inj, mode, StopLatency)
		oracle := g.InjectTMRLegacyW(inj, StopLatency)
		if fast != oracle {
			t.Fatalf("tmr %+v: fast %+v != oracle %+v", inj, fast, oracle)
		}
		if fast.Detected {
			detected++
			if fast.Converged {
				recovered++
			} else {
				stuck++
			}
		}
	}
	if detected == 0 || recovered == 0 || stuck == 0 {
		t.Fatalf("tmr sample not exercising recovery both ways: detected=%d recovered=%d failed=%d",
			detected, recovered, stuck)
	}
}

// TestTMRDetectionEqualsDCLS pins the voter argument the fast path relies
// on: with two golden CPUs in the triple, the voted detection (cycle and
// DSR) is exactly the DCLS checker's.
func TestTMRDetectionEqualsDCLS(t *testing.T) {
	g := modeTestGolden(t, "rspeed", 2000)
	r := NewReplayer()
	for _, inj := range modeSample(g, 61, 1, 3) {
		dcls := r.InjectMode(g, inj, Mode{}, StopLatency)
		tmr := r.InjectMode(g, inj, Mode{Kind: ModeTMR}, StopLatency)
		if dcls.Detected != tmr.Detected || dcls.DetectCycle != tmr.DetectCycle || dcls.DSR != tmr.DSR {
			t.Fatalf("%+v: tmr detection %+v diverges from dcls %+v", inj, tmr, dcls)
		}
	}
}

// TestModePruneSoundness re-simulates every mode-pruned site through the
// full-simulation oracle for slip and TMR modes — acceptance (c).
func TestModePruneSoundness(t *testing.T) {
	g := modeTestGolden(t, "ttsprk", 1500)
	modes := []Mode{
		{Kind: ModeSlip, Slip: 5},
		{Kind: ModeSlip, Slip: 100},
		{Kind: ModeTMR},
	}
	for _, mode := range modes {
		rng := rand.New(rand.NewSource(99))
		pruned, checked := 0, 0
		for flop := 0; flop < cpu.NumFlops(); flop++ {
			for kind := FaultKind(0); kind < NumFaultKinds; kind++ {
				inj := Injection{Flop: flop, Kind: kind, Cycle: rng.Intn(g.TotalCycles)}
				want, ok := g.PruneMode(inj, mode)
				if !ok {
					continue
				}
				pruned++
				// >= 1% seeded sample, plus every horizon-edge site.
				if rng.Intn(64) != 0 && inj.Cycle < mode.Horizon(g.TotalCycles)-1 {
					continue
				}
				checked++
				got := g.InjectLegacyMode(inj, mode, StopLatency)
				if got != want {
					t.Fatalf("%s: pruned %+v predicted %+v, oracle says %+v", mode, inj, want, got)
				}
			}
		}
		if pruned == 0 || checked < pruned/100 {
			t.Fatalf("%s: prune sample too thin: %d pruned, %d checked", mode, pruned, checked)
		}
	}
}

// TestSlipCheckerDelaysCompare exercises the live mode-aware checker: a
// divergence at program cycle c must latch at wall cycle c+N with the
// same DSR a plain checker latches at c.
func TestSlipCheckerDelaysCompare(t *testing.T) {
	const n = 4
	sc := NewSlipChecker(n)
	plain := &Checker{}
	// Synthesize output streams: golden constant, red diverges in SC 3 at
	// program cycle 10.
	mk := func(cyc int, diverged bool) (*cpu.OutVec, *cpu.OutVec) {
		var m, r cpu.OutVec
		m[0] = uint32(cyc) // some changing signal, identical in both
		r[0] = uint32(cyc)
		if diverged {
			r[3] = 0xdead
		}
		return &m, &r
	}
	for cyc := 0; cyc < 32; cyc++ {
		m, r := mk(cyc, cyc >= 10)
		plain.Compare(m, r)
		// Feed the slip checker in wall time: the red vector lags n
		// cycles behind the main vector.
		mWall, _ := mk(cyc, false)
		var rWall *cpu.OutVec
		if cyc >= n {
			_, rWall = mk(cyc-n, cyc-n >= 10)
		} else {
			rWall = &cpu.OutVec{}
		}
		sc.Compare(mWall, rWall)
	}
	if !plain.Error || !sc.Error {
		t.Fatalf("checkers did not latch: plain=%v slip=%v", plain.Error, sc.Error)
	}
	if sc.ErrCycle != plain.ErrCycle+n {
		t.Fatalf("slip latch at wall cycle %d, want %d (+%d)", sc.ErrCycle, plain.ErrCycle+n, n)
	}
	if sc.DSR != plain.DSR {
		t.Fatalf("slip DSR %x != plain %x", sc.DSR, plain.DSR)
	}
	sc.Reset()
	if sc.Error || sc.DSR != 0 {
		t.Fatal("Reset did not clear the latch")
	}
}

func TestSlipCheckerZeroDepth(t *testing.T) {
	sc := NewSlipChecker(0)
	var m, r cpu.OutVec
	r[5] = 1
	if !sc.Compare(&m, &r) {
		t.Fatal("zero-depth slip checker must compare immediately")
	}
	if sc.ErrCycle != 1 {
		t.Fatalf("ErrCycle = %d, want 1", sc.ErrCycle)
	}
}

func FuzzModeParse(f *testing.F) {
	for _, s := range []string{"", "dcls", "tmr", "slip:0", "slip:12", "slip:-3",
		"slip:+1", "slip:007", "slip:", "slip:9999999999999999999", "dmr", "tmr\n"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		m, err := ParseMode(s)
		if err != nil {
			if m != (Mode{}) {
				t.Fatalf("non-zero Mode %+v alongside error", m)
			}
			return
		}
		// The codec is bijective on accepted inputs up to the two dcls
		// spellings: render and re-parse must be a fixpoint.
		s2 := m.String()
		m2, err := ParseMode(s2)
		if err != nil {
			t.Fatalf("render %q of accepted %q does not re-parse: %v", s2, s, err)
		}
		if m2 != m {
			t.Fatalf("round trip changed mode: %+v -> %q -> %+v", m, s2, m2)
		}
		if s != "" && s != s2 {
			t.Fatalf("accepted spelling %q is not canonical (%q)", s, s2)
		}
	})
}

func ExampleParseMode() {
	for _, s := range []string{"dcls", "slip:16", "tmr"} {
		m, _ := ParseMode(s)
		fmt.Println(m, m.Horizon(12000), m.DetectShift())
	}
	// Output:
	// dcls 12000 0
	// slip:16 11984 16
	// tmr 12000 0
}
