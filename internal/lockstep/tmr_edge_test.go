package lockstep

import (
	"testing"

	"lockstep/internal/cpu"
	"lockstep/internal/workload"
)

// TestTMRDoubleFaultVoterAmbiguity: with faults armed on two CPUs the
// majority vote eventually becomes ambiguous — all three pairwise
// comparisons disagree — and the voter must report Erring == -1 with the
// DSR as the OR of the three pairwise divergence maps, not silently blame
// one CPU.
func TestTMRDoubleFaultVoterAmbiguity(t *testing.T) {
	tmr, err := NewTMR(workload.ByName("ttsprk"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		tmr.Step()
	}
	tmr.Arm(1, Injection{Flop: 40, Kind: Stuck1, Cycle: tmr.Cycle + 1})
	tmr.Arm(2, Injection{Flop: 3, Kind: Stuck0, Cycle: tmr.Cycle + 1})

	sawSingle, sawAmbiguous := false, false
	for i := 0; i < 30000 && !sawAmbiguous; i++ {
		v := tmr.Step()
		if !v.Diverged {
			continue
		}
		if v.Erring != -1 {
			sawSingle = true
			continue
		}
		sawAmbiguous = true
		// Recompute the vote from the CPU states the step left behind:
		// the ambiguous DSR must be exactly the OR of the pairwise maps,
		// and each pair must genuinely disagree.
		o0 := tmr.CPUs[0].State.Outputs()
		o1 := tmr.CPUs[1].State.Outputs()
		o2 := tmr.CPUs[2].State.Outputs()
		d01 := cpu.Diverge(&o0, &o1)
		d02 := cpu.Diverge(&o0, &o2)
		d12 := cpu.Diverge(&o1, &o2)
		if d01 == 0 || d02 == 0 || d12 == 0 {
			t.Fatalf("ambiguous vote but a pair agrees (d01=%#x d02=%#x d12=%#x)", d01, d02, d12)
		}
		if v.DSR != d01|d02|d12 {
			t.Fatalf("ambiguous DSR %#x, want OR of pairwise maps %#x", v.DSR, d01|d02|d12)
		}
	}
	if !sawAmbiguous {
		t.Skip("double fault never became ambiguous on these flops; acceptable")
	}
	_ = sawSingle // single-CPU blame may or may not precede ambiguity
}

// TestTMRForwardRecoveryMidDivergence: forward recovery invoked while the
// erring CPU is actively diverged (several cycles past first detection,
// stuck-at forcing still armed) must clear the armed faults, leave all
// three CPUs bit-identical, and restore lockstep durably.
func TestTMRForwardRecoveryMidDivergence(t *testing.T) {
	tmr, err := NewTMR(workload.ByName("rspeed"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 800; i++ {
		tmr.Step()
	}
	tmr.Arm(2, Injection{Flop: 40, Kind: Stuck1, Cycle: tmr.Cycle + 1})
	var vote VoteResult
	for i := 0; ; i++ {
		if vote = tmr.Step(); vote.Diverged {
			break
		}
		if i > 30000 {
			t.Skip("stuck-at masked on this flop; acceptable")
		}
	}
	if vote.Erring != 2 {
		t.Fatalf("voter blamed CPU %d, want 2", vote.Erring)
	}
	// Keep running mid-divergence: the fault forcing is still active, so
	// the divergence persists (or recurs) until recovery.
	stillDiverged := false
	for i := 0; i < 32; i++ {
		if tmr.Step().Diverged {
			stillDiverged = true
		}
	}
	if !stillDiverged {
		t.Fatal("armed stuck-at stopped diverging before recovery; mid-divergence scenario not reached")
	}

	pc := tmr.ForwardRecover(0)
	if pc != tmr.CPUs[0].State.PC {
		t.Fatalf("ForwardRecover returned pc %#x, CPUs restarted at %#x", pc, tmr.CPUs[0].State.PC)
	}
	if len(tmr.faults) != 0 {
		t.Fatalf("%d faults still armed after forward recovery", len(tmr.faults))
	}
	if tmr.CPUs[1].State != tmr.CPUs[0].State || tmr.CPUs[2].State != tmr.CPUs[0].State {
		t.Fatal("CPUs not bit-identical after forward recovery")
	}
	for i := 0; i < 5000; i++ {
		if v := tmr.Step(); v.Diverged {
			t.Fatalf("divergence %d cycles after forward recovery", i)
		}
	}
}

// TestTMRZeroAlloc holds the TMR voter's steady state at zero heap
// allocations per Step — the triple is the mode-campaign hot loop, so it
// joins `make alloc` next to the replay and predict guards. (Skipped
// under -race, whose instrumentation allocates.)
func TestTMRZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	tmr, err := NewTMR(workload.ByName("puwmod"))
	if err != nil {
		t.Fatal(err)
	}
	// Arm a fault so Step exercises the forcing loop, not just the vote.
	tmr.Arm(2, Injection{Flop: 7, Kind: Stuck1, Cycle: 100})
	for i := 0; i < 2000; i++ {
		tmr.Step()
	}
	if avg := testing.AllocsPerRun(200, func() { tmr.Step() }); avg != 0 {
		t.Fatalf("TMR.Step allocates %.1f per cycle in steady state, want 0", avg)
	}
}
