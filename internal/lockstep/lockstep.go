// Package lockstep implements CPU-level lockstepping (Figure 1c of the
// paper): redundant SR5 CPUs execute the same program cycle-for-cycle, an
// error checker compares their registered output ports every cycle, and a
// per-signal-category OR-reduction captures the diverged-SC map into the
// Divergence Status Register (DSR) at the moment an error is detected.
//
// The package also provides the fault-injection run harness used by the
// campaign driver: a golden execution with periodic snapshots, and an
// Inject operation that replays from the nearest snapshot, applies a
// transient or stuck-at fault to one flip-flop of the redundant CPU, and
// reports whether, when and how the fault manifested at the outputs.
package lockstep

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"lockstep/internal/cpu"
	"lockstep/internal/mem"
	"lockstep/internal/telemetry"
	"lockstep/internal/workload"
)

// dsrTel caches the telemetry handles for one DSR source so the
// injection hot path records detections with pure atomic operations —
// no registry lookup, no key formatting, zero heap allocations. Handles
// are created on first detection, preserving the "metric appears when it
// first fires" snapshot behaviour.
type dsrTel struct {
	once sync.Once
	det  *telemetry.Counter
	pop  *telemetry.Histogram
}

func (t *dsrTel) record(source string, dsr uint64) {
	t.once.Do(func() {
		t.det = telemetry.Default.Counter("lockstep.detections", telemetry.L("source", source))
		t.pop = telemetry.Default.Histogram("lockstep.dsr_popcount", telemetry.PopBuckets,
			telemetry.L("source", source))
	})
	t.det.Inc()
	t.pop.Observe(int64(bits.OnesCount64(dsr)))
}

var (
	injectDSRTel  dsrTel
	checkerDSRTel dsrTel
)

// recordDSR logs the bit population of a latched DSR to the default
// telemetry registry: how many signal categories diverged by the time
// the checker stopped the CPUs — the raw signal the paper's correlation
// tables are built from (hard faults spread across visibly more SCs than
// single-cycle transients). source is "inject" for the campaign harness
// (DSR after the full stop-latency accumulation window) or "checker" for
// a live Checker latch (first-divergence map).
func recordDSR(source string, dsr uint64) {
	if source == "inject" {
		injectDSRTel.record(source, dsr)
		return
	}
	checkerDSRTel.record(source, dsr)
}

// FaultKind is the class of injected fault.
type FaultKind uint8

// Fault kinds. A soft fault inverts a flip-flop for a single cycle; the
// stuck-at kinds force the flop to a constant from the injection cycle to
// the end of the run (Section IV-A).
const (
	SoftFlip FaultKind = iota
	Stuck0
	Stuck1
	NumFaultKinds = 3
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case SoftFlip:
		return "soft"
	case Stuck0:
		return "stuck-at-0"
	case Stuck1:
		return "stuck-at-1"
	}
	return fmt.Sprintf("FaultKind(%d)", uint8(k))
}

// IsHard reports whether the kind models a permanent fault.
func (k FaultKind) IsHard() bool { return k != SoftFlip }

// Injection describes one fault-injection experiment.
type Injection struct {
	Flop  int       // flop index into the CPU registry
	Kind  FaultKind // soft, stuck-at-0 or stuck-at-1
	Cycle int       // absolute cycle after whose clock edge the fault applies
}

// Outcome is the result of one injection experiment.
type Outcome struct {
	Detected    bool   // checker observed a divergence
	DetectCycle int    // absolute cycle of detection (if Detected)
	DSR         uint64 // diverged SC map latched at detection (if Detected)
	Converged   bool   // soft fault fully masked: redundant state re-joined golden
	// Failed marks an experiment the campaign harness aborted (panic after
	// the retry budget, or a watchdog-budget overrun). The simulation paths
	// never set it; internal/inject records it so one poisoned experiment
	// is logged instead of killing a multi-week campaign.
	Failed bool
}

// ManifestationCycles is the paper's error detection/manifestation time:
// fault occurrence to checker detection.
func (o Outcome) ManifestationCycles(inj Injection) int {
	return o.DetectCycle - inj.Cycle
}

// Golden is a recorded fault-free execution of one kernel with periodic
// state snapshots and a full per-cycle golden trace, shared by all
// injections into that kernel.
//
// A Golden is immutable once NewGolden returns: Inject and InjectW
// restore per-call (or per-worker, via Replayer) scratch state from the
// snapshots and trace and never write back, so concurrent injections
// against one shared Golden are safe and produce outcomes identical to
// serial execution. Callers that want an independent handle anyway (e.g.
// per-worker instances) can Clone.
type Golden struct {
	Kernel      *workload.Kernel
	Entry       uint32
	TotalCycles int

	snaps []snapshot
	trace goldenTrace
	live  *liveness // static fault-equivalence pruning table (see liveness.go)
}

// TraceVersion identifies the golden-trace layout and the static-pruning
// semantics built on top of it. It participates in the campaign
// checkpoint fingerprint (inject.Fingerprint): a checkpoint recorded
// under a different trace/pruning generation refuses to resume rather
// than silently mixing outcomes produced by different analyses.
//
// Version history: 1 = flat per-cycle OutVec + uint64 fingerprint arrays;
// 2 = interned OutVec table + uint32 fingerprints + liveness pruning.
const TraceVersion = 2

// goldenTrace is the per-cycle record of the fault-free execution that
// lets the injection hot path simulate only the faulty CPU: the main
// (golden) CPU's behaviour is identical across all experiments on a
// kernel, so it is computed exactly once, at NewGolden time.
//
// Indexing: outAt(c) and fp[c] describe the golden CPU state at the end
// of cycle c (index 0 is reset state), so outID and fp have
// TotalCycles+1 entries.
//
// The layout is compacted relative to trace version 1 (see TraceVersion):
// kernels are loops, so the per-cycle output vectors are highly periodic
// — the 248-byte OutVecs are interned into outTab and the per-cycle
// stream keeps only a 4-byte id, and the convergence-filter fingerprints
// are truncated to 32 bits (the filter is followed by an exact state
// confirm, so a narrower hash can cost a spurious confirm, never a wrong
// outcome). Together these cut golden-trace memory by >3x on the stock
// kernels with zero change to replay semantics.
type goldenTrace struct {
	// outID[c] indexes outTab: the registered output port the checker
	// would compare at cycle c. Replayed injections diff the faulty CPU's
	// outputs against outAt(c) instead of re-simulating the main CPU.
	outID []uint32
	// outTab is the deduplicated output-vector table, in order of first
	// appearance (so the encoding and the rebuild are both deterministic).
	outTab []cpu.OutVec
	// fp is the per-cycle truncated state fingerprint (low 32 bits of
	// cpu.Fingerprint) used as the soft-fault convergence filter; the full
	// cpu.State is kept only at snapshots, and candidate convergences are
	// confirmed exactly against a reconstructed golden state.
	fp []uint32
	// writes is the golden RAM write log a mem.ReplayBus uses to drive
	// the memory image forward without a live main CPU.
	writes []mem.WriteEvent
	// reads is the bus read data the golden CPU consumed, kept for the
	// trace self-check (a fault-free replay must consume the identical
	// stream) and replay debugging.
	reads []mem.ReadEvent
}

// outAt returns the golden output vector at the end of cycle c. The
// pointer aliases the shared interned table and must not be written
// through — every consumer only compares against it.
func (t *goldenTrace) outAt(c int) *cpu.OutVec {
	return &t.outTab[t.outID[c]]
}

// TraceBytes reports the approximate heap footprint of the golden trace,
// published by the campaign driver as the inject.golden_trace_bytes
// gauge.
func (g *Golden) TraceBytes() int64 {
	return int64(len(g.trace.outID))*4 +
		int64(len(g.trace.outTab))*int64(cpu.NumSC*4) +
		int64(len(g.trace.fp))*4 +
		int64(len(g.trace.writes))*mem.WriteEventBytes +
		int64(len(g.trace.reads))*mem.ReadEventBytes
}

type snapshot struct {
	cycle int
	cpu   cpu.State
	ram   []uint32
	ext   mem.ExtPort
}

// NewGolden runs the kernel fault-free for totalCycles, snapshots the
// full system state every snapEvery cycles (snapshot 0 is reset state),
// and records the per-cycle golden trace (output vectors, state
// fingerprints, RAM write log, consumed read data) the replay injection
// path runs against.
func NewGolden(k *workload.Kernel, totalCycles, snapEvery int) (*Golden, error) {
	if totalCycles <= 0 || snapEvery <= 0 {
		return nil, fmt.Errorf("lockstep: bad golden config %d/%d", totalCycles, snapEvery)
	}
	sys, entry, err := k.NewSystem()
	if err != nil {
		return nil, err
	}
	g := &Golden{Kernel: k, Entry: entry, TotalCycles: totalCycles}
	g.trace.outID = make([]uint32, totalCycles+1)
	g.trace.fp = make([]uint32, totalCycles+1)
	// intern deduplicates output vectors into outTab; the map is build
	// scratch, dropped when NewGolden returns.
	intern := make(map[cpu.OutVec]uint32)
	record := func(c *cpu.CPU, cyc int) {
		ov := c.State.Outputs()
		id, ok := intern[ov]
		if !ok {
			id = uint32(len(g.trace.outTab))
			g.trace.outTab = append(g.trace.outTab, ov)
			intern[ov] = id
		}
		g.trace.outID[cyc] = id
		g.trace.fp[cyc] = uint32(cpu.Fingerprint(&c.State))
	}
	rec := &mem.Recorder{Sys: sys}
	c := cpu.New(rec, entry)
	lb := newLivenessBuilder(totalCycles)
	g.snap(c, sys, 0)
	record(c, 0)
	lb.record(&c.State, 0)
	for cyc := 1; cyc <= totalCycles; cyc++ {
		rec.Cycle = int32(cyc)
		c.StepCycle()
		if c.State.Trapped() {
			return nil, fmt.Errorf("lockstep: golden %s trapped at cycle %d", k.Name, cyc)
		}
		record(c, cyc)
		lb.record(&c.State, cyc)
		if cyc%snapEvery == 0 {
			g.snap(c, sys, cyc)
		}
	}
	g.trace.writes = rec.Writes
	g.trace.reads = rec.Reads
	g.live = lb.finish()
	return g, nil
}

func (g *Golden) snap(c *cpu.CPU, sys *mem.System, cycle int) {
	g.snaps = append(g.snaps, snapshot{
		cycle: cycle,
		cpu:   c.State,
		ram:   sys.Snapshot(0, mem.RAMBytes/4),
		ext:   *sys.Ext(),
	})
}

// Clone returns an independent Golden handle. Snapshot RAM images and
// the golden trace are immutable after NewGolden — every injection path
// restores into its own scratch buffers and never writes back — so the
// clone shares them with the original: cloning is a header copy, not a
// multi-megabyte deep copy, and per-worker clones cost nothing.
func (g *Golden) Clone() *Golden {
	out := *g
	out.snaps = append([]snapshot(nil), g.snaps...)
	return &out
}

// snapIndex returns the index of the latest snapshot at or before cycle
// (binary search; snapshots are in strictly ascending cycle order and
// snapshot 0 is reset state, so every non-negative cycle resolves).
func (g *Golden) snapIndex(cycle int) int {
	i := sort.Search(len(g.snaps), func(i int) bool { return g.snaps[i].cycle > cycle })
	if i == 0 {
		return 0
	}
	return i - 1
}

// restore returns a fresh system and golden CPU positioned at the latest
// snapshot at or before cycle, plus that snapshot's cycle number. It is
// the legacy dual-CPU path's entry point; the replay path positions a
// mem.ReplayBus instead (see Replayer).
func (g *Golden) restore(cycle int) (*mem.System, *cpu.CPU, int) {
	s := &g.snaps[g.snapIndex(cycle)]
	sys := mem.NewSystem()
	sys.RestoreRAM(s.ram)
	*sys.Ext() = s.ext
	c := &cpu.CPU{State: s.cpu, Bus: sys}
	return sys, c, s.cycle
}

// Inject runs one fault-injection experiment on the golden-trace replay
// path: only the redundant CPU is simulated, fed by a mem.ReplayBus, and
// its outputs are compared against the precomputed golden trace. The run
// ends at detection, at state re-convergence (soft faults), or at the
// golden run's horizon. The DSR accumulates for the default StopLatency
// window. Outcomes are bit-identical to the dual-CPU InjectLegacy oracle.
func (g *Golden) Inject(inj Injection) Outcome {
	return g.InjectW(inj, StopLatency)
}

// InjectW is Inject with an explicit checker stop-latency window: the
// number of cycles the DSR keeps OR-accumulating after the first
// divergence before the CPUs stop. window <= 1 latches only the
// first-divergence map. Exposed for the stop-window sensitivity ablation.
//
// Per-call scratch comes from a shared pool; campaign workers that want
// strictly per-worker buffers hold a Replayer and call its InjectW.
func (g *Golden) InjectW(inj Injection, window int) Outcome {
	r := replayerPool.Get().(*Replayer)
	out := r.InjectW(g, inj, window)
	replayerPool.Put(r)
	return out
}

// replayerPool recycles Replayer scratch (two RAM-sized image buffers)
// across ad-hoc Golden.Inject/InjectW calls.
var replayerPool = sync.Pool{New: func() any { return NewReplayer() }}

// InjectLegacy is the original dual-CPU experiment: the golden (main)
// CPU is re-simulated to drive the memory system while the redundant CPU
// consumes the same inputs with fault forcing applied. It is twice the
// simulation work of the replay path and is kept as the differential-
// testing oracle (and behind the campaign drivers' -legacy-inject flag).
func (g *Golden) InjectLegacy(inj Injection) Outcome {
	return g.InjectLegacyW(inj, StopLatency)
}

// InjectLegacyW is InjectLegacy with an explicit checker stop window.
func (g *Golden) InjectLegacyW(inj Injection, window int) Outcome {
	return g.injectLegacyHorizon(inj, window, g.TotalCycles, 0)
}

// injectLegacyHorizon is the dual-CPU oracle generalized over the
// lockstep mode, mirroring Replayer.injectHorizon: `horizon` bounds the
// compared program cycles and `shift` moves detection cycles to the wall
// clock (see the mode rationale there).
func (g *Golden) injectLegacyHorizon(inj Injection, window, horizon, shift int) Outcome {
	if horizon > g.TotalCycles {
		horizon = g.TotalCycles
	}
	if inj.Cycle < 0 || inj.Cycle >= horizon {
		return Outcome{}
	}
	if window < 1 {
		window = 1
	}
	sys, main, cyc := g.restore(inj.Cycle)
	// Advance the fault-free prefix on the main CPU alone: the redundant
	// CPU is bit-identical until the fault applies.
	for ; cyc < inj.Cycle; cyc++ {
		main.StepCycle()
	}
	red := main.Fork(mem.Monitor{Sys: sys})

	// Apply the fault after the injection-cycle clock edge. A soft fault
	// inverts the flop for exactly one cycle — per Section III-B, "its
	// effect on the sequential element will disappear in the next cycle" —
	// while downstream corruption it caused propagates naturally. Stuck-at
	// faults are re-forced after every clock edge.
	switch inj.Kind {
	case SoftFlip:
		cpu.FlipBit(&red.State, inj.Flop)
	case Stuck0:
		cpu.ForceBit(&red.State, inj.Flop, false)
	case Stuck1:
		cpu.ForceBit(&red.State, inj.Flop, true)
	}

	softArmed := inj.Kind == SoftFlip
	stepFaulty := func() {
		main.StepCycle()
		red.StepCycle()
		switch inj.Kind {
		case SoftFlip:
			if softArmed {
				// The transient has passed: the flop itself recovers.
				cpu.ForceBit(&red.State, inj.Flop, cpu.GetBit(&main.State, inj.Flop))
				softArmed = false
			}
		case Stuck0:
			cpu.ForceBit(&red.State, inj.Flop, false)
		case Stuck1:
			cpu.ForceBit(&red.State, inj.Flop, true)
		}
	}
	for ; cyc < horizon; cyc++ {
		om := main.State.Outputs()
		or := red.State.Outputs()
		if dsr := cpu.Diverge(&om, &or); dsr != 0 {
			// Error detected. The checker's error output takes the stop
			// window to actually halt the CPUs; the DSR keeps
			// OR-accumulating per-SC divergences during that window
			// (Figure 6's DSR bits are set, never cleared, until read).
			detect := cyc + shift
			for w := 1; w < window && cyc+1 < horizon; w++ {
				stepFaulty()
				cyc++
				om = main.State.Outputs()
				or = red.State.Outputs()
				dsr |= cpu.Diverge(&om, &or)
			}
			recordDSR("inject", dsr)
			return Outcome{Detected: true, DetectCycle: detect, DSR: dsr}
		}
		if inj.Kind == SoftFlip && !softArmed && red.State == main.State {
			return Outcome{Converged: true}
		}
		stepFaulty()
	}
	// Horizon reached without divergence: masked.
	return Outcome{}
}

// StopLatency is the number of cycles between the checker raising its
// error output and the CPUs actually stopping (interrupt delivery and
// clock-stop propagation). The Divergence Status Register accumulates
// diverged SCs throughout this window, which is what lets permanent
// faults — which keep corrupting outputs — spread across visibly more SCs
// than single-cycle transients (Section III-B).
const StopLatency = 12

// Checker is the standalone lockstep error checker + error correlation
// front-end of the paper's Figure 6: it compares the output ports of two
// (or more) CPUs, OR-reduces per-SC differences, and latches the first
// divergence into the Divergence Status Register.
type Checker struct {
	DSR      uint64 // diverged-SC map latched at first error
	Error    bool   // sticky lockstep error flag
	ErrCycle int    // cycle the error was latched
	cycle    int
}

// Compare feeds one cycle of output vectors to the checker. It returns
// true when this cycle latched a new error. Once Error is set the checker
// holds its state (the CPUs would be stopped by the system controller).
func (c *Checker) Compare(vecs ...*cpu.OutVec) bool {
	c.cycle++
	if c.Error || len(vecs) < 2 {
		return false
	}
	var dsr uint64
	for i := 1; i < len(vecs); i++ {
		dsr |= cpu.Diverge(vecs[0], vecs[i])
	}
	if dsr == 0 {
		return false
	}
	c.DSR = dsr
	c.Error = true
	c.ErrCycle = c.cycle
	recordDSR("checker", dsr)
	return true
}

// Reset clears the checker for reuse after error handling.
func (c *Checker) Reset() { *c = Checker{} }
