package lockstep

import (
	"testing"

	"lockstep/internal/cpu"
	"lockstep/internal/workload"
)

func newDMR(t *testing.T, kernel string) *DMR {
	t.Helper()
	d, err := NewDMR(workload.ByName(kernel))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDMRFaultFreeLockstep(t *testing.T) {
	d := newDMR(t, "a2time")
	for i := 0; i < 5000; i++ {
		if d.Step() {
			t.Fatalf("spurious error at cycle %d: DSR %#x", d.Cycle, d.Chk.DSR)
		}
	}
}

func TestDMRStuckAtDetectedWithWindowedDSR(t *testing.T) {
	d := newDMR(t, "ttsprk")
	d.Arm(Injection{Flop: 10, Kind: Stuck1, Cycle: 1000}) // PC bit
	dsr, cycle, ok := d.RunToError(20000)
	if !ok {
		t.Fatal("stuck-at on a PC bit must manifest")
	}
	if dsr == 0 || cycle < 1000 {
		t.Fatalf("dsr=%#x cycle=%d", dsr, cycle)
	}
	// The windowed DSR must contain at least the first-cycle map.
	if d.Chk.DSR != dsr {
		t.Fatal("checker DSR not updated with window accumulation")
	}
	if !d.Chk.Error {
		t.Fatal("checker error flag not sticky")
	}
}

func TestDMRRestartRecovers(t *testing.T) {
	d := newDMR(t, "rspeed")
	// Soft fault; run to the error (or masked — then nothing to recover).
	d.Arm(Injection{Flop: 200, Kind: SoftFlip, Cycle: 500})
	_, _, detected := d.RunToError(4000)
	d.Disarm()
	if err := d.Restart(); err != nil {
		t.Fatal(err)
	}
	if d.Chk.Error {
		t.Fatal("checker not cleared by restart")
	}
	// After the restart the pair must run divergence-free again.
	for i := 0; i < 5000; i++ {
		if d.Step() {
			t.Fatalf("divergence after restart (original fault detected=%v)", detected)
		}
	}
	// The workload makes progress after the restart.
	if d.Sys.Ext().Actuator[workload.DoneSlot] == 0 {
		t.Fatal("no heartbeat after restart")
	}
}

func TestDMRRedundantCannotCorruptMemory(t *testing.T) {
	d := newDMR(t, "puwmod")
	// A violent stuck-at in the redundant CPU's LSU address path.
	flop := -1
	for i := 0; i < cpu.NumFlops(); i++ {
		f := cpu.FlopAt(i)
		if cpu.Registry()[f.Reg].Name == "LSUAddr" && f.Bit == 17 {
			flop = i
			break
		}
	}
	if flop < 0 {
		t.Fatal("LSUAddr flop not found")
	}
	d.Arm(Injection{Flop: flop, Kind: Stuck1, Cycle: 800})
	d.RunToError(20000)

	// A clean reference run of the same kernel must agree with the DMR's
	// main-CPU memory image: the faulty redundant CPU never wrote.
	ref, err := NewDMR(workload.ByName("puwmod"))
	if err != nil {
		t.Fatal(err)
	}
	for ref.Cycle < d.Cycle {
		ref.Step()
	}
	a := d.Sys.Snapshot(0, 64*1024)
	b := ref.Sys.Snapshot(0, 64*1024)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("memory corrupted at word %d: %#x vs %#x", i, a[i], b[i])
		}
	}
}

func TestDMRSoftTransientRecoversFlop(t *testing.T) {
	d := newDMR(t, "bitmnp")
	// Flip a register-file bit in a likely-dead register window; whether
	// or not it is detected, after two cycles the redundant flop must
	// match the main CPU's again (the transient's effect on the flop
	// disappears).
	flop := -1
	for i := 0; i < cpu.NumFlops(); i++ {
		f := cpu.FlopAt(i)
		if cpu.Registry()[f.Reg].Name == "R14" && f.Bit == 9 {
			flop = i
			break
		}
	}
	d.Arm(Injection{Flop: flop, Kind: SoftFlip, Cycle: 1000})
	for d.Cycle < 1003 {
		d.Step()
	}
	if cpu.GetBit(&d.Red.State, flop) != cpu.GetBit(&d.Main.State, flop) {
		t.Fatal("transient did not clear from the flop")
	}
}

// TestDMRAgreesWithInjectHarness: the live DMR system and the campaign
// Inject harness are two implementations of the same semantics; for the
// same fault they must detect at the same cycle with the same accumulated
// DSR.
func TestDMRAgreesWithInjectHarness(t *testing.T) {
	k := workload.ByName("a2time")
	g, err := NewGolden(k, 8000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for flop := 0; flop < cpu.NumFlops() && checked < 40; flop += 97 {
		for _, kind := range []FaultKind{SoftFlip, Stuck0, Stuck1} {
			inj := Injection{Flop: flop, Kind: kind, Cycle: 2000}
			out := g.Inject(inj)

			d, err := NewDMR(k)
			if err != nil {
				t.Fatal(err)
			}
			d.Arm(inj)
			dsr, detect, ok := d.RunToError(8000)

			if out.Detected != ok {
				t.Fatalf("flop %d %v: inject detected=%v, DMR detected=%v",
					flop, kind, out.Detected, ok)
			}
			if !ok {
				continue
			}
			if detect != out.DetectCycle {
				t.Fatalf("flop %d %v: detect cycle %d vs %d", flop, kind, detect, out.DetectCycle)
			}
			if dsr != out.DSR {
				t.Fatalf("flop %d %v: DSR %#x vs %#x", flop, kind, dsr, out.DSR)
			}
			checked++
		}
	}
	if checked < 10 {
		t.Fatalf("only %d detected faults compared; widen the sweep", checked)
	}
}

// TestDMRAgreesOnPortFlopTransients targets the corner where a transient
// in an output-port register is detected on its injection cycle: the DSR
// accumulated over the stop window must still match the Inject harness
// (the transient's mid-window recovery is part of the semantics).
func TestDMRAgreesOnPortFlopTransients(t *testing.T) {
	k := workload.ByName("ttsprk")
	g, err := NewGolden(k, 6000, 750)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for i := 0; i < cpu.NumFlops() && checked < 25; i++ {
		name := cpu.Registry()[cpu.FlopAt(i).Reg].Name
		if name != "MWVal" && name != "DAddr" && name != "IReqAddr" && name != "MWPC" {
			continue
		}
		inj := Injection{Flop: i, Kind: SoftFlip, Cycle: 2500}
		out := g.Inject(inj)
		d, err := NewDMR(k)
		if err != nil {
			t.Fatal(err)
		}
		d.Arm(inj)
		dsr, detect, ok := d.RunToError(6000)
		if out.Detected != ok {
			t.Fatalf("flop %s[%d]: detection mismatch", name, cpu.FlopAt(i).Bit)
		}
		if !ok {
			continue
		}
		if detect != out.DetectCycle || dsr != out.DSR {
			t.Fatalf("flop %s[%d]: (%d, %#x) vs (%d, %#x)",
				name, cpu.FlopAt(i).Bit, detect, dsr, out.DetectCycle, out.DSR)
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no port-flop transient detected; widen the selection")
	}
}
