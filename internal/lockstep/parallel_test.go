package lockstep

import (
	"sync"
	"testing"

	"lockstep/internal/cpu"
	"lockstep/internal/workload"
)

// TestConcurrentInjectMatchesSerial verifies the Golden immutability
// contract the parallel campaign driver relies on: many goroutines
// injecting against one shared Golden produce exactly the outcomes a
// serial loop produces. Run under -race this doubles as the data-race
// check for golden sharing.
func TestConcurrentInjectMatchesSerial(t *testing.T) {
	k := workload.ByName("puwmod")
	g, err := NewGolden(k, 4000, 500)
	if err != nil {
		t.Fatal(err)
	}

	var injs []Injection
	for flop := 0; flop < cpu.NumFlops(); flop += 97 {
		for kind := FaultKind(0); kind < NumFaultKinds; kind++ {
			injs = append(injs, Injection{Flop: flop, Kind: kind, Cycle: 100 + 37*flop%3500})
		}
	}

	serial := make([]Outcome, len(injs))
	for i, inj := range injs {
		serial[i] = g.Inject(inj)
	}

	conc := make([]Outcome, len(injs))
	var wg sync.WaitGroup
	for i := range injs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conc[i] = g.Inject(injs[i])
		}(i)
	}
	wg.Wait()

	for i := range injs {
		if serial[i] != conc[i] {
			t.Fatalf("injection %+v: serial outcome %+v != concurrent %+v",
				injs[i], serial[i], conc[i])
		}
	}
}

// TestGoldenClone: a clone is an independent handle (injections against
// it match the original) built as a cheap header copy — snapshot RAM and
// the golden trace are immutable after NewGolden, so the clone is
// expected to SHARE them with the original rather than deep-copy
// megabytes per worker.
func TestGoldenClone(t *testing.T) {
	k := workload.ByName("ttsprk")
	g, err := NewGolden(k, 3000, 500)
	if err != nil {
		t.Fatal(err)
	}
	c := g.Clone()
	if c.Kernel != g.Kernel || c.Entry != g.Entry || c.TotalCycles != g.TotalCycles {
		t.Fatal("clone metadata differs")
	}
	if len(c.snaps) != len(g.snaps) {
		t.Fatalf("clone has %d snapshots, original %d", len(c.snaps), len(g.snaps))
	}
	for i := range g.snaps {
		if &c.snaps[i].ram[0] != &g.snaps[i].ram[0] {
			t.Fatalf("snapshot %d RAM deep-copied: clones must share immutable snapshots", i)
		}
	}
	if len(g.trace.outTab) > 0 && &c.trace.outTab[0] != &g.trace.outTab[0] {
		t.Fatal("golden trace deep-copied: clones must share the immutable trace")
	}
	if c.live != g.live {
		t.Fatal("liveness table deep-copied: clones must share the immutable pruning table")
	}
	// The snapshot slice itself is copied into a fresh backing array, so
	// a mutation of a clone's headers can never leak into the original.
	if &c.snaps[0] == &g.snaps[0] {
		t.Fatal("clone snapshot slice aliases the original's backing array")
	}
	injs := []Injection{
		{Flop: 3, Kind: SoftFlip, Cycle: 700},
		{Flop: 200, Kind: Stuck1, Cycle: 1500},
		{Flop: 451, Kind: Stuck0, Cycle: 2200},
	}
	for _, inj := range injs {
		a := g.Inject(inj)
		b := c.Inject(inj)
		if a != b {
			t.Fatalf("injection %+v: original %+v != clone %+v", inj, a, b)
		}
	}
}
