package lockstep

import (
	"math/rand"
	"testing"

	"lockstep/internal/cpu"
	"lockstep/internal/workload"
)

func testGolden(t *testing.T, kernel string, cycles int) *Golden {
	t.Helper()
	k := workload.ByName(kernel)
	if k == nil {
		t.Fatalf("no kernel %q", kernel)
	}
	g, err := NewGolden(k, cycles, cycles/8)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestRestoreReplayEquivalence: restoring from a snapshot and replaying
// must land on exactly the state a straight-through run reaches.
func TestRestoreReplayEquivalence(t *testing.T) {
	k := workload.ByName("ttsprk")
	g, err := NewGolden(k, 4000, 512)
	if err != nil {
		t.Fatal(err)
	}
	// Straight-through reference run.
	sysRef, entry, err := k.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	ref := cpu.New(sysRef, entry)
	for _, target := range []int{0, 1, 511, 512, 513, 1999, 3999} {
		for ref.State.CycCnt < uint32(target) {
			ref.StepCycle()
		}
		_, c, cyc := g.restore(target)
		for ; cyc < target; cyc++ {
			c.StepCycle()
		}
		if c.State != ref.State {
			t.Fatalf("state mismatch at cycle %d", target)
		}
	}
}

// TestNoFaultNoDivergence: an injection whose kind is soft and whose flip
// lands on a bit, then flips back by re-injection, is not expressible; the
// equivalent sanity check is that a paired run with a soft flip either
// detects, converges, or stays silent — it must never corrupt the golden.
func TestSoftFaultOutcomes(t *testing.T) {
	g := testGolden(t, "ttsprk", 6000)
	rng := rand.New(rand.NewSource(1))
	detected, converged, silent := 0, 0, 0
	for i := 0; i < 300; i++ {
		inj := Injection{
			Flop:  rng.Intn(cpu.NumFlops()),
			Kind:  SoftFlip,
			Cycle: 500 + rng.Intn(4000),
		}
		o := g.Inject(inj)
		switch {
		case o.Detected:
			detected++
			if o.DSR == 0 {
				t.Fatalf("detected with empty DSR: %+v", inj)
			}
			if o.DetectCycle < inj.Cycle {
				t.Fatalf("detection before injection: %+v -> %+v", inj, o)
			}
		case o.Converged:
			converged++
		default:
			silent++
		}
	}
	if detected == 0 {
		t.Error("no soft fault ever detected; injection plumbing broken")
	}
	if converged == 0 {
		t.Error("no soft fault ever converged; masking path broken")
	}
	t.Logf("soft outcomes: detected=%d converged=%d silent=%d", detected, converged, silent)
}

// TestHardFaultOutcomes: stuck-at faults detect more often than soft ones
// and never report convergence.
func TestHardFaultOutcomes(t *testing.T) {
	g := testGolden(t, "rspeed", 6000)
	rng := rand.New(rand.NewSource(2))
	detected := 0
	n := 200
	for i := 0; i < n; i++ {
		kind := Stuck0
		if i%2 == 0 {
			kind = Stuck1
		}
		o := g.Inject(Injection{
			Flop:  rng.Intn(cpu.NumFlops()),
			Kind:  kind,
			Cycle: 500 + rng.Intn(4000),
		})
		if o.Converged {
			t.Fatal("hard fault reported convergence")
		}
		if o.Detected {
			detected++
		}
	}
	if detected < n/10 {
		t.Fatalf("only %d/%d hard faults detected; forcing broken?", detected, n)
	}
	t.Logf("hard faults detected: %d/%d", detected, n)
}

// TestDeterministicInjection: the same injection always yields the same
// outcome — the campaign must be reproducible bit-for-bit.
func TestDeterministicInjection(t *testing.T) {
	g := testGolden(t, "puwmod", 4000)
	inj := Injection{Flop: 100, Kind: Stuck1, Cycle: 1234}
	a := g.Inject(inj)
	b := g.Inject(inj)
	if a != b {
		t.Fatalf("outcomes differ: %+v vs %+v", a, b)
	}
}

// TestPCStuckDetectsFast: a stuck-at on a PC bit must manifest quickly in
// fetch-related SCs.
func TestPCStuckDetectsFast(t *testing.T) {
	g := testGolden(t, "a2time", 4000)
	// Find a PC flop (registry entry "PC", bit 4).
	flop := -1
	for i := 0; i < cpu.NumFlops(); i++ {
		f := cpu.FlopAt(i)
		if cpu.Registry()[f.Reg].Name == "PC" && f.Bit == 4 {
			flop = i
			break
		}
	}
	if flop < 0 {
		t.Fatal("no PC flop found")
	}
	o := g.Inject(Injection{Flop: flop, Kind: Stuck1, Cycle: 1000})
	if !o.Detected {
		t.Fatal("PC stuck-at not detected")
	}
	if lat := o.DetectCycle - 1000; lat > 200 {
		t.Fatalf("PC stuck-at took %d cycles to manifest", lat)
	}
	iaddrMask := uint64(0xFF) << cpu.SCIAddr0
	if o.DSR&iaddrMask == 0 {
		t.Fatalf("PC fault DSR %#x has no instruction-address SCs", o.DSR)
	}
}

// TestHardSpreadsMoreThanSoft checks the direction of the paper's Section
// III-B observation: for the same flops, hard errors diverge more SCs at
// detection than soft errors (54% more diverged SC sets in the paper).
func TestHardSpreadsMoreThanSoft(t *testing.T) {
	g := testGolden(t, "aifirf", 8000)
	rng := rand.New(rand.NewSource(3))
	var softBits, hardBits, pairs int
	for i := 0; i < 400 && pairs < 60; i++ {
		flop := rng.Intn(cpu.NumFlops())
		cycle := 500 + rng.Intn(6000)
		so := g.Inject(Injection{Flop: flop, Kind: SoftFlip, Cycle: cycle})
		ho := g.Inject(Injection{Flop: flop, Kind: Stuck1, Cycle: cycle})
		if !so.Detected || !ho.Detected {
			continue
		}
		softBits += popcount64(so.DSR)
		hardBits += popcount64(ho.DSR)
		pairs++
	}
	if pairs < 20 {
		t.Skipf("only %d detected pairs; not enough signal", pairs)
	}
	t.Logf("avg diverged SCs at detection: soft=%.2f hard=%.2f (%d pairs)",
		float64(softBits)/float64(pairs), float64(hardBits)/float64(pairs), pairs)
	if hardBits <= softBits {
		t.Errorf("hard faults should diverge at least as many SCs as soft: hard=%d soft=%d",
			hardBits, softBits)
	}
}

func popcount64(v uint64) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}

func TestCheckerLatchesFirstError(t *testing.T) {
	var ch Checker
	a := cpu.OutVec{}
	b := cpu.OutVec{}
	if ch.Compare(&a, &b) {
		t.Fatal("identical vectors flagged")
	}
	b[cpu.SCWBData2] = 0xAA
	if !ch.Compare(&a, &b) {
		t.Fatal("divergence not flagged")
	}
	if ch.DSR != 1<<cpu.SCWBData2 {
		t.Fatalf("DSR = %#x", ch.DSR)
	}
	if ch.ErrCycle != 2 {
		t.Fatalf("ErrCycle = %d, want 2", ch.ErrCycle)
	}
	// Further divergences must not overwrite the latched DSR.
	b[cpu.SCIAddr0] = 1
	if ch.Compare(&a, &b) {
		t.Fatal("second compare after latch returned true")
	}
	if ch.DSR != 1<<cpu.SCWBData2 {
		t.Fatalf("DSR overwritten: %#x", ch.DSR)
	}
	ch.Reset()
	if ch.Error || ch.DSR != 0 {
		t.Fatal("reset did not clear checker")
	}
}

func TestCheckerMultiCPUOr(t *testing.T) {
	var ch Checker
	a, b, c := cpu.OutVec{}, cpu.OutVec{}, cpu.OutVec{}
	b[cpu.SCDAddr1] = 1
	c[cpu.SCExtCtlRW] = 1
	ch.Compare(&a, &b, &c)
	want := uint64(1)<<cpu.SCDAddr1 | uint64(1)<<cpu.SCExtCtlRW
	if ch.DSR != want {
		t.Fatalf("DSR = %#x, want %#x", ch.DSR, want)
	}
}

func TestTMRVoterIdentifiesErringCPU(t *testing.T) {
	tmr, err := NewTMR(workload.ByName("canrdr"))
	if err != nil {
		t.Fatal(err)
	}
	// Fault-free warmup: no divergence.
	for i := 0; i < 2000; i++ {
		if v := tmr.Step(); v.Diverged {
			t.Fatalf("spurious TMR divergence at cycle %d", tmr.Cycle)
		}
	}
	// Stuck-at on CPU 2.
	tmr.Arm(2, Injection{Flop: 40, Kind: Stuck1, Cycle: tmr.Cycle + 1})
	found := false
	for i := 0; i < 20000; i++ {
		v := tmr.Step()
		if v.Diverged {
			if v.Erring != 2 {
				t.Fatalf("voter blamed CPU %d, want 2", v.Erring)
			}
			if v.DSR == 0 {
				t.Fatal("empty DSR on TMR divergence")
			}
			found = true
			break
		}
	}
	if !found {
		t.Skip("fault masked on this flop; acceptable")
	}
}

func TestTMRForwardRecovery(t *testing.T) {
	tmr, err := NewTMR(workload.ByName("puwmod"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1500; i++ {
		tmr.Step()
	}
	// Soft fault on CPU 1; wait for the voter to catch it.
	tmr.Arm(1, Injection{Flop: 5, Kind: SoftFlip, Cycle: tmr.Cycle + 1})
	caught := false
	for i := 0; i < 20000; i++ {
		v := tmr.Step()
		if v.Diverged {
			if v.Erring != 1 {
				t.Fatalf("voter blamed CPU %d, want 1", v.Erring)
			}
			caught = true
			break
		}
	}
	if !caught {
		t.Skip("soft fault masked; acceptable for this flop")
	}
	tmr.ForwardRecover(0)
	for i := 0; i < 5000; i++ {
		if v := tmr.Step(); v.Diverged {
			t.Fatalf("divergence after forward recovery at +%d", i)
		}
	}
}

func TestTraceMatchesInject(t *testing.T) {
	g := testGolden(t, "rspeed", 6000)
	inj := Injection{Flop: 900, Kind: Stuck1, Cycle: 2000}
	out := g.Inject(inj)
	tr := g.Trace(inj, StopLatency)
	if out.Detected != tr.Outcome.Detected {
		t.Fatalf("trace and inject disagree on detection")
	}
	if !out.Detected {
		t.Skip("fault masked; nothing to compare")
	}
	if tr.Outcome.DetectCycle != out.DetectCycle {
		t.Fatalf("detect cycle %d vs %d", tr.Outcome.DetectCycle, out.DetectCycle)
	}
	// The accumulated DSR over the same window must match, and equal the
	// OR of the per-cycle maps.
	if tr.Outcome.DSR != out.DSR {
		t.Fatalf("accumulated DSR %#x vs inject %#x", tr.Outcome.DSR, out.DSR)
	}
	var orAll uint64
	for _, m := range tr.Maps {
		orAll |= m
	}
	if orAll != tr.Outcome.DSR {
		t.Fatalf("per-cycle maps OR to %#x, DSR %#x", orAll, tr.Outcome.DSR)
	}
	if tr.Maps[0] == 0 {
		t.Fatal("first trace sample must be the detection divergence")
	}
}

func TestTraceConvergedTransient(t *testing.T) {
	g := testGolden(t, "puwmod", 4000)
	// Hunt a masked transient: most regfile flips in dead windows converge.
	for flop := 600; flop < 1000; flop += 7 {
		tr := g.Trace(Injection{Flop: flop, Kind: SoftFlip, Cycle: 1500}, 8)
		if tr.Outcome.Converged {
			if len(tr.Maps) != 0 {
				t.Fatal("converged trace should have no divergence samples")
			}
			return
		}
	}
	t.Skip("no converged transient found in the sampled range")
}

// TestOutcomeInvariants: property test over random injections — every
// outcome satisfies the structural invariants of the harness.
func TestOutcomeInvariants(t *testing.T) {
	g := testGolden(t, "iirflt", 6000)
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 250; i++ {
		inj := Injection{
			Flop:  rng.Intn(cpu.NumFlops()),
			Kind:  FaultKind(rng.Intn(NumFaultKinds)),
			Cycle: rng.Intn(6000),
		}
		o := g.Inject(inj)
		if o.Detected && o.Converged {
			t.Fatalf("outcome both detected and converged: %+v", inj)
		}
		if o.Detected {
			if o.DSR == 0 {
				t.Fatalf("detected with empty DSR: %+v", inj)
			}
			if o.DetectCycle < inj.Cycle {
				t.Fatalf("detection before injection: %+v %+v", inj, o)
			}
		} else if o.DSR != 0 || o.DetectCycle != 0 {
			t.Fatalf("undetected outcome carries data: %+v", o)
		}
		if o.Converged && inj.Kind.IsHard() {
			t.Fatalf("hard fault converged: %+v", inj)
		}
	}
}

// TestWindowedDSRIsSuperset: the accumulated DSR always contains the
// first-divergence map (window 1 result).
func TestWindowedDSRIsSuperset(t *testing.T) {
	g := testGolden(t, "cacheb", 6000)
	rng := rand.New(rand.NewSource(13))
	compared := 0
	for i := 0; i < 300 && compared < 60; i++ {
		inj := Injection{
			Flop:  rng.Intn(cpu.NumFlops()),
			Kind:  Stuck1,
			Cycle: rng.Intn(5000),
		}
		first := g.InjectW(inj, 1)
		full := g.InjectW(inj, StopLatency)
		if first.Detected != full.Detected {
			t.Fatalf("window changed detection: %+v", inj)
		}
		if !first.Detected {
			continue
		}
		if first.DetectCycle != full.DetectCycle {
			t.Fatalf("window changed detection cycle: %+v", inj)
		}
		if full.DSR&first.DSR != first.DSR {
			t.Fatalf("windowed DSR %#x not a superset of first map %#x", full.DSR, first.DSR)
		}
		compared++
	}
	if compared < 20 {
		t.Skipf("only %d detections; weak sample", compared)
	}
}
