package lockstep

import (
	"sync"

	"lockstep/internal/cpu"
	"lockstep/internal/mem"
	"lockstep/internal/telemetry"
)

// replayTel caches the inject.replay_restores counter handle so the hot
// path increments a single atomic — no registry lookup, no allocation.
var replayTel struct {
	once     sync.Once
	restores *telemetry.Counter
}

func countReplayRestore() {
	replayTel.once.Do(func() {
		replayTel.restores = telemetry.Default.Counter("inject.replay_restores")
	})
	replayTel.restores.Inc()
}

// Replayer is the per-worker scratch state of the golden-trace injection
// path: one mem.ReplayBus carrying the faulty CPU's memory image and a
// second (vbus) for reconstructing exact golden states during the
// soft-fault convergence check. All buffers are reused across
// experiments, so the steady-state hot path performs zero heap
// allocations; the RAM-image repositioning between experiments on the
// same Golden is incremental (word-sized deltas from the golden write
// log) rather than a full 256 KiB copy.
//
// A Replayer is NOT safe for concurrent use — give each campaign worker
// its own. The Golden it runs against is immutable and shared.
type Replayer struct {
	g    *Golden // timeline currently loaded into bus
	bus  mem.ReplayBus
	vg   *Golden // timeline currently loaded into vbus
	vbus mem.ReplayBus

	// CPU scratch lives on the Replayer rather than the stack: the flop
	// registry's indirect accessors defeat escape analysis, so stack
	// locals would be heap-allocated once per experiment.
	red   cpu.CPU // the faulty CPU under test
	ghost cpu.CPU // one-cycle golden lookahead for the soft recovery bit
	vcpu  cpu.CPU // golden reconstruction for the convergence confirm
}

// NewReplayer returns an empty Replayer. RAM-image buffers are allocated
// lazily on the first experiment.
func NewReplayer() *Replayer { return &Replayer{} }

// InjectW runs one fault-injection experiment against g on the replay
// path, producing an Outcome bit-identical to g.InjectLegacyW(inj,
// window).
//
// Equivalence to the dual-CPU oracle, piece by piece:
//
//   - Fault-free prefix: the legacy path steps the main CPU from the
//     snapshot to the injection cycle and forks the redundant CPU off it.
//     Here the redundant CPU itself is stepped from the snapshot state
//     against the ReplayBus. Within cpu.Step the MEM-stage store commits
//     before the IF-stage fetch reads, and MEM performs either a read or
//     a write in a cycle — never a read of a word written later the same
//     cycle — so pre-applying all of cycle N's golden writes before the
//     step (AdvanceTo) serves exactly the data a live System would have.
//     External-region reads are the pure mem.SensorValue pattern in both.
//   - Checker compare: the legacy path diffs main vs redundant outputs at
//     the top of every cycle; the golden trace holds the main CPU's
//     output vector for every cycle, so the diff runs against outAt(cyc).
//   - Post-fault stepping: in the legacy path the redundant CPU is a bus
//     monitor — its reads see the main CPU's memory image after the full
//     cycle, which is precisely the AdvanceTo(cyc+1)-then-step image, and
//     its writes are dropped (ReplayBus drops writes identically). A
//     diverged redundant CPU may fetch or load addresses the golden run
//     never touched; the ReplayBus serves any address from the
//     reconstructed image, not a recorded read stream, so those wild
//     reads also match the legacy monitor exactly.
//   - Soft-fault recovery bit: the legacy path copies the main CPU's
//     value of the faulted flop one cycle after injection. Without a live
//     main CPU the same bit comes from a ghost step: the pre-fault
//     redundant state IS the golden state at the injection cycle, so
//     stepping a copy of it one cycle yields the golden flop value.
//   - Convergence check: the legacy `red.State == main.State` compare
//     becomes a per-cycle fingerprint filter (equal states guarantee
//     equal fingerprints) confirmed against an exactly reconstructed
//     golden state, so a hash collision can cost time but never flip an
//     outcome.
func (r *Replayer) InjectW(g *Golden, inj Injection, window int) Outcome {
	return r.injectHorizon(g, inj, window, g.TotalCycles, 0)
}

// injectHorizon is the replay injection core, generalized over the
// lockstep mode: the run compares the first `horizon` cycles of the
// golden trace (DCLS/TMR compare all TotalCycles; an N-cycle slip only
// ever checks TotalCycles-N program cycles before the campaign horizon),
// and `shift` converts program-space detection cycles to wall-clock ones
// (the delayed checker of slip:N sees program cycle c at wall cycle c+N).
//
// The main CPU is fault-free in every mode, so in program space the
// redundant CPU's environment under slip IS the DCLS environment: the
// same golden trace drives the replay, only the loop bound and the
// reported DetectCycle move. slip:0 is therefore DCLS by construction.
func (r *Replayer) injectHorizon(g *Golden, inj Injection, window, horizon, shift int) Outcome {
	if horizon > g.TotalCycles {
		horizon = g.TotalCycles
	}
	if inj.Cycle < 0 || inj.Cycle >= horizon {
		return Outcome{}
	}
	if window < 1 {
		window = 1
	}
	countReplayRestore()

	s := &g.snaps[g.snapIndex(inj.Cycle)]
	if r.g != g {
		r.bus.Load(s.ram, s.cycle, g.trace.writes)
		r.g = g
	} else {
		r.bus.Seek(s.ram, s.cycle, s.cycle)
	}

	// Fault-free prefix: replay the redundant CPU (bit-identical to the
	// golden CPU until the fault applies) from the snapshot.
	red := &r.red
	red.State, red.Bus = s.cpu, &r.bus
	for cyc := s.cycle; cyc < inj.Cycle; cyc++ {
		r.bus.AdvanceTo(cyc + 1)
		red.StepCycle()
	}

	// For a soft fault, precompute the golden value the flop recovers to
	// one cycle after injection (ghost step of the still-golden state).
	// Advancing the image to inj.Cycle+1 early is harmless: the next bus
	// consumer is the redundant CPU stepping that same cycle.
	var recoverBit bool
	if inj.Kind == SoftFlip {
		r.ghost.State, r.ghost.Bus = red.State, &r.bus
		r.bus.AdvanceTo(inj.Cycle + 1)
		r.ghost.StepCycle()
		recoverBit = cpu.GetBit(&r.ghost.State, inj.Flop)
	}

	// Apply the fault after the injection-cycle clock edge (same
	// semantics as the legacy path: soft inverts for one cycle, stuck-at
	// is re-forced after every edge).
	switch inj.Kind {
	case SoftFlip:
		cpu.FlipBit(&red.State, inj.Flop)
	case Stuck0:
		cpu.ForceBit(&red.State, inj.Flop, false)
	case Stuck1:
		cpu.ForceBit(&red.State, inj.Flop, true)
	}

	softArmed := inj.Kind == SoftFlip
	stepFaulty := func(cyc int) {
		r.bus.AdvanceTo(cyc + 1)
		red.StepCycle()
		switch inj.Kind {
		case SoftFlip:
			if softArmed {
				// The transient has passed: the flop itself recovers to
				// the golden value.
				cpu.ForceBit(&red.State, inj.Flop, recoverBit)
				softArmed = false
			}
		case Stuck0:
			cpu.ForceBit(&red.State, inj.Flop, false)
		case Stuck1:
			cpu.ForceBit(&red.State, inj.Flop, true)
		}
	}
	for cyc := inj.Cycle; cyc < horizon; cyc++ {
		or := red.State.Outputs()
		// Whole-vector equality (a memcmp) gates the per-SC reduction:
		// Diverge sets bit i exactly when element i differs, so the DSR is
		// nonzero precisely when the vectors are unequal, and the
		// fault-free common case skips the 62-category loop entirely.
		if or != *g.trace.outAt(cyc) {
			dsr := cpu.Diverge(g.trace.outAt(cyc), &or)
			// Error detected; the DSR keeps OR-accumulating per-SC
			// divergences during the checker stop window.
			detect := cyc + shift
			for w := 1; w < window && cyc+1 < horizon; w++ {
				stepFaulty(cyc)
				cyc++
				or = red.State.Outputs()
				dsr |= cpu.Diverge(g.trace.outAt(cyc), &or)
			}
			recordDSR("inject", dsr)
			return Outcome{Detected: true, DetectCycle: detect, DSR: dsr}
		}
		if inj.Kind == SoftFlip && !softArmed && softCheckDue(cyc, inj.Cycle, horizon) &&
			uint32(cpu.Fingerprint(&red.State)) == g.trace.fp[cyc] &&
			red.State == r.goldenStateAt(g, cyc) {
			return Outcome{Converged: true}
		}
		stepFaulty(cyc)
	}
	// Horizon reached without divergence: masked.
	return Outcome{}
}

// softCheckDue schedules the soft-fault convergence check: every cycle
// for the first 64 cycles after injection (transients that get masked
// usually flush within the pipeline depth, so fast convergence still
// exits early), then every 64th cycle, and always on the last cycle the
// legacy path would have checked (TotalCycles-1).
//
// A sparse schedule cannot change the outcome, only the exit cycle of a
// Converged run: convergence is absorbing — once the redundant state
// equals the golden state, both evolve identically against the same bus
// inputs, so they are equal at every later cycle too (and can never
// diverge into a detection). Checking any subset of cycles that includes
// TotalCycles-1 therefore classifies exactly like the legacy per-cycle
// check, and the Converged Outcome carries no cycle field to differ in.
func softCheckDue(cyc, injCycle, total int) bool {
	return cyc-injCycle <= 64 || cyc&63 == 0 || cyc == total-1
}

// goldenStateAt reconstructs the exact golden cpu.State at the end of the
// given cycle by replaying from the nearest snapshot through the
// verification bus. It only runs when a state fingerprint already
// matched, i.e. (up to a ~2^-64 collision) once per converging soft
// fault, so its cost is off the hot path.
func (r *Replayer) goldenStateAt(g *Golden, cycle int) cpu.State {
	s := &g.snaps[g.snapIndex(cycle)]
	if r.vg != g {
		r.vbus.Load(s.ram, s.cycle, g.trace.writes)
		r.vg = g
	} else {
		r.vbus.Seek(s.ram, s.cycle, s.cycle)
	}
	r.vcpu.State, r.vcpu.Bus = s.cpu, &r.vbus
	for cyc := s.cycle; cyc < cycle; cyc++ {
		r.vbus.AdvanceTo(cyc + 1)
		r.vcpu.StepCycle()
	}
	return r.vcpu.State
}
