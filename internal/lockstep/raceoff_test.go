//go:build !race

package lockstep

const raceEnabled = false
