package lockstep

import (
	"bytes"
	"math/rand"
	"testing"

	"lockstep/internal/cpu"
	"lockstep/internal/mem"
	"lockstep/internal/workload"
)

// traceEq compares two traces element-wise (nil and empty slices are the
// same trace; reflect.DeepEqual would distinguish them).
func traceEq(a, b *goldenTrace) bool {
	if len(a.outID) != len(b.outID) || len(a.outTab) != len(b.outTab) ||
		len(a.fp) != len(b.fp) || len(a.writes) != len(b.writes) ||
		len(a.reads) != len(b.reads) {
		return false
	}
	for i := range a.outID {
		if a.outID[i] != b.outID[i] {
			return false
		}
	}
	for i := range a.outTab {
		if a.outTab[i] != b.outTab[i] {
			return false
		}
	}
	for i := range a.fp {
		if a.fp[i] != b.fp[i] {
			return false
		}
	}
	for i := range a.writes {
		if a.writes[i] != b.writes[i] {
			return false
		}
	}
	for i := range a.reads {
		if a.reads[i] != b.reads[i] {
			return false
		}
	}
	return true
}

// randomTrace generates a structurally valid trace with adversarial value
// ranges: ids clustered into runs of random length, full-range output
// words, fingerprints, masks, and event streams that are NOT sorted by
// cycle or address (the zigzag deltas must round-trip any order).
func randomTrace(rng *rand.Rand) *goldenTrace {
	t := &goldenTrace{}
	nTab := rng.Intn(8) + 1
	t.outTab = make([]cpu.OutVec, nTab)
	for i := range t.outTab {
		for j := range t.outTab[i] {
			t.outTab[i][j] = rng.Uint32()
		}
	}
	cycles := rng.Intn(200)
	for len(t.outID) < cycles {
		id := uint32(rng.Intn(nTab))
		run := rng.Intn(20) + 1
		for i := 0; i < run && len(t.outID) < cycles; i++ {
			t.outID = append(t.outID, id)
		}
	}
	t.fp = make([]uint32, rng.Intn(200))
	for i := range t.fp {
		t.fp[i] = rng.Uint32()
	}
	for i, n := 0, rng.Intn(100); i < n; i++ {
		t.writes = append(t.writes, mem.WriteEvent{
			Cycle: rng.Int31(),
			Addr:  rng.Uint32(),
			Data:  rng.Uint32(),
			Mask:  rng.Uint32(),
		})
	}
	for i, n := 0, rng.Intn(100); i < n; i++ {
		t.reads = append(t.reads, mem.ReadEvent{
			Cycle: rng.Int31(),
			Addr:  rng.Uint32(),
			Data:  rng.Uint32(),
		})
	}
	return t
}

// TestTraceCodecRoundTripRandom is the codec property test: any valid
// trace — including empty sections and unsorted event streams — decodes
// back equal to what was encoded.
func TestTraceCodecRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 200; i++ {
		tr := randomTrace(rng)
		got, err := decodeTrace(encodeTrace(tr))
		if err != nil {
			t.Fatalf("trace %d: decode failed: %v", i, err)
		}
		if !traceEq(tr, got) {
			t.Fatalf("trace %d: round trip differs", i)
		}
	}
	if _, err := decodeTrace(encodeTrace(&goldenTrace{})); err != nil {
		t.Fatalf("empty trace round trip: %v", err)
	}
}

// TestTraceCodecRoundTripKernels round-trips real recorded golden traces
// and checks the compaction claim the campaign relies on: the encoded
// form must be smaller than the in-memory trace, which is itself far
// smaller than the version-1 flat layout.
func TestTraceCodecRoundTripKernels(t *testing.T) {
	for _, kn := range []string{"puwmod", "ttsprk"} {
		// Campaign-scale horizon: kernels loop, so the OutVec working set
		// saturates while cycles keep growing — that periodicity is what
		// the interning exploits.
		g, err := NewGolden(workload.ByName(kn), 6000, 750)
		if err != nil {
			t.Fatal(err)
		}
		enc := encodeTrace(&g.trace)
		got, err := decodeTrace(enc)
		if err != nil {
			t.Fatalf("%s: decode failed: %v", kn, err)
		}
		if !traceEq(&g.trace, got) {
			t.Fatalf("%s: round trip differs", kn)
		}
		flatV1 := int64(len(g.trace.outID))*int64(cpu.NumSC*4+8) +
			int64(len(g.trace.writes))*mem.WriteEventBytes +
			int64(len(g.trace.reads))*mem.ReadEventBytes
		if got := g.TraceBytes(); got*3 > flatV1 {
			t.Errorf("%s: compacted trace %d bytes, want >=3x below flat %d", kn, got, flatV1)
		}
		if int64(len(enc)) > g.TraceBytes() {
			t.Errorf("%s: encoded trace %d bytes exceeds in-memory %d", kn, len(enc), g.TraceBytes())
		}
	}
}

// TestTraceDecodeRejects spot-checks the decoder's failure paths: bad
// magic, bad version, truncation at every prefix length, oversized
// counts, dangling outvec ids and trailing garbage must all error — and
// (like the fuzz target) never panic.
func TestTraceDecodeRejects(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(7)))
	enc := encodeTrace(tr)
	if _, err := decodeTrace(nil); err == nil {
		t.Error("decode of nil input succeeded")
	}
	if _, err := decodeTrace([]byte("nope")); err == nil {
		t.Error("decode with bad magic succeeded")
	}
	bad := bytes.Clone(enc)
	bad[len(traceMagic)] = TraceVersion + 1
	if _, err := decodeTrace(bad); err == nil {
		t.Error("decode with bad version succeeded")
	}
	for n := len(traceMagic); n < len(enc); n += 7 {
		if _, err := decodeTrace(enc[:n]); err == nil {
			t.Errorf("decode of %d-byte truncation succeeded", n)
		}
	}
	if _, err := decodeTrace(append(bytes.Clone(enc), 0)); err == nil {
		t.Error("decode with trailing garbage succeeded")
	}
	huge := append([]byte(traceMagic), byte(TraceVersion),
		0xff, 0xff, 0xff, 0xff, 0x7f) // cycle count far over maxTraceCycles
	if _, err := decodeTrace(huge); err == nil {
		t.Error("decode with oversized cycle count succeeded")
	}
}

// FuzzTraceDecode holds the decoder to its contract on arbitrary bytes:
// no panics, no attacker-sized allocations, and anything it accepts must
// re-encode and re-decode to the same trace (decode∘encode is the
// identity on the codec's image).
func FuzzTraceDecode(f *testing.F) {
	f.Add([]byte(traceMagic))
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 4; i++ {
		f.Add(encodeTrace(randomTrace(rng)))
	}
	g, err := NewGolden(workload.ByName("puwmod"), 200, 50)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(encodeTrace(&g.trace))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := decodeTrace(data)
		if err != nil {
			return
		}
		got, err := decodeTrace(encodeTrace(tr))
		if err != nil {
			t.Fatalf("re-decode of accepted input failed: %v", err)
		}
		if !traceEq(tr, got) {
			t.Fatal("re-decode of accepted input differs")
		}
	})
}
