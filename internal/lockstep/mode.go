package lockstep

import (
	"fmt"
	"strconv"
	"strings"

	"lockstep/internal/cpu"
)

// ModeKind enumerates the lockstep organizations the campaign harness can
// drive. The zero value is classic dual-core lockstep (DCLS), so every
// pre-existing struct that gains a Mode field keeps its old meaning.
type ModeKind uint8

const (
	// ModeDCLS is the paper's baseline: main and redundant CPU execute
	// cycle-for-cycle, the checker compares their outputs every cycle.
	ModeDCLS ModeKind = iota
	// ModeSlip is temporal-slip lockstep (the SafeLS/NOEL-V design): the
	// redundant CPU runs Mode.Slip cycles behind the main CPU and the
	// checker compares the redundant stream against the delayed main
	// stream.
	ModeSlip
	// ModeTMR is triple-core lockstep with a majority voter and forward
	// recovery (the TCLS configuration of Section II).
	ModeTMR
)

// Mode selects a lockstep organization for an injection campaign. It is a
// comparable value type; the zero value is DCLS, so Mode can ride along
// in configs, fingerprints and records without disturbing existing
// serializations.
type Mode struct {
	Kind ModeKind
	Slip int // stagger in cycles; meaningful only when Kind == ModeSlip
}

// String renders the canonical mode spelling: "dcls", "slip:N" or "tmr".
// ParseMode(m.String()) == m for every valid Mode.
func (m Mode) String() string {
	switch m.Kind {
	case ModeDCLS:
		return "dcls"
	case ModeSlip:
		return "slip:" + strconv.Itoa(m.Slip)
	case ModeTMR:
		return "tmr"
	}
	return fmt.Sprintf("mode(%d)", uint8(m.Kind))
}

// ParseMode parses the "dcls" / "slip:N" / "tmr" mode codec used by the
// -mode CLI flag, the server campaign API, the dataset CSV column and the
// checkpoint fingerprint. The empty string means DCLS (it is how a dcls
// mode round-trips through omitempty JSON and pre-mode checkpoints).
//
// The slip count must be spelled canonically — strconv.Itoa of the value,
// so "slip:+3", "slip:007" and "slip:0x3" are rejected — which makes the
// codec bijective and keeps fingerprint digests stable. A canonically
// spelled negative count ("slip:-3") parses: range validation is the
// campaign Config's job, so the CLI and the server surface the identical
// typed ConfigError for it rather than two different parse errors.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "dcls":
		return Mode{}, nil
	case "tmr":
		return Mode{Kind: ModeTMR}, nil
	}
	if digits, ok := strings.CutPrefix(s, "slip:"); ok {
		n, err := strconv.Atoi(digits)
		if err != nil || strconv.Itoa(n) != digits {
			return Mode{}, fmt.Errorf("lockstep: bad slip count %q (want slip:N with N a canonical integer)", digits)
		}
		return Mode{Kind: ModeSlip, Slip: n}, nil
	}
	return Mode{}, fmt.Errorf("lockstep: unknown mode %q (want dcls, slip:N or tmr)", s)
}

// Horizon is the number of golden-trace cycles an injection run can
// compare under this mode. Under slip the redundant CPU starts Slip wall
// cycles late, so only the first TotalCycles-Slip program cycles of the
// golden stream are ever checked before the campaign horizon; DCLS and
// TMR compare the full trace.
func (m Mode) Horizon(totalCycles int) int {
	if m.Kind == ModeSlip {
		return totalCycles - m.Slip
	}
	return totalCycles
}

// DetectShift is the wall-clock offset added to program-space detection
// cycles: under slip the checker sees program cycle c of the redundant
// stream at wall cycle c+Slip.
func (m Mode) DetectShift() int {
	if m.Kind == ModeSlip {
		return m.Slip
	}
	return 0
}

// SlipChecker is the live mode-aware lockstep checker: the main CPU's
// output vectors are delayed through an N-deep ring so the redundant
// CPU's outputs — produced N wall cycles later — are compared against the
// main vector of the same program cycle. N == 0 degenerates to the plain
// per-cycle Checker. Like Checker, the first divergence latches the DSR
// and the checker then holds its state.
type SlipChecker struct {
	DSR      uint64 // diverged-SC map latched at first error
	Error    bool   // sticky lockstep error flag
	ErrCycle int    // wall cycle the error was latched

	n     int          // stagger depth
	ring  []cpu.OutVec // last n main vectors, oldest at head
	head  int
	seen  int // main vectors buffered so far
	cycle int
}

// NewSlipChecker builds a checker for an n-cycle stagger. n must be >= 0.
func NewSlipChecker(n int) *SlipChecker {
	if n < 0 {
		panic("lockstep: negative slip")
	}
	return &SlipChecker{n: n, ring: make([]cpu.OutVec, n)}
}

// Compare feeds one wall cycle: the main CPU's output vector for program
// cycle t and the redundant CPU's output vector for program cycle t-n
// (zero-valued/ignored until the redundant CPU has started, i.e. for the
// first n wall cycles). It returns true when this cycle latched a new
// error.
func (c *SlipChecker) Compare(main, red *cpu.OutVec) bool {
	c.cycle++
	if c.n == 0 {
		return c.latch(cpu.Diverge(main, red))
	}
	delayed := c.ring[c.head]
	c.ring[c.head] = *main
	c.head = (c.head + 1) % c.n
	if c.seen < c.n {
		// The redundant CPU has not reached this program cycle yet.
		c.seen++
		return false
	}
	return c.latch(cpu.Diverge(&delayed, red))
}

func (c *SlipChecker) latch(dsr uint64) bool {
	if c.Error || dsr == 0 {
		return false
	}
	c.DSR = dsr
	c.Error = true
	c.ErrCycle = c.cycle
	recordDSR("checker", dsr)
	return true
}

// Reset clears the checker for reuse after error handling, keeping the
// stagger depth.
func (c *SlipChecker) Reset() {
	*c = SlipChecker{n: c.n, ring: c.ring}
	for i := range c.ring {
		c.ring[i] = cpu.OutVec{}
	}
}
