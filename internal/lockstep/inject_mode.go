package lockstep

import (
	"lockstep/internal/cpu"
	"lockstep/internal/mem"
)

// This file is the mode dispatch layer of the injection harness: one
// entry point per execution path (replay fast path, full-simulation
// oracle, static pruning) that specializes the DCLS machinery to a
// lockstep Mode.
//
// # Slip
//
// Injection plans are enumerated in program space (the cycle counter of
// the golden run), so a plan is identical across modes. Under slip:N the
// redundant CPU executes program cycle c at wall cycle c+N while the main
// CPU is always fault-free — which means the redundant CPU's environment
// in program space IS the DCLS environment. A slip run is therefore the
// DCLS replay with two parameters moved: the compare horizon shrinks to
// TotalCycles-N (the checker has seen only that many delayed program
// cycles when the campaign horizon arrives; injections at or past it are
// masked by construction), and detection cycles shift by +N into the
// wall clock. slip:0 is DCLS by construction, which the mode-determinism
// gate asserts experiment-for-experiment.
//
// # TMR
//
// The campaign faults a single CPU, and the convention here is CPU 2 — a
// compare-only monitor. CPU 0 (the bus driver) and CPU 1 stay golden and
// bit-identical, so the voter's pairwise d01 is always zero, the erring
// CPU is always identified, and the voted DSR d02 is exactly the DCLS
// checker's Diverge(golden, faulty): TMR detection outcomes equal DCLS
// outcomes, and the fast path reuses the replay core for them. What TMR
// adds is forward recovery (Section II): after the stop window the
// majority architectural state is restored into every core and execution
// resumes. Outcome.Converged on a Detected TMR outcome reports whether
// that recovery held — the cores stayed in lockstep through a
// TMRRecheckCycles recheck — distinguishing recoverable transients from
// permanent faults that re-diverge immediately.

// TMRRecheckCycles is the post-recovery observation window: after a TMR
// forward recovery the voter watches this many cycles for a re-divergence
// before declaring the recovery successful. It comfortably covers the
// pipeline refill plus several instructions, so a stuck-at fault on any
// flop observed in steady state re-diverges within it.
const TMRRecheckCycles = 64

// InjectMode runs one experiment under the given lockstep mode on the
// fast path, using this Replayer's scratch. DCLS and slip:N run entirely
// on the golden-trace replay core; TMR runs detection on the replay core
// and, for detected hard faults, simulates the forward-recovery recheck
// live (post-recovery execution leaves the golden trace, so it cannot be
// replayed).
func (r *Replayer) InjectMode(g *Golden, inj Injection, mode Mode, window int) Outcome {
	switch mode.Kind {
	case ModeSlip:
		return r.injectHorizon(g, inj, window, mode.Horizon(g.TotalCycles), mode.DetectShift())
	case ModeTMR:
		return r.injectTMR(g, inj, window)
	default:
		return r.injectHorizon(g, inj, window, g.TotalCycles, 0)
	}
}

// InjectModeW is Golden-level InjectMode with pooled scratch, the
// mode-generalized InjectW.
func (g *Golden) InjectModeW(inj Injection, mode Mode, window int) Outcome {
	r := replayerPool.Get().(*Replayer)
	out := r.InjectMode(g, inj, mode, window)
	replayerPool.Put(r)
	return out
}

// InjectMode runs one experiment under the given mode with the default
// stop window.
func (g *Golden) InjectMode(inj Injection, mode Mode) Outcome {
	return g.InjectModeW(inj, mode, StopLatency)
}

// InjectLegacyMode is the full-simulation differential oracle for every
// mode: dual live CPUs for DCLS and slip:N, triple live CPUs with a real
// majority voter for TMR. It shares no mode-specialization logic with the
// fast path beyond the Golden snapshots, which is what makes the
// mode-determinism sample a meaningful cross-check.
func (g *Golden) InjectLegacyMode(inj Injection, mode Mode, window int) Outcome {
	switch mode.Kind {
	case ModeSlip:
		return g.injectLegacyHorizon(inj, window, mode.Horizon(g.TotalCycles), mode.DetectShift())
	case ModeTMR:
		return g.InjectTMRLegacyW(inj, window)
	default:
		return g.injectLegacyHorizon(inj, window, g.TotalCycles, 0)
	}
}

// injectTMR is the TMR fast path: detection via the replay core (equal to
// DCLS by the d01==0 argument above), then forward recovery for detected
// faults. Soft transients need no recheck simulation: the fault forcing
// is over by the time the cores are reset to the majority architectural
// state, so all three restart bit-identical against the same bus and stay
// in lockstep by determinism — Converged is true by construction (the
// triple-CPU oracle proves this argument on every sampled site). Hard
// faults keep forcing the flop after recovery, so their recheck is
// simulated live.
func (r *Replayer) injectTMR(g *Golden, inj Injection, window int) Outcome {
	out := r.injectHorizon(g, inj, window, g.TotalCycles, 0)
	if !out.Detected {
		return out
	}
	if window < 1 {
		window = 1
	}
	if inj.Kind == SoftFlip {
		out.Converged = true
		return out
	}
	// The stop window ended at cycle e; recovery restores the majority
	// state captured there.
	e := out.DetectCycle + window - 1
	if e > g.TotalCycles-1 {
		e = g.TotalCycles - 1
	}
	out.Converged = g.tmrRecheck(e, inj)
	return out
}

// tmrRecheck reconstructs the majority (golden) machine at the end of
// cycle e on a live system, performs the forward recovery, and reports
// whether a still-forced hard fault keeps the recovered core in lockstep
// for TMRRecheckCycles. The memory image at recovery is the golden RAM —
// the erring core is a compare-only monitor whose writes are dropped —
// so restoring from the golden snapshots is exact.
func (g *Golden) tmrRecheck(e int, inj Injection) bool {
	sys, main, cyc := g.restore(e)
	for ; cyc < e; cyc++ {
		main.StepCycle()
	}
	recoverTMR(&main.State)
	red := main.Fork(mem.Monitor{Sys: sys})
	forceStuck(&red.State, inj)
	for i := 0; i < TMRRecheckCycles; i++ {
		om := main.State.Outputs()
		or := red.State.Outputs()
		if cpu.Diverge(&om, &or) != 0 {
			return false
		}
		main.StepCycle()
		red.StepCycle()
		forceStuck(&red.State, inj)
	}
	return true
}

// recoverTMR applies the forward-recovery state edit of TMR.ForwardRecover
// to one architectural state: reset at the majority's PC, keep its
// register file, discard all microarchitectural state.
func recoverTMR(st *cpu.State) {
	pc, regs := st.PC, st.Regs
	st.Reset(pc)
	st.Regs = regs
}

// forceStuck re-forces a stuck-at fault; soft faults are left alone (the
// transient has passed by any recovery point).
func forceStuck(st *cpu.State, inj Injection) {
	switch inj.Kind {
	case Stuck0:
		cpu.ForceBit(st, inj.Flop, false)
	case Stuck1:
		cpu.ForceBit(st, inj.Flop, true)
	}
}

// vote3 runs the majority voter over three output vectors, with the same
// semantics as TMR.Step: when exactly one CPU disagrees its divergence
// map against the majority is the DSR; when all three disagree the maps
// are OR-ed and no erring CPU is named.
func vote3(o0, o1, o2 *cpu.OutVec) VoteResult {
	d01 := cpu.Diverge(o0, o1)
	d02 := cpu.Diverge(o0, o2)
	d12 := cpu.Diverge(o1, o2)
	switch {
	case d01 == 0 && d02 == 0 && d12 == 0:
		return VoteResult{Erring: -1}
	case d01 == 0:
		return VoteResult{Diverged: true, DSR: d02, Erring: 2}
	case d02 == 0:
		return VoteResult{Diverged: true, DSR: d01, Erring: 1}
	case d12 == 0:
		return VoteResult{Diverged: true, DSR: d01, Erring: 0}
	default:
		return VoteResult{Diverged: true, DSR: d01 | d02 | d12, Erring: -1}
	}
}

// InjectTMRLegacyW is the TMR differential oracle: three live CPUs (bus
// driver plus two compare-only monitors, the faulty one being CPU 2),
// a genuine per-cycle majority vote, and the forward-recovery recheck run
// on the oracle's own cores and memory image. Nothing is read from the
// golden trace after restore, so agreement with the fast path is evidence
// rather than tautology.
func (g *Golden) InjectTMRLegacyW(inj Injection, window int) Outcome {
	if inj.Cycle < 0 || inj.Cycle >= g.TotalCycles {
		return Outcome{}
	}
	if window < 1 {
		window = 1
	}
	sys, main, cyc := g.restore(inj.Cycle)
	for ; cyc < inj.Cycle; cyc++ {
		main.StepCycle()
	}
	mon := main.Fork(mem.Monitor{Sys: sys})
	red := main.Fork(mem.Monitor{Sys: sys})
	switch inj.Kind {
	case SoftFlip:
		cpu.FlipBit(&red.State, inj.Flop)
	case Stuck0:
		cpu.ForceBit(&red.State, inj.Flop, false)
	case Stuck1:
		cpu.ForceBit(&red.State, inj.Flop, true)
	}

	softArmed := inj.Kind == SoftFlip
	stepAll := func() {
		main.StepCycle()
		mon.StepCycle()
		red.StepCycle()
		if softArmed {
			cpu.ForceBit(&red.State, inj.Flop, cpu.GetBit(&main.State, inj.Flop))
			softArmed = false
		}
		forceStuck(&red.State, inj)
	}
	for ; cyc < g.TotalCycles; cyc++ {
		o0 := main.State.Outputs()
		o1 := mon.State.Outputs()
		o2 := red.State.Outputs()
		if v := vote3(&o0, &o1, &o2); v.Diverged {
			detect := cyc
			dsr := v.DSR
			for w := 1; w < window && cyc+1 < g.TotalCycles; w++ {
				stepAll()
				cyc++
				o0 = main.State.Outputs()
				o1 = mon.State.Outputs()
				o2 = red.State.Outputs()
				dsr |= vote3(&o0, &o1, &o2).DSR
			}
			recordDSR("inject", dsr)
			// Forward recovery on the oracle's own triple: restore the
			// majority architectural state (main and mon are bit-identical,
			// either is the majority) into every core — including the
			// erring one — then watch the vote for TMRRecheckCycles.
			pc, regs := main.State.PC, main.State.Regs
			for _, c := range [...]*cpu.CPU{main, mon, red} {
				c.State.Reset(pc)
				c.State.Regs = regs
			}
			softArmed = false
			forceStuck(&red.State, inj)
			conv := true
			for i := 0; i < TMRRecheckCycles; i++ {
				o0 = main.State.Outputs()
				o1 = mon.State.Outputs()
				o2 = red.State.Outputs()
				if vote3(&o0, &o1, &o2).Diverged {
					conv = false
					break
				}
				main.StepCycle()
				mon.StepCycle()
				red.StepCycle()
				forceStuck(&red.State, inj)
			}
			return Outcome{Detected: true, DetectCycle: detect, DSR: dsr, Converged: conv}
		}
		if inj.Kind == SoftFlip && !softArmed && red.State == main.State {
			return Outcome{Converged: true}
		}
		stepAll()
	}
	return Outcome{}
}

// PruneMode is the mode-generalized Golden.Prune. DCLS and TMR share the
// DCLS pruning table verbatim: a prunable site never detects, so the TMR
// recovery phase — the only behavioral difference — never runs. Under
// slip:N the horizon shrinks to TotalCycles-N: sites at or past it are
// masked by construction, the soft "injected on the last compared cycle"
// special case moves to horizon-1, and the stuck-at value-stability
// argument carries over unchanged (it proves stability to TotalCycles, a
// superset of the truncated window — an over-approximation that can cost
// coverage, never soundness).
func (g *Golden) PruneMode(inj Injection, mode Mode) (Outcome, bool) {
	if mode.Kind != ModeSlip {
		return g.Prune(inj)
	}
	horizon := mode.Horizon(g.TotalCycles)
	if mode.Slip < 0 || horizon <= 0 || inj.Cycle < 0 || inj.Cycle >= g.TotalCycles {
		return Outcome{}, false
	}
	if inj.Cycle >= horizon {
		// Beyond the truncated horizon the injection loop never runs.
		return Outcome{}, true
	}
	out, ok := g.Prune(inj)
	if !ok {
		return Outcome{}, false
	}
	if out.Converged && inj.Cycle == horizon-1 {
		// The injection loop exits before the first convergence check is
		// due, so the simulated outcome is Masked, not Converged.
		return Outcome{}, true
	}
	return out, true
}
