package lockstep

import (
	"fmt"
	"io"

	"lockstep/internal/cpu"
	"lockstep/internal/mem"
)

// DivergenceTrace records the per-cycle diverged-SC maps of one injection
// around the detection point — the raw signal the Divergence Status
// Register integrates. It exists for debugging signature formation: which
// signal categories diverge first, how a stuck-at keeps re-diverging while
// a transient's wake fades, and what the accumulated DSR ends up holding.
type DivergenceTrace struct {
	Injection Injection
	Outcome   Outcome
	// Cycles[i] is the absolute cycle of sample i; Maps[i] is that
	// cycle's instantaneous divergence map (not accumulated). Sample 0 is
	// the detection cycle.
	Cycles []int
	Maps   []uint64
}

// Trace runs one injection like InjectW but records the instantaneous
// divergence map for up to window cycles starting at detection.
func (g *Golden) Trace(inj Injection, window int) DivergenceTrace {
	tr := DivergenceTrace{Injection: inj}
	if inj.Cycle < 0 || inj.Cycle >= g.TotalCycles || window < 1 {
		return tr
	}
	sys, main, cyc := g.restore(inj.Cycle)
	for ; cyc < inj.Cycle; cyc++ {
		main.StepCycle()
	}
	red := cpu.CPU{State: main.State, Bus: mem.Monitor{Sys: sys}}
	switch inj.Kind {
	case SoftFlip:
		cpu.FlipBit(&red.State, inj.Flop)
	case Stuck0:
		cpu.ForceBit(&red.State, inj.Flop, false)
	case Stuck1:
		cpu.ForceBit(&red.State, inj.Flop, true)
	}
	softArmed := inj.Kind == SoftFlip
	step := func() {
		main.StepCycle()
		red.StepCycle()
		switch inj.Kind {
		case SoftFlip:
			if softArmed {
				cpu.ForceBit(&red.State, inj.Flop, cpu.GetBit(&main.State, inj.Flop))
				softArmed = false
			}
		case Stuck0:
			cpu.ForceBit(&red.State, inj.Flop, false)
		case Stuck1:
			cpu.ForceBit(&red.State, inj.Flop, true)
		}
	}
	for ; cyc < g.TotalCycles; cyc++ {
		om := main.State.Outputs()
		or := red.State.Outputs()
		d := cpu.Diverge(&om, &or)
		if len(tr.Maps) > 0 || d != 0 {
			if len(tr.Maps) == 0 {
				tr.Outcome = Outcome{Detected: true, DetectCycle: cyc}
			}
			tr.Cycles = append(tr.Cycles, cyc)
			tr.Maps = append(tr.Maps, d)
			tr.Outcome.DSR |= d
			if len(tr.Maps) >= window {
				return tr
			}
		}
		if inj.Kind == SoftFlip && !softArmed && len(tr.Maps) == 0 &&
			red.State == main.State {
			tr.Outcome = Outcome{Converged: true}
			return tr
		}
		step()
	}
	return tr
}

// Print renders the trace as an SC-by-cycle grid: one row per signal
// category that ever diverged, one column per recorded cycle.
func (tr DivergenceTrace) Print(w io.Writer) {
	fmt.Fprintf(w, "injection: %s at flop %s, cycle %d\n",
		tr.Injection.Kind, cpu.FlopName(tr.Injection.Flop), tr.Injection.Cycle)
	switch {
	case tr.Outcome.Converged:
		fmt.Fprintln(w, "outcome: transient fully masked (states re-converged)")
		return
	case !tr.Outcome.Detected:
		fmt.Fprintln(w, "outcome: no divergence within the horizon (masked)")
		return
	}
	fmt.Fprintf(w, "outcome: detected at cycle %d (manifestation %d cycles), accumulated DSR %#x\n",
		tr.Outcome.DetectCycle, tr.Outcome.DetectCycle-tr.Injection.Cycle, tr.Outcome.DSR)
	fmt.Fprintf(w, "%-12s", "SC \\ cycle")
	for _, c := range tr.Cycles {
		fmt.Fprintf(w, " %5d", c)
	}
	fmt.Fprintln(w)
	for sc := 0; sc < cpu.NumSC; sc++ {
		if tr.Outcome.DSR>>uint(sc)&1 == 0 {
			continue
		}
		fmt.Fprintf(w, "%-12s", cpu.SCName(sc))
		for _, m := range tr.Maps {
			mark := "     ."
			if m>>uint(sc)&1 != 0 {
				mark = "     X"
			}
			fmt.Fprint(w, mark)
		}
		fmt.Fprintln(w)
	}
}
