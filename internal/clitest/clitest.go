// Package clitest runs a command's real main() as a subprocess from its
// test package, so CLI smoke tests can assert exit status, stdout and
// stderr of the actual binary — flag parsing and os.Exit paths included.
//
// A cmd test package opts in by dispatching in TestMain:
//
//	func TestMain(m *testing.M) {
//		clitest.Dispatch(m)
//	}
//
// and then executes itself with CLI arguments:
//
//	res := clitest.Exec(t, "-o", out, "-kernels", "ttsprk")
//	if res.Code != 0 { ... }
//
// Exec re-runs the test binary with an environment marker set; Dispatch
// sees the marker in the child and calls the package's main() instead of
// the test suite.
package clitest

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"
)

// EnvMarker is the environment variable that redirects a test binary
// into its package's main().
const EnvMarker = "LOCKSTEP_CLITEST_MAIN"

// mainFns is populated by the generated test binary via Register.
var mainFn func()

// Register installs the command's main func. Call it from the cmd test
// package's init (Dispatch panics without it).
func Register(main func()) { mainFn = main }

// Dispatch either runs the registered main() (in an Exec child) or the
// test suite. It never returns.
func Dispatch(m *testing.M) {
	if os.Getenv(EnvMarker) == "1" {
		if mainFn == nil {
			panic("clitest: Dispatch without Register")
		}
		mainFn()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// Result is one subprocess invocation's outcome.
type Result struct {
	Stdout string
	Stderr string
	Code   int
}

// Exec re-runs the current test binary as the command under test with
// the given CLI arguments and returns its output and exit code.
func Exec(t *testing.T, args ...string) Result {
	t.Helper()
	return Start(t, args...).Wait()
}

// Proc is a command under test running in the background, so a test can
// observe or signal it mid-flight — e.g. SIGKILL a campaign between two
// checkpoint writes and assert that a resumed run completes the dataset,
// or SIGTERM a server and assert it drains gracefully.
type Proc struct {
	t              *testing.T
	cmd            *exec.Cmd
	stdout, stderr lockedBuffer
	waited         bool
	res            Result
}

// lockedBuffer is a bytes.Buffer safe to read while the subprocess's
// output-copying goroutine (inside os/exec) is still writing — tests
// poll a live server's output for its listen address.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// Start launches the command under test without waiting for it. Callers
// must eventually call Wait (directly or via Kill) to reap the process; a
// cleanup hook kills it if the test forgets.
func Start(t *testing.T, args ...string) *Proc {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("clitest: cannot locate test binary: %v", err)
	}
	p := &Proc{t: t, cmd: exec.Command(exe, args...)}
	p.cmd.Env = append(os.Environ(), EnvMarker+"=1")
	p.cmd.Stdout = &p.stdout
	p.cmd.Stderr = &p.stderr
	if err := p.cmd.Start(); err != nil {
		t.Fatalf("clitest: start %v: %v", args, err)
	}
	t.Cleanup(func() {
		if !p.waited {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	})
	return p
}

// Signal delivers sig to the running subprocess without reaping it —
// e.g. syscall.SIGTERM to exercise a server's graceful-drain path; the
// test then Waits and asserts a clean exit.
func (p *Proc) Signal(sig os.Signal) {
	p.t.Helper()
	if err := p.cmd.Process.Signal(sig); err != nil && !errors.Is(err, os.ErrProcessDone) {
		p.t.Fatalf("clitest: signal %v: %v", sig, err)
	}
}

// WaitOutput polls the subprocess's stdout+stderr until substr appears
// and returns everything captured so far. It fails the test if the
// subprocess exits, or the timeout elapses, without producing substr.
func (p *Proc) WaitOutput(substr string, timeout time.Duration) string {
	p.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		out := p.stdout.String() + p.stderr.String()
		if strings.Contains(out, substr) {
			return out
		}
		if p.cmd.ProcessState != nil || time.Now().After(deadline) {
			p.t.Fatalf("clitest: %q did not appear in output within %v:\n%s", substr, timeout, out)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Kill SIGKILLs the subprocess — the hardest interruption a campaign can
// suffer: no signal handler runs, no buffer is flushed — and reaps it.
// The returned Result distinguishes a mid-flight kill (non-zero Code)
// from a process that had already exited cleanly before the signal
// landed (Code 0).
func (p *Proc) Kill() Result {
	p.t.Helper()
	if err := p.cmd.Process.Kill(); err != nil && !errors.Is(err, os.ErrProcessDone) {
		p.t.Fatalf("clitest: kill: %v", err)
	}
	return p.Wait()
}

// Wait reaps the subprocess and returns its output and exit code. Safe to
// call more than once.
func (p *Proc) Wait() Result {
	p.t.Helper()
	if p.waited {
		return p.res
	}
	err := p.cmd.Wait()
	p.waited = true
	p.res = Result{Stdout: p.stdout.String(), Stderr: p.stderr.String()}
	var xerr *exec.ExitError
	switch {
	case err == nil:
		p.res.Code = 0
	case errors.As(err, &xerr):
		p.res.Code = xerr.ExitCode()
	default:
		p.t.Fatalf("clitest: wait %v: %v", p.cmd.Args, err)
	}
	return p.res
}
