// Package clitest runs a command's real main() as a subprocess from its
// test package, so CLI smoke tests can assert exit status, stdout and
// stderr of the actual binary — flag parsing and os.Exit paths included.
//
// A cmd test package opts in by dispatching in TestMain:
//
//	func TestMain(m *testing.M) {
//		clitest.Dispatch(m)
//	}
//
// and then executes itself with CLI arguments:
//
//	res := clitest.Exec(t, "-o", out, "-kernels", "ttsprk")
//	if res.Code != 0 { ... }
//
// Exec re-runs the test binary with an environment marker set; Dispatch
// sees the marker in the child and calls the package's main() instead of
// the test suite.
package clitest

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"testing"
)

// EnvMarker is the environment variable that redirects a test binary
// into its package's main().
const EnvMarker = "LOCKSTEP_CLITEST_MAIN"

// mainFns is populated by the generated test binary via Register.
var mainFn func()

// Register installs the command's main func. Call it from the cmd test
// package's init (Dispatch panics without it).
func Register(main func()) { mainFn = main }

// Dispatch either runs the registered main() (in an Exec child) or the
// test suite. It never returns.
func Dispatch(m *testing.M) {
	if os.Getenv(EnvMarker) == "1" {
		if mainFn == nil {
			panic("clitest: Dispatch without Register")
		}
		mainFn()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// Result is one subprocess invocation's outcome.
type Result struct {
	Stdout string
	Stderr string
	Code   int
}

// Exec re-runs the current test binary as the command under test with
// the given CLI arguments and returns its output and exit code.
func Exec(t *testing.T, args ...string) Result {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("clitest: cannot locate test binary: %v", err)
	}
	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), EnvMarker+"=1")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err = cmd.Run()
	res := Result{Stdout: stdout.String(), Stderr: stderr.String()}
	var xerr *exec.ExitError
	switch {
	case err == nil:
		res.Code = 0
	case errors.As(err, &xerr):
		res.Code = xerr.ExitCode()
	default:
		t.Fatalf("clitest: exec %v: %v", args, err)
	}
	return res
}
