// Package avail converts error reaction times into the currency the
// paper's headline speaks — system availability. During every lockstep
// error reaction the system is not delivering its function; the expected
// annual downtime is the error arrival rate times the mean reaction time,
// and any LERT reduction converts directly into availability (Section I:
// "any reduction in the provisioned error reaction time at run time is
// safe, and increases the availability of the system").
package avail

import (
	"fmt"
	"time"
)

// Profile describes the deployment's fault environment and clock.
type Profile struct {
	// ErrorsPerHour is the rate of detected lockstep errors. Automotive
	// SEU rates are commonly quoted in FIT (failures per 1e9 device
	// hours); use FromFIT for that.
	ErrorsPerHour float64
	// ClockHz converts reaction cycles to wall-clock time.
	ClockHz float64
}

// FromFIT builds a profile from a FIT rate (errors per 1e9 device-hours).
func FromFIT(fit, clockHz float64) Profile {
	return Profile{ErrorsPerHour: fit / 1e9, ClockHz: clockHz}
}

// ReactionSeconds converts a reaction time in cycles to seconds.
func (p Profile) ReactionSeconds(lertCycles float64) float64 {
	if p.ClockHz <= 0 {
		return 0
	}
	return lertCycles / p.ClockHz
}

const secondsPerYear = 365 * 24 * 3600

// annualDowntimeSeconds computes the expected reaction seconds per year,
// in float to stay safe from time.Duration overflow on absurd inputs.
func (p Profile) annualDowntimeSeconds(meanLERTCycles float64) float64 {
	const hoursPerYear = 24 * 365
	return p.ErrorsPerHour * hoursPerYear * p.ReactionSeconds(meanLERTCycles)
}

// AnnualDowntime is the expected time per year spent inside error
// reactions (not delivering the function) for a given mean LERT. The
// result saturates at one year.
func (p Profile) AnnualDowntime(meanLERTCycles float64) time.Duration {
	seconds := p.annualDowntimeSeconds(meanLERTCycles)
	if seconds >= secondsPerYear {
		seconds = secondsPerYear
	}
	return time.Duration(seconds * float64(time.Second))
}

// Availability is the fraction of the year the system is not inside an
// error reaction.
func (p Profile) Availability(meanLERTCycles float64) float64 {
	down := p.annualDowntimeSeconds(meanLERTCycles)
	if down >= secondsPerYear {
		return 0
	}
	return 1 - down/secondsPerYear
}

// Improvement compares two models' mean LERTs: the relative downtime
// reduction (the paper's 42-65% availability-increase metric) and the
// absolute annual downtime saved.
type Improvement struct {
	DowntimeReduction float64 // 1 - after/before
	AnnualSaved       time.Duration
}

// Compare computes the improvement of moving from baseline to improved
// mean LERT.
func (p Profile) Compare(baselineLERT, improvedLERT float64) Improvement {
	var imp Improvement
	if baselineLERT > 0 {
		imp.DowntimeReduction = 1 - improvedLERT/baselineLERT
	}
	imp.AnnualSaved = p.AnnualDowntime(baselineLERT) - p.AnnualDowntime(improvedLERT)
	return imp
}

// String renders the improvement for reports.
func (i Improvement) String() string {
	return fmt.Sprintf("downtime -%0.1f%% (%v/year saved)",
		100*i.DowntimeReduction, i.AnnualSaved.Round(time.Microsecond))
}
