package avail

import (
	"math"
	"testing"
	"time"
)

func TestFromFIT(t *testing.T) {
	p := FromFIT(1000, 400e6) // 1000 FIT at 400 MHz
	if p.ErrorsPerHour != 1e-6 {
		t.Fatalf("errors/hour = %v", p.ErrorsPerHour)
	}
}

func TestReactionSeconds(t *testing.T) {
	p := Profile{ClockHz: 400e6}
	if got := p.ReactionSeconds(400e6); got != 1 {
		t.Fatalf("1s of cycles = %v s", got)
	}
	if (Profile{}).ReactionSeconds(1000) != 0 {
		t.Fatal("zero clock should not divide")
	}
}

func TestAnnualDowntimeScalesLinearly(t *testing.T) {
	p := Profile{ErrorsPerHour: 0.001, ClockHz: 100e6}
	d1 := p.AnnualDowntime(1_000_000)
	d2 := p.AnnualDowntime(2_000_000)
	if d2 != 2*d1 {
		t.Fatalf("downtime not linear: %v vs %v", d1, d2)
	}
	// 0.001 errors/hour * 8760 h * (1e6 / 1e8 s) = 8.76 * 0.01 s = 87.6ms.
	want := 87.6 * float64(time.Millisecond)
	if math.Abs(float64(d1)-want) > float64(time.Millisecond) {
		t.Fatalf("downtime %v, want ~87.6ms", d1)
	}
}

func TestAvailabilityBounds(t *testing.T) {
	p := Profile{ErrorsPerHour: 1e-6, ClockHz: 400e6}
	a := p.Availability(500_000)
	if a <= 0.999999 || a > 1 {
		t.Fatalf("availability %v implausible for rare errors", a)
	}
	// A pathological profile cannot go negative.
	bad := Profile{ErrorsPerHour: 1e12, ClockHz: 1}
	if got := bad.Availability(1e12); got != 0 {
		t.Fatalf("availability floor broken: %v", got)
	}
}

func TestCompare(t *testing.T) {
	p := Profile{ErrorsPerHour: 0.01, ClockHz: 100e6}
	imp := p.Compare(1_000_000, 350_000)
	if math.Abs(imp.DowntimeReduction-0.65) > 1e-9 {
		t.Fatalf("reduction %v, want 0.65", imp.DowntimeReduction)
	}
	if imp.AnnualSaved <= 0 {
		t.Fatal("no downtime saved")
	}
	if (Profile{}).Compare(0, 10).DowntimeReduction != 0 {
		t.Fatal("zero baseline should not divide")
	}
	if imp.String() == "" {
		t.Fatal("empty string rendering")
	}
}

// TestPaperHeadline: with the paper's numbers (pred-comb 65% faster than
// base-manifest), the availability improvement equals the LERT reduction.
func TestPaperHeadline(t *testing.T) {
	p := FromFIT(500, 400e6)
	base, comb := 670_000.0, 234_500.0 // paper's base-manifest and 0.35x
	imp := p.Compare(base, comb)
	if imp.DowntimeReduction < 0.64 || imp.DowntimeReduction > 0.66 {
		t.Fatalf("headline reduction %v, want ~0.65", imp.DowntimeReduction)
	}
}
