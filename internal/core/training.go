package core

import (
	"math/rand"

	"lockstep/internal/dataset"
)

// TrainSplit is the one training entrypoint shared by every consumer of
// the pipeline — the lockstep-train CLI and lockstep-serve's server-side
// training (POST /v1/tables, campaign "train":true) both call it, which
// is what makes a table trained online byte-identical to one trained
// offline from the same dataset and parameters (the training-parity test
// in internal/server holds them to it).
//
// The dataset is partitioned with dataset.Split under the caller's rng —
// trainFrac 1 still runs the split (every record lands in the training
// partition, in the split's shuffled order), so the interning order of
// diverged-SC sets, and therefore the serialized table image, depends
// only on (dataset, gran, topK, trainFrac, seed). The rng is advanced
// exactly as a direct Split would advance it, so callers interleaving
// further draws (lockstep-train's balanced held-out evaluation) are
// unchanged.
func TrainSplit(ds *dataset.Dataset, rng *rand.Rand, gran Granularity, topK int, trainFrac float64) (table *Table, train, test *dataset.Dataset) {
	train, test = ds.Split(rng, trainFrac)
	return Train(train, gran, topK), train, test
}
