package core

import (
	"math/rand"

	"lockstep/internal/cpu"
)

// Frontend models the error-correlation prediction hardware of the paper's
// Figure 6 (the red box): the T-bit Divergence Status Register fed by the
// checker's per-SC OR-reduction trees, the address-mapping logic, and the
// Prediction Table Address Register. The prediction table itself lives in
// (ECC-protected) on- or off-chip memory; the lockstep error handler
// software reads the PTAR and fetches the entry.
type Frontend struct {
	Table *Table

	DSR  uint64 // latched diverged-SC map (reset to zero)
	PTAR int    // latched prediction table address
	Hit  bool   // PTAR points at a trained entry (vs the default entry)
}

// DSRBits is the Divergence Status Register width: one bit per SC.
const DSRBits = cpu.NumSC

// LatchError captures the checker's diverged-SC map at error detection:
// the DSR latches the map and the address-mapping logic resolves it into
// the PTAR. Unobserved sets map to the default entry (table index
// Dict.Len()).
func (f *Frontend) LatchError(dsr uint64) {
	f.DSR = dsr
	if id, ok := f.Table.Dict.ID(dsr); ok {
		f.PTAR = id
		f.Hit = true
	} else {
		f.PTAR = f.Table.Dict.Len()
		f.Hit = false
	}
}

// ReadEntry is what the error-handler software does with the PTAR: fetch
// the prediction entry from the table memory.
func (f *Frontend) ReadEntry() Prediction {
	return f.Table.Predict(f.DSR)
}

// Reset clears the DSR and PTAR for the next error.
func (f *Frontend) Reset() {
	f.DSR = 0
	f.PTAR = 0
	f.Hit = false
}

// Dynamic is the dynamically updated predictor the paper's Discussion
// (Section VII) contemplates and argues against: the table starts empty
// and entries are updated with error history, like a branch predictor.
// Because errors are rare, accumulating history takes far longer than for
// branches — the ablation benchmark quantifies exactly that.
type Dynamic struct {
	Gran Granularity
	dict *SetDict
	unit [][]float64 // per set: histogram over units
	hard []int
	soft []int
	// defaults when a set has no history yet
	globalUnit []float64
}

// NewDynamic returns an empty dynamic predictor.
func NewDynamic(gran Granularity) *Dynamic {
	return &Dynamic{
		Gran:       gran,
		dict:       NewSetDict(),
		globalUnit: make([]float64, gran.Units()),
	}
}

// Predict returns the current prediction for a DSR. With no history for
// the set, the global histogram order is used and the type defaults to
// hard (the safe assumption).
func (d *Dynamic) Predict(dsr uint64) Prediction {
	if id, ok := d.dict.ID(dsr); ok && d.hard[id]+d.soft[id] > 0 {
		scores := make([]float64, len(d.unit[id]))
		copy(scores, d.unit[id])
		return Prediction{
			Units: orderFromScores(scores),
			Hard:  d.hard[id] >= d.soft[id],
			Known: true,
		}
	}
	return Prediction{
		Units: orderFromScores(append([]float64{}, d.globalUnit...)),
		Hard:  true,
		Known: false,
	}
}

// Observe updates the history after diagnosis has established the ground
// truth for a detected error.
func (d *Dynamic) Observe(dsr uint64, unit int, hard bool) {
	id := d.dict.Add(dsr)
	for id >= len(d.unit) {
		d.unit = append(d.unit, make([]float64, d.Gran.Units()))
		d.hard = append(d.hard, 0)
		d.soft = append(d.soft, 0)
	}
	d.unit[id][unit]++
	d.globalUnit[unit]++
	if hard {
		d.hard[id]++
	} else {
		d.soft[id]++
	}
}

// PredictOrder mirrors Table.PredictOrder for the dynamic predictor.
func (d *Dynamic) PredictOrder(dsr uint64, rng *rand.Rand) ([]uint8, bool) {
	p := d.Predict(dsr)
	return p.Units, p.Hard
}
