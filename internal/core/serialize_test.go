package core

import (
	"bytes"
	"math/rand"
	"testing"

	"lockstep/internal/dataset"
	"lockstep/internal/lockstep"
	"lockstep/internal/units"
)

func randomTrainingSet(rng *rand.Rand, n int) *dataset.Dataset {
	d := &dataset.Dataset{}
	fines := []units.Fine{
		units.FinePFU, units.FineIMC, units.FineLSU, units.FineDMC,
		units.FineBIU, units.FineSCU, units.FineDPUDiv, units.FineDPUMul,
	}
	for i := 0; i < n; i++ {
		kind := lockstep.FaultKind(rng.Intn(lockstep.NumFaultKinds))
		d.Records = append(d.Records, rec(
			rng.Uint64()%1024+1, fines[rng.Intn(len(fines))], kind))
	}
	return d
}

// TestTableSerializationRoundTrip: a deserialised table must predict
// identically to the original on every trained DSR and on unknown ones.
func TestTableSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, gran := range []Granularity{Coarse7, Fine13} {
		for _, topK := range []int{0, 3} {
			orig := Train(randomTrainingSet(rng, 500), gran, topK)
			var buf bytes.Buffer
			if _, err := orig.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			got, err := ReadTable(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if got.Gran != gran || got.TopK != topK || got.Dict.Len() != orig.Dict.Len() {
				t.Fatalf("header mismatch: %+v", got)
			}
			// Every trained set predicts identically.
			for id := 0; id < orig.Dict.Len(); id++ {
				dsr := orig.Dict.Set(id)
				a := orig.Predict(dsr)
				b := got.Predict(dsr)
				if a.Hard != b.Hard || a.Known != b.Known || len(a.Units) != len(b.Units) {
					t.Fatalf("prediction mismatch for %#x: %+v vs %+v", dsr, a, b)
				}
				for i := range a.Units {
					if a.Units[i] != b.Units[i] {
						t.Fatalf("order mismatch for %#x", dsr)
					}
				}
			}
			// Unknown sets hit an equivalent default entry.
			a := orig.Predict(0xFFFFFFFFFF)
			b := got.Predict(0xFFFFFFFFFF)
			if a.Hard != b.Hard || a.Known != b.Known {
				t.Fatalf("default mismatch: %+v vs %+v", a, b)
			}
		}
	}
}

func TestReadTableRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		// Wrong magic.
		append([]byte{0, 0, 0, 0}, make([]byte, 16)...),
	}
	for i, c := range cases {
		if _, err := ReadTable(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Valid header but truncated body.
	orig := Train(randomTrainingSet(rand.New(rand.NewSource(1)), 50), Coarse7, 0)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadTable(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated image accepted")
	}
}
