package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lockstep/internal/dataset"
	"lockstep/internal/lockstep"
	"lockstep/internal/units"
)

// rec builds a detected record for synthetic training data.
func rec(dsr uint64, fine units.Fine, kind lockstep.FaultKind) dataset.Record {
	return dataset.Record{
		Kernel: "syn", Detected: true, DSR: dsr,
		Unit: fine.Coarse(), Fine: fine, Kind: kind,
		DetectCycle: 100, InjectCycle: 50,
	}
}

// synth builds a dataset where each unit u owns DSR value 1<<u (plus a
// per-unit count), perfectly separable.
func synthSeparable(perUnit int) *dataset.Dataset {
	d := &dataset.Dataset{}
	fines := []units.Fine{
		units.FinePFU, units.FineIMC, units.FineLSU, units.FineDMC,
		units.FineBIU, units.FineSCU, units.FineDPUALU,
	}
	for u, f := range fines {
		for i := 0; i < perUnit; i++ {
			kind := lockstep.Stuck1
			if i%2 == 0 {
				kind = lockstep.SoftFlip
			}
			d.Records = append(d.Records, rec(1<<uint(u+1), f, kind))
		}
	}
	return d
}

func TestSetDictBasics(t *testing.T) {
	d := NewSetDict()
	if d.Len() != 0 {
		t.Fatal("fresh dict not empty")
	}
	a := d.Add(0xABC)
	b := d.Add(0xDEF)
	if a == b {
		t.Fatal("distinct sets share an ID")
	}
	if again := d.Add(0xABC); again != a {
		t.Fatal("Add not idempotent")
	}
	if id, ok := d.ID(0xDEF); !ok || id != b {
		t.Fatal("lookup failed")
	}
	if _, ok := d.ID(0x123); ok {
		t.Fatal("phantom lookup")
	}
	if d.Set(a) != 0xABC || d.Set(b) != 0xDEF {
		t.Fatal("reverse lookup wrong")
	}
}

// TestSetDictDenseIDs: IDs are assigned densely in insertion order.
func TestSetDictDenseIDs(t *testing.T) {
	f := func(vals []uint64) bool {
		d := NewSetDict()
		seen := map[uint64]int{}
		for _, v := range vals {
			id := d.Add(v)
			if prev, dup := seen[v]; dup {
				if id != prev {
					return false
				}
			} else {
				if id != len(seen) {
					return false
				}
				seen[v] = id
			}
		}
		return d.Len() == len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPTARBits(t *testing.T) {
	d := NewSetDict()
	if d.PTARBits() != 1 {
		t.Fatalf("empty dict PTAR %d", d.PTARBits())
	}
	for i := 0; i < 1200; i++ {
		d.Add(uint64(i + 1))
	}
	// 1201 entries (including default) need 11 bits — the paper's value.
	if d.PTARBits() != 11 {
		t.Fatalf("1200 sets -> PTAR %d bits, want 11", d.PTARBits())
	}
}

func TestTrainSeparableLocation(t *testing.T) {
	ds := synthSeparable(10)
	for _, gran := range []Granularity{Coarse7, Fine13} {
		table := Train(ds, gran, 0)
		if acc := table.LocationAccuracy(ds, 1); acc != 1 {
			t.Fatalf("%v: separable data should give top-1 accuracy 1, got %v", gran, acc)
		}
		// Every entry's order is a permutation of all units.
		for _, e := range table.Entries {
			if !isPermutation(e.Order, gran.Units()) {
				t.Fatalf("order not a permutation: %v", e.Order)
			}
		}
		if !isPermutation(table.Default.Order, gran.Units()) {
			t.Fatal("default order not a permutation")
		}
	}
}

func TestTypeBitBalancedRule(t *testing.T) {
	// Set A: 2 soft, 4 hard. Set B: 1 soft, 8 hard.
	// Class totals: soft 3, hard 12.
	// A: soft 2/3 vs hard 4/12 -> soft wins despite raw hard majority.
	// B: soft 1/3 vs hard 8/12 -> hard wins.
	d := &dataset.Dataset{}
	for i := 0; i < 2; i++ {
		d.Records = append(d.Records, rec(0b01, units.FinePFU, lockstep.SoftFlip))
	}
	for i := 0; i < 4; i++ {
		d.Records = append(d.Records, rec(0b01, units.FinePFU, lockstep.Stuck0))
	}
	d.Records = append(d.Records, rec(0b10, units.FineIMC, lockstep.SoftFlip))
	for i := 0; i < 8; i++ {
		d.Records = append(d.Records, rec(0b10, units.FineIMC, lockstep.Stuck1))
	}
	table := Train(d, Coarse7, 0)
	if p := table.Predict(0b01); p.Hard {
		t.Fatal("set A should be predicted soft under balanced scoring")
	}
	if p := table.Predict(0b10); !p.Hard {
		t.Fatal("set B should be predicted hard")
	}
}

func TestUnknownSetHitsDefault(t *testing.T) {
	table := Train(synthSeparable(5), Coarse7, 0)
	p := table.Predict(0xF00D)
	if p.Known {
		t.Fatal("unknown set reported as known")
	}
	if !p.Hard {
		t.Fatal("default entry must predict hard (Section III-C)")
	}
	if len(p.Units) != 7 {
		t.Fatalf("default order has %d units", len(p.Units))
	}
}

func TestTopKTruncation(t *testing.T) {
	ds := synthSeparable(6)
	table := Train(ds, Coarse7, 3)
	p := table.Predict(1 << 2)
	if len(p.Units) != 3 {
		t.Fatalf("top-3 table returned %d units", len(p.Units))
	}
	// The default entry is never truncated.
	if d := table.Predict(0xFFFF); len(d.Units) != 7 {
		t.Fatalf("default entry truncated to %d", len(d.Units))
	}
}

func TestPredictOrderCompletesPermutation(t *testing.T) {
	ds := synthSeparable(6)
	table := Train(ds, Coarse7, 2)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		order, _ := table.PredictOrder(1<<3, rng)
		if !isPermutation(order, 7) {
			t.Fatalf("completed order not a permutation: %v", order)
		}
		// The stored top-2 prefix must be stable.
		p := table.Predict(1 << 3)
		if order[0] != p.Units[0] || order[1] != p.Units[1] {
			t.Fatal("prefix not preserved")
		}
	}
}

func TestTableBits(t *testing.T) {
	ds := synthSeparable(4) // 7 distinct sets
	full := Train(ds, Coarse7, 0)
	// 7 units -> 3 bits/unit; full entry = 7*3+1 = 22 bits (paper's value);
	// 8 entries including default.
	if got := full.TableBits(); got != 8*22 {
		t.Fatalf("full table bits %d, want %d", got, 8*22)
	}
	top3 := Train(ds, Coarse7, 3)
	if got := top3.TableBits(); got != 8*(3*3+1) {
		t.Fatalf("top-3 table bits %d, want %d", got, 8*10)
	}
	fine := Train(ds, Fine13, 0)
	// 13 units -> 4 bits/unit; 13*4+1 = 53 bits per entry.
	if got := fine.TableBits(); got != 8*53 {
		t.Fatalf("fine table bits %d, want %d", got, 8*53)
	}
}

func TestTypeAccuracyPureSets(t *testing.T) {
	// Soft-only set and hard-only set: both classes perfectly predictable.
	d := &dataset.Dataset{}
	for i := 0; i < 10; i++ {
		d.Records = append(d.Records, rec(0b100, units.FineLSU, lockstep.SoftFlip))
		d.Records = append(d.Records, rec(0b1000, units.FineDMC, lockstep.Stuck0))
	}
	table := Train(d, Coarse7, 0)
	soft, hard, overall := table.TypeAccuracy(d)
	if soft != 1 || hard != 1 || overall != 1 {
		t.Fatalf("pure sets should be perfectly predictable: %v %v %v", soft, hard, overall)
	}
}

func TestLocationAccuracyMonotoneInK(t *testing.T) {
	// Noisy synthetic data: unit signatures overlap.
	rng := rand.New(rand.NewSource(9))
	d := &dataset.Dataset{}
	fines := []units.Fine{units.FinePFU, units.FineIMC, units.FineLSU, units.FineDMC}
	for i := 0; i < 600; i++ {
		f := fines[rng.Intn(len(fines))]
		dsr := uint64(1)<<uint(rng.Intn(4)) | uint64(1)<<uint(4+rng.Intn(2))
		d.Records = append(d.Records, rec(dsr, f, lockstep.Stuck1))
	}
	table := Train(d, Coarse7, 0)
	prev := 0.0
	for k := 1; k <= 7; k++ {
		acc := table.LocationAccuracy(d, k)
		if acc+1e-12 < prev {
			t.Fatalf("accuracy not monotone at k=%d: %v < %v", k, acc, prev)
		}
		prev = acc
	}
	if prev != 1 {
		t.Fatalf("full-order accuracy %v, want 1", prev)
	}
}

func TestFrontendLatch(t *testing.T) {
	table := Train(synthSeparable(3), Coarse7, 0)
	fe := Frontend{Table: table}
	known := uint64(1 << 1)
	fe.LatchError(known)
	if !fe.Hit || fe.DSR != known {
		t.Fatalf("latch miss: %+v", fe)
	}
	if id, _ := table.Dict.ID(known); fe.PTAR != id {
		t.Fatalf("PTAR %d, want %d", fe.PTAR, id)
	}
	p := fe.ReadEntry()
	if len(p.Units) == 0 {
		t.Fatal("empty prediction")
	}
	fe.LatchError(0xDEAD)
	if fe.Hit {
		t.Fatal("unknown set reported hit")
	}
	if fe.PTAR != table.Dict.Len() {
		t.Fatalf("default PTAR %d, want %d", fe.PTAR, table.Dict.Len())
	}
	fe.Reset()
	if fe.DSR != 0 || fe.PTAR != 0 || fe.Hit {
		t.Fatal("reset incomplete")
	}
}

func TestDynamicLearns(t *testing.T) {
	dyn := NewDynamic(Coarse7)
	// Cold: unknown, predicts hard with some default order.
	p := dyn.Predict(0b11)
	if p.Known || !p.Hard {
		t.Fatalf("cold prediction: %+v", p)
	}
	// Teach it: set 0b11 is LSU, soft.
	for i := 0; i < 5; i++ {
		dyn.Observe(0b11, int(units.LSU), false)
	}
	p = dyn.Predict(0b11)
	if !p.Known {
		t.Fatal("history not recorded")
	}
	if p.Hard {
		t.Fatal("should predict soft after soft-only history")
	}
	if p.Units[0] != uint8(units.LSU) {
		t.Fatalf("top unit %v, want LSU", p.Units[0])
	}
	// A hard observation flips the majority at 5v5? (>= rule: ties hard)
	for i := 0; i < 5; i++ {
		dyn.Observe(0b11, int(units.LSU), true)
	}
	if p = dyn.Predict(0b11); !p.Hard {
		t.Fatal("tie should predict hard (safe default)")
	}
}

func TestGranularityHelpers(t *testing.T) {
	if Coarse7.Units() != 7 || Fine13.Units() != 13 {
		t.Fatal("unit counts wrong")
	}
	r := rec(1, units.FineDPUMul, lockstep.Stuck0)
	if Coarse7.UnitOf(r) != int(units.DPU) {
		t.Fatal("coarse unit extraction wrong")
	}
	if Fine13.UnitOf(r) != int(units.FineDPUMul) {
		t.Fatal("fine unit extraction wrong")
	}
	if Coarse7.String() != "coarse-7" || Fine13.String() != "fine-13" {
		t.Fatal("granularity names")
	}
	if Coarse7.UnitName(int(units.DPU)) != "DPU" {
		t.Fatal("unit name")
	}
}

func TestUnitDistributionsAndTypeBC(t *testing.T) {
	ds := synthSeparable(8)
	dict := NewSetDict()
	hard := UnitDistributions(ds, Coarse7, dict, true)
	soft := UnitDistributions(ds, Coarse7, dict, false)
	if len(hard) != 7 || len(soft) != 7 {
		t.Fatal("wrong distribution count")
	}
	// Each populated unit's distribution sums to ~1.
	for u, dist := range hard {
		var sum float64
		for _, p := range dist {
			sum += p
		}
		if sum != 0 && (sum < 0.999 || sum > 1.001) {
			t.Fatalf("unit %d hard distribution sums to %v", u, sum)
		}
	}
	bcs := TypeBC(ds, Coarse7)
	// In the synthetic data soft and hard errors of a unit share the same
	// set, so their distributions are identical: BC = 1.
	for u, bc := range bcs {
		if bc != 0 && (bc < 0.999 || bc > 1.001) {
			t.Fatalf("unit %d type BC %v, want ~1", u, bc)
		}
	}
}

func TestSortedSetsByCount(t *testing.T) {
	d := &dataset.Dataset{}
	for i := 0; i < 3; i++ {
		d.Records = append(d.Records, rec(0b1, units.FinePFU, lockstep.Stuck0))
	}
	d.Records = append(d.Records, rec(0b10, units.FineIMC, lockstep.Stuck0))
	table := Train(d, Coarse7, 0)
	ids := table.SortedSetsByCount()
	if table.Entries[ids[0]].Count < table.Entries[ids[len(ids)-1]].Count {
		t.Fatal("not sorted by count")
	}
	if table.Dict.Set(ids[0]) != 0b1 {
		t.Fatal("most common set should be 0b1")
	}
}

func isPermutation(order []uint8, n int) bool {
	if len(order) != n {
		return false
	}
	seen := make([]bool, n)
	for _, u := range order {
		if int(u) >= n || seen[u] {
			return false
		}
		seen[u] = true
	}
	return true
}
