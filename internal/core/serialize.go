package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary prediction-table image. This is the artifact a deployment flashes
// into the (ECC-protected) memory holding the prediction table — the table
// contents are static for the lifetime of the CPUs (Section III-C), so
// they are produced once at design time by lockstep-train and loaded by
// the error handler at boot.
//
// Layout (little-endian):
//
//	magic   uint32  "LSPT"
//	version uint32  1
//	gran    uint32  7 or 13
//	topK    uint32  0 = full order
//	nsets   uint32
//	then nsets entries of:
//	  dsr     uint64
//	  hardBit uint8
//	  norder  uint8
//	  order   norder bytes
//	then the default entry in the same entry format with dsr = 0.
const (
	tableMagic   = 0x4C535054 // "LSPT"
	tableVersion = 1
)

// WriteTo serialises the table. It implements io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n := int64(0)
	put := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	gran := uint32(7)
	if t.Gran == Fine13 {
		gran = 13
	}
	for _, v := range []uint32{tableMagic, tableVersion, gran, uint32(t.TopK), uint32(t.Dict.Len())} {
		if err := put(v); err != nil {
			return n, err
		}
	}
	writeEntry := func(dsr uint64, e *Entry) error {
		if err := put(dsr); err != nil {
			return err
		}
		if err := put(boolByte(e.HardBit)); err != nil {
			return err
		}
		order := e.Order
		if t.TopK > 0 && t.TopK < len(order) {
			order = order[:t.TopK]
		}
		if err := put(uint8(len(order))); err != nil {
			return err
		}
		return put(order)
	}
	for id := range t.Entries {
		if err := writeEntry(t.Dict.Set(id), &t.Entries[id]); err != nil {
			return n, err
		}
	}
	if err := writeEntry(0, &t.Default); err != nil {
		return n, err
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	return n, nil
}

// ReadTable deserialises a table image produced by WriteTo. Probability
// scores and training counts are not part of the image (the hardware
// doesn't store them); the returned table predicts identically but cannot
// be re-analysed.
func ReadTable(r io.Reader) (*Table, error) {
	br := bufio.NewReader(r)
	var hdr [5]uint32
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("core: table header: %w", err)
		}
	}
	if hdr[0] != tableMagic {
		return nil, fmt.Errorf("core: bad table magic %#x", hdr[0])
	}
	if hdr[1] != tableVersion {
		return nil, fmt.Errorf("core: unsupported table version %d", hdr[1])
	}
	var gran Granularity
	switch hdr[2] {
	case 7:
		gran = Coarse7
	case 13:
		gran = Fine13
	default:
		return nil, fmt.Errorf("core: bad granularity %d", hdr[2])
	}
	t := &Table{Gran: gran, Dict: NewSetDict(), TopK: int(hdr[3])}
	nsets := int(hdr[4])
	readEntry := func() (uint64, Entry, error) {
		var dsr uint64
		if err := binary.Read(br, binary.LittleEndian, &dsr); err != nil {
			return 0, Entry{}, err
		}
		var hard, norder uint8
		if err := binary.Read(br, binary.LittleEndian, &hard); err != nil {
			return 0, Entry{}, err
		}
		if err := binary.Read(br, binary.LittleEndian, &norder); err != nil {
			return 0, Entry{}, err
		}
		if int(norder) > gran.Units() {
			return 0, Entry{}, fmt.Errorf("core: entry order length %d exceeds %d units",
				norder, gran.Units())
		}
		order := make([]uint8, norder)
		if _, err := io.ReadFull(br, order); err != nil {
			return 0, Entry{}, err
		}
		for _, u := range order {
			if int(u) >= gran.Units() {
				return 0, Entry{}, fmt.Errorf("core: entry references unit %d", u)
			}
		}
		return dsr, Entry{Order: order, HardBit: hard != 0}, nil
	}
	for i := 0; i < nsets; i++ {
		dsr, e, err := readEntry()
		if err != nil {
			return nil, fmt.Errorf("core: entry %d: %w", i, err)
		}
		if id := t.Dict.Add(dsr); id != i {
			return nil, fmt.Errorf("core: duplicate DSR %#x in table image", dsr)
		}
		t.Entries = append(t.Entries, e)
	}
	_, def, err := readEntry()
	if err != nil {
		return nil, fmt.Errorf("core: default entry: %w", err)
	}
	t.Default = def
	return t, nil
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}
