// Package core implements the paper's primary contribution: lockstep error
// correlation prediction. From the diverged-SC map latched in the
// Divergence Status Register (DSR) at error detection, a static predictor
// looks up (1) the likely CPU unit(s) the fault originated in, ordered by
// probability, and (2) a one-bit error-type prediction (soft vs hard).
//
// The package mirrors the hardware organisation of the paper's Figure 6 and
// the training flow of Figure 10:
//
//   - SetDict is the address-mapping logic that maps a sparse 62-bit DSR
//     value onto a dense Prediction Table Address Register (PTAR) index;
//   - Table is the prediction table: one entry per observed diverged-SC
//     set holding the ordered unit list and the error-type bit, plus the
//     extra default entry to which all unobserved sets map;
//   - Train builds the table from a training dataset by accumulating
//     per-set histograms of faulty units and fault types and converting
//     them to probability scores.
package core

import (
	"fmt"
	"math/rand"
	"sort"

	"lockstep/internal/dataset"
	"lockstep/internal/stats"
	"lockstep/internal/units"
)

// Granularity selects the CPU logical organisation the predictor works at:
// the seven coarse units of Figure 8 or the thirteen fine units of
// Section V-D (DPU split into seven sub-units).
type Granularity int

// Granularities.
const (
	Coarse7 Granularity = iota
	Fine13
)

// Units returns the number of units at this granularity.
func (g Granularity) Units() int {
	if g == Fine13 {
		return units.NumFine
	}
	return units.NumUnits
}

// UnitName names unit u at this granularity.
func (g Granularity) UnitName(u int) string {
	if g == Fine13 {
		return units.Fine(u).String()
	}
	return units.Unit(u).String()
}

// UnitOf extracts the record's faulty unit at this granularity.
func (g Granularity) UnitOf(r dataset.Record) int {
	if g == Fine13 {
		return int(r.Fine)
	}
	return int(r.Unit)
}

func (g Granularity) String() string {
	if g == Fine13 {
		return "fine-13"
	}
	return "coarse-7"
}

// SetDict is the DSR-to-PTAR address mapping: it assigns dense IDs to the
// distinct diverged-SC sets observed during training.
type SetDict struct {
	ids  map[uint64]int
	sets []uint64
}

// NewSetDict returns an empty dictionary.
func NewSetDict() *SetDict {
	return &SetDict{ids: make(map[uint64]int)}
}

// Add interns a DSR value, returning its dense ID.
func (d *SetDict) Add(dsr uint64) int {
	if id, ok := d.ids[dsr]; ok {
		return id
	}
	id := len(d.sets)
	d.ids[dsr] = id
	d.sets = append(d.sets, dsr)
	return id
}

// ID looks up a DSR value without interning.
func (d *SetDict) ID(dsr uint64) (int, bool) {
	id, ok := d.ids[dsr]
	return id, ok
}

// Len is the number of distinct sets (the paper observes ~1200 on the
// Cortex-R5; the PTAR must be wide enough to address Len()+1 entries).
func (d *SetDict) Len() int { return len(d.sets) }

// Set returns the DSR value of a dense ID.
func (d *SetDict) Set(id int) uint64 { return d.sets[id] }

// PTARBits is the Prediction Table Address Register width needed to
// address every table entry plus the default entry. The paper's 1200 sets
// need 11 bits.
func (d *SetDict) PTARBits() int {
	n := d.Len() + 1
	bits := 0
	for 1<<bits < n {
		bits++
	}
	if bits == 0 {
		bits = 1
	}
	return bits
}

// Entry is one prediction table entry (Figure 10b): CPU units in
// descending order of probability score, and the 1-bit error type
// prediction (true = hard).
type Entry struct {
	Order    []uint8   // all units, most likely first
	Scores   []float64 // probability score per unit (aligned with unit IDs)
	HardBit  bool
	SoftProb float64 // training soft-error probability of this set
	Count    int     // training samples behind this entry
}

// Table is the trained prediction table.
type Table struct {
	Gran    Granularity
	Dict    *SetDict
	Entries []Entry // indexed by set ID
	Default Entry   // the extra entry for unobserved sets
	TopK    int     // units actually stored per entry (0 = all)
}

// Prediction is the table's answer for one detected error.
type Prediction struct {
	Units []uint8 // predicted test order (TopK units if truncated)
	Hard  bool    // predicted error type
	Known bool    // false when the DSR hit the default entry
}

// Train builds a prediction table from the training dataset at the given
// granularity, per the paper's Section IV-C2: for every diverged SC set,
// the probability score of each unit is its histogram count divided by the
// set's total count, and the error-type bit is set if hard errors dominate
// the set. topK limits how many units each entry stores (0 keeps all).
func Train(train *dataset.Dataset, gran Granularity, topK int) *Table {
	nu := gran.Units()
	dict := NewSetDict()
	type hist struct {
		unit []float64
		hard int
		soft int
	}
	var hists []hist
	for _, r := range train.Records {
		if !r.Detected {
			continue
		}
		id := dict.Add(r.DSR)
		if id == len(hists) {
			hists = append(hists, hist{unit: make([]float64, nu)})
		}
		h := &hists[id]
		h.unit[gran.UnitOf(r)]++
		if r.Hard() {
			h.hard++
		} else {
			h.soft++
		}
	}
	t := &Table{Gran: gran, Dict: dict, TopK: topK}
	t.Entries = make([]Entry, len(hists))
	// Class totals for the balanced type scores: the paper's datasets are
	// class-balanced, so the per-set soft/hard probability scores compare
	// class-conditional likelihoods P(set|soft) vs P(set|hard) rather than
	// raw counts (which the campaign's 2-hard-kinds-to-1-soft injection
	// ratio would bias).
	var totalSoft, totalHard float64
	for _, h := range hists {
		totalSoft += float64(h.soft)
		totalHard += float64(h.hard)
	}
	if totalSoft == 0 {
		totalSoft = 1
	}
	if totalHard == 0 {
		totalHard = 1
	}
	// Global histogram for the default entry's unit order.
	global := make([]float64, nu)
	for id, h := range hists {
		total := float64(h.hard + h.soft)
		scores := make([]float64, nu)
		for u := range scores {
			scores[u] = h.unit[u] / total
			global[u] += h.unit[u]
		}
		order := orderFromScores(scores)
		softScore := float64(h.soft) / totalSoft
		hardScore := float64(h.hard) / totalHard
		t.Entries[id] = Entry{
			Order:    order,
			Scores:   scores,
			HardBit:  hardScore > softScore,
			SoftProb: float64(h.soft) / total,
			Count:    h.hard + h.soft,
		}
	}
	// Default entry: unobserved sets are always treated as hard errors and
	// use the default order of CPU units (Section III-C). We use the
	// global manifestation histogram as that default order.
	t.Default = Entry{
		Order:   orderFromScores(stats.Normalize(global)),
		Scores:  stats.Normalize(global),
		HardBit: true,
	}
	return t
}

func orderFromScores(scores []float64) []uint8 {
	idx := stats.ArgsortDesc(scores)
	order := make([]uint8, len(idx))
	for i, u := range idx {
		order[i] = uint8(u)
	}
	return order
}

// Predict looks up the DSR latched at error detection. Unobserved sets hit
// the default entry: type is taken to be hard and the default unit order is
// returned, with Known=false.
func (t *Table) Predict(dsr uint64) Prediction {
	id, ok := t.Dict.ID(dsr)
	var e *Entry
	if ok {
		e = &t.Entries[id]
	} else {
		e = &t.Default
	}
	order := e.Order
	if t.TopK > 0 && t.TopK < len(order) && ok {
		order = order[:t.TopK]
	}
	return Prediction{Units: order, Hard: e.HardBit, Known: ok}
}

// PredictOrder returns the full diagnostic order implied by a prediction:
// the predicted units first, then — if the entry was truncated to top-K —
// the remaining units in random order (the paper tests remaining units
// randomly so truncated predictors get no unfair ordering advantage).
func (t *Table) PredictOrder(dsr uint64, rng *rand.Rand) ([]uint8, bool) {
	p := t.Predict(dsr)
	nu := t.Gran.Units()
	if len(p.Units) == nu {
		return p.Units, p.Hard
	}
	seen := make([]bool, nu)
	order := make([]uint8, 0, nu)
	order = append(order, p.Units...)
	for _, u := range p.Units {
		seen[u] = true
	}
	rest := make([]uint8, 0, nu-len(order))
	for u := 0; u < nu; u++ {
		if !seen[u] {
			rest = append(rest, uint8(u))
		}
	}
	rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
	return append(order, rest...), p.Hard
}

// TableBits is the prediction table storage size in bits: per entry,
// unitBits per stored unit plus the 1-bit type — the sizing analysis of
// Sections V-B/V-C (e.g. 22 bits/entry for 7 units, 3.2KB for 1201
// entries).
func (t *Table) TableBits() int {
	nu := t.Gran.Units()
	unitBits := 0
	for 1<<unitBits < nu {
		unitBits++
	}
	per := t.TopK
	if per == 0 || per > nu {
		per = nu
	}
	entryBits := per*unitBits + 1
	return (t.Dict.Len() + 1) * entryBits
}

// String summarises the table.
func (t *Table) String() string {
	return fmt.Sprintf("core.Table{%s, %d sets, PTAR %d bits, %d B}",
		t.Gran, t.Dict.Len(), t.Dict.PTARBits(), (t.TableBits()+7)/8)
}

// UnitDistributions computes, for each unit, the probability distribution
// over diverged-SC sets of the given fault class — the histograms behind
// the paper's Figures 4 (hard) and 5 (soft). The set axis is the supplied
// dictionary; records whose DSR is not in dict are interned first, so pass
// a dict shared across classes for aligned axes.
func UnitDistributions(ds *dataset.Dataset, gran Granularity, dict *SetDict, hard bool) [][]float64 {
	nu := gran.Units()
	counts := make([][]float64, nu)
	for _, r := range ds.Records {
		if !r.Detected || r.Hard() != hard {
			continue
		}
		dict.Add(r.DSR)
	}
	for u := range counts {
		counts[u] = make([]float64, dict.Len())
	}
	for _, r := range ds.Records {
		if !r.Detected || r.Hard() != hard {
			continue
		}
		id, _ := dict.ID(r.DSR)
		counts[gran.UnitOf(r)][id]++
	}
	out := make([][]float64, nu)
	for u := range counts {
		out[u] = stats.Normalize(counts[u])
	}
	return out
}

// TypeBC computes, per unit, the Bhattacharyya coefficient between that
// unit's hard-error and soft-error distributions over diverged-SC sets
// (Section III-B: 0.3 for the Instruction Memory Control Unit, 0.95 for
// the Data Processing Unit, 0.6 on average on the Cortex-R5).
func TypeBC(ds *dataset.Dataset, gran Granularity) []float64 {
	dict := NewSetDict()
	hard := UnitDistributions(ds, gran, dict, true)
	soft := UnitDistributions(ds, gran, dict, false)
	out := make([]float64, gran.Units())
	for u := range out {
		h, s := hard[u], soft[u]
		// Align lengths: the dict grew while scanning soft records.
		if len(h) < len(s) {
			h = append(append([]float64{}, h...), make([]float64, len(s)-len(h))...)
		}
		out[u] = stats.Bhattacharyya(h, s)
	}
	return out
}

// Accuracy metrics ------------------------------------------------------

// TypeAccuracy scores the table's error-type prediction on a test set,
// returning (soft accuracy, hard accuracy, overall) as in Table III.
func (t *Table) TypeAccuracy(test *dataset.Dataset) (soft, hard, overall float64) {
	var softOK, softN, hardOK, hardN int
	for _, r := range test.Records {
		if !r.Detected {
			continue
		}
		p := t.Predict(r.DSR)
		if r.Hard() {
			hardN++
			if p.Hard {
				hardOK++
			}
		} else {
			softN++
			if !p.Hard {
				softOK++
			}
		}
	}
	if softN > 0 {
		soft = float64(softOK) / float64(softN)
	}
	if hardN > 0 {
		hard = float64(hardOK) / float64(hardN)
	}
	if softN+hardN > 0 {
		overall = float64(softOK+hardOK) / float64(softN+hardN)
	}
	return soft, hard, overall
}

// LocationAccuracy is the probability the faulty unit appears among the
// first k predicted units, measured over detected hard errors in the test
// set (the paper's Figures 12 and 15). k=0 uses the table's TopK.
func (t *Table) LocationAccuracy(test *dataset.Dataset, k int) float64 {
	if k <= 0 {
		k = t.TopK
	}
	if k <= 0 || k > t.Gran.Units() {
		k = t.Gran.Units()
	}
	var ok, n int
	for _, r := range test.Records {
		if !r.Detected || !r.Hard() {
			continue
		}
		n++
		p := t.Predict(r.DSR)
		lim := k
		if lim > len(p.Units) {
			lim = len(p.Units)
		}
		truth := uint8(t.Gran.UnitOf(r))
		for i := 0; i < lim; i++ {
			if p.Units[i] == truth {
				ok++
				break
			}
		}
	}
	if n == 0 {
		return 0
	}
	return float64(ok) / float64(n)
}

// SortedSetsByCount returns set IDs ordered by descending training count,
// useful for printing the head of the distribution histograms.
func (t *Table) SortedSetsByCount() []int {
	ids := make([]int, len(t.Entries))
	for i := range ids {
		ids[i] = i
	}
	sort.SliceStable(ids, func(a, b int) bool {
		return t.Entries[ids[a]].Count > t.Entries[ids[b]].Count
	})
	return ids
}
