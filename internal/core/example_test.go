package core_test

import (
	"fmt"

	"lockstep/internal/core"
	"lockstep/internal/dataset"
	"lockstep/internal/lockstep"
	"lockstep/internal/units"
)

// ExampleTrain shows the full predictor flow on a toy error log: train a
// table, then look a diverged-SC map up the way the error handler does.
func ExampleTrain() {
	log := &dataset.Dataset{}
	// Six hard errors from the LSU always produced DSR 0b0110; four soft
	// errors from the PFU produced DSR 0b1000.
	for i := 0; i < 6; i++ {
		log.Records = append(log.Records, dataset.Record{
			Kernel: "demo", Detected: true, DSR: 0b0110,
			Unit: units.LSU, Fine: units.FineLSU, Kind: lockstep.Stuck1,
		})
	}
	for i := 0; i < 4; i++ {
		log.Records = append(log.Records, dataset.Record{
			Kernel: "demo", Detected: true, DSR: 0b1000,
			Unit: units.PFU, Fine: units.FinePFU, Kind: lockstep.SoftFlip,
		})
	}

	table := core.Train(log, core.Coarse7, 0)

	p := table.Predict(0b0110)
	fmt.Printf("DSR 0110: type=%v first=%v known=%v\n",
		p.Hard, core.Coarse7.UnitName(int(p.Units[0])), p.Known)
	p = table.Predict(0b1000)
	fmt.Printf("DSR 1000: type=%v first=%v\n",
		p.Hard, core.Coarse7.UnitName(int(p.Units[0])))
	p = table.Predict(0b1111) // never seen: default entry, assume hard
	fmt.Printf("unknown : type=%v known=%v\n", p.Hard, p.Known)
	// Output:
	// DSR 0110: type=true first=LSU known=true
	// DSR 1000: type=false first=PFU
	// unknown : type=true known=false
}

// ExampleFrontend shows the hardware front-end of Figure 6: the DSR is
// latched at error detection and the address mapper resolves the PTAR.
func ExampleFrontend() {
	log := &dataset.Dataset{}
	log.Records = append(log.Records, dataset.Record{
		Kernel: "demo", Detected: true, DSR: 42,
		Unit: units.DPU, Fine: units.FineDPUALU, Kind: lockstep.Stuck0,
	})
	fe := core.Frontend{Table: core.Train(log, core.Coarse7, 0)}

	fe.LatchError(42)
	fmt.Printf("PTAR=%d hit=%v\n", fe.PTAR, fe.Hit)
	fe.LatchError(99) // unobserved set -> default entry
	fmt.Printf("PTAR=%d hit=%v\n", fe.PTAR, fe.Hit)
	// Output:
	// PTAR=0 hit=true
	// PTAR=1 hit=false
}
