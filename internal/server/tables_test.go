package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"lockstep/internal/core"
	"lockstep/internal/dataset"
	"lockstep/internal/handler"
	"lockstep/internal/sbist"
	"lockstep/internal/telemetry"
)

// jsonString JSON-encodes a byte slice as a string literal, for inlining
// the fixture CSV into request bodies.
func jsonString(t testing.TB, b []byte) string {
	t.Helper()
	out, err := json.Marshal(string(b))
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestTrainingParityWithOffline is the training-parity contract: a table
// trained via POST /v1/tables must be byte-identical — serialized image
// and every prediction — to what lockstep-train produces offline from
// the same dataset and parameters, across granularities, topK and split
// fractions. The shared entrypoint (core.TrainSplit) is what makes this
// hold; this test is what keeps the two paths from drifting.
func TestTrainingParityWithOffline(t *testing.T) {
	_, csv, _ := testFixture(t)
	cases := []struct {
		name string
		gran int
		topk int
		frac float64
	}{
		{"coarse_all_frac1", 7, 0, 1},
		{"coarse_top3_frac0.8", 7, 3, 0.8},
		{"fine_all_frac0.8", 13, 0, 0.8},
		{"fine_top3_frac1", 13, 3, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newTestServer(t, nil)
			req := fmt.Sprintf(`{"dataset_csv":%s,"granularity":%d,"topk":%d,"train_frac":%g,"seed":5}`,
				jsonString(t, csv), tc.gran, tc.topk, tc.frac)
			code, body := do(t, s, "POST", "/v1/tables", req)
			if code != http.StatusCreated {
				t.Fatalf("train: %d %v", code, body)
			}
			tbl := body["table"].(map[string]any)
			version := tbl["version"].(string)
			if body["swapped"] != true || tbl["active"] != true {
				t.Fatalf("trained table not swapped in: %v", body)
			}

			// Offline: exactly the lockstep-train pipeline on the same CSV.
			ds, err := dataset.ReadCSV(bytes.NewReader(csv))
			if err != nil {
				t.Fatal(err)
			}
			gran := core.Coarse7
			if tc.gran == 13 {
				gran = core.Fine13
			}
			rng := rand.New(rand.NewSource(5))
			offline, _, _ := core.TrainSplit(ds, rng, gran, tc.topk, tc.frac)
			var want bytes.Buffer
			if _, err := offline.WriteTo(&want); err != nil {
				t.Fatal(err)
			}

			b := s.tables.get(version)
			if b == nil {
				t.Fatalf("trained version %s not registered", version)
			}
			if !bytes.Equal(b.image, want.Bytes()) {
				t.Fatalf("server-trained image (%d bytes) differs from offline lockstep-train pipeline (%d bytes)",
					len(b.image), want.Len())
			}
			sum := sha256.Sum256(want.Bytes())
			if wantV := hex.EncodeToString(sum[:8]); version != wantV {
				t.Fatalf("version %s is not the offline image digest %s", version, wantV)
			}

			// Every prediction identical: the served table against the
			// offline handler, over every distinct detected DSR plus a
			// never-trained pattern.
			h := handler.New(offline, sbist.NewConfig(gran, nil, sbist.OnChipTableAccess))
			seen := map[uint64]bool{}
			var dsrs []uint64
			for _, r := range ds.Records {
				if r.Detected && !seen[r.DSR] {
					seen[r.DSR] = true
					dsrs = append(dsrs, r.DSR)
				}
			}
			dsrs = append(dsrs, 0x3fffffffffffffff)
			var reqB strings.Builder
			reqB.WriteString(`{"dsrs":[`)
			for i, d := range dsrs {
				if i > 0 {
					reqB.WriteByte(',')
				}
				fmt.Fprintf(&reqB, "%q", fmt.Sprintf("%x", d))
			}
			reqB.WriteString(`]}`)
			code, resp := do(t, s, "POST", "/v1/predict", reqB.String())
			if code != http.StatusOK {
				t.Fatalf("predict: %d %v", code, resp)
			}
			preds := resp["predictions"].([]any)
			if len(preds) != len(dsrs) {
				t.Fatalf("%d predictions for %d DSRs", len(preds), len(dsrs))
			}
			for i, p := range preds {
				pm := p.(map[string]any)
				wantP := h.Predict(dsrs[i])
				wantType := "soft"
				if wantP.Hard {
					wantType = "hard"
				}
				if pm["type"] != wantType || int(pm["ptar"].(float64)) != wantP.PTAR || pm["known"].(bool) != wantP.Known {
					t.Fatalf("DSR %x: served %v, offline handler says type=%s ptar=%d known=%v",
						dsrs[i], pm, wantType, wantP.PTAR, wantP.Known)
				}
				order := pm["order"].([]any)
				if len(order) != len(wantP.Order) {
					t.Fatalf("DSR %x: order length %d, want %d", dsrs[i], len(order), len(wantP.Order))
				}
				for j := range order {
					if int(order[j].(float64)) != int(wantP.Order[j]) || pm["units"].([]any)[j].(string) != wantP.Units[j] {
						t.Fatalf("DSR %x: served order %v/%v, offline %v/%v",
							dsrs[i], order, pm["units"], wantP.Order, wantP.Units)
					}
				}
			}
		})
	}
}

// TestTablesLifecycle drives the version registry end to end in process:
// list shows the startup table, training registers and swaps a new
// version (visible on predict ETags and healthz), activate rolls back,
// re-activating the live version is a no-op, and unknown versions 404.
func TestTablesLifecycle(t *testing.T) {
	_, csv, _ := testFixture(t)
	s := newTestServer(t, nil)
	v0 := s.TableVersion()
	if v0 == "" {
		t.Fatal("no startup table version")
	}

	code, body := do(t, s, "GET", "/v1/tables", "")
	if code != http.StatusOK || body["active"] != v0 {
		t.Fatalf("initial list: %d %v", code, body)
	}
	if n := len(body["tables"].([]any)); n != 1 {
		t.Fatalf("initial list has %d tables, want 1", n)
	}
	swaps0 := int(body["swaps"].(float64))

	// Predict responses carry the active version as their ETag.
	rec := doRaw(s, "POST", "/v1/predict", `{"dsr":"1"}`)
	if rec.Code != http.StatusOK || rec.Header().Get("ETag") != `"`+v0+`"` {
		t.Fatalf("predict ETag %q, want %q", rec.Header().Get("ETag"), `"`+v0+`"`)
	}

	// Train a structurally different table (fine granularity).
	code, body = do(t, s, "POST", "/v1/tables", `{"dataset_csv":`+jsonString(t, csv)+`,"granularity":13}`)
	if code != http.StatusCreated || body["swapped"] != true {
		t.Fatalf("train: %d %v", code, body)
	}
	v1 := body["table"].(map[string]any)["version"].(string)
	if v1 == v0 {
		t.Fatal("fine-granularity table has the coarse table's version")
	}
	if tr := body["training"].(map[string]any); int(tr["records"].(float64)) == 0 {
		t.Fatalf("training stats empty: %v", body)
	}

	// The swap is visible everywhere an operator would look.
	rec = doRaw(s, "POST", "/v1/predict", `{"dsr":"1"}`)
	if rec.Header().Get("ETag") != `"`+v1+`"` {
		t.Fatalf("post-swap predict ETag %q, want version %s", rec.Header().Get("ETag"), v1)
	}
	code, hz := do(t, s, "GET", "/healthz", "")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	hzTable := hz["table"].(map[string]any)
	if hzTable["version"] != v1 || hzTable["granularity"] != core.Fine13.String() {
		t.Fatalf("healthz table %v, want version %s granularity %s", hzTable, v1, core.Fine13)
	}
	if int(hzTable["swaps"].(float64)) != swaps0+1 {
		t.Fatalf("healthz swaps %v, want %d", hzTable["swaps"], swaps0+1)
	}

	code, body = do(t, s, "GET", "/v1/tables", "")
	if code != http.StatusOK || body["active"] != v1 || len(body["tables"].([]any)) != 2 {
		t.Fatalf("list after train: %d %v", code, body)
	}

	// Rollback to the startup version; re-activation is idempotent.
	code, body = do(t, s, "POST", "/v1/tables/"+v0+"/activate", "")
	if code != http.StatusOK || body["swapped"] != true {
		t.Fatalf("rollback: %d %v", code, body)
	}
	if got := s.TableVersion(); got != v0 {
		t.Fatalf("after rollback serving %s, want %s", got, v0)
	}
	code, body = do(t, s, "POST", "/v1/tables/"+v0+"/activate", "")
	if code != http.StatusOK || body["swapped"] != false {
		t.Fatalf("re-activate current: %d %v, want swapped=false", code, body)
	}
	code, body = do(t, s, "POST", "/v1/tables/ffffffffffffffff/activate", "")
	if code != http.StatusNotFound || apiErrOf(t, body)["code"] != "unknown_table" {
		t.Fatalf("activate unknown: %d %v", code, body)
	}

	// Re-training the same dataset+parameters is the same version, not a
	// new registry entry, and does not count as a swap if already active.
	code, body = do(t, s, "POST", "/v1/tables", `{"dataset_csv":`+jsonString(t, csv)+`,"granularity":13}`)
	if code != http.StatusCreated {
		t.Fatalf("retrain: %d %v", code, body)
	}
	if got := body["table"].(map[string]any)["version"].(string); got != v1 {
		t.Fatalf("retrain produced version %s, want %s", got, v1)
	}
	if n := len(s.tables.list()); n != 2 {
		t.Fatalf("registry has %d tables after retrain, want 2", n)
	}
}

// TestTablesStagedActivation: "activate": false registers a version
// without swapping it in, and a later explicit activate swaps it.
func TestTablesStagedActivation(t *testing.T) {
	_, csv, _ := testFixture(t)
	s := newTestServer(t, nil)
	v0 := s.TableVersion()
	code, body := do(t, s, "POST", "/v1/tables",
		`{"dataset_csv":`+jsonString(t, csv)+`,"granularity":13,"activate":false}`)
	if code != http.StatusCreated || body["swapped"] != false {
		t.Fatalf("staged train: %d %v", code, body)
	}
	v1 := body["table"].(map[string]any)["version"].(string)
	if got := s.TableVersion(); got != v0 {
		t.Fatalf("staged training swapped the live table to %s", got)
	}
	if code, body = do(t, s, "POST", "/v1/tables/"+v1+"/activate", ""); code != http.StatusOK {
		t.Fatalf("activate staged: %d %v", code, body)
	}
	if got := s.TableVersion(); got != v1 {
		t.Fatalf("serving %s after activating %s", got, v1)
	}
}

// TestTablesPersistenceAcrossRestart is the restart contract: table
// images and the last-activated version persist under the data
// directory, a restarted server adopts them, the persisted choice wins
// over -table, and a server started with no -table at all still serves
// the adopted version.
func TestTablesPersistenceAcrossRestart(t *testing.T) {
	_, csv, table := testFixture(t)
	dir := t.TempDir()
	drain := func(s *Server) {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Fatal(err)
		}
	}

	s1, err := New(Options{Table: table, DataDir: dir, Registry: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	v0 := s1.TableVersion()
	code, body := do(t, s1, "POST", "/v1/tables", `{"dataset_csv":`+jsonString(t, csv)+`,"granularity":13}`)
	if code != http.StatusCreated {
		t.Fatalf("train: %d %v", code, body)
	}
	v1 := body["table"].(map[string]any)["version"].(string)
	drain(s1)

	// Restart with the same -table: the persisted activation wins.
	s2, err := New(Options{Table: table, DataDir: dir, Registry: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.TableVersion(); got != v1 {
		t.Fatalf("restart serves %s, want last-activated %s", got, v1)
	}
	code, body = do(t, s2, "GET", "/v1/tables", "")
	if code != http.StatusOK || len(body["tables"].([]any)) != 2 {
		t.Fatalf("restart list: %d %v, want both versions", code, body)
	}
	// Roll back, then restart again: the rollback persists too.
	if code, body = do(t, s2, "POST", "/v1/tables/"+v0+"/activate", ""); code != http.StatusOK {
		t.Fatalf("rollback: %d %v", code, body)
	}
	drain(s2)

	// No -table at all: the adopted registry alone serves.
	s3, err := New(Options{DataDir: dir, Registry: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	if got := s3.TableVersion(); got != v0 {
		t.Fatalf("tableless restart serves %q, want rolled-back %s", got, v0)
	}
	rec := doRaw(s3, "POST", "/v1/predict", `{"dsr":"1"}`)
	if rec.Code != http.StatusOK || rec.Header().Get("ETag") != `"`+v0+`"` {
		t.Fatalf("tableless restart predict: %d ETag %q", rec.Code, rec.Header().Get("ETag"))
	}
	drain(s3)
}

// TestCampaignTrainAndSwap: a campaign submitted with "train": true
// trains from its own dataset on completion and atomically swaps the
// result in; the job status and manifest record the version, and the
// version equals training the downloaded dataset through POST /v1/tables
// with the same parameters (the two server-side paths share one
// pipeline).
func TestCampaignTrainAndSwap(t *testing.T) {
	s := newTestServer(t, nil)
	v0 := s.TableVersion()

	req := strings.TrimSuffix(campaignJSON, "}") + `,"train":true,"train_granularity":13}`
	code, body := do(t, s, "POST", "/v1/campaigns", req)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, body)
	}
	id := body["id"].(string)
	final := waitJob(t, s, id, stateDone)
	trained, _ := final["trained_table"].(string)
	if trained == "" {
		t.Fatalf("done train:true job has no trained_table: %v", final)
	}
	if errMsg, ok := final["train_error"]; ok {
		t.Fatalf("train_error: %v", errMsg)
	}
	if trained == v0 {
		t.Fatal("trained version equals the startup version; swap unobservable")
	}
	if got := s.TableVersion(); got != trained {
		t.Fatalf("serving %s after train-on-completion, want %s", got, trained)
	}

	// The version must be what POST /v1/tables produces from the job's
	// dataset with everything defaulted — the request-level defaults
	// (frac 1, seed 1) are the campaign-train defaults, so the two
	// surfaces agree without the caller spelling them out.
	code, ds := do(t, s, "GET", "/v1/campaigns/"+id+"/dataset", "")
	if code != http.StatusOK {
		t.Fatalf("dataset: %d", code)
	}
	code, body = do(t, s, "POST", "/v1/tables",
		`{"campaign":"`+id+`","granularity":13}`)
	if code != http.StatusCreated {
		t.Fatalf("retrain via /v1/tables: %d %v", code, body)
	}
	if got := body["table"].(map[string]any)["version"].(string); got != trained {
		t.Fatalf("campaign-train version %s != /v1/tables version %s on the same dataset", trained, got)
	}
	_ = ds

	// The trained version survives in the manifest: a restart's adoption
	// reports it without re-training.
	st := s.jobs.get(id).status()
	if st.TrainedTable != trained {
		t.Fatalf("job status trained_table %q, want %q", st.TrainedTable, trained)
	}
}

// TestTablesEndpointErrors: every failure mode of the tables API comes
// back as the structured envelope with its stable code.
func TestTablesEndpointErrors(t *testing.T) {
	_, csv, _ := testFixture(t)
	s := newTestServer(t, nil)
	cases := []struct {
		name   string
		body   string
		status int
		code   string
		field  string
	}{
		{"malformed JSON", "{", http.StatusBadRequest, "bad_request", ""},
		{"trailing garbage", `{"dataset_csv":"x"} {}`, http.StatusBadRequest, "bad_request", ""},
		{"unknown field", `{"dataset_csv":"x","bogus":1}`, http.StatusBadRequest, "bad_request", ""},
		{"no source", `{}`, http.StatusBadRequest, "bad_request", "campaign"},
		{"both sources", `{"campaign":"a","dataset_csv":"b"}`, http.StatusBadRequest, "bad_request", "campaign"},
		{"bad granularity", `{"dataset_csv":"x","granularity":9}`, http.StatusBadRequest, "invalid_config", "granularity"},
		{"negative topk", `{"dataset_csv":"x","topk":-1}`, http.StatusBadRequest, "invalid_config", "topk"},
		{"train_frac too big", `{"dataset_csv":"x","train_frac":1.5}`, http.StatusBadRequest, "invalid_config", "train_frac"},
		{"train_frac negative", `{"dataset_csv":"x","train_frac":-0.5}`, http.StatusBadRequest, "invalid_config", "train_frac"},
		{"garbage dataset", `{"dataset_csv":"not,a,campaign\nlog"}`, http.StatusBadRequest, "invalid_dataset", "dataset_csv"},
		{"unknown campaign", `{"campaign":"deadbeef"}`, http.StatusNotFound, "unknown_job", "campaign"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := do(t, s, "POST", "/v1/tables", tc.body)
			if code != tc.status {
				t.Fatalf("status %d, want %d (body %v)", code, tc.status, body)
			}
			e := apiErrOf(t, body)
			if e["code"] != tc.code {
				t.Fatalf("code %v, want %q", e["code"], tc.code)
			}
			if tc.field != "" && e["field"] != tc.field {
				t.Fatalf("field %v, want %q", e["field"], tc.field)
			}
		})
	}

	// A campaign that is not done yet is a 409 not_done.
	big := `{"kernels":["ttsprk"],"run_cycles":3000,"flop_stride":6,"seed":9,"checkpoint_every":8,"workers":2}`
	code, body := do(t, s, "POST", "/v1/campaigns", big)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, body)
	}
	id := body["id"].(string)
	code, body = do(t, s, "POST", "/v1/tables", `{"campaign":"`+id+`"}`)
	if code == http.StatusCreated {
		t.Log("campaign finished before the not_done probe; skipping that assertion")
	} else if code != http.StatusConflict || apiErrOf(t, body)["code"] != "not_done" {
		t.Fatalf("train from running campaign: %d %v, want 409 not_done", code, body)
	}
	waitJob(t, s, id, stateDone)

	// Campaign-referenced training without a data directory is the
	// campaign API's stable 503.
	noData := newTestServer(t, func(o *Options) { o.DataDir = "" })
	code, body = do(t, noData, "POST", "/v1/tables", `{"campaign":"deadbeef"}`)
	if code != http.StatusServiceUnavailable || apiErrOf(t, body)["code"] != "campaigns_disabled" {
		t.Fatalf("campaign train without -data: %d %v", code, body)
	}
	// Inline-dataset training needs no data directory at all.
	code, body = do(t, noData, "POST", "/v1/tables", `{"dataset_csv":`+jsonString(t, csv)+`}`)
	if code != http.StatusCreated {
		t.Fatalf("in-memory train: %d %v", code, body)
	}

	// Campaign submissions validate the train knobs too.
	code, body = do(t, s, "POST", "/v1/campaigns", `{"train":true,"train_granularity":9}`)
	if code != http.StatusBadRequest || apiErrOf(t, body)["field"] != "train_granularity" {
		t.Fatalf("bad train_granularity: %d %v", code, body)
	}
	code, body = do(t, s, "POST", "/v1/campaigns", `{"train":true,"train_topk":-1}`)
	if code != http.StatusBadRequest || apiErrOf(t, body)["field"] != "train_topk" {
		t.Fatalf("negative train_topk: %d %v", code, body)
	}
}

// TestHealthzWithoutTable: before any table has been activated, healthz
// omits the table block and predict keeps its stable 503 code.
func TestHealthzWithoutTable(t *testing.T) {
	s := newTestServer(t, func(o *Options) { o.Table = nil })
	code, body := do(t, s, "GET", "/healthz", "")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if _, ok := body["table"]; ok {
		t.Fatalf("healthz reports a table with none loaded: %v", body)
	}
	code, body = do(t, s, "GET", "/v1/tables", "")
	if code != http.StatusOK || len(body["tables"].([]any)) != 0 {
		t.Fatalf("tables list without table: %d %v", code, body)
	}
	if _, ok := body["active"]; ok {
		t.Fatalf("empty registry reports an active version: %v", body)
	}
}
