package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"lockstep/internal/inject"
	"lockstep/internal/lockstep"
	"lockstep/internal/telemetry"
)

// doHdr is do with request headers, for the X-Lockstep-Mode checks.
func doHdr(t *testing.T, s *Server, method, path, body string, hdr map[string]string) (int, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	out := map[string]any{}
	if ct := rec.Header().Get("Content-Type"); strings.Contains(ct, "json") {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("%s %s: bad JSON response %q: %v", method, path, rec.Body.String(), err)
		}
	} else {
		out["raw"] = rec.Body.String()
	}
	return rec.Code, out
}

// TestCampaignModeErrors is the server half of the Slip validation
// satellite: a bad mode string is a 400 on the "mode" field, and a
// structurally valid but unsatisfiable slip surfaces the same
// ConfigError{Field: "Slip"} rendering the lockstep-inject CLI prints —
// the two submission paths must name the offending field identically.
func TestCampaignModeErrors(t *testing.T) {
	s := newTestServer(t, nil)
	cases := []struct {
		name  string
		body  string
		field string
		msg   string
	}{
		{"unparseable mode", `{"mode":"bogus"}`, "mode", "bogus"},
		{"non-canonical slip", `{"mode":"slip:007"}`, "mode", ""},
		{"negative slip", `{"mode":"slip:-3"}`, "Slip", "config Slip: negative slip -3"},
		{"slip eats the horizon", `{"run_cycles":3000,"mode":"slip:3000"}`, "Slip", "no compare horizon"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := do(t, s, "POST", "/v1/campaigns", tc.body)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (body %v)", code, body)
			}
			e := apiErrOf(t, body)
			if e["code"] != "invalid_config" {
				t.Fatalf("error code %v, want invalid_config", e["code"])
			}
			if e["field"] != tc.field {
				t.Fatalf("error field %v, want %q", e["field"], tc.field)
			}
			if tc.msg != "" && !strings.Contains(e["message"].(string), tc.msg) {
				t.Fatalf("error message %q does not contain %q", e["message"], tc.msg)
			}
		})
	}

	// The startup table is dcls-trained; a client declaring a slip
	// deployment must be refused, a dcls (or silent) client served.
	code, body := doHdr(t, s, "POST", "/v1/predict", `{"dsr":"1"}`,
		map[string]string{"X-Lockstep-Mode": "slip:16"})
	if code != http.StatusConflict || apiErrOf(t, body)["code"] != "mode_mismatch" {
		t.Fatalf("slip client against dcls table: %d %v, want 409 mode_mismatch", code, body)
	}
	if code, body := doHdr(t, s, "POST", "/v1/predict", `{"dsr":"1"}`,
		map[string]string{"X-Lockstep-Mode": "dcls"}); code != http.StatusOK {
		t.Fatalf("dcls client against dcls table: %d %v", code, body)
	}
}

// TestCampaignModesRoundTrip is the end-to-end acceptance path of the
// mode axis: a campaign submitted with each mode over HTTP produces a
// mode-stamped dataset byte-identical to a direct run, records the mode
// in its on-disk manifest, trains-and-swaps a table bundle that carries
// the mode, and the predict path enforces it.
func TestCampaignModesRoundTrip(t *testing.T) {
	s := newTestServer(t, nil)
	dclsID := ""
	if code, body := do(t, s, "POST", "/v1/campaigns", campaignJSON); code == http.StatusAccepted || code == http.StatusOK {
		dclsID = body["id"].(string)
	} else {
		t.Fatalf("dcls submit failed: %d %v", code, body)
	}
	waitJob(t, s, dclsID, stateDone)

	for _, mode := range []string{"slip:16", "tmr"} {
		t.Run(mode, func(t *testing.T) {
			req := strings.TrimSuffix(campaignJSON, "}") + `,"mode":"` + mode + `","train":true}`
			code, body := do(t, s, "POST", "/v1/campaigns", req)
			if code != http.StatusAccepted {
				t.Fatalf("submit: %d %v", code, body)
			}
			id := body["id"].(string)
			if id == dclsID {
				t.Fatalf("%s campaign got the dcls job ID %s; modes must be distinct jobs", mode, id)
			}
			final := waitJob(t, s, id, stateDone)

			// Dataset: byte-identical to a direct run under the same mode,
			// and every record row carries the mode column.
			lsMode, err := lockstep.ParseMode(mode)
			if err != nil {
				t.Fatal(err)
			}
			cfg := trainingCampaign()
			cfg.Mode = lsMode
			want, err := inject.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var wantCSV bytes.Buffer
			if err := want.WriteCSV(&wantCSV); err != nil {
				t.Fatal(err)
			}
			code, dsBody := do(t, s, "GET", "/v1/campaigns/"+id+"/dataset", "")
			if code != http.StatusOK {
				t.Fatalf("dataset: %d", code)
			}
			got := dsBody["raw"].(string)
			if !bytes.Equal([]byte(got), wantCSV.Bytes()) {
				t.Fatalf("HTTP %s dataset differs from direct inject.Run (%d vs %d bytes)", mode, len(got), wantCSV.Len())
			}
			lines := strings.Split(strings.TrimSpace(got), "\n")
			if !strings.HasSuffix(lines[0], ",mode") {
				t.Fatalf("%s dataset header lacks the mode column: %q", mode, lines[0])
			}
			for _, line := range lines[1:] {
				if !strings.HasSuffix(line, ","+mode) {
					t.Fatalf("record without %s mode column: %q", mode, line)
				}
			}

			// Manifest: the on-disk job record names the mode.
			mf, err := os.ReadFile(s.jobs.mfPath(id))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Contains(mf, []byte(`"mode":"`+mode+`"`)) {
				t.Fatalf("manifest for %s campaign lacks the mode: %s", mode, mf)
			}

			// Table bundle: train-and-swap carried the mode into the
			// registry and the live bundle.
			trained, _ := final["trained_table"].(string)
			if trained == "" {
				t.Fatalf("train:true %s job trained no table: %v", mode, final)
			}
			if got := s.TableVersion(); got != trained {
				t.Fatalf("serving %s, want trained %s", got, trained)
			}
			code, list := do(t, s, "GET", "/v1/tables", "")
			if code != http.StatusOK {
				t.Fatalf("tables list: %d", code)
			}
			found := false
			for _, tb := range list["tables"].([]any) {
				e := tb.(map[string]any)
				if e["version"] == trained {
					found = true
					if e["mode"] != mode {
						t.Fatalf("bundle %s mode %v, want %s", trained, e["mode"], mode)
					}
				}
			}
			if !found {
				t.Fatalf("trained version %s not in tables list", trained)
			}

			// Predict: the live table now requires this mode.
			if code, body := doHdr(t, s, "POST", "/v1/predict", `{"dsr":"1"}`,
				map[string]string{"X-Lockstep-Mode": mode}); code != http.StatusOK {
				t.Fatalf("matching-mode predict: %d %v", code, body)
			}
			code, body = doHdr(t, s, "POST", "/v1/predict", `{"dsr":"1"}`,
				map[string]string{"X-Lockstep-Mode": "dcls"})
			if code != http.StatusConflict || apiErrOf(t, body)["code"] != "mode_mismatch" {
				t.Fatalf("dcls client against %s table: %d %v, want 409 mode_mismatch", mode, code, body)
			}
		})
	}
}

// TestSlipCampaignDrainResume: a slip-mode campaign drained mid-run
// resumes from its checkpoint on a fresh server (the mode rides the
// fingerprint, so resumption is only possible under the same mode) and
// finishes byte-identical to an uninterrupted run.
func TestSlipCampaignDrainResume(t *testing.T) {
	dir := t.TempDir()
	_, _, table := testFixture(t)
	s, err := New(Options{Table: table, DataDir: dir, Registry: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	big := `{"kernels":["ttsprk"],"run_cycles":3000,"flop_stride":6,"seed":9,"checkpoint_every":8,"workers":2,"mode":"slip:16"}`
	code, body := do(t, s, "POST", "/v1/campaigns", big)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, body)
	}
	id := body["id"].(string)
	for i := 0; ; i++ {
		_, st := do(t, s, "GET", "/v1/campaigns/"+id, "")
		if st["state"].(string) == stateDone {
			t.Skip("campaign finished before the drain; machine too fast for this size")
		}
		if st["done"].(float64) >= 16 {
			break
		}
		if i > 20000 {
			t.Fatal("campaign never progressed")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, st := do(t, s, "GET", "/v1/campaigns/"+id, ""); st["state"].(string) == stateDone {
		t.Skip("campaign finished between progress check and drain")
	}

	s2, err := New(Options{Table: table, DataDir: dir, Registry: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s2.Drain(ctx)
	})
	final := waitJob(t, s2, id, stateDone)
	if restored := int(final["restored"].(float64)); restored < 16 {
		t.Fatalf("resumed slip job restored %d experiments, want >= 16", restored)
	}

	cfg := trainingCampaign()
	cfg.FlopStride = 6
	cfg.Mode = lockstep.Mode{Kind: lockstep.ModeSlip, Slip: 16}
	want, err := inject.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wantCSV bytes.Buffer
	if err := want.WriteCSV(&wantCSV); err != nil {
		t.Fatal(err)
	}
	code, dsBody := do(t, s2, "GET", "/v1/campaigns/"+id+"/dataset", "")
	if code != http.StatusOK {
		t.Fatalf("dataset after resume: %d", code)
	}
	if got := dsBody["raw"].(string); !bytes.Equal([]byte(got), wantCSV.Bytes()) {
		t.Fatal("drained+resumed slip dataset differs from uninterrupted direct run")
	}
}
