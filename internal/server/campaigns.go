package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lockstep/internal/core"
	"lockstep/internal/dataset"
	"lockstep/internal/inject"
	"lockstep/internal/lockstep"
	"lockstep/internal/telemetry"
)

// maxCampaignBody bounds a campaign submission body.
const maxCampaignBody = 1 << 16

// campaignRequest is the POST /v1/campaigns body: the schedule-relevant
// subset of inject.Config (zero values take the campaign defaults), plus
// execution knobs that do not affect the resulting dataset.
type campaignRequest struct {
	Kernels               []string `json:"kernels,omitempty"`
	RunCycles             int      `json:"run_cycles,omitempty"`
	Intervals             int      `json:"intervals,omitempty"`
	InjectionsPerFlopKind int      `json:"injections_per_flop_kind,omitempty"`
	FlopStride            int      `json:"flop_stride,omitempty"`
	Kinds                 []string `json:"kinds,omitempty"`
	StopLatency           int      `json:"stop_latency,omitempty"`
	Seed                  int64    `json:"seed,omitempty"`
	// Mode is the lockstep organization the campaign runs under: "dcls"
	// (default), "slip:N" or "tmr". Mode is schedule-relevant — it is
	// part of the fingerprint, the job ID, the checkpoint and every
	// dataset row — so two submissions differing only in mode are two
	// jobs.
	Mode string `json:"mode,omitempty"`
	// Workers is the per-job experiment pool; clamped to the server's
	// InjectWorkers cap. Dataset bytes are identical at any value.
	Workers int `json:"workers,omitempty"`
	// CheckpointEvery overrides how many experiments elapse between
	// checkpoint writes (0 = inject's 4096 default).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// NoPrune disables static fault-equivalence pruning — the
	// differential-oracle path. The dataset is byte-identical either way,
	// but pruning is schedule-relevant for resumption (it is part of the
	// checkpoint fingerprint), so it is part of the job identity too.
	NoPrune bool `json:"no_prune,omitempty"`
	// Distribute runs the campaign as a distributed coordinator instead
	// of executing it locally: the server leases plan-index spans to
	// worker nodes over POST /v1/campaigns/{id}/leases and merges their
	// span submissions. The dataset is byte-identical to a local run, so
	// distribution is an execution knob, not part of the job identity.
	Distribute bool `json:"distribute,omitempty"`
	// LeaseSize overrides the coordinator's default span length
	// (0 = the server's -lease-size).
	LeaseSize int `json:"lease_size,omitempty"`
	// LeaseTTLMS overrides how long (milliseconds) a worker holds an
	// uncommitted lease before re-issue (0 = the server's -lease-ttl).
	LeaseTTLMS int `json:"lease_ttl_ms,omitempty"`
	// Train closes the campaign→train→serve loop in one submission: when
	// the job completes, its dataset is run through the shared training
	// pipeline (train_frac 1, split seed 1 — exactly what POST /v1/tables
	// with defaults would do) and the resulting table version is
	// atomically swapped into the predict path. Like workers, training is
	// an execution knob: the dataset bytes and the job identity are
	// unchanged, and a training failure is recorded on the job
	// (train_error) without failing it.
	Train bool `json:"train,omitempty"`
	// TrainGranularity is the trained table's granularity: 7 (coarse) or
	// 13 (fine); 0 means 7.
	TrainGranularity int `json:"train_granularity,omitempty"`
	// TrainTopK limits units stored per trained table entry (0 = all).
	TrainTopK int `json:"train_topk,omitempty"`
}

// faultKinds maps the wire names onto lockstep fault kinds using the
// kinds' own String() names, so the two can never drift.
func faultKinds(names []string) ([]lockstep.FaultKind, error) {
	var kinds []lockstep.FaultKind
	for _, name := range names {
		found := false
		for k := lockstep.FaultKind(0); k < lockstep.NumFaultKinds; k++ {
			if name == k.String() {
				kinds = append(kinds, k)
				found = true
				break
			}
		}
		if !found {
			var known []string
			for k := lockstep.FaultKind(0); k < lockstep.NumFaultKinds; k++ {
				known = append(known, k.String())
			}
			return nil, &inject.ConfigError{Field: "Kinds",
				Reason: fmt.Sprintf("unknown fault kind %q (known: %s)", name, strings.Join(known, ", "))}
		}
	}
	return kinds, nil
}

// parseCampaignRequest decodes and validates a campaign submission into
// a runnable inject.Config (validated via its Fingerprint, which applies
// the same normalization the campaign itself will). It is the fuzz
// surface of FuzzCampaignRequest.
func parseCampaignRequest(data []byte, maxWorkers int) (campaignRequest, inject.Config, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var req campaignRequest
	if err := dec.Decode(&req); err != nil {
		return req, inject.Config{}, errf(http.StatusBadRequest, "bad_request", "decoding request: %v", err)
	}
	if dec.More() {
		return req, inject.Config{}, errf(http.StatusBadRequest, "bad_request", "trailing data after request object")
	}
	kinds, err := faultKinds(req.Kinds)
	if err != nil {
		return req, inject.Config{}, configError(err)
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"run_cycles", req.RunCycles}, {"intervals", req.Intervals},
		{"injections_per_flop_kind", req.InjectionsPerFlopKind},
		{"flop_stride", req.FlopStride}, {"stop_latency", req.StopLatency},
		{"workers", req.Workers}, {"checkpoint_every", req.CheckpointEvery},
		{"lease_size", req.LeaseSize}, {"lease_ttl_ms", req.LeaseTTLMS},
		{"train_topk", req.TrainTopK},
	} {
		if f.v < 0 {
			return req, inject.Config{}, &apiError{Status: http.StatusBadRequest, Code: "invalid_config",
				Message: fmt.Sprintf("%s must be non-negative", f.name), Field: f.name}
		}
	}
	switch req.TrainGranularity {
	case 0, 7, 13:
	default:
		return req, inject.Config{}, &apiError{Status: http.StatusBadRequest, Code: "invalid_config",
			Message: fmt.Sprintf("train_granularity must be 7 or 13, not %d", req.TrainGranularity), Field: "train_granularity"}
	}
	mode, err := lockstep.ParseMode(req.Mode)
	if err != nil {
		return req, inject.Config{}, &apiError{Status: http.StatusBadRequest, Code: "invalid_config",
			Message: err.Error(), Field: "mode"}
	}
	cfg := inject.Config{
		Kernels:               req.Kernels,
		RunCycles:             req.RunCycles,
		Intervals:             req.Intervals,
		InjectionsPerFlopKind: req.InjectionsPerFlopKind,
		FlopStride:            req.FlopStride,
		Kinds:                 kinds,
		StopLatency:           req.StopLatency,
		Seed:                  req.Seed,
		Workers:               req.Workers,
		NoPrune:               req.NoPrune,
		Mode:                  mode,
	}
	if maxWorkers > 0 && (cfg.Workers == 0 || cfg.Workers > maxWorkers) {
		cfg.Workers = maxWorkers
	}
	if _, err := cfg.Fingerprint(); err != nil {
		return req, inject.Config{}, configError(err)
	}
	return req, cfg, nil
}

// jobID derives the job's identity from the campaign's schedule
// fingerprint: two submissions that would produce byte-identical
// datasets are the same job, making submission idempotent and restart
// adoption unambiguous. It is the same digest every distributed lease
// and span message carries (inject.Fingerprint.Digest), so the job ID
// doubles as the campaign's wire credential.
func jobID(cfg inject.Config) (string, error) {
	fp, err := cfg.Fingerprint()
	if err != nil {
		return "", err
	}
	return fp.Digest(), nil
}

// Job states.
const (
	stateQueued      = "queued"
	stateRunning     = "running"
	stateInterrupted = "interrupted" // drained mid-run; resumes on restart
	stateDone        = "done"
	stateFailed      = "failed"
)

// job is one campaign submission's lifecycle.
type job struct {
	ID    string
	Req   campaignRequest
	Cfg   inject.Config // schedule config; checkpoint/cancel wiring added at run time
	Total int

	mu     sync.Mutex
	state  string
	stats  inject.Stats
	errMsg string
	// trainedTable / trainErr record the outcome of a "train": true
	// job's post-completion training: the swapped-in table version, or
	// why training failed (the job itself still completes — its dataset
	// is valid either way).
	trainedTable string
	trainErr     string

	done atomic.Int64 // completed experiments, restored included
}

func (j *job) setState(state string) {
	j.mu.Lock()
	j.state = state
	j.mu.Unlock()
}

// manifest is the on-disk record of a job (<id>.job.json in DataDir),
// written atomically at submission and terminal transitions. Jobs whose
// manifest says queued (including drained ones) are re-queued when a
// server adopts the directory.
type manifest struct {
	ID           string          `json:"id"`
	Request      campaignRequest `json:"request"`
	Total        int             `json:"total"`
	State        string          `json:"state"` // queued | done | failed
	Stats        *inject.Stats   `json:"stats,omitempty"`
	Error        string          `json:"error,omitempty"`
	TrainedTable string          `json:"trained_table,omitempty"`
	TrainError   string          `json:"train_error,omitempty"`
}

// jobManager owns the campaign worker pool and the DataDir layout:
// <id>.job.json (manifest), <id>.ck (checkpoint), <id>.csv (dataset).
type jobManager struct {
	dir        string
	maxWorkers int
	leaseSize  int
	leaseTTL   time.Duration
	reg        *telemetry.Registry
	// tables receives the trained-and-swapped table of a "train": true
	// job on completion.
	tables *tableManager

	mu    sync.Mutex
	jobs  map[string]*job
	order []string // submission order, for listing
	// active maps a distributed job's ID to its live coordinator while
	// the job runs; the lease/span endpoints dispatch into it.
	active map[string]*inject.Coordinator

	queue    chan *job
	cancel   chan struct{}
	draining atomic.Bool
	wg       sync.WaitGroup
}

func newJobManager(opt Options, reg *telemetry.Registry, tables *tableManager) (*jobManager, error) {
	if err := os.MkdirAll(opt.DataDir, 0o755); err != nil {
		return nil, err
	}
	m := &jobManager{
		dir:        opt.DataDir,
		maxWorkers: opt.InjectWorkers,
		leaseSize:  opt.LeaseSize,
		leaseTTL:   opt.LeaseTTL,
		reg:        reg,
		tables:     tables,
		jobs:       map[string]*job{},
		active:     map[string]*inject.Coordinator{},
		queue:      make(chan *job, opt.QueueDepth),
		cancel:     make(chan struct{}),
	}
	if err := m.adopt(); err != nil {
		return nil, err
	}
	for i := 0; i < opt.CampaignWorkers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// adopt loads every persisted job from the data directory: done/failed
// jobs become visible again, queued ones (including jobs a previous
// server drained mid-run) are re-queued and will resume from their
// checkpoint.
func (m *jobManager) adopt() error {
	names, err := filepath.Glob(filepath.Join(m.dir, "*.job.json"))
	if err != nil {
		return err
	}
	sort.Strings(names)
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			return err
		}
		var mf manifest
		if err := json.Unmarshal(data, &mf); err != nil {
			return fmt.Errorf("manifest %s: %w", name, err)
		}
		_, cfg, err := parseCampaignRequest(mustJSON(mf.Request), m.maxWorkers)
		if err != nil {
			return fmt.Errorf("manifest %s: %w", name, err)
		}
		j := &job{ID: mf.ID, Req: mf.Request, Cfg: cfg, Total: mf.Total, state: mf.State}
		if mf.Stats != nil {
			j.stats = *mf.Stats
		}
		j.errMsg = mf.Error
		j.trainedTable = mf.TrainedTable
		j.trainErr = mf.TrainError
		switch mf.State {
		case stateDone:
			j.done.Store(int64(mf.Total))
		case stateFailed:
			// terminal; kept for inspection
		default:
			j.state = stateQueued
			if ck, err := inject.ReadCheckpoint(m.ckPath(j.ID)); err == nil {
				j.done.Store(int64(ck.DoneCount()))
			}
			m.queue <- j
			m.reg.Counter("server.jobs", telemetry.L("event", "adopted")).Inc()
		}
		m.jobs[j.ID] = j
		m.order = append(m.order, j.ID)
	}
	return nil
}

func mustJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return data
}

func (m *jobManager) ckPath(id string) string { return filepath.Join(m.dir, id+".ck") }
func (m *jobManager) dsPath(id string) string { return filepath.Join(m.dir, id+".csv") }
func (m *jobManager) mfPath(id string) string { return filepath.Join(m.dir, id+".job.json") }

// writeManifest atomically persists the job's manifest.
func (m *jobManager) writeManifest(j *job) error {
	j.mu.Lock()
	mf := manifest{ID: j.ID, Request: j.Req, Total: j.Total, State: j.state, Error: j.errMsg,
		TrainedTable: j.trainedTable, TrainError: j.trainErr}
	// Drained jobs persist as queued so a restart re-runs them.
	if mf.State == stateRunning || mf.State == stateInterrupted {
		mf.State = stateQueued
	}
	if j.state == stateDone {
		st := j.stats
		mf.Stats = &st
	}
	j.mu.Unlock()
	return writeFileAtomic(m.mfPath(j.ID), append(mustJSON(mf), '\n'))
}

// writeFileAtomic is temp-file + rename in the destination directory, so
// adopters never see a torn manifest or dataset.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// submit registers (or finds) the job for a validated config and queues
// it. Submission is idempotent: the same schedule yields the same job.
func (m *jobManager) submit(req campaignRequest, cfg inject.Config) (*job, bool, error) {
	id, err := jobID(cfg)
	if err != nil {
		return nil, false, configError(err)
	}
	total, err := cfg.Total()
	if err != nil {
		return nil, false, configError(err)
	}
	// A checkpoint already sitting at this job's path must belong to this
	// schedule: refuse the submission with the differing field (409
	// config_mismatch) instead of queueing a job that would fail — or
	// worse, resume foreign state — at run time. Unreadable checkpoints
	// keep today's behavior and surface when the job runs.
	if _, statErr := os.Stat(m.ckPath(id)); statErr == nil {
		if ck, rerr := inject.ReadCheckpoint(m.ckPath(id)); rerr == nil {
			if verr := ck.Validate(cfg, total); verr != nil {
				return nil, false, configError(verr)
			}
		}
	}
	m.mu.Lock()
	if j, ok := m.jobs[id]; ok {
		m.mu.Unlock()
		return j, false, nil
	}
	if m.draining.Load() {
		m.mu.Unlock()
		return nil, false, errf(http.StatusServiceUnavailable, "shutting_down", "server is draining; resubmit after restart")
	}
	j := &job{ID: id, Req: req, Cfg: cfg, Total: total, state: stateQueued}
	select {
	case m.queue <- j:
	default:
		m.mu.Unlock()
		return nil, false, errf(http.StatusTooManyRequests, "queue_full",
			"campaign queue is full (%d queued); retry later", cap(m.queue))
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.mu.Unlock()
	if err := m.writeManifest(j); err != nil {
		return nil, false, err
	}
	m.reg.Counter("server.jobs", telemetry.L("event", "submitted")).Inc()
	return j, true, nil
}

func (m *jobManager) get(id string) *job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobs[id]
}

// worker executes queued jobs until drained.
func (m *jobManager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.cancel:
			return
		case j := <-m.queue:
			m.run(j)
		}
	}
}

// run executes one campaign job under the crash-safety machinery: always
// checkpointed (so a drain or crash loses nothing), resumed when a
// checkpoint already exists, and cancelable at an experiment boundary by
// the manager's drain signal. Distributed jobs run a lease coordinator
// instead of executing locally; either way the terminal handling — and
// the resulting dataset bytes — are identical.
func (m *jobManager) run(j *job) {
	j.setState(stateRunning)
	cfg := j.Cfg
	cfg.CheckpointPath = m.ckPath(j.ID)
	cfg.CheckpointEvery = j.Req.CheckpointEvery
	if _, err := os.Stat(cfg.CheckpointPath); err == nil {
		cfg.Resume = true
	}
	if j.Req.Distribute {
		m.runDistributed(j, cfg)
		return
	}
	cfg.Cancel = m.cancel
	total := j.Total
	cfg.Progress = func(done, pending int) {
		// done/pending cover only this run's remaining work; the
		// restored prefix is the difference to the campaign total.
		j.done.Store(int64(total - pending + done))
	}

	ds, st, err := inject.RunStats(cfg)
	m.finish(j, ds, st, err)
}

// runDistributed runs one campaign job as a lease coordinator: worker
// nodes pull span leases and push completed spans over the campaign's
// lease/span endpoints, and this server only merges and checkpoints. The
// drain signal cancels it exactly like a local job — a final checkpoint
// covers every merged span and a restart resumes the campaign.
func (m *jobManager) runDistributed(j *job, cfg inject.Config) {
	dc := inject.DistConfig{LeaseSize: m.leaseSize, LeaseTTL: m.leaseTTL}
	if j.Req.LeaseSize > 0 {
		dc.LeaseSize = j.Req.LeaseSize
	}
	if j.Req.LeaseTTLMS > 0 {
		dc.LeaseTTL = time.Duration(j.Req.LeaseTTLMS) * time.Millisecond
	}
	co, err := inject.NewCoordinator(cfg, dc)
	if err != nil {
		m.finish(j, nil, inject.Stats{}, err)
		return
	}
	done, _ := co.Progress()
	j.done.Store(int64(done))
	m.mu.Lock()
	m.active[j.ID] = co
	m.mu.Unlock()
	err = co.WaitDone(m.cancel)
	m.mu.Lock()
	delete(m.active, j.ID)
	m.mu.Unlock()
	if err != nil {
		m.finish(j, nil, co.Stats(), err)
		return
	}
	ds, st, err := co.Result()
	m.finish(j, ds, st, err)
}

// coordinator returns the live coordinator of a distributed job, if any.
func (m *jobManager) coordinator(id string) *inject.Coordinator {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.active[id]
}

// finish applies one campaign run's terminal transition: interrupted
// (drained; resumes on restart), failed, or done with the dataset
// persisted atomically.
func (m *jobManager) finish(j *job, ds *dataset.Dataset, st inject.Stats, err error) {
	switch {
	case errors.Is(err, inject.ErrCanceled):
		j.mu.Lock()
		j.state = stateInterrupted
		j.stats = st
		j.mu.Unlock()
		m.reg.Counter("server.jobs", telemetry.L("event", "interrupted")).Inc()
		// Manifest already says queued; the checkpoint carries progress.
	case err != nil:
		j.mu.Lock()
		j.state = stateFailed
		j.errMsg = err.Error()
		j.mu.Unlock()
		m.writeManifest(j)
		m.reg.Counter("server.jobs", telemetry.L("event", "failed")).Inc()
	default:
		var csv strings.Builder
		if werr := ds.WriteCSV(&csv); werr == nil {
			werr = writeFileAtomic(m.dsPath(j.ID), []byte(csv.String()))
			if werr != nil {
				err = werr
			}
		} else {
			err = werr
		}
		// Train-on-completion runs after the dataset is persisted (it
		// trains from the same CSV a client downloads) but before the
		// done manifest is written: a crash mid-train leaves the job
		// queued, so a restart resumes it from the full checkpoint,
		// re-finishes, and trains again.
		if err == nil && j.Req.Train {
			m.trainJob(j)
		}
		j.mu.Lock()
		if err != nil {
			j.state = stateFailed
			j.errMsg = err.Error()
		} else {
			j.state = stateDone
			j.stats = st
			j.done.Store(int64(j.Total))
		}
		j.mu.Unlock()
		m.writeManifest(j)
		event := "completed"
		if err != nil {
			event = "failed"
		}
		m.reg.Counter("server.jobs", telemetry.L("event", event)).Inc()
	}
}

// trainJob runs a "train": true job's post-completion training through
// the shared pipeline against the job's persisted dataset — the exact
// CSV a client downloads and lockstep-train would read offline — and
// atomically swaps the resulting version into the predict path. The
// outcome is recorded on the job: the swapped-in version, or the
// training error (the job still completes; its dataset is valid).
func (m *jobManager) trainJob(j *job) {
	gran := core.Coarse7
	if j.Req.TrainGranularity == 13 {
		gran = core.Fine13
	}
	spec := trainSpec{gran: gran, topK: j.Req.TrainTopK, frac: 1, seed: 1}
	b, err := m.tables.trainFromFile(m.dsPath(j.ID), spec, "campaign "+j.ID)
	if err == nil {
		_, err = m.tables.activate(b.version)
	}
	j.mu.Lock()
	if err != nil {
		j.trainErr = err.Error()
	} else {
		j.trainedTable = b.version
	}
	j.mu.Unlock()
	event := "trained"
	if err != nil {
		event = "train_failed"
	}
	m.reg.Counter("server.jobs", telemetry.L("event", event)).Inc()
}

// drain stops accepting work, cancels running campaigns (they write a
// final checkpoint and stop at the next experiment boundary) and waits
// for the workers to exit.
func (m *jobManager) drain(ctx context.Context) error {
	if m.draining.CompareAndSwap(false, true) {
		close(m.cancel)
	}
	doneCh := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(doneCh)
	}()
	select {
	case <-doneCh:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain: %w", ctx.Err())
	}
}

// census counts jobs by state, for healthz.
func (m *jobManager) census() map[string]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := map[string]int{}
	for _, j := range m.jobs {
		j.mu.Lock()
		out[j.state]++
		j.mu.Unlock()
	}
	return out
}

// jobStatus is the wire form of a job.
type jobStatus struct {
	ID       string          `json:"id"`
	State    string          `json:"state"`
	Done     int64           `json:"done"`
	Total    int             `json:"total"`
	Restored int             `json:"restored,omitempty"`
	Failures int             `json:"failures,omitempty"`
	PerSec   float64         `json:"per_sec,omitempty"`
	Error    string          `json:"error,omitempty"`
	// TrainedTable / TrainError report a "train": true job's
	// post-completion training outcome.
	TrainedTable string          `json:"trained_table,omitempty"`
	TrainError   string          `json:"train_error,omitempty"`
	Request      campaignRequest `json:"request"`
}

func (j *job) status() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobStatus{
		ID:           j.ID,
		State:        j.state,
		Done:         j.done.Load(),
		Total:        j.Total,
		Restored:     j.stats.Restored,
		Failures:     j.stats.Failures,
		PerSec:       j.stats.PerSec,
		Error:        j.errMsg,
		TrainedTable: j.trainedTable,
		TrainError:   j.trainErr,
		Request:      j.Req,
	}
}

// ---- HTTP handlers -------------------------------------------------------

// requireJobs gates the campaign API on a configured data directory.
func (s *Server) requireJobs() (*jobManager, error) {
	if s.jobs == nil {
		return nil, errf(http.StatusServiceUnavailable, "campaigns_disabled",
			"campaign API disabled (start lockstep-serve with -data)")
	}
	return s.jobs, nil
}

// handleCampaignSubmit serves POST /v1/campaigns.
func (s *Server) handleCampaignSubmit(w http.ResponseWriter, r *http.Request) error {
	m, err := s.requireJobs()
	if err != nil {
		return err
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxCampaignBody))
	if err != nil {
		return errf(http.StatusBadRequest, "bad_request", "reading body: %v", err)
	}
	req, cfg, err := parseCampaignRequest(body, m.maxWorkers)
	if err != nil {
		return err
	}
	j, created, err := m.submit(req, cfg)
	if err != nil {
		return err
	}
	status := http.StatusOK
	if created {
		status = http.StatusAccepted
	}
	writeJSON(w, status, j.status())
	return nil
}

// handleCampaignList serves GET /v1/campaigns.
func (s *Server) handleCampaignList(w http.ResponseWriter, r *http.Request) error {
	m, err := s.requireJobs()
	if err != nil {
		return err
	}
	m.mu.Lock()
	jobs := make([]*job, 0, len(m.order))
	for _, id := range m.order {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	out := struct {
		Campaigns []jobStatus `json:"campaigns"`
	}{Campaigns: make([]jobStatus, 0, len(jobs))}
	for _, j := range jobs {
		out.Campaigns = append(out.Campaigns, j.status())
	}
	writeJSON(w, http.StatusOK, out)
	return nil
}

// lookupJob resolves the {id} path segment.
func (s *Server) lookupJob(r *http.Request) (*job, error) {
	m, err := s.requireJobs()
	if err != nil {
		return nil, err
	}
	id := r.PathValue("id")
	j := m.get(id)
	if j == nil {
		return nil, &apiError{Status: http.StatusNotFound, Code: "unknown_job",
			Message: fmt.Sprintf("no campaign job %q", id), Field: "id"}
	}
	return j, nil
}

// handleCampaignStatus serves GET /v1/campaigns/{id}.
func (s *Server) handleCampaignStatus(w http.ResponseWriter, r *http.Request) error {
	j, err := s.lookupJob(r)
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, j.status())
	return nil
}

// handleCampaignDataset serves GET /v1/campaigns/{id}/dataset: the full
// CSV once the job is done, or — with ?partial=1 — the completed prefix
// recovered from the job's latest checkpoint while it is still running,
// so long campaigns stream results incrementally.
func (s *Server) handleCampaignDataset(w http.ResponseWriter, r *http.Request) error {
	j, err := s.lookupJob(r)
	if err != nil {
		return err
	}
	st := j.status()
	if st.State == stateDone {
		f, err := os.Open(s.jobs.dsPath(j.ID))
		if err != nil {
			return errf(http.StatusInternalServerError, "dataset_missing", "job is done but its dataset is unreadable: %v", err)
		}
		defer f.Close()
		w.Header().Set("Content-Type", "text/csv")
		_, err = io.Copy(w, f)
		return err
	}
	if r.URL.Query().Get("partial") == "" {
		return &apiError{Status: http.StatusConflict, Code: "not_done",
			Message: fmt.Sprintf("job is %s (%d/%d experiments); pass ?partial=1 for the completed prefix", st.State, st.Done, st.Total)}
	}
	partial := &dataset.Dataset{}
	if ck, err := inject.ReadCheckpoint(s.jobs.ckPath(j.ID)); err == nil {
		partial.Records = ck.Records
	}
	w.Header().Set("Content-Type", "text/csv")
	return partial.WriteCSV(w)
}
