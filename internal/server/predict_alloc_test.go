package server

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"testing"
)

// predictRoundTripAllocBudget bounds the heap allocations of one full
// single-DSR predict round trip through ServeHTTP — everything the
// server does NOT own: the ServeMux route match, the per-request
// context.WithTimeout, the response recorder, header map writes, the
// labeled request counter. The server-owned part (decode, lookup,
// render) is held at exactly zero below; this budget exists so plumbing
// regressions (a stray per-request buffer, an unhoisted metric) fail CI
// too.
const predictRoundTripAllocBudget = 60

// replayBody is a resettable request body, so the round-trip measurement
// reuses one request object.
type replayBody struct {
	data []byte
	off  int
}

func (r *replayBody) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

func (r *replayBody) Close() error { return nil }

// TestPredictZeroAlloc is the allocation regression guard for the
// serving hot path, mirroring TestInjectReplayZeroAlloc on the campaign
// side: steady-state predictBytes — request decode, dense DSR→prediction
// lookup, response render — must perform zero heap allocations for
// single-DSR and batched requests over both trained and unobserved DSRs,
// and the full httptest round trip must stay within the fixed stdlib
// plumbing budget. (Skipped under -race, whose instrumentation
// allocates.)
func TestPredictZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	_, _, table := testFixture(t)
	s := newTestServer(t, func(o *Options) { o.DataDir = "" })
	ctx := context.Background()

	bodies := map[string][]byte{
		"single-known":   []byte(fmt.Sprintf(`{"dsr":"%x"}`, table.Dict.Set(0))),
		"single-unknown": []byte(`{"dsr":"3fffffffffffffff"}`),
		"single-numeric": []byte(`{"dsr":42}`),
		"batch128":       batchBody(t, 128),
	}
	for name, body := range bodies {
		t.Run(name, func(t *testing.T) {
			sc := &predictScratch{}
			if _, _, err := s.predictBytes(ctx, s.tables.current(), sc, body); err != nil {
				t.Fatal(err)
			}
			avg := testing.AllocsPerRun(200, func() {
				if _, _, err := s.predictBytes(ctx, s.tables.current(), sc, body); err != nil {
					panic(err)
				}
			})
			if avg != 0 {
				t.Fatalf("steady-state predictBytes allocates %.2f times per request, want 0", avg)
			}
		})
	}

	// The exported probe lockstep-bench uses for BENCH_serve.json must
	// agree with the strict guard.
	if allocs, err := s.PredictAllocsPerRun(bodies["single-known"]); err != nil || allocs != 0 {
		t.Fatalf("PredictAllocsPerRun = %v, %v; want 0, nil", allocs, err)
	}

	t.Run("round-trip", func(t *testing.T) {
		rb := &replayBody{data: bodies["single-known"]}
		req := httptest.NewRequest("POST", "/v1/predict", nil)
		req.Body = rb
		warm := func() {
			rb.off = 0
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != 200 {
				panic(fmt.Sprintf("round trip answered %d: %s", rec.Code, rec.Body.String()))
			}
		}
		warm()
		avg := testing.AllocsPerRun(200, warm)
		if avg > predictRoundTripAllocBudget {
			t.Fatalf("full predict round trip allocates %.1f times per request, budget %d",
				avg, predictRoundTripAllocBudget)
		}
		t.Logf("round trip: %.1f allocs/req (budget %d)", avg, predictRoundTripAllocBudget)
	})
}
