package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
)

// This file is the zero-allocation request side of the predict hot path:
// a hand-rolled scanner for the tiny /v1/predict grammar
//
//	{ "dsr": <hex-string | uint> }  |  { "dsrs": [ <hex-string | uint>, ... ] }
//
// replacing the PR-5 json.Decoder (which built a map-backed token stream
// and reflected into the request struct, several allocations per
// request). The scanner writes into caller-owned scratch and allocates
// only on error paths and on strings that actually contain escape
// sequences. decode_test.go locks its accept/reject behaviour, parsed
// values, and error status/code/field against the retained reflection
// decoder over the fuzz corpus and a randomized body mix.

// predictScratch is the pooled per-request working set: the body bytes,
// the decoded DSR batch, and the rendered response. Buffers keep their
// capacity across requests; putPredictScratch drops outliers so one huge
// batch cannot pin memory in the pool forever.
type predictScratch struct {
	body []byte
	dsrs []uint64
	out  []byte
}

var predictPool = sync.Pool{New: func() any { return new(predictScratch) }}

// Pool retention caps. A steady stream of ordinary requests (single DSRs
// up to full 1024-DSR batches) stays comfortably below these and reuses
// its buffers forever; a pathological request re-allocates once and is
// then forgotten.
const (
	maxPooledBody = 64 << 10
	maxPooledDSRs = 4096
	maxPooledOut  = 1 << 20
)

func getPredictScratch() *predictScratch { return predictPool.Get().(*predictScratch) }

func putPredictScratch(sc *predictScratch) {
	if cap(sc.body) > maxPooledBody || cap(sc.dsrs) > maxPooledDSRs || cap(sc.out) > maxPooledOut {
		return
	}
	predictPool.Put(sc)
}

// errBodyTooLarge distinguishes the 413 path of readBodyInto.
var errBodyTooLarge = fmt.Errorf("body too large")

// readBodyInto reads r to EOF into buf (reusing its capacity), failing
// with errBodyTooLarge once more than limit bytes have arrived. It is
// the pooled replacement for io.ReadAll + http.MaxBytesReader.
func readBodyInto(r io.Reader, buf []byte, limit int) ([]byte, error) {
	buf = buf[:0]
	for {
		if len(buf) == cap(buf) {
			n := 2 * cap(buf)
			if n < 512 {
				n = 512
			}
			if n > limit+1 {
				n = limit + 1
			}
			grown := make([]byte, len(buf), n)
			copy(grown, buf)
			buf = grown
		}
		n, err := r.Read(buf[len(buf) : cap(buf)])
		buf = buf[:len(buf)+n]
		if len(buf) > limit {
			return buf, errBodyTooLarge
		}
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// parsePredictInto decodes a /v1/predict body into dst (reusing its
// capacity) and returns the DSR batch to look up. Errors carry the same
// status, code and field the reflection decoder produced, in the same
// precedence order: decode errors first, then mutual exclusion, missing
// field, and batch size.
func parsePredictInto(data []byte, dst []uint64, maxBatch int) ([]uint64, error) {
	p := predictParser{b: data}
	p.ws()

	// encoding/json decodes a top-level null into the request struct as a
	// no-op, which then fails the required-field check.
	if p.lit("null") {
		p.ws()
		if p.i < len(p.b) {
			return nil, errTrailing()
		}
		return nil, errMissingDSR()
	}
	if !p.eat('{') {
		return nil, p.syntaxErr("request is not a JSON object")
	}

	var (
		hasDSR, hasDSRs bool
		single          uint64
		count           int
	)
	dst = dst[:0]
	p.ws()
	if !p.eat('}') {
		for {
			key, err := p.key()
			if err != nil {
				return nil, err
			}
			switch key {
			case keyDSR:
				v, null, err := p.value()
				if err != nil {
					return nil, err
				}
				// null leaves the field unset, as with a *dsrValue.
				if !null {
					hasDSR = true
					single = v
				}
			case keyDSRs:
				if p.lit("null") {
					break // null leaves the field unset
				}
				// A repeated key replaces the earlier array, as
				// encoding/json's last-wins semantics do.
				hasDSRs = true
				dst = dst[:0]
				count = 0
				if !p.eat('[') {
					return nil, p.syntaxErr("dsrs is not an array")
				}
				p.ws()
				if !p.eat(']') {
					for {
						v, null, err := p.value()
						if err != nil {
							return nil, err
						}
						if null {
							return nil, p.syntaxErr("null is not a DSR")
						}
						dst = append(dst, v)
						count++
						p.ws()
						if p.eat(',') {
							p.ws()
							continue
						}
						if p.eat(']') {
							break
						}
						return nil, p.syntaxErr("malformed dsrs array")
					}
				}
			}
			p.ws()
			if p.eat(',') {
				p.ws()
				continue
			}
			if p.eat('}') {
				break
			}
			return nil, p.syntaxErr("malformed request object")
		}
	}
	p.ws()
	if p.i < len(p.b) {
		return nil, errTrailing()
	}

	switch {
	case hasDSR && hasDSRs:
		return nil, &apiError{Status: http.StatusBadRequest, Code: "bad_request",
			Message: "dsr and dsrs are mutually exclusive", Field: "dsr"}
	case hasDSR:
		return append(dst[:0], single), nil
	case !hasDSRs || count == 0:
		return nil, errMissingDSR()
	case count > maxBatch:
		return nil, &apiError{Status: http.StatusRequestEntityTooLarge, Code: "batch_too_large",
			Message: fmt.Sprintf("batch of %d DSRs exceeds the %d limit", count, maxBatch), Field: "dsrs"}
	}
	return dst, nil
}

func errMissingDSR() *apiError {
	return &apiError{Status: http.StatusBadRequest, Code: "bad_request",
		Message: "one of dsr or dsrs is required", Field: "dsr"}
}

func errTrailing() *apiError {
	return errf(http.StatusBadRequest, "bad_request", "trailing data after request object")
}

// predictParser is a cursor over the request bytes.
type predictParser struct {
	b []byte
	i int
}

// Request keys. Field matching is case-insensitive without an exact-case
// competitor, as encoding/json's is.
type predictKey int

const (
	keyDSR predictKey = iota
	keyDSRs
)

func (p *predictParser) ws() {
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case ' ', '\t', '\n', '\r':
			p.i++
		default:
			return
		}
	}
}

// eat consumes c if it is next.
func (p *predictParser) eat(c byte) bool {
	if p.i < len(p.b) && p.b[p.i] == c {
		p.i++
		return true
	}
	return false
}

// lit consumes the literal s if it is next.
func (p *predictParser) lit(s string) bool {
	if len(p.b)-p.i >= len(s) && string(p.b[p.i:p.i+len(s)]) == s {
		p.i += len(s)
		return true
	}
	return false
}

func (p *predictParser) syntaxErr(why string) *apiError {
	return errf(http.StatusBadRequest, "bad_request", "decoding request: %s (at byte %d)", why, p.i)
}

// key parses `"name" ws ':' ws` and resolves it to a known field.
// Unknown fields are errors, as DisallowUnknownFields made them.
func (p *predictParser) key() (predictKey, error) {
	if !p.eat('"') {
		return 0, p.syntaxErr("expected object key")
	}
	start := p.i
	for p.i < len(p.b) {
		c := p.b[p.i]
		if c == '"' {
			break
		}
		// A key containing escapes or control bytes cannot spell a known
		// field the way clients write them; reject without unescaping.
		if c == '\\' || c < 0x20 {
			return 0, p.syntaxErr("unsupported object key")
		}
		p.i++
	}
	if !p.eat('"') {
		return 0, p.syntaxErr("unterminated object key")
	}
	name := p.b[start : p.i-1]
	p.ws()
	if !p.eat(':') {
		return 0, p.syntaxErr("expected ':' after object key")
	}
	p.ws()
	switch {
	case foldEq(name, "dsr"):
		return keyDSR, nil
	case foldEq(name, "dsrs"):
		return keyDSRs, nil
	}
	return 0, errf(http.StatusBadRequest, "bad_request",
		"decoding request: json: unknown field %q", name)
}

// foldEq is an ASCII case-insensitive comparison (the only fold that can
// matter for these field names).
func foldEq(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != s[i] {
			return false
		}
	}
	return true
}

// value parses one DSR value: a hex string ("1a2b" or "0x1a2b", the
// dataset CSV convention), a non-negative JSON integer, or null
// (reported via the second return).
func (p *predictParser) value() (uint64, bool, error) {
	if p.i >= len(p.b) {
		return 0, false, p.syntaxErr("unexpected end of request")
	}
	switch c := p.b[p.i]; {
	case c == '"':
		v, err := p.hexString()
		return v, false, err
	case c >= '0' && c <= '9':
		v, err := p.number()
		return v, false, err
	case p.lit("null"):
		return 0, true, nil
	}
	return 0, false, p.badValue()
}

// badValue reports a value that is neither hex string nor non-negative
// integer, echoing the offending token like the reflection decoder did.
func (p *predictParser) badValue() *apiError {
	end := p.i
	for end < len(p.b) {
		switch p.b[end] {
		case ',', ']', '}', ' ', '\t', '\n', '\r':
			return errf(http.StatusBadRequest, "bad_request",
				"DSR %s is not a hex string or non-negative integer", p.b[p.i:end])
		}
		end++
	}
	return errf(http.StatusBadRequest, "bad_request",
		"DSR %s is not a hex string or non-negative integer", p.b[p.i:end])
}

// hexString parses a quoted hex DSR. Strings without escape sequences —
// every real client's — are sliced straight from the body; a string with
// escapes takes a one-off allocating fallback through encoding/json so
// exotic spellings keep decoding exactly as before.
func (p *predictParser) hexString() (uint64, error) {
	start := p.i // at the opening quote
	p.i++
	for p.i < len(p.b) {
		c := p.b[p.i]
		if c == '"' {
			s := p.b[start+1 : p.i]
			p.i++
			v, ok := parseHexDSR(s)
			if !ok {
				return 0, errf(http.StatusBadRequest, "bad_request",
					"DSR %q is not a hex diverged-SC map", s)
			}
			return v, nil
		}
		if c == '\\' {
			return p.hexStringSlow(start)
		}
		if c < 0x20 {
			return 0, p.syntaxErr("control character in string")
		}
		p.i++
	}
	return 0, p.syntaxErr("unterminated string")
}

// hexStringSlow re-parses an escaped string from its opening quote with
// encoding/json, then hex-decodes the unescaped value.
func (p *predictParser) hexStringSlow(start int) (uint64, error) {
	i := start + 1
	for i < len(p.b) {
		switch p.b[i] {
		case '\\':
			i += 2
			continue
		case '"':
			raw := p.b[start : i+1]
			var s string
			if err := json.Unmarshal(raw, &s); err != nil {
				return 0, errf(http.StatusBadRequest, "bad_request", "decoding request: %v", err)
			}
			p.i = i + 1
			v, ok := parseHexDSR([]byte(s))
			if !ok {
				return 0, errf(http.StatusBadRequest, "bad_request",
					"DSR %q is not a hex diverged-SC map", s)
			}
			return v, nil
		}
		i++
	}
	return 0, p.syntaxErr("unterminated string")
}

// parseHexDSR mirrors strconv.ParseUint(s, 16, 64) after the "0x"/"0X"
// prefix trim the dsrValue decoder applied, without converting s to a
// string.
func parseHexDSR(s []byte) (uint64, bool) {
	if len(s) >= 2 && s[0] == '0' && s[1] == 'x' {
		s = s[2:]
	}
	if len(s) >= 2 && s[0] == '0' && s[1] == 'X' {
		s = s[2:]
	}
	if len(s) == 0 {
		return 0, false
	}
	var v uint64
	for _, c := range s {
		var d uint64
		switch {
		case '0' <= c && c <= '9':
			d = uint64(c - '0')
		case 'a' <= c && c <= 'f':
			d = uint64(c-'a') + 10
		case 'A' <= c && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, false
		}
		if v > math.MaxUint64>>4 {
			return 0, false // overflow
		}
		v = v<<4 | d
	}
	return v, true
}

// number parses a non-negative JSON integer. Fractions, exponents and
// leading zeros are rejected, as the json grammar or ParseUint rejected
// them before.
func (p *predictParser) number() (uint64, error) {
	start := p.i
	var v uint64
	for p.i < len(p.b) {
		c := p.b[p.i]
		if c < '0' || c > '9' {
			break
		}
		d := uint64(c - '0')
		if v > (math.MaxUint64-d)/10 {
			return 0, errf(http.StatusBadRequest, "bad_request",
				"DSR %s is not a hex string or non-negative integer", p.b[start:p.i+1])
		}
		v = v*10 + d
		p.i++
	}
	digits := p.i - start
	if digits > 1 && p.b[start] == '0' {
		return 0, p.syntaxErr("number has a leading zero")
	}
	if p.i < len(p.b) {
		switch p.b[p.i] {
		case ',', ']', '}', ' ', '\t', '\n', '\r':
		default:
			return 0, p.syntaxErr("malformed number")
		}
	}
	return v, nil
}
