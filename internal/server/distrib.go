// Distributed-campaign endpoints: span leases out, completed spans in.
//
// Two POST routes per campaign carry the whole protocol, with bodies in
// the versioned inject wire codec (application/octet-stream):
//
//	POST /v1/campaigns/{id}/leases — LeaseRequest in, LeaseReply out
//	POST /v1/campaigns/{id}/spans  — SpanSubmit in, SpanReply out
//
// {id} is the campaign's schedule-fingerprint digest, and every message
// carries the digest again in its body: a worker joined to the wrong
// campaign (or built against a different trace version) is refused with
// 409 fingerprint_mismatch before it can touch the dataset. The same two
// routes are served by any lockstep-serve running a distribute:true
// campaign job, and by the standalone Distributor that backs
// `lockstep-inject -distribute` — workers cannot tell the difference.
package server

import (
	"fmt"
	"io"
	"net/http"
	"time"

	"lockstep/internal/inject"
)

// Body limits for the distributed-campaign endpoints. A span submission
// carries up to maxLeaseSpan records at ~30 encoded bytes each; 16 MiB
// leaves generous headroom without letting a client stream arbitrarily.
const (
	maxLeaseBody = 4 << 10
	maxSpanBody  = 16 << 20
)

// readWireBody reads a size-capped binary request body.
func readWireBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		return nil, errf(http.StatusBadRequest, "bad_request", "reading body: %v", err)
	}
	return body, nil
}

// writeWire renders a wire-encoded reply.
func writeWire(w http.ResponseWriter, data []byte) error {
	w.Header().Set("Content-Type", "application/octet-stream")
	_, err := w.Write(data)
	return err
}

// serveLease runs one lease request against a live coordinator.
func serveLease(co *inject.Coordinator, w http.ResponseWriter, r *http.Request) error {
	body, err := readWireBody(w, r, maxLeaseBody)
	if err != nil {
		return err
	}
	req, err := inject.DecodeLeaseRequest(body)
	if err != nil {
		return injectAPIError(err)
	}
	reply, err := co.Acquire(req.Worker, req.Digest, req.Want)
	if err != nil {
		return injectAPIError(err)
	}
	data, err := reply.Encode()
	if err != nil {
		return err
	}
	return writeWire(w, data)
}

// serveSpan runs one span submission against a live coordinator and
// reports the campaign-wide merged count after it.
func serveSpan(co *inject.Coordinator, w http.ResponseWriter, r *http.Request) (int, error) {
	body, err := readWireBody(w, r, maxSpanBody)
	if err != nil {
		return 0, err
	}
	sub, err := inject.DecodeSpanSubmit(body)
	if err != nil {
		return 0, injectAPIError(err)
	}
	reply, err := co.Commit(sub)
	if err != nil {
		return 0, injectAPIError(err)
	}
	return reply.Done, writeWire(w, reply.Encode())
}

// handleCampaignLease serves POST /v1/campaigns/{id}/leases.
func (s *Server) handleCampaignLease(w http.ResponseWriter, r *http.Request) error {
	j, err := s.lookupJob(r)
	if err != nil {
		return err
	}
	if co := s.jobs.coordinator(j.ID); co != nil {
		return serveLease(co, w, r)
	}
	// No live coordinator: the job is done, not yet started, or not
	// distributed at all. Authenticate the request digest against the
	// job ID (they are the same fingerprint digest) and answer with a
	// terminal or wait reply so late and early workers behave sanely.
	body, err := readWireBody(w, r, maxLeaseBody)
	if err != nil {
		return err
	}
	req, err := inject.DecodeLeaseRequest(body)
	if err != nil {
		return injectAPIError(err)
	}
	if req.Digest != j.ID {
		return injectAPIError(&inject.StaleFingerprintError{Got: req.Digest, Want: j.ID})
	}
	fp, err := j.Cfg.Fingerprint()
	if err != nil {
		return configError(err)
	}
	st := j.status()
	reply := &inject.LeaseReply{Total: j.Total, Done: int(st.Done), FP: fp}
	switch {
	case st.State == stateDone:
		reply.Status = inject.LeaseDone
	case j.Req.Distribute && st.State != stateFailed:
		// Queued or between adoption and coordinator start: ask the
		// worker to retry shortly.
		reply.Status = inject.LeaseWait
		reply.Retry = 250 * time.Millisecond
	default:
		return &apiError{Status: http.StatusConflict, Code: "not_distributed",
			Message: fmt.Sprintf("campaign %s is %s and not serving leases (submit it with distribute:true)", j.ID, st.State)}
	}
	data, err := reply.Encode()
	if err != nil {
		return err
	}
	return writeWire(w, data)
}

// handleCampaignSpan serves POST /v1/campaigns/{id}/spans.
func (s *Server) handleCampaignSpan(w http.ResponseWriter, r *http.Request) error {
	j, err := s.lookupJob(r)
	if err != nil {
		return err
	}
	if co := s.jobs.coordinator(j.ID); co != nil {
		done, err := serveSpan(co, w, r)
		if err == nil {
			j.done.Store(int64(done))
		}
		return err
	}
	body, err := readWireBody(w, r, maxSpanBody)
	if err != nil {
		return err
	}
	sub, err := inject.DecodeSpanSubmit(body)
	if err != nil {
		return injectAPIError(err)
	}
	if sub.Digest != j.ID {
		return injectAPIError(&inject.StaleFingerprintError{Got: sub.Digest, Want: j.ID})
	}
	if j.status().State == stateDone {
		// The campaign finished without this span: it was re-issued and
		// merged from another worker. Ack as the duplicate it is.
		reply := &inject.SpanReply{Duplicate: true, Done: j.Total, Total: j.Total}
		return writeWire(w, reply.Encode())
	}
	return &apiError{Status: http.StatusConflict, Code: "not_distributed",
		Message: fmt.Sprintf("campaign %s has no live coordinator to accept spans", j.ID)}
}

// Distributor serves the distributed-campaign wire endpoints for exactly
// one coordinator — the `lockstep-inject -distribute` topology, where a
// campaign CLI is the coordinator and no full lockstep-serve exists. The
// routes match lockstep-serve's byte for byte, so `lockstep-inject
// -join` works identically against either.
type Distributor struct {
	co  *inject.Coordinator
	mux *http.ServeMux
}

// NewDistributor builds the handler for co.
func NewDistributor(co *inject.Coordinator) *Distributor {
	d := &Distributor{co: co, mux: http.NewServeMux()}
	d.mux.HandleFunc("POST /v1/campaigns/{id}/leases", d.wrap(func(w http.ResponseWriter, r *http.Request) error {
		return serveLease(d.co, w, r)
	}))
	d.mux.HandleFunc("POST /v1/campaigns/{id}/spans", d.wrap(func(w http.ResponseWriter, r *http.Request) error {
		_, err := serveSpan(d.co, w, r)
		return err
	}))
	d.mux.HandleFunc("GET /v1/campaigns/{id}", d.wrap(func(w http.ResponseWriter, r *http.Request) error {
		done, total := d.co.Progress()
		state := stateRunning
		if done == total {
			state = stateDone
		}
		writeJSON(w, http.StatusOK, struct {
			ID    string `json:"id"`
			State string `json:"state"`
			Done  int    `json:"done"`
			Total int    `json:"total"`
		}{d.co.Digest(), state, done, total})
		return nil
	}))
	return d
}

// wrap checks the {id} path segment against the coordinator's campaign
// and renders endpoint errors through the structured envelope.
func (d *Distributor) wrap(h endpoint) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if id := r.PathValue("id"); id != d.co.Digest() {
			writeError(w, &apiError{Status: http.StatusNotFound, Code: "unknown_job",
				Message: fmt.Sprintf("this coordinator serves campaign %s, not %q", d.co.Digest(), id), Field: "id"})
			return
		}
		if err := h(w, r); err != nil {
			writeError(w, err)
		}
	}
}

// ServeHTTP implements http.Handler.
func (d *Distributor) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	d.mux.ServeHTTP(w, r)
}
