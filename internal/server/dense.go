package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strconv"

	"lockstep/internal/core"
	"lockstep/internal/handler"
	"lockstep/internal/sbist"
)

// denseTable is the precomputed serving form of a trained *core.Table.
// The offline table path resolves a prediction per request — front-end
// latch, PTAR address mapping, entry fetch, unit-name resolution, struct
// building, reflection-based JSON encoding. All of that is invariant per
// table entry, so it is done once here, at table load: every trained
// entry (one per distinct training-set DSR) is rendered into the exact
// predictionJSON bytes /v1/predict returns for it, and the default entry
// (unobserved sets) is rendered once and split around the only varying
// field, the echoed DSR hex. The hot lookup is then one SetDict map
// probe — the PTAR address mapping — followed by one bounds-checked
// slice index and a byte copy into the caller's response buffer.
type denseTable struct {
	dict *core.SetDict

	// known[id] is the fully rendered predictionJSON object for the
	// trained entry the PTAR id addresses (its DSR is fixed: Dict.Set(id)).
	known [][]byte

	// defPrefix + hex(dsr) + defSuffix is the rendered default-entry
	// prediction for an unobserved DSR.
	defPrefix, defSuffix []byte

	// header is the response prefix up to and including the '[' that
	// opens the predictions array; the response closes with "]}" so that
	// the whole body is byte-identical to marshaling a predictResponse.
	header []byte
}

// defaultMarker stands in for the echoed DSR while rendering the default
// entry; it cannot appear in any other response field (granularity names,
// unit names and hex digits never contain '@').
const defaultMarker = "@"

// newDenseTable flattens a trained table into its serving form. It is
// built through tablePathPrediction — the PR-5 table path — entry by
// entry, which is what guarantees the dense path's bytes are identical
// to that path's output (the equivalence tests re-check this for every
// trained DSR and a fuzz-derived sample of unobserved ones).
func newDenseTable(table *core.Table, cfg sbist.Config) (*denseTable, error) {
	h := handler.New(table, cfg)
	n := table.Dict.Len()
	d := &denseTable{dict: table.Dict, known: make([][]byte, n)}

	hdr, err := json.Marshal(predictResponse{
		Granularity: table.Gran.String(),
		TableSets:   n,
		Predictions: []predictionJSON{},
	})
	if err != nil {
		return nil, fmt.Errorf("rendering response header: %w", err)
	}
	d.header = hdr[:len(hdr)-2] // strip the "]}" that closes the empty array

	for id := 0; id < n; id++ {
		b, err := json.Marshal(tablePathPrediction(h, table.Dict.Set(id)))
		if err != nil {
			return nil, fmt.Errorf("rendering entry %d: %w", id, err)
		}
		d.known[id] = b
	}

	// Default entry: render the prediction for any unobserved DSR with a
	// marker in the echoed-DSR slot and split around it.
	pj := tablePathPrediction(h, unobservedDSR(table.Dict))
	pj.DSR = defaultMarker
	b, err := json.Marshal(pj)
	if err != nil {
		return nil, fmt.Errorf("rendering default entry: %w", err)
	}
	marker := []byte(`"` + defaultMarker + `"`)
	i := bytes.Index(b, marker)
	if i < 0 {
		return nil, fmt.Errorf("default entry render lost its DSR marker: %s", b)
	}
	d.defPrefix = b[:i+1]
	d.defSuffix = b[i+len(marker)-1:]
	return d, nil
}

// unobservedDSR finds a DSR value the dictionary does not contain, so the
// default entry can be rendered through the same table path as trained
// entries. The dictionary is finite, so scanning down from the top of the
// DSR space terminates after at most Len()+1 probes.
func unobservedDSR(dict *core.SetDict) uint64 {
	for v := ^uint64(0); ; v-- {
		if _, ok := dict.ID(v); !ok {
			return v
		}
	}
}

// tablePathPrediction is the table path /v1/predict served before the
// dense lookup existed: the handler front-end flow (latch, PTAR mapping,
// entry fetch) plus response struct building for one DSR. The dense
// table is constructed from it entry by entry, and the equivalence tests
// compare the dense path's bytes against it.
func tablePathPrediction(h *handler.Handler, dsr uint64) predictionJSON {
	p := h.Predict(dsr)
	order := make([]int, len(p.Order))
	for i, u := range p.Order {
		order[i] = int(u)
	}
	typ := "soft"
	if p.Hard {
		typ = "hard"
	}
	return predictionJSON{
		DSR:   fmt.Sprintf("%x", p.DSR),
		PTAR:  p.PTAR,
		Known: p.Known,
		Type:  typ,
		Units: p.Units,
		Order: order,
	}
}

// appendPrediction appends the rendered prediction for one DSR: a map
// probe, then either a copy of the precomputed entry or the default
// entry split around the appended hex. Allocation-free once dst has
// capacity.
func (d *denseTable) appendPrediction(dst []byte, dsr uint64) []byte {
	if id, ok := d.dict.ID(dsr); ok {
		return append(dst, d.known[id]...)
	}
	dst = append(dst, d.defPrefix...)
	dst = strconv.AppendUint(dst, dsr, 16)
	return append(dst, d.defSuffix...)
}

// deadlineStride is how many predictions are rendered between deadline
// re-checks; at tens of nanoseconds per prediction a stride costs well
// under the deadline granularity while keeping the check off the
// per-item path.
const deadlineStride = 256

// appendResponse renders the full /v1/predict response for a DSR batch
// into dst. A non-nil ctx is re-checked every deadlineStride predictions
// so a huge batch cannot overstay its request deadline.
func (d *denseTable) appendResponse(dst []byte, dsrs []uint64, ctx context.Context) ([]byte, error) {
	dst = append(dst, d.header...)
	for i, v := range dsrs {
		if ctx != nil && i%deadlineStride == 0 {
			if err := deadlineErr(ctx); err != nil {
				return dst, err
			}
		}
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = d.appendPrediction(dst, v)
	}
	return append(dst, ']', '}'), nil
}
