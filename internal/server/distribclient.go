// Worker-node client for distributed campaigns: the `lockstep-inject
// -join` loop. RunWorker pulls span leases from a coordinator (a
// lockstep-serve campaign job or a `lockstep-inject -distribute`
// Distributor — the wire is identical), reconstructs the campaign from
// the coordinator's fingerprint, executes each leased span through the
// same pruned-replay path a local campaign uses, and streams the records
// back. The worker holds no campaign state worth preserving: killing it
// at any instant costs at most its outstanding lease, which the
// coordinator re-issues after the TTL.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"lockstep/internal/inject"
)

// WorkerOptions configures one RunWorker loop.
type WorkerOptions struct {
	// URL is the coordinator's campaign URL:
	// http://host:port/v1/campaigns/<digest>. The trailing path segment
	// is the campaign digest the worker authenticates with.
	URL string
	// Name is the worker's stable identity; the coordinator uses it for
	// lease affinity and per-worker throughput gauges.
	Name string
	// LeaseSize is the preferred span length per lease (0 = coordinator
	// default).
	LeaseSize int
	// InjectWorkers is the in-span experiment parallelism (0 = all CPUs).
	InjectWorkers int
	// Client overrides the HTTP client (default: http.DefaultClient with
	// a 30s timeout).
	Client *http.Client
	// Logf, if non-nil, receives one line per lease and per retry.
	Logf func(format string, args ...any)

	// gate, when non-nil, is held while a span executes. Tests and the
	// scaling bench use it to time-slice several in-process workers on
	// one machine so each worker's busy time is single-core-accurate.
	gate *sync.Mutex
}

// WorkerStats reports what one RunWorker loop did.
type WorkerStats struct {
	Spans       int // spans committed (duplicates included)
	Experiments int // records produced and accepted
	Pruned      int // experiments resolved by static pruning
	Duplicates  int // spans the coordinator already had
	Expired     int // spans refused because the lease had been re-issued
	// Busy is wall clock spent executing spans (golden builds included);
	// Elapsed is the whole loop. Busy/Elapsed ≈ worker utilization.
	Busy    time.Duration
	Elapsed time.Duration
}

// RunWorker joins a distributed campaign and executes leases until the
// coordinator reports the campaign done, ctx is canceled, or a fatal
// error (fingerprint mismatch, unknown campaign, coordinator gone for
// good, or an execution error that would poison the dataset).
func RunWorker(ctx context.Context, opt WorkerOptions) (st WorkerStats, err error) {
	// Named returns: the deferred stamp must land in the value the
	// caller sees, not in a local copied out before defers run.
	start := time.Now()
	defer func() { st.Elapsed = time.Since(start) }()

	url := strings.TrimRight(opt.URL, "/")
	digest := url[strings.LastIndexByte(url, '/')+1:]
	if digest == "" {
		return st, &inject.ConfigError{Field: "URL", Reason: "missing campaign digest path segment (want http://host:port/v1/campaigns/<digest>)"}
	}
	if opt.Name == "" {
		opt.Name = "worker"
	}
	client := opt.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	var runner *inject.SpanRunner
	transient := 0
	const maxTransient = 10
	for {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		reply, err := leaseOnce(ctx, client, url, &inject.LeaseRequest{
			Worker: opt.Name, Digest: digest, Want: opt.LeaseSize,
		})
		if err != nil {
			if fatal, wait, werr := classify(err, &transient, maxTransient); fatal {
				return st, werr
			} else if serr := sleepCtx(ctx, wait); serr != nil {
				return st, serr
			}
			logf("lease request failed (retrying): %v", err)
			continue
		}
		transient = 0
		switch reply.Status {
		case inject.LeaseDone:
			return st, nil
		case inject.LeaseWait:
			wait := reply.Retry
			if wait <= 0 {
				wait = 100 * time.Millisecond
			}
			if err := sleepCtx(ctx, wait); err != nil {
				return st, err
			}
			continue
		}

		if runner == nil {
			// First granted lease: verify the coordinator's fingerprint
			// really hashes to the digest we joined with, then rebuild
			// the campaign from it.
			if d := reply.FP.Digest(); d != digest {
				return st, &inject.StaleFingerprintError{Got: digest, Want: d}
			}
			cfg, err := reply.FP.Config()
			if err != nil {
				return st, err
			}
			cfg.Workers = opt.InjectWorkers
			runner, err = inject.NewSpanRunner(cfg)
			if err != nil {
				return st, err
			}
			if runner.Total() != reply.Total {
				return st, fmt.Errorf("server: campaign plan disagrees: coordinator has %d experiments, this build enumerates %d", reply.Total, runner.Total())
			}
		}

		logf("lease %d: span [%d,%d) (%d experiments)", reply.LeaseID, reply.Span.Lo, reply.Span.Hi, reply.Span.Hi-reply.Span.Lo)
		busyStart := time.Now()
		if opt.gate != nil {
			opt.gate.Lock()
		}
		records, spanStats, err := runner.Run(reply.Span)
		if opt.gate != nil {
			opt.gate.Unlock()
		}
		busy := time.Since(busyStart)
		st.Busy += busy
		if err != nil {
			// An execution error (oracle mismatch, bad golden) is not
			// retryable: the same span would fail everywhere.
			return st, err
		}

		ack, err := spanOnce(ctx, client, url, &inject.SpanSubmit{
			Worker: opt.Name, Digest: digest, LeaseID: reply.LeaseID, Span: reply.Span,
			BusyUS: busy.Microseconds(), Pruned: spanStats.Pruned, OracleChecked: spanStats.OracleChecked,
			Records: records,
		})
		switch {
		case err == nil:
			st.Spans++
			if ack.Duplicate {
				st.Duplicates++
			} else {
				st.Experiments += len(records)
				st.Pruned += spanStats.Pruned
			}
			logf("lease %d: committed (%d/%d campaign-wide)", reply.LeaseID, ack.Done, ack.Total)
			if ack.Total > 0 && ack.Done >= ack.Total {
				// This commit completed the campaign. Exit now instead of
				// polling for LeaseDone: a standalone coordinator writes
				// its dataset and quits the moment the last span lands.
				return st, nil
			}
		case errorCode(err) == "lease_expired":
			// We outlived our lease; the span was re-issued and another
			// worker's byte-identical records will land. Drop ours.
			st.Expired++
			logf("lease %d: expired before commit; span re-issued elsewhere", reply.LeaseID)
		default:
			if fatal, wait, werr := classify(err, &transient, maxTransient); fatal {
				return st, werr
			} else if serr := sleepCtx(ctx, wait); serr != nil {
				return st, serr
			}
			logf("span commit failed (dropping span, re-leasing): %v", err)
			// The lease will expire and the span re-issue — possibly to
			// us. Nothing to clean up: commits are idempotent.
		}
	}
}

// apiRejection carries a structured server rejection back to the loop.
type apiRejection struct {
	Status int
	Code   string
	Msg    string
}

func (e *apiRejection) Error() string {
	return fmt.Sprintf("server: %s (%d %s)", e.Msg, e.Status, e.Code)
}

// errorCode extracts the stable error code of a server rejection.
func errorCode(err error) string {
	var rej *apiRejection
	if errors.As(err, &rej) {
		return rej.Code
	}
	return ""
}

// classify decides whether an error ends the worker. Structured 4xx
// rejections are fatal (the server told us exactly why we cannot
// proceed); network errors and 5xx are transient up to the cap, with
// linear backoff.
func classify(err error, transient *int, max int) (fatal bool, wait time.Duration, out error) {
	var rej *apiRejection
	if errors.As(err, &rej) && rej.Status < 500 {
		return true, 0, err
	}
	*transient++
	if *transient >= max {
		return true, 0, fmt.Errorf("server: coordinator unreachable after %d attempts: %w", *transient, err)
	}
	wait = time.Duration(*transient) * 100 * time.Millisecond
	if wait > 2*time.Second {
		wait = 2 * time.Second
	}
	return false, wait, nil
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// postWire POSTs a wire-encoded body and returns the raw reply bytes, or
// an *apiRejection decoded from the structured error envelope.
func postWire(ctx context.Context, client *http.Client, url string, body []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxSpanBody))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var envelope struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		rej := &apiRejection{Status: resp.StatusCode, Code: "http_error", Msg: strings.TrimSpace(string(data))}
		if json.Unmarshal(data, &envelope) == nil && envelope.Error.Code != "" {
			rej.Code, rej.Msg = envelope.Error.Code, envelope.Error.Message
		}
		return nil, rej
	}
	return data, nil
}

func leaseOnce(ctx context.Context, client *http.Client, url string, req *inject.LeaseRequest) (*inject.LeaseReply, error) {
	data, err := postWire(ctx, client, url+"/leases", req.Encode())
	if err != nil {
		return nil, err
	}
	return inject.DecodeLeaseReply(data)
}

func spanOnce(ctx context.Context, client *http.Client, url string, sub *inject.SpanSubmit) (*inject.SpanReply, error) {
	data, err := postWire(ctx, client, url+"/spans", sub.Encode())
	if err != nil {
		return nil, err
	}
	return inject.DecodeSpanReply(data)
}
