package server

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"lockstep/internal/dataset"
	"lockstep/internal/inject"
	"lockstep/internal/telemetry"
)

// distCampaignJSON submits trainingCampaign as a distributed job.
const distCampaignJSON = `{"kernels":["ttsprk"],"run_cycles":3000,"flop_stride":24,"seed":9,"distribute":true,"lease_size":32}`

// startWorkers joins n in-process workers to url, time-sliced through a
// shared gate (the test host may have one core), and fails the test on
// any worker error.
func startWorkers(t *testing.T, url string, n int) *sync.WaitGroup {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	t.Cleanup(cancel)
	gate := &sync.Mutex{}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		name := string(rune('a' + i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := RunWorker(ctx, WorkerOptions{
				URL: url, Name: name, InjectWorkers: 1, gate: gate,
			})
			if err != nil {
				t.Errorf("worker %s: %v (stats %+v)", name, err, st)
			}
		}()
	}
	return &wg
}

// TestDistributedCampaignMatchesDirect is the tentpole's server-side
// contract: a distribute:true campaign served to two worker nodes over
// real HTTP produces a dataset byte-identical to a direct inject.Run.
func TestDistributedCampaignMatchesDirect(t *testing.T) {
	_, wantCSV, _ := testFixture(t)
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	code, body := do(t, s, "POST", "/v1/campaigns", distCampaignJSON)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d %v", code, body)
	}
	id := body["id"].(string)

	startWorkers(t, ts.URL+"/v1/campaigns/"+id, 2).Wait()
	waitJob(t, s, id, stateDone)

	code, dsBody := do(t, s, "GET", "/v1/campaigns/"+id+"/dataset", "")
	if code != http.StatusOK {
		t.Fatalf("dataset: status %d", code)
	}
	if got := dsBody["raw"].(string); !bytes.Equal([]byte(got), wantCSV) {
		t.Fatalf("distributed dataset differs from direct inject.Run (%d vs %d bytes)", len(got), len(wantCSV))
	}

	// A straggler's span submission after completion is acked as a
	// duplicate, not an error — the worker can exit clean.
	sub := &inject.SpanSubmit{Worker: "late", Digest: id, LeaseID: 99,
		Span: inject.Span{Lo: 0, Hi: 2}, Records: make([]dataset.Record, 2)}
	code, ack := do(t, s, "POST", "/v1/campaigns/"+id+"/spans", string(sub.Encode()))
	if code != http.StatusOK {
		t.Fatalf("late span: status %d %v", code, ack)
	}
	reply, err := inject.DecodeSpanReply([]byte(ack["raw"].(string)))
	if err != nil || !reply.Duplicate {
		t.Fatalf("late span ack: %+v, %v; want duplicate", reply, err)
	}

	// And a late lease request gets a clean LeaseDone.
	lr := &inject.LeaseRequest{Worker: "late", Digest: id}
	code, lease := do(t, s, "POST", "/v1/campaigns/"+id+"/leases", string(lr.Encode()))
	if code != http.StatusOK {
		t.Fatalf("late lease: status %d %v", code, lease)
	}
	lreply, err := inject.DecodeLeaseReply([]byte(lease["raw"].(string)))
	if err != nil || lreply.Status != inject.LeaseDone {
		t.Fatalf("late lease reply: %+v, %v; want LeaseDone", lreply, err)
	}
}

// TestDistributorMatchesDirect covers the lockstep-inject -distribute
// topology in-process: a standalone Distributor coordinator, one joined
// worker, byte-identical result.
func TestDistributorMatchesDirect(t *testing.T) {
	_, wantCSV, _ := testFixture(t)
	co, err := inject.NewCoordinator(trainingCampaign(), inject.DistConfig{LeaseSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewDistributor(co))
	t.Cleanup(ts.Close)

	// The wrong campaign digest in the URL is a structured 404.
	resp, err := http.Post(ts.URL+"/v1/campaigns/bogus/leases", "application/octet-stream",
		bytes.NewReader((&inject.LeaseRequest{Worker: "w", Digest: "bogus"}).Encode()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bogus campaign: status %d, want 404", resp.StatusCode)
	}

	startWorkers(t, ts.URL+"/v1/campaigns/"+co.Digest(), 1).Wait()
	if err := co.WaitDone(nil); err != nil {
		t.Fatal(err)
	}
	ds, _, err := co.Result()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), wantCSV) {
		t.Fatal("distributor dataset differs from direct inject.Run")
	}
}

// TestDistributedEndpointErrors pins the structured error envelope on
// the lease and span paths: stable codes, right statuses.
func TestDistributedEndpointErrors(t *testing.T) {
	s := newTestServer(t, func(o *Options) {
		o.LeaseTTL = time.Millisecond // expire leases nearly instantly
	})
	code, body := do(t, s, "POST", "/v1/campaigns", distCampaignJSON)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d %v", code, body)
	}
	id := body["id"].(string)

	// Acquire a lease directly (waiting out the coordinator's startup).
	var granted *inject.LeaseReply
	for deadline := time.Now().Add(30 * time.Second); ; {
		lr := &inject.LeaseRequest{Worker: "w", Digest: id}
		code, body := do(t, s, "POST", "/v1/campaigns/"+id+"/leases", string(lr.Encode()))
		if code != http.StatusOK {
			t.Fatalf("lease: status %d %v", code, body)
		}
		reply, err := inject.DecodeLeaseReply([]byte(body["raw"].(string)))
		if err != nil {
			t.Fatal(err)
		}
		if reply.Status == inject.LeaseGranted {
			granted = reply
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no lease granted within 30s")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Let the 1ms TTL lapse, then have another worker trigger the expiry
	// sweep and take over the span.
	time.Sleep(20 * time.Millisecond)
	lr := &inject.LeaseRequest{Worker: "thief", Digest: id}
	code, body = do(t, s, "POST", "/v1/campaigns/"+id+"/leases", string(lr.Encode()))
	if code != http.StatusOK {
		t.Fatalf("second lease: status %d %v", code, body)
	}

	// The original worker's commit now lands on an expired, re-issued
	// lease over an uncovered span: 409 lease_expired.
	sub := &inject.SpanSubmit{Worker: "w", Digest: id, LeaseID: granted.LeaseID, Span: granted.Span,
		Records: make([]dataset.Record, granted.Span.Hi-granted.Span.Lo)}
	code, body = do(t, s, "POST", "/v1/campaigns/"+id+"/spans", string(sub.Encode()))
	if code != http.StatusConflict || apiErrOf(t, body)["code"] != "lease_expired" {
		t.Fatalf("expired commit: %d %v, want 409 lease_expired", code, body)
	}

	cases := []struct {
		name       string
		path       string
		payload    string
		status     int
		errCode    string
		checkField string
	}{
		{"lease wrong digest", "/v1/campaigns/" + id + "/leases",
			string((&inject.LeaseRequest{Worker: "w", Digest: "0123456789abcdef"}).Encode()),
			http.StatusConflict, "fingerprint_mismatch", "digest"},
		{"span wrong digest", "/v1/campaigns/" + id + "/spans",
			string((&inject.SpanSubmit{Worker: "w", Digest: "0123456789abcdef", LeaseID: 1,
				Span: inject.Span{Lo: 0, Hi: 1}, Records: make([]dataset.Record, 1)}).Encode()),
			http.StatusConflict, "fingerprint_mismatch", "digest"},
		{"lease garbage body", "/v1/campaigns/" + id + "/leases", "not a wire message",
			http.StatusBadRequest, "bad_request", ""},
		{"span garbage body", "/v1/campaigns/" + id + "/spans", "not a wire message",
			http.StatusBadRequest, "bad_request", ""},
		{"lease unknown campaign", "/v1/campaigns/ffffffffffffffff/leases",
			string((&inject.LeaseRequest{Worker: "w", Digest: "ffffffffffffffff"}).Encode()),
			http.StatusNotFound, "unknown_job", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := do(t, s, "POST", tc.path, tc.payload)
			e := apiErrOf(t, body)
			if code != tc.status || e["code"] != tc.errCode {
				t.Fatalf("got %d %v, want %d %s", code, body, tc.status, tc.errCode)
			}
			if tc.checkField != "" && e["field"] != tc.checkField {
				t.Fatalf("error field %v, want %s", e["field"], tc.checkField)
			}
		})
	}
}

// TestLeaseOnLocalCampaign: the distributed endpoints on a campaign
// submitted without distribute:true answer 409 not_distributed while it
// runs (and leases/spans are honored once done — see the lifecycle test).
func TestLeaseOnLocalCampaign(t *testing.T) {
	s := newTestServer(t, nil)
	// Big enough not to finish before the assertions below.
	code, body := do(t, s, "POST", "/v1/campaigns",
		`{"kernels":["ttsprk"],"run_cycles":12000,"flop_stride":2,"seed":11}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d %v", code, body)
	}
	id := body["id"].(string)

	lr := &inject.LeaseRequest{Worker: "w", Digest: id}
	code, body = do(t, s, "POST", "/v1/campaigns/"+id+"/leases", string(lr.Encode()))
	if code != http.StatusConflict || apiErrOf(t, body)["code"] != "not_distributed" {
		t.Fatalf("lease on local campaign: %d %v, want 409 not_distributed", code, body)
	}
	sub := &inject.SpanSubmit{Worker: "w", Digest: id, LeaseID: 1,
		Span: inject.Span{Lo: 0, Hi: 1}, Records: make([]dataset.Record, 1)}
	code, body = do(t, s, "POST", "/v1/campaigns/"+id+"/spans", string(sub.Encode()))
	if code != http.StatusConflict || apiErrOf(t, body)["code"] != "not_distributed" {
		t.Fatalf("span on local campaign: %d %v, want 409 not_distributed", code, body)
	}
}

// TestSubmitForeignCheckpointRejected: submitting a campaign whose data
// directory holds a checkpoint from a different schedule is refused at
// submission time with 409 config_mismatch (previously this surfaced
// only when the job ran).
func TestSubmitForeignCheckpointRejected(t *testing.T) {
	var dir string
	s := newTestServer(t, func(o *Options) { dir = o.DataDir })

	// The ID the submission will get.
	cfg := trainingCampaign()
	fp, err := cfg.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	id := fp.Digest()

	// Plant a checkpoint from a different schedule under that ID.
	foreign := cfg
	foreign.Seed = 999
	foreign.CheckpointPath = filepath.Join(dir, id+".ck")
	foreign.CheckpointEvery = 1
	if _, err := inject.Run(foreign); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(foreign.CheckpointPath); err != nil {
		t.Fatal(err)
	}

	code, body := do(t, s, "POST", "/v1/campaigns", campaignJSON)
	e := apiErrOf(t, body)
	if code != http.StatusConflict || e["code"] != "config_mismatch" {
		t.Fatalf("foreign checkpoint submit: %d %v, want 409 config_mismatch", code, body)
	}
	if e["field"] == nil || e["field"] == "" {
		t.Fatalf("config_mismatch without the offending field: %v", e)
	}
}

// TestDistributedRestartResume: a drained server with a half-merged
// distributed campaign resumes it on restart from the checkpoint, and
// the final dataset is byte-identical to a direct run.
func TestDistributedRestartResume(t *testing.T) {
	_, wantCSV, _ := testFixture(t)
	dir := t.TempDir()
	_, _, table := testFixture(t)

	s1, err := New(Options{Table: table, DataDir: dir, Registry: telemetry.New(), LeaseSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1)
	code, body := do(t, s1, "POST", "/v1/campaigns",
		`{"kernels":["ttsprk"],"run_cycles":3000,"flop_stride":24,"seed":9,"distribute":true,"checkpoint_every":1}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d %v", code, body)
	}
	id := body["id"].(string)

	// One worker merges part of the campaign, then the server drains.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	url := ts1.URL + "/v1/campaigns/" + id
	client := &http.Client{Timeout: 10 * time.Second}
	var runner *inject.SpanRunner
	merged := 0
	for merged < 3 {
		reply, err := leaseOnce(ctx, client, url, &inject.LeaseRequest{Worker: "w", Digest: id})
		if err != nil {
			t.Fatal(err)
		}
		if reply.Status != inject.LeaseGranted {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		if runner == nil {
			rcfg, err := reply.FP.Config()
			if err != nil {
				t.Fatal(err)
			}
			rcfg.Workers = 1
			if runner, err = inject.NewSpanRunner(rcfg); err != nil {
				t.Fatal(err)
			}
		}
		records, st, err := runner.Run(reply.Span)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := spanOnce(ctx, client, url, &inject.SpanSubmit{
			Worker: "w", Digest: id, LeaseID: reply.LeaseID, Span: reply.Span,
			Pruned: st.Pruned, OracleChecked: st.OracleChecked, Records: records,
		}); err != nil {
			t.Fatal(err)
		}
		merged++
	}
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	if err := s1.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	// Restart on the same directory: the job is adopted, the coordinator
	// resumes from the checkpoint, and a worker finishes it.
	s2, err := New(Options{Table: table, DataDir: dir, Registry: telemetry.New(), LeaseSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s2.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	ts2 := httptest.NewServer(s2)
	t.Cleanup(ts2.Close)
	startWorkers(t, ts2.URL+"/v1/campaigns/"+id, 1).Wait()
	waitJob(t, s2, id, stateDone)

	code, dsBody := do(t, s2, "GET", "/v1/campaigns/"+id+"/dataset", "")
	if code != http.StatusOK {
		t.Fatalf("dataset: status %d", code)
	}
	if got := dsBody["raw"].(string); !bytes.Equal([]byte(got), wantCSV) {
		t.Fatal("resumed distributed dataset differs from direct inject.Run")
	}
}
