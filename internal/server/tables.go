package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"lockstep/internal/core"
	"lockstep/internal/dataset"
	"lockstep/internal/lockstep"
	"lockstep/internal/sbist"
	"lockstep/internal/telemetry"
)

// This file is the hot-table-reload layer: server-side training and
// atomic swap of the serving table.
//
// The live artifact is a tableBundle — the trained *core.Table, its
// precomputed denseTable, the SBIST latency config, the serialized table
// image and a version digest — built once and never mutated afterwards.
// The bundle behind the single atomic.Pointer is what /v1/predict serves:
// one Load() at the top of the request pins everything the response is
// rendered from, so a concurrent swap can never mix two tables inside one
// response. The version rides every predict response as its ETag, which
// is what the swap-atomicity race test keys on.

// maxTablesBody bounds a POST /v1/tables body; an inline dataset CSV for
// a laptop-scale campaign is a few hundred KB.
const maxTablesBody = 8 << 20

// activeFile names the file inside the tables directory that records the
// last-activated version; a restarted server adopts it.
const activeFile = "ACTIVE"

// tableBundle is one immutable serving artifact. Everything a predict
// request reads hangs off the one pointer: the bundle is fully built
// before it is published and no field is written afterwards.
type tableBundle struct {
	table *core.Table
	dense *denseTable
	cfg   sbist.Config
	// image is the serialized form (core.Table.WriteTo) — the same bytes
	// lockstep-train -o writes — and version is the first 8 bytes of the
	// SHA-256 over the image (plus the mode string for non-dcls bundles),
	// hex-encoded: two trainings that produce byte-identical images under
	// the same mode are the same version.
	image   []byte
	version string
	etag    string // `"` + version + `"`, precomputed for the hot path
	source  string // "startup", "upload", "campaign <id>", "adopted"
	// mode is the lockstep mode of the campaign the training dataset came
	// from (the zero value is dcls). A predict request that names a mode
	// via the X-Lockstep-Mode header is refused with 409 mode_mismatch
	// when it does not match: a table trained on slip:N outcomes encodes
	// slip-shifted detection latencies and must not silently serve a dcls
	// (or tmr) deployment.
	mode lockstep.Mode
}

// newTableBundle builds the immutable serving form of a trained table.
func newTableBundle(table *core.Table, cfg sbist.Config, source string, mode lockstep.Mode) (*tableBundle, error) {
	var buf bytes.Buffer
	if _, err := table.WriteTo(&buf); err != nil {
		return nil, fmt.Errorf("serializing table: %w", err)
	}
	// The mode folds into the version for non-dcls bundles: two trainings
	// with byte-identical images are the same version only under the same
	// mode, so a tmr table can never dedupe onto a slip bundle (their
	// serving contracts differ even when the learned entries coincide).
	// dcls versions stay the pure image hash — every pre-mode .lspt file
	// keeps its identity.
	h := sha256.New()
	h.Write(buf.Bytes())
	if mode != (lockstep.Mode{}) {
		h.Write([]byte(mode.String()))
	}
	sum := h.Sum(nil)
	version := hex.EncodeToString(sum[:8])
	dense, err := newDenseTable(table, cfg)
	if err != nil {
		return nil, err
	}
	return &tableBundle{
		table:   table,
		dense:   dense,
		cfg:     cfg,
		image:   buf.Bytes(),
		version: version,
		etag:    `"` + version + `"`,
		source:  source,
		mode:    mode,
	}, nil
}

// tableManager owns the table registry and the active-bundle pointer.
// Registration and activation serialize on mu; the predict path never
// touches mu — it does exactly one active.Load().
type tableManager struct {
	dir    string // "" = in-memory only; else <DataDir>/tables
	access int64  // table read latency for newly trained bundles
	reg    *telemetry.Registry

	mu      sync.Mutex
	bundles map[string]*tableBundle
	order   []string // registration order, for listing

	active atomic.Pointer[tableBundle]
	swaps  *telemetry.Counter
}

// newTableManager builds the registry, adopting any persisted table
// images (and the last-activated version) from the data directory, then
// registering the startup table from Options.Table. A persisted active
// version wins over -table, so a restart always serves the table the
// operator last activated; the startup table is activated only when
// nothing was persisted.
func newTableManager(opt Options) (*tableManager, error) {
	m := &tableManager{
		access:  opt.TableAccess,
		reg:     opt.Registry,
		bundles: map[string]*tableBundle{},
		swaps:   opt.Registry.Counter("server.table_swaps"),
	}
	if opt.DataDir != "" {
		m.dir = filepath.Join(opt.DataDir, "tables")
		if err := os.MkdirAll(m.dir, 0o755); err != nil {
			return nil, err
		}
		if err := m.adopt(); err != nil {
			return nil, err
		}
	}
	if opt.Table != nil {
		b, err := newTableBundle(opt.Table, opt.SBIST, "startup", lockstep.Mode{})
		if err != nil {
			return nil, err
		}
		b, err = m.register(b)
		if err != nil {
			return nil, err
		}
		if m.active.Load() == nil {
			if _, err := m.activate(b.version); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

// adopt loads every persisted table image and re-activates the persisted
// active version. Image files whose content does not hash back to their
// filename are refused — a table the server swaps in must be exactly the
// bytes that were activated.
func (m *tableManager) adopt() error {
	names, err := filepath.Glob(filepath.Join(m.dir, "*.lspt"))
	if err != nil {
		return err
	}
	sort.Strings(names)
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			return err
		}
		table, err := core.ReadTable(bytes.NewReader(data))
		if err != nil {
			return fmt.Errorf("table image %s: %w", name, err)
		}
		// The .lspt image format predates modes and cannot carry one;
		// non-dcls bundles persist their mode in a <version>.mode sidecar.
		mode := lockstep.Mode{}
		if data, err := os.ReadFile(strings.TrimSuffix(name, ".lspt") + ".mode"); err == nil {
			mode, err = lockstep.ParseMode(strings.TrimSpace(string(data)))
			if err != nil {
				return fmt.Errorf("table mode sidecar for %s: %w", name, err)
			}
		} else if !os.IsNotExist(err) {
			return err
		}
		b, err := newTableBundle(table, sbist.NewConfig(table.Gran, nil, m.access), "adopted", mode)
		if err != nil {
			return fmt.Errorf("table image %s: %w", name, err)
		}
		if want := strings.TrimSuffix(filepath.Base(name), ".lspt"); b.version != want {
			return fmt.Errorf("table image %s hashes to version %s", name, b.version)
		}
		if _, err := m.register(b); err != nil {
			return err
		}
		m.reg.Counter("server.tables", telemetry.L("event", "adopted")).Inc()
	}
	data, err := os.ReadFile(filepath.Join(m.dir, activeFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	version := strings.TrimSpace(string(data))
	if version == "" {
		return nil
	}
	if _, err := m.activate(version); err != nil {
		return fmt.Errorf("persisted active table: %w", err)
	}
	return nil
}

// register adds a bundle to the registry (idempotently — re-training the
// same dataset yields the same version and keeps the first bundle) and
// persists its image.
func (m *tableManager) register(b *tableBundle) (*tableBundle, error) {
	m.mu.Lock()
	if existing, ok := m.bundles[b.version]; ok {
		m.mu.Unlock()
		return existing, nil
	}
	m.bundles[b.version] = b
	m.order = append(m.order, b.version)
	m.mu.Unlock()
	if m.dir != "" {
		if err := writeFileAtomic(filepath.Join(m.dir, b.version+".lspt"), b.image); err != nil {
			return nil, err
		}
		if b.mode != (lockstep.Mode{}) {
			if err := writeFileAtomic(filepath.Join(m.dir, b.version+".mode"), []byte(b.mode.String()+"\n")); err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

// activate swaps the serving pointer to an already-registered version and
// persists the choice, so a restart adopts it. It returns whether the
// active version actually changed (re-activating the live version is an
// idempotent no-op). The persist happens before the swap: a version the
// live pointer serves is always one a restart can come back to.
func (m *tableManager) activate(version string) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.bundles[version]
	if !ok {
		return false, &apiError{Status: http.StatusNotFound, Code: "unknown_table",
			Message: fmt.Sprintf("no table version %q", version), Field: "version"}
	}
	if m.active.Load() == b {
		return false, nil
	}
	if m.dir != "" {
		if err := writeFileAtomic(filepath.Join(m.dir, activeFile), []byte(version+"\n")); err != nil {
			return false, err
		}
	}
	m.active.Store(b)
	m.swaps.Inc()
	m.reg.Counter("server.tables", telemetry.L("event", "activated")).Inc()
	return true, nil
}

// current is the predict path's single load of the serving bundle.
func (m *tableManager) current() *tableBundle { return m.active.Load() }

// get looks up a registered version.
func (m *tableManager) get(version string) *tableBundle {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bundles[version]
}

// list snapshots the registry in registration order.
func (m *tableManager) list() []*tableBundle {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*tableBundle, 0, len(m.order))
	for _, v := range m.order {
		out = append(out, m.bundles[v])
	}
	return out
}

// trainSpec is a resolved server-side training request.
type trainSpec struct {
	gran core.Granularity
	topK int
	frac float64
	seed int64
}

// train runs the shared training pipeline (core.TrainSplit — the exact
// path lockstep-train takes) over a dataset, registers the resulting
// bundle and returns it.
func (m *tableManager) train(ds *dataset.Dataset, spec trainSpec, source string) (*tableBundle, error) {
	mode, err := ds.Mode()
	if err != nil {
		return nil, &apiError{Status: http.StatusBadRequest, Code: "invalid_dataset",
			Message: err.Error(), Field: "dataset"}
	}
	rng := rand.New(rand.NewSource(spec.seed))
	table, _, _ := core.TrainSplit(ds, rng, spec.gran, spec.topK, spec.frac)
	b, err := newTableBundle(table, sbist.NewConfig(spec.gran, nil, m.access), source, mode)
	if err != nil {
		return nil, err
	}
	b, err = m.register(b)
	if err != nil {
		return nil, err
	}
	m.reg.Counter("server.tables", telemetry.L("event", "trained")).Inc()
	return b, nil
}

// trainFromFile trains from a dataset CSV on disk — the form a finished
// campaign's dataset is persisted in, and exactly what lockstep-train
// -data would read offline.
func (m *tableManager) trainFromFile(path string, spec trainSpec, source string) (*tableBundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	ds, err := dataset.ReadCSV(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	return m.train(ds, spec, source)
}

// ---- request decoding ----------------------------------------------------

// tablesRequest is the POST /v1/tables body: the dataset to train from
// (an inline CSV or a finished campaign's job ID, exactly one) plus the
// training parameters lockstep-train exposes as flags.
type tablesRequest struct {
	// Campaign references a finished campaign job's dataset by ID.
	Campaign string `json:"campaign,omitempty"`
	// DatasetCSV is an inline campaign log in the dataset CSV format.
	DatasetCSV string `json:"dataset_csv,omitempty"`
	// Granularity is 7 (coarse) or 13 (fine); 0 means 7.
	Granularity int `json:"granularity,omitempty"`
	// TopK limits units stored per entry (0 = all).
	TopK int `json:"topk,omitempty"`
	// TrainFrac is the training fraction of the split in (0, 1]; 0 means
	// 1 — server-side training defaults to every record, since the
	// held-out evaluation already happened offline.
	TrainFrac float64 `json:"train_frac,omitempty"`
	// Seed seeds the split; omitted means 1 — the lockstep-train CLI's
	// default and the seed campaign-triggered training uses, so an
	// explicit train with default parameters reproduces the same
	// content-addressed version.
	Seed *int64 `json:"seed,omitempty"`
	// Activate swaps the trained table in immediately (default true;
	// send false to stage a version for a later explicit activate).
	Activate *bool `json:"activate,omitempty"`
}

// parseTablesRequest decodes and validates a POST /v1/tables body into a
// resolved training spec. It is the fuzz surface of FuzzTablesRequest:
// any input either resolves or fails with a structured 4xx *apiError.
func parseTablesRequest(data []byte) (tablesRequest, trainSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var req tablesRequest
	if err := dec.Decode(&req); err != nil {
		return req, trainSpec{}, errf(http.StatusBadRequest, "bad_request", "decoding request: %v", err)
	}
	if dec.More() {
		return req, trainSpec{}, errf(http.StatusBadRequest, "bad_request", "trailing data after request object")
	}
	if (req.Campaign == "") == (req.DatasetCSV == "") {
		return req, trainSpec{}, &apiError{Status: http.StatusBadRequest, Code: "bad_request",
			Message: "exactly one of campaign or dataset_csv is required", Field: "campaign"}
	}
	spec := trainSpec{topK: req.TopK, frac: req.TrainFrac, seed: 1}
	if req.Seed != nil {
		spec.seed = *req.Seed
	}
	switch req.Granularity {
	case 0, 7:
		spec.gran = core.Coarse7
	case 13:
		spec.gran = core.Fine13
	default:
		return req, trainSpec{}, &apiError{Status: http.StatusBadRequest, Code: "invalid_config",
			Message: fmt.Sprintf("granularity must be 7 or 13, not %d", req.Granularity), Field: "granularity"}
	}
	if req.TopK < 0 {
		return req, trainSpec{}, &apiError{Status: http.StatusBadRequest, Code: "invalid_config",
			Message: "topk must be non-negative", Field: "topk"}
	}
	if spec.frac == 0 {
		spec.frac = 1
	}
	// NaN never compares > or <=, so it falls through to the rejection.
	if !(spec.frac > 0 && spec.frac <= 1) {
		return req, trainSpec{}, &apiError{Status: http.StatusBadRequest, Code: "invalid_config",
			Message: fmt.Sprintf("train_frac must be in (0, 1], not %v", req.TrainFrac), Field: "train_frac"}
	}
	return req, spec, nil
}

// ---- HTTP handlers -------------------------------------------------------

// requireTable resolves the serving bundle or fails with the stable 503
// the predict API has always answered before a table is loaded.
func (s *Server) requireTable() (*tableBundle, error) {
	if b := s.tables.current(); b != nil {
		return b, nil
	}
	return nil, errf(http.StatusServiceUnavailable, "table_not_loaded",
		"no prediction table loaded (start lockstep-serve with -table, or POST /v1/tables)")
}

// tableJSON is the wire form of one registered table version.
type tableJSON struct {
	Version     string `json:"version"`
	Granularity string `json:"granularity"`
	// Mode is the lockstep mode of the training campaign; omitted for
	// dcls, the pre-mode wire shape.
	Mode string `json:"mode,omitempty"`
	Sets        int    `json:"sets"`
	TopK        int    `json:"topk,omitempty"`
	TableBits   int    `json:"table_bits"`
	Source      string `json:"source"`
	Active      bool   `json:"active"`
}

func bundleJSON(b *tableBundle, active bool) tableJSON {
	j := tableJSON{
		Version:     b.version,
		Granularity: b.table.Gran.String(),
		Sets:        b.table.Dict.Len(),
		TopK:        b.table.TopK,
		TableBits:   b.table.TableBits(),
		Source:      b.source,
		Active:      active,
	}
	if b.mode != (lockstep.Mode{}) {
		j.Mode = b.mode.String()
	}
	return j
}

// handleTablesList serves GET /v1/tables: every registered version, which
// one is live, and how many swaps the process has performed — the
// operator's view of what /v1/predict is serving right now.
func (s *Server) handleTablesList(w http.ResponseWriter, r *http.Request) error {
	cur := s.tables.current()
	out := struct {
		Active string      `json:"active,omitempty"`
		Swaps  int64       `json:"swaps"`
		Tables []tableJSON `json:"tables"`
	}{Swaps: s.tables.swaps.Value(), Tables: []tableJSON{}}
	if cur != nil {
		out.Active = cur.version
	}
	for _, b := range s.tables.list() {
		out.Tables = append(out.Tables, bundleJSON(b, b == cur))
	}
	writeJSON(w, http.StatusOK, out)
	return nil
}

// trainResponse is the POST /v1/tables (and activate) response.
type trainResponse struct {
	Table    tableJSON `json:"table"`
	Swapped  bool      `json:"swapped"`
	Swaps    int64     `json:"swaps"`
	Training struct {
		Records  int `json:"records"`
		Detected int `json:"detected"`
	} `json:"training"`
}

// handleTablesCreate serves POST /v1/tables: train a table server-side —
// from an uploaded dataset or a finished campaign's — through the same
// pipeline lockstep-train runs offline, register it as an immutable
// version, and (by default) atomically swap it into the predict path.
func (s *Server) handleTablesCreate(w http.ResponseWriter, r *http.Request) error {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxTablesBody))
	if err != nil {
		return errf(http.StatusBadRequest, "bad_request", "reading body: %v", err)
	}
	req, spec, err := parseTablesRequest(body)
	if err != nil {
		return err
	}

	var (
		ds     *dataset.Dataset
		source string
	)
	if req.Campaign != "" {
		m, err := s.requireJobs()
		if err != nil {
			return err
		}
		j := m.get(req.Campaign)
		if j == nil {
			return &apiError{Status: http.StatusNotFound, Code: "unknown_job",
				Message: fmt.Sprintf("no campaign job %q", req.Campaign), Field: "campaign"}
		}
		if st := j.status(); st.State != stateDone {
			return &apiError{Status: http.StatusConflict, Code: "not_done",
				Message: fmt.Sprintf("campaign %s is %s (%d/%d experiments); train once it is done",
					j.ID, st.State, st.Done, st.Total), Field: "campaign"}
		}
		f, err := os.Open(m.dsPath(j.ID))
		if err != nil {
			return errf(http.StatusInternalServerError, "dataset_missing",
				"campaign %s is done but its dataset is unreadable: %v", j.ID, err)
		}
		ds, err = dataset.ReadCSV(f)
		f.Close()
		if err != nil {
			return errf(http.StatusInternalServerError, "dataset_missing",
				"campaign %s dataset: %v", j.ID, err)
		}
		source = "campaign " + j.ID
	} else {
		ds, err = dataset.ReadCSV(strings.NewReader(req.DatasetCSV))
		if err != nil {
			return &apiError{Status: http.StatusBadRequest, Code: "invalid_dataset",
				Message: fmt.Sprintf("dataset_csv: %v", err), Field: "dataset_csv"}
		}
		source = "upload"
	}
	if err := deadlineErr(r.Context()); err != nil {
		return err
	}

	b, err := s.tables.train(ds, spec, source)
	if err != nil {
		return err
	}
	swapped := false
	if req.Activate == nil || *req.Activate {
		swapped, err = s.tables.activate(b.version)
		if err != nil {
			return err
		}
	}
	resp := trainResponse{
		Table:   bundleJSON(b, s.tables.current() == b),
		Swapped: swapped,
		Swaps:   s.tables.swaps.Value(),
	}
	resp.Training.Records = ds.Len()
	resp.Training.Detected = ds.Manifested().Len()
	writeJSON(w, http.StatusCreated, resp)
	return nil
}

// handleTableActivate serves POST /v1/tables/{version}/activate — the
// rollback path: any registered version (trained, uploaded, adopted from
// a previous process) can be swapped back in atomically.
func (s *Server) handleTableActivate(w http.ResponseWriter, r *http.Request) error {
	version := r.PathValue("version")
	swapped, err := s.tables.activate(version)
	if err != nil {
		return err
	}
	b := s.tables.get(version)
	writeJSON(w, http.StatusOK, trainResponse{
		Table:   bundleJSON(b, true),
		Swapped: swapped,
		Swaps:   s.tables.swaps.Value(),
	})
	return nil
}

// TableVersion reports the live table's version ("" before any table has
// been activated) — lockstep-serve logs it at startup.
func (s *Server) TableVersion() string {
	if b := s.tables.current(); b != nil {
		return b.version
	}
	return ""
}
