package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"lockstep/internal/inject"
)

// apiError is the structured error every non-2xx response carries, as
// {"error": {"code": ..., "message": ..., "field": ...}}. Code is a
// stable machine-readable slug; Field names the offending request or
// config field when one is known (e.g. the inject.ConfigError field for
// an invalid campaign config), so clients and the CLI can report the
// same field identically.
type apiError struct {
	Status  int    `json:"-"`
	Code    string `json:"code"`
	Message string `json:"message"`
	Field   string `json:"field,omitempty"`
}

func (e *apiError) Error() string { return e.Message }

// errf builds an apiError with a formatted message.
func errf(status int, code, format string, args ...any) *apiError {
	return &apiError{Status: status, Code: code, Message: fmt.Sprintf(format, args...)}
}

// configError maps a campaign config validation failure onto the API
// error shape, preserving the typed inject.ConfigError's field name.
func configError(err error) *apiError {
	var ce *inject.ConfigError
	if errors.As(err, &ce) {
		return &apiError{Status: http.StatusBadRequest, Code: "invalid_config", Message: ce.Error(), Field: ce.Field}
	}
	return errf(http.StatusBadRequest, "invalid_config", "%v", err)
}

// writeJSON renders v with the given status. Encoding errors after the
// header is out are unrecoverable mid-stream and are dropped.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError renders an apiError (any other error becomes a 500).
func writeError(w http.ResponseWriter, err error) {
	var ae *apiError
	if !errors.As(err, &ae) {
		ae = errf(http.StatusInternalServerError, "internal", "%v", err)
	}
	writeJSON(w, ae.Status, struct {
		Error *apiError `json:"error"`
	}{ae})
}
