package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"lockstep/internal/inject"
)

// apiError is the structured error every non-2xx response carries, as
// {"error": {"code": ..., "message": ..., "field": ...}}. Code is a
// stable machine-readable slug; Field names the offending request or
// config field when one is known (e.g. the inject.ConfigError field for
// an invalid campaign config), so clients and the CLI can report the
// same field identically.
type apiError struct {
	Status  int    `json:"-"`
	Code    string `json:"code"`
	Message string `json:"message"`
	Field   string `json:"field,omitempty"`
}

func (e *apiError) Error() string { return e.Message }

// errf builds an apiError with a formatted message.
func errf(status int, code, format string, args ...any) *apiError {
	return &apiError{Status: status, Code: code, Message: fmt.Sprintf(format, args...)}
}

// configError maps a campaign config validation failure onto the API
// error shape, preserving the typed inject.ConfigError's field name. A
// *inject.ConfigMismatchError — a submission or resume conflicting with
// persisted campaign state — is a conflict, not a malformed request, and
// keeps its differing-field name too.
func configError(err error) *apiError {
	var cme *inject.ConfigMismatchError
	if errors.As(err, &cme) {
		return &apiError{Status: http.StatusConflict, Code: "config_mismatch", Message: cme.Error(), Field: cme.Field}
	}
	var ce *inject.ConfigError
	if errors.As(err, &ce) {
		return &apiError{Status: http.StatusBadRequest, Code: "invalid_config", Message: ce.Error(), Field: ce.Field}
	}
	return errf(http.StatusBadRequest, "invalid_config", "%v", err)
}

// injectAPIError maps the typed errors of the distributed-campaign paths
// onto the structured envelope with stable codes, so every rejection a
// worker node can hit — wrong campaign, dead lease, conflicting config,
// malformed message — is machine-distinguishable.
func injectAPIError(err error) error {
	var sfe *inject.StaleFingerprintError
	if errors.As(err, &sfe) {
		return &apiError{Status: http.StatusConflict, Code: "fingerprint_mismatch", Message: sfe.Error(), Field: "digest"}
	}
	var lee *inject.LeaseExpiredError
	if errors.As(err, &lee) {
		return &apiError{Status: http.StatusConflict, Code: "lease_expired", Message: lee.Error()}
	}
	var cme *inject.ConfigMismatchError
	if errors.As(err, &cme) {
		return configError(err)
	}
	var we *inject.WireError
	if errors.As(err, &we) {
		return &apiError{Status: http.StatusBadRequest, Code: "bad_request", Message: we.Error()}
	}
	var ce *inject.ConfigError
	if errors.As(err, &ce) {
		return configError(err)
	}
	return err
}

// writeJSON renders v with the given status. Encoding errors after the
// header is out are unrecoverable mid-stream and are dropped.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError renders an apiError (any other error becomes a 500).
func writeError(w http.ResponseWriter, err error) {
	var ae *apiError
	if !errors.As(err, &ae) {
		ae = errf(http.StatusInternalServerError, "internal", "%v", err)
	}
	writeJSON(w, ae.Status, struct {
		Error *apiError `json:"error"`
	}{ae})
}
