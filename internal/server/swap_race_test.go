package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// doRaw performs one in-process request and returns the raw recorder, for
// tests that need exact response bytes and headers.
func doRaw(s *Server, method, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// TestSwapAtomicityUnderRace is the torn-read gate for hot table reload,
// run under -race as `make swap-determinism`: N goroutines hammer
// /v1/predict while a writer hot-swaps between two structurally
// different table versions in a loop. Every response must be
// byte-identical to the render of exactly the table named by its ETag —
// never a mix of two versions — which is only possible if the handler
// reads the bundle pointer exactly once and the bundle is immutable.
func TestSwapAtomicityUnderRace(t *testing.T) {
	ds, csv, _ := testFixture(t)
	// In-memory table registry (no DataDir): swaps must not pay an fsync,
	// and the race is about the pointer, not persistence.
	s := newTestServer(t, func(o *Options) { o.DataDir = "" })
	vCoarse := s.TableVersion()

	// Second version: same dataset at fine granularity, so the two
	// renders differ in geometry, PTARs and unit names.
	rec := doRaw(s, "POST", "/v1/tables", `{"dataset_csv":`+jsonString(t, csv)+`,"granularity":13}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("train: %d %s", rec.Code, rec.Body.String())
	}
	var trained struct {
		Table struct {
			Version string `json:"version"`
		} `json:"table"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &trained); err != nil {
		t.Fatal(err)
	}
	vFine := trained.Table.Version

	// A mixed batch — known DSRs plus an unobserved one — so a torn read
	// would have many bytes to differ in.
	var known uint64
	for _, r := range ds.Records {
		if r.Detected {
			known = r.DSR
			break
		}
	}
	body := fmt.Sprintf(`{"dsrs":["%x","%x","3fffffffffffffff"]}`, known, known>>1)

	// Golden render per version, captured while each is solo-active.
	want := map[string]string{}
	for _, v := range []string{vCoarse, vFine} {
		if rec := doRaw(s, "POST", "/v1/tables/"+v+"/activate", ""); rec.Code != http.StatusOK {
			t.Fatalf("activate %s: %d %s", v, rec.Code, rec.Body.String())
		}
		rec := doRaw(s, "POST", "/v1/predict", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("golden predict under %s: %d %s", v, rec.Code, rec.Body.String())
		}
		if got := rec.Header().Get("ETag"); got != `"`+v+`"` {
			t.Fatalf("golden ETag %q under version %s", got, v)
		}
		want[`"`+v+`"`] = rec.Body.String()
	}
	if want[`"`+vCoarse+`"`] == want[`"`+vFine+`"`] {
		t.Fatal("the two versions render identically; the race would prove nothing")
	}

	const readers = 8
	// Each reader hammers until it has personally observed both versions
	// mid-swap (the cap only bounds a broken test run).
	const maxRequestsPerReader = 50000
	var wg sync.WaitGroup

	type verdict struct {
		requests int
		versions map[string]bool
		err      string
	}
	verdicts := make([]verdict, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(v *verdict) {
			defer wg.Done()
			v.versions = map[string]bool{}
			for n := 0; len(v.versions) < 2 && n < maxRequestsPerReader; n++ {
				rec := doRaw(s, "POST", "/v1/predict", body)
				if rec.Code != http.StatusOK {
					v.err = fmt.Sprintf("predict answered %d mid-swap: %s", rec.Code, rec.Body.String())
					return
				}
				etag := rec.Header().Get("ETag")
				wantBody, ok := want[etag]
				if !ok {
					v.err = fmt.Sprintf("response carries unknown ETag %q", etag)
					return
				}
				if got := rec.Body.String(); got != wantBody {
					v.err = fmt.Sprintf("TORN READ: response under ETag %s is not that version's render\ngot:  %s\nwant: %s",
						etag, got, wantBody)
					return
				}
				v.versions[etag] = true
				v.requests++
			}
		}(&verdicts[i])
	}

	// The writer swaps through the real endpoint — covering the full
	// activate path, not just the pointer store — until every reader has
	// finished its quota, so swaps land throughout the hammer.
	readersDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(readersDone)
	}()
	swaps := 0
	for alive := true; alive; swaps++ {
		select {
		case <-readersDone:
			alive = false
		default:
		}
		v := vCoarse
		if swaps%2 == 0 {
			v = vFine
		}
		if rec := doRaw(s, "POST", "/v1/tables/"+v+"/activate", ""); rec.Code != http.StatusOK {
			t.Fatalf("swap %d to %s: %d %s", swaps, v, rec.Code, rec.Body.String())
		}
	}

	total := 0
	for i := range verdicts {
		if verdicts[i].err != "" {
			t.Fatal(verdicts[i].err)
		}
		total += verdicts[i].requests
		if len(verdicts[i].versions) != 2 {
			t.Fatalf("reader %d observed %d version(s) in %d requests; the swap never landed mid-hammer",
				i, len(verdicts[i].versions), verdicts[i].requests)
		}
	}
	t.Logf("%d requests across %d readers while %d swaps ran; every body matched its ETag's render",
		total, readers, swaps)
}
