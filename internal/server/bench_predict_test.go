package server

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// loadPredictCorpus returns the request bodies of the FuzzPredictRequest
// seed corpus under testdata/fuzz — the shared input set for the decoder
// benchmarks and the decoder-reference test.
func loadPredictCorpus(t testing.TB) [][]byte {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", "FuzzPredictRequest")
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fuzz corpus: %v", err)
	}
	var out [][]byte
	for _, f := range files {
		raw, err := os.ReadFile(filepath.Join(dir, f.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(raw), "\n") {
			line = strings.TrimSpace(line)
			const prefix = "[]byte("
			if !strings.HasPrefix(line, prefix) || !strings.HasSuffix(line, ")") {
				continue
			}
			s, err := strconv.Unquote(line[len(prefix) : len(line)-1])
			if err != nil {
				t.Fatalf("corpus %s: unquoting %q: %v", f.Name(), line, err)
			}
			out = append(out, []byte(s))
		}
	}
	if len(out) == 0 {
		t.Fatalf("no corpus entries under %s", dir)
	}
	return out
}

// batchBody builds a valid n-DSR batch request mixing hex and numeric
// encodings of trained and unobserved DSRs, seeded from the fixture
// table.
func batchBody(t testing.TB, n int) []byte {
	t.Helper()
	_, _, table := fixtureData()
	var b bytes.Buffer
	b.WriteString(`{"dsrs":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		dsr := table.Dict.Set(i % table.Dict.Len())
		if i%3 == 2 {
			dsr = ^dsr // unobserved: exercise the default-entry render
		}
		if i%2 == 0 {
			fmt.Fprintf(&b, `"%x"`, dsr)
		} else {
			fmt.Fprintf(&b, `%d`, dsr)
		}
	}
	b.WriteString(`]}`)
	return b.Bytes()
}

// BenchmarkPredictDecode measures the zero-alloc request scanner over
// the FuzzPredictRequest seed corpus (valid and invalid bodies alike,
// round-robin), plus the two shapes that dominate production traffic.
func BenchmarkPredictDecode(b *testing.B) {
	corpus := loadPredictCorpus(b)
	single := []byte(`{"dsr":"1a2b"}`)
	batch := batchBody(b, 1024)

	b.Run("corpus", func(b *testing.B) {
		var dst []uint64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			got, _ := parsePredictInto(corpus[i%len(corpus)], dst[:0], 1024)
			if got != nil {
				dst = got
			}
		}
	})
	b.Run("single", func(b *testing.B) {
		var dst []uint64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			got, err := parsePredictInto(single, dst[:0], 1024)
			if err != nil {
				b.Fatal(err)
			}
			dst = got
		}
	})
	b.Run("batch1024", func(b *testing.B) {
		var dst []uint64
		b.SetBytes(int64(len(batch)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			got, err := parsePredictInto(batch, dst[:0], 1024)
			if err != nil {
				b.Fatal(err)
			}
			dst = got
		}
	})
}

// BenchmarkPredictE2E measures the serving hot path end to end — body
// bytes in, response bytes out: pooled decode, dense DSR→prediction
// lookup, response render. This is the unit the CI alloc guard holds at
// zero allocs/op.
func BenchmarkPredictE2E(b *testing.B) {
	_, _, table := fixtureData()
	s, err := New(Options{Table: table})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	cases := []struct {
		name string
		body []byte
	}{
		{"single-known", []byte(fmt.Sprintf(`{"dsr":"%x"}`, table.Dict.Set(0)))},
		{"single-unknown", []byte(`{"dsr":"3fffffffffffffff"}`)},
		{"batch1024", batchBody(b, 1024)},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			sc := &predictScratch{}
			if _, _, err := s.predictBytes(ctx, s.tables.current(), sc, tc.body); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(tc.body)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.predictBytes(ctx, s.tables.current(), sc, tc.body); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
