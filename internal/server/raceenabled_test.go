//go:build race

package server

// raceEnabled reports whether the race detector is compiled in; the
// allocation-regression guard skips its strict zero-alloc assertion under
// -race, where the detector's own bookkeeping allocates.
const raceEnabled = true
