package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"lockstep/internal/handler"
	"lockstep/internal/telemetry"
)

// maxPredictBody bounds a predict request body; a 1024-DSR batch of hex
// strings is well under this.
const maxPredictBody = 1 << 20

// dsrValue decodes a Divergence Status Register snapshot from JSON:
// either a hex string ("1a2b" or "0x1a2b", the dataset CSV convention)
// or a non-negative integer.
type dsrValue uint64

func (d *dsrValue) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		s = strings.TrimPrefix(strings.TrimPrefix(s, "0x"), "0X")
		v, err := strconv.ParseUint(s, 16, 64)
		if err != nil {
			return fmt.Errorf("DSR %q is not a hex diverged-SC map", s)
		}
		*d = dsrValue(v)
		return nil
	}
	v, err := strconv.ParseUint(string(b), 10, 64)
	if err != nil {
		return fmt.Errorf("DSR %s is not a hex string or non-negative integer", b)
	}
	*d = dsrValue(v)
	return nil
}

// predictRequest is the /v1/predict body: exactly one of dsr (single)
// or dsrs (batch) must be present.
type predictRequest struct {
	DSR  *dsrValue  `json:"dsr,omitempty"`
	DSRs []dsrValue `json:"dsrs,omitempty"`
}

// predictionJSON is one prediction in the response: the DSR→PTAR→table
// lookup result the on-device error handler would act on.
type predictionJSON struct {
	DSR   string   `json:"dsr"`   // hex, as in the dataset CSV
	PTAR  int      `json:"ptar"`  // prediction table address the DSR mapped to
	Known bool     `json:"known"` // false: unobserved set, default entry
	Type  string   `json:"type"`  // "soft" or "hard"
	Units []string `json:"units"` // predicted unit test order, names
	Order []int    `json:"order"` // same order, unit IDs at the table granularity
}

type predictResponse struct {
	Granularity string           `json:"granularity"`
	TableSets   int              `json:"table_sets"`
	Predictions []predictionJSON `json:"predictions"`
}

// parsePredictRequest decodes and validates a predict body into the DSR
// batch to look up. It is the fuzz surface of FuzzPredictRequest.
func parsePredictRequest(data []byte, maxBatch int) ([]dsrValue, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var req predictRequest
	if err := dec.Decode(&req); err != nil {
		return nil, errf(http.StatusBadRequest, "bad_request", "decoding request: %v", err)
	}
	if dec.More() {
		return nil, errf(http.StatusBadRequest, "bad_request", "trailing data after request object")
	}
	switch {
	case req.DSR != nil && req.DSRs != nil:
		return nil, &apiError{Status: http.StatusBadRequest, Code: "bad_request",
			Message: "dsr and dsrs are mutually exclusive", Field: "dsr"}
	case req.DSR != nil:
		return []dsrValue{*req.DSR}, nil
	case len(req.DSRs) == 0:
		return nil, &apiError{Status: http.StatusBadRequest, Code: "bad_request",
			Message: "one of dsr or dsrs is required", Field: "dsr"}
	case len(req.DSRs) > maxBatch:
		return nil, &apiError{Status: http.StatusRequestEntityTooLarge, Code: "batch_too_large",
			Message: fmt.Sprintf("batch of %d DSRs exceeds the %d limit", len(req.DSRs), maxBatch), Field: "dsrs"}
	}
	return req.DSRs, nil
}

// handlePredict serves POST /v1/predict: the online half of the paper's
// flow. Each DSR is pushed through the same front-end the error handler
// uses — latch, PTAR address mapping, table entry fetch — and the
// predicted unit order and soft/hard verdict come back.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) error {
	if s.opt.Table == nil {
		return errf(http.StatusServiceUnavailable, "table_not_loaded",
			"no prediction table loaded (start lockstep-serve with -table)")
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPredictBody))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return errf(http.StatusRequestEntityTooLarge, "body_too_large",
				"request body exceeds %d bytes", tooLarge.Limit)
		}
		return errf(http.StatusBadRequest, "bad_request", "reading body: %v", err)
	}
	dsrs, err := parsePredictRequest(body, s.opt.MaxBatch)
	if err != nil {
		return err
	}

	h := handler.New(s.opt.Table, s.opt.SBIST)
	resp := predictResponse{
		Granularity: s.opt.Table.Gran.String(),
		TableSets:   s.opt.Table.Dict.Len(),
		Predictions: make([]predictionJSON, 0, len(dsrs)),
	}
	for _, d := range dsrs {
		if err := deadlineErr(r.Context()); err != nil {
			return err
		}
		p := h.Predict(uint64(d))
		order := make([]int, len(p.Order))
		for i, u := range p.Order {
			order[i] = int(u)
		}
		typ := "soft"
		if p.Hard {
			typ = "hard"
		}
		resp.Predictions = append(resp.Predictions, predictionJSON{
			DSR:   fmt.Sprintf("%x", p.DSR),
			PTAR:  p.PTAR,
			Known: p.Known,
			Type:  typ,
			Units: p.Units,
			Order: order,
		})
	}
	s.reg.Counter("server.predictions").Add(int64(len(dsrs)))
	s.reg.Histogram("server.predict_batch", telemetry.PopBuckets).Observe(int64(len(dsrs)))
	writeJSON(w, http.StatusOK, resp)
	return nil
}
