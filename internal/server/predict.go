package server

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
)

// maxPredictBody bounds a predict request body; a 1024-DSR batch of hex
// strings is well under this.
const maxPredictBody = 1 << 20

// predictionJSON is one prediction in the response: the DSR→PTAR→table
// lookup result the on-device error handler would act on.
type predictionJSON struct {
	DSR   string   `json:"dsr"`   // hex, as in the dataset CSV
	PTAR  int      `json:"ptar"`  // prediction table address the DSR mapped to
	Known bool     `json:"known"` // false: unobserved set, default entry
	Type  string   `json:"type"`  // "soft" or "hard"
	Units []string `json:"units"` // predicted unit test order, names
	Order []int    `json:"order"` // same order, unit IDs at the table granularity
}

type predictResponse struct {
	Granularity string           `json:"granularity"`
	TableSets   int              `json:"table_sets"`
	Predictions []predictionJSON `json:"predictions"`
}

// handlePredict serves POST /v1/predict: the online half of the paper's
// flow. Each DSR is pushed through the same front-end the error handler
// uses — latch, PTAR address mapping, table entry fetch — and the
// predicted unit order and soft/hard verdict come back. The whole
// request is served out of pooled scratch against the precomputed dense
// table: the only per-request heap work left is what stdlib HTTP
// plumbing does around this handler (TestPredictZeroAlloc holds the
// handler-owned part at zero and the full round trip to a fixed
// budget).
//
// The serving bundle is loaded from the table manager's atomic pointer
// exactly once, here, and every byte of the response — including the
// ETag, which carries the bundle's version digest — is rendered from
// that one bundle. A hot swap between two requests changes which bundle
// the next Load returns; it can never change (or mix) the one a request
// in flight already holds. The swap-atomicity race test pins the
// contract: under concurrent swaps, each response body must be
// byte-identical to the render of exactly the table its ETag names.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) error {
	b, err := s.requireTable()
	if err != nil {
		return err
	}
	// A client that states which lockstep mode it is deployed under is
	// refused when the live table was trained under a different one: a
	// slip:N table encodes slip-shifted detection latencies, a tmr table
	// encodes post-recovery outcomes, and serving either to a dcls
	// deployment (or vice versa) would be a silent model/plant mismatch.
	// The check stays off the zero-alloc hot path: Header.Get does not
	// allocate and mode.String() runs only when the header is present.
	if want := r.Header.Get("X-Lockstep-Mode"); want != "" && want != b.mode.String() {
		return &apiError{Status: http.StatusConflict, Code: "mode_mismatch",
			Message: fmt.Sprintf("live table %s was trained under mode %s, request requires %s",
				b.version, b.mode, want), Field: "mode"}
	}
	sc := getPredictScratch()
	defer putPredictScratch(sc)

	body, err := readBodyInto(r.Body, sc.body, maxPredictBody)
	sc.body = body
	if err == errBodyTooLarge {
		return errf(http.StatusRequestEntityTooLarge, "body_too_large",
			"request body exceeds %d bytes", maxPredictBody)
	}
	if err != nil {
		return errf(http.StatusBadRequest, "bad_request", "reading body: %v", err)
	}

	out, n, err := s.predictBytes(r.Context(), b, sc, body)
	if err != nil {
		return err
	}
	s.predictions.Add(int64(n))
	s.predictBatch.Observe(int64(n))
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", b.etag)
	w.Write(out)
	return nil
}

// predictBytes is the serving hot path minus HTTP plumbing: decode the
// request body and render the response bytes out of sc's reusable
// buffers against the caller's pinned bundle, returning the rendered
// response and the batch size. It is the unit BenchmarkPredictE2E and
// the lockstep-bench allocs/req probe measure, and it performs zero heap
// allocations in steady state — the bundle indirection is a pointer
// dereference, not a copy.
func (s *Server) predictBytes(ctx context.Context, b *tableBundle, sc *predictScratch, body []byte) ([]byte, int, error) {
	dsrs, err := parsePredictInto(body, sc.dsrs, s.opt.MaxBatch)
	if dsrs != nil {
		sc.dsrs = dsrs[:0]
	}
	if err != nil {
		return nil, 0, err
	}
	out, err := b.dense.appendResponse(sc.out[:0], dsrs, ctx)
	sc.out = out[:0]
	if err != nil {
		return nil, 0, err
	}
	return out, len(dsrs), nil
}

// PredictAllocsPerRun measures the steady-state heap allocations one
// predict request costs on the serving hot path (request decode + dense
// lookup + response render — everything the server adds beyond stdlib
// HTTP plumbing) for the given request body. lockstep-bench reports it
// as allocs/req in BENCH_serve.json and the CI SLO smoke holds it at
// zero. The measurement mirrors testing.AllocsPerRun: warm up, pin to
// one P, and average the mallocs delta over many runs.
func (s *Server) PredictAllocsPerRun(body []byte) (float64, error) {
	b := s.tables.current()
	if b == nil {
		return 0, fmt.Errorf("no prediction table loaded")
	}
	sc := &predictScratch{}
	ctx := context.Background()
	if _, _, err := s.predictBytes(ctx, b, sc, body); err != nil {
		return 0, fmt.Errorf("probe body rejected: %w", err)
	}

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	const runs = 100
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		s.predictBytes(ctx, b, sc, body)
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / runs, nil
}
