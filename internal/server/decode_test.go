package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// ---- reference decoder -------------------------------------------------
//
// This is the PR-5 reflection decoder, kept verbatim as the behavioural
// oracle for the zero-alloc scanner in decode.go: same accept/reject
// decisions, same parsed values, same error status/code/field.

type refDSRValue uint64

func (d *refDSRValue) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		s = strings.TrimPrefix(strings.TrimPrefix(s, "0x"), "0X")
		v, err := strconv.ParseUint(s, 16, 64)
		if err != nil {
			return fmt.Errorf("DSR %q is not a hex diverged-SC map", s)
		}
		*d = refDSRValue(v)
		return nil
	}
	v, err := strconv.ParseUint(string(b), 10, 64)
	if err != nil {
		return fmt.Errorf("DSR %s is not a hex string or non-negative integer", b)
	}
	*d = refDSRValue(v)
	return nil
}

type refPredictRequest struct {
	DSR  *refDSRValue  `json:"dsr,omitempty"`
	DSRs []refDSRValue `json:"dsrs,omitempty"`
}

func referenceParsePredict(data []byte, maxBatch int) ([]uint64, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var req refPredictRequest
	if err := dec.Decode(&req); err != nil {
		return nil, errf(http.StatusBadRequest, "bad_request", "decoding request: %v", err)
	}
	if dec.More() {
		return nil, errf(http.StatusBadRequest, "bad_request", "trailing data after request object")
	}
	switch {
	case req.DSR != nil && req.DSRs != nil:
		return nil, &apiError{Status: http.StatusBadRequest, Code: "bad_request",
			Message: "dsr and dsrs are mutually exclusive", Field: "dsr"}
	case req.DSR != nil:
		return []uint64{uint64(*req.DSR)}, nil
	case len(req.DSRs) == 0:
		return nil, &apiError{Status: http.StatusBadRequest, Code: "bad_request",
			Message: "one of dsr or dsrs is required", Field: "dsr"}
	case len(req.DSRs) > maxBatch:
		return nil, &apiError{Status: http.StatusRequestEntityTooLarge, Code: "batch_too_large",
			Message: fmt.Sprintf("batch of %d DSRs exceeds the %d limit", len(req.DSRs), maxBatch), Field: "dsrs"}
	}
	out := make([]uint64, len(req.DSRs))
	for i, v := range req.DSRs {
		out[i] = uint64(v)
	}
	return out, nil
}

// ------------------------------------------------------------------------

// checkDecodeAgainstReference runs one body through both decoders and
// fails unless they agree on accept/reject, the parsed batch, and the
// error's status, code and field.
func checkDecodeAgainstReference(t *testing.T, body []byte, maxBatch int) {
	t.Helper()
	want, wantErr := referenceParsePredict(body, maxBatch)
	got, gotErr := parsePredictInto(body, nil, maxBatch)
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("body %q: reference err %v, scanner err %v", body, wantErr, gotErr)
	}
	if wantErr != nil {
		var wa, ga *apiError
		if !errors.As(wantErr, &wa) || !errors.As(gotErr, &ga) {
			t.Fatalf("body %q: non-apiError (%v vs %v)", body, wantErr, gotErr)
		}
		if wa.Status != ga.Status || wa.Code != ga.Code || wa.Field != ga.Field {
			t.Fatalf("body %q: reference %d/%s/%q, scanner %d/%s/%q (%v vs %v)",
				body, wa.Status, wa.Code, wa.Field, ga.Status, ga.Code, ga.Field, wantErr, gotErr)
		}
		return
	}
	if len(want) != len(got) {
		t.Fatalf("body %q: reference %d DSRs, scanner %d", body, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("body %q: DSR %d is %x per reference, %x per scanner", body, i, want[i], got[i])
		}
	}
}

// TestDecodeMatchesReference locks the zero-alloc scanner to the PR-5
// reflection decoder over the fuzz seed corpus and a table of crafted
// bodies covering every grammar branch and error precedence rule.
func TestDecodeMatchesReference(t *testing.T) {
	bodies := []string{
		// happy paths
		`{"dsr":"1a2b"}`, `{"dsr":"0x1a2b"}`, `{"dsr":"0X1A2B"}`, `{"dsr":42}`,
		`{"dsr":0}`, `{"dsr":"0"}`, `{"dsr":"ffffffffffffffff"}`,
		`{"dsr":18446744073709551615}`, `{"dsrs":[1,2,3]}`,
		`{"dsrs":["0","ffffffffffffffff",7]}`, `{"dsrs":["0x0X1","0X0x1"]}`,
		` { "dsr" : "2a" } `, "\t{\n\"dsrs\"\r:\n[ 1 , \"2\" ]\n}\n",
		`{"dsr":"00000000000000000001"}`,
		// case-insensitive field match
		`{"DSR":"1"}`, `{"Dsrs":[1]}`,
		// escaped strings (slow path)
		`{"dsr":"\u0031\u0061"}`, `{"dsrs":["\u0032"]}`,
		// last-wins duplicate keys
		`{"dsr":1,"dsr":2}`, `{"dsrs":[1],"dsrs":[2,3]}`,
		// null fields and null elements
		`{"dsr":null}`, `{"dsrs":null}`, `{"dsrs":[null]}`, `null`,
		// required / exclusive / batch errors
		`{}`, `{"dsr":"1","dsrs":["2"]}`, `{"dsrs":["1"],"dsr":"2"}`, `{"dsrs":[]}`,
		`{"dsrs":[1,2,3,4,5]}`, `{"dsr":"1","dsrs":[1,2,3,4,5]}`,
		// value errors
		`{"dsr":"zz"}`, `{"dsr":"-4"}`, `{"dsr":""}`, `{"dsr":"0x"}`,
		`{"dsr":-1}`, `{"dsr":1.5}`, `{"dsr":1e300}`, `{"dsr":true}`,
		`{"dsr":[1]}`, `{"dsr":{}}`, `{"dsrs":[true]}`, `{"dsrs":["zz"]}`,
		`{"dsr":184467440737095516160}`, `{"dsrs":[18446744073709551616]}`,
		`{"dsr":"10000000000000000"}`,
		// syntax errors
		``, ` `, `{`, `[]`, `true`, `"dsr"`, `{"dsr":}`, `{"dsr"}`, `{,}`,
		`{"dsr":42,}`, `{"dsr":42 "x":1}`, `{"dsrs":[1,]}`, `{"dsrs":[1 2]}`,
		`{"dsrs":"1"}`, `{"dsr":"1"`, `{"dsrs":[1`, `{"dsr":01}`,
		// unknown fields and trailing data
		`{"x":1}`, `{"dsr":"1","x":2}`, `{"dsr":"1"} {}`, `{"dsr":"1"} trailing`,
		`null {}`,
	}
	for _, f := range loadPredictCorpus(t) {
		bodies = append(bodies, string(f))
	}
	for _, b := range bodies {
		checkDecodeAgainstReference(t, []byte(b), 4)
	}
}

// TestDecodeStricterThanReference records the one deliberate tightening
// over the reflection decoder: json.Decoder.More() treated a trailing
// close-delimiter as end-of-stream, so the old path silently accepted
// bodies like `{"dsr":"1"}}`. The scanner rejects all trailing bytes.
func TestDecodeStricterThanReference(t *testing.T) {
	for _, body := range []string{`{"dsr":"1"}}`, `{"dsr":"1"}]`} {
		if _, err := referenceParsePredict([]byte(body), 4); err != nil {
			t.Fatalf("reference unexpectedly rejects %q: %v", body, err)
		}
		if _, err := parsePredictInto([]byte(body), nil, 4); err == nil {
			t.Fatalf("scanner accepts trailing close-delimiter %q", body)
		}
	}
}

// TestDecodeMatchesReferenceRandom hammers both decoders with seeded
// randomly composed bodies — valid and broken fragments mixed — so
// agreement does not hinge on the hand-picked table above.
func TestDecodeMatchesReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	values := []string{
		`"1a"`, `"0"`, `"0xff"`, `"zz"`, `""`, `17`, `0`, `-3`, `1.5`, `2e9`,
		`"ffffffffffffffff"`, `18446744073709551615`, `99999999999999999999`,
		`true`, `null`, `[]`, `{}`, `"\u0041"`, `07`,
	}
	keys := []string{`"dsr"`, `"dsrs"`, `"DSR"`, `"other"`, `"dsr"`, `"dsrs"`}
	ws := []string{"", " ", "\n", "\t "}
	w := func() string { return ws[rng.Intn(len(ws))] }
	for i := 0; i < 3000; i++ {
		var b strings.Builder
		b.WriteString(w() + "{")
		pairs := rng.Intn(3)
		for p := 0; p < pairs; p++ {
			if p > 0 {
				b.WriteString(",")
			}
			b.WriteString(w() + keys[rng.Intn(len(keys))] + w() + ":" + w())
			if rng.Intn(2) == 0 {
				b.WriteString(values[rng.Intn(len(values))])
			} else {
				n := rng.Intn(7)
				b.WriteString("[")
				for e := 0; e < n; e++ {
					if e > 0 {
						b.WriteString("," + w())
					}
					b.WriteString(values[rng.Intn(len(values))])
				}
				b.WriteString("]")
			}
			b.WriteString(w())
		}
		b.WriteString("}")
		if rng.Intn(8) == 0 {
			b.WriteString(" {}")
		}
		body := b.String()
		if rng.Intn(10) == 0 && len(body) > 2 {
			body = body[:rng.Intn(len(body))] // truncate: syntax errors
		}
		checkDecodeAgainstReference(t, []byte(body), 4)
	}
}

// TestReadBodyInto covers the pooled body reader: capacity reuse, exact
// EOF handling, and the over-limit path.
func TestReadBodyInto(t *testing.T) {
	buf, err := readBodyInto(strings.NewReader("hello"), nil, 16)
	if err != nil || string(buf) != "hello" {
		t.Fatalf("read: %q, %v", buf, err)
	}
	reused, err := readBodyInto(strings.NewReader("ok"), buf, 16)
	if err != nil || string(reused) != "ok" {
		t.Fatalf("reuse: %q, %v", reused, err)
	}
	if &reused[0] != &buf[0] {
		t.Fatal("reuse did not keep the buffer")
	}
	if _, err := readBodyInto(strings.NewReader(strings.Repeat("x", 17)), nil, 16); err != errBodyTooLarge {
		t.Fatalf("over limit: %v, want errBodyTooLarge", err)
	}
	if b, err := readBodyInto(strings.NewReader(strings.Repeat("x", 16)), nil, 16); err != nil || len(b) != 16 {
		t.Fatalf("at limit: %d bytes, %v", len(b), err)
	}
}
