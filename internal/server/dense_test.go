package server

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lockstep/internal/handler"
	"lockstep/internal/sbist"
)

// fuzzSeedRNG derives a deterministic RNG from the FuzzPredictRequest
// seed corpus bytes, so the "fuzz-derived" unknown-DSR sample is stable
// across runs yet rooted in the same inputs the fuzzer starts from.
func fuzzSeedRNG(t testing.TB) *rand.Rand {
	t.Helper()
	h := fnv.New64a()
	dir := filepath.Join("testdata", "fuzz", "FuzzPredictRequest")
	files, err := os.ReadDir(dir)
	if err != nil || len(files) == 0 {
		t.Fatalf("reading fuzz corpus %s: %v (%d files)", dir, err, len(files))
	}
	for _, f := range files {
		b, err := os.ReadFile(filepath.Join(dir, f.Name()))
		if err != nil {
			t.Fatal(err)
		}
		h.Write(b)
	}
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// TestDenseMatchesTablePath is the dense-lookup acceptance contract:
// for every distinct training-set DSR — i.e. every trained table entry —
// plus 1000 fuzz-derived DSRs outside the training set, the precomputed
// dense slice must render bit-identical prediction bytes to the table
// path (handler front-end flow + struct building + encoding/json), and
// whole responses must be bit-identical to marshaling the equivalent
// predictResponse.
func TestDenseMatchesTablePath(t *testing.T) {
	_, _, table := testFixture(t)
	cfg := sbist.NewConfig(table.Gran, nil, sbist.OnChipTableAccess)
	dense, err := newDenseTable(table, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := handler.New(table, cfg)

	var dsrs []uint64
	for id := 0; id < table.Dict.Len(); id++ {
		dsrs = append(dsrs, table.Dict.Set(id))
	}
	trained := len(dsrs)
	if trained < 10 {
		t.Fatalf("only %d trained sets; fixture too small", trained)
	}
	rng := fuzzSeedRNG(t)
	for len(dsrs) < trained+1000 {
		v := rng.Uint64()
		if _, known := table.Dict.ID(v); !known {
			dsrs = append(dsrs, v)
		}
	}

	// Per-prediction bytes.
	for _, dsr := range dsrs {
		want, err := json.Marshal(tablePathPrediction(h, dsr))
		if err != nil {
			t.Fatal(err)
		}
		got := dense.appendPrediction(nil, dsr)
		if string(got) != string(want) {
			t.Fatalf("DSR %x: dense render\n %s\ntable path\n %s", dsr, got, want)
		}
	}

	// Whole-response bytes, trained and unknown DSRs interleaved.
	batch := append([]uint64{}, dsrs[:64]...)
	batch = append(batch, dsrs[trained:trained+64]...)
	ref := predictResponse{
		Granularity: table.Gran.String(),
		TableSets:   table.Dict.Len(),
		Predictions: make([]predictionJSON, 0, len(batch)),
	}
	for _, dsr := range batch {
		ref.Predictions = append(ref.Predictions, tablePathPrediction(h, dsr))
	}
	want, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dense.appendResponse(nil, batch, context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("dense response differs from table path:\n %s\nvs\n %s", got, want)
	}
}

// TestPredictEndpointServesDenseBytes: the endpoint must write exactly
// the dense render — so the equivalence contract above covers the wire
// format too.
func TestPredictEndpointServesDenseBytes(t *testing.T) {
	_, _, table := testFixture(t)
	s := newTestServer(t, nil)

	known := table.Dict.Set(0)
	body := fmt.Sprintf(`{"dsrs":["%x","3fffffffffffffff"]}`, known)
	req := httptest.NewRequest("POST", "/v1/predict", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("predict: %d %s", rec.Code, rec.Body.String())
	}
	want, err := s.tables.current().dense.appendResponse(nil, []uint64{known, 0x3fffffffffffffff}, context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Body.String() != string(want) {
		t.Fatalf("endpoint bytes differ from dense render:\n %q\nvs\n %q", rec.Body.String(), want)
	}
}
