package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"lockstep/internal/core"
	"lockstep/internal/dataset"
	"lockstep/internal/handler"
	"lockstep/internal/inject"
	"lockstep/internal/sbist"
	"lockstep/internal/telemetry"
)

// trainingCampaign is the schedule of the shared test campaign; tests
// that byte-compare server datasets against a direct inject.Run use the
// same schedule.
func trainingCampaign() inject.Config {
	return inject.Config{
		Kernels:               []string{"ttsprk"},
		RunCycles:             3000,
		Intervals:             64,
		InjectionsPerFlopKind: 1,
		FlopStride:            24,
		Seed:                  9,
	}
}

// campaignJSON is the wire form of trainingCampaign.
const campaignJSON = `{"kernels":["ttsprk"],"run_cycles":3000,"flop_stride":24,"seed":9}`

var fixtureOnce sync.Once
var fixture struct {
	ds    *dataset.Dataset
	csv   []byte
	table *core.Table
}

// testFixture runs the shared campaign once per test binary and trains
// a prediction table from it.
func testFixture(t *testing.T) (*dataset.Dataset, []byte, *core.Table) {
	t.Helper()
	return fixtureData()
}

func fixtureData() (*dataset.Dataset, []byte, *core.Table) {
	fixtureOnce.Do(func() {
		ds, err := inject.Run(trainingCampaign())
		if err != nil {
			panic(err)
		}
		var buf bytes.Buffer
		if err := ds.WriteCSV(&buf); err != nil {
			panic(err)
		}
		fixture.ds = ds
		fixture.csv = buf.Bytes()
		fixture.table = core.Train(ds, core.Coarse7, 0)
	})
	return fixture.ds, fixture.csv, fixture.table
}

// newTestServer builds a server on a fresh registry and temp data dir,
// drained at cleanup.
func newTestServer(t *testing.T, mutate func(*Options)) *Server {
	t.Helper()
	_, _, table := testFixture(t)
	opt := Options{
		Table:    table,
		DataDir:  t.TempDir(),
		Registry: telemetry.New(),
	}
	if mutate != nil {
		mutate(&opt)
	}
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s
}

// do performs one in-process request and decodes the response body.
func do(t *testing.T, s *Server, method, path, body string) (int, map[string]any) {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	out := map[string]any{}
	if ct := rec.Header().Get("Content-Type"); strings.Contains(ct, "json") {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("%s %s: bad JSON response %q: %v", method, path, rec.Body.String(), err)
		}
	} else {
		out["raw"] = rec.Body.String()
	}
	return rec.Code, out
}

// apiErrOf digs the error envelope out of a decoded response.
func apiErrOf(t *testing.T, body map[string]any) map[string]any {
	t.Helper()
	e, ok := body["error"].(map[string]any)
	if !ok {
		t.Fatalf("response has no error envelope: %v", body)
	}
	return e
}

// TestEndpointErrors is the table-driven error-path suite: every
// endpoint's failure modes must come back as the structured envelope
// with the right status and code.
func TestEndpointErrors(t *testing.T) {
	s := newTestServer(t, nil)
	cases := []struct {
		name         string
		method, path string
		body         string
		status       int
		code         string
		field        string
		msg          string
	}{
		{"malformed JSON", "POST", "/v1/predict", "{", http.StatusBadRequest, "bad_request", "", ""},
		{"malformed DSR", "POST", "/v1/predict", `{"dsr":"zz"}`, http.StatusBadRequest, "bad_request", "", ""},
		{"decimal string DSR rejected as hex", "POST", "/v1/predict", `{"dsr":"-4"}`, http.StatusBadRequest, "bad_request", "", ""},
		{"missing DSR", "POST", "/v1/predict", `{}`, http.StatusBadRequest, "bad_request", "dsr", ""},
		{"both dsr and dsrs", "POST", "/v1/predict", `{"dsr":"1","dsrs":["2"]}`, http.StatusBadRequest, "bad_request", "dsr", ""},
		{"unknown field", "POST", "/v1/predict", `{"dsr":"1","x":2}`, http.StatusBadRequest, "bad_request", "", ""},
		{"trailing garbage", "POST", "/v1/predict", `{"dsr":"1"} {}`, http.StatusBadRequest, "bad_request", "", ""},
		{"oversized batch", "POST", "/v1/predict", oversizedBatch(4097), http.StatusRequestEntityTooLarge, "batch_too_large", "dsrs", ""},
		{"campaign malformed", "POST", "/v1/campaigns", "[1,2]", http.StatusBadRequest, "bad_request", "", ""},
		// The message must be the exact ConfigError rendering the
		// lockstep-inject CLI prints, so both paths report the offending
		// field identically.
		{"campaign unknown kernel", "POST", "/v1/campaigns", `{"kernels":["nosuch"]}`, http.StatusBadRequest, "invalid_config", "Kernels", `config Kernels: unknown kernel "nosuch"`},
		{"campaign unknown kind", "POST", "/v1/campaigns", `{"kinds":["gamma-ray"]}`, http.StatusBadRequest, "invalid_config", "Kinds", ""},
		{"campaign negative cycles", "POST", "/v1/campaigns", `{"run_cycles":-1}`, http.StatusBadRequest, "invalid_config", "run_cycles", ""},
		{"unknown job", "GET", "/v1/campaigns/deadbeef", "", http.StatusNotFound, "unknown_job", "id", ""},
		{"unknown job dataset", "GET", "/v1/campaigns/deadbeef/dataset", "", http.StatusNotFound, "unknown_job", "id", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := do(t, s, tc.method, tc.path, tc.body)
			if code != tc.status {
				t.Fatalf("status %d, want %d (body %v)", code, tc.status, body)
			}
			e := apiErrOf(t, body)
			if e["code"] != tc.code {
				t.Fatalf("error code %v, want %q", e["code"], tc.code)
			}
			if tc.field != "" && e["field"] != tc.field {
				t.Fatalf("error field %v, want %q", e["field"], tc.field)
			}
			if tc.msg != "" && !strings.Contains(e["message"].(string), tc.msg) {
				t.Fatalf("error message %q does not contain %q", e["message"], tc.msg)
			}
		})
	}
}

func oversizedBatch(n int) string {
	var b strings.Builder
	b.WriteString(`{"dsrs":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`"1"`)
	}
	b.WriteString(`]}`)
	return b.String()
}

// TestPredictMatchesOfflineHandler is the acceptance contract: for every
// distinct DSR pattern in the training set, the endpoint must return
// exactly the unit order and error type the offline handler path
// produces.
func TestPredictMatchesOfflineHandler(t *testing.T) {
	ds, _, table := testFixture(t)
	s := newTestServer(t, nil)

	seen := map[uint64]bool{}
	var dsrs []string
	for _, r := range ds.Records {
		if r.Detected && !seen[r.DSR] {
			seen[r.DSR] = true
			dsrs = append(dsrs, fmt.Sprintf("%q", fmt.Sprintf("%x", r.DSR)))
		}
	}
	if len(dsrs) < 10 {
		t.Fatalf("training set has only %d distinct DSRs; fixture too small", len(dsrs))
	}
	// Add one never-trained pattern to cover the default entry.
	dsrs = append(dsrs, `"3fffffffffffffff"`)

	code, body := do(t, s, "POST", "/v1/predict", `{"dsrs":[`+strings.Join(dsrs, ",")+`]}`)
	if code != http.StatusOK {
		t.Fatalf("predict: status %d, body %v", code, body)
	}
	preds := body["predictions"].([]any)
	if len(preds) != len(dsrs) {
		t.Fatalf("%d predictions for %d DSRs", len(preds), len(dsrs))
	}

	h := handler.New(table, sbist.NewConfig(core.Coarse7, nil, sbist.OnChipTableAccess))
	for i, p := range preds {
		pm := p.(map[string]any)
		var dsr uint64
		fmt.Sscanf(pm["dsr"].(string), "%x", &dsr)
		want := h.Predict(dsr)
		wantType := "soft"
		if want.Hard {
			wantType = "hard"
		}
		if pm["type"] != wantType || int(pm["ptar"].(float64)) != want.PTAR || pm["known"].(bool) != want.Known {
			t.Fatalf("prediction %d (DSR %x): got %v, offline handler says type=%s ptar=%d known=%v",
				i, dsr, pm, wantType, want.PTAR, want.Known)
		}
		order := pm["order"].([]any)
		if len(order) != len(want.Order) {
			t.Fatalf("DSR %x: order length %d, want %d", dsr, len(order), len(want.Order))
		}
		for j := range order {
			if int(order[j].(float64)) != int(want.Order[j]) {
				t.Fatalf("DSR %x: order %v, offline handler says %v", dsr, order, want.Order)
			}
			if pm["units"].([]any)[j].(string) != want.Units[j] {
				t.Fatalf("DSR %x: unit names %v, want %v", dsr, pm["units"], want.Units)
			}
		}
	}
}

// TestPredictSingleAndNumericDSR: the single-DSR sugar and numeric DSRs
// behave like a one-element batch.
func TestPredictSingleAndNumericDSR(t *testing.T) {
	s := newTestServer(t, nil)
	for _, body := range []string{`{"dsr":"0x2a"}`, `{"dsr":42}`, `{"dsrs":[42]}`} {
		code, resp := do(t, s, "POST", "/v1/predict", body)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d (%v)", body, code, resp)
		}
		preds := resp["predictions"].([]any)
		if len(preds) != 1 {
			t.Fatalf("%s: %d predictions", body, len(preds))
		}
		if got := preds[0].(map[string]any)["dsr"]; got != "2a" {
			t.Fatalf("%s: echoed DSR %v, want 2a", body, got)
		}
	}
}

// TestPredictWithoutTable: a server without a table keeps the campaign
// API but answers 503 on predict.
func TestPredictWithoutTable(t *testing.T) {
	s := newTestServer(t, func(o *Options) { o.Table = nil })
	code, body := do(t, s, "POST", "/v1/predict", `{"dsr":"1"}`)
	if code != http.StatusServiceUnavailable || apiErrOf(t, body)["code"] != "table_not_loaded" {
		t.Fatalf("predict without table: %d %v", code, body)
	}
}

// TestDeadlineExceeded: an expired per-request deadline answers 504 with
// the structured envelope on every endpoint.
func TestDeadlineExceeded(t *testing.T) {
	s := newTestServer(t, func(o *Options) { o.RequestTimeout = time.Nanosecond })
	for _, path := range []string{"/v1/predict", "/v1/campaigns"} {
		code, body := do(t, s, "POST", path, `{}`)
		if code != http.StatusGatewayTimeout || apiErrOf(t, body)["code"] != "deadline_exceeded" {
			t.Fatalf("%s: %d %v, want 504 deadline_exceeded", path, code, body)
		}
	}
}

// TestConcurrencyLimiter: with the limiter full, requests get an
// immediate structured 429 and the throttle counter moves; once the slot
// frees, requests flow again.
func TestConcurrencyLimiter(t *testing.T) {
	s := newTestServer(t, func(o *Options) { o.MaxInFlight = 1 })
	hold := make(chan struct{})
	s.testHold = hold

	release := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		release <- rec.Code
	}()
	// Wait until the held request owns the only slot.
	for i := 0; s.inFlight.Value() == 0; i++ {
		if i > 1000 {
			t.Fatal("held request never claimed the limiter slot")
		}
		time.Sleep(time.Millisecond)
	}

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("limiter full: status %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var envelope struct {
		Error struct{ Code string }
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &envelope); err != nil || envelope.Error.Code != "overloaded" {
		t.Fatalf("429 body %q (err %v), want overloaded envelope", rec.Body.String(), err)
	}
	if s.throttled.Value() != 1 {
		t.Fatalf("throttled counter %d, want 1", s.throttled.Value())
	}

	close(hold)
	if code := <-release; code != http.StatusOK {
		t.Fatalf("held request finished with %d", code)
	}
	s.testHold = nil
	if code, _ := do(t, s, "GET", "/healthz", ""); code != http.StatusOK {
		t.Fatalf("after release: status %d", code)
	}
}

// waitJob polls the status endpoint until the job reaches a terminal
// state (or the want state) and returns the final status body.
func waitJob(t *testing.T, s *Server, id, want string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, body := do(t, s, "GET", "/v1/campaigns/"+id, "")
		if code != http.StatusOK {
			t.Fatalf("status poll: %d %v", code, body)
		}
		state := body["state"].(string)
		if state == want || state == stateFailed {
			if state != want {
				t.Fatalf("job reached %q (error %v), want %q", state, body["error"], want)
			}
			return body
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q waiting for %q", state, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCampaignLifecycle drives the happy path end to end in process:
// submit, idempotent resubmit, status, completion, dataset download
// byte-identical to a direct inject.Run of the same schedule.
func TestCampaignLifecycle(t *testing.T) {
	_, wantCSV, _ := testFixture(t)
	s := newTestServer(t, nil)

	code, body := do(t, s, "POST", "/v1/campaigns", campaignJSON)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d %v", code, body)
	}
	id := body["id"].(string)
	if total := int(body["total"].(float64)); total <= 0 {
		t.Fatalf("submit echoed total %d", total)
	}

	// Resubmitting the same schedule is the same job, not a new one.
	code, body = do(t, s, "POST", "/v1/campaigns", campaignJSON)
	if code != http.StatusOK || body["id"].(string) != id {
		t.Fatalf("resubmit: status %d id %v, want 200 %s", code, body["id"], id)
	}

	// A dataset request before completion is a structured 409 (unless
	// the partial prefix is asked for explicitly).
	if code, body := do(t, s, "GET", "/v1/campaigns/"+id+"/dataset", ""); code == http.StatusOK {
		_ = body // completed already: fine, skip the 409 assertion
	} else if apiErrOf(t, body)["code"] != "not_done" {
		t.Fatalf("early dataset: %d %v", code, body)
	}

	final := waitJob(t, s, id, stateDone)
	if int(final["done"].(float64)) != int(final["total"].(float64)) {
		t.Fatalf("done %v != total %v", final["done"], final["total"])
	}

	code, dsBody := do(t, s, "GET", "/v1/campaigns/"+id+"/dataset", "")
	if code != http.StatusOK {
		t.Fatalf("dataset: status %d", code)
	}
	if got := dsBody["raw"].(string); !bytes.Equal([]byte(got), wantCSV) {
		t.Fatalf("HTTP dataset differs from direct inject.Run (%d vs %d bytes)", len(got), len(wantCSV))
	}

	// The job list shows it.
	code, list := do(t, s, "GET", "/v1/campaigns", "")
	if code != http.StatusOK || len(list["campaigns"].([]any)) != 1 {
		t.Fatalf("list: %d %v", code, list)
	}
}

// TestDrainAndRestartResume is the in-process restart contract: a drain
// interrupts a running job at an experiment boundary with a checkpoint;
// a new server on the same data directory adopts and resumes it, and the
// final dataset is byte-identical to an uninterrupted direct run.
func TestDrainAndRestartResume(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.New()
	_, _, table := testFixture(t)
	s, err := New(Options{Table: table, DataDir: dir, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}

	// A bigger campaign than the fixture so the drain lands mid-run.
	big := `{"kernels":["ttsprk"],"run_cycles":3000,"flop_stride":6,"seed":9,"checkpoint_every":8,"workers":2}`
	code, body := do(t, s, "POST", "/v1/campaigns", big)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, body)
	}
	id := body["id"].(string)

	// Wait for real progress, then drain.
	for i := 0; ; i++ {
		_, st := do(t, s, "GET", "/v1/campaigns/"+id, "")
		if st["state"].(string) == stateDone {
			t.Skip("campaign finished before the drain; machine too fast for this size")
		}
		if st["done"].(float64) >= 16 {
			break
		}
		if i > 20000 {
			t.Fatal("campaign never progressed")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	_, st := do(t, s, "GET", "/v1/campaigns/"+id, "")
	if st["state"].(string) == stateDone {
		t.Skip("campaign finished between the progress check and the drain; machine too fast for this size")
	}
	if st["state"].(string) != stateInterrupted {
		t.Fatalf("after drain: state %v, want interrupted", st["state"])
	}
	if _, err := os.Stat(s.jobs.ckPath(id)); err != nil {
		t.Fatalf("drained job has no checkpoint: %v", err)
	}
	// Post-drain submissions are refused.
	if code, body := do(t, s, "POST", "/v1/campaigns", `{"kernels":["puwmod"],"flop_stride":64}`); code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d %v", code, body)
	}

	// "Restart": a fresh server adopts the directory and resumes.
	s2, err := New(Options{Table: table, DataDir: dir, Registry: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s2.Drain(ctx)
	})
	final := waitJob(t, s2, id, stateDone)
	if restored := int(final["restored"].(float64)); restored < 16 {
		t.Fatalf("resumed job restored %d experiments, want >= 16", restored)
	}

	code, dsBody := do(t, s2, "GET", "/v1/campaigns/"+id+"/dataset", "")
	if code != http.StatusOK {
		t.Fatalf("dataset after resume: %d", code)
	}
	direct := trainingCampaign()
	direct.FlopStride = 6
	directDS, err := inject.Run(direct)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := directDS.WriteCSV(&want); err != nil {
		t.Fatal(err)
	}
	if got := dsBody["raw"].(string); !bytes.Equal([]byte(got), want.Bytes()) {
		t.Fatal("drain+restart dataset differs from uninterrupted direct run")
	}
}

// TestPartialDataset: while a job runs, ?partial=1 serves the completed
// prefix recovered from its checkpoint as valid dataset CSV.
func TestPartialDataset(t *testing.T) {
	s := newTestServer(t, nil)
	big := `{"kernels":["ttsprk"],"run_cycles":3000,"flop_stride":12,"seed":10,"checkpoint_every":8,"workers":2}`
	code, body := do(t, s, "POST", "/v1/campaigns", big)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, body)
	}
	id := body["id"].(string)
	var partial string
	for i := 0; ; i++ {
		code, ds := do(t, s, "GET", "/v1/campaigns/"+id+"/dataset?partial=1", "")
		if code != http.StatusOK {
			t.Fatalf("partial dataset: %d %v", code, ds)
		}
		partial = ds["raw"].(string)
		if strings.Count(partial, "\n") > 1 { // header + at least one record
			break
		}
		_, st := do(t, s, "GET", "/v1/campaigns/"+id, "")
		if st["state"].(string) == stateDone {
			t.Skip("job finished before a partial snapshot could be observed")
		}
		if i > 20000 {
			t.Fatal("no partial records ever appeared")
		}
		time.Sleep(time.Millisecond)
	}
	got, err := dataset.ReadCSV(strings.NewReader(partial))
	if err != nil {
		t.Fatalf("partial dataset is not valid CSV: %v", err)
	}
	if got.Len() == 0 {
		t.Fatal("partial dataset empty despite records line")
	}
	waitJob(t, s, id, stateDone)
}

// TestWorkersClampedToCap: a request asking for more inject workers than
// the server allows is clamped, not rejected (bytes are identical at any
// worker count).
func TestWorkersClampedToCap(t *testing.T) {
	_, cfg, err := parseCampaignRequest([]byte(`{"workers":512}`), 2)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Workers != 2 {
		t.Fatalf("workers %d, want clamp to 2", cfg.Workers)
	}
	_, cfg, err = parseCampaignRequest([]byte(`{}`), 3)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Workers != 3 {
		t.Fatalf("default workers %d, want the cap 3", cfg.Workers)
	}
}

// TestHealthzAndMetrics: liveness and the registry snapshot endpoints.
func TestHealthzAndMetrics(t *testing.T) {
	s := newTestServer(t, nil)
	code, body := do(t, s, "GET", "/healthz", "")
	if code != http.StatusOK || body["ok"] != true {
		t.Fatalf("healthz: %d %v", code, body)
	}
	if code, _ := do(t, s, "POST", "/v1/predict", `{"dsr":"1"}`); code != http.StatusOK {
		t.Fatalf("predict: %d", code)
	}
	code, body = do(t, s, "GET", "/v1/metrics", "")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	if _, ok := body["counters"]; !ok {
		t.Fatalf("metrics snapshot has no counters: %v", body)
	}
}
