package server

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"lockstep/internal/inject"
)

// TestDistributedScalingBench measures distributed-campaign scaling on
// the reference 3-kernel campaign (the BENCH_inject.json schedule):
// a coordinator plus 1/2/4 worker loops. Gated behind
// LOCKSTEP_DIST_BENCH=1 (`make distributed-bench`).
//
// Methodology for a 1-vCPU host: the workers are time-sliced through
// the shared gate, so only one span executes at any instant and each
// worker's Busy is single-core-accurate. The cluster-projected exp/s is
// experiments / max(worker Busy) — the wall-clock rate an N-machine
// cluster would see, since each machine would run its span stream in
// parallel with the others. The measured wall rate (experiments / local
// wall clock) is reported alongside and, on one core, stays ~flat by
// construction.
func TestDistributedScalingBench(t *testing.T) {
	if os.Getenv("LOCKSTEP_DIST_BENCH") == "" {
		t.Skip("set LOCKSTEP_DIST_BENCH=1 (or run `make distributed-bench`) to run the scaling bench")
	}
	cfg := inject.Config{
		Kernels:               []string{"ttsprk", "rspeed", "puwmod"},
		RunCycles:             6000,
		Intervals:             64,
		InjectionsPerFlopKind: 1,
		FlopStride:            7,
		Seed:                  3,
		Workers:               1,
	}

	// Single-machine reference on the same process and host.
	baseStart := time.Now()
	ref, _, err := inject.RunStats(cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseWall := time.Since(baseStart)
	var refCSV bytes.Buffer
	if err := ref.WriteCSV(&refCSV); err != nil {
		t.Fatal(err)
	}
	total := ref.Len()
	basePerSec := float64(total) / baseWall.Seconds()
	t.Logf("single-machine: %d experiments in %v (%.0f exp/s)", total, baseWall.Round(time.Millisecond), basePerSec)

	for _, nw := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", nw), func(t *testing.T) {
			co, err := inject.NewCoordinator(cfg, inject.DistConfig{LeaseSize: 128})
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(NewDistributor(co))
			defer ts.Close()
			url := ts.URL + "/v1/campaigns/" + co.Digest()

			gate := &sync.Mutex{}
			stats := make([]WorkerStats, nw)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
			defer cancel()
			var wg sync.WaitGroup
			wallStart := time.Now()
			for i := 0; i < nw; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					st, err := RunWorker(ctx, WorkerOptions{
						URL: url, Name: fmt.Sprintf("w%d", i), InjectWorkers: 1, gate: gate,
					})
					if err != nil {
						t.Errorf("worker %d: %v", i, err)
					}
					stats[i] = st
				}()
			}
			wg.Wait()
			if err := co.WaitDone(nil); err != nil {
				t.Fatal(err)
			}
			wall := time.Since(wallStart)
			ds, _, err := co.Result()
			if err != nil {
				t.Fatal(err)
			}
			var got bytes.Buffer
			if err := ds.WriteCSV(&got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), refCSV.Bytes()) {
				t.Fatal("distributed dataset differs from the single-machine run")
			}

			var maxBusy, sumBusy time.Duration
			for i, st := range stats {
				if st.Busy > maxBusy {
					maxBusy = st.Busy
				}
				sumBusy += st.Busy
				t.Logf("worker %d: %d spans, %d experiments, busy %v", i, st.Spans, st.Experiments, st.Busy.Round(time.Millisecond))
			}
			projected := float64(total) / maxBusy.Seconds()
			measured := float64(total) / wall.Seconds()
			t.Logf("workers=%d: wall %v (%.0f exp/s measured), max busy %v -> %.0f exp/s cluster-projected (%.2fx single-machine)",
				nw, wall.Round(time.Millisecond), measured, maxBusy.Round(time.Millisecond), projected, projected/basePerSec)
			t.Logf("%s: %s", "summary", co.Summary())
		})
	}
}
