package server

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"lockstep/internal/core"
)

// FuzzPredictRequest drives arbitrary bodies through the full predict
// endpoint: whatever the bytes, the server must answer with a well-formed
// status — 200 for a valid request, a structured 4xx otherwise — and
// never panic. The parse layer (parsePredictRequest) is exercised
// in-handler so the content-length and response paths fuzz too.
func FuzzPredictRequest(f *testing.F) {
	f.Add([]byte(`{"dsr":"1a2b"}`))
	f.Add([]byte(`{"dsr":"0xdeadbeef"}`))
	f.Add([]byte(`{"dsr":42}`))
	f.Add([]byte(`{"dsrs":["0","ffffffffffffffff",7]}`))
	f.Add([]byte(`{"dsr":"1","dsrs":["2"]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"dsr":"zz"}`))
	f.Add([]byte(`{"dsr":-1}`))
	f.Add([]byte(`{"dsr":1e300}`))
	f.Add([]byte(`{"dsrs":[]}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"dsr":"1"} trailing`))

	_, _, table := fixtureData()
	s, err := New(Options{Table: table, MaxBatch: 64})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest("POST", "/v1/predict", strings.NewReader(string(body)))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusRequestEntityTooLarge:
		default:
			t.Fatalf("predict answered %d for %q", rec.Code, body)
		}
		if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "json") {
			t.Fatalf("non-JSON response (%q) for %q", ct, body)
		}
	})
}

// FuzzTablesRequest fuzzes the server-side-training request decoder in
// isolation — parseTablesRequest validates without reading a dataset or
// training, so the fuzzer never runs the pipeline. Any input must either
// resolve to a well-formed training spec (exactly one dataset source,
// a real granularity, a usable split fraction) or produce a structured
// 4xx *apiError; panics and non-apiError failures are bugs.
func FuzzTablesRequest(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"dataset_csv":"kernel,cycle"}`))
	f.Add([]byte(`{"campaign":"0011223344556677"}`))
	f.Add([]byte(`{"campaign":"a","dataset_csv":"b"}`))
	f.Add([]byte(`{"dataset_csv":"x","granularity":13,"topk":3,"train_frac":0.8,"seed":5}`))
	f.Add([]byte(`{"dataset_csv":"x","granularity":9}`))
	f.Add([]byte(`{"dataset_csv":"x","topk":-1}`))
	f.Add([]byte(`{"dataset_csv":"x","train_frac":1.5}`))
	f.Add([]byte(`{"dataset_csv":"x","train_frac":-0.5}`))
	f.Add([]byte(`{"campaign":"a","activate":false}`))
	f.Add([]byte(`{"campaign":"a","seed":-9223372036854775808}`))
	f.Add([]byte(`{"unknown_field":1}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"dataset_csv":"x"} trailing`))

	f.Fuzz(func(t *testing.T, body []byte) {
		req, spec, err := parseTablesRequest(body)
		if err != nil {
			var ae *apiError
			if !errors.As(err, &ae) {
				t.Fatalf("non-structured error %T (%v) for %q", err, err, body)
			}
			if ae.Status < 400 || ae.Status > 499 {
				t.Fatalf("error status %d for %q, want 4xx", ae.Status, body)
			}
			return
		}
		if (req.Campaign == "") == (req.DatasetCSV == "") {
			t.Fatalf("accepted request without exactly one dataset source: %q", body)
		}
		if spec.gran != core.Coarse7 && spec.gran != core.Fine13 {
			t.Fatalf("accepted granularity %v for %q", spec.gran, body)
		}
		if spec.topK < 0 {
			t.Fatalf("accepted negative topk for %q", body)
		}
		if !(spec.frac > 0 && spec.frac <= 1) {
			t.Fatalf("accepted train_frac %v for %q", spec.frac, body)
		}
	})
}

// FuzzCampaignRequest fuzzes the campaign submission decoder in
// isolation — parseCampaignRequest validates without planning or running
// a campaign, so the fuzzer never launches real fault injections. Any
// input must either decode to a config with a computable fingerprint and
// derivable job ID, or produce a structured *apiError; panics and
// non-apiError failures are bugs.
func FuzzCampaignRequest(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"kernels":["ttsprk"],"run_cycles":3000,"flop_stride":24,"seed":9}`))
	f.Add([]byte(`{"kernels":["nosuch"]}`))
	f.Add([]byte(`{"kinds":["soft","stuck-at-0","stuck-at-1"]}`))
	f.Add([]byte(`{"kinds":["gamma-ray"]}`))
	f.Add([]byte(`{"run_cycles":-1}`))
	f.Add([]byte(`{"workers":99999,"checkpoint_every":1}`))
	f.Add([]byte(`{"seed":-9223372036854775808}`))
	f.Add([]byte(`{"unknown_field":1}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"kernels":[""]}`))
	f.Add([]byte(`{"kernels":["ttsprk"],"run_cycles":3000,"flop_stride":24,"seed":9,"mode":"slip:16"}`))
	f.Add([]byte(`{"mode":"tmr"}`))
	f.Add([]byte(`{"mode":"slip:-3"}`))
	f.Add([]byte(`{"mode":"slip:007"}`))
	f.Add([]byte(`{"run_cycles":100,"mode":"slip:100"}`))
	f.Add([]byte(`{"mode":"bogus"}`))

	f.Fuzz(func(t *testing.T, body []byte) {
		_, cfg, err := parseCampaignRequest(body, 4)
		if err != nil {
			var ae *apiError
			if !errors.As(err, &ae) {
				t.Fatalf("non-structured error %T (%v) for %q", err, err, body)
			}
			if ae.Status < 400 || ae.Status > 499 {
				t.Fatalf("error status %d for %q, want 4xx", ae.Status, body)
			}
			return
		}
		// Accepted configs must be plannable: fingerprint computable,
		// workers clamped, job ID derivable.
		if _, ferr := cfg.Fingerprint(); ferr != nil {
			t.Fatalf("accepted config fails fingerprint for %q: %v", body, ferr)
		}
		if cfg.Workers < 1 || cfg.Workers > 4 {
			t.Fatalf("accepted config has workers %d outside [1,4] for %q", cfg.Workers, body)
		}
		id, iderr := jobID(cfg)
		if iderr != nil || len(id) != 16 {
			t.Fatalf("job id %q (err %v) for %q", id, iderr, body)
		}
	})
}
