// Package server turns the offline lockstep tooling into a long-running
// HTTP service: lockstep-serve. It exposes
//
//   - POST /v1/predict — the paper's online use of the trained prediction
//     table: a DSR snapshot (single or batched) latched at error
//     detection is mapped through the PTAR address-mapping to a
//     predicted unit test order and a soft/hard verdict, exactly as the
//     offline error handler would (internal/handler.Predict);
//   - POST /v1/campaigns, GET /v1/campaigns[/{id}[/dataset]] — a
//     campaign job API that runs inject.Run fault-injection campaigns on
//     a bounded worker pool, checkpointed with the internal/inject crash
//     machinery so in-flight jobs survive server restarts and partial
//     results are downloadable while a job runs;
//   - GET /healthz, GET /v1/metrics — liveness and the telemetry
//     registry snapshot.
//
// Production hygiene is built in: a concurrency limiter answering 429
// when full, per-request deadlines answering 504, structured JSON errors
// with stable codes, request/latency/in-flight metrics in the telemetry
// registry, and graceful shutdown — Drain cancels running campaigns at a
// checkpoint boundary so a restarted server resumes them with
// byte-identical final datasets.
package server

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"lockstep/internal/core"
	"lockstep/internal/sbist"
	"lockstep/internal/telemetry"
)

// Options configures a Server.
type Options struct {
	// Table is the prediction table /v1/predict serves at startup; it
	// becomes the first registered table version. nil starts the server
	// with no active table (503 table_not_loaded) until one is trained
	// via POST /v1/tables or adopted from DataDir; the campaign API stays
	// available either way.
	Table *core.Table
	// SBIST is the latency environment used to name units and annotate
	// predictions; zero value means sbist.NewConfig(table granularity,
	// nil, OnChipTableAccess) when a table is present.
	SBIST sbist.Config
	// TableAccess is the prediction-table read latency (cycles) applied
	// to tables trained server-side (default sbist.OnChipTableAccess).
	TableAccess int64
	// DataDir is where campaign jobs persist their manifest, checkpoint
	// and dataset. Required for the campaign API; jobs found in it at
	// startup are adopted (completed ones become downloadable, unfinished
	// ones are re-queued and resumed from their checkpoint).
	DataDir string
	// CampaignWorkers is how many campaign jobs run concurrently
	// (default 1; additional submissions queue).
	CampaignWorkers int
	// InjectWorkers caps the per-job experiment worker pool (default and
	// upper bound: the request's workers field is clamped to it; 0 means
	// runtime.NumCPU via inject's own default).
	InjectWorkers int
	// QueueDepth bounds the campaign job queue (default 256); a full
	// queue answers 429 queue_full.
	QueueDepth int
	// MaxInFlight bounds concurrent HTTP requests (default 64); excess
	// requests are answered 429 overloaded immediately instead of
	// queueing.
	MaxInFlight int
	// RequestTimeout is the per-request deadline (default 10s); an
	// expired deadline answers 504 deadline_exceeded.
	RequestTimeout time.Duration
	// MaxBatch bounds the DSR count of one predict request (default
	// 1024); larger batches are answered 413 batch_too_large.
	MaxBatch int
	// LeaseSize is the default span length (in plan indices) of a
	// distributed-campaign lease (default 512); a request's lease_size
	// and a worker's preference override it per campaign / per lease.
	LeaseSize int
	// LeaseTTL is how long a worker holds an uncommitted span lease
	// before the coordinator re-issues it (default 30s).
	LeaseTTL time.Duration
	// Registry receives the server's metrics (default telemetry.Default).
	Registry *telemetry.Registry
}

func (o *Options) normalize() {
	if o.CampaignWorkers <= 0 {
		o.CampaignWorkers = 1
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 64
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 10 * time.Second
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 1024
	}
	if o.LeaseSize <= 0 {
		o.LeaseSize = 512
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 30 * time.Second
	}
	if o.Registry == nil {
		o.Registry = telemetry.Default
	}
	if o.TableAccess <= 0 {
		o.TableAccess = sbist.OnChipTableAccess
	}
	if o.Table != nil && o.SBIST.STL == nil {
		o.SBIST = sbist.NewConfig(o.Table.Gran, nil, o.TableAccess)
	}
}

// Server is the lockstep prediction & campaign service. It implements
// http.Handler; the caller owns the listener and http.Server.
type Server struct {
	opt  Options
	reg  *telemetry.Registry
	mux  *http.ServeMux
	jobs *jobManager

	limiter   chan struct{}
	inFlight  *telemetry.Gauge
	throttled *telemetry.Counter

	// tables owns the registry of immutable table bundles and the
	// atomic.Pointer the predict path serves from; predictions/
	// predictBatch are the predict metric handles, hoisted out of the
	// hot path.
	tables       *tableManager
	predictions  *telemetry.Counter
	predictBatch *telemetry.Histogram

	// testHold, when non-nil, blocks every request after it has claimed
	// its limiter slot — tests use it to fill the limiter determin-
	// istically and assert the 429 path.
	testHold <-chan struct{}
}

// New builds the service and adopts any campaign jobs already persisted
// in Options.DataDir: finished jobs become downloadable again and
// unfinished ones are re-queued, resuming from their checkpoint.
func New(opt Options) (*Server, error) {
	opt.normalize()
	s := &Server{
		opt:       opt,
		reg:       opt.Registry,
		mux:       http.NewServeMux(),
		limiter:   make(chan struct{}, opt.MaxInFlight),
		inFlight:  opt.Registry.Gauge("server.in_flight"),
		throttled: opt.Registry.Counter("server.throttled"),
	}
	s.predictions = opt.Registry.Counter("server.predictions")
	s.predictBatch = opt.Registry.Histogram("server.predict_batch", telemetry.PopBuckets)
	tables, err := newTableManager(opt)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s.tables = tables
	if opt.DataDir != "" {
		jobs, err := newJobManager(opt, s.reg, tables)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		s.jobs = jobs
	}
	s.handle("POST /v1/predict", "predict", s.handlePredict)
	s.handle("POST /v1/campaigns", "campaign-submit", s.handleCampaignSubmit)
	s.handle("GET /v1/campaigns", "campaign-list", s.handleCampaignList)
	s.handle("GET /v1/campaigns/{id}", "campaign-status", s.handleCampaignStatus)
	s.handle("GET /v1/campaigns/{id}/dataset", "campaign-dataset", s.handleCampaignDataset)
	s.handle("POST /v1/campaigns/{id}/leases", "campaign-lease", s.handleCampaignLease)
	s.handle("POST /v1/campaigns/{id}/spans", "campaign-span", s.handleCampaignSpan)
	s.handle("POST /v1/tables", "tables-create", s.handleTablesCreate)
	s.handle("GET /v1/tables", "tables-list", s.handleTablesList)
	s.handle("POST /v1/tables/{version}/activate", "tables-activate", s.handleTableActivate)
	s.handle("GET /healthz", "healthz", s.handleHealthz)
	s.handle("GET /v1/metrics", "metrics", s.handleMetrics)
	return s, nil
}

// endpoint is the internal shape every route implements: return nil
// after writing a success response, or an error (usually *apiError) to
// be rendered as the structured JSON envelope.
type endpoint func(w http.ResponseWriter, r *http.Request) error

// handle registers a route with the per-route middleware: deadline
// pre-check, error envelope rendering, and request/latency metrics
// labeled by route and status.
func (s *Server) handle(pattern, route string, h endpoint) {
	requests := func(code int) *telemetry.Counter {
		return s.reg.Counter("server.requests",
			telemetry.L("route", route), telemetry.L("status", strconv.Itoa(code)))
	}
	latency := s.reg.Histogram("server.latency_us", telemetry.CycleBuckets,
		telemetry.L("route", route))
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		err := deadlineErr(r.Context())
		if err == nil {
			err = h(sw, r)
		}
		if err != nil {
			writeError(sw, err)
		}
		requests(sw.code).Inc()
		latency.Observe(time.Since(start).Microseconds())
	})
}

// deadlineErr maps an expired request context onto the 504 the API
// promises. Handlers also call it inside long loops (e.g. per batched
// DSR) so a request cannot overstay its deadline by doing work.
func deadlineErr(ctx context.Context) error {
	switch ctx.Err() {
	case nil:
		return nil
	case context.DeadlineExceeded:
		return errf(http.StatusGatewayTimeout, "deadline_exceeded", "request deadline exceeded")
	default:
		return errf(499, "client_closed_request", "client closed request")
	}
}

// ServeHTTP applies the service-wide middleware — concurrency limiter
// (immediate 429 when full), in-flight accounting, per-request deadline —
// and dispatches to the routed endpoint.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	select {
	case s.limiter <- struct{}{}:
	default:
		s.throttled.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, errf(http.StatusTooManyRequests, "overloaded",
			"server at its concurrency limit (%d in flight); retry", cap(s.limiter)))
		return
	}
	defer func() { <-s.limiter }()
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	if s.testHold != nil {
		<-s.testHold
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.opt.RequestTimeout)
	defer cancel()
	s.mux.ServeHTTP(w, r.WithContext(ctx))
}

// Drain gracefully stops the campaign machinery: running jobs are
// canceled at the next experiment boundary and write a final checkpoint,
// queued jobs stay queued on disk, and no new submissions are accepted.
// A server restarted on the same DataDir resumes all of them. Drain
// returns once every job worker has stopped or ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	if s.jobs == nil {
		return nil
	}
	return s.jobs.drain(ctx)
}

// healthzTable is the serving-table summary healthz carries, so an
// operator can verify which table version is live without a second call.
type healthzTable struct {
	Version     string `json:"version"`
	Granularity string `json:"granularity"`
	Sets        int    `json:"sets"`
	Swaps       int64  `json:"swaps"`
}

// handleHealthz reports liveness plus a one-line job census and the live
// table version (absent until a table has been activated).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) error {
	resp := struct {
		OK    bool           `json:"ok"`
		Jobs  map[string]int `json:"jobs,omitempty"`
		Table *healthzTable  `json:"table,omitempty"`
	}{OK: true}
	if s.jobs != nil {
		resp.Jobs = s.jobs.census()
	}
	if b := s.tables.current(); b != nil {
		resp.Table = &healthzTable{
			Version:     b.version,
			Granularity: b.table.Gran.String(),
			Sets:        b.table.Dict.Len(),
			Swaps:       s.tables.swaps.Value(),
		}
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// handleMetrics dumps the telemetry registry snapshot — the same JSON
// the campaign CLIs write via -metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) error {
	w.Header().Set("Content-Type", "application/json")
	return s.reg.WriteJSON(w)
}

// statusWriter captures the response status for metrics.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}
