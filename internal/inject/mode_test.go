package inject

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"runtime"
	"testing"

	"lockstep/internal/lockstep"
)

// refCampaign is the frozen pre-mode reference schedule: the exact config
// `lockstep-inject -kernels ttsprk,rspeed -cycles 3000 -stride 13 -inj 1
// -seed 3` builds. Its dataset bytes were pinned before the mode axis
// existed, so the digest below is the compatibility contract.
func refCampaign() Config {
	return Config{
		Kernels:               []string{"ttsprk", "rspeed"},
		RunCycles:             3000,
		Intervals:             64,
		InjectionsPerFlopKind: 1,
		FlopStride:            13,
		Seed:                  3,
	}
}

// refCampaignDigest is the SHA-256 of the reference campaign's CSV as
// produced by the pre-mode binary. If this test fails, the mode axis has
// leaked into the dcls serialization (or the schedule itself) and every
// previously recorded dcls dataset just silently changed identity.
const refCampaignDigest = "a8cc8cc4058c4926925a2c234001810185be09c519e5f8628a941e2ad639d81a"

// TestDCLSDatasetPinnedDigest is mode-determinism gate (a): a dcls
// campaign — the zero-value mode — must produce a dataset byte-identical
// to the pre-mode binary's, at one worker and at all of them.
func TestDCLSDatasetPinnedDigest(t *testing.T) {
	for _, workers := range []int{1, runtime.NumCPU()} {
		cfg := refCampaign()
		cfg.Workers = workers
		ds, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := ds.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(buf.Bytes())
		if got := hex.EncodeToString(sum[:]); got != refCampaignDigest {
			t.Fatalf("workers=%d: dcls dataset digest %s, want pre-mode %s", workers, got, refCampaignDigest)
		}
	}
}

// TestSlipZeroCampaignEquivalence is mode-determinism gate (b): slip:0 is
// dcls with a zero-deep delay buffer, so a slip:0 campaign must agree
// with the dcls campaign experiment for experiment — every field except
// the mode column itself.
func TestSlipZeroCampaignEquivalence(t *testing.T) {
	cfg := refCampaign()
	dcls, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mode = lockstep.Mode{Kind: lockstep.ModeSlip, Slip: 0}
	slip, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if slip.Len() != dcls.Len() {
		t.Fatalf("slip:0 campaign has %d experiments, dcls %d", slip.Len(), dcls.Len())
	}
	for i := range dcls.Records {
		d, s := dcls.Records[i], slip.Records[i]
		if s.Mode.String() != "slip:0" {
			t.Fatalf("record %d: mode %q, want slip:0", i, s.Mode)
		}
		s.Mode = d.Mode // the one field allowed to differ
		if d != s {
			t.Fatalf("record %d differs between dcls and slip:0:\ndcls %+v\nslip %+v", i, d, s)
		}
	}
}

// TestSlipConfigErrors is the CLI half of the Slip validation satellite:
// lockstep-inject funnels its flags straight into Config, so a typed
// ConfigError{Field: "Slip"} out of normalize is exactly what the CLI
// prints before exiting 1. The server path asserts the same rendering in
// internal/server.
func TestSlipConfigErrors(t *testing.T) {
	cases := []struct {
		name string
		mode lockstep.Mode
		want string
	}{
		{"negative slip", lockstep.Mode{Kind: lockstep.ModeSlip, Slip: -3}, "negative slip -3"},
		{"slip eats the horizon", lockstep.Mode{Kind: lockstep.ModeSlip, Slip: 3000}, "no compare horizon"},
		{"slip count without slip mode", lockstep.Mode{Kind: lockstep.ModeTMR, Slip: 2}, "requires slip mode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := refCampaign()
			cfg.Mode = tc.mode
			_, err := cfg.Fingerprint()
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("got %T (%v), want *ConfigError", err, err)
			}
			if ce.Field != "Slip" {
				t.Fatalf("ConfigError field %q, want Slip", ce.Field)
			}
			if !bytes.Contains([]byte(ce.Error()), []byte(tc.want)) {
				t.Fatalf("error %q does not mention %q", ce, tc.want)
			}
		})
	}
}

// TestCrossModeDistributedRefusal is the lease half of mode-determinism
// gate (d): mode is schedule-relevant, so it is part of the campaign
// fingerprint and digest; a worker built for a slip campaign presenting
// its digest to a dcls coordinator is refused with the same typed
// StaleFingerprintError any cross-campaign join gets.
func TestCrossModeDistributedRefusal(t *testing.T) {
	cfg, dc, _ := distConfig(t)
	co, err := NewCoordinator(cfg, dc)
	if err != nil {
		t.Fatal(err)
	}
	slipCfg := cfg
	slipCfg.Mode = lockstep.Mode{Kind: lockstep.ModeSlip, Slip: 8}
	runner, err := NewSpanRunner(slipCfg)
	if err != nil {
		t.Fatal(err)
	}
	if runner.Digest() == co.Digest() {
		t.Fatal("slip:8 campaign has the same digest as the dcls campaign; cross-mode spans would merge")
	}
	var sfe *StaleFingerprintError
	if _, err := co.Acquire("w", runner.Digest(), 0); !errors.As(err, &sfe) {
		t.Fatalf("cross-mode acquire: got %v, want *StaleFingerprintError", err)
	}
	if _, err := co.Commit(&SpanSubmit{Worker: "w", Digest: runner.Digest(), Span: Span{0, 1}}); !errors.As(err, &sfe) {
		t.Fatalf("cross-mode commit: got %v, want *StaleFingerprintError", err)
	}

	// The fingerprint itself names the mode, so the checkpoint-resume
	// reflection diff reports it as ConfigMismatchError{Field: "Mode"}
	// (TestResumeConfigMismatch covers the full resume path).
	fp, err := slipCfg.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp.Mode != "slip:8" {
		t.Fatalf("fingerprint mode %q, want slip:8", fp.Mode)
	}
	back, err := fp.Config()
	if err != nil {
		t.Fatal(err)
	}
	if back.Mode != slipCfg.Mode {
		t.Fatalf("fingerprint round trip lost the mode: %v", back.Mode)
	}
}

// TestModeCampaignsDiffer pins that the three modes of one schedule are
// three different campaigns: distinct fingerprints, distinct digests —
// no checkpoint, lease, or job store can ever mix them.
func TestModeCampaignsDiffer(t *testing.T) {
	modes := []lockstep.Mode{
		{},
		{Kind: lockstep.ModeSlip, Slip: 0},
		{Kind: lockstep.ModeSlip, Slip: 16},
		{Kind: lockstep.ModeTMR},
	}
	seen := map[string]string{}
	for _, m := range modes {
		cfg := refCampaign()
		cfg.Mode = m
		fp, err := cfg.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[fp.Digest()]; dup {
			t.Fatalf("mode %s shares digest %s with mode %s", m, fp.Digest(), prev)
		}
		seen[fp.Digest()] = m.String()
	}
}
