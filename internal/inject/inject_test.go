package inject

import (
	"testing"

	"lockstep/internal/cpu"
	"lockstep/internal/lockstep"
	"lockstep/internal/units"
)

func smallConfig() Config {
	return Config{
		Kernels:               []string{"ttsprk", "puwmod"},
		RunCycles:             6000,
		Intervals:             64,
		InjectionsPerFlopKind: 1,
		FlopStride:            16,
		Seed:                  7,
	}
}

func TestCampaignShape(t *testing.T) {
	cfg := smallConfig()
	ds, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total, err := cfg.Total()
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != total {
		t.Fatalf("got %d records, config promised %d", ds.Len(), total)
	}
	man := ds.Manifested()
	if man.Len() == 0 {
		t.Fatal("campaign produced no manifested errors")
	}
	rate := float64(man.Len()) / float64(ds.Len())
	t.Logf("experiments=%d manifested=%d (%.1f%%) distinctDSRs=%d",
		ds.Len(), man.Len(), 100*rate, ds.DistinctDSRs())
	if rate <= 0.01 || rate >= 0.95 {
		t.Errorf("implausible overall manifestation rate %.2f", rate)
	}
	// Every record self-consistent.
	for _, r := range man.Records {
		if r.DSR == 0 {
			t.Fatal("manifested record with empty DSR")
		}
		if r.DetectCycle < r.InjectCycle {
			t.Fatal("detection before injection")
		}
		if r.Unit != cpu.FlopUnit(r.Flop) || r.Fine != cpu.FlopFine(r.Flop) {
			t.Fatal("unit tags inconsistent with flop registry")
		}
		if r.Fine.Coarse() != r.Unit {
			t.Fatal("fine unit does not map to coarse unit")
		}
	}
}

func TestCampaignDeterminism(t *testing.T) {
	cfg := smallConfig()
	cfg.Kernels = []string{"rspeed"}
	cfg.FlopStride = 64
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, a.Records[i], b.Records[i])
		}
	}
}

func TestHardRateExceedsSoftRate(t *testing.T) {
	ds, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var softInj, softMan, hardInj, hardMan int
	for _, r := range ds.Records {
		if r.Hard() {
			hardInj++
			if r.Detected {
				hardMan++
			}
		} else {
			softInj++
			if r.Detected {
				softMan++
			}
		}
	}
	soft := float64(softMan) / float64(softInj)
	hard := float64(hardMan) / float64(hardInj)
	t.Logf("manifestation rates: soft=%.1f%% hard=%.1f%%", 100*soft, 100*hard)
	if hard <= soft {
		t.Errorf("hard rate (%.2f) should exceed soft rate (%.2f), as in Table I", hard, soft)
	}
}

func TestAllUnitsReceiveInjections(t *testing.T) {
	cfg := smallConfig()
	cfg.Kernels = []string{"ttsprk"}
	cfg.FlopStride = 1
	cfg.Kinds = []lockstep.FaultKind{lockstep.Stuck1}
	ds, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats := ds.ByUnit(true)
	for u := 0; u < units.NumUnits; u++ {
		if stats[u].Injected == 0 {
			t.Errorf("unit %v received no injections", units.Unit(u))
		}
	}
	fine := ds.ByFine(true)
	for f := 0; f < units.NumFine; f++ {
		if fine[f].Injected == 0 {
			t.Errorf("fine unit %v received no injections", units.Fine(f))
		}
	}
}

func TestUnknownKernelRejected(t *testing.T) {
	cfg := smallConfig()
	cfg.Kernels = []string{"nosuch"}
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

// TestFullFlopCoverage: a stride-1 campaign injects every flip-flop of the
// CPU — the paper's "faults must be injected to every flip-flop" claim.
func TestFullFlopCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	ds, err := Run(Config{
		Kernels:               []string{"puwmod"},
		RunCycles:             4000,
		Intervals:             64,
		InjectionsPerFlopKind: 1,
		FlopStride:            1,
		Kinds:                 []lockstep.FaultKind{lockstep.Stuck1},
		Seed:                  9,
	})
	if err != nil {
		t.Fatal(err)
	}
	covered := make([]bool, cpu.NumFlops())
	for _, r := range ds.Records {
		covered[r.Flop] = true
	}
	for i, c := range covered {
		if !c {
			t.Fatalf("flop %d (%s) never injected", i, cpu.FlopName(i))
		}
	}
	if ds.Len() != cpu.NumFlops() {
		t.Fatalf("campaign size %d != flop count %d", ds.Len(), cpu.NumFlops())
	}
}
