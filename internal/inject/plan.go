package inject

import (
	"math/rand"

	"lockstep/internal/cpu"
	"lockstep/internal/lockstep"
)

// Experiment is one planned injection: the coordinates of the fault plus
// the precomputed injection cycle. The whole campaign is enumerated up
// front so execution can be sharded across workers while the schedule —
// and therefore the resulting dataset — stays bit-identical to a serial
// run: the injection cycle is fixed at enumeration time from an RNG
// derived only from Config.Seed and the experiment coordinates, never
// from worker count or completion order.
type Experiment struct {
	Kernel string
	Flop   int
	Kind   lockstep.FaultKind
	Seq    int // n-th injection for this (kernel, flop, kind) group
	Cycle  int // absolute injection cycle within the golden run
}

// Plan enumerates the campaign in canonical order: kernel (config order) ×
// flop (ascending, by stride) × kind (config order) × injection sequence
// number. Each (kernel, flop, kind) group draws its injection cycles from
// its own RNG seeded by mixing Config.Seed with the group coordinates, so
// any sub-plan is reproducible in isolation and the schedule is invariant
// under re-ordering, sharding, or filtering of the plan.
func (c Config) Plan() ([]Experiment, error) {
	if err := c.normalize(); err != nil {
		return nil, err
	}
	intervalLen := c.RunCycles / c.Intervals
	if intervalLen < 1 {
		intervalLen = 1
	}
	// c is normalized above, so Total cannot fail here.
	total, _ := c.Total()
	plan := make([]Experiment, 0, total)
	for _, name := range c.Kernels {
		for flop := 0; flop < cpu.NumFlops(); flop += c.FlopStride {
			for _, kind := range c.Kinds {
				// A per-(kernel, flop, kind) RNG keeps each group's
				// injection points independent of campaign iteration order.
				// The interval permutation guarantees the group's
				// injections land in distinct intervals (until it wraps).
				rng := rand.New(rand.NewSource(mix(c.Seed, name, flop, int(kind))))
				intervals := rng.Perm(c.Intervals)
				for n := 0; n < c.InjectionsPerFlopKind; n++ {
					iv := intervals[n%c.Intervals]
					cycle := iv*intervalLen + rng.Intn(intervalLen)
					if cycle >= c.RunCycles {
						cycle = c.RunCycles - 1
					}
					plan = append(plan, Experiment{
						Kernel: name,
						Flop:   flop,
						Kind:   kind,
						Seq:    n,
						Cycle:  cycle,
					})
				}
			}
		}
	}
	return plan, nil
}

// mix derives a stable 64-bit seed from the campaign seed and experiment
// coordinates (FNV-style).
func mix(seed int64, kernel string, flop, kind int) int64 {
	h := uint64(seed)*0x9E3779B97F4A7C15 + 0x243F6A8885A308D3
	for _, b := range []byte(kernel) {
		h = (h ^ uint64(b)) * 0x100000001B3
	}
	h = (h ^ uint64(flop)) * 0x100000001B3
	h = (h ^ uint64(kind)) * 0x100000001B3
	h ^= h >> 29
	return int64(h)
}
