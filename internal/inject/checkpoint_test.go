package inject

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"lockstep/internal/dataset"
	"lockstep/internal/lockstep"
	"lockstep/internal/telemetry"
)

// ckConfig is the reference campaign of the checkpoint tests: one kernel,
// heavily strided, seconds even under -race.
func ckConfig() Config {
	return Config{
		Kernels:               []string{"ttsprk"},
		RunCycles:             4000,
		Intervals:             64,
		InjectionsPerFlopKind: 1,
		FlopStride:            24,
		Seed:                  5,
		Workers:               1,
	}
}

func TestCheckpointEncodeDecodeRoundTrip(t *testing.T) {
	cfg := ckConfig()
	if err := (&cfg).normalize(); err != nil {
		t.Fatal(err)
	}
	ck := &Checkpoint{
		FP:    cfg.fingerprint(),
		Total: 10,
		Done:  []Span{{0, 3}, {5, 6}, {8, 10}},
		Records: []dataset.Record{
			{Kernel: "ttsprk", Flop: 1, Kind: lockstep.SoftFlip, InjectCycle: 7, Detected: true, DetectCycle: 9, DSR: 0xbeef},
			{Kernel: "ttsprk", Flop: 2, Kind: lockstep.Stuck0, InjectCycle: 8},
			{Kernel: "ttsprk", Flop: 3, Kind: lockstep.Stuck1, InjectCycle: 9, Converged: true},
			{Kernel: "ttsprk", Flop: 4, Kind: lockstep.SoftFlip, InjectCycle: 10, Failed: true},
			{Kernel: "ttsprk", Flop: 5, Kind: lockstep.Stuck0, InjectCycle: 11},
			{Kernel: "ttsprk", Flop: 6, Kind: lockstep.Stuck1, InjectCycle: 12},
		},
	}
	if got, want := ck.DoneCount(), 6; got != want {
		t.Fatalf("DoneCount = %d, want %d", got, want)
	}

	path := filepath.Join(t.TempDir(), "ck.lsc")
	if err := WriteCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	rt, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ck, rt) {
		t.Fatalf("checkpoint round trip mismatch:\nwrote %+v\nread  %+v", ck, rt)
	}
}

// TestResumeConfigMismatch walks every Fingerprint field: resuming with
// any schedule-relevant config change must refuse with a
// ConfigMismatchError naming exactly the differing field.
func TestResumeConfigMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.lsc")
	base := ckConfig()
	base.CheckpointPath = path
	base.CheckpointEvery = 50
	if _, err := Run(base); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		field  string
		mutate func(*Config)
		// mutateCk, for fingerprint fields that are not Config fields
		// (e.g. the build's trace version), rewrites the checkpoint side
		// of the comparison instead; the case then resumes from the
		// rewritten copy with an unmutated config.
		mutateCk func(*Fingerprint)
	}{
		{field: "Kernels", mutate: func(c *Config) { c.Kernels = []string{"rspeed"} }},
		{field: "RunCycles", mutate: func(c *Config) { c.RunCycles = 4100 }},
		{field: "Intervals", mutate: func(c *Config) { c.Intervals = 32 }},
		{field: "InjectionsPerFlopKind", mutate: func(c *Config) { c.InjectionsPerFlopKind = 2 }},
		{field: "FlopStride", mutate: func(c *Config) { c.FlopStride = 12 }},
		{field: "Kinds", mutate: func(c *Config) { c.Kinds = []lockstep.FaultKind{lockstep.SoftFlip} }},
		{field: "StopLatency", mutate: func(c *Config) { c.StopLatency = 3 }},
		{field: "Seed", mutate: func(c *Config) { c.Seed = 6 }},
		{field: "Legacy", mutate: func(c *Config) { c.Legacy = true }},
		{field: "NoPrune", mutate: func(c *Config) { c.NoPrune = true }},
		// A checkpoint from an older trace/pruning generation (or one with
		// no trace_version at all, which decodes as 0) must refuse on this
		// build rather than mix analyses within one dataset.
		{field: "TraceVersion", mutateCk: func(fp *Fingerprint) { fp.TraceVersion = lockstep.TraceVersion - 1 }},
		// A dcls checkpoint must refuse to resume under any other lockstep
		// mode (and vice versa): outcomes are mode-specific, so a silent
		// cross-mode mix would poison the dataset.
		{field: "Mode", mutate: func(c *Config) { c.Mode = lockstep.Mode{Kind: lockstep.ModeSlip, Slip: 3} }},
	}
	// The table must cover the whole fingerprint, so a future field cannot
	// ship without a refusal test.
	if want := reflect.TypeOf(Fingerprint{}).NumField(); len(cases) != want {
		t.Fatalf("mismatch table covers %d fields, Fingerprint has %d", len(cases), want)
	}
	for _, tc := range cases {
		t.Run(tc.field, func(t *testing.T) {
			cfg := ckConfig()
			cfg.CheckpointPath = path
			cfg.Resume = true
			if tc.mutate != nil {
				tc.mutate(&cfg)
			}
			if tc.mutateCk != nil {
				ck, err := ReadCheckpoint(path)
				if err != nil {
					t.Fatal(err)
				}
				tc.mutateCk(&ck.FP)
				rewritten := filepath.Join(t.TempDir(), "ck.lsc")
				if err := WriteCheckpoint(rewritten, ck); err != nil {
					t.Fatal(err)
				}
				cfg.CheckpointPath = rewritten
			}
			_, err := Run(cfg)
			var mismatch *ConfigMismatchError
			if !errors.As(err, &mismatch) {
				t.Fatalf("resume with changed %s: got %v, want ConfigMismatchError", tc.field, err)
			}
			if mismatch.Field != tc.field {
				t.Fatalf("error names field %q, want %q (err: %v)", mismatch.Field, tc.field, err)
			}
		})
	}

	// The unmutated config must still resume cleanly.
	cfg := ckConfig()
	cfg.CheckpointPath = path
	cfg.Resume = true
	if _, err := Run(cfg); err != nil {
		t.Fatalf("resume with identical config refused: %v", err)
	}
}

// TestResumeProducesIdenticalDataset: interrupt a campaign by keeping only
// a prefix of its final checkpoint, resume from it at several worker
// counts, and require the result to be byte-identical to the
// uninterrupted dataset. This is the in-process half of the kill/resume
// equivalence contract (the subprocess SIGKILL half lives in
// cmd/lockstep-inject).
func TestResumeProducesIdenticalDataset(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.lsc")

	ref := ckConfig()
	ref.CheckpointPath = path
	refDS, st, err := RunStats(ref)
	if err != nil {
		t.Fatal(err)
	}
	if st.Checkpoints < 1 {
		t.Fatalf("campaign wrote %d checkpoints, want >= 1", st.Checkpoints)
	}
	var want bytes.Buffer
	if err := refDS.WriteCSV(&want); err != nil {
		t.Fatal(err)
	}

	full, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if full.DoneCount() != refDS.Len() {
		t.Fatalf("final checkpoint covers %d of %d experiments", full.DoneCount(), refDS.Len())
	}

	// Truncate the checkpoint to simulate kills at several progress
	// points, including an empty one and an almost-complete one.
	for _, keep := range []int{0, 1, refDS.Len() / 3, refDS.Len() - 1, refDS.Len()} {
		for _, workers := range []int{1, 4} {
			partial := &Checkpoint{FP: full.FP, Total: full.Total}
			if keep > 0 {
				partial.Done = []Span{{0, keep}}
				partial.Records = append([]dataset.Record(nil), full.Records[:keep]...)
			}
			if err := WriteCheckpoint(path, partial); err != nil {
				t.Fatal(err)
			}

			cfg := ckConfig()
			cfg.CheckpointPath = path
			cfg.Resume = true
			cfg.Workers = workers
			ds, st, err := RunStats(cfg)
			if err != nil {
				t.Fatalf("resume from %d/%d at workers=%d: %v", keep, full.Total, workers, err)
			}
			if st.Restored != keep {
				t.Fatalf("restored %d experiments, want %d", st.Restored, keep)
			}
			var got bytes.Buffer
			if err := ds.WriteCSV(&got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want.Bytes(), got.Bytes()) {
				t.Fatalf("resume from %d/%d at workers=%d is not byte-identical to the uninterrupted run",
					keep, full.Total, workers)
			}
			// The resumed run must leave a complete checkpoint behind.
			after, err := ReadCheckpoint(path)
			if err != nil {
				t.Fatal(err)
			}
			if after.DoneCount() != full.Total {
				t.Fatalf("checkpoint after resume covers %d/%d", after.DoneCount(), full.Total)
			}
		}
	}
}

// TestResumeRefusesBadCheckpoint: -resume semantics are strict — a
// missing or corrupt checkpoint is a typed error, never a silent restart.
func TestResumeRefusesBadCheckpoint(t *testing.T) {
	dir := t.TempDir()

	cfg := ckConfig()
	cfg.CheckpointPath = filepath.Join(dir, "nonexistent.lsc")
	cfg.Resume = true
	if _, err := Run(cfg); err == nil {
		t.Fatal("resume from a missing checkpoint did not fail")
	}

	// A checkpoint with a flipped byte must fail CRC validation.
	path := filepath.Join(dir, "ck.lsc")
	good := ckConfig()
	good.CheckpointPath = path
	if _, err := Run(good); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	cfg = ckConfig()
	cfg.CheckpointPath = path
	cfg.Resume = true
	_, err = Run(cfg)
	var ckErr *CheckpointError
	if !errors.As(err, &ckErr) {
		t.Fatalf("resume from a corrupt checkpoint: got %v, want CheckpointError", err)
	}

	// Resume without a checkpoint path is a config error.
	cfg = ckConfig()
	cfg.Resume = true
	if _, err := Run(cfg); err == nil {
		t.Fatal("Resume without CheckpointPath accepted")
	}
}

// telemetryGaugeMap flattens the default registry's unlabeled gauges.
func telemetryGaugeMap(t *testing.T) map[string]int64 {
	t.Helper()
	out := map[string]int64{}
	for _, g := range telemetry.Default.Snapshot().Gauges {
		if len(g.Labels) == 0 {
			out[g.Name] = g.Value
		}
	}
	return out
}

// TestCheckpointProgressTelemetry: the checkpoint layer surfaces its
// progress through the default registry.
func TestCheckpointProgressTelemetry(t *testing.T) {
	dir := t.TempDir()
	cfg := ckConfig()
	// Checkpoint cadence needs a steady flow of worker completions; the
	// statically-pruned majority completes in one synchronous burst whose
	// kicks coalesce into a single write, so measure on the oracle path.
	cfg.NoPrune = true
	cfg.CheckpointPath = filepath.Join(dir, "ck.lsc")
	cfg.CheckpointEvery = 25
	ds, st, err := RunStats(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Kicks coalesce while a write is in flight, so the exact count is
	// load-dependent — but at least one periodic write plus the final one
	// must land, and never more than one per CheckpointEvery plus final.
	if max := ds.Len()/25 + 1; st.Checkpoints < 2 || st.Checkpoints > max {
		t.Fatalf("wrote %d checkpoints, want 2..%d", st.Checkpoints, max)
	}
	snap := telemetryGaugeMap(t)
	if got := snap["inject.checkpoint_done"]; got != int64(ds.Len()) {
		t.Fatalf("inject.checkpoint_done = %d, want %d", got, ds.Len())
	}
	if got := snap["inject.checkpoint_total"]; got != int64(ds.Len()) {
		t.Fatalf("inject.checkpoint_total = %d, want %d", got, ds.Len())
	}
	if snap["inject.checkpoint_last_unix_ms"] <= 0 {
		t.Fatal("inject.checkpoint_last_unix_ms not set")
	}
}
