package inject

import (
	"testing"

	"lockstep/internal/telemetry"
)

// TestTotalReportsUnknownKernel is the regression test for Total()
// silently returning 0: a config that cannot run must surface the
// normalize error instead.
func TestTotalReportsUnknownKernel(t *testing.T) {
	cfg := smallConfig()
	cfg.Kernels = []string{"nosuchkernel"}
	n, err := cfg.Total()
	if err == nil {
		t.Fatal("Total accepted an unknown kernel")
	}
	if n != 0 {
		t.Fatalf("Total = %d alongside an error, want 0", n)
	}
	// Run and Plan must fail with the same class of error.
	if _, err := Run(cfg); err == nil {
		t.Fatal("Run accepted an unknown kernel")
	}
	if _, err := cfg.Plan(); err == nil {
		t.Fatal("Plan accepted an unknown kernel")
	}
	// A valid config still reports its exact experiment count.
	good := smallConfig()
	n, err = good.Total()
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatalf("Total = %d for a valid config", n)
	}
}

// outcomeCounts sums the default registry's campaign outcome counters
// (they are monotone across campaigns in one process, so tests measure
// deltas).
func outcomeCounts() (sum, detected int64) {
	for _, c := range telemetry.Default.Snapshot().Counters {
		if c.Name != "inject.outcomes" {
			continue
		}
		sum += c.Value
		if c.Labels["outcome"] == "detected" {
			detected += c.Value
		}
	}
	return sum, detected
}

// TestCampaignTelemetryAccounting: every experiment of a campaign lands
// in exactly one outcome counter, and the detected count matches the
// dataset's manifested subset.
func TestCampaignTelemetryAccounting(t *testing.T) {
	sumBefore, detBefore := outcomeCounts()
	cfg := smallConfig()
	ds, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sumAfter, detAfter := outcomeCounts()
	if got, want := sumAfter-sumBefore, int64(ds.Len()); got != want {
		t.Fatalf("outcome counters grew by %d, want %d (one per experiment)", got, want)
	}
	if got, want := detAfter-detBefore, int64(ds.Manifested().Len()); got != want {
		t.Fatalf("detected counters grew by %d, want %d", got, want)
	}
}
