package inject

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"lockstep/internal/telemetry"
)

// failureCount reads the global containment-failure counter (monotone
// across campaigns in one process, so tests measure deltas).
func failureCount() int64 {
	var n int64
	for _, c := range telemetry.Default.Snapshot().Counters {
		if c.Name == "inject.experiment_failures" {
			n += c.Value
		}
	}
	return n
}

// containConfig is ckConfig on the -no-prune oracle path: the containment
// tests poison specific plan indices through testHook, which only fires
// for experiments that are actually dispatched to a worker — static
// pruning would dissolve the target site and leave the test vacuous.
func containConfig() Config {
	cfg := ckConfig()
	cfg.NoPrune = true
	return cfg
}

// TestPanicContainment: a deliberately poisoned experiment must not kill
// the campaign — it is retried, then recorded as a Failed row, while
// every other experiment's record stays exactly as in a clean run. Run at
// several worker counts so -race also sees the containment path.
func TestPanicContainment(t *testing.T) {
	clean, err := Run(containConfig())
	if err != nil {
		t.Fatal(err)
	}
	poisonIdx := clean.Len() / 2
	plan, err := containConfig().Plan()
	if err != nil {
		t.Fatal(err)
	}
	poison := plan[poisonIdx]

	for _, workers := range []int{1, runtime.NumCPU()} {
		before := failureCount()
		cfg := containConfig()
		cfg.Workers = workers
		cfg.testHook = func(e Experiment) {
			if e == poison {
				panic("deliberately poisoned experiment")
			}
		}
		ds, st, err := RunStats(cfg)
		if err != nil {
			t.Fatalf("workers=%d: poisoned campaign aborted: %v", workers, err)
		}
		if ds.Len() != clean.Len() {
			t.Fatalf("workers=%d: poisoned campaign produced %d records, want %d", workers, ds.Len(), clean.Len())
		}
		if st.Failures != 1 {
			t.Fatalf("workers=%d: Stats.Failures = %d, want 1", workers, st.Failures)
		}
		if got := failureCount() - before; got != 1 {
			t.Fatalf("workers=%d: inject.experiment_failures grew by %d, want 1", workers, got)
		}
		for i, r := range ds.Records {
			if i == poisonIdx {
				if !r.Failed || r.Detected || r.Converged {
					t.Fatalf("workers=%d: poisoned record = %+v, want Failed-only", workers, r)
				}
				continue
			}
			if r != clean.Records[i] {
				t.Fatalf("workers=%d: record %d disturbed by a neighbouring panic:\nclean:    %+v\npoisoned: %+v",
					workers, i, clean.Records[i], r)
			}
		}
	}
}

// TestPanicRetryRecovers: a transient panic (first attempt only) must be
// retried on fresh scratch and produce the normal record, with no Failed
// row and no failure count.
func TestPanicRetryRecovers(t *testing.T) {
	clean, err := Run(containConfig())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := containConfig().Plan()
	if err != nil {
		t.Fatal(err)
	}
	flaky := plan[3]

	var mu sync.Mutex
	tripped := false
	cfg := containConfig()
	cfg.testHook = func(e Experiment) {
		if e != flaky {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if !tripped {
			tripped = true
			panic("transient harness fault")
		}
	}
	ds, st, err := RunStats(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !tripped {
		t.Fatal("test hook never fired")
	}
	if st.Failures != 0 {
		t.Fatalf("Stats.Failures = %d, want 0 (retry should have recovered)", st.Failures)
	}
	for i := range clean.Records {
		if ds.Records[i] != clean.Records[i] {
			t.Fatalf("record %d differs after a retried panic: %+v vs %+v", i, ds.Records[i], clean.Records[i])
		}
	}
}

// TestRetriesDisabled: Retries < 0 records the first panic as Failed
// without a second attempt.
func TestRetriesDisabled(t *testing.T) {
	plan, err := containConfig().Plan()
	if err != nil {
		t.Fatal(err)
	}
	victim := plan[0]
	var mu sync.Mutex
	attempts := 0
	cfg := containConfig()
	cfg.Retries = -1
	cfg.testHook = func(e Experiment) {
		if e != victim {
			return
		}
		mu.Lock()
		attempts++
		mu.Unlock()
		panic("always panics")
	}
	ds, st, err := RunStats(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 1 {
		t.Fatalf("experiment attempted %d times with retries disabled, want 1", attempts)
	}
	if st.Failures != 1 || !ds.Records[0].Failed {
		t.Fatalf("first record not Failed (failures=%d, rec=%+v)", st.Failures, ds.Records[0])
	}
}

// TestWatchdogBudget: an experiment that stalls past the per-experiment
// budget is abandoned and recorded as Failed; the campaign finishes.
func TestWatchdogBudget(t *testing.T) {
	cfg := containConfig()
	cfg.FlopStride = 256 // a handful of experiments — the stall dominates
	plan, err := cfg.Plan()
	if err != nil {
		t.Fatal(err)
	}
	stuck := plan[1]
	cfg.ExperimentBudget = 50 * time.Millisecond
	release := make(chan struct{})
	defer close(release) // unblock the abandoned goroutine at test end
	cfg.testHook = func(e Experiment) {
		if e == stuck {
			<-release // simulates a hung experiment
		}
	}
	start := time.Now()
	ds, st, err := RunStats(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("watchdog failed to bound the stall (took %v)", elapsed)
	}
	if st.Failures != 1 {
		t.Fatalf("Stats.Failures = %d, want 1", st.Failures)
	}
	if !ds.Records[1].Failed {
		t.Fatalf("stalled record = %+v, want Failed", ds.Records[1])
	}
	for i, r := range ds.Records {
		if i != 1 && r.Failed {
			t.Fatalf("healthy record %d marked Failed: %+v", i, r)
		}
	}
}
