// Wire codec for the distributed-campaign protocol. Lease requests and
// replies, span submissions and their acks travel between coordinator and
// worker nodes as small versioned binary messages in the golden-trace
// codec's style:
//
//	magic "lkdw" | uvarint wireVersion | kind byte
//	<kind-specific body>
//
// Strings are uvarint-length-prefixed; record streams intern the kernel
// names into a per-message table and delta-encode cycles (the plan is
// kernel-major and cycle-local, so spans compress well). Decoding is
// fuzz-hardened: every count and length is validated against what the
// remaining input could possibly hold before anything is allocated, so
// arbitrary bytes — a confused worker, a truncated connection, a hostile
// peer — produce a typed error, never a panic or an attacker-sized
// allocation. Units and fine-grained unit names are not shipped at all:
// they are derivable from the flop index, and recomputing them on decode
// keeps a submission from ever disagreeing with the coordinator's
// rendering.
package inject

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"time"

	"lockstep/internal/cpu"
	"lockstep/internal/dataset"
	"lockstep/internal/lockstep"
)

// wireMagic opens every distributed-campaign message.
const wireMagic = "lkdw"

// wireVersion is the protocol generation; bumped on any layout change so
// mixed-build clusters fail closed instead of misparsing.
const wireVersion = 1

// Message kind bytes.
const (
	wireLeaseRequest = 1
	wireLeaseReply   = 2
	wireSpanSubmit   = 3
	wireSpanReply    = 4
)

// Decoder caps: bound what a corrupt or hostile header can make the
// decoder allocate. maxLeaseSpan (distrib.go) bounds record counts.
const (
	maxWireString = 256     // worker names, digests
	maxWireFP     = 1 << 16 // fingerprint JSON blob
)

// WireError reports a distributed-campaign message that cannot be
// trusted: truncated, corrupt, wrong version, or carrying out-of-range
// values.
type WireError struct {
	Reason string
}

func (e *WireError) Error() string {
	return "inject: bad wire message: " + e.Reason
}

// LeaseRequest asks the coordinator for a span lease.
type LeaseRequest struct {
	Worker string // stable worker identity (affinity + per-worker stats)
	Digest string // campaign fingerprint digest the worker was joined with
	Want   int    // preferred span length; 0 = coordinator default
}

// LeaseReply answers a LeaseRequest. FP, Total and Done are always set;
// LeaseID/Span/TTL only when Status is LeaseGranted, Retry only when
// LeaseWait.
type LeaseReply struct {
	Status  LeaseStatus
	Total   int
	Done    int
	FP      Fingerprint // the schedule; workers rebuild the Config from it
	LeaseID uint64
	Span    Span
	TTL     time.Duration
	Retry   time.Duration
}

// SpanSubmit carries one completed span's records back to the
// coordinator.
type SpanSubmit struct {
	Worker  string
	Digest  string
	LeaseID uint64
	Span    Span
	// BusyUS is the worker's wall-clock microseconds spent executing the
	// span (golden builds included) — the coordinator's per-worker
	// throughput gauges are computed from it.
	BusyUS        int64
	Pruned        int
	OracleChecked int
	Records       []dataset.Record // exactly Span.Hi-Span.Lo, plan order
}

// SpanReply acknowledges a SpanSubmit.
type SpanReply struct {
	Duplicate bool // span was already covered; records dropped, not an error
	Done      int  // campaign-wide merged experiments
	Total     int
}

// wireReader is a bounds-checked cursor over an encoded message.
type wireReader struct {
	b   []byte
	err error
}

func (r *wireReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = &WireError{Reason: fmt.Sprintf(format, args...)}
	}
}

func (r *wireReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail("truncated or oversized uvarint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *wireReader) zigzag() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail("truncated or oversized varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *wireReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) == 0 {
		r.fail("truncated message")
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

// count reads a uvarint element count and validates it against a hard cap
// and against the bytes the rest of the input could possibly hold
// (minBytes per element), so a corrupt count can never drive a large
// allocation.
func (r *wireReader) count(what string, max, minBytes int) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if v > uint64(max) {
		r.fail("%s count %d exceeds cap %d", what, v, max)
		return 0
	}
	if minBytes > 0 && v > uint64(len(r.b)/minBytes) {
		r.fail("%s count %d exceeds remaining input", what, v)
		return 0
	}
	return int(v)
}

// str reads a uvarint-length-prefixed string capped at max bytes.
func (r *wireReader) str(what string, max int) string {
	n := r.count(what, max, 1)
	if r.err != nil {
		return ""
	}
	if n > len(r.b) {
		r.fail("%s length %d exceeds remaining input", what, n)
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

// intv narrows a uvarint into a non-negative int with an inclusive cap.
func (r *wireReader) intv(what string, max int) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if v > uint64(max) {
		r.fail("%s %d out of range (max %d)", what, v, max)
		return 0
	}
	return int(v)
}

// header checks magic + version and consumes the kind byte.
func (r *wireReader) header(wantKind byte) {
	if len(r.b) < len(wireMagic) || string(r.b[:len(wireMagic)]) != wireMagic {
		r.fail("not a lockstep wire message")
		return
	}
	r.b = r.b[len(wireMagic):]
	if v := r.uvarint(); r.err == nil && v != wireVersion {
		r.fail("unsupported wire version %d (this build speaks %d)", v, wireVersion)
		return
	}
	if k := r.byte(); r.err == nil && k != wantKind {
		r.fail("message kind %d, want %d", k, wantKind)
	}
}

// done demands the cursor consumed the whole message: trailing garbage is
// a framing bug, not padding.
func (r *wireReader) done() error {
	if r.err == nil && len(r.b) != 0 {
		r.fail("%d trailing bytes", len(r.b))
	}
	return r.err
}

// marshalFingerprint renders the fingerprint as the canonical JSON its
// digest is computed over.
func marshalFingerprint(f Fingerprint) ([]byte, error) {
	return json.Marshal(f)
}

func unmarshalFingerprint(data []byte, f *Fingerprint) error {
	return json.Unmarshal(data, f)
}

func appendWireHeader(b []byte, kind byte) []byte {
	b = append(b, wireMagic...)
	b = binary.AppendUvarint(b, wireVersion)
	return append(b, kind)
}

func appendWireString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// Encode serializes the request. Worker and Digest longer than the wire
// cap are refused at decode time; keep names short.
func (m *LeaseRequest) Encode() []byte {
	b := appendWireHeader(nil, wireLeaseRequest)
	b = appendWireString(b, m.Worker)
	b = appendWireString(b, m.Digest)
	b = binary.AppendUvarint(b, uint64(m.Want))
	return b
}

// DecodeLeaseRequest parses a LeaseRequest, rejecting malformed input
// with a *WireError.
func DecodeLeaseRequest(data []byte) (*LeaseRequest, error) {
	r := &wireReader{b: data}
	r.header(wireLeaseRequest)
	m := &LeaseRequest{
		Worker: r.str("worker name", maxWireString),
		Digest: r.str("digest", maxWireString),
		Want:   r.intv("want", maxLeaseSpan),
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// Encode serializes the reply. The fingerprint travels as its canonical
// JSON — the same bytes its digest is computed over — so a worker can
// verify digest-vs-fingerprint consistency without a second encoding.
func (m *LeaseReply) Encode() ([]byte, error) {
	fp, err := marshalFingerprint(m.FP)
	if err != nil {
		return nil, err
	}
	b := appendWireHeader(nil, wireLeaseReply)
	b = append(b, byte(m.Status))
	b = binary.AppendUvarint(b, uint64(m.Total))
	b = binary.AppendUvarint(b, uint64(m.Done))
	b = binary.AppendUvarint(b, uint64(len(fp)))
	b = append(b, fp...)
	b = binary.AppendUvarint(b, m.LeaseID)
	b = binary.AppendUvarint(b, uint64(m.Span.Lo))
	b = binary.AppendUvarint(b, uint64(m.Span.Hi))
	b = binary.AppendUvarint(b, uint64(m.TTL/time.Millisecond))
	b = binary.AppendUvarint(b, uint64(m.Retry/time.Millisecond))
	return b, nil
}

// DecodeLeaseReply parses a LeaseReply, rejecting malformed input with a
// *WireError.
func DecodeLeaseReply(data []byte) (*LeaseReply, error) {
	r := &wireReader{b: data}
	r.header(wireLeaseReply)
	m := &LeaseReply{Status: LeaseStatus(r.byte())}
	if r.err == nil {
		switch m.Status {
		case LeaseGranted, LeaseWait, LeaseDone:
		default:
			r.fail("unknown lease status %d", int(m.Status))
		}
	}
	m.Total = r.intv("total", 1<<31-1)
	m.Done = r.intv("done", 1<<31-1)
	fpLen := r.count("fingerprint", maxWireFP, 1)
	if r.err == nil {
		if fpLen > len(r.b) {
			r.fail("fingerprint length %d exceeds remaining input", fpLen)
		} else {
			if err := unmarshalFingerprint(r.b[:fpLen], &m.FP); err != nil {
				r.fail("fingerprint: %v", err)
			}
			r.b = r.b[fpLen:]
		}
	}
	m.LeaseID = r.uvarint()
	m.Span.Lo = r.intv("span lo", 1<<31-1)
	m.Span.Hi = r.intv("span hi", 1<<31-1)
	m.TTL = time.Duration(r.intv("ttl ms", 1<<31-1)) * time.Millisecond
	m.Retry = time.Duration(r.intv("retry ms", 1<<31-1)) * time.Millisecond
	if r.err == nil {
		if m.Done > m.Total {
			r.fail("done %d exceeds total %d", m.Done, m.Total)
		}
		if m.Status == LeaseGranted {
			sp := m.Span
			if sp.Lo >= sp.Hi || sp.Hi > m.Total || sp.Hi-sp.Lo > maxLeaseSpan {
				r.fail("granted span [%d,%d) invalid for total %d", sp.Lo, sp.Hi, m.Total)
			}
		}
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// Encode serializes the submission. Records must be exactly the span's
// length; Encode panics otherwise (the caller built an inconsistent
// message — this is a programming error, not an input error).
func (m *SpanSubmit) Encode() []byte {
	if len(m.Records) != m.Span.Hi-m.Span.Lo {
		panic(fmt.Sprintf("inject: SpanSubmit span [%d,%d) with %d records", m.Span.Lo, m.Span.Hi, len(m.Records)))
	}
	b := appendWireHeader(nil, wireSpanSubmit)
	b = appendWireString(b, m.Worker)
	b = appendWireString(b, m.Digest)
	b = binary.AppendUvarint(b, m.LeaseID)
	b = binary.AppendUvarint(b, uint64(m.Span.Lo))
	b = binary.AppendUvarint(b, uint64(m.Span.Hi))
	b = binary.AppendUvarint(b, uint64(m.BusyUS))
	b = binary.AppendUvarint(b, uint64(m.Pruned))
	b = binary.AppendUvarint(b, uint64(m.OracleChecked))

	// Kernel name intern table: spans are kernel-major, so this is
	// usually one entry.
	var kernels []string
	kidx := map[string]int{}
	for i := range m.Records {
		if _, ok := kidx[m.Records[i].Kernel]; !ok {
			kidx[m.Records[i].Kernel] = len(kernels)
			kernels = append(kernels, m.Records[i].Kernel)
		}
	}
	b = binary.AppendUvarint(b, uint64(len(kernels)))
	for _, k := range kernels {
		b = appendWireString(b, k)
	}

	var prevInject, prevDetect int64
	for i := range m.Records {
		rec := &m.Records[i]
		b = binary.AppendUvarint(b, uint64(kidx[rec.Kernel]))
		b = binary.AppendUvarint(b, uint64(rec.Flop))
		b = binary.AppendUvarint(b, uint64(rec.Kind))
		b = binary.AppendVarint(b, int64(rec.InjectCycle)-prevInject)
		b = binary.AppendVarint(b, int64(rec.DetectCycle)-prevDetect)
		prevInject, prevDetect = int64(rec.InjectCycle), int64(rec.DetectCycle)
		var flags byte
		if rec.Detected {
			flags |= 1
		}
		if rec.Converged {
			flags |= 2
		}
		if rec.Failed {
			flags |= 4
		}
		b = append(b, flags)
		b = binary.AppendUvarint(b, rec.DSR)
	}
	return b
}

// DecodeSpanSubmit parses a SpanSubmit, rejecting malformed input with a
// *WireError. Record Unit/Fine columns are recomputed from the flop
// index, and flop/kind indices are validated against this build's CPU
// model, so a decoded record is always renderable.
func DecodeSpanSubmit(data []byte) (*SpanSubmit, error) {
	r := &wireReader{b: data}
	r.header(wireSpanSubmit)
	m := &SpanSubmit{
		Worker:        r.str("worker name", maxWireString),
		Digest:        r.str("digest", maxWireString),
		LeaseID:       r.uvarint(),
		Span:          Span{Lo: r.intv("span lo", 1<<31-1), Hi: r.intv("span hi", 1<<31-1)},
		BusyUS:        int64(r.uvarint()),
		Pruned:        r.intv("pruned", maxLeaseSpan),
		OracleChecked: r.intv("oracle checked", maxLeaseSpan),
	}
	if r.err == nil && (m.Span.Lo >= m.Span.Hi || m.Span.Hi-m.Span.Lo > maxLeaseSpan) {
		r.fail("span [%d,%d) invalid", m.Span.Lo, m.Span.Hi)
	}
	nk := r.count("kernel table", 64, 1)
	kernels := make([]string, 0, nk)
	for i := 0; i < nk && r.err == nil; i++ {
		kernels = append(kernels, r.str("kernel name", maxWireString))
	}
	if r.err != nil {
		return nil, r.err
	}
	// 7 = minimum encoded record: kernel idx, flop, kind, two cycle
	// deltas, flags, DSR — one byte each.
	want := m.Span.Hi - m.Span.Lo
	if want > len(r.b)/7 {
		r.fail("span of %d records exceeds remaining input", want)
		return nil, r.err
	}
	if want > 0 && nk == 0 {
		r.fail("records without a kernel table")
		return nil, r.err
	}
	m.Records = make([]dataset.Record, 0, want)
	var prevInject, prevDetect int64
	for i := 0; i < want; i++ {
		ki := r.intv("kernel index", len(kernels)-1)
		flop := r.intv("flop", cpu.NumFlops()-1)
		kind := r.intv("kind", int(lockstep.NumFaultKinds)-1)
		injectCycle := prevInject + r.zigzag()
		detectCycle := prevDetect + r.zigzag()
		flags := r.byte()
		dsr := r.uvarint()
		if r.err != nil {
			return nil, r.err
		}
		if flags&^byte(7) != 0 {
			r.fail("unknown record flags %#x", flags)
			return nil, r.err
		}
		const maxCycle = 1 << 31 // far beyond any campaign horizon
		if injectCycle < 0 || injectCycle > maxCycle || detectCycle < 0 || detectCycle > maxCycle {
			r.fail("record cycle out of range (inject %d, detect %d)", injectCycle, detectCycle)
			return nil, r.err
		}
		prevInject, prevDetect = injectCycle, detectCycle
		m.Records = append(m.Records, dataset.Record{
			Kernel:      kernels[ki],
			Flop:        flop,
			Unit:        cpu.FlopUnit(flop),
			Fine:        cpu.FlopFine(flop),
			Kind:        lockstep.FaultKind(kind),
			InjectCycle: int(injectCycle),
			Detected:    flags&1 != 0,
			DetectCycle: int(detectCycle),
			DSR:         dsr,
			Converged:   flags&2 != 0,
			Failed:      flags&4 != 0,
		})
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// Encode serializes the ack.
func (m *SpanReply) Encode() []byte {
	b := appendWireHeader(nil, wireSpanReply)
	var flags byte
	if m.Duplicate {
		flags |= 1
	}
	b = append(b, flags)
	b = binary.AppendUvarint(b, uint64(m.Done))
	b = binary.AppendUvarint(b, uint64(m.Total))
	return b
}

// DecodeSpanReply parses a SpanReply, rejecting malformed input with a
// *WireError.
func DecodeSpanReply(data []byte) (*SpanReply, error) {
	r := &wireReader{b: data}
	r.header(wireSpanReply)
	flags := r.byte()
	m := &SpanReply{
		Duplicate: flags&1 != 0,
		Done:      r.intv("done", 1<<31-1),
		Total:     r.intv("total", 1<<31-1),
	}
	if r.err == nil && flags&^byte(1) != 0 {
		r.fail("unknown reply flags %#x", flags)
	}
	if r.err == nil && m.Done > m.Total {
		r.fail("done %d exceeds total %d", m.Done, m.Total)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}
