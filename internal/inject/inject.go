// Package inject drives fault-injection campaigns following the paper's
// Section IV-A methodology: every flip-flop of the CPU receives transient
// (soft), stuck-at-0 and stuck-at-1 faults at randomly chosen points in
// equally sized intervals of each benchmark's run, one single fault per
// experiment, and the lockstep checker's view of each experiment is logged.
//
// The paper injected 10 million faults over two weeks on a server cluster;
// campaign size here is a Config knob with the same structure (full flop
// coverage x 3 fault kinds x intervals x benchmarks) so the methodology is
// identical and only the sample count scales.
package inject

import (
	"fmt"
	"math/rand"

	"lockstep/internal/cpu"
	"lockstep/internal/dataset"
	"lockstep/internal/lockstep"
	"lockstep/internal/workload"
)

// Config sizes a campaign.
type Config struct {
	// Kernels selects benchmark kernels by name; empty means the full
	// suite.
	Kernels []string
	// RunCycles is the fault-free horizon of each kernel's golden run;
	// injections happen anywhere in it and manifestation is observed until
	// its end (the benchmark "runs to completion").
	RunCycles int
	// Intervals divides the run into equally sized injection intervals
	// (the paper uses 64).
	Intervals int
	// InjectionsPerFlopKind is how many experiments each (flop, kind) pair
	// receives per kernel, each in a distinct randomly chosen interval.
	InjectionsPerFlopKind int
	// FlopStride samples every Nth flop (1 = every flip-flop).
	FlopStride int
	// Kinds selects fault kinds; empty means soft + stuck-at-0 + stuck-at-1.
	Kinds []lockstep.FaultKind
	// StopLatency overrides the checker stop window (cycles of DSR
	// accumulation after first divergence); 0 uses lockstep.StopLatency.
	StopLatency int
	// Seed makes the campaign reproducible.
	Seed int64
	// Progress, if non-nil, receives (done, total) experiment counts.
	Progress func(done, total int)
}

// DefaultConfig is a laptop-scale campaign: full flop coverage, all three
// fault kinds, two intervals per (flop, kind) on every kernel.
func DefaultConfig() Config {
	return Config{
		RunCycles:             12000,
		Intervals:             64,
		InjectionsPerFlopKind: 2,
		FlopStride:            1,
		Seed:                  1,
	}
}

func (c *Config) normalize() error {
	if c.RunCycles <= 0 {
		c.RunCycles = 12000
	}
	if c.Intervals <= 0 {
		c.Intervals = 64
	}
	if c.InjectionsPerFlopKind <= 0 {
		c.InjectionsPerFlopKind = 1
	}
	if c.FlopStride <= 0 {
		c.FlopStride = 1
	}
	if len(c.Kinds) == 0 {
		c.Kinds = []lockstep.FaultKind{lockstep.SoftFlip, lockstep.Stuck0, lockstep.Stuck1}
	}
	if len(c.Kernels) == 0 {
		for _, k := range workload.Kernels() {
			c.Kernels = append(c.Kernels, k.Name)
		}
	}
	for _, name := range c.Kernels {
		if workload.ByName(name) == nil {
			return fmt.Errorf("inject: unknown kernel %q", name)
		}
	}
	return nil
}

// Total returns the number of experiments the config will run.
func (c Config) Total() int {
	if err := c.normalize(); err != nil {
		return 0
	}
	flops := (cpu.NumFlops() + c.FlopStride - 1) / c.FlopStride
	return len(c.Kernels) * flops * len(c.Kinds) * c.InjectionsPerFlopKind
}

// Run executes the campaign and returns the full experiment log.
func Run(cfg Config) (*dataset.Dataset, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	total := cfg.Total()
	done := 0
	ds := &dataset.Dataset{Records: make([]dataset.Record, 0, total)}

	intervalLen := cfg.RunCycles / cfg.Intervals
	if intervalLen < 1 {
		intervalLen = 1
	}
	snapEvery := cfg.RunCycles / 16
	if snapEvery < 1 {
		snapEvery = 1
	}

	for _, name := range cfg.Kernels {
		k := workload.ByName(name)
		g, err := lockstep.NewGolden(k, cfg.RunCycles, snapEvery)
		if err != nil {
			return nil, err
		}
		for flop := 0; flop < cpu.NumFlops(); flop += cfg.FlopStride {
			for _, kind := range cfg.Kinds {
				// A per-(kernel, flop, kind) RNG keeps each experiment's
				// injection points independent of campaign iteration order.
				rng := rand.New(rand.NewSource(mix(cfg.Seed, name, flop, int(kind))))
				intervals := rng.Perm(cfg.Intervals)
				for n := 0; n < cfg.InjectionsPerFlopKind; n++ {
					iv := intervals[n%cfg.Intervals]
					cycle := iv*intervalLen + rng.Intn(intervalLen)
					if cycle >= cfg.RunCycles {
						cycle = cfg.RunCycles - 1
					}
					inj := lockstep.Injection{Flop: flop, Kind: kind, Cycle: cycle}
					window := cfg.StopLatency
					if window <= 0 {
						window = lockstep.StopLatency
					}
					out := g.InjectW(inj, window)
					ds.Records = append(ds.Records, dataset.Record{
						Kernel:      name,
						Flop:        flop,
						Unit:        cpu.FlopUnit(flop),
						Fine:        cpu.FlopFine(flop),
						Kind:        kind,
						InjectCycle: cycle,
						Detected:    out.Detected,
						DetectCycle: out.DetectCycle,
						DSR:         out.DSR,
						Converged:   out.Converged,
					})
					done++
					if cfg.Progress != nil {
						cfg.Progress(done, total)
					}
				}
			}
		}
	}
	return ds, nil
}

// mix derives a stable 64-bit seed from the campaign seed and experiment
// coordinates (FNV-style).
func mix(seed int64, kernel string, flop, kind int) int64 {
	h := uint64(seed)*0x9E3779B97F4A7C15 + 0x243F6A8885A308D3
	for _, b := range []byte(kernel) {
		h = (h ^ uint64(b)) * 0x100000001B3
	}
	h = (h ^ uint64(flop)) * 0x100000001B3
	h = (h ^ uint64(kind)) * 0x100000001B3
	h ^= h >> 29
	return int64(h)
}
