// Package inject drives fault-injection campaigns following the paper's
// Section IV-A methodology: every flip-flop of the CPU receives transient
// (soft), stuck-at-0 and stuck-at-1 faults at randomly chosen points in
// equally sized intervals of each benchmark's run, one single fault per
// experiment, and the lockstep checker's view of each experiment is logged.
//
// The paper injected 10 million faults over two weeks on a server cluster;
// campaign size here is a Config knob with the same structure (full flop
// coverage x 3 fault kinds x intervals x benchmarks) so the methodology is
// identical and only the sample count scales.
//
// Campaigns are executed in two phases. First the whole experiment plan is
// enumerated (see Plan): every injection's coordinates and cycle are fixed
// up front from Config.Seed alone. Then the plan is sharded across a pool
// of workers, each experiment replaying against a read-only per-kernel
// golden run, and records land at their plan index — so the dataset is
// bit-identical for any worker count, including a serial run.
package inject

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"lockstep/internal/cpu"
	"lockstep/internal/dataset"
	"lockstep/internal/lockstep"
	"lockstep/internal/telemetry"
	"lockstep/internal/workload"
)

// Config sizes a campaign.
type Config struct {
	// Kernels selects benchmark kernels by name; empty means the full
	// suite.
	Kernels []string
	// RunCycles is the fault-free horizon of each kernel's golden run;
	// injections happen anywhere in it and manifestation is observed until
	// its end (the benchmark "runs to completion").
	RunCycles int
	// Intervals divides the run into equally sized injection intervals
	// (the paper uses 64).
	Intervals int
	// InjectionsPerFlopKind is how many experiments each (flop, kind) pair
	// receives per kernel, each in a distinct randomly chosen interval.
	InjectionsPerFlopKind int
	// FlopStride samples every Nth flop (1 = every flip-flop).
	FlopStride int
	// Kinds selects fault kinds; empty means soft + stuck-at-0 + stuck-at-1.
	Kinds []lockstep.FaultKind
	// StopLatency overrides the checker stop window (cycles of DSR
	// accumulation after first divergence); 0 uses lockstep.StopLatency.
	StopLatency int
	// Seed makes the campaign reproducible.
	Seed int64
	// Workers is the number of parallel experiment executors; 0 or
	// negative means runtime.NumCPU(). The resulting dataset is identical
	// for every worker count (the plan fixes each experiment's schedule
	// and records merge back in plan order).
	Workers int
	// Legacy runs experiments on the original dual-CPU simulation instead
	// of the golden-trace replay path. Roughly half the throughput; kept
	// as the differential-testing oracle (outcomes are bit-identical to
	// the replay path, which the test suite asserts).
	Legacy bool
	// Progress, if non-nil, receives (done, total) experiment counts.
	// Calls are serialized and done is strictly increasing 1..total, even
	// when experiments complete out of order across workers.
	Progress func(done, total int)
}

// DefaultConfig is a laptop-scale campaign: full flop coverage, all three
// fault kinds, two intervals per (flop, kind) on every kernel.
func DefaultConfig() Config {
	return Config{
		RunCycles:             12000,
		Intervals:             64,
		InjectionsPerFlopKind: 2,
		FlopStride:            1,
		Seed:                  1,
	}
}

func (c *Config) normalize() error {
	if c.RunCycles <= 0 {
		c.RunCycles = 12000
	}
	if c.Intervals <= 0 {
		c.Intervals = 64
	}
	if c.InjectionsPerFlopKind <= 0 {
		c.InjectionsPerFlopKind = 1
	}
	if c.FlopStride <= 0 {
		c.FlopStride = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if len(c.Kinds) == 0 {
		c.Kinds = []lockstep.FaultKind{lockstep.SoftFlip, lockstep.Stuck0, lockstep.Stuck1}
	}
	if len(c.Kernels) == 0 {
		for _, k := range workload.Kernels() {
			c.Kernels = append(c.Kernels, k.Name)
		}
	}
	for _, name := range c.Kernels {
		if workload.ByName(name) == nil {
			return fmt.Errorf("inject: unknown kernel %q", name)
		}
	}
	return nil
}

// Total returns the number of experiments the config will run. A config
// that cannot run (e.g. an unknown kernel name) returns the error that
// Run/RunStats/Plan would return, instead of silently reporting 0.
func (c Config) Total() (int, error) {
	if err := c.normalize(); err != nil {
		return 0, err
	}
	flops := (cpu.NumFlops() + c.FlopStride - 1) / c.FlopStride
	return len(c.Kernels) * flops * len(c.Kinds) * c.InjectionsPerFlopKind, nil
}

// Stats reports how a campaign ran.
type Stats struct {
	Experiments int           // experiments executed
	Workers     int           // worker pool size used
	Elapsed     time.Duration // wall clock, golden runs included
	PerSec      float64       // experiments per wall-clock second
}

// String renders the stats one-line, for CLI summaries.
func (s Stats) String() string {
	return fmt.Sprintf("%d experiments in %v with %d worker(s) (%.0f exp/s)",
		s.Experiments, s.Elapsed.Round(time.Millisecond), s.Workers, s.PerSec)
}

// Run executes the campaign and returns the full experiment log.
func Run(cfg Config) (*dataset.Dataset, error) {
	ds, _, err := RunStats(cfg)
	return ds, err
}

// RunStats is Run plus wall-clock/throughput accounting.
func RunStats(cfg Config) (*dataset.Dataset, Stats, error) {
	start := time.Now()
	if err := cfg.normalize(); err != nil {
		return nil, Stats{}, err
	}
	plan, err := cfg.Plan()
	if err != nil {
		return nil, Stats{}, err
	}
	goldens, err := buildGoldens(cfg)
	if err != nil {
		return nil, Stats{}, err
	}

	window := cfg.StopLatency
	if window <= 0 {
		window = lockstep.StopLatency
	}
	workers := cfg.Workers
	if workers > len(plan) {
		workers = len(plan)
	}
	if workers < 1 {
		workers = 1
	}

	tel := newCampaignTelemetry(cfg)

	// Records land at their plan index, so the merged dataset is in
	// canonical plan order no matter which worker ran which experiment.
	records := make([]dataset.Record, len(plan))
	total := len(plan)
	var (
		done     int
		progMu   sync.Mutex
		progress = func() {
			if cfg.Progress == nil {
				return
			}
			progMu.Lock()
			done++
			cfg.Progress(done, total)
			progMu.Unlock()
		}
	)

	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker replay scratch: reused across every experiment
			// this worker runs, so the steady-state hot path allocates
			// nothing and repositioning between experiments on the same
			// kernel is an incremental image seek, not a full RAM copy.
			var rep *lockstep.Replayer
			if !cfg.Legacy {
				rep = lockstep.NewReplayer()
			}
			for idx := range next {
				e := plan[idx]
				inj := lockstep.Injection{Flop: e.Flop, Kind: e.Kind, Cycle: e.Cycle}
				var out lockstep.Outcome
				if cfg.Legacy {
					out = goldens[e.Kernel].InjectLegacyW(inj, window)
				} else {
					out = rep.InjectW(goldens[e.Kernel], inj, window)
				}
				records[idx] = dataset.Record{
					Kernel:      e.Kernel,
					Flop:        e.Flop,
					Unit:        cpu.FlopUnit(e.Flop),
					Fine:        cpu.FlopFine(e.Flop),
					Kind:        e.Kind,
					InjectCycle: e.Cycle,
					Detected:    out.Detected,
					DetectCycle: out.DetectCycle,
					DSR:         out.DSR,
					Converged:   out.Converged,
				}
				tel.record(e, out)
				progress()
			}
		}()
	}
	for idx := range plan {
		next <- idx
	}
	close(next)
	wg.Wait()

	elapsed := time.Since(start)
	st := Stats{Experiments: total, Workers: workers, Elapsed: elapsed}
	if secs := elapsed.Seconds(); secs > 0 {
		st.PerSec = float64(total) / secs
	}
	tel.finish(st)
	return &dataset.Dataset{Records: records}, st, nil
}

// campaignTelemetry holds the pre-created metric handles for one
// campaign, so experiment workers record with pure atomic operations and
// never touch the registry's mutex on the hot path. All metrics land in
// telemetry.Default; recording does not influence the experiment
// schedule or outcomes, so datasets stay bit-identical with or without a
// metrics consumer attached.
type campaignTelemetry struct {
	outcomes    map[string]*outcomeTel
	experiments *telemetry.Counter
}

// outcomeTel is the per-(kernel, kind) handle set: one counter per
// outcome class plus the detection-latency histogram (injection cycle to
// checker detection, the paper's manifestation time).
type outcomeTel struct {
	detected  *telemetry.Counter
	converged *telemetry.Counter
	escaped   *telemetry.Counter
	latency   *telemetry.Histogram
}

func outcomeKey(kernel string, kind lockstep.FaultKind) string {
	return kernel + "\x00" + kind.String()
}

func newCampaignTelemetry(cfg Config) *campaignTelemetry {
	t := &campaignTelemetry{
		outcomes:    make(map[string]*outcomeTel, len(cfg.Kernels)*len(cfg.Kinds)),
		experiments: telemetry.Default.Counter("inject.experiments"),
	}
	for _, kernel := range cfg.Kernels {
		for _, kind := range cfg.Kinds {
			kk, kd := telemetry.L("kernel", kernel), telemetry.L("kind", kind.String())
			t.outcomes[outcomeKey(kernel, kind)] = &outcomeTel{
				detected:  telemetry.Default.Counter("inject.outcomes", kk, kd, telemetry.L("outcome", "detected")),
				converged: telemetry.Default.Counter("inject.outcomes", kk, kd, telemetry.L("outcome", "converged")),
				escaped:   telemetry.Default.Counter("inject.outcomes", kk, kd, telemetry.L("outcome", "escaped")),
				latency:   telemetry.Default.Histogram("inject.detect_latency", telemetry.CycleBuckets, kk, kd),
			}
		}
	}
	return t
}

func (t *campaignTelemetry) record(e Experiment, out lockstep.Outcome) {
	t.experiments.Inc()
	o := t.outcomes[outcomeKey(e.Kernel, e.Kind)]
	switch {
	case out.Detected:
		o.detected.Inc()
		o.latency.Observe(int64(out.DetectCycle - e.Cycle))
	case out.Converged:
		o.converged.Inc()
	default:
		o.escaped.Inc()
	}
}

func (t *campaignTelemetry) finish(st Stats) {
	telemetry.Default.Gauge("inject.workers").Set(int64(st.Workers))
	telemetry.Default.Gauge("inject.elapsed_ms").Set(st.Elapsed.Milliseconds())
	telemetry.Default.Gauge("inject.per_sec").Set(int64(st.PerSec))
}

// buildGoldens records one fault-free golden run per kernel, in parallel
// (each golden is an independent simulation). The returned goldens are
// immutable and shared read-only by all experiment workers.
func buildGoldens(cfg Config) (map[string]*lockstep.Golden, error) {
	snapEvery := cfg.RunCycles / 16
	if snapEvery < 1 {
		snapEvery = 1
	}
	goldens := make(map[string]*lockstep.Golden, len(cfg.Kernels))
	errs := make([]error, len(cfg.Kernels))
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	sem := make(chan struct{}, cfg.Workers)
	for i, name := range cfg.Kernels {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			g, err := lockstep.NewGolden(workload.ByName(name), cfg.RunCycles, snapEvery)
			if err != nil {
				errs[i] = err
				return
			}
			mu.Lock()
			goldens[name] = g
			mu.Unlock()
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var traceBytes int64
	for _, g := range goldens {
		traceBytes += g.TraceBytes()
	}
	telemetry.Default.Gauge("inject.golden_trace_bytes").Set(traceBytes)
	return goldens, nil
}
