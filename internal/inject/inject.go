// Package inject drives fault-injection campaigns following the paper's
// Section IV-A methodology: every flip-flop of the CPU receives transient
// (soft), stuck-at-0 and stuck-at-1 faults at randomly chosen points in
// equally sized intervals of each benchmark's run, one single fault per
// experiment, and the lockstep checker's view of each experiment is logged.
//
// The paper injected 10 million faults over two weeks on a server cluster;
// campaign size here is a Config knob with the same structure (full flop
// coverage x 3 fault kinds x intervals x benchmarks) so the methodology is
// identical and only the sample count scales.
//
// Campaigns are executed in two phases. First the whole experiment plan is
// enumerated (see Plan): every injection's coordinates and cycle are fixed
// up front from Config.Seed alone. Then the plan is sharded across a pool
// of workers, each experiment replaying against a read-only per-kernel
// golden run, and records land at their plan index — so the dataset is
// bit-identical for any worker count, including a serial run.
//
// Long campaigns are crash-safe: with Config.CheckpointPath set the run
// periodically persists an atomic, versioned checkpoint of the completed
// plan spans, and Config.Resume restores it and re-executes only the
// remaining plan indices — the final dataset is byte-identical to an
// uninterrupted run (see checkpoint.go). Workers contain faults in the
// harness itself: a panicking experiment is retried on fresh scratch and
// then recorded as a Failed row, and an optional per-experiment watchdog
// budget bounds a stuck experiment, so one poisoned experiment cannot
// kill a multi-week campaign.
package inject

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lockstep/internal/cpu"
	"lockstep/internal/dataset"
	"lockstep/internal/lockstep"
	"lockstep/internal/telemetry"
	"lockstep/internal/workload"
)

// ConfigError reports an invalid campaign Config. Field names the
// offending Config field and Reason explains the problem, so every
// consumer — the campaign CLIs and the lockstep-serve API — can report
// the same field the same way (the CLI prints Error(), the server echoes
// Field in its structured JSON error).
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("inject: config %s: %s", e.Field, e.Reason)
}

// ErrCanceled is returned by Run/RunStats when the campaign was stopped
// via Config.Cancel before finishing. The partial results are not
// returned as a dataset; with checkpointing enabled they are persisted
// in the final checkpoint, and a Resume run completes the campaign with
// a byte-identical dataset.
var ErrCanceled = errors.New("inject: campaign canceled")

// Config sizes a campaign.
type Config struct {
	// Kernels selects benchmark kernels by name; empty means the full
	// suite.
	Kernels []string
	// RunCycles is the fault-free horizon of each kernel's golden run;
	// injections happen anywhere in it and manifestation is observed until
	// its end (the benchmark "runs to completion").
	RunCycles int
	// Intervals divides the run into equally sized injection intervals
	// (the paper uses 64).
	Intervals int
	// InjectionsPerFlopKind is how many experiments each (flop, kind) pair
	// receives per kernel, each in a distinct randomly chosen interval.
	InjectionsPerFlopKind int
	// FlopStride samples every Nth flop (1 = every flip-flop).
	FlopStride int
	// Kinds selects fault kinds; empty means soft + stuck-at-0 + stuck-at-1.
	Kinds []lockstep.FaultKind
	// StopLatency overrides the checker stop window (cycles of DSR
	// accumulation after first divergence); 0 uses lockstep.StopLatency.
	StopLatency int
	// Seed makes the campaign reproducible.
	Seed int64
	// Mode selects the lockstep organization experiments run under: DCLS
	// (the zero value, the paper's baseline), temporal-slip ("slip:N",
	// the redundant CPU staggered N cycles behind the main) or TMR
	// (majority voter with forward recovery). The injection plan is
	// mode-independent — the same (flop, kind, cycle) schedule runs under
	// every mode — so mode is a pure campaign axis; it participates in
	// the fingerprint, the checkpoint and the dataset rows.
	Mode lockstep.Mode
	// Workers is the number of parallel experiment executors; 0 or
	// negative means runtime.NumCPU(). The resulting dataset is identical
	// for every worker count (the plan fixes each experiment's schedule
	// and records merge back in plan order).
	Workers int
	// Legacy runs experiments on the original dual-CPU simulation instead
	// of the golden-trace replay path. Roughly half the throughput; kept
	// as the differential-testing oracle (outcomes are bit-identical to
	// the replay path, which the test suite asserts).
	Legacy bool
	// NoPrune disables static fault-equivalence pruning, simulating every
	// experiment even when the golden run's liveness analysis proves its
	// outcome. The dataset is byte-identical either way — NoPrune is the
	// differential-oracle escape hatch (and the slow path), not a
	// different campaign. It participates in the resume fingerprint so a
	// checkpoint is never silently continued under the other setting.
	//
	// With pruning on, a deterministic seeded sample of the pruned sites
	// (~1/64, at least one whenever anything was pruned) is still
	// simulated and compared against the static prediction; a mismatch
	// aborts the campaign with an error naming the (flop, cycle), so an
	// unsound analysis can never quietly ship a dataset.
	NoPrune bool
	// Progress, if non-nil, receives (done, total) experiment counts for
	// the experiments this run executes (a resumed campaign reports the
	// remaining work, not the restored records). Calls are serialized and
	// done is strictly increasing 1..total, even when experiments complete
	// out of order across workers.
	Progress func(done, total int)

	// CheckpointPath, when non-empty, makes the campaign periodically
	// persist an atomic resumable checkpoint (completed plan spans +
	// records + config fingerprint) to this path, and write a final one on
	// completion. See checkpoint.go for the crash-safety contract.
	CheckpointPath string
	// CheckpointEvery is the number of completed experiments between
	// checkpoint writes; 0 means a default of 4096. Only meaningful with
	// CheckpointPath.
	CheckpointEvery int
	// Resume restores the checkpoint at CheckpointPath and re-executes
	// only the plan indices it does not cover. The final dataset is
	// byte-identical to an uninterrupted run at any worker count. A
	// missing, corrupt or config-mismatched checkpoint refuses with a
	// typed error instead of silently restarting.
	Resume bool

	// Cancel, when non-nil, requests a graceful early stop: once the
	// channel is closed no further experiments are dispatched, in-flight
	// experiments drain, and — with CheckpointPath set — a final
	// checkpoint covering every completed experiment is written before
	// RunStats returns ErrCanceled. A later run with Resume then finishes
	// the campaign with a dataset byte-identical to an uninterrupted run.
	// Cancellation is schedule-neutral, so it is not part of the resume
	// fingerprint.
	Cancel <-chan struct{}

	// Retries is how many times a panicking experiment is re-attempted
	// before being recorded as Failed; 0 means a default of 1, negative
	// disables retries. Panics never escape a worker: a poisoned
	// experiment costs one dataset row, not the campaign.
	Retries int
	// ExperimentBudget is the per-experiment watchdog: an experiment still
	// running after this wall-clock budget (derive it from the cycle
	// horizon — e.g. RunCycles at a conservative simulated-cycles-per-
	// second floor) is abandoned and recorded as Failed. 0 disables the
	// watchdog, which is the default: a budget trades the campaign's
	// bit-determinism on overloaded machines for guaranteed liveness, so
	// it is opt-in.
	ExperimentBudget time.Duration

	// testHook, when set, runs at the start of every experiment attempt.
	// It exists so tests can inject panics and stalls into the worker pool
	// to exercise the containment layer.
	testHook func(Experiment)
}

// DefaultConfig is a laptop-scale campaign: full flop coverage, all three
// fault kinds, two intervals per (flop, kind) on every kernel.
func DefaultConfig() Config {
	return Config{
		RunCycles:             12000,
		Intervals:             64,
		InjectionsPerFlopKind: 2,
		FlopStride:            1,
		Seed:                  1,
	}
}

func (c *Config) normalize() error {
	if c.RunCycles <= 0 {
		c.RunCycles = 12000
	}
	if c.Intervals <= 0 {
		c.Intervals = 64
	}
	if c.InjectionsPerFlopKind <= 0 {
		c.InjectionsPerFlopKind = 1
	}
	if c.FlopStride <= 0 {
		c.FlopStride = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 4096
	}
	switch {
	case c.Retries == 0:
		c.Retries = 1
	case c.Retries < 0:
		c.Retries = 0
	}
	if c.Resume && c.CheckpointPath == "" {
		return &ConfigError{Field: "Resume", Reason: "requires CheckpointPath"}
	}
	switch c.Mode.Kind {
	case lockstep.ModeDCLS, lockstep.ModeTMR:
		if c.Mode.Slip != 0 {
			return &ConfigError{Field: "Slip", Reason: fmt.Sprintf("slip count %d requires slip mode", c.Mode.Slip)}
		}
	case lockstep.ModeSlip:
		if c.Mode.Slip < 0 {
			return &ConfigError{Field: "Slip", Reason: fmt.Sprintf("negative slip %d", c.Mode.Slip)}
		}
		if c.Mode.Slip >= c.RunCycles {
			return &ConfigError{Field: "Slip", Reason: fmt.Sprintf(
				"slip %d leaves no compare horizon within the %d-cycle run", c.Mode.Slip, c.RunCycles)}
		}
	default:
		return &ConfigError{Field: "Mode", Reason: fmt.Sprintf("unknown mode kind %d", c.Mode.Kind)}
	}
	if len(c.Kinds) == 0 {
		c.Kinds = []lockstep.FaultKind{lockstep.SoftFlip, lockstep.Stuck0, lockstep.Stuck1}
	}
	if len(c.Kernels) == 0 {
		for _, k := range workload.Kernels() {
			c.Kernels = append(c.Kernels, k.Name)
		}
	}
	for _, name := range c.Kernels {
		if workload.ByName(name) == nil {
			return &ConfigError{Field: "Kernels", Reason: fmt.Sprintf("unknown kernel %q", name)}
		}
	}
	return nil
}

// Fingerprint returns the schedule fingerprint of the config: every field
// that influences which experiments run and what they record, normalized
// (defaults applied, kernel list expanded). Two configs with equal
// fingerprints produce byte-identical datasets, so the fingerprint is a
// stable identity for a campaign — lockstep-serve derives job IDs from
// it, and checkpoints embed it to refuse mismatched resumes.
func (c Config) Fingerprint() (Fingerprint, error) {
	if err := c.normalize(); err != nil {
		return Fingerprint{}, err
	}
	return c.fingerprint(), nil
}

// Total returns the number of experiments the config will run. A config
// that cannot run (e.g. an unknown kernel name) returns the error that
// Run/RunStats/Plan would return, instead of silently reporting 0.
func (c Config) Total() (int, error) {
	if err := c.normalize(); err != nil {
		return 0, err
	}
	flops := (cpu.NumFlops() + c.FlopStride - 1) / c.FlopStride
	return len(c.Kernels) * flops * len(c.Kinds) * c.InjectionsPerFlopKind, nil
}

// Stats reports how a campaign ran.
type Stats struct {
	Experiments int // experiments in the dataset (restored + executed)
	Restored    int // experiments restored from a resume checkpoint
	// Pruned counts experiments whose outcome the static liveness
	// analysis proved, recorded without simulation (a subset of
	// Executed: pruning is why exp/s rises).
	Pruned int
	// OracleChecked counts pruned sites the runtime differential oracle
	// re-simulated anyway to confirm the static prediction.
	OracleChecked int
	Failures      int           // experiments recorded as Failed by the containment layer
	Checkpoints   int           // checkpoint files written
	Workers       int           // worker pool size used
	Elapsed       time.Duration // wall clock, golden runs included
	PerSec        float64       // executed experiments per wall-clock second
}

// Executed is the number of experiments this run resolved itself, whether
// by simulation or by static pruning.
func (s Stats) Executed() int { return s.Experiments - s.Restored }

// String renders the stats one-line, for CLI summaries.
func (s Stats) String() string {
	out := fmt.Sprintf("%d experiments in %v with %d worker(s) (%.0f exp/s)",
		s.Experiments, s.Elapsed.Round(time.Millisecond), s.Workers, s.PerSec)
	if s.Pruned > 0 {
		out += fmt.Sprintf(", %d pruned (%d oracle-checked)", s.Pruned, s.OracleChecked)
	}
	if s.Restored > 0 {
		out += fmt.Sprintf(", %d restored from checkpoint", s.Restored)
	}
	if s.Failures > 0 {
		out += fmt.Sprintf(", %d FAILED", s.Failures)
	}
	return out
}

// Run executes the campaign and returns the full experiment log.
func Run(cfg Config) (*dataset.Dataset, error) {
	ds, _, err := RunStats(cfg)
	return ds, err
}

// RunStats is Run plus wall-clock/throughput accounting.
func RunStats(cfg Config) (*dataset.Dataset, Stats, error) {
	start := time.Now()
	if err := cfg.normalize(); err != nil {
		return nil, Stats{}, err
	}
	plan, err := cfg.Plan()
	if err != nil {
		return nil, Stats{}, err
	}

	// Records land at their plan index, so the merged dataset is in
	// canonical plan order no matter which worker ran which experiment —
	// and no matter how much of it was restored from a checkpoint.
	records := make([]dataset.Record, len(plan))
	// done[i] is set with release semantics once records[i] is final; the
	// checkpointer's acquire loads make its record snapshots consistent.
	// Only allocated when checkpointing/resume is on: the plain campaign
	// hot path stays exactly as before.
	var done []atomic.Bool
	if cfg.CheckpointPath != "" {
		done = make([]atomic.Bool, len(plan))
	}
	restored := 0
	if cfg.Resume {
		ck, err := ReadCheckpoint(cfg.CheckpointPath)
		if err != nil {
			return nil, Stats{}, err
		}
		if err := ck.validate(cfg, len(plan)); err != nil {
			return nil, Stats{}, err
		}
		ri := 0
		for _, sp := range ck.Done {
			for i := sp.Lo; i < sp.Hi; i++ {
				records[i] = ck.Records[ri]
				ri++
				done[i].Store(true)
			}
		}
		restored = ck.DoneCount()
		telemetry.Default.Gauge("inject.experiments_restored").Set(int64(restored))
	}

	// pending is this run's work list: every plan index the resume
	// checkpoint (if any) did not cover, in canonical order. Goldens are
	// only recorded for kernels that still have pending work, so resuming
	// a nearly finished campaign is nearly free.
	pending := make([]int, 0, len(plan)-restored)
	needKernel := make(map[string]bool, len(cfg.Kernels))
	for i := range plan {
		if restored > 0 && done[i].Load() {
			continue
		}
		pending = append(pending, i)
		needKernel[plan[i].Kernel] = true
	}
	var kernels []string
	for _, name := range cfg.Kernels {
		if needKernel[name] {
			kernels = append(kernels, name)
		}
	}
	goldens, err := buildGoldens(cfg, kernels)
	if err != nil {
		return nil, Stats{}, err
	}

	window := cfg.StopLatency
	if window <= 0 {
		window = lockstep.StopLatency
	}

	tel := newCampaignTelemetry(cfg)

	var ckp *checkpointer
	if cfg.CheckpointPath != "" {
		ckp = startCheckpointer(cfg, records, done)
	}

	// total is fixed before the prune pass: pruned experiments count as
	// completed work, so Progress still reports a strictly increasing
	// 1..total over everything this run resolves.
	total := len(pending)
	var (
		prog     int
		progMu   sync.Mutex
		progress = func() {
			if cfg.Progress == nil {
				return
			}
			progMu.Lock()
			prog++
			cfg.Progress(prog, total)
			progMu.Unlock()
		}
	)

	// Static fault-equivalence pruning: record every pending experiment
	// whose outcome the golden run's liveness analysis proves, without
	// dispatching it. A deterministic seeded sample of the prunable sites
	// stays in the work list as the runtime differential oracle: workers
	// simulate those normally and the campaign hard-fails on any
	// prediction mismatch (see oracleExpect below). The pass is serial
	// and derived only from plan + goldens, so datasets stay byte-
	// identical across worker counts, resumes, and pruning on/off.
	var oracleExpect map[int]lockstep.Outcome
	var prunedN, oracleN int64
	if !cfg.NoPrune {
		oracleExpect = make(map[int]lockstep.Outcome)
		remaining := pending[:0]
		for _, idx := range pending {
			e := plan[idx]
			out, ok := goldens[e.Kernel].PruneMode(lockstep.Injection{Flop: e.Flop, Kind: e.Kind, Cycle: e.Cycle}, cfg.Mode)
			if !ok {
				remaining = append(remaining, idx)
				continue
			}
			if oracleSampled(cfg.Seed, e) {
				oracleExpect[idx] = out
				oracleN++
				remaining = append(remaining, idx)
				continue
			}
			records[idx] = recordFor(e, out, cfg.Mode)
			tel.record(e, out)
			prunedN++
			if done != nil {
				done[idx].Store(true)
			}
			if ckp != nil {
				ckp.completed()
			}
			progress()
		}
		pending = remaining
		if prunedN > 0 {
			telemetry.Default.Counter("inject.pruned").Add(prunedN)
		}
		if oracleN > 0 {
			telemetry.Default.Counter("inject.pruned_oracle_checked").Add(oracleN)
		}
	}

	workers := cfg.Workers
	if workers > len(pending) {
		workers = len(pending)
	}
	if workers < 1 {
		workers = 1
	}

	// abort stops dispatch when the runtime oracle catches a static
	// prediction that the simulator contradicts; the first mismatch wins.
	abort := make(chan struct{})
	var oracleOnce sync.Once
	var oracleErr error

	next := make(chan int)
	var failures, executed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker containment wrapper around the replay scratch:
			// reused across every experiment this worker runs, so the
			// steady-state hot path allocates nothing and repositioning
			// between experiments on the same kernel is an incremental
			// image seek, not a full RAM copy.
			w := &worker{cfg: cfg, goldens: goldens, window: window}
			for idx := range next {
				e := plan[idx]
				out := w.run(e)
				if out.Failed {
					failures.Add(1)
				}
				if expect, ok := oracleExpect[idx]; ok && !out.Failed && out != expect {
					oracleOnce.Do(func() {
						oracleErr = fmt.Errorf(
							"inject: pruning oracle mismatch: %s %s at flop %d (%s) cycle %d predicted %+v, simulated %+v",
							e.Kernel, e.Kind, e.Flop, cpu.FlopName(e.Flop), e.Cycle, expect, out)
						close(abort)
					})
				}
				records[idx] = recordFor(e, out, cfg.Mode)
				tel.record(e, out)
				executed.Add(1)
				if done != nil {
					done[idx].Store(true)
				}
				if ckp != nil {
					ckp.completed()
				}
				progress()
			}
		}()
	}
	// Dispatch the pending plan indices, stopping early when Cancel
	// fires (receiving from a nil Cancel blocks forever, so the select
	// degenerates to a plain send for the common un-cancellable case).
	canceled := false
feed:
	for _, idx := range pending {
		select {
		case next <- idx:
		case <-cfg.Cancel:
			canceled = true
			break feed
		case <-abort:
			break feed
		}
	}
	close(next)
	wg.Wait()

	st := Stats{
		Experiments:   len(plan),
		Restored:      restored,
		Pruned:        int(prunedN),
		OracleChecked: int(oracleN),
		Failures:      int(failures.Load()),
		Workers:       workers,
	}
	if canceled {
		st.Experiments = restored + int(prunedN) + int(executed.Load())
	}
	if ckp != nil {
		n, err := ckp.stop()
		st.Checkpoints = n
		if err != nil {
			return nil, st, fmt.Errorf("inject: checkpoint: %w", err)
		}
	}
	st.Elapsed = time.Since(start)
	if secs := st.Elapsed.Seconds(); secs > 0 {
		st.PerSec = float64(st.Executed()) / secs
	}
	tel.finish(st)
	if oracleErr != nil {
		return nil, st, oracleErr
	}
	if canceled {
		return nil, st, ErrCanceled
	}
	return &dataset.Dataset{Records: records}, st, nil
}

// recordFor renders one experiment's outcome as its dataset row; the
// statically-pruned path and the simulating workers must produce rows
// through the same function so pruning can never skew the dataset format.
func recordFor(e Experiment, out lockstep.Outcome, mode lockstep.Mode) dataset.Record {
	return dataset.Record{
		Kernel:      e.Kernel,
		Flop:        e.Flop,
		Unit:        cpu.FlopUnit(e.Flop),
		Fine:        cpu.FlopFine(e.Flop),
		Kind:        e.Kind,
		InjectCycle: e.Cycle,
		Detected:    out.Detected,
		DetectCycle: out.DetectCycle,
		DSR:         out.DSR,
		Converged:   out.Converged,
		Failed:      out.Failed,
		Mode:        mode,
	}
}

// oracleSampled deterministically selects ~1/64 of prunable sites for the
// runtime differential oracle. The decision hashes only the campaign seed
// and the experiment coordinates — never worker count or iteration order —
// so the same sites are re-simulated on every run and resume of a
// campaign, keeping datasets byte-identical.
func oracleSampled(seed int64, e Experiment) bool {
	h := uint64(mix(seed, e.Kernel, e.Flop, int(e.Kind)))
	h ^= uint64(e.Cycle) * 0x9E3779B97F4A7C15
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return h&63 == 0
}

// worker runs experiments under the campaign's fault-containment policy:
// panic isolation with bounded retry, plus the optional per-experiment
// watchdog budget. One worker is owned by exactly one executor goroutine.
type worker struct {
	cfg     Config
	goldens map[string]*lockstep.Golden
	window  int
	rep     *lockstep.Replayer // replay scratch; nil until first use or after poisoning
}

// run executes one experiment and never panics: a panicking experiment is
// re-attempted up to cfg.Retries times on a fresh replay scratch (the old
// one may be mid-experiment) and then recorded as Failed; a
// watchdog-budget overrun is recorded as Failed immediately, since the
// budget is already spent.
func (w *worker) run(e Experiment) lockstep.Outcome {
	for attempt := 0; ; attempt++ {
		out, panicked, timedOut := w.attempt(e)
		switch {
		case timedOut:
			w.rep = nil
			return lockstep.Outcome{Failed: true}
		case panicked:
			w.rep = nil
			if attempt < w.cfg.Retries {
				continue
			}
			return lockstep.Outcome{Failed: true}
		default:
			return out
		}
	}
}

// attempt performs one try, enforcing the watchdog budget if configured.
// On a timeout the experiment goroutine is abandoned together with its
// replay scratch: it holds no locks, reads only the immutable golden, and
// its result is discarded, so the worker can move on safely.
func (w *worker) attempt(e Experiment) (out lockstep.Outcome, panicked, timedOut bool) {
	rep := w.rep
	if rep == nil && !w.cfg.Legacy {
		rep = lockstep.NewReplayer()
	}
	w.rep = rep
	if w.cfg.ExperimentBudget <= 0 {
		out, panicked = w.once(e, rep)
		return out, panicked, false
	}
	type result struct {
		out      lockstep.Outcome
		panicked bool
	}
	ch := make(chan result, 1)
	go func() {
		o, p := w.once(e, rep)
		ch <- result{o, p}
	}()
	timer := time.NewTimer(w.cfg.ExperimentBudget)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.out, r.panicked, false
	case <-timer.C:
		return lockstep.Outcome{}, false, true
	}
}

// once is a single contained attempt. It touches no worker fields besides
// read-only config and goldens, so an abandoned (timed-out) invocation
// cannot race with the worker's next attempt.
func (w *worker) once(e Experiment, rep *lockstep.Replayer) (out lockstep.Outcome, panicked bool) {
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	if w.cfg.testHook != nil {
		w.cfg.testHook(e)
	}
	inj := lockstep.Injection{Flop: e.Flop, Kind: e.Kind, Cycle: e.Cycle}
	if w.cfg.Legacy {
		return w.goldens[e.Kernel].InjectLegacyMode(inj, w.cfg.Mode, w.window), false
	}
	return rep.InjectMode(w.goldens[e.Kernel], inj, w.cfg.Mode, w.window), false
}

// checkpointer owns the campaign's checkpoint file. Workers only flip
// done bits and bump a completion counter; the checkpointer goroutine
// snapshots the done bitmap into spans and persists them atomically every
// CheckpointEvery completions, and stop() writes the final checkpoint.
type checkpointer struct {
	path    string
	every   int64
	fp      Fingerprint
	records []dataset.Record
	done    []atomic.Bool

	completedN atomic.Int64
	kick       chan struct{}
	quit       chan struct{}
	idle       sync.WaitGroup

	// Written by the loop goroutine, read by stop() after idle.Wait.
	writes int
	err    error

	telWrites        *telemetry.Counter
	telDone, telLast *telemetry.Gauge
}

func startCheckpointer(cfg Config, records []dataset.Record, done []atomic.Bool) *checkpointer {
	c := &checkpointer{
		path:      cfg.CheckpointPath,
		every:     int64(cfg.CheckpointEvery),
		fp:        cfg.fingerprint(),
		records:   records,
		done:      done,
		kick:      make(chan struct{}, 1),
		quit:      make(chan struct{}),
		telWrites: telemetry.Default.Counter("inject.checkpoint_writes"),
		telDone:   telemetry.Default.Gauge("inject.checkpoint_done"),
		telLast:   telemetry.Default.Gauge("inject.checkpoint_last_unix_ms"),
	}
	telemetry.Default.Gauge("inject.checkpoint_total").Set(int64(len(records)))
	c.idle.Add(1)
	go c.loop()
	return c
}

// completed is the worker-side trigger: O(1), lock-free.
func (c *checkpointer) completed() {
	if c.completedN.Add(1)%c.every == 0 {
		select {
		case c.kick <- struct{}{}:
		default: // a write is already due; it will see these completions
		}
	}
}

func (c *checkpointer) loop() {
	defer c.idle.Done()
	for {
		select {
		case <-c.kick:
			c.write()
		case <-c.quit:
			return
		}
	}
}

// write snapshots the done bitmap into sorted disjoint spans and persists
// the checkpoint. The campaign keeps running on a write error; the first
// error is surfaced when the checkpointer stops, so a full dataset is
// never discarded because one checkpoint write failed mid-run.
func (c *checkpointer) write() {
	ck := &Checkpoint{FP: c.fp, Total: len(c.records)}
	for i := range c.done {
		if !c.done[i].Load() {
			continue
		}
		if n := len(ck.Done); n > 0 && ck.Done[n-1].Hi == i {
			ck.Done[n-1].Hi = i + 1
		} else {
			ck.Done = append(ck.Done, Span{Lo: i, Hi: i + 1})
		}
		ck.Records = append(ck.Records, c.records[i])
	}
	if err := WriteCheckpoint(c.path, ck); err != nil {
		if c.err == nil {
			c.err = err
		}
		return
	}
	c.writes++
	c.telWrites.Inc()
	c.telDone.Set(int64(len(ck.Records)))
	c.telLast.Set(time.Now().UnixMilli())
}

// stop drains the checkpoint loop, writes the final checkpoint (which
// covers the whole plan on a completed campaign) and reports how many
// checkpoint files were written plus the first write error, if any.
func (c *checkpointer) stop() (int, error) {
	close(c.quit)
	c.idle.Wait()
	c.write()
	return c.writes, c.err
}

// campaignTelemetry holds the pre-created metric handles for one
// campaign, so experiment workers record with pure atomic operations and
// never touch the registry's mutex on the hot path. All metrics land in
// telemetry.Default; recording does not influence the experiment
// schedule or outcomes, so datasets stay bit-identical with or without a
// metrics consumer attached.
type campaignTelemetry struct {
	outcomes    map[string]*outcomeTel
	experiments *telemetry.Counter
	failures    *telemetry.Counter
}

// outcomeTel is the per-(kernel, kind) handle set: one counter per
// outcome class plus the detection-latency histogram (injection cycle to
// checker detection, the paper's manifestation time).
type outcomeTel struct {
	detected  *telemetry.Counter
	converged *telemetry.Counter
	escaped   *telemetry.Counter
	failed    *telemetry.Counter
	latency   *telemetry.Histogram
}

func outcomeKey(kernel string, kind lockstep.FaultKind) string {
	return kernel + "\x00" + kind.String()
}

func newCampaignTelemetry(cfg Config) *campaignTelemetry {
	t := &campaignTelemetry{
		outcomes:    make(map[string]*outcomeTel, len(cfg.Kernels)*len(cfg.Kinds)),
		experiments: telemetry.Default.Counter("inject.experiments"),
		failures:    telemetry.Default.Counter("inject.experiment_failures"),
	}
	for _, kernel := range cfg.Kernels {
		for _, kind := range cfg.Kinds {
			kk, kd := telemetry.L("kernel", kernel), telemetry.L("kind", kind.String())
			t.outcomes[outcomeKey(kernel, kind)] = &outcomeTel{
				detected:  telemetry.Default.Counter("inject.outcomes", kk, kd, telemetry.L("outcome", "detected")),
				converged: telemetry.Default.Counter("inject.outcomes", kk, kd, telemetry.L("outcome", "converged")),
				escaped:   telemetry.Default.Counter("inject.outcomes", kk, kd, telemetry.L("outcome", "escaped")),
				failed:    telemetry.Default.Counter("inject.outcomes", kk, kd, telemetry.L("outcome", "failed")),
				latency:   telemetry.Default.Histogram("inject.detect_latency", telemetry.CycleBuckets, kk, kd),
			}
		}
	}
	return t
}

func (t *campaignTelemetry) record(e Experiment, out lockstep.Outcome) {
	t.experiments.Inc()
	o := t.outcomes[outcomeKey(e.Kernel, e.Kind)]
	switch {
	case out.Failed:
		o.failed.Inc()
		t.failures.Inc()
	case out.Detected:
		o.detected.Inc()
		o.latency.Observe(int64(out.DetectCycle - e.Cycle))
	case out.Converged:
		o.converged.Inc()
	default:
		o.escaped.Inc()
	}
}

func (t *campaignTelemetry) finish(st Stats) {
	telemetry.Default.Gauge("inject.workers").Set(int64(st.Workers))
	telemetry.Default.Gauge("inject.elapsed_ms").Set(st.Elapsed.Milliseconds())
	telemetry.Default.Gauge("inject.per_sec").Set(int64(st.PerSec))
}

// buildGoldens records one fault-free golden run per kernel that still
// has pending experiments, in parallel (each golden is an independent
// simulation). The returned goldens are immutable and shared read-only by
// all experiment workers.
func buildGoldens(cfg Config, kernels []string) (map[string]*lockstep.Golden, error) {
	snapEvery := cfg.RunCycles / 16
	if snapEvery < 1 {
		snapEvery = 1
	}
	goldens := make(map[string]*lockstep.Golden, len(kernels))
	errs := make([]error, len(kernels))
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	sem := make(chan struct{}, cfg.Workers)
	for i, name := range kernels {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			g, err := lockstep.NewGolden(workload.ByName(name), cfg.RunCycles, snapEvery)
			if err != nil {
				errs[i] = err
				return
			}
			mu.Lock()
			goldens[name] = g
			mu.Unlock()
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var traceBytes int64
	for _, g := range goldens {
		traceBytes += g.TraceBytes()
	}
	telemetry.Default.Gauge("inject.golden_trace_bytes").Set(traceBytes)
	return goldens, nil
}
