package inject

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"lockstep/internal/dataset"
	"lockstep/internal/lockstep"
)

// distConfig returns a small two-kernel campaign plus a DistConfig driven
// by a test-controlled clock.
func distConfig(t *testing.T) (Config, DistConfig, *time.Time) {
	t.Helper()
	cfg := smallConfig()
	now := time.Unix(1000, 0)
	dc := DistConfig{
		LeaseSize: 16,
		LeaseTTL:  10 * time.Second,
		now:       func() time.Time { return now },
	}
	return cfg, dc, &now
}

func csvBytes(t *testing.T, ds *dataset.Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// drainCampaign pulls leases for the named workers round-robin and
// commits each through its own SpanRunner until the coordinator reports
// done, mimicking a multi-node cluster in-process.
func drainCampaign(t *testing.T, co *Coordinator, cfg Config, workers ...string) {
	t.Helper()
	runners := map[string]*SpanRunner{}
	for i := 0; ; i = (i + 1) % len(workers) {
		w := workers[i]
		reply, err := co.Acquire(w, co.Digest(), 0)
		if err != nil {
			t.Fatalf("worker %s: acquire: %v", w, err)
		}
		switch reply.Status {
		case LeaseDone:
			return
		case LeaseWait:
			t.Fatalf("worker %s: unexpected wait with no outstanding leases", w)
		}
		r := runners[w]
		if r == nil {
			rcfg, err := reply.FP.Config()
			if err != nil {
				t.Fatal(err)
			}
			rcfg.Workers = 1
			if r, err = NewSpanRunner(rcfg); err != nil {
				t.Fatal(err)
			}
			runners[w] = r
		}
		records, st, err := r.Run(reply.Span)
		if err != nil {
			t.Fatalf("worker %s: span [%d,%d): %v", w, reply.Span.Lo, reply.Span.Hi, err)
		}
		ack, err := co.Commit(&SpanSubmit{
			Worker: w, Digest: co.Digest(), LeaseID: reply.LeaseID, Span: reply.Span,
			Pruned: st.Pruned, OracleChecked: st.OracleChecked, Records: records,
		})
		if err != nil {
			t.Fatalf("worker %s: commit: %v", w, err)
		}
		if ack.Duplicate {
			t.Fatalf("worker %s: fresh span [%d,%d) acked as duplicate", w, reply.Span.Lo, reply.Span.Hi)
		}
	}
}

// TestDistributedMatchesRun is the core byte-identity property: a
// campaign merged from leased spans equals a single-machine inject.Run,
// at several worker counts and lease sizes.
func TestDistributedMatchesRun(t *testing.T) {
	cfg, _, _ := distConfig(t)
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantCSV := csvBytes(t, want)
	for _, tc := range []struct {
		name      string
		workers   []string
		leaseSize int
	}{
		{"1worker", []string{"a"}, 16},
		{"2workers", []string{"a", "b"}, 16},
		{"3workers-oddlease", []string{"a", "b", "c"}, 7},
		{"hugelease", []string{"a", "b"}, 1 << 19},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg, dc, _ := distConfig(t)
			dc.LeaseSize = tc.leaseSize
			co, err := NewCoordinator(cfg, dc)
			if err != nil {
				t.Fatal(err)
			}
			drainCampaign(t, co, cfg, tc.workers...)
			if err := co.WaitDone(nil); err != nil {
				t.Fatal(err)
			}
			ds, st, err := co.Result()
			if err != nil {
				t.Fatal(err)
			}
			if got := csvBytes(t, ds); !bytes.Equal(got, wantCSV) {
				t.Fatalf("distributed dataset differs from direct run (%d vs %d bytes)", len(got), len(wantCSV))
			}
			if st.Experiments != want.Len() {
				t.Fatalf("stats report %d experiments, want %d", st.Experiments, want.Len())
			}
			if !cfg.NoPrune && st.Pruned == 0 {
				t.Error("no pruning reported through span submissions")
			}
		})
	}
}

// TestLeaseKernelAffinity asserts leases never straddle kernel blocks,
// concurrent workers are spread across distinct blocks, and a worker
// stays in its block while the block has free work — the property that
// lets each worker node build one golden instead of all of them.
func TestLeaseKernelAffinity(t *testing.T) {
	cfg, dc, _ := distConfig(t)
	co, err := NewCoordinator(cfg, dc)
	if err != nil {
		t.Fatal(err)
	}
	total := co.Total()
	block := total / len(co.Fingerprint().Kernels)
	workers := []string{"a", "b"}
	first := map[string]int{}   // first block each worker was steered to
	foreign := map[string]int{} // leases outside the worker's own block
	granted := true
	for granted {
		granted = false
		for _, name := range workers {
			reply, err := co.Acquire(name, co.Digest(), 0)
			if err != nil {
				t.Fatal(err)
			}
			if reply.Status != LeaseGranted {
				continue
			}
			granted = true
			sp := reply.Span
			if sp.Lo/block != (sp.Hi-1)/block {
				t.Fatalf("lease [%d,%d) straddles kernel blocks of %d", sp.Lo, sp.Hi, block)
			}
			b := sp.Lo / block
			if home, seen := first[name]; !seen {
				first[name] = b
			} else if b != home {
				foreign[name]++
			}
		}
	}
	if first["a"] == first["b"] {
		t.Errorf("both workers steered to kernel block %d; want them spread across blocks", first["a"])
	}
	// A worker may steal from a foreign block only once its own is dry —
	// with same-size blocks and alternating acquires that is at most the
	// trailing remainder lease.
	for name, n := range foreign {
		if n > 1 {
			t.Errorf("worker %s leased %d spans outside its home block; affinity is not sticky", name, n)
		}
	}
}

// TestDrainWorkers covers the standalone coordinator's shutdown grace:
// DrainWorkers must block while a worker that held leases has not yet
// observed completion, time out on its behalf if it never polls (the
// crashed-worker bound), and return promptly once every known worker
// has seen LeaseDone or a done==total commit ack.
func TestDrainWorkers(t *testing.T) {
	cfg, dc, _ := distConfig(t)
	co, err := NewCoordinator(cfg, dc)
	if err != nil {
		t.Fatal(err)
	}
	// Three workers: the one landing the final commit learns of
	// completion from its ack, the next in rotation from its LeaseDone
	// acquire; the third is a straggler that has not polled since.
	drainCampaign(t, co, cfg, "a", "b", "c")
	waiting := func() []string {
		co.mu.Lock()
		defer co.mu.Unlock()
		var names []string
		for name, w := range co.workers {
			if !w.sawDone {
				names = append(names, name)
			}
		}
		return names
	}
	stragglers := waiting()
	if len(stragglers) != 1 {
		t.Fatalf("after completion %d workers have not seen done (%v), want exactly 1", len(stragglers), stragglers)
	}
	start := time.Now()
	co.DrainWorkers(50 * time.Millisecond)
	if el := time.Since(start); el < 50*time.Millisecond {
		t.Fatalf("DrainWorkers returned after %v with straggler %s outstanding; want the full timeout", el, stragglers[0])
	}
	reply, err := co.Acquire(stragglers[0], co.Digest(), 0)
	if err != nil || reply.Status != LeaseDone {
		t.Fatalf("straggler acquire = %+v, %v; want LeaseDone", reply, err)
	}
	if rest := waiting(); len(rest) != 0 {
		t.Fatalf("workers %v still unseen after every worker polled", rest)
	}
	done := make(chan struct{})
	go func() { co.DrainWorkers(time.Minute); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("DrainWorkers did not return promptly with no stragglers outstanding")
	}
}

// TestLeaseExpiryReissue covers the worker-death path: an uncommitted
// lease expires, its span is re-issued to another worker, the dead
// worker's late commit is refused (*LeaseExpiredError) before the
// re-issue lands and acked as a duplicate after.
func TestLeaseExpiryReissue(t *testing.T) {
	cfg, dc, now := distConfig(t)
	co, err := NewCoordinator(cfg, dc)
	if err != nil {
		t.Fatal(err)
	}
	lease, err := co.Acquire("dead", co.Digest(), 0)
	if err != nil || lease.Status != LeaseGranted {
		t.Fatalf("acquire: %v (status %v)", err, lease.Status)
	}

	rcfg, err := lease.FP.Config()
	if err != nil {
		t.Fatal(err)
	}
	rcfg.Workers = 1
	runner, err := NewSpanRunner(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	records, _, err := runner.Run(lease.Span)
	if err != nil {
		t.Fatal(err)
	}
	sub := &SpanSubmit{Worker: "dead", Digest: co.Digest(), LeaseID: lease.LeaseID, Span: lease.Span, Records: records}

	// The worker "dies": its TTL passes before it commits.
	*now = now.Add(dc.LeaseTTL + time.Second)
	reissued, err := co.Acquire("live", co.Digest(), 0)
	if err != nil || reissued.Status != LeaseGranted {
		t.Fatalf("re-acquire: %v (status %v)", err, reissued.Status)
	}
	if reissued.Span.Lo != lease.Span.Lo {
		t.Fatalf("expected the expired span [%d,%d) re-issued first, got [%d,%d)",
			lease.Span.Lo, lease.Span.Hi, reissued.Span.Lo, reissued.Span.Hi)
	}

	// Late commit from the dead worker, span not yet covered: refused.
	var lee *LeaseExpiredError
	if _, err := co.Commit(sub); !errors.As(err, &lee) {
		t.Fatalf("late commit of re-issued span: got %v, want *LeaseExpiredError", err)
	}

	// The live worker commits the re-issued lease.
	if _, err := co.Commit(&SpanSubmit{
		Worker: "live", Digest: co.Digest(), LeaseID: reissued.LeaseID, Span: reissued.Span, Records: records,
	}); err != nil {
		t.Fatalf("re-issued commit: %v", err)
	}

	// Now the dead worker's copy is a duplicate: dropped with an ack.
	ack, err := co.Commit(sub)
	if err != nil {
		t.Fatalf("duplicate commit: %v", err)
	}
	if !ack.Duplicate {
		t.Fatal("covered span not acked as duplicate")
	}

	if s := co.Summary(); !strings.Contains(s, "1 expired") || !strings.Contains(s, "1 reissued") || !strings.Contains(s, "1 duplicate") {
		t.Fatalf("summary does not account the lifecycle: %s", s)
	}
}

// TestCommitRejections is the table test for span commits the
// coordinator must refuse outright.
func TestCommitRejections(t *testing.T) {
	cfg, dc, _ := distConfig(t)
	co, err := NewCoordinator(cfg, dc)
	if err != nil {
		t.Fatal(err)
	}
	lease, err := co.Acquire("w", co.Digest(), 0)
	if err != nil {
		t.Fatal(err)
	}
	n := lease.Span.Hi - lease.Span.Lo
	records := make([]dataset.Record, n)

	t.Run("stale fingerprint acquire", func(t *testing.T) {
		var sfe *StaleFingerprintError
		if _, err := co.Acquire("w", "deadbeef", 0); !errors.As(err, &sfe) {
			t.Fatalf("got %v, want *StaleFingerprintError", err)
		}
	})
	t.Run("stale fingerprint commit", func(t *testing.T) {
		var sfe *StaleFingerprintError
		_, err := co.Commit(&SpanSubmit{Worker: "w", Digest: "deadbeef", LeaseID: lease.LeaseID, Span: lease.Span, Records: records})
		if !errors.As(err, &sfe) {
			t.Fatalf("got %v, want *StaleFingerprintError", err)
		}
	})
	t.Run("unknown lease over uncovered span", func(t *testing.T) {
		var lee *LeaseExpiredError
		_, err := co.Commit(&SpanSubmit{Worker: "w", Digest: co.Digest(), LeaseID: 999, Span: lease.Span, Records: records})
		if !errors.As(err, &lee) {
			t.Fatalf("got %v, want *LeaseExpiredError", err)
		}
	})
	t.Run("record count mismatch", func(t *testing.T) {
		_, err := co.Commit(&SpanSubmit{Worker: "w", Digest: co.Digest(), LeaseID: lease.LeaseID, Span: lease.Span, Records: records[:n-1]})
		if err == nil {
			t.Fatal("short record set accepted")
		}
	})
	t.Run("span outside plan", func(t *testing.T) {
		_, err := co.Commit(&SpanSubmit{Worker: "w", Digest: co.Digest(), LeaseID: lease.LeaseID,
			Span: Span{Lo: 0, Hi: co.Total() + 1}, Records: make([]dataset.Record, co.Total()+1)})
		if err == nil {
			t.Fatal("out-of-plan span accepted")
		}
	})
}

// TestCoordinatorResume kills a distributed campaign mid-merge (cancel)
// and finishes it with a fresh coordinator resuming from the checkpoint;
// the final dataset must be byte-identical to a direct run.
func TestCoordinatorResume(t *testing.T) {
	cfg, dc, _ := distConfig(t)
	cfg.CheckpointPath = filepath.Join(t.TempDir(), "dist.ck")
	cfg.CheckpointEvery = 8

	want, err := Run(stripCheckpoint(cfg))
	if err != nil {
		t.Fatal(err)
	}
	wantCSV := csvBytes(t, want)

	// Phase 1: merge a prefix, then cancel.
	co, err := NewCoordinator(cfg, dc)
	if err != nil {
		t.Fatal(err)
	}
	rcfg, err := co.Fingerprint().Config()
	if err != nil {
		t.Fatal(err)
	}
	rcfg.Workers = 1
	runner, err := NewSpanRunner(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	committed := 0
	for committed < co.Total()/2 {
		reply, err := co.Acquire("a", co.Digest(), 0)
		if err != nil || reply.Status != LeaseGranted {
			t.Fatalf("acquire: %v (status %v)", err, reply.Status)
		}
		records, _, err := runner.Run(reply.Span)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := co.Commit(&SpanSubmit{
			Worker: "a", Digest: co.Digest(), LeaseID: reply.LeaseID, Span: reply.Span, Records: records,
		}); err != nil {
			t.Fatal(err)
		}
		committed += reply.Span.Hi - reply.Span.Lo
	}
	cancel := make(chan struct{})
	close(cancel)
	if err := co.WaitDone(cancel); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled WaitDone: got %v, want ErrCanceled", err)
	}

	// Phase 2: a new coordinator resumes and only the rest is leased.
	cfg.Resume = true
	co2, err := NewCoordinator(cfg, dc)
	if err != nil {
		t.Fatal(err)
	}
	if done, total := co2.Progress(); done != committed || total != co.Total() {
		t.Fatalf("resumed coordinator restored %d/%d, want %d/%d", done, total, committed, co.Total())
	}
	drainCampaign(t, co2, cfg, "b")
	if err := co2.WaitDone(nil); err != nil {
		t.Fatal(err)
	}
	ds, st, err := co2.Result()
	if err != nil {
		t.Fatal(err)
	}
	if st.Restored != committed {
		t.Errorf("stats report %d restored, want %d", st.Restored, committed)
	}
	if got := csvBytes(t, ds); !bytes.Equal(got, wantCSV) {
		t.Fatal("resumed distributed dataset differs from direct run")
	}
}

func stripCheckpoint(cfg Config) Config {
	cfg.CheckpointPath = ""
	cfg.CheckpointEvery = 0
	cfg.Resume = false
	return cfg
}

// TestSpanRunnerMatchesRun re-derives a run's records span by span
// through the worker-side path and compares every record.
func TestSpanRunnerMatchesRun(t *testing.T) {
	cfg := smallConfig()
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewSpanRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Total() != want.Len() {
		t.Fatalf("runner plan %d, run produced %d", r.Total(), want.Len())
	}
	var got []dataset.Record
	for lo := 0; lo < r.Total(); lo += 37 { // deliberately unaligned spans
		hi := lo + 37
		if hi > r.Total() {
			hi = r.Total()
		}
		records, _, err := r.Run(Span{Lo: lo, Hi: hi})
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, records...)
	}
	if !reflect.DeepEqual(got, want.Records) {
		t.Fatal("span-runner records differ from inject.Run")
	}
}

// TestFingerprintConfigRoundTrip: a worker must reconstruct the exact
// schedule from the coordinator's fingerprint.
func TestFingerprintConfigRoundTrip(t *testing.T) {
	cfg := smallConfig()
	fp, err := cfg.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	back, err := fp.Config()
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := back.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fp, fp2) {
		t.Fatalf("round trip changed the fingerprint:\nin  %+v\nout %+v", fp, fp2)
	}
	if fp.Digest() != fp2.Digest() {
		t.Fatal("round trip changed the digest")
	}

	bad := fp
	bad.TraceVersion = lockstep.TraceVersion + 1
	if _, err := bad.Config(); err == nil {
		t.Fatal("foreign trace version accepted")
	}
	bad = fp
	bad.Kernels = []string{"no-such-kernel"}
	if _, err := bad.Config(); err == nil {
		t.Fatal("unknown kernel accepted")
	}
	bad = fp
	bad.Kinds = []int{99}
	if _, err := bad.Config(); err == nil {
		t.Fatal("unknown fault kind accepted")
	}
}

// TestDigestMatchesLegacyJobID pins the digest to the exact derivation
// lockstep-serve has used for job IDs since PR 5 (hex of the first 8
// sha256 bytes of the fingerprint JSON), so old data directories keep
// resolving.
func TestDigestMatchesLegacyJobID(t *testing.T) {
	cfg := smallConfig()
	fp, err := cfg.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	d := fp.Digest()
	if len(d) != 16 {
		t.Fatalf("digest %q is not 16 hex chars", d)
	}
	for _, c := range d {
		if !strings.ContainsRune("0123456789abcdef", c) {
			t.Fatalf("digest %q is not lowercase hex", d)
		}
	}
	// Distinct schedules get distinct digests.
	cfg2 := cfg
	cfg2.Seed++
	fp2, err := cfg2.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp2.Digest() == d {
		t.Fatal("different seeds share a digest")
	}
}
