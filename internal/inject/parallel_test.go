package inject

import (
	"bytes"
	"sync/atomic"
	"testing"

	"lockstep/internal/dataset"
)

// invarianceConfig is a trimmed Small-scale campaign: the same three
// kernels the experiments.Small scale uses, strided so the serial +
// workers=4 double run stays fast under -race.
func invarianceConfig() Config {
	return Config{
		Kernels:               []string{"ttsprk", "rspeed", "matrix"},
		RunCycles:             8000,
		Intervals:             64,
		InjectionsPerFlopKind: 1,
		FlopStride:            24,
		Seed:                  1,
	}
}

// TestWorkerCountInvariance is the campaign's core determinism contract:
// a serial run and a workers=4 run of the same config produce
// byte-identical datasets, including after a CSV round-trip through
// internal/dataset. Run under -race this also exercises the shared-golden
// concurrency of the worker pool.
func TestWorkerCountInvariance(t *testing.T) {
	serial := invarianceConfig()
	serial.Workers = 1
	a, err := Run(serial)
	if err != nil {
		t.Fatal(err)
	}

	sharded := invarianceConfig()
	sharded.Workers = 4
	b, err := Run(sharded)
	if err != nil {
		t.Fatal(err)
	}

	if a.Len() != b.Len() {
		t.Fatalf("dataset lengths differ: serial=%d workers=4:%d", a.Len(), b.Len())
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs between worker counts:\nserial: %+v\nworkers=4: %+v",
				i, a.Records[i], b.Records[i])
		}
	}

	// Byte-identical on disk too: serialize both and compare, then round-trip
	// one through ReadCSV and re-serialize.
	var bufA, bufB bytes.Buffer
	if err := a.WriteCSV(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteCSV(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("CSV serializations differ between worker counts")
	}
	rt, err := dataset.ReadCSV(bytes.NewReader(bufB.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var bufRT bytes.Buffer
	if err := rt.WriteCSV(&bufRT); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufRT.Bytes()) {
		t.Fatal("CSV round-trip through dataset.ReadCSV not byte-identical")
	}
}

// TestPrunedMatchesUnpruned is the pruning determinism contract: a
// campaign with static fault-equivalence pruning enabled (the default)
// produces a dataset byte-identical to the -no-prune differential-oracle
// path, across different worker counts, while actually pruning (and
// oracle-sampling) a meaningful share of the plan. This is the campaign-
// level complement of lockstep's TestPruneSoundness: that test proves
// per-site predictions against the Replayer; this one proves the whole
// dataset pipeline — record rendering, telemetry ordering, progress and
// checkpoint bits included — is unchanged by the fast path.
func TestPrunedMatchesUnpruned(t *testing.T) {
	pruned := invarianceConfig()
	pruned.Kernels = []string{"ttsprk", "rspeed"}
	pruned.FlopStride = 36
	pruned.Workers = 4
	dsP, stP, err := RunStats(pruned)
	if err != nil {
		t.Fatal(err)
	}
	if stP.Pruned == 0 {
		t.Fatal("campaign with pruning enabled pruned nothing")
	}
	if stP.OracleChecked == 0 {
		t.Fatal("runtime differential oracle sampled no pruned sites")
	}

	unpruned := pruned
	unpruned.NoPrune = true
	unpruned.Workers = 2
	dsU, stU, err := RunStats(unpruned)
	if err != nil {
		t.Fatal(err)
	}
	if stU.Pruned != 0 || stU.OracleChecked != 0 {
		t.Fatalf("-no-prune run reports pruning stats: %+v", stU)
	}

	var bufP, bufU bytes.Buffer
	if err := dsP.WriteCSV(&bufP); err != nil {
		t.Fatal(err)
	}
	if err := dsU.WriteCSV(&bufU); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufP.Bytes(), bufU.Bytes()) {
		for i := range dsP.Records {
			if dsP.Records[i] != dsU.Records[i] {
				t.Fatalf("record %d differs:\npruned:   %+v\nunpruned: %+v",
					i, dsP.Records[i], dsU.Records[i])
			}
		}
		t.Fatal("CSV serializations differ between pruned and unpruned runs")
	}
}

// TestRunStatsReporting: throughput accounting is populated and consistent
// with the executed campaign.
func TestRunStatsReporting(t *testing.T) {
	cfg := invarianceConfig()
	cfg.Kernels = []string{"ttsprk"}
	cfg.FlopStride = 64
	cfg.Workers = 2
	ds, st, err := RunStats(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Experiments != ds.Len() {
		t.Fatalf("stats count %d != dataset length %d", st.Experiments, ds.Len())
	}
	if st.Workers != 2 {
		t.Fatalf("stats workers = %d, want 2", st.Workers)
	}
	if st.Elapsed <= 0 {
		t.Fatalf("non-positive elapsed %v", st.Elapsed)
	}
	if st.PerSec <= 0 {
		t.Fatalf("non-positive throughput %f", st.PerSec)
	}
	if s := st.String(); s == "" {
		t.Fatal("empty stats string")
	}
}

// TestProgressMonotonic: with a sharded campaign the Progress callback
// still announces the correct total on every call and sees done climb
// strictly 1..total even though experiments complete out of order across
// workers.
func TestProgressMonotonic(t *testing.T) {
	cfg := invarianceConfig()
	cfg.Kernels = []string{"rspeed"}
	cfg.FlopStride = 32
	cfg.Workers = 4
	want, err := cfg.Total()
	if err != nil {
		t.Fatal(err)
	}
	if want < 8 {
		t.Fatalf("campaign too small (%d) to exercise sharding", want)
	}

	var calls int32
	last := 0
	cfg.Progress = func(done, total int) {
		// Calls are documented as serialized; mutate without extra locking
		// so -race would flag a violation of that contract.
		atomic.AddInt32(&calls, 1)
		if total != want {
			t.Errorf("progress announced total %d, want %d", total, want)
		}
		if done != last+1 {
			t.Errorf("progress done jumped %d -> %d (must be strictly increasing by 1)", last, done)
		}
		last = done
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if int(calls) != want {
		t.Fatalf("progress fired %d times, want %d", calls, want)
	}
	if last != want {
		t.Fatalf("final done = %d, want total %d", last, want)
	}
}
