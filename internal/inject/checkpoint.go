// Campaign checkpointing: the crash-safety layer of the injection
// campaign. A checkpoint is a small, versioned, CRC-sealed text file
// holding the campaign's config fingerprint plus the completed plan-index
// spans and their records. It is written atomically (temp file + rename in
// the target directory) so a reader — including a resuming campaign —
// always sees either the previous checkpoint or the new one, never a torn
// file, even if the process is SIGKILLed mid-write.
//
// Resume contract: a campaign resumed from a checkpoint re-executes
// exactly the plan indices the checkpoint does not cover and restores the
// covered records verbatim, so the final dataset is byte-identical to an
// uninterrupted run at any worker count. A checkpoint that fails
// validation (corrupt, truncated, wrong version, or written by a campaign
// with a different schedule-relevant config) refuses to resume with a
// typed error; it never silently restarts from zero.
package inject

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"

	"lockstep/internal/dataset"
	"lockstep/internal/lockstep"
)

// checkpointMagic is the first line of every checkpoint file; the trailing
// integer is the format version.
const checkpointMagic = "lockstep-checkpoint v1"

// CheckpointError reports a checkpoint file that cannot be trusted:
// corrupt, truncated, or from an unknown format version. Resume refuses on
// it rather than restarting silently.
type CheckpointError struct {
	Reason string
}

func (e *CheckpointError) Error() string {
	return "inject: bad checkpoint: " + e.Reason
}

func badCheckpoint(format string, args ...any) error {
	return &CheckpointError{Reason: fmt.Sprintf(format, args...)}
}

// ConfigMismatchError reports a resume attempt whose campaign config
// disagrees with the checkpoint's recorded fingerprint. Field names the
// first differing schedule-relevant field.
type ConfigMismatchError struct {
	Field      string
	Checkpoint string // the checkpoint's value, rendered
	Config     string // the resuming config's value, rendered
}

func (e *ConfigMismatchError) Error() string {
	return fmt.Sprintf("inject: resume config mismatch: %s differs (checkpoint %s, config %s); rerun with the original campaign config or start a fresh campaign without -resume",
		e.Field, e.Checkpoint, e.Config)
}

// Fingerprint pins every Config field that influences the experiment
// schedule or outcomes. Worker count, progress callbacks and the
// checkpoint knobs themselves are deliberately absent: they change only
// wall-clock behaviour, so a campaign may be resumed with a different
// worker pool. Field names double as the identifiers ConfigMismatchError
// reports.
type Fingerprint struct {
	Kernels               []string `json:"kernels"`
	RunCycles             int      `json:"run_cycles"`
	Intervals             int      `json:"intervals"`
	InjectionsPerFlopKind int      `json:"injections_per_flop_kind"`
	FlopStride            int      `json:"flop_stride"`
	Kinds                 []int    `json:"kinds"`
	StopLatency           int      `json:"stop_latency"` // effective checker window
	Seed                  int64    `json:"seed"`
	Legacy                bool     `json:"legacy"`
	// NoPrune is schedule-relevant even though datasets are byte-identical
	// either way: a checkpoint taken with pruning enabled holds rows the
	// static analysis proved, so resuming it under -no-prune (or vice
	// versa) must be an explicit decision, not a silent mix of the oracle
	// path and the pruned path within one dataset.
	NoPrune bool `json:"no_prune"`
	// TraceVersion pins the golden-trace layout + pruning-analysis
	// generation (lockstep.TraceVersion) the campaign ran under. Old
	// checkpoints decode it as 0 and refuse to resume on a newer build.
	TraceVersion int `json:"trace_version"`
	// Mode is the canonical lockstep.Mode spelling ("slip:N", "tmr"),
	// empty for DCLS: pre-mode checkpoints decode as "", so they resume
	// under dcls configs exactly as before, and dcls digests — the
	// lockstep-serve job IDs — are unchanged by the mode axis. A
	// cross-mode resume or lease is refused with
	// ConfigMismatchError{Field: "Mode"}.
	Mode string `json:"mode,omitempty"`
}

// fingerprint derives the schedule fingerprint of a normalized config.
func (c Config) fingerprint() Fingerprint {
	kinds := make([]int, len(c.Kinds))
	for i, k := range c.Kinds {
		kinds[i] = int(k)
	}
	window := c.StopLatency
	if window <= 0 {
		window = lockstep.StopLatency
	}
	mode := ""
	if c.Mode != (lockstep.Mode{}) {
		mode = c.Mode.String()
	}
	return Fingerprint{
		Kernels:               append([]string(nil), c.Kernels...),
		RunCycles:             c.RunCycles,
		Intervals:             c.Intervals,
		InjectionsPerFlopKind: c.InjectionsPerFlopKind,
		FlopStride:            c.FlopStride,
		Kinds:                 kinds,
		StopLatency:           window,
		Seed:                  c.Seed,
		Legacy:                c.Legacy,
		NoPrune:               c.NoPrune,
		TraceVersion:          lockstep.TraceVersion,
		Mode:                  mode,
	}
}

// Digest returns the fingerprint's compact campaign identity: the hex of
// the first 8 bytes of the SHA-256 of its canonical JSON encoding. It is
// the job ID lockstep-serve keys campaigns by, and the credential every
// distributed lease/span message carries — a worker that cannot produce
// the digest cannot have the same schedule, so its records are refused.
func (f Fingerprint) Digest() string {
	data, err := json.Marshal(f)
	if err != nil {
		// Fingerprint is a plain struct of strings/ints/bools; Marshal
		// cannot fail on it.
		panic(err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}

// diff returns the name and both renderings of the first field differing
// between two fingerprints, or ok=true when they match. Fields are walked
// by reflection so a future Fingerprint field cannot be forgotten here.
func (f Fingerprint) diff(other Fingerprint) (field, a, b string, ok bool) {
	va, vb := reflect.ValueOf(f), reflect.ValueOf(other)
	t := va.Type()
	for i := 0; i < t.NumField(); i++ {
		fa, fb := va.Field(i).Interface(), vb.Field(i).Interface()
		if !reflect.DeepEqual(fa, fb) {
			return t.Field(i).Name, fmt.Sprintf("%v", fa), fmt.Sprintf("%v", fb), false
		}
	}
	return "", "", "", true
}

// Span is a half-open [Lo, Hi) range of completed plan indices.
type Span struct {
	Lo, Hi int
}

// Checkpoint is the in-memory form of a campaign checkpoint file.
type Checkpoint struct {
	FP    Fingerprint
	Total int    // length of the campaign plan
	Done  []Span // sorted, disjoint completed plan-index spans
	// Records holds the record of every completed experiment, concatenated
	// in ascending plan-index order (i.e. span by span).
	Records []dataset.Record
}

// DoneCount returns the number of completed experiments the checkpoint
// covers.
func (c *Checkpoint) DoneCount() int {
	n := 0
	for _, s := range c.Done {
		n += s.Hi - s.Lo
	}
	return n
}

// Validate checks the checkpoint against a campaign's config and plan
// size, returning *ConfigMismatchError naming the first differing
// schedule-relevant field (or a *CheckpointError on a plan-length
// mismatch). It is what Resume enforces; exported so servers can refuse
// a conflicting campaign submission before any work is scheduled.
func (c *Checkpoint) Validate(cfg Config, planLen int) error {
	if err := cfg.normalize(); err != nil {
		return err
	}
	return c.validate(cfg, planLen)
}

// validate checks the checkpoint against the resuming campaign's
// normalized config and plan size.
func (c *Checkpoint) validate(cfg Config, planLen int) error {
	if field, ckv, cfv, ok := c.FP.diff(cfg.fingerprint()); !ok {
		return &ConfigMismatchError{Field: field, Checkpoint: ckv, Config: cfv}
	}
	if c.Total != planLen {
		return badCheckpoint("plan length %d does not match campaign plan %d", c.Total, planLen)
	}
	return nil
}

// Encode renders the checkpoint in its on-disk format:
//
//	lockstep-checkpoint v1
//	config <fingerprint JSON>
//	total <plan length>
//	done <lo>-<hi> <lo>-<hi> ...
//	records <count>
//	<count dataset CSV rows>
//	crc <IEEE CRC-32 of everything above, hex>
func (c *Checkpoint) Encode(w io.Writer) error {
	var buf bytes.Buffer
	fp, err := json.Marshal(c.FP)
	if err != nil {
		return err
	}
	fmt.Fprintf(&buf, "%s\nconfig %s\ntotal %d\ndone", checkpointMagic, fp, c.Total)
	for _, s := range c.Done {
		fmt.Fprintf(&buf, " %d-%d", s.Lo, s.Hi)
	}
	fmt.Fprintf(&buf, "\nrecords %d\n", len(c.Records))
	for _, r := range c.Records {
		buf.WriteString(r.MarshalCSV())
		buf.WriteByte('\n')
	}
	writeCRCSeal(&buf)
	_, err = w.Write(buf.Bytes())
	return err
}

// writeCRCSeal appends the "crc %08x\n" line sealing buf's current
// contents.
func writeCRCSeal(buf *bytes.Buffer) {
	fmt.Fprintf(buf, "crc %08x\n", crc32.ChecksumIEEE(buf.Bytes()))
}

// DecodeCheckpoint parses and verifies a checkpoint. Every failure —
// wrong magic or version, truncation, CRC mismatch, malformed or
// inconsistent contents — returns a *CheckpointError.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, badCheckpoint("read: %v", err)
	}
	// Split off and verify the CRC seal first: it vouches for everything
	// above it, so truncated or bit-flipped files fail before parsing.
	body, ok := cutCRCSeal(data)
	if !ok {
		return nil, badCheckpoint("missing or corrupt CRC seal (truncated file?)")
	}

	lines := strings.Split(string(body), "\n")
	// body ends with the newline before the crc line, so the final split
	// element is empty.
	if len(lines) < 6 || lines[len(lines)-1] != "" {
		return nil, badCheckpoint("too short")
	}
	lines = lines[:len(lines)-1]
	if lines[0] != checkpointMagic {
		if strings.HasPrefix(lines[0], "lockstep-checkpoint v") {
			return nil, badCheckpoint("unsupported version %q (this build reads %q)", lines[0], checkpointMagic)
		}
		return nil, badCheckpoint("not a checkpoint file")
	}

	ck := &Checkpoint{}
	cfgLine, ok := strings.CutPrefix(lines[1], "config ")
	if !ok {
		return nil, badCheckpoint("missing config line")
	}
	if err := json.Unmarshal([]byte(cfgLine), &ck.FP); err != nil {
		return nil, badCheckpoint("config fingerprint: %v", err)
	}
	totalLine, ok := strings.CutPrefix(lines[2], "total ")
	if !ok {
		return nil, badCheckpoint("missing total line")
	}
	if ck.Total, err = strconv.Atoi(totalLine); err != nil || ck.Total < 0 {
		return nil, badCheckpoint("bad total %q", totalLine)
	}
	doneLine, ok := strings.CutPrefix(lines[3], "done")
	if !ok {
		return nil, badCheckpoint("missing done line")
	}
	prev := 0
	for _, tok := range strings.Fields(doneLine) {
		lo, hi, ok := strings.Cut(tok, "-")
		if !ok {
			return nil, badCheckpoint("bad span %q", tok)
		}
		var s Span
		if s.Lo, err = strconv.Atoi(lo); err != nil {
			return nil, badCheckpoint("bad span %q", tok)
		}
		if s.Hi, err = strconv.Atoi(hi); err != nil {
			return nil, badCheckpoint("bad span %q", tok)
		}
		// Spans must be non-empty, in-range, sorted and disjoint; this also
		// bounds DoneCount by Total before any record is read.
		if s.Lo < prev || s.Lo >= s.Hi || s.Hi > ck.Total {
			return nil, badCheckpoint("span %q out of order or out of range (total %d)", tok, ck.Total)
		}
		prev = s.Hi
		ck.Done = append(ck.Done, s)
	}
	countLine, ok := strings.CutPrefix(lines[4], "records ")
	if !ok {
		return nil, badCheckpoint("missing records line")
	}
	count, err := strconv.Atoi(countLine)
	if err != nil || count != ck.DoneCount() {
		return nil, badCheckpoint("record count %q does not match %d completed plan indices", countLine, ck.DoneCount())
	}
	rows := lines[5:]
	if len(rows) != count {
		return nil, badCheckpoint("%d record rows, want %d", len(rows), count)
	}
	if count > 0 {
		ck.Records = make([]dataset.Record, 0, count)
	}
	for i, row := range rows {
		rec, err := dataset.ParseRecord(row)
		if err != nil {
			return nil, badCheckpoint("record %d: %v", i, err)
		}
		ck.Records = append(ck.Records, rec)
	}
	return ck, nil
}

// cutCRCSeal verifies the trailing "crc %08x\n" line against the bytes
// before it and returns those bytes.
func cutCRCSeal(data []byte) ([]byte, bool) {
	const sealLen = len("crc 00000000\n")
	if len(data) < sealLen || data[len(data)-1] != '\n' {
		return nil, false
	}
	body, seal := data[:len(data)-sealLen], data[len(data)-sealLen:]
	hex, ok := strings.CutPrefix(strings.TrimSuffix(string(seal), "\n"), "crc ")
	if !ok {
		return nil, false
	}
	want, err := strconv.ParseUint(hex, 16, 32)
	if err != nil {
		return nil, false
	}
	if crc32.ChecksumIEEE(body) != uint32(want) {
		return nil, false
	}
	return body, true
}

// ReadCheckpoint loads and verifies a checkpoint file.
func ReadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ck, err := DecodeCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ck, nil
}

// WriteCheckpoint atomically persists a checkpoint: the file is written
// and fsynced under a temporary name in the destination directory and
// renamed over path, so a concurrent reader (or a resume after a crash at
// any instant) sees a complete old or complete new checkpoint.
func WriteCheckpoint(path string, ck *Checkpoint) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := ck.Encode(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
