package inject

import (
	"bytes"
	"testing"

	"lockstep/internal/telemetry"
)

// TestLegacyOracleDatasetIdentical is the campaign-level differential
// test: the same config run on the golden-trace replay path and on the
// legacy dual-CPU oracle (Config.Legacy) must produce byte-identical
// datasets — every record and the CSV serialization. Together with
// TestWorkerCountInvariance this pins the replay optimization to the
// pre-existing semantics at any worker count.
func TestLegacyOracleDatasetIdentical(t *testing.T) {
	replay := invarianceConfig()
	replay.Kernels = []string{"ttsprk", "rspeed"}
	replay.Workers = 4
	a, err := Run(replay)
	if err != nil {
		t.Fatal(err)
	}

	legacy := replay
	legacy.Legacy = true
	b, err := Run(legacy)
	if err != nil {
		t.Fatal(err)
	}

	if a.Len() != b.Len() {
		t.Fatalf("dataset lengths differ: replay=%d legacy=%d", a.Len(), b.Len())
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs between paths:\nreplay: %+v\nlegacy: %+v",
				i, a.Records[i], b.Records[i])
		}
	}
	var bufA, bufB bytes.Buffer
	if err := a.WriteCSV(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteCSV(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("CSV serializations differ between replay and legacy paths")
	}
}

// replayTelemetry reads the trace footprint gauge and the replay/pruning
// counters from the default registry (counters are process-global and
// monotone, so tests measure deltas).
func replayTelemetry() (traceBytes, restores, pruned, oracle int64, haveGauge bool) {
	snap := telemetry.Default.Snapshot()
	for _, g := range snap.Gauges {
		if g.Name == "inject.golden_trace_bytes" {
			traceBytes, haveGauge = g.Value, true
		}
	}
	for _, c := range snap.Counters {
		switch c.Name {
		case "inject.replay_restores":
			restores = c.Value
		case "inject.pruned":
			pruned = c.Value
		case "inject.pruned_oracle_checked":
			oracle = c.Value
		}
	}
	return traceBytes, restores, pruned, oracle, haveGauge
}

// TestReplayTelemetry: a replay campaign publishes the golden-trace
// memory footprint gauge, bumps the restore counter at least once per
// simulated experiment (each repositions its worker's replay image), and
// accounts every statically-pruned site and oracle re-simulation in the
// inject.pruned / inject.pruned_oracle_checked counters.
func TestReplayTelemetry(t *testing.T) {
	_, restoresBefore, prunedBefore, oracleBefore, _ := replayTelemetry()
	cfg := smallConfig()
	ds, st, err := RunStats(cfg)
	if err != nil {
		t.Fatal(err)
	}
	traceBytes, restoresAfter, prunedAfter, oracleAfter, haveGauge := replayTelemetry()
	if !haveGauge {
		t.Fatal("inject.golden_trace_bytes gauge not published")
	}
	if traceBytes <= 0 {
		t.Fatalf("inject.golden_trace_bytes = %d, want > 0", traceBytes)
	}
	simulated := ds.Len() - st.Pruned
	if got := restoresAfter - restoresBefore; got < int64(simulated) {
		t.Fatalf("inject.replay_restores grew by %d over %d simulated experiments", got, simulated)
	}
	if st.Pruned <= 0 {
		t.Fatalf("Stats.Pruned = %d, want > 0 on a default-config campaign", st.Pruned)
	}
	if got := prunedAfter - prunedBefore; got != int64(st.Pruned) {
		t.Fatalf("inject.pruned grew by %d, Stats.Pruned = %d", got, st.Pruned)
	}
	if got := oracleAfter - oracleBefore; got != int64(st.OracleChecked) {
		t.Fatalf("inject.pruned_oracle_checked grew by %d, Stats.OracleChecked = %d", got, st.OracleChecked)
	}
}
