// Distributed campaign execution: span leases and byte-identical merge.
//
// A campaign's plan is a fixed, seed-determined list of experiments, and
// every record depends only on its plan entry and the kernel's golden run
// — never on which machine executed it. That is the whole soundness
// argument for distribution: a Coordinator owns the plan-index space and
// hands out half-open [Lo, Hi) span *leases* to worker nodes; each worker
// reconstructs the identical plan and goldens from the campaign's
// schedule Fingerprint, executes its leased indices through the same
// pruned-replay path inject.Run uses (SpanRunner), and streams the
// completed records back. The coordinator merges records at their plan
// index, so the final dataset is byte-identical to a single-machine run
// at any worker count and any lease size.
//
// Failure handling is lease expiry + re-issue: a lease not committed
// before its deadline returns to the free pool and is granted to the next
// worker that asks. Commits are idempotent by construction — a span is
// only committed once; a late commit for an already-covered span is
// recognized as a duplicate and dropped, and a late commit for a span
// that has been re-issued but not yet re-committed is refused with a
// typed *LeaseExpiredError (the re-issued lease's holder will produce the
// byte-identical records). Every lease and commit is authenticated by the
// campaign's fingerprint digest, so a worker pointed at the wrong
// coordinator (or built against a different trace version) is refused
// with a *StaleFingerprintError before it can touch the dataset.
//
// The coordinator reuses the campaign checkpoint machinery verbatim:
// merged spans persist in the same atomic CRC-sealed checkpoint file, so
// a coordinator crash resumes mid-campaign and only the uncovered indices
// are re-leased.
package inject

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lockstep/internal/dataset"
	"lockstep/internal/lockstep"
	"lockstep/internal/telemetry"
	"lockstep/internal/workload"
)

// maxLeaseSpan bounds one lease (and therefore one span submission) in
// plan indices. It caps what a hostile or corrupt wire message can make
// either side allocate.
const maxLeaseSpan = 1 << 20

// StaleFingerprintError reports a lease or span message whose schedule
// digest does not match the coordinator's campaign — a worker joined to
// the wrong coordinator, or built against an incompatible trace version.
type StaleFingerprintError struct {
	Got, Want string
}

func (e *StaleFingerprintError) Error() string {
	return fmt.Sprintf("inject: stale campaign fingerprint: digest %q does not match this campaign (%s); the worker is joined to a different campaign or built against a different trace version", e.Got, e.Want)
}

// LeaseExpiredError reports a span commit under a lease the coordinator
// no longer holds, where the span is not already covered: the lease
// expired and was re-issued to another worker. The records are discarded
// (the re-issued lease will produce byte-identical ones).
type LeaseExpiredError struct {
	ID   uint64
	Sp   Span
}

func (e *LeaseExpiredError) Error() string {
	return fmt.Sprintf("inject: lease %d over span [%d,%d) expired and was re-issued; span discarded", e.ID, e.Sp.Lo, e.Sp.Hi)
}

// LeaseStatus is the coordinator's answer to a lease request.
type LeaseStatus int

const (
	// LeaseGranted carries a span lease to execute.
	LeaseGranted LeaseStatus = 1
	// LeaseWait means every remaining index is leased out; retry later.
	LeaseWait LeaseStatus = 2
	// LeaseDone means the campaign is complete; the worker can exit.
	LeaseDone LeaseStatus = 3
)

func (s LeaseStatus) String() string {
	switch s {
	case LeaseGranted:
		return "granted"
	case LeaseWait:
		return "wait"
	case LeaseDone:
		return "done"
	}
	return fmt.Sprintf("LeaseStatus(%d)", int(s))
}

// DistConfig sizes the coordinator's lease policy.
type DistConfig struct {
	// LeaseSize is the default span length in plan indices (0 = 512).
	// Workers may ask for less or more; grants are clamped to the kernel
	// block containing the span so one lease never straddles two goldens.
	LeaseSize int
	// LeaseTTL is how long a worker holds an uncommitted lease before it
	// is re-issued (0 = 30s). Pick it well above a span's execution time:
	// an expired-but-alive worker's commit is discarded and redone.
	LeaseTTL time.Duration

	// now overrides the clock in tests.
	now func() time.Time
}

func (dc *DistConfig) normalize() {
	if dc.LeaseSize <= 0 {
		dc.LeaseSize = 512
	}
	if dc.LeaseSize > maxLeaseSpan {
		dc.LeaseSize = maxLeaseSpan
	}
	if dc.LeaseTTL <= 0 {
		dc.LeaseTTL = 30 * time.Second
	}
	if dc.now == nil {
		dc.now = time.Now
	}
}

// leaseState is one outstanding lease.
type leaseState struct {
	id       uint64
	sp       Span
	worker   string
	deadline time.Time
	reissued bool // the span had been leased before (expiry path)
}

// freeSpan is an unleased, uncovered plan-index range.
type freeSpan struct {
	Span
	reissued bool
}

// distWorker is the coordinator's per-worker bookkeeping: the kernel
// block the worker last executed in (lease affinity keeps a worker inside
// one golden as long as that block has work, so worker nodes build as few
// goldens as possible) and its throughput accounting.
type distWorker struct {
	block       int // kernel-block index of the last lease; -1 before any
	experiments int64
	busyUS      int64
	sawDone     bool // worker has observed campaign completion
	perSec      *telemetry.Gauge
}

// Coordinator owns one distributed campaign: the plan-index space, the
// lease table, the merged records and the checkpoint. It never builds
// goldens or simulates — coordination is cheap enough to run anywhere,
// including on a node that is also serving predictions.
//
// All methods are safe for concurrent use by HTTP handlers.
type Coordinator struct {
	cfg    Config
	fp     Fingerprint
	digest string
	total  int
	dc     DistConfig
	// kernelBlock is the plan-index length of one kernel's contiguous
	// block (the plan is kernel-major with equal-sized blocks).
	kernelBlock int
	start       time.Time

	mu       sync.Mutex
	records  []dataset.Record
	done     []atomic.Bool
	doneN    int
	restored int
	free     []freeSpan
	leases   map[uint64]*leaseState
	nextID   uint64
	workers  map[string]*distWorker
	closed   bool

	issued, expired, reissued int64
	merged, duplicates        int64
	pruned, oracleChecked     int64

	ckp      *checkpointer
	ckWrites int

	completeOnce sync.Once
	completeCh   chan struct{}

	telIssued, telExpired, telReissued *telemetry.Counter
	telMerged, telDup                  *telemetry.Counter
}

// NewCoordinator builds the coordinator for cfg. With cfg.CheckpointPath
// set the merged spans are checkpointed exactly like a local campaign;
// with cfg.Resume the existing checkpoint is restored (refusing corrupt
// files and config mismatches with the same typed errors as inject.Run)
// and only the uncovered plan indices are leased out.
func NewCoordinator(cfg Config, dc DistConfig) (*Coordinator, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	dc.normalize()
	total, err := cfg.Total()
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:         cfg,
		fp:          cfg.fingerprint(),
		total:       total,
		dc:          dc,
		kernelBlock: total / len(cfg.Kernels),
		start:       dc.now(),
		records:     make([]dataset.Record, total),
		done:        make([]atomic.Bool, total),
		leases:      map[uint64]*leaseState{},
		workers:     map[string]*distWorker{},
		completeCh:  make(chan struct{}),
		telIssued:   telemetry.Default.Counter("inject.leases_issued"),
		telExpired:  telemetry.Default.Counter("inject.leases_expired"),
		telReissued: telemetry.Default.Counter("inject.leases_reissued"),
		telMerged:   telemetry.Default.Counter("inject.spans_merged"),
		telDup:      telemetry.Default.Counter("inject.span_duplicates"),
	}
	c.digest = c.fp.Digest()
	if cfg.Resume {
		ck, err := ReadCheckpoint(cfg.CheckpointPath)
		if err != nil {
			return nil, err
		}
		if err := ck.Validate(cfg, total); err != nil {
			return nil, err
		}
		ri := 0
		for _, sp := range ck.Done {
			for i := sp.Lo; i < sp.Hi; i++ {
				c.records[i] = ck.Records[ri]
				ri++
				c.done[i].Store(true)
			}
		}
		c.doneN = ck.DoneCount()
		c.restored = c.doneN
		telemetry.Default.Gauge("inject.experiments_restored").Set(int64(c.restored))
	}
	// The free list is the complement of the restored spans, in order.
	lo := 0
	for i := 0; i <= total; i++ {
		if i == total || c.done[i].Load() {
			if lo < i {
				c.free = append(c.free, freeSpan{Span: Span{Lo: lo, Hi: i}})
			}
			lo = i + 1
		}
	}
	if cfg.CheckpointPath != "" {
		c.ckp = startCheckpointer(cfg, c.records, c.done)
	}
	if c.doneN == total {
		c.completeOnce.Do(func() { close(c.completeCh) })
	}
	return c, nil
}

// Digest returns the campaign's schedule-fingerprint digest — the
// identity every lease and span message must carry (and the campaign's
// job ID in lockstep-serve).
func (c *Coordinator) Digest() string { return c.digest }

// Fingerprint returns the campaign's schedule fingerprint; a worker
// reconstructs the identical Config (and therefore plan and goldens)
// from it.
func (c *Coordinator) Fingerprint() Fingerprint { return c.fp }

// Total returns the campaign plan length.
func (c *Coordinator) Total() int { return c.total }

// Progress returns merged (restored included) and total experiment
// counts.
func (c *Coordinator) Progress() (done, total int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.doneN, c.total
}

// blockOf maps a plan index onto its kernel-block index.
func (c *Coordinator) blockOf(idx int) int {
	if c.kernelBlock <= 0 {
		return 0
	}
	return idx / c.kernelBlock
}

// blockEnd returns the plan index ending the kernel block containing idx.
func (c *Coordinator) blockEnd(idx int) int {
	if c.kernelBlock <= 0 {
		return c.total
	}
	end := (idx/c.kernelBlock + 1) * c.kernelBlock
	if end > c.total {
		end = c.total
	}
	return end
}

// expire returns every overdue lease's span to the free pool (marked for
// re-issue). Expiry is lazy — checked whenever a worker asks for work —
// so no background timer is needed: a dead worker's span is re-issued
// exactly when a live worker could use it.
func (c *Coordinator) expire(now time.Time) {
	for id, ls := range c.leases {
		if now.Before(ls.deadline) {
			continue
		}
		delete(c.leases, id)
		c.insertFree(freeSpan{Span: ls.sp, reissued: true})
		c.expired++
		c.telExpired.Inc()
	}
}

// insertFree puts sp back into the sorted free list.
func (c *Coordinator) insertFree(sp freeSpan) {
	at := len(c.free)
	for i, f := range c.free {
		if sp.Lo < f.Lo {
			at = i
			break
		}
	}
	c.free = append(c.free, freeSpan{})
	copy(c.free[at+1:], c.free[at:])
	c.free[at] = sp
}

// pickFree chooses where the worker's next lease is cut from: the
// worker's current kernel block if it still has free work (so the
// worker keeps reusing the golden it already built), else the block
// with the fewest active leases that still has free work (spreading
// workers across kernels so a cluster builds each golden as few times
// as possible), lowest block index on ties. Free spans may straddle
// block boundaries, so the pick is a (free index, cut plan index) pair;
// Acquire carves the lease out of the span starting at the cut.
func (c *Coordinator) pickFree(w *distWorker) (int, int) {
	if len(c.free) == 0 {
		return -1, 0
	}
	firstIn := map[int]int{} // block -> first intersecting free index
	cutAt := map[int]int{}   // block -> plan index to cut at
	for i, f := range c.free {
		for b := c.blockOf(f.Lo); b <= c.blockOf(f.Hi-1); b++ {
			if _, ok := firstIn[b]; ok {
				continue
			}
			firstIn[b] = i
			lo := f.Lo
			if bs := b * c.kernelBlock; lo < bs {
				lo = bs
			}
			cutAt[b] = lo
		}
	}
	if w.block >= 0 {
		if i, ok := firstIn[w.block]; ok {
			return i, cutAt[w.block]
		}
	}
	active := map[int]int{}
	for _, ls := range c.leases {
		active[c.blockOf(ls.sp.Lo)]++
	}
	best, bestLoad := -1, -1
	for b := range firstIn {
		if best == -1 || active[b] < bestLoad || (active[b] == bestLoad && b < best) {
			best, bestLoad = b, active[b]
		}
	}
	return firstIn[best], cutAt[best]
}

// Acquire answers one worker's lease request. digest must match the
// campaign (see StaleFingerprintError); want is the preferred span
// length (0 = the coordinator's default). The reply is ready for the
// wire: it carries the fingerprint, progress, and — when granted — the
// lease ID, span and TTL.
func (c *Coordinator) Acquire(worker, digest string, want int) (*LeaseReply, error) {
	if digest != c.digest {
		return nil, &StaleFingerprintError{Got: digest, Want: c.digest}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	reply := &LeaseReply{FP: c.fp, Total: c.total, Done: c.doneN}
	if c.closed && c.doneN < c.total {
		return nil, fmt.Errorf("inject: coordinator is shutting down")
	}
	if c.doneN == c.total {
		if w := c.workers[worker]; w != nil {
			w.sawDone = true
		}
		reply.Status = LeaseDone
		return reply, nil
	}
	c.expire(c.dc.now())
	w := c.workers[worker]
	if w == nil {
		w = &distWorker{
			block:  -1,
			perSec: telemetry.Default.Gauge("inject.worker_per_sec", telemetry.L("worker", worker)),
		}
		c.workers[worker] = w
	}
	i, lo := c.pickFree(w)
	if i < 0 {
		reply.Status = LeaseWait
		// All spans are leased out (or restored): the wait ends either by
		// another worker finishing the campaign or by a lease expiring, so
		// poll well under the TTL and never so slowly that a near-done
		// campaign keeps an idle worker stalled.
		reply.Retry = c.dc.LeaseTTL / 4
		if reply.Retry < 50*time.Millisecond {
			reply.Retry = 50 * time.Millisecond
		}
		if reply.Retry > 250*time.Millisecond {
			reply.Retry = 250 * time.Millisecond
		}
		return reply, nil
	}
	f := c.free[i]
	size := want
	if size <= 0 {
		size = c.dc.LeaseSize
	}
	if size > maxLeaseSpan {
		size = maxLeaseSpan
	}
	hi := lo + size
	if end := c.blockEnd(lo); hi > end {
		hi = end
	}
	if hi > f.Hi {
		hi = f.Hi
	}
	sp := Span{Lo: lo, Hi: hi}
	switch {
	case lo == f.Lo && hi == f.Hi:
		c.free = append(c.free[:i], c.free[i+1:]...)
	case lo == f.Lo:
		c.free[i].Lo = hi
	case hi == f.Hi:
		c.free[i].Hi = lo
	default:
		// Cut from the middle of a straddling span: keep the head in
		// place, give the tail its own free entry.
		c.free[i].Hi = lo
		c.insertFree(freeSpan{Span: Span{Lo: hi, Hi: f.Hi}, reissued: f.reissued})
	}
	c.nextID++
	ls := &leaseState{
		id:       c.nextID,
		sp:       sp,
		worker:   worker,
		deadline: c.dc.now().Add(c.dc.LeaseTTL),
		reissued: f.reissued,
	}
	c.leases[ls.id] = ls
	w.block = c.blockOf(sp.Lo)
	c.issued++
	c.telIssued.Inc()
	if f.reissued {
		c.reissued++
		c.telReissued.Inc()
	}
	reply.Status = LeaseGranted
	reply.LeaseID = ls.id
	reply.Span = sp
	reply.TTL = c.dc.LeaseTTL
	return reply, nil
}

// Commit merges one completed span. It is idempotent: a span whose
// indices are all already covered is acknowledged as a duplicate and
// dropped; a commit under an expired-and-re-issued lease whose span is
// not yet covered is refused with *LeaseExpiredError. A successful
// commit writes the records at their plan indices — canonical plan
// order by construction — and feeds the checkpointer.
func (c *Coordinator) Commit(sub *SpanSubmit) (*SpanReply, error) {
	if sub.Digest != c.digest {
		return nil, &StaleFingerprintError{Got: sub.Digest, Want: c.digest}
	}
	sp := sub.Span
	if sp.Lo < 0 || sp.Lo >= sp.Hi || sp.Hi > c.total {
		return nil, fmt.Errorf("inject: span [%d,%d) outside plan of %d", sp.Lo, sp.Hi, c.total)
	}
	if len(sub.Records) != sp.Hi-sp.Lo {
		return nil, fmt.Errorf("inject: span [%d,%d) carries %d records, want %d", sp.Lo, sp.Hi, len(sub.Records), sp.Hi-sp.Lo)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	reply := &SpanReply{Total: c.total}
	ls := c.leases[sub.LeaseID]
	if ls == nil || ls.sp != sp {
		covered := true
		for i := sp.Lo; i < sp.Hi; i++ {
			if !c.done[i].Load() {
				covered = false
				break
			}
		}
		reply.Done = c.doneN
		if covered {
			reply.Duplicate = true
			c.duplicates++
			c.telDup.Inc()
			if w := c.workers[sub.Worker]; w != nil && c.doneN == c.total {
				w.sawDone = true
			}
			return reply, nil
		}
		return nil, &LeaseExpiredError{ID: sub.LeaseID, Sp: sp}
	}
	if c.closed {
		return nil, fmt.Errorf("inject: coordinator is shutting down")
	}
	delete(c.leases, sub.LeaseID)
	for i := sp.Lo; i < sp.Hi; i++ {
		c.records[i] = sub.Records[i-sp.Lo]
		c.done[i].Store(true)
		if c.ckp != nil {
			c.ckp.completed()
		}
	}
	n := sp.Hi - sp.Lo
	c.doneN += n
	c.merged++
	c.telMerged.Inc()
	c.pruned += int64(sub.Pruned)
	c.oracleChecked += int64(sub.OracleChecked)
	if sub.Pruned > 0 {
		telemetry.Default.Counter("inject.pruned").Add(int64(sub.Pruned))
	}
	if sub.OracleChecked > 0 {
		telemetry.Default.Counter("inject.pruned_oracle_checked").Add(int64(sub.OracleChecked))
	}
	if w := c.workers[sub.Worker]; w != nil {
		w.experiments += int64(n)
		w.busyUS += sub.BusyUS
		if w.busyUS > 0 {
			w.perSec.Set(w.experiments * 1_000_000 / w.busyUS)
		}
	}
	reply.Done = c.doneN
	if c.doneN == c.total {
		if w := c.workers[sub.Worker]; w != nil {
			w.sawDone = true
		}
		c.completeOnce.Do(func() { close(c.completeCh) })
	}
	return reply, nil
}

// DrainWorkers blocks until every worker that ever held a lease has
// observed campaign completion — a LeaseDone acquire reply, or a commit
// ack showing done == total — or until timeout. The standalone
// coordinator calls this before closing its listener so that workers
// which did not land the final commit pick up LeaseDone on their next
// poll and exit cleanly, instead of dying on connection-refused against
// a vanished coordinator. A worker that crashed never polls again;
// timeout is what bounds the wait on its behalf.
func (c *Coordinator) DrainWorkers(timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		waiting := 0
		for _, w := range c.workers {
			if !w.sawDone {
				waiting++
			}
		}
		c.mu.Unlock()
		if waiting == 0 || !time.Now().Before(deadline) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Done reports campaign completion without blocking.
func (c *Coordinator) Done() bool {
	select {
	case <-c.completeCh:
		return true
	default:
		return false
	}
}

// WaitDone blocks until every span is merged or cancel fires. Either way
// the final checkpoint is written (covering everything merged so far), so
// a canceled or crashed coordinator resumes mid-campaign; cancellation
// returns ErrCanceled, mirroring inject.RunStats.
func (c *Coordinator) WaitDone(cancel <-chan struct{}) error {
	canceled := false
	select {
	case <-c.completeCh:
	case <-cancel:
		canceled = true
	}
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	if c.ckp != nil {
		n, err := c.ckp.stop()
		c.ckWrites = n
		c.ckp = nil
		if err != nil {
			return fmt.Errorf("inject: checkpoint: %w", err)
		}
	}
	if canceled {
		return ErrCanceled
	}
	return nil
}

// Result returns the merged dataset and the campaign stats once every
// span is committed.
func (c *Coordinator) Result() (*dataset.Dataset, Stats, error) {
	if !c.Done() {
		done, total := c.Progress()
		return nil, c.Stats(), fmt.Errorf("inject: campaign incomplete (%d/%d experiments merged)", done, total)
	}
	st := c.Stats()
	for i := range c.records {
		if c.records[i].Failed {
			st.Failures++
		}
	}
	return &dataset.Dataset{Records: c.records}, st, nil
}

// Stats reports the distributed campaign the same way RunStats does:
// Experiments counts merged records (restored included), PerSec is
// merge throughput over the coordinator's wall clock.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Experiments:   c.doneN,
		Restored:      c.restored,
		Pruned:        int(c.pruned),
		OracleChecked: int(c.oracleChecked),
		Checkpoints:   c.ckWrites,
		Workers:       len(c.workers),
		Elapsed:       c.dc.now().Sub(c.start),
	}
	if secs := st.Elapsed.Seconds(); secs > 0 {
		st.PerSec = float64(st.Executed()) / secs
	}
	return st
}

// Summary renders the lease-lifecycle counters one-line, for CLI
// summaries and tests.
func (c *Coordinator) Summary() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fmt.Sprintf("leases: %d issued, %d expired, %d reissued; spans: %d merged, %d duplicate; workers: %d",
		c.issued, c.expired, c.reissued, c.merged, c.duplicates, len(c.workers))
}

// Config reconstructs the runnable campaign Config a Fingerprint pins.
// The round trip is exact — cfg.fingerprint() of the result equals f —
// which is what lets a worker node rebuild the identical plan, goldens
// and pruning analysis from the coordinator's fingerprint alone. A
// fingerprint from a build with a different golden-trace/pruning
// generation is refused: its goldens would not be comparable.
func (f Fingerprint) Config() (Config, error) {
	if f.TraceVersion != lockstep.TraceVersion {
		return Config{}, fmt.Errorf("inject: campaign ran trace version %d, this build has %d; use matching builds on every node", f.TraceVersion, lockstep.TraceVersion)
	}
	kinds := make([]lockstep.FaultKind, len(f.Kinds))
	for i, k := range f.Kinds {
		if k < 0 || lockstep.FaultKind(k) >= lockstep.NumFaultKinds {
			return Config{}, fmt.Errorf("inject: fingerprint names unknown fault kind %d", k)
		}
		kinds[i] = lockstep.FaultKind(k)
	}
	for _, name := range f.Kernels {
		if workload.ByName(name) == nil {
			return Config{}, fmt.Errorf("inject: fingerprint names unknown kernel %q", name)
		}
	}
	mode, err := lockstep.ParseMode(f.Mode)
	if err != nil {
		return Config{}, fmt.Errorf("inject: fingerprint mode: %w", err)
	}
	return Config{
		Kernels:               append([]string(nil), f.Kernels...),
		RunCycles:             f.RunCycles,
		Intervals:             f.Intervals,
		InjectionsPerFlopKind: f.InjectionsPerFlopKind,
		FlopStride:            f.FlopStride,
		Kinds:                 kinds,
		StopLatency:           f.StopLatency,
		Seed:                  f.Seed,
		Legacy:                f.Legacy,
		NoPrune:               f.NoPrune,
		Mode:                  mode,
	}, nil
}

// SpanStats reports how one leased span executed.
type SpanStats struct {
	Pruned        int // outcomes proved statically, recorded without simulating
	OracleChecked int // pruned sites re-simulated by the differential oracle
	Failures      int // experiments recorded as Failed by the containment layer
}

// SpanRunner is the worker-node side of a distributed campaign: the plan
// reconstructed from the coordinator's fingerprint, lazily built goldens,
// and per-executor replay scratch reused across spans. One runner serves
// one campaign; Run is not safe for concurrent use (a worker node runs
// its leased spans serially and parallelizes inside the span).
type SpanRunner struct {
	cfg       Config
	plan      []Experiment
	window    int
	snapEvery int
	goldens   map[string]*lockstep.Golden
	execs     []*worker
	tel       *campaignTelemetry
}

// NewSpanRunner builds the runner for cfg. Config.Workers sets the
// in-span parallelism; everything schedule-relevant must come from the
// coordinator's fingerprint (Fingerprint.Config) or the records will not
// be accepted.
func NewSpanRunner(cfg Config) (*SpanRunner, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	plan, err := cfg.Plan()
	if err != nil {
		return nil, err
	}
	window := cfg.StopLatency
	if window <= 0 {
		window = lockstep.StopLatency
	}
	snapEvery := cfg.RunCycles / 16
	if snapEvery < 1 {
		snapEvery = 1
	}
	r := &SpanRunner{
		cfg:       cfg,
		plan:      plan,
		window:    window,
		snapEvery: snapEvery,
		goldens:   map[string]*lockstep.Golden{},
		execs:     make([]*worker, cfg.Workers),
		tel:       newCampaignTelemetry(cfg),
	}
	return r, nil
}

// Total returns the plan length (must equal the coordinator's).
func (r *SpanRunner) Total() int { return len(r.plan) }

// Digest returns the runner's schedule digest, for join-time auth.
func (r *SpanRunner) Digest() string { return r.cfg.fingerprint().Digest() }

// golden returns (building on first use) the kernel's golden run. Leases
// are cut at kernel-block boundaries and granted with block affinity, so
// a worker typically builds one golden and reuses it across many spans.
func (r *SpanRunner) golden(name string) (*lockstep.Golden, error) {
	if g := r.goldens[name]; g != nil {
		return g, nil
	}
	g, err := lockstep.NewGolden(workload.ByName(name), r.cfg.RunCycles, r.snapEvery)
	if err != nil {
		return nil, err
	}
	r.goldens[name] = g
	var traceBytes int64
	for _, g := range r.goldens {
		traceBytes += g.TraceBytes()
	}
	telemetry.Default.Gauge("inject.golden_trace_bytes").Set(traceBytes)
	return g, nil
}

// Run executes plan indices [sp.Lo, sp.Hi) and returns their records in
// plan order. The records are byte-identical to what a single-machine
// inject.Run would put at those indices: the plan, pruning decisions,
// oracle sampling and record rendering all go through the same
// deterministic functions, keyed only by the campaign seed and the
// experiment coordinates.
func (r *SpanRunner) Run(sp Span) ([]dataset.Record, SpanStats, error) {
	var st SpanStats
	if sp.Lo < 0 || sp.Lo >= sp.Hi || sp.Hi > len(r.plan) {
		return nil, st, fmt.Errorf("inject: span [%d,%d) outside plan of %d", sp.Lo, sp.Hi, len(r.plan))
	}
	for i := sp.Lo; i < sp.Hi; i++ {
		if _, err := r.golden(r.plan[i].Kernel); err != nil {
			return nil, st, err
		}
	}
	records := make([]dataset.Record, sp.Hi-sp.Lo)

	// Static pruning + oracle sampling, exactly as in RunStats: the
	// decisions depend only on (seed, experiment, golden), so a span
	// resolves identically here and on a single machine.
	pending := make([]int, 0, sp.Hi-sp.Lo)
	var oracleExpect map[int]lockstep.Outcome
	if !r.cfg.NoPrune {
		oracleExpect = make(map[int]lockstep.Outcome)
		for i := sp.Lo; i < sp.Hi; i++ {
			e := r.plan[i]
			out, ok := r.goldens[e.Kernel].PruneMode(lockstep.Injection{Flop: e.Flop, Kind: e.Kind, Cycle: e.Cycle}, r.cfg.Mode)
			if !ok {
				pending = append(pending, i)
				continue
			}
			if oracleSampled(r.cfg.Seed, e) {
				oracleExpect[i] = out
				st.OracleChecked++
				pending = append(pending, i)
				continue
			}
			records[i-sp.Lo] = recordFor(e, out, r.cfg.Mode)
			r.tel.record(e, out)
			st.Pruned++
		}
	} else {
		for i := sp.Lo; i < sp.Hi; i++ {
			pending = append(pending, i)
		}
	}

	workers := r.cfg.Workers
	if workers > len(pending) {
		workers = len(pending)
	}
	if workers < 1 {
		workers = 1
	}
	abort := make(chan struct{})
	var oracleOnce sync.Once
	var oracleErr error
	next := make(chan int)
	var failures atomic.Int64
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		if r.execs[wi] == nil {
			r.execs[wi] = &worker{cfg: r.cfg, window: r.window}
		}
		w := r.execs[wi]
		w.goldens = r.goldens
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				e := r.plan[idx]
				out := w.run(e)
				if out.Failed {
					failures.Add(1)
				}
				if expect, ok := oracleExpect[idx]; ok && !out.Failed && out != expect {
					oracleOnce.Do(func() {
						oracleErr = fmt.Errorf(
							"inject: pruning oracle mismatch: %s %s at flop %d cycle %d predicted %+v, simulated %+v",
							e.Kernel, e.Kind, e.Flop, e.Cycle, expect, out)
						close(abort)
					})
				}
				records[idx-sp.Lo] = recordFor(e, out, r.cfg.Mode)
				r.tel.record(e, out)
			}
		}()
	}
feed:
	for _, idx := range pending {
		select {
		case next <- idx:
		case <-abort:
			break feed
		}
	}
	close(next)
	wg.Wait()
	st.Failures = int(failures.Load())
	if oracleErr != nil {
		return nil, st, oracleErr
	}
	return records, st, nil
}
