package inject

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"lockstep/internal/cpu"
	"lockstep/internal/dataset"
	"lockstep/internal/lockstep"
)

// wireFingerprint returns a real campaign fingerprint for reply tests.
func wireFingerprint(t testing.TB) Fingerprint {
	t.Helper()
	fp, err := smallConfig().Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

// wireRecords builds a plausible two-kernel record stream with every
// flag combination represented.
func wireRecords(n int) []dataset.Record {
	records := make([]dataset.Record, n)
	kernels := []string{"ttsprk", "puwmod"}
	for i := range records {
		flop := (i * 37) % cpu.NumFlops()
		records[i] = dataset.Record{
			Kernel:      kernels[i*len(kernels)/n],
			Flop:        flop,
			Unit:        cpu.FlopUnit(flop),
			Fine:        cpu.FlopFine(flop),
			Kind:        lockstep.FaultKind(i % int(lockstep.NumFaultKinds)),
			InjectCycle: 100 + i*13,
			Detected:    i%2 == 0,
			DetectCycle: 100 + i*13 + i%29,
			DSR:         uint64(i) * 0x9e3779b9,
			Converged:   i%3 == 0,
			Failed:      i%5 == 4,
		}
	}
	return records
}

func TestWireRoundTrips(t *testing.T) {
	fp := wireFingerprint(t)

	t.Run("LeaseRequest", func(t *testing.T) {
		for _, in := range []*LeaseRequest{
			{Worker: "node-a", Digest: fp.Digest(), Want: 512},
			{Worker: "", Digest: "", Want: 0},
		} {
			out, err := DecodeLeaseRequest(in.Encode())
			if err != nil {
				t.Fatalf("%+v: %v", in, err)
			}
			if !reflect.DeepEqual(in, out) {
				t.Fatalf("round trip changed the message:\nin  %+v\nout %+v", in, out)
			}
		}
	})

	t.Run("LeaseReply", func(t *testing.T) {
		for _, in := range []*LeaseReply{
			{Status: LeaseGranted, Total: 2835, Done: 512, FP: fp, LeaseID: 7,
				Span: Span{Lo: 512, Hi: 1024}, TTL: 30 * time.Second},
			{Status: LeaseWait, Total: 2835, Done: 2800, FP: fp, Retry: 250 * time.Millisecond},
			{Status: LeaseDone, Total: 2835, Done: 2835, FP: fp},
		} {
			data, err := in.Encode()
			if err != nil {
				t.Fatal(err)
			}
			out, err := DecodeLeaseReply(data)
			if err != nil {
				t.Fatalf("status %v: %v", in.Status, err)
			}
			if !reflect.DeepEqual(in, out) {
				t.Fatalf("round trip changed the message:\nin  %+v\nout %+v", in, out)
			}
		}
	})

	t.Run("SpanSubmit", func(t *testing.T) {
		records := wireRecords(64)
		in := &SpanSubmit{
			Worker: "node-b", Digest: fp.Digest(), LeaseID: 9,
			Span: Span{Lo: 100, Hi: 164}, BusyUS: 123456, Pruned: 12, OracleChecked: 3,
			Records: records,
		}
		out, err := DecodeSpanSubmit(in.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip changed the message:\nin  %+v\nout %+v", in, out)
		}
	})

	t.Run("SpanReply", func(t *testing.T) {
		for _, in := range []*SpanReply{
			{Duplicate: false, Done: 164, Total: 2835},
			{Duplicate: true, Done: 2835, Total: 2835},
		} {
			out, err := DecodeSpanReply(in.Encode())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(in, out) {
				t.Fatalf("round trip changed the message:\nin  %+v\nout %+v", in, out)
			}
		}
	})
}

// TestWireUnitRecompute: Unit/Fine never travel — the decoder re-derives
// them from the flop index, so a submission can't disagree with the
// coordinator's rendering.
func TestWireUnitRecompute(t *testing.T) {
	records := wireRecords(4)
	in := &SpanSubmit{Worker: "w", Digest: "d", Span: Span{Lo: 0, Hi: 4}, Records: records}
	data := in.Encode()
	// Lie about the unit columns on the sender side; the wire must not care.
	in.Records[0].Unit++
	in.Records[0].Fine++
	if !reflect.DeepEqual(in.Encode(), data) {
		t.Fatal("unit columns leaked into the encoding")
	}
	out, err := DecodeSpanSubmit(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Records[0].Unit != cpu.FlopUnit(out.Records[0].Flop) {
		t.Fatalf("decoded unit %v not recomputed from flop", out.Records[0].Unit)
	}
}

func TestWireRejects(t *testing.T) {
	fp := wireFingerprint(t)
	goodReq := (&LeaseRequest{Worker: "w", Digest: "d", Want: 1}).Encode()
	goodReply, err := (&LeaseReply{Status: LeaseDone, Total: 10, Done: 10, FP: fp}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	goodSubmit := (&SpanSubmit{Worker: "w", Digest: "d", Span: Span{Lo: 0, Hi: 2}, Records: wireRecords(2)}).Encode()

	mutate := func(b []byte, at int, v byte) []byte {
		out := append([]byte(nil), b...)
		out[at] = v
		return out
	}
	cases := []struct {
		name   string
		decode func([]byte) error
		data   []byte
	}{
		{"empty", func(b []byte) error { _, err := DecodeLeaseRequest(b); return err }, nil},
		{"bad magic", func(b []byte) error { _, err := DecodeLeaseRequest(b); return err }, mutate(goodReq, 0, 'X')},
		{"bad version", func(b []byte) error { _, err := DecodeLeaseRequest(b); return err }, mutate(goodReq, 4, 99)},
		{"wrong kind", func(b []byte) error { _, err := DecodeLeaseRequest(b); return err }, goodReply},
		{"trailing garbage", func(b []byte) error { _, err := DecodeLeaseRequest(b); return err }, append(append([]byte(nil), goodReq...), 0)},
		{"truncated reply", func(b []byte) error { _, err := DecodeLeaseReply(b); return err }, goodReply[:len(goodReply)-3]},
		{"bad lease status", func(b []byte) error { _, err := DecodeLeaseReply(b); return err }, mutate(goodReply, 6, 99)},
		{"truncated submit", func(b []byte) error { _, err := DecodeSpanSubmit(b); return err }, goodSubmit[:len(goodSubmit)-1]},
		{"reply done>total", func(b []byte) error { _, err := DecodeSpanReply(b); return err },
			(&SpanReply{Done: 11, Total: 10}).Encode()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.decode(tc.data)
			var we *WireError
			if !errors.As(err, &we) {
				t.Fatalf("got %v, want *WireError", err)
			}
		})
	}
}

// FuzzLeaseDecode drives arbitrary bytes through every wire decoder.
// The invariants under fuzz: no panic, no unbounded allocation, every
// rejection is a typed *WireError, and every accepted message survives
// an encode/decode round trip unchanged.
func FuzzLeaseDecode(f *testing.F) {
	fp := wireFingerprint(f)
	seedReply, err := (&LeaseReply{Status: LeaseGranted, Total: 100, Done: 10, FP: fp,
		LeaseID: 3, Span: Span{Lo: 10, Hi: 26}, TTL: 30 * time.Second}).Encode()
	if err != nil {
		f.Fatal(err)
	}
	seeds := [][]byte{
		(&LeaseRequest{Worker: "node", Digest: fp.Digest(), Want: 64}).Encode(),
		seedReply,
		(&SpanSubmit{Worker: "node", Digest: fp.Digest(), LeaseID: 3,
			Span: Span{Lo: 10, Hi: 26}, BusyUS: 1000, Records: wireRecords(16)}).Encode(),
		(&SpanReply{Duplicate: true, Done: 26, Total: 100}).Encode(),
	}
	for _, s := range seeds {
		f.Add(s)
		for _, cut := range []int{1, 5, len(s) / 2, len(s) - 1} {
			if cut > 0 && cut < len(s) {
				f.Add(s[:cut])
			}
		}
		for _, at := range []int{0, 4, 5, len(s) - 1} {
			m := append([]byte(nil), s...)
			m[at] ^= 0xff
			f.Add(m)
		}
	}

	checkErr := func(t *testing.T, what string, err error) {
		var we *WireError
		if err != nil && !errors.As(err, &we) {
			t.Fatalf("%s: rejection is %T (%v), want *WireError", what, err, err)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := DecodeLeaseRequest(data); err != nil {
			checkErr(t, "LeaseRequest", err)
		} else if m2, err := DecodeLeaseRequest(m.Encode()); err != nil || !reflect.DeepEqual(m, m2) {
			t.Fatalf("LeaseRequest round trip: %v\nin  %+v\nout %+v", err, m, m2)
		}
		if m, err := DecodeLeaseReply(data); err != nil {
			checkErr(t, "LeaseReply", err)
		} else {
			enc, err := m.Encode()
			if err != nil {
				t.Fatalf("LeaseReply re-encode: %v", err)
			}
			if m2, err := DecodeLeaseReply(enc); err != nil || !reflect.DeepEqual(m, m2) {
				t.Fatalf("LeaseReply round trip: %v\nin  %+v\nout %+v", err, m, m2)
			}
		}
		if m, err := DecodeSpanSubmit(data); err != nil {
			checkErr(t, "SpanSubmit", err)
		} else if m2, err := DecodeSpanSubmit(m.Encode()); err != nil || !reflect.DeepEqual(m, m2) {
			t.Fatalf("SpanSubmit round trip: %v\nin  %+v\nout %+v", err, m, m2)
		}
		if m, err := DecodeSpanReply(data); err != nil {
			checkErr(t, "SpanReply", err)
		} else if m2, err := DecodeSpanReply(m.Encode()); err != nil || !reflect.DeepEqual(m, m2) {
			t.Fatalf("SpanReply round trip: %v\nin  %+v\nout %+v", err, m, m2)
		}
	})
}
