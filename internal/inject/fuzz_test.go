package inject

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"lockstep/internal/dataset"
	"lockstep/internal/lockstep"
)

// FuzzReadCheckpoint hammers the checkpoint decoder with corrupted input:
// every rejection must be a typed *CheckpointError (so -resume refuses
// cleanly, never panics or silently restarts), and everything accepted
// must be internally consistent and survive an encode/decode round trip.
func FuzzReadCheckpoint(f *testing.F) {
	// Seed with a genuine checkpoint...
	cfg := ckConfig()
	if err := (&cfg).normalize(); err != nil {
		f.Fatal(err)
	}
	ck := &Checkpoint{
		FP:    cfg.fingerprint(),
		Total: 8,
		Done:  []Span{{0, 2}, {4, 5}},
		Records: []dataset.Record{
			{Kernel: "ttsprk", Flop: 1, Kind: lockstep.SoftFlip, InjectCycle: 7, Detected: true, DetectCycle: 9, DSR: 3},
			{Kernel: "ttsprk", Flop: 2, Kind: lockstep.Stuck0, InjectCycle: 8, Failed: true},
			{Kernel: "ttsprk", Flop: 3, Kind: lockstep.Stuck1, InjectCycle: 9, Converged: true},
		},
	}
	var buf bytes.Buffer
	if err := ck.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(append([]byte(nil), valid...))
	// ...truncations at every interesting boundary...
	for _, n := range []int{0, 1, len(checkpointMagic), len(valid) / 2, len(valid) - 1} {
		f.Add(append([]byte(nil), valid[:n]...))
	}
	// ...a flipped byte (CRC must catch it), a reforged seal over a
	// mutated body, and a wrong format version.
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x20
	f.Add(flipped)
	f.Add(reseal(bytes.Replace(valid, []byte("total 8"), []byte("total 2"), 1)))
	f.Add(reseal(bytes.Replace(valid, []byte("records 3"), []byte("records 9"), 1)))
	f.Add(reseal(bytes.Replace(valid, []byte("done 0-2 4-5"), []byte("done 4-5 0-2"), 1)))
	f.Add(reseal(bytes.Replace(valid, []byte("checkpoint v1"), []byte("checkpoint v9"), 1)))
	f.Add(reseal([]byte("lockstep-checkpoint v1\n")))
	f.Add([]byte("crc 00000000\n"))
	f.Add([]byte("garbage\ncrc deadbeef\n"))
	// ...and a mode-bearing checkpoint (slip fingerprint, 12-column
	// records) plus a reseal that corrupts its mode string, so the fuzzer
	// starts from both sides of the mode axis.
	slipCfg := ckConfig()
	slipCfg.Mode = lockstep.Mode{Kind: lockstep.ModeSlip, Slip: 9}
	if err := (&slipCfg).normalize(); err != nil {
		f.Fatal(err)
	}
	slipCk := &Checkpoint{
		FP:    slipCfg.fingerprint(),
		Total: 8,
		Done:  []Span{{0, 1}},
		Records: []dataset.Record{
			{Kernel: "ttsprk", Flop: 1, Kind: lockstep.SoftFlip, InjectCycle: 7,
				Detected: true, DetectCycle: 18, DSR: 3, Mode: slipCfg.Mode},
		},
	}
	var slipBuf bytes.Buffer
	if err := slipCk.Encode(&slipBuf); err != nil {
		f.Fatal(err)
	}
	slipValid := slipBuf.Bytes()
	f.Add(append([]byte(nil), slipValid...))
	f.Add(reseal(bytes.Replace(slipValid, []byte("slip:9"), []byte("slip:bogus"), 1)))
	f.Add(reseal(bytes.Replace(slipValid, []byte("slip:9"), []byte("tmr"), 1)))

	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := DecodeCheckpoint(bytes.NewReader(data))
		if err != nil {
			var ckErr *CheckpointError
			var cfgErr *ConfigMismatchError
			if !errors.As(err, &ckErr) && !errors.As(err, &cfgErr) {
				t.Fatalf("decoder returned an untyped error: %v", err)
			}
			if ck != nil {
				t.Fatal("non-nil checkpoint alongside error")
			}
			return
		}
		if ck.DoneCount() != len(ck.Records) {
			t.Fatalf("accepted checkpoint with %d records for %d completed indices",
				len(ck.Records), ck.DoneCount())
		}
		if ck.DoneCount() > ck.Total {
			t.Fatalf("accepted checkpoint covering %d of a %d-experiment plan",
				ck.DoneCount(), ck.Total)
		}
		// Accepted input must round-trip losslessly.
		var out bytes.Buffer
		if err := ck.Encode(&out); err != nil {
			t.Fatalf("re-encode of accepted checkpoint failed: %v", err)
		}
		rt, err := DecodeCheckpoint(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("round trip of accepted checkpoint failed: %v", err)
		}
		if !reflect.DeepEqual(normalizeCk(ck), normalizeCk(rt)) {
			t.Fatalf("round trip changed the checkpoint:\nin  %+v\nout %+v", ck, rt)
		}
	})
}

// reseal recomputes the CRC seal over a mutated body so the corruption
// reaches the structural validators instead of being absorbed by the CRC
// check.
func reseal(sealed []byte) []byte {
	body, ok := cutCRCSeal(sealed)
	if !ok {
		// Not a sealed file (already corrupt) — seal the whole thing.
		body = sealed
	}
	var buf bytes.Buffer
	buf.Write(body)
	writeCRCSeal(&buf)
	return buf.Bytes()
}

// normalizeCk maps nil and empty slices together for DeepEqual.
func normalizeCk(c *Checkpoint) Checkpoint {
	out := *c
	if len(out.Done) == 0 {
		out.Done = nil
	}
	if len(out.Records) == 0 {
		out.Records = nil
	}
	if len(out.FP.Kernels) == 0 {
		out.FP.Kernels = nil
	}
	if len(out.FP.Kinds) == 0 {
		out.FP.Kinds = nil
	}
	return out
}
