package inject

import (
	"testing"

	"lockstep/internal/cpu"
	"lockstep/internal/lockstep"
	"lockstep/internal/workload"
)

// TestPlanEnumeration drives Plan through its Config knobs, including the
// edge cases: stride larger than the flop count, an empty kernel list
// (full suite), a kind filter, and a single injection interval.
func TestPlanEnumeration(t *testing.T) {
	nf := cpu.NumFlops()
	suite := len(workload.Kernels())
	tests := []struct {
		name      string
		cfg       Config
		wantLen   int
		wantFlops []int // exact distinct flops, if non-nil
		wantKinds []lockstep.FaultKind
		wantKerns []string // exact kernel visit order, if non-nil
	}{
		{
			name: "stride exceeds flop count",
			cfg: Config{
				Kernels:    []string{"ttsprk"},
				FlopStride: nf + 1,
			},
			wantLen:   3, // one flop x three kinds x one injection
			wantFlops: []int{0},
		},
		{
			name:    "empty kernel list means full suite",
			cfg:     Config{FlopStride: nf}, // one flop per kernel to stay small
			wantLen: suite * 3,
		},
		{
			name: "kind filter",
			cfg: Config{
				Kernels:    []string{"ttsprk"},
				FlopStride: 64,
				Kinds:      []lockstep.FaultKind{lockstep.Stuck0},
			},
			wantLen:   (nf + 63) / 64,
			wantKinds: []lockstep.FaultKind{lockstep.Stuck0},
		},
		{
			name: "kernel filter preserves config order",
			cfg: Config{
				Kernels:    []string{"rspeed", "ttsprk"},
				FlopStride: nf,
			},
			wantLen:   2 * 3,
			wantKerns: []string{"rspeed", "ttsprk"},
		},
		{
			name: "single interval",
			cfg: Config{
				Kernels:               []string{"puwmod"},
				RunCycles:             500,
				Intervals:             1,
				InjectionsPerFlopKind: 3,
				FlopStride:            128,
			},
			wantLen: ((nf + 127) / 128) * 3 * 3,
		},
		{
			name: "injections exceed interval count wraps",
			cfg: Config{
				Kernels:               []string{"puwmod"},
				RunCycles:             800,
				Intervals:             2,
				InjectionsPerFlopKind: 5,
				FlopStride:            nf,
			},
			wantLen: 3 * 5,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			plan, err := tc.cfg.Plan()
			if err != nil {
				t.Fatal(err)
			}
			if len(plan) != tc.wantLen {
				t.Fatalf("plan has %d experiments, want %d", len(plan), tc.wantLen)
			}
			got, err := tc.cfg.Total()
			if err != nil {
				t.Fatal(err)
			}
			if got != len(plan) {
				t.Fatalf("Total()=%d but plan has %d experiments", got, len(plan))
			}
			cfg := tc.cfg
			if err := cfg.normalize(); err != nil {
				t.Fatal(err)
			}
			for i, e := range plan {
				if e.Cycle < 0 || e.Cycle >= cfg.RunCycles {
					t.Fatalf("experiment %d: cycle %d outside [0,%d)", i, e.Cycle, cfg.RunCycles)
				}
				if e.Flop%cfg.FlopStride != 0 {
					t.Fatalf("experiment %d: flop %d off the stride-%d grid", i, e.Flop, cfg.FlopStride)
				}
			}
			if tc.wantFlops != nil {
				seen := map[int]bool{}
				for _, e := range plan {
					seen[e.Flop] = true
				}
				if len(seen) != len(tc.wantFlops) {
					t.Fatalf("plan covers %d flops, want %d", len(seen), len(tc.wantFlops))
				}
				for _, f := range tc.wantFlops {
					if !seen[f] {
						t.Fatalf("flop %d missing from plan", f)
					}
				}
			}
			if tc.wantKinds != nil {
				for i, e := range plan {
					ok := false
					for _, k := range tc.wantKinds {
						if e.Kind == k {
							ok = true
						}
					}
					if !ok {
						t.Fatalf("experiment %d has filtered-out kind %v", i, e.Kind)
					}
				}
			}
			if tc.wantKerns != nil {
				var order []string
				for _, e := range plan {
					if len(order) == 0 || order[len(order)-1] != e.Kernel {
						order = append(order, e.Kernel)
					}
				}
				if len(order) != len(tc.wantKerns) {
					t.Fatalf("kernel visit order %v, want %v", order, tc.wantKerns)
				}
				for i := range order {
					if order[i] != tc.wantKerns[i] {
						t.Fatalf("kernel visit order %v, want %v", order, tc.wantKerns)
					}
				}
			}
		})
	}
}

// TestPlanIntervalAssignment: while a (kernel, flop, kind) group has fewer
// injections than intervals, each lands in a distinct interval (the
// paper's "distinct randomly chosen interval" sampling).
func TestPlanIntervalAssignment(t *testing.T) {
	cfg := Config{
		Kernels:               []string{"ttsprk"},
		RunCycles:             6400,
		Intervals:             8,
		InjectionsPerFlopKind: 8,
		FlopStride:            256,
	}
	plan, err := cfg.Plan()
	if err != nil {
		t.Fatal(err)
	}
	intervalLen := cfg.RunCycles / cfg.Intervals
	type group struct {
		flop int
		kind lockstep.FaultKind
	}
	used := map[group]map[int]bool{}
	for _, e := range plan {
		g := group{e.Flop, e.Kind}
		if used[g] == nil {
			used[g] = map[int]bool{}
		}
		iv := e.Cycle / intervalLen
		if used[g][iv] {
			t.Fatalf("group %+v: interval %d assigned twice", g, iv)
		}
		used[g][iv] = true
	}
	for g, ivs := range used {
		if len(ivs) != cfg.Intervals {
			t.Fatalf("group %+v: %d distinct intervals, want %d", g, len(ivs), cfg.Intervals)
		}
	}
}

// TestPlanDeterminism: the plan is a pure function of the campaign
// parameters — repeated enumeration and a different worker count give the
// identical schedule.
func TestPlanDeterminism(t *testing.T) {
	cfg := Config{Kernels: []string{"rspeed"}, FlopStride: 32, Seed: 42}
	a, err := cfg.Plan()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 7 // execution-only knob; must not alter the schedule
	b, err := cfg.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("plan lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("experiment %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestPlanUnknownKernel: enumeration surfaces config errors.
func TestPlanUnknownKernel(t *testing.T) {
	cfg := Config{Kernels: []string{"nosuch"}}
	if _, err := cfg.Plan(); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}
