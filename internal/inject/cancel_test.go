package inject

import (
	"bytes"
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"
)

// cancelConfig is a campaign small enough to finish fast but large
// enough that a mid-run cancel reliably leaves work behind.
func cancelConfig() Config {
	return Config{
		Kernels:               []string{"ttsprk"},
		RunCycles:             4000,
		Intervals:             64,
		InjectionsPerFlopKind: 1,
		FlopStride:            8,
		Seed:                  11,
	}
}

// TestCancelThenResumeIdenticalDataset is the graceful-drain contract
// lockstep-serve relies on: a campaign canceled mid-run returns
// ErrCanceled, persists a final checkpoint of everything it completed,
// and a Resume run finishes it with a dataset byte-identical to an
// uninterrupted run.
func TestCancelThenResumeIdenticalDataset(t *testing.T) {
	ref := cancelConfig()
	refDS, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := refDS.WriteCSV(&want); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "ck.lsc")
	cancel := make(chan struct{})
	var fired atomic.Bool
	cfg := cancelConfig()
	cfg.CheckpointPath = path
	cfg.CheckpointEvery = 8
	cfg.Workers = 2
	cfg.Progress = func(done, total int) {
		// Cancel a third of the way through, exactly once.
		if done >= total/3 && fired.CompareAndSwap(false, true) {
			close(cancel)
		}
	}
	cfg.Cancel = cancel

	ds, st, err := RunStats(cfg)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled campaign returned %v, want ErrCanceled", err)
	}
	if ds != nil {
		t.Fatal("canceled campaign returned a (partial) dataset")
	}
	if st.Experiments <= 0 || st.Experiments >= refDS.Len() {
		t.Fatalf("canceled campaign completed %d of %d experiments, want a strict mid-point", st.Experiments, refDS.Len())
	}

	// The final checkpoint must cover exactly the completed experiments.
	ck, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.DoneCount() != st.Experiments {
		t.Fatalf("checkpoint covers %d experiments, stats say %d completed", ck.DoneCount(), st.Experiments)
	}

	res := cancelConfig()
	res.CheckpointPath = path
	res.Resume = true
	resDS, resSt, err := RunStats(res)
	if err != nil {
		t.Fatal(err)
	}
	if resSt.Restored != st.Experiments {
		t.Fatalf("resume restored %d experiments, want %d", resSt.Restored, st.Experiments)
	}
	var got bytes.Buffer
	if err := resDS.WriteCSV(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("canceled+resumed dataset differs from uninterrupted run")
	}
}

// TestCancelBeforeStart: a cancel that fires before any experiment is
// dispatched still drains cleanly and leaves a resumable (empty)
// checkpoint behind.
func TestCancelBeforeStart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.lsc")
	cancel := make(chan struct{})
	close(cancel)
	cfg := cancelConfig()
	cfg.CheckpointPath = path
	cfg.Cancel = cancel

	_, st, err := RunStats(cfg)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	// Workers may have raced a handful of experiments in before the
	// cancel was observed; all of them must be in the checkpoint.
	ck, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.DoneCount() != st.Experiments {
		t.Fatalf("checkpoint covers %d, stats say %d", ck.DoneCount(), st.Experiments)
	}

	res := cancelConfig()
	res.CheckpointPath = path
	res.Resume = true
	ds, err := Run(res)
	if err != nil {
		t.Fatal(err)
	}
	if want, _ := res.Total(); ds.Len() != want {
		t.Fatalf("resumed dataset has %d records, want %d", ds.Len(), want)
	}
}

// TestConfigErrorShape pins the typed validation error both the CLI and
// the lockstep-serve API surface: the offending Config field is named
// machine-readably, and Error() embeds it.
func TestConfigErrorShape(t *testing.T) {
	cases := []struct {
		name  string
		mut   func(*Config)
		field string
	}{
		{"unknown kernel", func(c *Config) { c.Kernels = []string{"nosuch"} }, "Kernels"},
		{"resume without checkpoint", func(c *Config) { c.Resume = true }, "Resume"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := cancelConfig()
			tc.mut(&cfg)
			_, err := cfg.Total()
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("Total returned %v (%T), want *ConfigError", err, err)
			}
			if ce.Field != tc.field {
				t.Fatalf("ConfigError.Field = %q, want %q", ce.Field, tc.field)
			}
			if !bytes.Contains([]byte(ce.Error()), []byte(tc.field)) {
				t.Fatalf("ConfigError.Error() %q does not name the field", ce.Error())
			}
			if _, err := Run(cfg); !errors.As(err, &ce) {
				t.Fatalf("Run returned %v, want the same *ConfigError", err)
			}
		})
	}
}
