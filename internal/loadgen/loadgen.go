// Package loadgen generates deterministic prediction-request load for
// benchmarking a running lockstep-serve instance.
//
// A Control describes one load shape — client count, requests per
// client, batch size, hex/numeric encoding mix, known/unknown DSR mix,
// and an RNG seed. Request bodies are a pure function of (Control,
// client index): the same Control always produces byte-identical
// bodies, so recorded benchmark trajectories (BENCH_serve.json) compare
// like with like across commits, and a subprocess client re-derives its
// schedule from the Control alone without any body transfer.
//
// The package splits controller from client, lightstep-benchmarks
// style: Bodies builds a client's schedule, RunClient plays one
// schedule against a base URL and reports raw latencies, Run fans out
// in-process clients, and Aggregate folds client reports into
// nearest-rank percentiles and throughput.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Control is one benchmark run's load shape. The zero value is
// normalized to a minimal single-client, single-request probe.
type Control struct {
	// Clients is the number of concurrent clients (default 1).
	Clients int `json:"clients"`
	// Requests is how many requests each client issues (default 1).
	Requests int `json:"requests"`
	// Batch is the DSR count per request: 1 sends {"dsr":...}, larger
	// values send {"dsrs":[...]} (default 1).
	Batch int `json:"batch"`
	// HexProb is the probability a DSR is rendered as a hex string
	// rather than a JSON number, clamped to [0,1] (0 = all numeric).
	HexProb float64 `json:"hex_prob"`
	// KnownProb is the probability a DSR is drawn from Known — the
	// trained population served by the dense fast path — rather than
	// from Pool or the full uint64 space, clamped to [0,1] (0 = all
	// unknown when Known is empty anyway, or all Pool/random draws).
	KnownProb float64 `json:"known_prob"`
	// Seed roots every client's schedule; client i derives its own
	// stream from (Seed, i).
	Seed int64 `json:"seed"`
	// Known is the trained-DSR population (typically table.Dict sets).
	Known []uint64 `json:"known,omitempty"`
	// Pool optionally supplies the non-Known draws — e.g. DSR values
	// harvested from the fuzz seed corpus — instead of uniform random
	// uint64s.
	Pool []uint64 `json:"pool,omitempty"`
	// Path is the request path (default /v1/predict).
	Path string `json:"path,omitempty"`
	// TimeoutNS bounds one HTTP request in nanoseconds (default 10s).
	TimeoutNS int64 `json:"timeout_ns,omitempty"`
}

// normalized returns c with defaults applied and probabilities clamped.
func (c Control) normalized() Control {
	if c.Clients < 1 {
		c.Clients = 1
	}
	if c.Requests < 1 {
		c.Requests = 1
	}
	if c.Batch < 1 {
		c.Batch = 1
	}
	c.HexProb = clamp01(c.HexProb)
	c.KnownProb = clamp01(c.KnownProb)
	if c.Path == "" {
		c.Path = "/v1/predict"
	}
	if c.TimeoutNS <= 0 {
		c.TimeoutNS = int64(10 * time.Second)
	}
	return c
}

func clamp01(p float64) float64 {
	switch {
	case p < 0:
		return 0
	case p > 1:
		return 1
	}
	return p
}

// clientSeed mixes the control seed with the client index (SplitMix64
// increment) so clients draw from disjoint deterministic streams.
func (c Control) clientSeed(client int) int64 {
	return c.Seed ^ int64(uint64(client+1)*0x9e3779b97f4a7c15)
}

// Bodies returns client's full request schedule: Requests bodies of
// Batch DSRs each, every byte determined by (Control, client). Bodies
// are built up front so request generation never pollutes latency
// measurements.
func (c Control) Bodies(client int) [][]byte {
	c = c.normalized()
	rng := rand.New(rand.NewSource(c.clientSeed(client)))
	bodies := make([][]byte, c.Requests)
	var buf []byte
	for r := range bodies {
		buf = buf[:0]
		if c.Batch == 1 {
			buf = append(buf, `{"dsr":`...)
			buf = c.appendDSR(buf, rng)
			buf = append(buf, '}')
		} else {
			buf = append(buf, `{"dsrs":[`...)
			for i := 0; i < c.Batch; i++ {
				if i > 0 {
					buf = append(buf, ',')
				}
				buf = c.appendDSR(buf, rng)
			}
			buf = append(buf, `]}`...)
		}
		bodies[r] = append([]byte(nil), buf...)
	}
	return bodies
}

// appendDSR draws one DSR per the known/pool mix and renders it per the
// hex/numeric mix. Draw order is fixed (population first, then
// encoding) so the byte stream is reproducible.
func (c Control) appendDSR(dst []byte, rng *rand.Rand) []byte {
	var v uint64
	switch {
	case len(c.Known) > 0 && rng.Float64() < c.KnownProb:
		v = c.Known[rng.Intn(len(c.Known))]
	case len(c.Pool) > 0:
		v = c.Pool[rng.Intn(len(c.Pool))]
	default:
		v = rng.Uint64()
	}
	if rng.Float64() < c.HexProb {
		dst = append(dst, '"')
		dst = strconv.AppendUint(dst, v, 16)
		return append(dst, '"')
	}
	return strconv.AppendUint(dst, v, 10)
}

// ClientReport is one client's raw outcome: per-success latencies in
// issue order plus the failure count. JSON-serializable so subprocess
// clients can hand it back over stdout.
type ClientReport struct {
	Client      int     `json:"client"`
	LatenciesNS []int64 `json:"latencies_ns"`
	Failures    int     `json:"failures"`
}

// RunClient plays client's schedule against baseURL sequentially,
// timing each request. A non-200 answer or transport error counts as a
// failure; ctx cancellation aborts the remaining schedule and returns
// the report so far with the context error.
func RunClient(ctx context.Context, c Control, client int, baseURL string, hc *http.Client) (ClientReport, error) {
	c = c.normalized()
	rep := ClientReport{Client: client, LatenciesNS: make([]int64, 0, c.Requests)}
	url := strings.TrimSuffix(baseURL, "/") + c.Path
	for _, body := range c.Bodies(client) {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		start := time.Now()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return rep, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return rep, ctx.Err()
			}
			rep.Failures++
			continue
		}
		_, cerr := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if cerr != nil || resp.StatusCode != http.StatusOK {
			rep.Failures++
			continue
		}
		rep.LatenciesNS = append(rep.LatenciesNS, time.Since(start).Nanoseconds())
	}
	return rep, nil
}

// NewClient builds the http.Client a Run (or a subprocess client)
// should use: enough idle connections that every concurrent client
// keeps one warm, and the Control's per-request timeout.
func (c Control) NewClient() *http.Client {
	c = c.normalized()
	return &http.Client{
		Timeout: time.Duration(c.TimeoutNS),
		Transport: &http.Transport{
			MaxIdleConns:        2 * c.Clients,
			MaxIdleConnsPerHost: c.Clients,
		},
	}
}

// Run fans out c.Clients in-process clients against baseURL and folds
// their reports into a Summary. The wall clock spans first request to
// last response across all clients.
func Run(ctx context.Context, c Control, baseURL string) (Summary, []ClientReport, error) {
	c = c.normalized()
	hc := c.NewClient()
	defer hc.CloseIdleConnections()

	reports := make([]ClientReport, c.Clients)
	errs := make([]error, c.Clients)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < c.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = RunClient(ctx, c, i, baseURL, hc)
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return Summary{}, reports, err
		}
	}
	return Aggregate(reports, wall), reports, nil
}

// Summary is the aggregate of one load run, ready for BENCH_serve.json.
type Summary struct {
	Requests  int     `json:"requests"`
	Failures  int     `json:"failures"`
	WallNS    int64   `json:"wall_ns"`
	ReqPerSec float64 `json:"req_per_sec"`
	P50NS     int64   `json:"p50_ns"`
	P95NS     int64   `json:"p95_ns"`
	P99NS     int64   `json:"p99_ns"`
}

// Aggregate merges client reports: total counts, throughput over wall,
// and nearest-rank latency percentiles over all successful requests.
func Aggregate(reports []ClientReport, wall time.Duration) Summary {
	var all []int64
	s := Summary{WallNS: wall.Nanoseconds()}
	for _, r := range reports {
		all = append(all, r.LatenciesNS...)
		s.Failures += r.Failures
	}
	s.Requests = len(all) + s.Failures
	if wall > 0 {
		s.ReqPerSec = float64(len(all)) / wall.Seconds()
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	s.P50NS = Percentile(all, 50)
	s.P95NS = Percentile(all, 95)
	s.P99NS = Percentile(all, 99)
	return s
}

// Percentile returns the nearest-rank p-th percentile of sorted (0 when
// empty): the smallest value with at least p% of samples at or below
// it.
func Percentile(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted)) + 0.9999999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// CorpusDSRs harvests DSR values from a go-fuzz seed corpus directory
// (go test fuzz v1 files): each recorded request body is parsed with
// the predict endpoint's value semantics (hex string with optional
// 0x/0X prefix, or decimal number) and every value that parses as a
// uint64 joins the pool; malformed bodies and values are skipped. The
// result seeds a Control's Pool so benchmark traffic shares the
// fuzzer's value distribution. Order is deterministic (directory
// order, first occurrence) and duplicates are dropped.
func CorpusDSRs(dir string) ([]uint64, error) {
	files, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	seen := make(map[uint64]bool)
	var out []uint64
	add := func(raw json.RawMessage) {
		v, ok := parseDSRValue(raw)
		if ok && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, f := range files {
		raw, err := os.ReadFile(filepath.Join(dir, f.Name()))
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(raw), "\n") {
			line = strings.TrimSpace(line)
			const prefix = "[]byte("
			if !strings.HasPrefix(line, prefix) || !strings.HasSuffix(line, ")") {
				continue
			}
			body, err := strconv.Unquote(line[len(prefix) : len(line)-1])
			if err != nil {
				continue
			}
			var req struct {
				DSR  json.RawMessage   `json:"dsr"`
				DSRs []json.RawMessage `json:"dsrs"`
			}
			if json.Unmarshal([]byte(body), &req) != nil {
				continue
			}
			add(req.DSR)
			for _, v := range req.DSRs {
				add(v)
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("loadgen: no DSR values in corpus %s", dir)
	}
	return out, nil
}

// parseDSRValue interprets one JSON value the way /v1/predict does:
// a string is hex with an optional 0x/0X prefix, a bare number is
// decimal.
func parseDSRValue(raw json.RawMessage) (uint64, bool) {
	if len(raw) == 0 {
		return 0, false
	}
	if raw[0] == '"' {
		var s string
		if json.Unmarshal(raw, &s) != nil {
			return 0, false
		}
		s = strings.TrimPrefix(strings.TrimPrefix(s, "0x"), "0X")
		v, err := strconv.ParseUint(s, 16, 64)
		return v, err == nil
	}
	v, err := strconv.ParseUint(string(raw), 10, 64)
	return v, err == nil
}
