package loadgen

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func testControl() Control {
	return Control{
		Clients:   4,
		Requests:  25,
		Batch:     3,
		HexProb:   0.5,
		KnownProb: 0.5,
		Seed:      42,
		Known:     []uint64{1, 0x2a, 0xffffffffffffffff, 7},
	}
}

// TestBodiesDeterministic is the loadgen determinism contract: the same
// Control and seed must produce byte-identical request bodies, and
// changing the seed or the client index must not.
func TestBodiesDeterministic(t *testing.T) {
	c := testControl()
	a, b := c.Bodies(1), c.Bodies(1)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same Control and client produced different bodies")
	}
	c2 := testControl() // independent value, same fields
	if !reflect.DeepEqual(a, c2.Bodies(1)) {
		t.Fatal("equal Controls produced different bodies")
	}
	if reflect.DeepEqual(a, c.Bodies(2)) {
		t.Fatal("different clients produced identical bodies")
	}
	c.Seed++
	if reflect.DeepEqual(a, c.Bodies(1)) {
		t.Fatal("different seeds produced identical bodies")
	}
}

// TestBodiesShape checks the generated wire format: single-DSR requests
// use {"dsr":...}, batches use {"dsrs":[...]} with exactly Batch
// elements, every body is valid JSON, and the encoding/population mixes
// obey their probability knobs at the extremes.
func TestBodiesShape(t *testing.T) {
	type req struct {
		DSR  *json.RawMessage  `json:"dsr"`
		DSRs []json.RawMessage `json:"dsrs"`
	}

	c := testControl()
	for _, body := range c.Bodies(0) {
		var r req
		if err := json.Unmarshal(body, &r); err != nil {
			t.Fatalf("invalid body %q: %v", body, err)
		}
		if r.DSR != nil || len(r.DSRs) != c.Batch {
			t.Fatalf("body %q: want %d-element dsrs batch", body, c.Batch)
		}
	}

	single := c
	single.Batch = 1
	for _, body := range single.Bodies(0) {
		var r req
		if err := json.Unmarshal(body, &r); err != nil || r.DSR == nil || r.DSRs != nil {
			t.Fatalf("single body %q: want lone dsr field (%v)", body, err)
		}
	}

	allHexKnown := c
	allHexKnown.HexProb = 1
	allHexKnown.KnownProb = 1
	known := map[string]bool{`"1"`: true, `"2a"`: true, `"ffffffffffffffff"`: true, `"7"`: true}
	for _, body := range allHexKnown.Bodies(0) {
		var r req
		if err := json.Unmarshal(body, &r); err != nil {
			t.Fatal(err)
		}
		for _, v := range r.DSRs {
			if !known[string(v)] {
				t.Fatalf("HexProb=KnownProb=1 produced %s outside the known hex set", v)
			}
		}
	}

	numeric := c
	numeric.HexProb = 0
	for _, body := range numeric.Bodies(0) {
		var r req
		if err := json.Unmarshal(body, &r); err != nil {
			t.Fatal(err)
		}
		for _, v := range r.DSRs {
			if len(v) > 0 && v[0] == '"' {
				t.Fatalf("HexProb=0 produced string value %s", v)
			}
		}
	}
}

// TestNormalizedDefaults: the zero Control is a valid single-probe run.
func TestNormalizedDefaults(t *testing.T) {
	n := Control{}.normalized()
	if n.Clients != 1 || n.Requests != 1 || n.Batch != 1 || n.Path != "/v1/predict" ||
		n.TimeoutNS != int64(10*time.Second) {
		t.Fatalf("zero Control normalized to %+v", n)
	}
	if c := (Control{HexProb: -1, KnownProb: 7}).normalized(); c.HexProb != 0 || c.KnownProb != 1 {
		t.Fatalf("probabilities not clamped: %+v", c)
	}
	bodies := Control{}.Bodies(0)
	if len(bodies) != 1 {
		t.Fatalf("zero Control produced %d bodies", len(bodies))
	}
}

// TestRunAgainstStub drives the full in-process fan-out against an
// httptest stub and checks delivery: every scheduled body arrives
// exactly once (as a multiset — clients interleave), the Summary counts
// match, and percentiles are ordered.
func TestRunAgainstStub(t *testing.T) {
	var mu sync.Mutex
	got := map[string]int{}
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil || r.Method != http.MethodPost || r.URL.Path != "/v1/predict" {
			t.Errorf("bad request: %s %s (%v)", r.Method, r.URL.Path, err)
		}
		mu.Lock()
		got[string(body)]++
		mu.Unlock()
		w.Write([]byte(`{}`))
	}))
	defer stub.Close()

	c := testControl()
	sum, reports, err := Run(context.Background(), c, stub.URL)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{}
	for i := 0; i < c.Clients; i++ {
		for _, b := range c.Bodies(i) {
			want[string(b)]++
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("delivered body multiset differs: got %d distinct, want %d", len(got), len(want))
	}
	if sum.Requests != c.Clients*c.Requests || sum.Failures != 0 {
		t.Fatalf("summary %+v: want %d requests, 0 failures", sum, c.Clients*c.Requests)
	}
	if len(reports) != c.Clients {
		t.Fatalf("%d reports, want %d", len(reports), c.Clients)
	}
	if sum.ReqPerSec <= 0 || sum.WallNS <= 0 {
		t.Fatalf("summary %+v: non-positive throughput", sum)
	}
	if sum.P50NS <= 0 || sum.P50NS > sum.P95NS || sum.P95NS > sum.P99NS {
		t.Fatalf("summary %+v: percentiles out of order", sum)
	}
}

// TestRunCountsFailures: non-200 answers land in Failures, not in the
// latency population.
func TestRunCountsFailures(t *testing.T) {
	var n atomic.Int64
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		if n.Add(1)%3 == 0 {
			http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer stub.Close()

	c := Control{Clients: 2, Requests: 30, Batch: 1, Seed: 7}
	sum, _, err := Run(context.Background(), c, stub.URL)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Requests != 60 || sum.Failures != 20 {
		t.Fatalf("summary %+v: want 60 requests with 20 failures", sum)
	}
}

// TestRunClientCancel: cancellation aborts the schedule with the
// context error and a partial report.
func TestRunClientCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := Control{Requests: 5, Seed: 1}
	rep, err := RunClient(ctx, c, 0, "http://127.0.0.1:0", c.NewClient())
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(rep.LatenciesNS) != 0 {
		t.Fatalf("cancelled client recorded %d latencies", len(rep.LatenciesNS))
	}
}

// TestClientReportRoundTrip: the subprocess hand-off format survives
// JSON.
func TestClientReportRoundTrip(t *testing.T) {
	in := ClientReport{Client: 3, LatenciesNS: []int64{10, 20, 30}, Failures: 2}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out ClientReport
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

// TestPercentile pins the nearest-rank definition on small slices.
func TestPercentile(t *testing.T) {
	cases := []struct {
		sorted []int64
		p      float64
		want   int64
	}{
		{nil, 99, 0},
		{[]int64{5}, 50, 5},
		{[]int64{5}, 99, 5},
		{[]int64{1, 2, 3, 4}, 50, 2},
		{[]int64{1, 2, 3, 4}, 95, 4},
		{[]int64{1, 2, 3, 4}, 100, 4},
		{[]int64{1, 2, 3, 4}, 0, 1},
	}
	hundred := make([]int64, 100)
	for i := range hundred {
		hundred[i] = int64(i + 1)
	}
	cases = append(cases,
		struct {
			sorted []int64
			p      float64
			want   int64
		}{hundred, 50, 50},
		struct {
			sorted []int64
			p      float64
			want   int64
		}{hundred, 99, 99},
		struct {
			sorted []int64
			p      float64
			want   int64
		}{hundred, 99.5, 100},
	)
	for _, tc := range cases {
		if got := Percentile(tc.sorted, tc.p); got != tc.want {
			t.Errorf("Percentile(%v, %v) = %d, want %d", tc.sorted, tc.p, got, tc.want)
		}
	}
}

// TestAggregate folds two hand-built reports and checks the totals.
func TestAggregate(t *testing.T) {
	reports := []ClientReport{
		{LatenciesNS: []int64{300, 100}, Failures: 1},
		{LatenciesNS: []int64{200, 400}},
	}
	s := Aggregate(reports, 2*time.Second)
	if s.Requests != 5 || s.Failures != 1 {
		t.Fatalf("aggregate %+v: want 5 requests, 1 failure", s)
	}
	if s.ReqPerSec != 2 {
		t.Fatalf("aggregate %+v: want 2 req/s", s)
	}
	if s.P50NS != 200 || s.P95NS != 400 || s.P99NS != 400 {
		t.Fatalf("aggregate %+v: wrong percentiles", s)
	}
}

// TestCorpusDSRs extracts values from a synthetic fuzz-corpus dir: hex
// strings, 0x prefixes and decimals all land in the pool, deduplicated,
// in deterministic order.
func TestCorpusDSRs(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a", "go test fuzz v1\n[]byte(\"{\\\"dsr\\\":\\\"1a2b\\\"}\")\n")
	write("b", "go test fuzz v1\n[]byte(\"{\\\"dsrs\\\":[42,\\\"0xff\\\",\\\"1a2b\\\"]}\")\n")

	got, err := CorpusDSRs(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0x1a2b, 42, 0xff}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CorpusDSRs = %x, want %x", got, want)
	}

	if _, err := CorpusDSRs(t.TempDir()); err == nil {
		t.Fatal("empty corpus dir: want error")
	}
	if _, err := CorpusDSRs(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing dir: want error")
	}

	// The real FuzzPredictRequest seed corpus must yield a usable pool.
	real, err := CorpusDSRs(filepath.Join("..", "server", "testdata", "fuzz", "FuzzPredictRequest"))
	if err != nil {
		t.Fatal(err)
	}
	if len(real) == 0 {
		t.Fatal("real corpus yielded no DSR values")
	}
}
