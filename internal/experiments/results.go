package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"lockstep/internal/core"
	"lockstep/internal/costmodel"
	"lockstep/internal/cpu"
	"lockstep/internal/dataset"
	"lockstep/internal/inject"
	"lockstep/internal/sbist"
	"lockstep/internal/stats"
	"lockstep/internal/units"
)

// ---------------------------------------------------------------- Table I

// Table1 reproduces the paper's Table I: soft/hard error manifestation
// rates (min/mean/max across CPU units) and manifestation times
// (min/mean/max across errors), plus the aggregate statistics quoted in
// Section IV-B.
type Table1 struct {
	SoftRate stats.Summary
	HardRate stats.Summary
	SoftTime stats.Summary
	HardTime stats.Summary

	Experiments  int
	Manifested   int
	OverallRate  float64
	MeanDetect   float64 // average manifestation time over all errors
	DistinctSets int
}

// Table1 computes the manifestation statistics.
func (c *Context) Table1() Table1 {
	var t Table1
	for _, hard := range []bool{false, true} {
		byUnit := c.DS.ByUnit(hard)
		var rates []float64
		var times []float64
		for _, us := range byUnit {
			if us.Injected > 0 {
				rates = append(rates, us.Rate())
			}
		}
		for _, r := range c.DS.Records {
			if r.Detected && r.Hard() == hard {
				times = append(times, float64(r.ManifestationCycles()))
			}
		}
		if hard {
			t.HardRate = stats.Summarize(rates)
			t.HardTime = stats.Summarize(times)
		} else {
			t.SoftRate = stats.Summarize(rates)
			t.SoftTime = stats.Summarize(times)
		}
	}
	t.Experiments = c.DS.Len()
	man := c.DS.Manifested()
	t.Manifested = man.Len()
	if t.Experiments > 0 {
		t.OverallRate = float64(t.Manifested) / float64(t.Experiments)
	}
	var all []float64
	for _, r := range man.Records {
		all = append(all, float64(r.ManifestationCycles()))
	}
	t.MeanDetect = stats.Mean(all)
	t.DistinctSets = c.DS.DistinctDSRs()
	return t
}

// Print renders Table I next to the paper's numbers.
func (t Table1) Print(w io.Writer) {
	fmt.Fprintln(w, "Table I — fault injection statistics [min, mean, max]")
	fmt.Fprintf(w, "  %-32s %-24s paper: [0.2%%, 5%%, 27%%]\n",
		"Soft error manifestation rate", pctSummary(t.SoftRate))
	fmt.Fprintf(w, "  %-32s %-24s paper: [3%%, 40%%, 88%%]\n",
		"Hard error manifestation rate", pctSummary(t.HardRate))
	fmt.Fprintf(w, "  %-32s %-24s paper: [2, 700, 80k] cyc\n",
		"Soft error manifestation time", t.SoftTime.String())
	fmt.Fprintf(w, "  %-32s %-24s paper: [2, 1800, 130k] cyc\n",
		"Hard error manifestation time", t.HardTime.String())
	fmt.Fprintf(w, "  Aggregates: %d experiments, %d manifested (%.1f%%, paper ~20%%), "+
		"mean detection %.0f cyc (paper ~1300), %d distinct diverged SC sets (paper ~1200)\n",
		t.Experiments, t.Manifested, 100*t.OverallRate, t.MeanDetect, t.DistinctSets)
}

func pctSummary(s stats.Summary) string {
	return fmt.Sprintf("[%.1f%%, %.1f%%, %.1f%%]", 100*s.Min, 100*s.Mean, 100*s.Max)
}

// ------------------------------------------------------ per-unit breakdown

// UnitBreakdown details Table I per CPU unit: injected/manifested counts,
// rates and mean manifestation times for each fault class — the per-unit
// data behind the paper's min/mean/max rows.
type UnitBreakdown struct {
	Gran  core.Granularity
	Names []string
	Flops []int
	Soft  []dataset.UnitStats
	Hard  []dataset.UnitStats
}

// Units computes the per-unit breakdown at a granularity.
func (c *Context) Units(gran core.Granularity) UnitBreakdown {
	ub := UnitBreakdown{Gran: gran}
	if gran == core.Fine13 {
		soft := c.DS.ByFine(false)
		hard := c.DS.ByFine(true)
		for f := 0; f < units.NumFine; f++ {
			ub.Names = append(ub.Names, units.Fine(f).String())
			ub.Flops = append(ub.Flops, cpu.FineFlops(units.Fine(f)))
			ub.Soft = append(ub.Soft, soft[f])
			ub.Hard = append(ub.Hard, hard[f])
		}
		return ub
	}
	soft := c.DS.ByUnit(false)
	hard := c.DS.ByUnit(true)
	for u := 0; u < units.NumUnits; u++ {
		ub.Names = append(ub.Names, units.Unit(u).String())
		ub.Flops = append(ub.Flops, cpu.UnitFlops(units.Unit(u)))
		ub.Soft = append(ub.Soft, soft[u])
		ub.Hard = append(ub.Hard, hard[u])
	}
	return ub
}

// Print renders the per-unit table.
func (ub UnitBreakdown) Print(w io.Writer) {
	fmt.Fprintf(w, "Per-unit manifestation breakdown (%v)\n", ub.Gran)
	fmt.Fprintf(w, "  %-12s %6s  %22s  %22s\n", "unit", "flops",
		"soft rate / mean cyc", "hard rate / mean cyc")
	for i, name := range ub.Names {
		fmt.Fprintf(w, "  %-12s %6d  %9.1f%% / %-10.0f  %9.1f%% / %-10.0f\n",
			name, ub.Flops[i],
			100*ub.Soft[i].Rate(), ub.Soft[i].MeanTime(),
			100*ub.Hard[i].Rate(), ub.Hard[i].MeanTime())
	}
}

// --------------------------------------------------------------- Table II

// Table2 reproduces the paper's Table II: the latencies the LERT models
// use. STL latencies are the synthetic per-unit values; restart latencies
// are measured from the kernels.
type Table2 struct {
	OnChipAccess  int64
	OffChipAccess int64
	STL           stats.Summary
	Restart       stats.Summary
}

// Table2 gathers model latencies.
func (c *Context) Table2() Table2 {
	stl := sbist.DefaultSTL(core.Coarse7)
	f := make([]float64, len(stl))
	for i, v := range stl {
		f[i] = float64(v)
	}
	var restarts []float64
	for _, v := range c.restartMap {
		restarts = append(restarts, float64(v))
	}
	return Table2{
		OnChipAccess:  sbist.OnChipTableAccess,
		OffChipAccess: sbist.OffChipTableAccess,
		STL:           stats.Summarize(f),
		Restart:       stats.Summarize(restarts),
	}
}

// Print renders Table II.
func (t Table2) Print(w io.Writer) {
	fmt.Fprintln(w, "Table II — model latencies (cycles)")
	fmt.Fprintf(w, "  Prediction table access: %d on-chip / %d off-chip (paper: 2 / 100)\n",
		t.OnChipAccess, t.OffChipAccess)
	fmt.Fprintf(w, "  STL latency range:     %-24s paper: [25k, 170k, 700k]\n", t.STL.String())
	fmt.Fprintf(w, "  Restart latency range: %-24s paper: [2k, 10k, 36k]\n", t.Restart.String())
}

// -------------------------------------------------------------- Table III

// Table3 reproduces the error-type prediction accuracies of Table III via
// 5-fold cross validation, plus the Section III-B hard-vs-soft
// Bhattacharyya analysis per unit.
type Table3 struct {
	Soft    float64
	Hard    float64
	Overall float64

	TypeBC    []float64 // per coarse unit: BC(hard dist, soft dist)
	TypeBCAvg float64
}

// Table3 evaluates type prediction across folds.
func (c *Context) Table3() Table3 {
	var t Table3
	var softSum, hardSum, overallSum float64
	for fi, f := range c.folds {
		table := core.Train(f.Train, core.Coarse7, 0)
		s, h, o := table.TypeAccuracy(c.balancedTest(fi))
		softSum += s
		hardSum += h
		overallSum += o
	}
	n := float64(len(c.folds))
	t.Soft, t.Hard, t.Overall = softSum/n, hardSum/n, overallSum/n
	t.TypeBC = core.TypeBC(c.DS, core.Coarse7)
	t.TypeBCAvg = stats.Mean(t.TypeBC)
	return t
}

// Print renders Table III.
func (t Table3) Print(w io.Writer) {
	fmt.Fprintln(w, "Table III — error type prediction accuracy (pred-comb, 5-fold CV)")
	fmt.Fprintf(w, "  Soft:    %-8s paper: 86%%\n", stats.Percent(t.Soft))
	fmt.Fprintf(w, "  Hard:    %-8s paper: 49%%\n", stats.Percent(t.Hard))
	fmt.Fprintf(w, "  Overall: %-8s paper: 67%%\n", stats.Percent(t.Overall))
	fmt.Fprintf(w, "  Hard-vs-soft distribution BC per unit (paper: 0.3 min, 0.95 max, 0.6 avg): avg %.2f\n",
		t.TypeBCAvg)
}

// -------------------------------------------------------------- Table IV

// Table4 computes the area/power overhead comparison using the gate-level
// cost model; PTAR width and set count come from a table trained on the
// full dataset.
func (c *Context) Table4() costmodel.TableIV {
	table := core.Train(c.DS, core.Coarse7, 0)
	return costmodel.ComputeTableIV(table.Dict.PTARBits(), table.Dict.Len())
}

// PrintTable4 renders Table IV.
func PrintTable4(w io.Writer, t costmodel.TableIV) {
	fmt.Fprintln(w, "Table IV — predictor area and power overhead (gate-level cost model)")
	fmt.Fprintf(w, "  Predictor block: %d flops + %d gates = %.0f um2, %.1f uW\n",
		t.Predictor.Flops, t.Predictor.Gates, t.Predictor.AreaUM2(), t.Predictor.PowerUW())
	fmt.Fprintf(w, "  vs dual-SR5 lockstep:     area %-7s power %-7s (paper vs dual-R5: 0.6%% / 1.8%%)\n",
		stats.Percent(t.VsSR5DMR.Area), stats.Percent(t.VsSR5DMR.Power))
	fmt.Fprintf(w, "  vs single SR5 CPU:        area %-7s power %-7s (paper vs one R5: 1.4%% / 4.2%%)\n",
		stats.Percent(t.VsSR5.Area), stats.Percent(t.VsSR5.Power))
	fmt.Fprintf(w, "  vs dual R5-class lockstep: area %-7s power %-7s (calibration at Cortex-R5 scale)\n",
		stats.Percent(t.VsR5DMR.Area), stats.Percent(t.VsR5DMR.Power))
	fmt.Fprintf(w, "  vs one R5-class CPU:       area %-7s power %-7s\n",
		stats.Percent(t.VsR5.Area), stats.Percent(t.VsR5.Power))
}

// ------------------------------------------------------- Figures 4 and 5

// FigBC reproduces Figures 4 (hard) and 5 (soft): per-unit probability
// distributions over diverged-SC sets and their pairwise Bhattacharyya
// coefficients; the paper plots the min, median and max BC units.
type FigBC struct {
	HardErrors bool
	UnitBC     []float64 // avg pairwise BC per coarse unit
	AvgBC      float64
	MinUnit    int
	MedUnit    int
	MaxUnit    int
	Dists      [][]float64 // per unit distribution over set IDs
	SetSizes   int         // number of distinct sets on the axis
}

// FigUnitBC computes the distribution analysis for one fault class.
func (c *Context) FigUnitBC(hard bool) FigBC {
	dict := core.NewSetDict()
	dists := core.UnitDistributions(c.DS, core.Coarse7, dict, hard)
	bc := stats.MeanPairwiseBC(dists)
	f := FigBC{HardErrors: hard, UnitBC: bc, AvgBC: stats.Mean(bc), Dists: dists, SetSizes: dict.Len()}
	order := stats.ArgsortAsc(bc)
	f.MinUnit = order[0]
	f.MedUnit = order[len(order)/2]
	f.MaxUnit = order[len(order)-1]
	return f
}

// Print renders the BC analysis with small textual histograms.
func (f FigBC) Print(w io.Writer) {
	kind, figure, paperAvg := "soft", "Figure 5", 0.32
	if f.HardErrors {
		kind, figure, paperAvg = "hard", "Figure 4", 0.39
	}
	fmt.Fprintf(w, "%s — %s error distributions over %d diverged SC sets\n", figure, kind, f.SetSizes)
	gran := core.Coarse7
	for _, u := range []int{f.MinUnit, f.MedUnit, f.MaxUnit} {
		fmt.Fprintf(w, "  %-12s avg BC vs other units: %.2f\n", gran.UnitName(u), f.UnitBC[u])
		printHistHead(w, f.Dists[u], 8)
	}
	fmt.Fprintf(w, "  Average BC over all units: %.2f (paper: ~%.2f)\n", f.AvgBC, paperAvg)
}

func printHistHead(w io.Writer, dist []float64, n int) {
	idx := stats.ArgsortDesc(dist)
	if len(idx) > n {
		idx = idx[:n]
	}
	for _, id := range idx {
		if dist[id] <= 0 {
			break
		}
		bar := int(dist[id]*40 + 0.5)
		fmt.Fprintf(w, "    set %-5d %5.1f%% %s\n", id, 100*dist[id], bars(bar))
	}
}

func bars(n int) string {
	if n > 40 {
		n = 40
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}

// ------------------------------------------------- Figures 11 and 14

// ModelComparison reproduces Figures 11 (7 units) and 14 (13 units): the
// average LERT per error and units tested for all five models, averaged
// over the cross-validation folds.
type ModelComparison struct {
	Gran  core.Granularity
	LBIST bool         // latencies model LBIST scan sessions instead of STLs
	Rows  []sbist.Eval // base-random, base-ascending, base-manifest, pred-location-only, pred-comb

	CombVsManifest  float64 // LERT reduction of pred-comb vs base-manifest
	CombVsAscending float64
	CombVsLocation  float64
	LocVsManifest   float64
	LocVsAscending  float64
}

// ModelNames is the canonical model order of the comparison figures.
var ModelNames = []string{
	"base-random", "base-ascending", "base-manifest", "pred-location-only", "pred-comb",
}

// Compare evaluates all five models at the given granularity and table
// access latency.
func (c *Context) Compare(gran core.Granularity, tableAccess int64) ModelComparison {
	return c.compare(gran, tableAccess, false)
}

// CompareLBIST is the Section III extension: the same five models driving
// LBIST scan-chain diagnosis (per-unit session costs derived from the
// registry's real flop counts) instead of software test libraries.
func (c *Context) CompareLBIST(gran core.Granularity, tableAccess int64) ModelComparison {
	return c.compare(gran, tableAccess, true)
}

func (c *Context) compare(gran core.Granularity, tableAccess int64, lbist bool) ModelComparison {
	sums := make([]sbist.Eval, len(ModelNames))
	for fi, f := range c.folds {
		cfg := sbist.NewConfig(gran, c.restartMap, tableAccess)
		if lbist {
			cfg = sbist.NewLBISTConfig(gran, c.restartMap, tableAccess)
		}
		table := core.Train(f.Train, gran, 0)
		test := f.Test
		models := []sbist.Model{
			sbist.BaseRandom{Cfg: cfg},
			sbist.NewBaseAscending(cfg),
			sbist.NewBaseManifest(cfg, f.Train),
			sbist.PredLocationOnly{Cfg: cfg, Table: table},
			sbist.PredComb{Cfg: cfg, Table: table},
		}
		for i, m := range models {
			e := sbist.Evaluate(m, test, c.Scale.Seed+int64(fi))
			sums[i].Model = e.Model
			sums[i].MeanLERT += e.MeanLERT
			sums[i].P95LERT += e.P95LERT
			if e.MaxLERT > sums[i].MaxLERT {
				sums[i].MaxLERT = e.MaxLERT
			}
			sums[i].MeanUnits += e.MeanUnits
			sums[i].SBISTShare += e.SBISTShare
			sums[i].N += e.N
		}
	}
	n := float64(len(c.folds))
	for i := range sums {
		sums[i].MeanLERT /= n
		sums[i].P95LERT /= n
		sums[i].MeanUnits /= n
		sums[i].SBISTShare /= n
	}
	mc := ModelComparison{Gran: gran, Rows: sums, LBIST: lbist}
	red := func(from, to float64) float64 {
		if from == 0 {
			return 0
		}
		return 1 - to/from
	}
	mc.CombVsManifest = red(sums[2].MeanLERT, sums[4].MeanLERT)
	mc.CombVsAscending = red(sums[1].MeanLERT, sums[4].MeanLERT)
	mc.CombVsLocation = red(sums[3].MeanLERT, sums[4].MeanLERT)
	mc.LocVsManifest = red(sums[2].MeanLERT, sums[3].MeanLERT)
	mc.LocVsAscending = red(sums[1].MeanLERT, sums[3].MeanLERT)
	return mc
}

// Print renders the comparison in the style of the paper's bar annotations
// (average tested units and exact average LERT per bar).
func (mc ModelComparison) Print(w io.Writer) {
	figure, paper := "Figure 11 (7 units)",
		"paper speedups: pred-comb 65%/64%/39% vs base-manifest/base-ascending/pred-location-only"
	if mc.Gran == core.Fine13 {
		figure, paper = "Figure 14 (13 units)",
			"paper speedups: pred-comb 64%/42%/34% vs base-manifest/base-ascending/pred-location-only"
	}
	if mc.LBIST {
		figure += " [LBIST latencies, Section III extension]"
	}
	fmt.Fprintf(w, "%s — average LERT per error\n", figure)
	for _, r := range mc.Rows {
		fmt.Fprintf(w, "  %-20s LERT %9.0f cyc (p95 %9.0f, max %9.0f)   units %.2f   SBIST on %.0f%% of errors\n",
			r.Model, r.MeanLERT, r.P95LERT, r.MaxLERT, r.MeanUnits, 100*r.SBISTShare)
	}
	fmt.Fprintf(w, "  pred-location-only reduction: %s vs base-manifest (paper 43%%*), %s vs base-ascending (paper 40%%*)\n",
		stats.Percent(mc.LocVsManifest), stats.Percent(mc.LocVsAscending))
	fmt.Fprintf(w, "  pred-comb reduction: %s vs base-manifest, %s vs base-ascending, %s vs pred-location-only\n",
		stats.Percent(mc.CombVsManifest), stats.Percent(mc.CombVsAscending), stats.Percent(mc.CombVsLocation))
	fmt.Fprintf(w, "  (%s; *7-unit numbers)\n", paper)
}

// -------------------------------------------------- on-/off-chip table

// OnOffChip reproduces Section V-B: the LERT sensitivity of keeping the
// prediction table on-chip (2-cycle access) vs off-chip (100-cycle).
type OnOffChip struct {
	LocOn, LocOff   float64
	CombOn, CombOff float64
}

// OnOffChipAnalysis evaluates both prediction models at both latencies.
func (c *Context) OnOffChipAnalysis() OnOffChip {
	on := c.Compare(core.Coarse7, sbist.OnChipTableAccess)
	off := c.Compare(core.Coarse7, sbist.OffChipTableAccess)
	return OnOffChip{
		LocOn:   on.Rows[3].MeanLERT,
		LocOff:  off.Rows[3].MeanLERT,
		CombOn:  on.Rows[4].MeanLERT,
		CombOff: off.Rows[4].MeanLERT,
	}
}

// Print renders the on-/off-chip overhead.
func (o OnOffChip) Print(w io.Writer) {
	ovh := func(on, off float64) float64 {
		if on == 0 {
			return 0
		}
		return off/on - 1
	}
	fmt.Fprintln(w, "Section V-B — prediction table on-chip (2 cyc) vs off-chip (100 cyc)")
	fmt.Fprintf(w, "  pred-location-only: %0.0f -> %0.0f cyc, overhead %.3f%% (paper 0.05%%)\n",
		o.LocOn, o.LocOff, 100*ovh(o.LocOn, o.LocOff))
	fmt.Fprintf(w, "  pred-comb:          %0.0f -> %0.0f cyc, overhead %.3f%% (paper 0.05%%)\n",
		o.CombOn, o.CombOff, 100*ovh(o.CombOn, o.CombOff))
}

// --------------------------------------- Figures 12/13 and 15/16

// TopKSweep reproduces the predicted-unit-count sweeps: location
// prediction accuracy (Figures 12/15) and average LERT with speedup vs
// base-ascending (Figures 13/16) as the table stores 1..N units per entry.
type TopKSweep struct {
	Gran       core.Granularity
	K          []int
	Accuracy   []float64
	LERT       []float64
	Speedup    []float64 // vs base-ascending
	TableBytes []int     // prediction table storage at this K
	BaseLERT   float64   // base-ascending reference
}

// SweepTopK evaluates pred-comb with top-K truncated tables.
func (c *Context) SweepTopK(gran core.Granularity) TopKSweep {
	n := gran.Units()
	sw := TopKSweep{Gran: gran}
	// base-ascending reference, averaged over folds.
	var baseSum float64
	for fi, f := range c.folds {
		cfg := sbist.NewConfig(gran, c.restartMap, sbist.OffChipTableAccess)
		e := sbist.Evaluate(sbist.NewBaseAscending(cfg), f.Test, c.Scale.Seed+int64(fi))
		baseSum += e.MeanLERT
	}
	sw.BaseLERT = baseSum / float64(len(c.folds))

	for k := 1; k <= n; k++ {
		var accSum, lertSum float64
		for fi, f := range c.folds {
			cfg := sbist.NewConfig(gran, c.restartMap, sbist.OffChipTableAccess)
			table := core.Train(f.Train, gran, k)
			test := f.Test
			accSum += table.LocationAccuracy(test, k)
			e := sbist.Evaluate(sbist.PredComb{Cfg: cfg, Table: table}, test, c.Scale.Seed+int64(fi))
			lertSum += e.MeanLERT
		}
		nf := float64(len(c.folds))
		lert := lertSum / nf
		sw.K = append(sw.K, k)
		sw.Accuracy = append(sw.Accuracy, accSum/nf)
		sw.LERT = append(sw.LERT, lert)
		sw.Speedup = append(sw.Speedup, 1-lert/sw.BaseLERT)
		full := core.Train(c.DS, gran, k)
		sw.TableBytes = append(sw.TableBytes, (full.TableBits()+7)/8)
	}
	return sw
}

// Print renders the sweep series.
func (sw TopKSweep) Print(w io.Writer) {
	accFig, lertFig := "Figure 12", "Figure 13"
	note := "paper: 70%/85%/95% at K=1/2/3, sweet spot 3-4 units with 60-63% speedup"
	if sw.Gran == core.Fine13 {
		accFig, lertFig = "Figure 15", "Figure 16"
		note = "paper: 42% at K=1, ~95% at K=7, sweet spot 7-8 units with 36-39% speedup"
	}
	fmt.Fprintf(w, "%s / %s — pred-comb with K predicted units (%s)\n", accFig, lertFig, note)
	fmt.Fprintf(w, "  base-ascending reference LERT: %.0f cyc\n", sw.BaseLERT)
	for i, k := range sw.K {
		fmt.Fprintf(w, "  K=%-2d location accuracy %5.1f%%   LERT %9.0f cyc   speedup vs base-ascending %5.1f%%   table %d B\n",
			k, 100*sw.Accuracy[i], sw.LERT[i], 100*sw.Speedup[i], sw.TableBytes[i])
	}
	fmt.Fprintln(w, "  (paper: 1.5-2KB at 3-4 coarse units, 4-5KB at 7-8 fine units, 3.2KB full coarse)")
}

// --------------------------------------------------- hard/soft spread

// Spread reproduces the Section III-B statistic: hard errors produce more
// distinct diverged SC sets than soft errors injected into the same flops
// (54% more in the paper).
type Spread struct {
	SoftSets, HardSets int     // distinct sets, same-flop population
	MorePct            float64 // (hard-soft)/soft
	SoftAvgSCs         float64 // avg diverged SCs per detection
	HardAvgSCs         float64
}

// SpreadAnalysis computes the statistic over flops with detections in both
// classes.
func (c *Context) SpreadAnalysis() Spread {
	type sets struct {
		soft map[uint64]struct{}
		hard map[uint64]struct{}
	}
	perFlop := map[int]*sets{}
	for _, r := range c.DS.Records {
		if !r.Detected {
			continue
		}
		s := perFlop[r.Flop]
		if s == nil {
			s = &sets{soft: map[uint64]struct{}{}, hard: map[uint64]struct{}{}}
			perFlop[r.Flop] = s
		}
		if r.Hard() {
			s.hard[r.DSR] = struct{}{}
		} else {
			s.soft[r.DSR] = struct{}{}
		}
	}
	softSets := map[uint64]struct{}{}
	hardSets := map[uint64]struct{}{}
	for _, s := range perFlop {
		if len(s.soft) == 0 || len(s.hard) == 0 {
			continue // same-flop comparison only
		}
		for k := range s.soft {
			softSets[k] = struct{}{}
		}
		for k := range s.hard {
			hardSets[k] = struct{}{}
		}
	}
	var softBits, hardBits, softN, hardN float64
	for _, r := range c.DS.Records {
		if !r.Detected {
			continue
		}
		bits := float64(popcount(r.DSR))
		if r.Hard() {
			hardBits += bits
			hardN++
		} else {
			softBits += bits
			softN++
		}
	}
	sp := Spread{SoftSets: len(softSets), HardSets: len(hardSets)}
	if sp.SoftSets > 0 {
		sp.MorePct = float64(sp.HardSets-sp.SoftSets) / float64(sp.SoftSets)
	}
	if softN > 0 {
		sp.SoftAvgSCs = softBits / softN
	}
	if hardN > 0 {
		sp.HardAvgSCs = hardBits / hardN
	}
	return sp
}

// Print renders the spread statistic.
func (sp Spread) Print(w io.Writer) {
	fmt.Fprintln(w, "Section III-B — diverged-SC-set spread, same-flop populations")
	fmt.Fprintf(w, "  distinct sets: soft %d, hard %d -> hard has %.0f%% more (paper: 54%% more)\n",
		sp.SoftSets, sp.HardSets, 100*sp.MorePct)
	fmt.Fprintf(w, "  avg diverged SCs at detection: soft %.2f, hard %.2f\n",
		sp.SoftAvgSCs, sp.HardAvgSCs)
}

func popcount(v uint64) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}

// --------------------------------------------- dynamic predictor ablation

// Ablation compares the static predictor against the Section VII dynamic
// (history-accumulating) predictor on the same error stream.
type Ablation struct {
	StaticLERT  float64
	DynamicLERT float64
	Errors      int
}

// AblationDynamic streams fold-0's test errors (shuffled) through both
// predictors. The dynamic predictor starts empty and learns from each
// diagnosed error; the static one is trained offline on the train split.
func (c *Context) AblationDynamic() Ablation {
	f := c.folds[0]
	cfg := sbist.NewConfig(core.Coarse7, c.restartMap, sbist.OffChipTableAccess)
	static := sbist.PredComb{Cfg: cfg, Table: core.Train(f.Train, core.Coarse7, 0)}
	dynamic := sbist.PredDynamic{Cfg: cfg, Dyn: core.NewDynamic(core.Coarse7)}

	var recs []dataset.Record
	for _, r := range f.Test.Records {
		if r.Detected {
			recs = append(recs, r)
		}
	}
	rng := rand.New(rand.NewSource(c.Scale.Seed + 999))
	rng.Shuffle(len(recs), func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })

	var statSum, dynSum float64
	for _, r := range recs {
		statSum += float64(static.React(r, rng).Cycles)
		dynSum += float64(dynamic.React(r, rng).Cycles)
	}
	n := float64(len(recs))
	a := Ablation{Errors: len(recs)}
	if n > 0 {
		a.StaticLERT = statSum / n
		a.DynamicLERT = dynSum / n
	}
	return a
}

// Print renders the ablation.
func (a Ablation) Print(w io.Writer) {
	fmt.Fprintln(w, "Section VII ablation — static vs dynamic (history-learned) predictor")
	fmt.Fprintf(w, "  static pred-comb LERT:  %.0f cyc over %d errors\n", a.StaticLERT, a.Errors)
	fmt.Fprintf(w, "  dynamic pred-comb LERT: %.0f cyc (starts untrained, learns online)\n", a.DynamicLERT)
	if a.DynamicLERT > a.StaticLERT {
		fmt.Fprintf(w, "  static wins by %.1f%% — errors are too rare to amortise online learning, as Section VII argues\n",
			100*(a.DynamicLERT/a.StaticLERT-1))
	}
}

// -------------------------------------------- stop-window sensitivity

// WindowSweep is the sensitivity ablation for the checker stop latency:
// how the number of cycles the DSR accumulates after first divergence
// affects the diverged-SC-set vocabulary and the error-type prediction
// accuracy. It is the quantitative defence of modelling decision 5 in
// DESIGN.md: with a 1-cycle window, soft and hard first-divergence
// signatures are nearly identical and type prediction collapses.
type WindowSweep struct {
	Windows      []int
	DistinctSets []int
	AvgSetSize   []float64
	SoftAcc      []float64
	HardAcc      []float64
	OverallAcc   []float64
}

// SweepStopWindow re-runs a reduced campaign at several stop-window
// lengths. It deliberately uses a thinner flop stride than the context's
// campaign so the whole sweep stays fast.
func (c *Context) SweepStopWindow(windows []int) (WindowSweep, error) {
	if len(windows) == 0 {
		windows = []int{1, 2, 4, 8, 12, 16}
	}
	sw := WindowSweep{Windows: windows}
	cfg := c.Scale.Config()
	cfg.FlopStride *= 4
	if len(cfg.Kernels) == 0 {
		cfg.Kernels = []string{"ttsprk", "rspeed", "matrix"}
	}
	if len(cfg.Kernels) > 3 {
		cfg.Kernels = cfg.Kernels[:3]
	}
	for _, w := range windows {
		wcfg := cfg
		wcfg.StopLatency = w
		ds, err := inject.Run(wcfg)
		if err != nil {
			return sw, err
		}
		rng := rand.New(rand.NewSource(c.Scale.Seed + int64(w)))
		train, test := ds.Split(rng, 0.8)
		table := core.Train(train, core.Coarse7, 0)
		soft, hard, overall := table.TypeAccuracy(test.Balanced(rng))
		var bits, n float64
		for _, r := range ds.Records {
			if r.Detected {
				bits += float64(popcount(r.DSR))
				n++
			}
		}
		sw.DistinctSets = append(sw.DistinctSets, ds.DistinctDSRs())
		if n > 0 {
			sw.AvgSetSize = append(sw.AvgSetSize, bits/n)
		} else {
			sw.AvgSetSize = append(sw.AvgSetSize, 0)
		}
		sw.SoftAcc = append(sw.SoftAcc, soft)
		sw.HardAcc = append(sw.HardAcc, hard)
		sw.OverallAcc = append(sw.OverallAcc, overall)
	}
	return sw, nil
}

// Print renders the stop-window sensitivity series.
func (sw WindowSweep) Print(w io.Writer) {
	fmt.Fprintln(w, "Stop-window sensitivity — DSR accumulation cycles after first divergence")
	fmt.Fprintf(w, "  %-8s %12s %12s %10s %10s %10s\n",
		"window", "distinct", "avg SCs", "soft acc", "hard acc", "overall")
	for i, win := range sw.Windows {
		fmt.Fprintf(w, "  %-8d %12d %12.2f %9.1f%% %9.1f%% %9.1f%%\n",
			win, sw.DistinctSets[i], sw.AvgSetSize[i],
			100*sw.SoftAcc[i], 100*sw.HardAcc[i], 100*sw.OverallAcc[i])
	}
	fmt.Fprintln(w, "  (the production configuration uses window 12; window 1 shows why")
	fmt.Fprintln(w, "   accumulation is needed for type separability)")
}

// ------------------------------------------------------------- summary

// Claim is one shape claim's live verdict.
type Claim struct {
	Name     string
	Paper    string
	Measured string
	Holds    bool
}

// Summary evaluates the paper's headline shape claims against this
// campaign — the live version of EXPERIMENTS.md's verdict table.
func (c *Context) Summary() []Claim {
	var out []Claim
	add := func(name, paper, measured string, holds bool) {
		out = append(out, Claim{Name: name, Paper: paper, Measured: measured, Holds: holds})
	}

	t1 := c.Table1()
	add("hard faults manifest more often than soft",
		"40% vs 5% (mean)",
		fmt.Sprintf("%.1f%% vs %.1f%%", 100*t1.HardRate.Mean, 100*t1.SoftRate.Mean),
		t1.HardRate.Mean > t1.SoftRate.Mean)
	add("hard errors manifest later than soft",
		"1800 vs 700 cyc",
		fmt.Sprintf("%.0f vs %.0f cyc", t1.HardTime.Mean, t1.SoftTime.Mean),
		t1.HardTime.Mean > t1.SoftTime.Mean)

	hardBC := c.FigUnitBC(true)
	softBC := c.FigUnitBC(false)
	add("unit signatures distinguishable (BC ≪ 1)",
		"0.39 hard / 0.32 soft",
		fmt.Sprintf("%.2f / %.2f", hardBC.AvgBC, softBC.AvgBC),
		hardBC.AvgBC < 0.9 && softBC.AvgBC < 0.9)

	t3 := c.Table3()
	add("error type predictable from the DSR",
		"overall 67%",
		fmt.Sprintf("overall %.1f%%", 100*t3.Overall),
		t3.Overall > 0.55)

	mc7 := c.Compare(core.Coarse7, sbist.OnChipTableAccess)
	ordered := mc7.Rows[4].MeanLERT < mc7.Rows[3].MeanLERT &&
		mc7.Rows[4].MeanLERT < mc7.Rows[2].MeanLERT &&
		mc7.Rows[4].MeanLERT < mc7.Rows[1].MeanLERT &&
		mc7.Rows[4].MeanLERT < mc7.Rows[0].MeanLERT
	add("pred-comb beats every baseline and location-only",
		"Fig. 11 ordering",
		fmt.Sprintf("comb %.0f < loc %.0f < baselines", mc7.Rows[4].MeanLERT, mc7.Rows[3].MeanLERT),
		ordered)
	mc13 := c.Compare(core.Fine13, sbist.OnChipTableAccess)
	add("availability gain in the 42-65% band",
		"42-65% depending on granularity",
		fmt.Sprintf("%.0f%%-%.0f%%", 100*mc7.CombVsManifest, 100*mc13.CombVsAscending),
		mc13.CombVsAscending > 0.35)
	add("finer granularity improves pred-comb",
		"Fig. 14 vs Fig. 11",
		fmt.Sprintf("%.0f -> %.0f cyc", mc7.Rows[4].MeanLERT, mc13.Rows[4].MeanLERT),
		mc13.Rows[4].MeanLERT < mc7.Rows[4].MeanLERT)

	oo := c.OnOffChipAnalysis()
	ovh := oo.CombOff/oo.CombOn - 1
	add("off-chip table costs ~nothing",
		"0.05%",
		fmt.Sprintf("%.3f%%", 100*ovh),
		ovh < 0.01)

	sw7 := c.SweepTopK(core.Coarse7)
	add("few predicted units suffice (coarse)",
		"95% accuracy by K=3",
		fmt.Sprintf("%.0f%% at K=3", 100*sw7.Accuracy[2]),
		sw7.Accuracy[2] > 0.85)

	sp := c.SpreadAnalysis()
	add("hard errors spread over more SC sets",
		"+54%",
		fmt.Sprintf("%+.0f%%", 100*sp.MorePct),
		sp.MorePct > 0)

	t4 := c.Table4()
	add("predictor hardware tiny at CPU scale",
		"<2% of dual-R5",
		fmt.Sprintf("%.1f%% at R5 scale", 100*t4.VsR5DMR.Area),
		t4.VsR5DMR.Area < 0.02)

	ab := c.AblationDynamic()
	add("static predictor suffices (SVII)",
		"argued",
		fmt.Sprintf("static %.0f vs dynamic %.0f cyc", ab.StaticLERT, ab.DynamicLERT),
		ab.StaticLERT <= ab.DynamicLERT)
	return out
}

// PrintSummary renders the verdict table.
func PrintSummary(w io.Writer, claims []Claim) {
	fmt.Fprintln(w, "Shape-claim summary — paper vs this campaign")
	holds := 0
	for _, cl := range claims {
		verdict := "HOLDS"
		if !cl.Holds {
			verdict = "DIFFERS"
		} else {
			holds++
		}
		fmt.Fprintf(w, "  %-7s %-48s paper: %-28s measured: %s\n",
			verdict, cl.Name, cl.Paper, cl.Measured)
	}
	fmt.Fprintf(w, "  %d/%d claims hold\n", holds, len(claims))
}
