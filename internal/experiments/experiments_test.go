package experiments

import (
	"bytes"
	"os"
	"sync"
	"testing"

	"lockstep/internal/core"
	"lockstep/internal/sbist"
)

var (
	ctxOnce sync.Once
	ctx     *Context
	ctxErr  error
)

// sharedContext runs the Small campaign once for the whole test package.
func sharedContext(t *testing.T) *Context {
	t.Helper()
	ctxOnce.Do(func() { ctx, ctxErr = NewContext(Small, nil) })
	if ctxErr != nil {
		t.Fatal(ctxErr)
	}
	return ctx
}

func TestTable1Shape(t *testing.T) {
	c := sharedContext(t)
	t1 := c.Table1()
	if t1.Manifested == 0 {
		t.Fatal("no manifested errors")
	}
	// Shape claims from the paper's Table I: hard manifestation rate mean
	// exceeds soft; hard manifestation time mean exceeds soft.
	if t1.HardRate.Mean <= t1.SoftRate.Mean {
		t.Errorf("hard rate mean (%.2f) should exceed soft (%.2f)",
			t1.HardRate.Mean, t1.SoftRate.Mean)
	}
	if t1.HardTime.Mean <= t1.SoftTime.Mean {
		t.Errorf("hard manifestation time mean (%.0f) should exceed soft (%.0f)",
			t1.HardTime.Mean, t1.SoftTime.Mean)
	}
	if t1.DistinctSets < 10 {
		t.Errorf("only %d distinct diverged SC sets", t1.DistinctSets)
	}
}

func TestTable2Ranges(t *testing.T) {
	c := sharedContext(t)
	t2 := c.Table2()
	// The synthetic STL range must match the paper's published range.
	if t2.STL.Min != 25000 || t2.STL.Max != 700000 {
		t.Errorf("STL range [%0.f, %0.f], want [25000, 700000]", t2.STL.Min, t2.STL.Max)
	}
	if t2.STL.Mean < 150000 || t2.STL.Mean > 190000 {
		t.Errorf("STL mean %.0f outside paper's ~170k", t2.STL.Mean)
	}
	if t2.Restart.Min <= 0 {
		t.Error("restart latencies not measured")
	}
}

func TestTable3TypePrediction(t *testing.T) {
	c := sharedContext(t)
	t3 := c.Table3()
	// Shape claims: soft accuracy well above chance and above hard
	// accuracy; overall between them.
	if t3.Soft < 0.5 {
		t.Errorf("soft type accuracy %.2f below 0.5", t3.Soft)
	}
	if t3.Overall <= 0.5 {
		t.Errorf("overall type accuracy %.2f not better than chance", t3.Overall)
	}
	if t3.TypeBCAvg <= 0 || t3.TypeBCAvg > 1 {
		t.Errorf("type BC average %.2f out of range", t3.TypeBCAvg)
	}
}

func TestTable4Overheads(t *testing.T) {
	c := sharedContext(t)
	t4 := c.Table4()
	// The predictor must be a small fraction of the lockstep processor,
	// and tiny at R5 scale (the paper's <2% claim).
	if t4.VsSR5DMR.Area > 0.10 || t4.VsSR5DMR.Power > 0.10 {
		t.Errorf("predictor overhead vs SR5 DMR too big: %+v", t4.VsSR5DMR)
	}
	if t4.VsR5DMR.Area > 0.02 || t4.VsR5DMR.Power > 0.02 {
		t.Errorf("predictor overhead vs R5-class DMR exceeds paper's 2%%: %+v", t4.VsR5DMR)
	}
	if t4.Predictor.Flops < 62 {
		t.Errorf("predictor flops %d below DSR width", t4.Predictor.Flops)
	}
}

func TestFigures4And5BC(t *testing.T) {
	c := sharedContext(t)
	hard := c.FigUnitBC(true)
	soft := c.FigUnitBC(false)
	// BC in (0, 1): unit signatures are neither identical nor disjoint.
	for _, f := range []FigBC{hard, soft} {
		if f.AvgBC <= 0 || f.AvgBC >= 1 {
			t.Errorf("avg BC %.3f out of open interval", f.AvgBC)
		}
		if f.MinUnit == f.MaxUnit {
			t.Error("degenerate min/max BC units")
		}
	}
	// The key phenomenon: distributions are distinguishable (BC well
	// below 1), which is what makes location prediction work.
	if hard.AvgBC > 0.9 {
		t.Errorf("hard-error unit signatures too similar (BC %.2f)", hard.AvgBC)
	}
}

func TestFig11ModelOrdering(t *testing.T) {
	c := sharedContext(t)
	mc := c.Compare(core.Coarse7, sbist.OnChipTableAccess)
	byName := map[string]float64{}
	for _, r := range mc.Rows {
		if r.N == 0 {
			t.Fatalf("model %s evaluated zero errors", r.Model)
		}
		byName[r.Model] = r.MeanLERT
	}
	// Paper's headline ordering: pred-comb beats every baseline and
	// pred-location-only; pred-location-only beats the static-latency and
	// random baselines (vs base-manifest it can tie within noise at small
	// campaign scale, so that pair is not asserted here).
	for _, base := range []string{"base-random", "base-ascending"} {
		if byName["pred-location-only"] >= byName[base] {
			t.Errorf("pred-location-only (%.0f) not better than %s (%.0f)",
				byName["pred-location-only"], base, byName[base])
		}
	}
	for _, base := range []string{"base-random", "base-ascending", "base-manifest"} {
		if byName["pred-comb"] >= byName[base] {
			t.Errorf("pred-comb (%.0f) not better than %s (%.0f)",
				byName["pred-comb"], base, byName[base])
		}
	}
	if byName["pred-comb"] >= byName["pred-location-only"] {
		t.Errorf("pred-comb (%.0f) not better than pred-location-only (%.0f)",
			byName["pred-comb"], byName["pred-location-only"])
	}
	// Availability claim: pred-comb speedup in the paper's 42-65% band
	// direction (must at least be a large double-digit reduction).
	if mc.CombVsAscending < 0.2 {
		t.Errorf("pred-comb reduction vs base-ascending only %.0f%%", 100*mc.CombVsAscending)
	}
}

func TestFig14FineGranularity(t *testing.T) {
	c := sharedContext(t)
	coarse := c.Compare(core.Coarse7, sbist.OnChipTableAccess)
	fine := c.Compare(core.Fine13, sbist.OnChipTableAccess)
	// Section V-D: finer granularity improves LERT for the prediction
	// models and base-ascending.
	if fine.Rows[4].MeanLERT >= coarse.Rows[4].MeanLERT {
		t.Errorf("fine pred-comb (%.0f) should beat coarse (%.0f)",
			fine.Rows[4].MeanLERT, coarse.Rows[4].MeanLERT)
	}
	if fine.Rows[1].MeanLERT >= coarse.Rows[1].MeanLERT {
		t.Errorf("fine base-ascending (%.0f) should beat coarse (%.0f)",
			fine.Rows[1].MeanLERT, coarse.Rows[1].MeanLERT)
	}
}

func TestLBISTComparison(t *testing.T) {
	c := sharedContext(t)
	mc := c.CompareLBIST(core.Coarse7, sbist.OffChipTableAccess)
	if !mc.LBIST {
		t.Fatal("LBIST flag not set")
	}
	byName := map[string]float64{}
	for _, r := range mc.Rows {
		if r.N == 0 {
			t.Fatalf("model %s evaluated zero errors", r.Model)
		}
		byName[r.Model] = r.MeanLERT
	}
	// The prediction advantage carries over to LBIST diagnosis.
	if byName["pred-comb"] >= byName["base-ascending"] {
		t.Errorf("LBIST pred-comb (%.0f) not better than base-ascending (%.0f)",
			byName["pred-comb"], byName["base-ascending"])
	}
	// p95 is at least the mean for every model.
	for _, r := range mc.Rows {
		if r.P95LERT < r.MeanLERT*0.5 {
			t.Errorf("%s: implausible p95 %.0f vs mean %.0f", r.Model, r.P95LERT, r.MeanLERT)
		}
		if r.MaxLERT < r.P95LERT {
			t.Errorf("%s: max %.0f below p95 %.0f", r.Model, r.MaxLERT, r.P95LERT)
		}
	}
}

func TestOnOffChipNegligible(t *testing.T) {
	c := sharedContext(t)
	o := c.OnOffChipAnalysis()
	for _, pair := range [][2]float64{{o.LocOn, o.LocOff}, {o.CombOn, o.CombOff}} {
		if pair[0] <= 0 {
			t.Fatal("zero LERT")
		}
		if ovh := pair[1]/pair[0] - 1; ovh > 0.01 {
			t.Errorf("off-chip overhead %.3f%% exceeds 1%%", 100*ovh)
		}
	}
}

func TestTopKSweepShape(t *testing.T) {
	c := sharedContext(t)
	for _, gran := range []core.Granularity{core.Coarse7, core.Fine13} {
		sw := c.SweepTopK(gran)
		n := gran.Units()
		if len(sw.K) != n {
			t.Fatalf("sweep has %d points, want %d", len(sw.K), n)
		}
		// Accuracy is monotone non-decreasing in K and reaches 100% at
		// K = all units (the faulty unit is always in the full order).
		for i := 1; i < n; i++ {
			if sw.Accuracy[i]+1e-9 < sw.Accuracy[i-1] {
				t.Errorf("%v: accuracy not monotone at K=%d: %.3f < %.3f",
					gran, i+1, sw.Accuracy[i], sw.Accuracy[i-1])
			}
		}
		if sw.Accuracy[n-1] < 0.999 {
			t.Errorf("%v: full-order accuracy %.3f != 1", gran, sw.Accuracy[n-1])
		}
		if sw.BaseLERT <= 0 {
			t.Error("no base-ascending reference")
		}
	}
}

func TestSpreadDirection(t *testing.T) {
	c := sharedContext(t)
	sp := c.SpreadAnalysis()
	if sp.SoftSets == 0 || sp.HardSets == 0 {
		t.Skip("not enough same-flop detections at small scale")
	}
	// Section III-B: hard errors produce more distinct diverged SC sets.
	if sp.HardSets < sp.SoftSets {
		t.Errorf("hard sets (%d) fewer than soft sets (%d)", sp.HardSets, sp.SoftSets)
	}
}

func TestAblationDynamic(t *testing.T) {
	c := sharedContext(t)
	a := c.AblationDynamic()
	if a.Errors == 0 {
		t.Fatal("no errors in ablation stream")
	}
	if a.StaticLERT <= 0 || a.DynamicLERT <= 0 {
		t.Fatal("degenerate ablation LERTs")
	}
}

func TestUnitBreakdown(t *testing.T) {
	c := sharedContext(t)
	for _, gran := range []core.Granularity{core.Coarse7, core.Fine13} {
		ub := c.Units(gran)
		if len(ub.Names) != gran.Units() {
			t.Fatalf("%v: %d rows", gran, len(ub.Names))
		}
		totalFlops, totalInjected := 0, 0
		for i := range ub.Names {
			totalFlops += ub.Flops[i]
			totalInjected += ub.Soft[i].Injected + ub.Hard[i].Injected
		}
		if totalInjected != c.DS.Len() {
			t.Fatalf("%v: per-unit injected %d != %d records", gran, totalInjected, c.DS.Len())
		}
		var buf bytes.Buffer
		ub.Print(&buf)
		if buf.Len() == 0 {
			t.Fatal("empty breakdown print")
		}
	}
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"small", "default", "full", ""} {
		if _, err := ScaleByName(name); err != nil {
			t.Errorf("ScaleByName(%q): %v", name, err)
		}
	}
	if _, err := ScaleByName("bogus"); err == nil {
		t.Error("bogus scale accepted")
	}
}

// TestPrintAll exercises every Print path and, with -v, shows the full
// small-scale reproduction.
func TestPrintAll(t *testing.T) {
	c := sharedContext(t)
	var buf bytes.Buffer
	c.Table1().Print(&buf)
	c.Table2().Print(&buf)
	c.Table3().Print(&buf)
	PrintTable4(&buf, c.Table4())
	c.FigUnitBC(true).Print(&buf)
	c.FigUnitBC(false).Print(&buf)
	c.Compare(core.Coarse7, sbist.OnChipTableAccess).Print(&buf)
	c.Compare(core.Fine13, sbist.OnChipTableAccess).Print(&buf)
	c.OnOffChipAnalysis().Print(&buf)
	c.SweepTopK(core.Coarse7).Print(&buf)
	c.SweepTopK(core.Fine13).Print(&buf)
	c.SpreadAnalysis().Print(&buf)
	c.AblationDynamic().Print(&buf)
	if buf.Len() < 2000 {
		t.Fatalf("suspiciously short report (%d bytes)", buf.Len())
	}
	if testing.Verbose() {
		os.Stdout.Write(buf.Bytes())
	}
}

func TestSweepStopWindow(t *testing.T) {
	c := sharedContext(t)
	sw, err := c.SweepStopWindow([]int{1, 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Windows) != 2 {
		t.Fatalf("%d windows", len(sw.Windows))
	}
	// The accumulation window grows both the set vocabulary and the
	// average set size.
	if sw.DistinctSets[1] <= sw.DistinctSets[0] {
		t.Errorf("window 12 should produce more distinct sets: %d vs %d",
			sw.DistinctSets[1], sw.DistinctSets[0])
	}
	if sw.AvgSetSize[1] <= sw.AvgSetSize[0] {
		t.Errorf("window 12 should produce larger sets: %.2f vs %.2f",
			sw.AvgSetSize[1], sw.AvgSetSize[0])
	}
	var buf bytes.Buffer
	sw.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestSummaryClaims(t *testing.T) {
	c := sharedContext(t)
	claims := c.Summary()
	if len(claims) < 10 {
		t.Fatalf("only %d claims", len(claims))
	}
	holds := 0
	for _, cl := range claims {
		if cl.Name == "" || cl.Paper == "" || cl.Measured == "" {
			t.Fatalf("incomplete claim: %+v", cl)
		}
		if cl.Holds {
			holds++
		}
	}
	// At small campaign scale at least 80% of the claims must hold.
	if holds*10 < len(claims)*8 {
		t.Fatalf("only %d/%d claims hold", holds, len(claims))
	}
	var buf bytes.Buffer
	PrintSummary(&buf, claims)
	if buf.Len() == 0 {
		t.Fatal("empty summary")
	}
}
