// Package experiments orchestrates the reproduction of every data-bearing
// table and figure in the paper's evaluation (Section V): it runs the
// fault-injection campaign, trains predictors with 5-fold cross
// validation, evaluates the baseline and prediction LERT models, and
// formats results side by side with the paper's published numbers.
//
// The same entry points back the lockstep-experiments CLI and the
// bench_test.go benchmark harness.
package experiments

import (
	"fmt"
	"math/rand"

	"lockstep/internal/dataset"
	"lockstep/internal/inject"
	"lockstep/internal/lockstep"
	"lockstep/internal/workload"
)

// Scale sizes a reproduction run. The paper's campaign (10M injections,
// two weeks of cluster time) corresponds to Full on a much bigger CPU;
// Small keeps tests and benchmarks fast; Default is a laptop-scale
// campaign with full flop coverage.
type Scale struct {
	Name           string
	Kernels        []string // empty = full suite
	RunCycles      int      // golden horizon per kernel
	FlopStride     int      // 1 = every flip-flop
	InjPerFlopKind int      // injections per (flop, kind, kernel)
	Seed           int64
	Workers        int  // campaign worker pool; 0 = runtime.NumCPU()
	Legacy         bool // dual-CPU oracle instead of golden-trace replay
	NoPrune        bool // disable static fault-equivalence pruning (same dataset, slower)
	// Mode is the lockstep organization the campaign sweeps (dcls,
	// slip:N or tmr) — a first-class experiment dimension: the same
	// injection plan re-run per mode answers whether the DSR->PTAR
	// correlation survives temporal slip and voting.
	Mode lockstep.Mode

	// Checkpoint, when non-empty, makes the campaign periodically persist
	// an atomic resumable checkpoint there (every CheckpointEvery
	// completed experiments; 0 = inject's default), and Resume continues a
	// previously interrupted campaign from it. The resumed dataset is
	// byte-identical to an uninterrupted run. See inject.Config.
	Checkpoint      string
	CheckpointEvery int
	Resume          bool
}

// WithWorkers returns a copy of the scale with the campaign worker count
// overridden. The campaign dataset is worker-count-invariant, so this only
// changes wall-clock time.
func (s Scale) WithWorkers(n int) Scale {
	s.Workers = n
	return s
}

// Predefined scales.
var (
	// Small: three kernels, every 6th flop — seconds. Used by tests and
	// benchmarks.
	Small = Scale{
		Name:           "small",
		Kernels:        []string{"ttsprk", "rspeed", "matrix"},
		RunCycles:      8000,
		FlopStride:     6,
		InjPerFlopKind: 1,
		Seed:           1,
	}
	// Default: full suite, full flop coverage — about a minute or two.
	Default = Scale{
		Name:           "default",
		RunCycles:      12000,
		FlopStride:     1,
		InjPerFlopKind: 1,
		Seed:           1,
	}
	// Full: full suite, full coverage, two intervals per (flop, kind) and
	// a longer horizon — several minutes.
	Full = Scale{
		Name:           "full",
		RunCycles:      20000,
		FlopStride:     1,
		InjPerFlopKind: 2,
		Seed:           1,
	}
)

// ScaleByName resolves a scale name.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "small":
		return Small, nil
	case "default", "":
		return Default, nil
	case "full":
		return Full, nil
	}
	return Scale{}, fmt.Errorf("experiments: unknown scale %q (small|default|full)", name)
}

// Config converts the scale to a campaign configuration.
func (s Scale) Config() inject.Config {
	return inject.Config{
		Kernels:               s.Kernels,
		RunCycles:             s.RunCycles,
		Intervals:             64,
		InjectionsPerFlopKind: s.InjPerFlopKind,
		FlopStride:            s.FlopStride,
		Seed:                  s.Seed,
		Workers:               s.Workers,
		Legacy:                s.Legacy,
		NoPrune:               s.NoPrune,
		Mode:                  s.Mode,
		CheckpointPath:        s.Checkpoint,
		CheckpointEvery:       s.CheckpointEvery,
		Resume:                s.Resume,
	}
}

// Context carries one campaign's data and the measured kernel timings; all
// experiments derive from it, so the expensive simulation work happens
// once.
type Context struct {
	Scale   Scale
	DS      *dataset.Dataset           // full experiment log (incl. masked)
	Timings map[string]workload.Timing // per-kernel restart/iteration cycles

	folds      []dataset.Fold
	restartMap map[string]int64
}

// NumFolds is the cross-validation arity (the paper uses 5-fold CV).
const NumFolds = 5

// NewContext runs the campaign and timing measurements for the scale.
// progress (optional) receives campaign progress.
func NewContext(s Scale, progress func(done, total int)) (*Context, error) {
	ctx, _, err := NewContextStats(s, progress)
	return ctx, err
}

// NewContextStats is NewContext plus the campaign's wall-clock and
// throughput accounting (experiments/sec across the worker pool).
func NewContextStats(s Scale, progress func(done, total int)) (*Context, inject.Stats, error) {
	cfg := s.Config()
	cfg.Progress = progress
	ds, st, err := inject.RunStats(cfg)
	if err != nil {
		return nil, st, err
	}
	ctx, err := NewContextFromData(s, ds)
	return ctx, st, err
}

// NewContextFromData builds a context around an existing dataset (e.g.
// loaded from a campaign log on disk).
func NewContextFromData(s Scale, ds *dataset.Dataset) (*Context, error) {
	c := &Context{Scale: s, DS: ds, Timings: map[string]workload.Timing{}}
	kernels := s.Kernels
	if len(kernels) == 0 {
		for _, k := range workload.Kernels() {
			kernels = append(kernels, k.Name)
		}
	}
	c.restartMap = map[string]int64{}
	for _, name := range kernels {
		k := workload.ByName(name)
		if k == nil {
			return nil, fmt.Errorf("experiments: unknown kernel %q", name)
		}
		tm, err := k.MeasureTiming(400000)
		if err != nil {
			return nil, err
		}
		c.Timings[name] = tm
		c.restartMap[name] = int64(tm.RestartCycles)
	}
	rng := rand.New(rand.NewSource(s.Seed + 100))
	c.folds = c.DS.Folds(rng, NumFolds)
	return c, nil
}

// Folds exposes the cross-validation folds (over the full log; training
// and baseline derivation use each fold's train split, evaluation its
// test split).
func (c *Context) Folds() []dataset.Fold { return c.folds }

// balancedTest returns fold fi's test split rebalanced to equal soft/hard
// error counts, matching the paper's dataset construction (see
// dataset.Balanced). Deterministic per fold.
func (c *Context) balancedTest(fi int) *dataset.Dataset {
	rng := rand.New(rand.NewSource(c.Scale.Seed + 7000 + int64(fi)))
	return c.folds[fi].Test.Balanced(rng)
}

// RestartMap returns the measured per-kernel restart penalties in cycles.
func (c *Context) RestartMap() map[string]int64 { return c.restartMap }
