package iss

import (
	"strings"
	"testing"

	"lockstep/internal/asm"
	"lockstep/internal/cpu"
	"lockstep/internal/mem"
)

func runISS(t *testing.T, src string, maxInstrs int) (*Machine, *mem.System) {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	sys := mem.NewSystem()
	if err := sys.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	m := New(sys, prog.Entry)
	if _, err := m.Run(maxInstrs); err != nil {
		t.Fatalf("trap: %v", err)
	}
	return m, sys
}

func TestBasicArithmetic(t *testing.T) {
	m, _ := runISS(t, `
        li   r1, 6
        li   r2, 7
        mul  r3, r1, r2
        sub  r4, r3, r1
        sltu r5, r1, r2
        halt
`, 100)
	if m.Regs[3] != 42 || m.Regs[4] != 36 || m.Regs[5] != 1 {
		t.Fatalf("regs: %v", m.Regs[:6])
	}
	if !m.Halted {
		t.Fatal("not halted")
	}
}

func TestR0Immutable(t *testing.T) {
	m, _ := runISS(t, `
        addi r0, r0, 99
        add  r1, r0, r0
        halt
`, 10)
	if m.Regs[0] != 0 || m.Regs[1] != 0 {
		t.Fatal("R0 written")
	}
}

func TestRDCYCExposesInstret(t *testing.T) {
	m, _ := runISS(t, `
        nop
        nop
        rdcyc r1
        halt
`, 10)
	if m.Regs[1] != 2 {
		t.Fatalf("rdcyc = %d, want instret 2", m.Regs[1])
	}
}

func TestTrapIllegal(t *testing.T) {
	prog := &asm.Program{Words: []uint32{0xFFFFFFFF}}
	sys := mem.NewSystem()
	if err := sys.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	m := New(sys, 0)
	if err := m.Step(); err == nil || !strings.Contains(err.Error(), "illegal") {
		t.Fatalf("want illegal trap, got %v", err)
	}
	if !m.Halted {
		t.Fatal("not halted after trap")
	}
}

func TestTrapMisaligned(t *testing.T) {
	prog := asm.MustAssemble("        li r1, 0x8002\n        lw r2, 0(r1)\n")
	sys := mem.NewSystem()
	if err := sys.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	m := New(sys, prog.Entry)
	_, err := m.Run(10)
	if err == nil || !strings.Contains(err.Error(), "misaligned") {
		t.Fatalf("want misaligned trap, got %v", err)
	}
}

func TestTrapBadFetch(t *testing.T) {
	prog := asm.MustAssemble("        li r1, 0x300000\n        jalr r0, r1, 0\n")
	sys := mem.NewSystem()
	if err := sys.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	m := New(sys, prog.Entry)
	_, err := m.Run(10)
	if err == nil || !strings.Contains(err.Error(), "fetch") {
		t.Fatalf("want fetch trap, got %v", err)
	}
}

func TestMPUProgrammingAndEnforcement(t *testing.T) {
	// Enable a region covering only 0x8000..0x8FFF; access outside traps.
	src := `
        .equ WIN, 0xF0000
        li   r1, WIN
        li   r2, 0x8000
        sw   r2, 0(r1)
        li   r2, 0x8FFF
        sw   r2, 4(r1)
        li   r2, 3
        sw   r2, 8(r1)
        li   r3, 0x8100
        li   r4, 77
        sw   r4, 0(r3)       ; allowed
        lw   r5, 0(r3)       ; allowed
        lw   r6, 8(r1)       ; system window always readable
        li   r3, 0x9000
        lw   r7, 0(r3)       ; denied -> trap
        halt
`
	prog := asm.MustAssemble(src)
	sys := mem.NewSystem()
	if err := sys.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	m := New(sys, prog.Entry)
	_, err := m.Run(100)
	if err == nil || !strings.Contains(err.Error(), "MPU") {
		t.Fatalf("want MPU trap, got %v", err)
	}
	if m.Regs[5] != 77 {
		t.Fatalf("allowed access failed: r5=%d", m.Regs[5])
	}
	if m.Regs[6] != 3 {
		t.Fatalf("MPU attr readback = %d, want 3", m.Regs[6])
	}
}

func TestMPUWriteProtection(t *testing.T) {
	src := `
        .equ WIN, 0xF0000
        li   r1, WIN
        sw   r0, 0(r1)         ; base 0
        li   r2, 0x3FFFF
        sw   r2, 4(r1)
        li   r2, 1             ; enabled, read-only
        sw   r2, 8(r1)
        lw   r3, 0x8000(r0)    ; read ok
        sw   r3, 0x8000(r0)    ; write denied
        halt
`
	prog := asm.MustAssemble(src)
	sys := mem.NewSystem()
	if err := sys.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	m := New(sys, prog.Entry)
	_, err := m.Run(100)
	if err == nil || !strings.Contains(err.Error(), "MPU denied store") {
		t.Fatalf("want MPU store trap, got %v", err)
	}
}

// TestMPUMirrorsCPUConstants guards the duplicated window constants
// against drift from the cpu package.
func TestMPUMirrorsCPUConstants(t *testing.T) {
	if cpuMPURegions != cpu.MPURegions {
		t.Fatalf("MPU regions: iss %d vs cpu %d", cpuMPURegions, cpu.MPURegions)
	}
	if mmioBase != cpu.MMIOBase || mmioEnd != cpu.MMIOEnd {
		t.Fatalf("MMIO window: iss [%#x,%#x) vs cpu [%#x,%#x)",
			mmioBase, mmioEnd, cpu.MMIOBase, cpu.MMIOEnd)
	}
}

func TestPeripheralAccess(t *testing.T) {
	m, sys := runISS(t, `
        li r1, 0x80000000
        lw r2, 0(r1)
        sw r2, 4(r1)
        halt
`, 20)
	if m.Regs[2] != mem.SensorValue(0x80000000) {
		t.Fatal("sensor value wrong")
	}
	if sys.Ext().Actuator[1] != m.Regs[2] {
		t.Fatal("actuator write lost")
	}
}

func TestRunStopsAtLimit(t *testing.T) {
	prog := asm.MustAssemble("loop:   j loop\n")
	sys := mem.NewSystem()
	if err := sys.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	m := New(sys, prog.Entry)
	n, err := m.Run(500)
	if err != nil || n != 500 || m.Halted {
		t.Fatalf("n=%d err=%v halted=%v", n, err, m.Halted)
	}
}

// TestAllOpcodes executes every SR32 opcode at least once at the
// architectural level, with checked results.
func TestAllOpcodes(t *testing.T) {
	m, sys := runISS(t, `
        .equ BUF, 0x8000
        li   r1, 12
        li   r2, 5
        add  r3, r1, r2      ; 17
        sub  r3, r3, r2      ; 12
        and  r4, r1, r2      ; 4
        or   r4, r4, r2      ; 5
        xor  r4, r4, r1      ; 9
        sll  r5, r2, r2      ; 160
        srl  r5, r5, r2      ; 5
        li   r6, -32
        sra  r6, r6, r2      ; -1
        slt  r7, r6, r2      ; 1
        sltu r8, r6, r2      ; 0 (0xFFFFFFFF > 5)
        mul  r9, r1, r2      ; 60
        mulh r10, r6, r6     ; high of 1 = 0
        div  r11, r9, r2     ; 12
        rem  r11, r9, r11    ; 0
        addi r11, r11, 3     ; 3
        andi r11, r11, 2     ; 2
        ori  r11, r11, 1     ; 3
        xori r11, r11, 2     ; 1
        slti r12, r11, 2     ; 1
        slli r12, r12, 4     ; 16
        srli r12, r12, 2     ; 4
        srai r12, r12, 1     ; 2
        lui  r13, 0x12345000
        li   r14, BUF
        sw   r3, 0(r14)
        lw   r3, 0(r14)
        sh   r3, 4(r14)
        lh   r5, 4(r14)
        lhu  r5, 4(r14)
        sb   r3, 8(r14)
        lb   r6, 8(r14)
        lbu  r6, 8(r14)
        beq  r0, r0, b1
        halt
b1:     bne  r1, r2, b2
        halt
b2:     blt  r2, r1, b3
        halt
b3:     bge  r1, r2, b4
        halt
b4:     bltu r2, r1, b5
        halt
b5:     bgeu r1, r2, b6
        halt
b6:     jal  r15, b7
dead:   halt
b7:     rdcyc r10
        jalr r0, r15, 12     ; r15 = dead; dead+12 is the final halt
        halt
`, 200)
	_ = sys
	if m.Regs[3] != 12 || m.Regs[4] != 9 || m.Regs[5] != 12 {
		t.Fatalf("alu results: r3=%d r4=%d r5=%d", m.Regs[3], m.Regs[4], m.Regs[5])
	}
	if m.Regs[9] != 60 || m.Regs[11] != 1 || m.Regs[12] != 2 {
		t.Fatalf("muldiv/imm: r9=%d r11=%d r12=%d", m.Regs[9], m.Regs[11], m.Regs[12])
	}
	if m.Regs[13] != 0x12345000&^0x3FF {
		t.Fatalf("lui: %#x", m.Regs[13])
	}
	if !m.Halted {
		t.Fatal("not halted")
	}
}
