// Package iss is a functional (instruction-level) SR32 simulator. It defines
// the architectural semantics the pipelined SR5 CPU model must match and is
// used as the reference in differential tests, as the engine behind the
// sr5-run tool, and for quick workload validation.
package iss

import (
	"fmt"

	"lockstep/internal/isa"
	"lockstep/internal/mem"
)

// Machine is the architectural state of an SR32 hart.
type Machine struct {
	Regs    [isa.NumRegs]uint32
	PC      uint32
	Bus     mem.Bus
	Halted  bool
	Instret uint64 // retired instruction count

	// MPU mirrors the SR5's system-register file (see cpu.State).
	MPUBase  [cpuMPURegions]uint32
	MPULimit [cpuMPURegions]uint32
	MPUAttr  [cpuMPURegions]uint8
}

// Constants mirroring the cpu package's system-register window; duplicated
// here so the architectural simulator stays independent of the
// microarchitectural model (a registry test cross-checks them).
const (
	cpuMPURegions = 8
	mmioBase      = 0x000F0000
	mmioEnd       = mmioBase + cpuMPURegions*16
)

func (m *Machine) mpuAllows(addr uint32, write bool) bool {
	any := false
	for i := 0; i < cpuMPURegions; i++ {
		attr := m.MPUAttr[i]
		if attr&1 == 0 {
			continue
		}
		any = true
		if addr >= m.MPUBase[i] && addr <= m.MPULimit[i] && (!write || attr&2 != 0) {
			return true
		}
	}
	return !any
}

func (m *Machine) mpuRead(addr uint32) uint32 {
	off := addr - mmioBase
	i := off / 16
	switch off % 16 {
	case 0:
		return m.MPUBase[i]
	case 4:
		return m.MPULimit[i]
	case 8:
		return uint32(m.MPUAttr[i] & 3)
	}
	return 0
}

func (m *Machine) mpuWrite(addr, data, mask uint32) {
	off := addr - mmioBase
	i := off / 16
	switch off % 16 {
	case 0:
		m.MPUBase[i] = m.MPUBase[i]&^mask | data&mask
	case 4:
		m.MPULimit[i] = m.MPULimit[i]&^mask | data&mask
	case 8:
		m.MPUAttr[i] = uint8((uint32(m.MPUAttr[i])&^mask | data&mask) & 3)
	}
}

// New returns a machine reset to entry, executing against bus.
func New(bus mem.Bus, entry uint32) *Machine {
	return &Machine{Bus: bus, PC: entry}
}

// Step executes one instruction. It returns an error for conditions that
// trap the pipelined CPU (illegal opcode, misaligned or out-of-range
// access, bad fetch address), leaving the machine halted.
func (m *Machine) Step() error {
	if m.Halted {
		return nil
	}
	if m.PC&3 != 0 || m.PC >= mem.RAMBytes {
		m.Halted = true
		return fmt.Errorf("iss: bad fetch address 0x%x", m.PC)
	}
	in := isa.Decode(m.Bus.ReadWord(m.PC))
	if in.Op == isa.OpInvalid {
		m.Halted = true
		return fmt.Errorf("iss: illegal instruction at 0x%x", m.PC)
	}
	next := m.PC + 4
	a := m.reg(in.Rs1)
	b := m.reg(in.Rs2)
	imm := uint32(in.Imm)

	switch in.Op {
	case isa.OpADD:
		m.set(in.Rd, a+b)
	case isa.OpSUB:
		m.set(in.Rd, a-b)
	case isa.OpAND:
		m.set(in.Rd, a&b)
	case isa.OpOR:
		m.set(in.Rd, a|b)
	case isa.OpXOR:
		m.set(in.Rd, a^b)
	case isa.OpSLL:
		m.set(in.Rd, a<<(b&31))
	case isa.OpSRL:
		m.set(in.Rd, a>>(b&31))
	case isa.OpSRA:
		m.set(in.Rd, uint32(int32(a)>>(b&31)))
	case isa.OpSLT:
		m.set(in.Rd, lt(int32(a) < int32(b)))
	case isa.OpSLTU:
		m.set(in.Rd, lt(a < b))
	case isa.OpMUL:
		m.set(in.Rd, uint32(int64(int32(a))*int64(int32(b))))
	case isa.OpMULH:
		m.set(in.Rd, uint32(uint64(int64(int32(a))*int64(int32(b)))>>32))
	case isa.OpDIV:
		m.set(in.Rd, div(a, b))
	case isa.OpREM:
		m.set(in.Rd, rem(a, b))
	case isa.OpADDI:
		m.set(in.Rd, a+imm)
	case isa.OpANDI:
		m.set(in.Rd, a&imm)
	case isa.OpORI:
		m.set(in.Rd, a|imm)
	case isa.OpXORI:
		m.set(in.Rd, a^imm)
	case isa.OpSLTI:
		m.set(in.Rd, lt(int32(a) < in.Imm))
	case isa.OpSLLI:
		m.set(in.Rd, a<<(imm&31))
	case isa.OpSRLI:
		m.set(in.Rd, a>>(imm&31))
	case isa.OpSRAI:
		m.set(in.Rd, uint32(int32(a)>>(imm&31)))
	case isa.OpLUI:
		m.set(in.Rd, imm)
	case isa.OpLW, isa.OpLH, isa.OpLHU, isa.OpLB, isa.OpLBU:
		v, err := m.load(in.Op, a+imm)
		if err != nil {
			return err
		}
		m.set(in.Rd, v)
	case isa.OpSW, isa.OpSH, isa.OpSB:
		if err := m.store(in.Op, a+imm, b); err != nil {
			return err
		}
	case isa.OpBEQ:
		next = m.branch(a == b, next, in.Imm)
	case isa.OpBNE:
		next = m.branch(a != b, next, in.Imm)
	case isa.OpBLT:
		next = m.branch(int32(a) < int32(b), next, in.Imm)
	case isa.OpBGE:
		next = m.branch(int32(a) >= int32(b), next, in.Imm)
	case isa.OpBLTU:
		next = m.branch(a < b, next, in.Imm)
	case isa.OpBGEU:
		next = m.branch(a >= b, next, in.Imm)
	case isa.OpJAL:
		m.set(in.Rd, next)
		next = uint32(int64(next) + int64(in.Imm)*4)
	case isa.OpJALR:
		m.set(in.Rd, next)
		next = (a + imm) &^ 3
	case isa.OpRDCYC:
		// The ISS has no cycle counter; expose instruction count, which is
		// deterministic at this abstraction. Differential tests avoid RDCYC.
		m.set(in.Rd, uint32(m.Instret))
	case isa.OpHALT:
		m.Halted = true
	}
	m.PC = next &^ 3
	m.Instret++
	return nil
}

// Run executes up to maxInstrs instructions, stopping at HALT or on a trap.
func (m *Machine) Run(maxInstrs int) (int, error) {
	for i := 0; i < maxInstrs; i++ {
		if m.Halted {
			return i, nil
		}
		if err := m.Step(); err != nil {
			return i, err
		}
	}
	return maxInstrs, nil
}

func (m *Machine) reg(r uint8) uint32 {
	if r&0xF == 0 {
		return 0
	}
	return m.Regs[r&0xF]
}

func (m *Machine) set(r uint8, v uint32) {
	if r&0xF != 0 {
		m.Regs[r&0xF] = v
	}
}

func (m *Machine) branch(taken bool, next uint32, imm int32) uint32 {
	if taken {
		return uint32(int64(next) + int64(imm)*4)
	}
	return next
}

func (m *Machine) load(op isa.Op, addr uint32) (uint32, error) {
	size := isa.MemBytes(op)
	if size > 1 && addr&(size-1) != 0 {
		m.Halted = true
		return 0, fmt.Errorf("iss: misaligned %s at 0x%x", op, addr)
	}
	var w uint32
	switch {
	case addr >= mmioBase && addr < mmioEnd:
		w = m.mpuRead(addr &^ 3)
	case !m.mpuAllows(addr, false):
		m.Halted = true
		return 0, fmt.Errorf("iss: MPU denied load at 0x%x", addr)
	case addr < mem.ExtBase && addr >= mem.RAMBytes:
		m.Halted = true
		return 0, fmt.Errorf("iss: bus fault load at 0x%x", addr)
	default:
		w = m.Bus.ReadWord(addr &^ 3)
	}
	v := w >> (8 * (addr & 3))
	switch op {
	case isa.OpLB:
		return uint32(int32(int8(v))), nil
	case isa.OpLBU:
		return v & 0xFF, nil
	case isa.OpLH:
		return uint32(int32(int16(v))), nil
	case isa.OpLHU:
		return v & 0xFFFF, nil
	default:
		return v, nil
	}
}

func (m *Machine) store(op isa.Op, addr, v uint32) error {
	size := isa.MemBytes(op)
	if size > 1 && addr&(size-1) != 0 {
		m.Halted = true
		return fmt.Errorf("iss: misaligned %s at 0x%x", op, addr)
	}
	off := addr & 3
	be := ((1 << size) - 1) << off
	mask := mem.ByteLaneMask(uint32(be))
	switch {
	case addr >= mmioBase && addr < mmioEnd:
		m.mpuWrite(addr&^3, v<<(8*off), mask)
	case !m.mpuAllows(addr, true):
		m.Halted = true
		return fmt.Errorf("iss: MPU denied store at 0x%x", addr)
	case addr < mem.ExtBase && addr >= mem.RAMBytes:
		m.Halted = true
		return fmt.Errorf("iss: bus fault store at 0x%x", addr)
	default:
		m.Bus.WriteMasked(addr&^3, v<<(8*off), mask)
	}
	return nil
}

func lt(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func div(a, b uint32) uint32 {
	if b == 0 {
		return 0xFFFF_FFFF
	}
	if a == 0x8000_0000 && b == 0xFFFF_FFFF {
		return 0x8000_0000
	}
	return uint32(int32(a) / int32(b))
}

func rem(a, b uint32) uint32 {
	if b == 0 {
		return a
	}
	if a == 0x8000_0000 && b == 0xFFFF_FFFF {
		return 0
	}
	return uint32(int32(a) % int32(b))
}
