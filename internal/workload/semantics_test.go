package workload

import (
	"testing"

	"lockstep/internal/cpu"
	"lockstep/internal/mem"
)

// runToHeartbeat executes a kernel on the cycle-accurate CPU until the
// heartbeat reaches n, returning the memory system for actuator checks.
func runToHeartbeat(t *testing.T, kernel string, n uint32) *mem.System {
	t.Helper()
	k := ByName(kernel)
	sys, entry, err := k.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.New(sys, entry)
	for i := 0; i < 2_000_000; i++ {
		c.StepCycle()
		if c.State.Trapped() {
			t.Fatalf("trap: cause=%d", c.State.ExcCause)
		}
		if sys.Ext().Actuator[DoneSlot] == n {
			return sys
		}
	}
	t.Fatalf("heartbeat %d not reached", n)
	return nil
}

const extBase = 0x80000000

// TestRSpeedSemantics re-implements the road-speed kernel in Go and checks
// the actuator output after N iterations — a semantic oracle independent
// of both simulators.
func TestRSpeedSemantics(t *testing.T) {
	const iters = 10
	sys := runToHeartbeat(t, "rspeed", iters)

	hist := [8]uint32{}
	for i := range hist {
		hist[i] = 1000
	}
	head := 0
	var speed uint32
	for it := uint32(1); it <= iters; it++ {
		addr := uint32(extBase) + (it&15)*4 + 0x600
		period := mem.SensorValue(addr)&8191 + 200
		hist[head] = period
		head = (head + 1) & 7
		var sum uint32
		for _, p := range hist {
			sum += p
		}
		avg := int32(sum) >> 3
		speed = uint32(1000000 / avg)
	}
	if got := sys.Ext().Actuator[16/4]; got != speed {
		t.Fatalf("speed actuator = %d, reference model says %d", got, speed)
	}
}

// TestPUWModSemantics checks the PWM kernel's duty-cycle outputs against a
// direct Go computation.
func TestPUWModSemantics(t *testing.T) {
	const iters = 7
	sys := runToHeartbeat(t, "puwmod", iters)

	addr := uint32(extBase) + (uint32(iters)&31)*4 + 0xC00
	duty := (mem.SensorValue(addr) >> 1) % 100
	if got := sys.Ext().Actuator[36/4]; got != duty {
		t.Fatalf("duty actuator = %d, want %d", got, duty)
	}
	if got := sys.Ext().Actuator[40/4]; got != duty*100 {
		t.Fatalf("scaled duty actuator = %d, want %d", got, duty*100)
	}
}

// TestTblookSemantics checks the table-lookup kernel's interpolated value
// against a direct Go re-implementation of the same table and scan.
func TestTblookSemantics(t *testing.T) {
	const iters = 9
	sys := runToHeartbeat(t, "tblook", iters)

	key := func(i int32) int32 { return 4*i*i + i }
	val := func(i int32) int32 { return 10000 - 3*i*i }

	x := int32(mem.SensorValue(uint32(extBase)+(uint32(iters)&31)*4+0x800) & 4095)
	idx := int32(0)
	for idx < 31 && key(idx) < x {
		idx++
	}
	var want int32
	if idx == 0 {
		want = val(0)
	} else {
		k0, v0 := key(idx-1), val(idx-1)
		k1, v1 := key(idx), val(idx)
		want = v0 + (v1-v0)*(x-k0)/(k1-k0+1)
	}
	if got := int32(sys.Ext().Actuator[24/4]); got != want {
		t.Fatalf("tblook actuator = %d, reference model says %d (x=%d idx=%d)",
			got, want, x, idx)
	}
}

// TestMatrixSemantics checks the 6x6 matrix kernel's checksum against a Go
// matrix multiply with the same fill pattern.
func TestMatrixSemantics(t *testing.T) {
	const iters = 3
	sys := runToHeartbeat(t, "matrix", iters)

	var a, b [36]int32
	for i := int32(0); i < 36; i++ {
		a[i] = i*i + 3
		b[i] = 2*i*i + 7
	}
	a[0] = iters // the kernel perturbs A[0] with the iteration count
	var sum int32
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			var acc int32
			for k := 0; k < 6; k++ {
				acc += a[i*6+k] * b[k*6+j]
			}
			sum += acc
		}
	}
	if got := int32(sys.Ext().Actuator[44/4]); got != sum {
		t.Fatalf("matrix checksum = %d, reference model says %d", got, sum)
	}
}
