package workload

import (
	"testing"

	"lockstep/internal/cpu"
	"lockstep/internal/iss"
)

func TestSuiteShape(t *testing.T) {
	ks := Kernels()
	if len(ks) != 13 {
		t.Fatalf("suite has %d kernels, want 13", len(ks))
	}
	seen := map[string]bool{}
	for _, k := range ks {
		if k.Name == "" || k.Description == "" {
			t.Errorf("kernel %q missing metadata", k.Name)
		}
		if seen[k.Name] {
			t.Errorf("duplicate kernel name %q", k.Name)
		}
		seen[k.Name] = true
		if ByName(k.Name) != k {
			t.Errorf("ByName(%q) did not return the kernel", k.Name)
		}
	}
	if ByName("nosuch") != nil {
		t.Error("ByName of unknown kernel should be nil")
	}
}

func TestKernelsAssemble(t *testing.T) {
	for _, k := range Kernels() {
		if _, err := k.Program(); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
	}
}

// TestKernelsRunCleanOnISS checks every kernel executes without traps and
// produces outer-loop heartbeats at the architectural level.
func TestKernelsRunCleanOnISS(t *testing.T) {
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			sys, entry, err := k.NewSystem()
			if err != nil {
				t.Fatal(err)
			}
			m := iss.New(sys, entry)
			if _, err := m.Run(120000); err != nil {
				t.Fatalf("trap: %v", err)
			}
			if m.Halted {
				t.Fatal("kernel halted; outer loop must run forever")
			}
			if beats := sys.Ext().Actuator[DoneSlot]; beats < 3 {
				t.Fatalf("only %d heartbeats after 120k instructions", beats)
			}
		})
	}
}

// TestKernelsPipelineMatchesISS compares the ordered actuator write stream
// of the pipelined CPU against the functional simulator for every kernel —
// a kernel-level differential test of the whole machine.
func TestKernelsPipelineMatchesISS(t *testing.T) {
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			sysI, entry, err := k.NewSystem()
			if err != nil {
				t.Fatal(err)
			}
			sysC, _, err := k.NewSystem()
			if err != nil {
				t.Fatal(err)
			}
			sysI.Ext().TraceCap = 300
			sysC.Ext().TraceCap = 300

			m := iss.New(sysI, entry)
			if _, err := m.Run(200000); err != nil {
				t.Fatalf("iss trap: %v", err)
			}
			c := cpu.New(sysC, entry)
			for i := 0; i < 300000 && len(sysC.Ext().TraceLog) < 300; i++ {
				c.StepCycle()
			}
			if c.State.Trapped() {
				t.Fatalf("cpu trapped: cause=%d epc=%#x", c.State.ExcCause, c.State.EPC)
			}

			ti, tc := sysI.Ext().TraceLog, sysC.Ext().TraceLog
			n := len(ti)
			if len(tc) < n {
				n = len(tc)
			}
			if n < 20 {
				t.Fatalf("too few actuator writes to compare: iss=%d cpu=%d", len(ti), len(tc))
			}
			for i := 0; i < n; i++ {
				if ti[i] != tc[i] {
					t.Fatalf("actuator write %d differs: iss=%+v cpu=%+v", i, ti[i], tc[i])
				}
			}
		})
	}
}

// TestMeasureTiming verifies restart and iteration latencies are measurable
// and non-degenerate, and logs them (these feed Table II's restart range).
func TestMeasureTiming(t *testing.T) {
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			tm, err := k.MeasureTiming(400000)
			if err != nil {
				t.Fatal(err)
			}
			if tm.RestartCycles <= 0 || tm.IterationCycles <= 0 {
				t.Fatalf("degenerate timing: %+v", tm)
			}
			// Restart includes init plus one iteration; for kernels with no
			// init phase the first iteration's data may be cheaper than
			// steady state, so allow modest slack.
			if tm.RestartCycles < tm.IterationCycles/2 {
				t.Fatalf("restart (%d) implausibly below iteration period (%d)",
					tm.RestartCycles, tm.IterationCycles)
			}
			t.Logf("%s: restart=%d cyc, iteration=%d cyc", k.Name, tm.RestartCycles, tm.IterationCycles)
		})
	}
}

// TestHeartbeatMonotone: the DONE heartbeat strictly increments by one per
// outer-loop iteration on every kernel.
func TestHeartbeatMonotone(t *testing.T) {
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			sys, entry, err := k.NewSystem()
			if err != nil {
				t.Fatal(err)
			}
			c := cpu.New(sys, entry)
			last := uint32(0)
			for i := 0; i < 100000 && last < 5; i++ {
				c.StepCycle()
				hb := sys.Ext().Actuator[DoneSlot]
				if hb != last {
					if hb != last+1 {
						t.Fatalf("heartbeat jumped %d -> %d", last, hb)
					}
					last = hb
				}
			}
			if last < 5 {
				t.Fatalf("only %d heartbeats in 100k cycles", last)
			}
		})
	}
}
