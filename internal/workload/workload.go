// Package workload provides the benchmark kernels the fault-injection
// campaigns run: nine automotive kernels modelled on the EEMBC AutoBench
// suite the paper uses (tooth-to-spark, road-speed calculation, angle to
// time, FIR filtering, table lookup with interpolation, bit manipulation,
// CAN remote-data-request handling, pulse-width modulation and matrix
// arithmetic). Each kernel is written in SR32 assembly, initialises its
// tables, then enters an infinite outer loop — exactly the continuous-loop
// structure the paper describes — reading "operating conditions" from the
// deterministic external sensor region and writing results to the actuator
// region through the BIU.
//
// Conventions shared by all kernels:
//   - r13 holds the external peripheral base (0x8000_0000)
//   - r12 holds the outer-loop iteration counter
//   - each outer iteration ends with a store of r12 to DONE
//     (peripheral offset 0x100, actuator slot 0), the heartbeat used to
//     measure per-iteration and restart latencies
//   - actuator result slots use offsets 0x004..0x0FC
package workload

import (
	"fmt"
	"sync"

	"lockstep/internal/asm"
	"lockstep/internal/cpu"
	"lockstep/internal/mem"
)

// DoneOffset is the peripheral byte offset of the iteration heartbeat.
const DoneOffset = 0x100

// DoneSlot is the actuator ring slot the heartbeat lands in.
const DoneSlot = (DoneOffset / 4) % mem.ExtActuatorWords

// Kernel is one benchmark program.
type Kernel struct {
	Name        string
	Description string
	Source      string

	once sync.Once
	prog *asm.Program
	err  error
}

// Preamble is prepended to every kernel: it programs the CPU's memory
// protection unit the way an ECU boot loader would — region 0 covers the
// tightly-coupled RAM, region 1 the external peripheral window — so the
// MPU's configuration registers carry live state during the campaign.
const Preamble = `
        .equ MPUWIN, 0xF0000
        li   r1, MPUWIN
        li   r2, 0
        sw   r2, 0(r1)         ; region 0 base: RAM bottom
        li   r2, 0x3FFFF
        sw   r2, 4(r1)         ; region 0 limit: RAM top
        li   r2, 3
        sw   r2, 8(r1)         ; region 0: enabled, writable
        li   r2, 0x80000000
        sw   r2, 16(r1)        ; region 1 base: peripheral window
        li   r2, -1
        sw   r2, 20(r1)        ; region 1 limit: top of address space
        li   r2, 3
        sw   r2, 24(r1)        ; region 1: enabled, writable
`

// Program assembles the kernel (once), with the MPU preamble, and returns
// the image.
func (k *Kernel) Program() (*asm.Program, error) {
	k.once.Do(func() { k.prog, k.err = asm.Assemble(Preamble + k.Source) })
	if k.err != nil {
		return nil, fmt.Errorf("workload %s: %w", k.Name, k.err)
	}
	return k.prog, nil
}

// NewSystem returns a fresh memory system loaded with the kernel.
func (k *Kernel) NewSystem() (*mem.System, uint32, error) {
	prog, err := k.Program()
	if err != nil {
		return nil, 0, err
	}
	sys := mem.NewSystem()
	if err := sys.LoadProgram(prog); err != nil {
		return nil, 0, err
	}
	return sys, prog.Entry, nil
}

// Timing characterises a kernel's golden execution.
type Timing struct {
	RestartCycles   int // reset to first completed outer iteration
	IterationCycles int // steady-state cycles per outer iteration
}

// MeasureTiming runs the kernel on a golden CPU and measures the restart
// latency (cycles from reset to the first heartbeat, the paper's "delay in
// resetting the CPUs and restarting the outer loop") and the steady-state
// iteration period.
func (k *Kernel) MeasureTiming(maxCycles int) (Timing, error) {
	sys, entry, err := k.NewSystem()
	if err != nil {
		return Timing{}, err
	}
	c := cpu.New(sys, entry)
	var t Timing
	firstBeat, lastBeat, beats := 0, 0, uint32(0)
	for cyc := 1; cyc <= maxCycles; cyc++ {
		c.StepCycle()
		if c.State.Trapped() {
			return Timing{}, fmt.Errorf("workload %s: trapped cause=%d epc=%#x",
				k.Name, c.State.ExcCause, c.State.EPC)
		}
		if hb := sys.Ext().Actuator[DoneSlot]; hb != beats {
			beats = hb
			if firstBeat == 0 {
				firstBeat = cyc
			}
			lastBeat = cyc
			if beats >= 5 {
				break
			}
		}
	}
	if beats < 2 {
		return Timing{}, fmt.Errorf("workload %s: only %d heartbeats in %d cycles",
			k.Name, beats, maxCycles)
	}
	t.RestartCycles = firstBeat
	t.IterationCycles = (lastBeat - firstBeat) / int(beats-1)
	return t, nil
}

// Kernels returns the full benchmark suite in canonical order.
func Kernels() []*Kernel { return allKernels }

// ByName returns the named kernel, or nil.
func ByName(name string) *Kernel {
	for _, k := range allKernels {
		if k.Name == name {
			return k
		}
	}
	return nil
}
