package workload

// The nine kernel sources. Each mirrors the role of an EEMBC AutoBench
// kernel (Section IV-A of the paper): automotive control and signal
// processing loops that run continuously, reading operating conditions as
// inputs and producing actuator outputs every outer-loop iteration.

var allKernels = []*Kernel{
	{
		Name:        "ttsprk",
		Description: "tooth-to-spark: spark-advance table interpolation and fuel injector duration",
		Source: `
        .equ EXT,  0x80000000
        .equ DONE, 0x100
        .equ TBL,  0x4000
        ; Build the spark-advance table: adv[i] = 5 + 3*i - i*i/8, 17 entries.
        li   r1, TBL
        li   r2, 0
        li   r3, 17
t1:     mul  r4, r2, r2
        srai r5, r4, 3
        li   r6, 3
        mul  r6, r2, r6
        addi r7, r6, 5
        sub  r7, r7, r5
        sw   r7, 0(r1)
        addi r1, r1, 4
        inc  r2
        bne  r2, r3, t1
        li   r13, EXT
        li   r12, 0
outer:  inc  r12
        ; Engine speed sensor, varying with the iteration.
        andi r1, r12, 31
        slli r1, r1, 2
        add  r2, r13, r1
        lw   r3, 0x40(r2)
        li   r4, 8191
        and  r3, r3, r4        ; rpm in 0..8191
        ; Interpolate advance: index = rpm>>9, fraction = (rpm>>5)&15.
        srli r5, r3, 9
        slli r6, r5, 2
        li   r7, TBL
        add  r7, r7, r6
        lw   r8, 0(r7)
        lw   r9, 4(r7)
        sub  r10, r9, r8
        srli r11, r3, 5
        andi r11, r11, 15
        mul  r10, r10, r11
        srai r10, r10, 4
        add  r8, r8, r10
        sw   r8, 4(r13)        ; ignition timing actuator
        ; Fuel injector duration = load * 5000 / (rpm+1).
        lw   r9, 0x80(r2)
        andi r9, r9, 1023
        li   r10, 5000
        mul  r9, r9, r10
        addi r11, r3, 1
        div  r9, r9, r11
        sw   r9, 8(r13)        ; injector duration actuator
        sw   r12, DONE(r13)
        j    outer
`,
	},
	{
		Name:        "a2time",
		Description: "angle to time: crank-angle to tooth-time conversion with IIR smoothing",
		Source: `
        .equ EXT,  0x80000000
        .equ DONE, 0x100
        .equ ACC,  0x4800
        sw   r0, ACC(r0)
        li   r13, EXT
        li   r12, 0
outer:  inc  r12
        andi r1, r12, 63
        slli r1, r1, 2
        add  r1, r13, r1
        lw   r2, 0x200(r1)
        andi r2, r2, 16383
        addi r2, r2, 1         ; crank angle 1..16384
        lw   r3, 0x400(r1)
        andi r3, r3, 4095
        addi r3, r3, 100       ; rpm 100..4195
        ; tooth time = angle * 60000 / (rpm * 360)
        li   r4, 60000
        mul  r5, r2, r4
        li   r6, 360
        mul  r7, r3, r6
        div  r8, r5, r7
        ; IIR smoothing: acc = (7*acc + t) / 8
        lw   r9, ACC(r0)
        slli r10, r9, 3
        sub  r10, r10, r9
        add  r10, r10, r8
        srai r10, r10, 3
        sw   r10, ACC(r0)
        sw   r10, 4(r13)
        ; residual jitter
        rem  r11, r5, r7
        sw   r11, 8(r13)
        sw   r12, DONE(r13)
        j    outer
`,
	},
	{
		Name:        "rspeed",
		Description: "road speed calculation: pulse-period moving average and reciprocal",
		Source: `
        .equ EXT,  0x80000000
        .equ DONE, 0x100
        .equ HIST, 0x4C00
        .equ HEAD, 0x4C20
        ; Seed the 8-entry period history.
        li   r1, HIST
        li   r2, 8
        li   r3, 1000
h1:     sw   r3, 0(r1)
        addi r1, r1, 4
        dec  r2
        bne  r2, r0, h1
        sw   r0, HEAD(r0)
        li   r13, EXT
        li   r12, 0
outer:  inc  r12
        andi r1, r12, 15
        slli r1, r1, 2
        add  r1, r13, r1
        lw   r2, 0x600(r1)
        andi r2, r2, 8191
        addi r2, r2, 200       ; pulse period 200..8391
        ; history[head] = period; head = (head+1) & 7
        lw   r3, HEAD(r0)
        slli r4, r3, 2
        li   r5, HIST
        add  r5, r5, r4
        sw   r2, 0(r5)
        addi r3, r3, 1
        andi r3, r3, 7
        sw   r3, HEAD(r0)
        ; 8-entry average
        li   r5, HIST
        li   r6, 8
        li   r7, 0
a1:     lw   r8, 0(r5)
        add  r7, r7, r8
        addi r5, r5, 4
        dec  r6
        bne  r6, r0, a1
        srai r7, r7, 3
        ; speed = 1000000 / average period
        li   r8, 1000000
        div  r9, r8, r7
        sw   r9, 16(r13)
        sw   r12, DONE(r13)
        j    outer
`,
	},
	{
		Name:        "aifirf",
		Description: "FIR filter: 16-tap integer filter over a circular sample buffer",
		Source: `
        .equ EXT,  0x80000000
        .equ DONE, 0x100
        .equ COEF, 0x5000
        .equ SAMP, 0x5100
        .equ SPTR, 0x5300
        ; Coefficients: c[i] = (i+1)*(16-i).
        li   r1, COEF
        li   r2, 0
c1:     addi r3, r2, 1
        li   r4, 16
        sub  r4, r4, r2
        mul  r3, r3, r4
        sw   r3, 0(r1)
        addi r1, r1, 4
        inc  r2
        li   r4, 16
        bne  r2, r4, c1
        ; Zero the 64-sample circular buffer.
        li   r1, SAMP
        li   r2, 64
z1:     sw   r0, 0(r1)
        addi r1, r1, 4
        dec  r2
        bne  r2, r0, z1
        sw   r0, SPTR(r0)
        li   r13, EXT
        li   r12, 0
outer:  inc  r12
        li   r11, 8            ; samples per iteration
s1:     lw   r1, SPTR(r0)
        slli r2, r1, 2
        andi r3, r2, 252
        add  r3, r13, r3
        lw   r4, 0x700(r3)
        slli r4, r4, 16
        srai r4, r4, 16        ; 16-bit signed sample
        li   r5, SAMP
        add  r5, r5, r2
        sw   r4, 0(r5)
        ; y = sum over 16 taps of c[k] * samp[(ptr-k) & 63]
        li   r6, 0
        li   r7, 0
m1:     sub  r8, r1, r6
        andi r8, r8, 63
        slli r8, r8, 2
        li   r9, SAMP
        add  r9, r9, r8
        lw   r9, 0(r9)
        slli r10, r6, 2
        li   r14, COEF
        add  r10, r10, r14
        lw   r10, 0(r10)
        mul  r9, r9, r10
        add  r7, r7, r9
        inc  r6
        li   r14, 16
        bne  r6, r14, m1
        srai r7, r7, 7
        sw   r7, 20(r13)
        addi r1, r1, 1
        andi r1, r1, 63
        sw   r1, SPTR(r0)
        dec  r11
        bne  r11, r0, s1
        sw   r12, DONE(r13)
        j    outer
`,
	},
	{
		Name:        "tblook",
		Description: "table lookup and interpolation: monotone key scan with linear interpolation",
		Source: `
        .equ EXT,  0x80000000
        .equ DONE, 0x100
        .equ TBL,  0x5400
        ; 32 entries of (key, value): key = 4*i*i + i, value = 10000 - 3*i*i.
        li   r1, TBL
        li   r2, 0
b1:     mul  r3, r2, r2
        slli r3, r3, 2
        add  r3, r3, r2
        sw   r3, 0(r1)
        mul  r4, r2, r2
        li   r5, 3
        mul  r4, r4, r5
        li   r5, 10000
        sub  r4, r5, r4
        sw   r4, 4(r1)
        addi r1, r1, 8
        inc  r2
        li   r5, 32
        bne  r2, r5, b1
        li   r13, EXT
        li   r12, 0
outer:  inc  r12
        andi r1, r12, 31
        slli r1, r1, 2
        add  r1, r13, r1
        lw   r2, 0x800(r1)
        li   r3, 4095
        and  r2, r2, r3        ; lookup key
        ; Scan for the first entry with key >= x.
        li   r3, TBL
        li   r4, 0
sc:     lw   r5, 0(r3)
        bge  r5, r2, found
        addi r3, r3, 8
        inc  r4
        li   r6, 31
        bne  r4, r6, sc
found:  beq  r4, r0, nolerp
        lw   r5, 0(r3)
        lw   r6, 4(r3)
        lw   r7, -8(r3)
        lw   r8, -4(r3)
        sub  r9, r5, r7        ; dk
        sub  r10, r6, r8       ; dv
        sub  r11, r2, r7       ; x - k0
        mul  r10, r10, r11
        addi r9, r9, 1
        div  r10, r10, r9
        add  r8, r8, r10
        sw   r8, 24(r13)
        j    lend
nolerp: lw   r6, 4(r3)
        sw   r6, 24(r13)
lend:   sw   r12, DONE(r13)
        j    outer
`,
	},
	{
		Name:        "bitmnp",
		Description: "bit manipulation: bit reversal and population count over sensor words",
		Source: `
        .equ EXT,  0x80000000
        .equ DONE, 0x100
        li   r13, EXT
        li   r12, 0
outer:  inc  r12
        li   r11, 8            ; words per iteration
        li   r10, 0            ; checksum
w1:     add  r2, r12, r11
        andi r2, r2, 63
        slli r2, r2, 2
        add  r2, r13, r2
        lw   r3, 0x900(r2)
        ; Bit-reverse r3 into r4.
        li   r4, 0
        li   r5, 32
rv:     slli r4, r4, 1
        andi r6, r3, 1
        or   r4, r4, r6
        srli r3, r3, 1
        dec  r5
        bne  r5, r0, rv
        ; Population count (Kernighan).
        li   r6, 0
        mv   r7, r4
pc:     beq  r7, r0, pcd
        addi r8, r7, -1
        and  r7, r7, r8
        inc  r6
        j    pc
pcd:    xor  r10, r10, r4
        add  r10, r10, r6
        dec  r11
        bne  r11, r0, w1
        sw   r10, 28(r13)
        sw   r12, DONE(r13)
        j    outer
`,
	},
	{
		Name:        "canrdr",
		Description: "CAN remote data request: frame ID extraction, filter match, mailbox byte stores",
		Source: `
        .equ EXT,  0x80000000
        .equ DONE, 0x100
        .equ FILT, 0x5800
        .equ MBOX, 0x5900
        ; Filters 0..7 match the low 3 bits of the frame ID.
        li   r1, FILT
        li   r2, 0
f1:     sw   r2, 0(r1)
        addi r1, r1, 4
        inc  r2
        li   r4, 8
        bne  r2, r4, f1
        li   r13, EXT
        li   r12, 0
outer:  inc  r12
        li   r11, 8            ; frames per iteration
g1:     add  r1, r12, r11
        andi r1, r1, 63
        slli r1, r1, 2
        add  r1, r13, r1
        lw   r2, 0xA00(r1)     ; frame header
        lw   r3, 0xB00(r1)     ; payload word
        srli r4, r2, 21        ; 11-bit identifier
        andi r4, r4, 7         ; filter class
        ; Scan the filter table.
        li   r5, FILT
        li   r6, 0
cm:     lw   r7, 0(r5)
        beq  r7, r4, hit
        addi r5, r5, 4
        inc  r6
        li   r8, 8
        bne  r6, r8, cm
        j    nxt
hit:    ; Store payload bytes plus header into mailbox r6.
        slli r8, r6, 3
        li   r9, MBOX
        add  r9, r9, r8
        sb   r3, 0(r9)
        srli r10, r3, 8
        sb   r10, 1(r9)
        srli r10, r3, 16
        sb   r10, 2(r9)
        srli r10, r3, 24
        sb   r10, 3(r9)
        sw   r2, 4(r9)
nxt:    dec  r11
        bne  r11, r0, g1
        ; Mailbox checksum to the actuator.
        li   r1, MBOX
        li   r2, 16
        li   r3, 0
ck:     lw   r4, 0(r1)
        add  r3, r3, r4
        addi r1, r1, 4
        dec  r2
        bne  r2, r0, ck
        sw   r3, 32(r13)
        sw   r12, DONE(r13)
        j    outer
`,
	},
	{
		Name:        "puwmod",
		Description: "pulse width modulation: duty-cycle tracking over a 100-step PWM period",
		Source: `
        .equ EXT,  0x80000000
        .equ DONE, 0x100
        li   r13, EXT
        li   r12, 0
outer:  inc  r12
        andi r1, r12, 31
        slli r1, r1, 2
        add  r1, r13, r1
        lw   r2, 0xC00(r1)
        srli r2, r2, 1
        li   r3, 100
        rem  r2, r2, r3        ; duty 0..99
        ; Count high phases across one PWM period.
        li   r4, 0
        li   r5, 0
pw:     slt  r6, r4, r2
        add  r5, r5, r6
        inc  r4
        li   r7, 100
        bne  r4, r7, pw
        sw   r5, 36(r13)
        mul  r8, r5, r3
        sw   r8, 40(r13)
        sw   r12, DONE(r13)
        j    outer
`,
	},
	{
		Name:        "matrix",
		Description: "matrix arithmetic: 6x6 integer multiply with checksum",
		Source: `
        .equ EXT,  0x80000000
        .equ DONE, 0x100
        .equ MA,   0x6000
        .equ MB,   0x6100
        .equ MC,   0x6200
        ; Fill A and B with a quadratic pattern.
        li   r1, MA
        li   r2, 0
        li   r3, 36
q1:     mul  r4, r2, r2
        addi r4, r4, 3
        sw   r4, 0(r1)
        addi r1, r1, 4
        inc  r2
        bne  r2, r3, q1
        li   r1, MB
        li   r2, 0
q2:     mul  r4, r2, r2
        slli r4, r4, 1
        addi r4, r4, 7
        sw   r4, 0(r1)
        addi r1, r1, 4
        inc  r2
        bne  r2, r3, q2
        li   r13, EXT
        li   r12, 0
outer:  inc  r12
        ; Perturb A[0] so iterations differ.
        li   r1, MA
        sw   r12, 0(r1)
        ; C = A * B (6x6).
        li   r2, 0             ; i
mi:     li   r3, 0             ; j
mj:     li   r4, 0             ; k
        li   r5, 0             ; acc
mk:     slli r6, r2, 1
        add  r6, r6, r2        ; 3i
        slli r6, r6, 1         ; 6i
        add  r6, r6, r4
        slli r6, r6, 2
        li   r7, MA
        add  r7, r7, r6
        lw   r8, 0(r7)
        slli r9, r4, 1
        add  r9, r9, r4        ; 3k
        slli r9, r9, 1         ; 6k
        add  r9, r9, r3
        slli r9, r9, 2
        li   r10, MB
        add  r10, r10, r9
        lw   r11, 0(r10)
        mul  r8, r8, r11
        add  r5, r5, r8
        inc  r4
        li   r14, 6
        bne  r4, r14, mk
        slli r6, r2, 1
        add  r6, r6, r2
        slli r6, r6, 1
        add  r6, r6, r3
        slli r6, r6, 2
        li   r7, MC
        add  r7, r7, r6
        sw   r5, 0(r7)
        inc  r3
        bne  r3, r14, mj
        inc  r2
        bne  r2, r14, mi
        ; Checksum C.
        li   r1, MC
        li   r2, 36
        li   r3, 0
ck:     lw   r4, 0(r1)
        add  r3, r3, r4
        addi r1, r1, 4
        dec  r2
        bne  r2, r0, ck
        sw   r3, 44(r13)
        sw   r12, DONE(r13)
        j    outer
`,
	},
	{
		Name:        "iirflt",
		Description: "IIR filter: four cascaded integer biquad sections over sensor samples",
		Source: `
        .equ EXT,  0x80000000
        .equ DONE, 0x100
        .equ ST,   0x6800
        ; Zero the biquad state (z1, z2 per section).
        li   r1, ST
        li   r2, 8
z1:     sw   r0, 0(r1)
        addi r1, r1, 4
        dec  r2
        bne  r2, r0, z1
        li   r13, EXT
        li   r12, 0
outer:  inc  r12
        andi r1, r12, 63
        slli r1, r1, 2
        add  r1, r13, r1
        lw   r2, 0xD00(r1)
        slli r2, r2, 16
        srai r2, r2, 16        ; 16-bit signed input sample
        ; Four cascaded direct-form-II biquads with small integer
        ; coefficients; each section's output is clamped to 16 bits.
        li   r3, ST
        li   r4, 4
bq:     lw   r5, 0(r3)         ; z1
        lw   r6, 4(r3)         ; z2
        li   r7, 13
        mul  r7, r7, r2
        add  r7, r7, r5
        srai r7, r7, 4         ; y = (13x + z1) >> 4
        slli r7, r7, 16
        srai r7, r7, 16        ; clamp to 16 bits
        li   r8, 7
        mul  r8, r8, r2
        add  r8, r8, r6
        li   r9, 11
        mul  r9, r9, r7
        sub  r8, r8, r9
        sw   r8, 0(r3)         ; z1' = 7x + z2 - 11y
        li   r9, 3
        mul  r9, r9, r2
        li   r10, 5
        mul  r10, r10, r7
        sub  r9, r9, r10
        sw   r9, 4(r3)         ; z2' = 3x - 5y
        mv   r2, r7            ; cascade
        addi r3, r3, 8
        dec  r4
        bne  r4, r0, bq
        sw   r2, 48(r13)
        sw   r12, DONE(r13)
        j    outer
`,
	},
	{
		Name:        "pntrch",
		Description: "pointer chase: linked-node traversal with data-dependent loads",
		Source: `
        .equ EXT,  0x80000000
        .equ DONE, 0x100
        .equ LIST, 0x7000
        ; Build 64 nodes of (next, value); next = &LIST[(17*i + 5) & 63].
        li   r1, 0
b1:     slli r2, r1, 3
        li   r3, LIST
        add  r3, r3, r2
        li   r4, 17
        mul  r4, r1, r4
        addi r4, r4, 5
        andi r4, r4, 63
        slli r4, r4, 3
        li   r5, LIST
        add  r5, r5, r4
        sw   r5, 0(r3)
        mul  r6, r1, r1
        sw   r6, 4(r3)
        inc  r1
        li   r7, 64
        bne  r1, r7, b1
        li   r13, EXT
        li   r12, 0
outer:  inc  r12
        ; Start node varies with the iteration.
        andi r1, r12, 63
        slli r1, r1, 3
        li   r2, LIST
        add  r1, r2, r1
        li   r2, 0             ; checksum
        li   r3, 48            ; hops
h1:     lw   r4, 4(r1)
        add  r2, r2, r4
        lw   r1, 0(r1)         ; data-dependent next pointer
        dec  r3
        bne  r3, r0, h1
        sw   r2, 52(r13)
        sw   r12, DONE(r13)
        j    outer
`,
	},
	{
		Name:        "idctrn",
		Description: "integer transform: 8x8 coefficient matrix times a sensor vector",
		Source: `
        .equ EXT,  0x80000000
        .equ DONE, 0x100
        .equ COEF, 0x7400
        .equ VEC,  0x7600
        ; Coefficient matrix c[i][j] = ((i+1)*(j+2)) % 16 - 8.
        li   r1, 0             ; i
c1:     li   r2, 0             ; j
c2:     addi r3, r1, 1
        addi r4, r2, 2
        mul  r3, r3, r4
        andi r3, r3, 15
        addi r3, r3, -8
        slli r4, r1, 3
        add  r4, r4, r2
        slli r4, r4, 2
        li   r5, COEF
        add  r5, r5, r4
        sw   r3, 0(r5)
        inc  r2
        li   r6, 8
        bne  r2, r6, c2
        inc  r1
        bne  r1, r6, c1
        li   r13, EXT
        li   r12, 0
outer:  inc  r12
        ; Load the 8-element input vector from the sensors.
        li   r1, 0
v1:     add  r2, r12, r1
        andi r2, r2, 63
        slli r2, r2, 2
        add  r2, r13, r2
        lw   r3, 0xE00(r2)
        slli r3, r3, 20
        srai r3, r3, 20        ; 12-bit signed
        slli r4, r1, 2
        li   r5, VEC
        add  r5, r5, r4
        sw   r3, 0(r5)
        inc  r1
        li   r6, 8
        bne  r1, r6, v1
        ; y[i] = sum_j c[i][j] * v[j]; accumulate a checksum of y.
        li   r1, 0             ; i
        li   r10, 0            ; checksum
t1:     li   r2, 0             ; j
        li   r7, 0             ; acc
t2:     slli r3, r1, 3
        add  r3, r3, r2
        slli r3, r3, 2
        li   r4, COEF
        add  r4, r4, r3
        lw   r4, 0(r4)
        slli r5, r2, 2
        li   r8, VEC
        add  r8, r8, r5
        lw   r8, 0(r8)
        mul  r4, r4, r8
        add  r7, r7, r4
        inc  r2
        li   r6, 8
        bne  r2, r6, t2
        xor  r10, r10, r7
        inc  r1
        bne  r1, r6, t1
        sw   r10, 56(r13)
        sw   r12, DONE(r13)
        j    outer
`,
	},
	{
		Name:        "cacheb",
		Description: "cache buster: strided read-modify-write sweeps over a 4KB buffer",
		Source: `
        .equ EXT,  0x80000000
        .equ DONE, 0x100
        .equ BUF,  0x7800
        ; Seed the 1024-word buffer.
        li   r1, BUF
        li   r2, 1024
        li   r3, 0x1234
s1:     sw   r3, 0(r1)
        addi r3, r3, 77
        addi r1, r1, 4
        dec  r2
        bne  r2, r0, s1
        li   r13, EXT
        li   r12, 0
outer:  inc  r12
        ; Stride varies with the iteration: 1..8 words.
        andi r1, r12, 7
        inc  r1
        slli r1, r1, 2         ; byte stride
        li   r2, 0             ; offset
        li   r3, 96            ; accesses per iteration
        li   r4, 0             ; checksum
m1:     li   r5, BUF
        add  r5, r5, r2
        lw   r6, 0(r5)
        xor  r7, r6, r12
        add  r7, r7, r2
        sw   r7, 0(r5)
        add  r4, r4, r6
        add  r2, r2, r1
        andi r2, r2, 4092      ; wrap within the buffer, word aligned
        dec  r3
        bne  r3, r0, m1
        sw   r4, 60(r13)
        sw   r12, DONE(r13)
        j    outer
`,
	},
}
