package asm

import (
	"strings"
	"testing"

	"lockstep/internal/isa"
)

// FuzzAssemble: the assembler must never panic on arbitrary source text —
// it either produces a program or a line-annotated error.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"",
		"        nop\n",
		"        add r1, r2, r3\n",
		"x:      .word 1, 2, 3\n        j x\n",
		"        li r1, 0x12345678\n        halt\n",
		"        .equ A, 5\n        addi r1, r0, A+1\n",
		"        lw r1, 4(r2)\n        sw r1, -4(sp)\n",
		"bad:    bogus operands, here\n",
		"        .org 0x100\nl:      beq r0, r0, l\n",
		"a: b: c: nop\n",
		":::\n",
		"        addi r1, r0, 999999999999\n",
		"\x00\xff\xfe",
		"        lw r1, (((\n",
		"        .space -4\n",
		"        li r1, -\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble(src)
		if err != nil {
			// Errors must be annotated Error values with a line number.
			var aerr *Error
			if !asError(err, &aerr) {
				t.Fatalf("non-annotated error type %T: %v", err, err)
			}
			if aerr.Line < 1 {
				t.Fatalf("error with bad line %d", aerr.Line)
			}
			return
		}
		// A successful program must decode cleanly or contain data words;
		// its symbols must be within the image or equ constants.
		if prog == nil {
			t.Fatal("nil program without error")
		}
		if len(prog.Words) > 0 && prog.Entry < prog.Origin &&
			strings.TrimSpace(src) != "" && prog.Entry != 0 {
			t.Fatalf("entry %#x below origin %#x", prog.Entry, prog.Origin)
		}
	})
}

func asError(err error, target **Error) bool {
	e, ok := err.(*Error)
	if ok {
		*target = e
	}
	return ok
}

// FuzzDisassembleDecode: any 32-bit word decodes without panicking, and
// valid-opcode words re-encode to a word that decodes identically
// (canonicalisation fixpoint).
func FuzzDisassembleDecode(f *testing.F) {
	f.Add(uint32(0))
	f.Add(^uint32(0))
	f.Add(uint32(0x04400001))
	for _, s := range []uint32{1 << 26, 5 << 26, 37 << 26, 0x12345678} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, w uint32) {
		in := isa.Decode(w)
		_ = isa.Disassemble(in)
		if in.Op == isa.OpInvalid {
			return
		}
		again := isa.Decode(isa.Encode(in))
		if again != in {
			t.Fatalf("decode(encode(decode(%#x))) = %+v, want %+v", w, again, in)
		}
	})
}
