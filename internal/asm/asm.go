// Package asm implements a two-pass assembler for the SR32 instruction set.
//
// Syntax overview:
//
//	; comment (also "#" and "//")
//	        .equ  N, 16          ; named constant
//	        .org  0x100          ; set location counter (byte address)
//	start:  li    r1, table      ; pseudo-instruction, expands to lui+ori
//	loop:   lw    r2, 0(r1)
//	        addi  r1, r1, 4
//	        bne   r2, r0, loop
//	        halt
//	table:  .word 1, 2, 3
//	buf:    .space 64            ; zero-filled bytes
//
// Registers are written r0..r15; the aliases zero (r0), sp (r14) and
// lr (r15) are accepted. Immediate operands are integer literals
// (decimal, 0x hex, 0b binary, optionally negated), symbols, or
// sums/differences of those.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"lockstep/internal/isa"
)

// Program is the output of the assembler: a flat little-endian image of
// words starting at Origin, plus the symbol table.
type Program struct {
	Origin  uint32            // byte address of Words[0]
	Words   []uint32          // assembled machine words / data words
	Symbols map[string]uint32 // label and .equ values
	Entry   uint32            // entry PC (address of the first instruction)
}

// Error is an assembly error annotated with the 1-based source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// statement is one parsed source line after label extraction.
type statement struct {
	line     int
	label    string
	mnemonic string
	operands []string
	addr     uint32 // assigned in pass 1
	size     uint32 // bytes emitted
}

// Assemble translates SR32 assembly source into a Program.
func Assemble(src string) (*Program, error) {
	stmts, symbols, err := parse(src)
	if err != nil {
		return nil, err
	}
	if err := layout(stmts, symbols); err != nil {
		return nil, err
	}
	return emit(stmts, symbols)
}

// MustAssemble is Assemble for known-good embedded sources; it panics on
// error. Used by the workload package whose kernels are compiled in.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func parse(src string) ([]*statement, map[string]uint32, error) {
	var stmts []*statement
	symbols := make(map[string]uint32)
	for i, raw := range strings.Split(src, "\n") {
		line := i + 1
		text := stripComment(raw)
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		st := &statement{line: line}
		// Labels: one or more "name:" prefixes.
		for {
			idx := strings.Index(text, ":")
			if idx < 0 {
				break
			}
			head := strings.TrimSpace(text[:idx])
			if !isIdent(head) {
				break
			}
			if st.label != "" {
				// Two labels on one line: register the first at the same
				// address by emitting an empty statement for it.
				stmts = append(stmts, &statement{line: line, label: st.label})
			}
			st.label = head
			text = strings.TrimSpace(text[idx+1:])
		}
		if text != "" {
			fields := strings.SplitN(text, " ", 2)
			st.mnemonic = strings.ToLower(strings.TrimSpace(fields[0]))
			if len(fields) == 2 {
				st.operands = splitOperands(fields[1])
			}
		}
		if st.label == "" && st.mnemonic == "" {
			continue
		}
		stmts = append(stmts, st)
	}
	return stmts, symbols, nil
}

func stripComment(s string) string {
	for _, marker := range []string{";", "#", "//"} {
		if idx := strings.Index(s, marker); idx >= 0 {
			s = s[:idx]
		}
	}
	return s
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func splitOperands(s string) []string {
	var out []string
	var cur strings.Builder
	inStr := false
	esc := false
	flush := func() {
		p := strings.TrimSpace(cur.String())
		if p != "" {
			out = append(out, p)
		}
		cur.Reset()
	}
	for _, r := range s {
		switch {
		case esc:
			esc = false
			cur.WriteRune(r)
		case inStr && r == '\\':
			esc = true
			cur.WriteRune(r)
		case r == '"':
			inStr = !inStr
			cur.WriteRune(r)
		case r == ',' && !inStr:
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return out
}

// parseStringLit decodes a double-quoted string operand with the escapes
// \\, \", \n, \t, \r and \0.
func parseStringLit(s string, line int) ([]byte, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return nil, errf(line, "expected quoted string, got %q", s)
	}
	body := s[1 : len(s)-1]
	out := make([]byte, 0, len(body))
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			out = append(out, c)
			continue
		}
		i++
		if i >= len(body) {
			return nil, errf(line, "dangling escape in string")
		}
		switch body[i] {
		case 'n':
			out = append(out, '\n')
		case 't':
			out = append(out, '\t')
		case 'r':
			out = append(out, '\r')
		case '0':
			out = append(out, 0)
		case '\\', '"':
			out = append(out, body[i])
		default:
			return nil, errf(line, "unknown escape \\%c", body[i])
		}
	}
	return out, nil
}

// layout runs pass 1: assign addresses and sizes, collect symbols.
func layout(stmts []*statement, symbols map[string]uint32) error {
	var pc uint32
	for _, st := range stmts {
		st.addr = pc
		if st.label != "" {
			if _, dup := symbols[st.label]; dup {
				return errf(st.line, "duplicate symbol %q", st.label)
			}
			symbols[st.label] = pc
		}
		if st.mnemonic == "" {
			continue
		}
		switch st.mnemonic {
		case ".equ":
			if len(st.operands) != 2 {
				return errf(st.line, ".equ needs name, value")
			}
			name := st.operands[0]
			if !isIdent(name) {
				return errf(st.line, ".equ: bad name %q", name)
			}
			if _, dup := symbols[name]; dup {
				return errf(st.line, "duplicate symbol %q", name)
			}
			v, err := evalExpr(st.operands[1], symbols, st.line)
			if err != nil {
				return err
			}
			symbols[name] = uint32(v)
		case ".org":
			if len(st.operands) != 1 {
				return errf(st.line, ".org needs one operand")
			}
			v, err := evalExpr(st.operands[0], symbols, st.line)
			if err != nil {
				return err
			}
			if uint32(v) < pc {
				return errf(st.line, ".org 0x%x moves location counter backwards (pc=0x%x)", uint32(v), pc)
			}
			pc = uint32(v)
			st.addr = pc
			if st.label != "" {
				symbols[st.label] = pc
			}
		case ".word":
			if pc%4 != 0 {
				return errf(st.line, ".word at unaligned address 0x%x; insert .align 4", pc)
			}
			st.size = uint32(len(st.operands)) * 4
			pc += st.size
		case ".byte":
			st.size = uint32(len(st.operands))
			pc += st.size
		case ".half":
			if pc%2 != 0 {
				return errf(st.line, ".half at unaligned address 0x%x; insert .align 2", pc)
			}
			st.size = uint32(len(st.operands)) * 2
			pc += st.size
		case ".ascii", ".asciz":
			if len(st.operands) != 1 {
				return errf(st.line, "%s needs one quoted string", st.mnemonic)
			}
			b, err := parseStringLit(st.operands[0], st.line)
			if err != nil {
				return err
			}
			st.size = uint32(len(b))
			if st.mnemonic == ".asciz" {
				st.size++
			}
			pc += st.size
		case ".align":
			if len(st.operands) != 1 {
				return errf(st.line, ".align needs one operand")
			}
			v, err := evalExpr(st.operands[0], symbols, st.line)
			if err != nil {
				return err
			}
			if v < 1 || v > 4096 || v&(v-1) != 0 {
				return errf(st.line, ".align %d is not a power of two in [1, 4096]", v)
			}
			a := uint32(v)
			pad := (a - pc%a) % a
			st.size = pad
			pc += pad
		case ".space":
			if len(st.operands) != 1 {
				return errf(st.line, ".space needs one operand")
			}
			v, err := evalExpr(st.operands[0], symbols, st.line)
			if err != nil {
				return err
			}
			if v < 0 {
				return errf(st.line, ".space size must be non-negative, got %d", v)
			}
			st.size = uint32(v)
			pc += st.size
		default:
			if pc%4 != 0 {
				return errf(st.line, "instruction at unaligned address 0x%x; insert .align 4", pc)
			}
			n, err := instrWords(st, symbols)
			if err != nil {
				return err
			}
			st.size = n * 4
			pc += st.size
		}
	}
	return nil
}

// instrWords reports how many machine words a mnemonic expands to.
// The answer must not depend on symbol *values* (only on their presence),
// so that pass 1 layout is stable.
func instrWords(st *statement, symbols map[string]uint32) (uint32, error) {
	switch st.mnemonic {
	case "li", "la":
		if len(st.operands) != 2 {
			return 0, errf(st.line, "%s needs rd, value", st.mnemonic)
		}
		// A plain literal that fits the 18-bit immediate uses one word;
		// anything symbolic conservatively uses two.
		if v, ok := literalValue(st.operands[1]); ok &&
			v >= isa.Imm18Min && v <= isa.Imm18Max {
			return 1, nil
		}
		return 2, nil
	case "nop", "mv", "not", "neg", "j", "jr", "call", "ret", "inc", "dec":
		return 1, nil
	}
	if opFromMnemonic(st.mnemonic).Valid() {
		return 1, nil
	}
	return 0, errf(st.line, "unknown mnemonic %q", st.mnemonic)
}

func literalValue(s string) (int64, bool) {
	v, err := parseInt(s)
	return v, err == nil
}

// emit runs pass 2.
func emit(stmts []*statement, symbols map[string]uint32) (*Program, error) {
	if len(stmts) == 0 {
		return &Program{Symbols: symbols}, nil
	}
	// Find image bounds.
	var lo, hi uint32
	lo = ^uint32(0)
	for _, st := range stmts {
		if st.size == 0 {
			continue
		}
		if st.addr < lo {
			lo = st.addr
		}
		if st.addr+st.size > hi {
			hi = st.addr + st.size
		}
	}
	if lo == ^uint32(0) {
		return &Program{Symbols: symbols}, nil
	}
	lo &^= 3 // word-align the image base
	words := make([]uint32, (hi-lo+3)/4)
	put := func(addr, w uint32) { words[(addr-lo)/4] = w }
	putByte := func(addr uint32, b byte) {
		shift := 8 * (addr & 3)
		i := (addr - lo) / 4
		words[i] = words[i]&^(0xFF<<shift) | uint32(b)<<shift
	}

	entry := uint32(0)
	entrySet := false
	for _, st := range stmts {
		if st.mnemonic == "" || strings.HasPrefix(st.mnemonic, ".") {
			switch st.mnemonic {
			case ".word":
				for i, opnd := range st.operands {
					v, err := evalExpr(opnd, symbols, st.line)
					if err != nil {
						return nil, err
					}
					put(st.addr+uint32(i)*4, uint32(v))
				}
			case ".byte":
				for i, opnd := range st.operands {
					v, err := evalExpr(opnd, symbols, st.line)
					if err != nil {
						return nil, err
					}
					if v < -128 || v > 255 {
						return nil, errf(st.line, ".byte value %d out of range", v)
					}
					putByte(st.addr+uint32(i), byte(v))
				}
			case ".half":
				for i, opnd := range st.operands {
					v, err := evalExpr(opnd, symbols, st.line)
					if err != nil {
						return nil, err
					}
					if v < -32768 || v > 65535 {
						return nil, errf(st.line, ".half value %d out of range", v)
					}
					addr := st.addr + uint32(i)*2
					putByte(addr, byte(v))
					putByte(addr+1, byte(uint32(v)>>8))
				}
			case ".ascii", ".asciz":
				b, err := parseStringLit(st.operands[0], st.line)
				if err != nil {
					return nil, err
				}
				if st.mnemonic == ".asciz" {
					b = append(b, 0)
				}
				for i, c := range b {
					putByte(st.addr+uint32(i), c)
				}
			}
			continue
		}
		ws, err := encodeStatement(st, symbols)
		if err != nil {
			return nil, err
		}
		if !entrySet {
			entry = st.addr
			entrySet = true
		}
		for i, w := range ws {
			put(st.addr+uint32(i)*4, w)
		}
	}
	return &Program{Origin: lo, Words: words, Symbols: symbols, Entry: entry}, nil
}

func encodeStatement(st *statement, symbols map[string]uint32) ([]uint32, error) {
	ops := st.operands
	switch st.mnemonic {
	case "nop":
		return []uint32{isa.Encode(isa.Instr{Op: isa.OpADDI})}, nil
	case "mv":
		rd, rs, err := twoRegs(st)
		if err != nil {
			return nil, err
		}
		return []uint32{isa.Encode(isa.Instr{Op: isa.OpADDI, Rd: rd, Rs1: rs})}, nil
	case "not":
		rd, rs, err := twoRegs(st)
		if err != nil {
			return nil, err
		}
		return []uint32{isa.Encode(isa.Instr{Op: isa.OpXORI, Rd: rd, Rs1: rs, Imm: -1})}, nil
	case "neg":
		rd, rs, err := twoRegs(st)
		if err != nil {
			return nil, err
		}
		return []uint32{isa.Encode(isa.Instr{Op: isa.OpSUB, Rd: rd, Rs2: rs})}, nil
	case "inc":
		rd, err := oneReg(st)
		if err != nil {
			return nil, err
		}
		return []uint32{isa.Encode(isa.Instr{Op: isa.OpADDI, Rd: rd, Rs1: rd, Imm: 1})}, nil
	case "dec":
		rd, err := oneReg(st)
		if err != nil {
			return nil, err
		}
		return []uint32{isa.Encode(isa.Instr{Op: isa.OpADDI, Rd: rd, Rs1: rd, Imm: -1})}, nil
	case "li", "la":
		if len(ops) != 2 {
			return nil, errf(st.line, "%s needs rd, value", st.mnemonic)
		}
		rd, err := reg(ops[0], st.line)
		if err != nil {
			return nil, err
		}
		v, err := evalExpr(ops[1], symbols, st.line)
		if err != nil {
			return nil, err
		}
		return encodeLI(st, rd, uint32(v))
	case "j":
		if len(ops) != 1 {
			return nil, errf(st.line, "j needs a target")
		}
		off, err := branchOffset(ops[0], st, symbols)
		if err != nil {
			return nil, err
		}
		return []uint32{isa.Encode(isa.Instr{Op: isa.OpJAL, Rd: 0, Imm: off})}, nil
	case "call":
		if len(ops) != 1 {
			return nil, errf(st.line, "call needs a target")
		}
		off, err := branchOffset(ops[0], st, symbols)
		if err != nil {
			return nil, err
		}
		return []uint32{isa.Encode(isa.Instr{Op: isa.OpJAL, Rd: 15, Imm: off})}, nil
	case "ret":
		return []uint32{isa.Encode(isa.Instr{Op: isa.OpJALR, Rd: 0, Rs1: 15})}, nil
	case "jr":
		rd, err := oneReg(st)
		if err != nil {
			return nil, err
		}
		return []uint32{isa.Encode(isa.Instr{Op: isa.OpJALR, Rd: 0, Rs1: rd})}, nil
	}

	op := opFromMnemonic(st.mnemonic)
	if !op.Valid() {
		return nil, errf(st.line, "unknown mnemonic %q", st.mnemonic)
	}
	in := isa.Instr{Op: op}
	switch isa.FormatOf(op) {
	case isa.FormatR:
		if len(ops) != 3 {
			return nil, errf(st.line, "%s needs rd, rs1, rs2", op)
		}
		var err error
		if in.Rd, err = reg(ops[0], st.line); err != nil {
			return nil, err
		}
		if in.Rs1, err = reg(ops[1], st.line); err != nil {
			return nil, err
		}
		if in.Rs2, err = reg(ops[2], st.line); err != nil {
			return nil, err
		}
	case isa.FormatI:
		switch {
		case isa.IsLoad(op):
			if len(ops) != 2 {
				return nil, errf(st.line, "%s needs rd, off(rs1)", op)
			}
			var err error
			if in.Rd, err = reg(ops[0], st.line); err != nil {
				return nil, err
			}
			if in.Rs1, in.Imm, err = memOperand(ops[1], symbols, st.line); err != nil {
				return nil, err
			}
		case op == isa.OpRDCYC:
			if len(ops) != 1 {
				return nil, errf(st.line, "rdcyc needs rd")
			}
			var err error
			if in.Rd, err = reg(ops[0], st.line); err != nil {
				return nil, err
			}
		case op == isa.OpJALR:
			if len(ops) != 2 && len(ops) != 3 {
				return nil, errf(st.line, "jalr needs rd, rs1[, imm]")
			}
			var err error
			if in.Rd, err = reg(ops[0], st.line); err != nil {
				return nil, err
			}
			if in.Rs1, err = reg(ops[1], st.line); err != nil {
				return nil, err
			}
			if len(ops) == 3 {
				v, err := evalExpr(ops[2], symbols, st.line)
				if err != nil {
					return nil, err
				}
				in.Imm = int32(v)
			}
		default:
			if len(ops) != 3 {
				return nil, errf(st.line, "%s needs rd, rs1, imm", op)
			}
			var err error
			if in.Rd, err = reg(ops[0], st.line); err != nil {
				return nil, err
			}
			if in.Rs1, err = reg(ops[1], st.line); err != nil {
				return nil, err
			}
			v, err := evalExpr(ops[2], symbols, st.line)
			if err != nil {
				return nil, err
			}
			in.Imm = int32(v)
		}
		if err := checkImm18(in.Imm, st.line); err != nil && op != isa.OpRDCYC {
			return nil, err
		}
	case isa.FormatB:
		if isa.IsStore(op) {
			if len(ops) != 2 {
				return nil, errf(st.line, "%s needs rs2, off(rs1)", op)
			}
			var err error
			if in.Rs2, err = reg(ops[0], st.line); err != nil {
				return nil, err
			}
			if in.Rs1, in.Imm, err = memOperand(ops[1], symbols, st.line); err != nil {
				return nil, err
			}
			if err := checkImm18(in.Imm, st.line); err != nil {
				return nil, err
			}
		} else { // branch
			if len(ops) != 3 {
				return nil, errf(st.line, "%s needs rs1, rs2, target", op)
			}
			var err error
			if in.Rs1, err = reg(ops[0], st.line); err != nil {
				return nil, err
			}
			if in.Rs2, err = reg(ops[1], st.line); err != nil {
				return nil, err
			}
			if in.Imm, err = branchOffset(ops[2], st, symbols); err != nil {
				return nil, err
			}
		}
	case isa.FormatJ:
		if len(ops) != 2 {
			return nil, errf(st.line, "jal needs rd, target")
		}
		var err error
		if in.Rd, err = reg(ops[0], st.line); err != nil {
			return nil, err
		}
		if in.Imm, err = branchOffset(ops[1], st, symbols); err != nil {
			return nil, err
		}
	case isa.FormatU:
		if len(ops) != 2 {
			return nil, errf(st.line, "lui needs rd, value")
		}
		var err error
		if in.Rd, err = reg(ops[0], st.line); err != nil {
			return nil, err
		}
		v, err := evalExpr(ops[1], symbols, st.line)
		if err != nil {
			return nil, err
		}
		in.Imm = int32(uint32(v) &^ 0x3FF)
	case isa.FormatN:
		if len(ops) != 0 {
			return nil, errf(st.line, "%s takes no operands", op)
		}
	}
	return []uint32{isa.Encode(in)}, nil
}

func encodeLI(st *statement, rd uint8, v uint32) ([]uint32, error) {
	oneWord := st.size == 4
	if oneWord {
		return []uint32{isa.Encode(isa.Instr{Op: isa.OpADDI, Rd: rd, Imm: int32(v)})}, nil
	}
	lui := isa.Encode(isa.Instr{Op: isa.OpLUI, Rd: rd, Imm: int32(v &^ 0x3FF)})
	ori := isa.Encode(isa.Instr{Op: isa.OpORI, Rd: rd, Rs1: rd, Imm: int32(v & 0x3FF)})
	return []uint32{lui, ori}, nil
}

func twoRegs(st *statement) (rd, rs uint8, err error) {
	if len(st.operands) != 2 {
		return 0, 0, errf(st.line, "%s needs rd, rs", st.mnemonic)
	}
	if rd, err = reg(st.operands[0], st.line); err != nil {
		return
	}
	rs, err = reg(st.operands[1], st.line)
	return
}

func oneReg(st *statement) (uint8, error) {
	if len(st.operands) != 1 {
		return 0, errf(st.line, "%s needs one register", st.mnemonic)
	}
	return reg(st.operands[0], st.line)
}

func branchOffset(target string, st *statement, symbols map[string]uint32) (int32, error) {
	v, err := evalExpr(target, symbols, st.line)
	if err != nil {
		return 0, err
	}
	delta := int64(int32(uint32(v))) - int64(st.addr) - 4
	if delta%4 != 0 {
		return 0, errf(st.line, "branch target 0x%x not word aligned", uint32(v))
	}
	off := delta / 4
	if off < isa.Imm18Min || off > isa.Imm18Max {
		return 0, errf(st.line, "branch offset %d out of range", off)
	}
	return int32(off), nil
}

func checkImm18(v int32, line int) error {
	if v < isa.Imm18Min || v > isa.Imm18Max {
		return errf(line, "immediate %d out of 18-bit range", v)
	}
	return nil
}

// memOperand parses "off(rN)" or "symbol(rN)" or a bare "off".
func memOperand(s string, symbols map[string]uint32, line int) (rs1 uint8, imm int32, err error) {
	open := strings.IndexByte(s, '(')
	if open < 0 {
		v, err := evalExpr(s, symbols, line)
		if err != nil {
			return 0, 0, err
		}
		return 0, int32(v), nil
	}
	if !strings.HasSuffix(s, ")") {
		return 0, 0, errf(line, "bad memory operand %q", s)
	}
	offPart := strings.TrimSpace(s[:open])
	regPart := strings.TrimSpace(s[open+1 : len(s)-1])
	if offPart != "" {
		v, err := evalExpr(offPart, symbols, line)
		if err != nil {
			return 0, 0, err
		}
		imm = int32(v)
	}
	rs1, err = reg(regPart, line)
	return rs1, imm, err
}

var regAliases = map[string]uint8{"zero": 0, "sp": 14, "lr": 15}

func reg(s string, line int) (uint8, error) {
	ls := strings.ToLower(strings.TrimSpace(s))
	if n, ok := regAliases[ls]; ok {
		return n, nil
	}
	if strings.HasPrefix(ls, "r") {
		n, err := strconv.Atoi(ls[1:])
		if err == nil && n >= 0 && n < isa.NumRegs {
			return uint8(n), nil
		}
	}
	return 0, errf(line, "bad register %q", s)
}

// evalExpr evaluates "term ((+|-) term)*" where term is a literal or symbol.
func evalExpr(s string, symbols map[string]uint32, line int) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, errf(line, "empty expression")
	}
	total := int64(0)
	sign := int64(1)
	i := 0
	// Leading unary minus.
	if s[0] == '-' {
		sign = -1
		i = 1
	}
	start := i
	flush := func(end int) error {
		tok := strings.TrimSpace(s[start:end])
		if tok == "" {
			return errf(line, "bad expression %q", s)
		}
		v, err := termValue(tok, symbols, line)
		if err != nil {
			return err
		}
		total += sign * v
		return nil
	}
	for ; i < len(s); i++ {
		switch s[i] {
		case '+':
			if err := flush(i); err != nil {
				return 0, err
			}
			sign = 1
			start = i + 1
		case '-':
			if err := flush(i); err != nil {
				return 0, err
			}
			sign = -1
			start = i + 1
		}
	}
	if err := flush(len(s)); err != nil {
		return 0, err
	}
	return total, nil
}

func termValue(tok string, symbols map[string]uint32, line int) (int64, error) {
	if v, err := parseInt(tok); err == nil {
		return v, nil
	}
	if v, ok := symbols[tok]; ok {
		return int64(v), nil
	}
	return 0, errf(line, "undefined symbol %q", tok)
}

func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var v uint64
	var err error
	switch {
	case strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X"):
		v, err = strconv.ParseUint(s[2:], 16, 32)
	case strings.HasPrefix(s, "0b") || strings.HasPrefix(s, "0B"):
		v, err = strconv.ParseUint(s[2:], 2, 32)
	default:
		v, err = strconv.ParseUint(s, 10, 32)
	}
	if err != nil {
		return 0, err
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

func opFromMnemonic(m string) isa.Op {
	for op := isa.OpInvalid + 1; op.Valid(); op++ {
		if op.String() == m {
			return op
		}
	}
	return isa.OpInvalid
}
