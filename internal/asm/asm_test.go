package asm

import (
	"strings"
	"testing"

	"lockstep/internal/isa"
)

func mustAsm(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func decodeAt(p *Program, addr uint32) isa.Instr {
	return isa.Decode(p.Words[(addr-p.Origin)/4])
}

func TestBasicEncoding(t *testing.T) {
	p := mustAsm(t, `
        add  r1, r2, r3
        addi r4, r5, -7
        lw   r6, 12(r7)
        sw   r6, -4(r7)
        halt
`)
	want := []isa.Instr{
		{Op: isa.OpADD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: isa.OpADDI, Rd: 4, Rs1: 5, Imm: -7},
		{Op: isa.OpLW, Rd: 6, Rs1: 7, Imm: 12},
		{Op: isa.OpSW, Rs2: 6, Rs1: 7, Imm: -4},
		{Op: isa.OpHALT},
	}
	if len(p.Words) != len(want) {
		t.Fatalf("got %d words, want %d", len(p.Words), len(want))
	}
	for i, w := range want {
		if got := isa.Decode(p.Words[i]); got != w {
			t.Errorf("word %d: got %+v, want %+v", i, got, w)
		}
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := mustAsm(t, `
start:  addi r1, r0, 10
loop:   dec  r1
        bne  r1, r0, loop
        j    start
        halt
`)
	// bne at address 8 targets 4: offset = (4 - 12)/4 = -2.
	bne := decodeAt(p, 8)
	if bne.Op != isa.OpBNE || bne.Imm != -2 {
		t.Errorf("bne: %+v", bne)
	}
	// j at address 12 targets 0: offset = (0 - 16)/4 = -4, rd = r0.
	j := decodeAt(p, 12)
	if j.Op != isa.OpJAL || j.Rd != 0 || j.Imm != -4 {
		t.Errorf("j: %+v", j)
	}
}

func TestForwardReferences(t *testing.T) {
	p := mustAsm(t, `
        beq r0, r0, done
        nop
        nop
done:   halt
`)
	beq := decodeAt(p, 0)
	if beq.Imm != 2 {
		t.Errorf("forward branch offset = %d, want 2", beq.Imm)
	}
}

func TestDirectives(t *testing.T) {
	p := mustAsm(t, `
        .equ BASE, 0x1000
        .equ COUNT, 8
        li   r1, BASE
        halt
        .org BASE
table:  .word 1, 2, 3, COUNT
buf:    .space 8
end:    .word 0xDEADBEEF
`)
	if p.Symbols["table"] != 0x1000 {
		t.Errorf("table = %#x", p.Symbols["table"])
	}
	if p.Symbols["buf"] != 0x1010 {
		t.Errorf("buf = %#x", p.Symbols["buf"])
	}
	if p.Symbols["end"] != 0x1018 {
		t.Errorf("end = %#x", p.Symbols["end"])
	}
	word := func(addr uint32) uint32 { return p.Words[(addr-p.Origin)/4] }
	if word(0x1000) != 1 || word(0x100C) != 8 {
		t.Errorf("table contents wrong: %#x %#x", word(0x1000), word(0x100C))
	}
	if word(0x1010) != 0 || word(0x1014) != 0 {
		t.Errorf(".space not zero filled")
	}
	if word(0x1018) != 0xDEADBEEF {
		t.Errorf("end word = %#x", word(0x1018))
	}
}

func TestLIExpansion(t *testing.T) {
	// Small literal: single ADDI.
	p := mustAsm(t, "        li r1, 100\n        halt\n")
	if len(p.Words) != 2 {
		t.Fatalf("small li should be 1 word, program has %d", len(p.Words))
	}
	if in := decodeAt(p, 0); in.Op != isa.OpADDI || in.Imm != 100 {
		t.Errorf("small li: %+v", in)
	}

	// Negative small literal.
	p = mustAsm(t, "        li r1, -100\n        halt\n")
	if in := decodeAt(p, 0); in.Op != isa.OpADDI || in.Imm != -100 {
		t.Errorf("negative li: %+v", in)
	}

	// Large literal: LUI + ORI.
	p = mustAsm(t, "        li r1, 0x12345678\n        halt\n")
	if len(p.Words) != 3 {
		t.Fatalf("large li should be 2 words, program has %d", len(p.Words))
	}
	lui := decodeAt(p, 0)
	ori := decodeAt(p, 4)
	if lui.Op != isa.OpLUI || ori.Op != isa.OpORI {
		t.Fatalf("large li expansion: %v, %v", lui.Op, ori.Op)
	}
	if uint32(lui.Imm)|uint32(ori.Imm) != 0x12345678 {
		t.Errorf("li value: %#x | %#x", uint32(lui.Imm), uint32(ori.Imm))
	}

	// Symbolic operand always two words (layout stability).
	p = mustAsm(t, `
        li r1, tgt
        halt
tgt:    .word 0
`)
	if p.Symbols["tgt"] != 12 {
		t.Errorf("symbolic li sized wrong: tgt = %d", p.Symbols["tgt"])
	}
}

func TestPseudoInstructions(t *testing.T) {
	p := mustAsm(t, `
        nop
        mv   r1, r2
        not  r3, r4
        neg  r5, r6
        inc  r7
        dec  r8
        call fn
        halt
fn:     ret
`)
	checks := []struct {
		addr uint32
		want isa.Instr
	}{
		{0, isa.Instr{Op: isa.OpADDI}},
		{4, isa.Instr{Op: isa.OpADDI, Rd: 1, Rs1: 2}},
		{8, isa.Instr{Op: isa.OpXORI, Rd: 3, Rs1: 4, Imm: -1}},
		{12, isa.Instr{Op: isa.OpSUB, Rd: 5, Rs2: 6}},
		{16, isa.Instr{Op: isa.OpADDI, Rd: 7, Rs1: 7, Imm: 1}},
		{20, isa.Instr{Op: isa.OpADDI, Rd: 8, Rs1: 8, Imm: -1}},
		{24, isa.Instr{Op: isa.OpJAL, Rd: 15, Imm: 1}},
		{32, isa.Instr{Op: isa.OpJALR, Rd: 0, Rs1: 15}},
	}
	for _, c := range checks {
		if got := decodeAt(p, c.addr); got != c.want {
			t.Errorf("at %d: got %+v, want %+v", c.addr, got, c.want)
		}
	}
}

func TestRegisterAliases(t *testing.T) {
	p := mustAsm(t, "        add sp, lr, zero\n")
	in := decodeAt(p, 0)
	if in.Rd != 14 || in.Rs1 != 15 || in.Rs2 != 0 {
		t.Errorf("aliases: %+v", in)
	}
}

func TestExpressions(t *testing.T) {
	p := mustAsm(t, `
        .equ A, 0x100
        .equ B, A + 0x20
        li  r1, B - 8
        lw  r2, A+4(r3)
        halt
`)
	if p.Symbols["B"] != 0x120 {
		t.Errorf("B = %#x", p.Symbols["B"])
	}
	// Symbolic li expands to LUI+ORI; the combined value is B-8.
	lui := decodeAt(p, 0)
	ori := decodeAt(p, 4)
	if lui.Op != isa.OpLUI || ori.Op != isa.OpORI {
		t.Fatalf("symbolic li: %v, %v", lui.Op, ori.Op)
	}
	if uint32(lui.Imm)|uint32(ori.Imm) != 0x118 {
		t.Errorf("li expr value: %#x", uint32(lui.Imm)|uint32(ori.Imm))
	}
	if in := decodeAt(p, 8); in.Imm != 0x104 || in.Rs1 != 3 {
		t.Errorf("lw expr: %+v", in)
	}
}

func TestCommentStyles(t *testing.T) {
	p := mustAsm(t, `
        nop        ; semicolon
        nop        # hash
        nop        // slashes
`)
	if len(p.Words) != 3 {
		t.Fatalf("comments broke parsing: %d words", len(p.Words))
	}
}

func TestErrorReporting(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"        bogus r1, r2\n", "unknown mnemonic"},
		{"        add r1, r2\n", "needs rd, rs1, rs2"},
		{"        add r1, r2, r99\n", "bad register"},
		{"        addi r1, r2, 999999\n", "out of 18-bit range"},
		{"        lw r1, 0(r2\n", "bad memory operand"},
		{"x:      nop\nx:      nop\n", "duplicate symbol"},
		{"        j nowhere\n", "undefined symbol"},
		{"        .org 0x100\n        .org 0x10\n", "backwards"},
		{"        .space -4\n", "non-negative"},
		{"        .equ 9bad, 1\n", "bad name"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil {
			t.Errorf("no error for %q", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("error for %q = %q, want fragment %q", c.src, err, c.frag)
		}
	}
}

func TestErrorLineNumbers(t *testing.T) {
	_, err := Assemble("        nop\n        nop\n        bogus\n")
	aerr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if aerr.Line != 3 {
		t.Errorf("error line = %d, want 3", aerr.Line)
	}
}

func TestTwoLabelsSameAddress(t *testing.T) {
	p := mustAsm(t, `
a:
b:      nop
`)
	if p.Symbols["a"] != p.Symbols["b"] {
		t.Errorf("a=%d b=%d", p.Symbols["a"], p.Symbols["b"])
	}
}

func TestEntryIsFirstInstruction(t *testing.T) {
	p := mustAsm(t, `
        .org 0x40
start:  nop
        halt
`)
	if p.Entry != 0x40 {
		t.Errorf("entry = %#x, want 0x40", p.Entry)
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAssemble did not panic on bad source")
		}
	}()
	MustAssemble("        bogus\n")
}

func TestByteDirectives(t *testing.T) {
	p := mustAsm(t, `
        nop
data:   .byte 0x11, 0x22, 0x33
        .align 2
h:      .half 0xBEEF, -2
        .align 4
w:      .word 0x44556677
`)
	if p.Symbols["data"] != 4 || p.Symbols["h"] != 8 || p.Symbols["w"] != 12 {
		t.Fatalf("layout: data=%d h=%d w=%d",
			p.Symbols["data"], p.Symbols["h"], p.Symbols["w"])
	}
	word := func(addr uint32) uint32 { return p.Words[(addr-p.Origin)/4] }
	// Bytes pack little-endian: 0x11 0x22 0x33 then align padding.
	if got := word(4); got != 0x00332211 {
		t.Fatalf("byte word = %#x", got)
	}
	// Halves: 0xBEEF then 0xFFFE.
	if got := word(8); got != 0xFFFEBEEF {
		t.Fatalf("half word = %#x", got)
	}
	if got := word(12); got != 0x44556677 {
		t.Fatalf("word = %#x", got)
	}
}

func TestAsciiDirectives(t *testing.T) {
	p := mustAsm(t, `
msg:    .asciz "Hi,\n\"Go\"\0"
        .align 4
        nop
`)
	want := []byte("Hi,\n\"Go\"\x00\x00") // trailing NUL from asciz
	for i, b := range want {
		addr := uint32(i)
		got := byte(p.Words[addr/4] >> (8 * (addr % 4)))
		if got != b {
			t.Fatalf("byte %d = %#x, want %#x", i, got, b)
		}
	}
	// The string contains a comma; operand splitting must respect quotes.
	if p.Symbols["msg"] != 0 {
		t.Fatalf("msg = %d", p.Symbols["msg"])
	}
}

func TestUnalignedCodeRejected(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"        .byte 1\n        nop\n", "unaligned"},
		{"        .byte 1\n        .word 2\n", "unaligned"},
		{"        .byte 1\n        .half 2\n", "unaligned"},
		{"        .align 3\n", "power of two"},
		{"        .byte 300\n", "out of range"},
		{"        .ascii nope\n", "quoted string"},
		{"        .ascii \"\\q\"\n", "unknown escape"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("src %q: err %v, want fragment %q", c.src, err, c.frag)
		}
	}
}

func TestAlignIsIdempotent(t *testing.T) {
	p := mustAsm(t, `
        .align 4
        nop
        .align 4
a:      nop
`)
	if p.Symbols["a"] != 4 {
		t.Fatalf("aligned-on-aligned moved pc: a=%d", p.Symbols["a"])
	}
}
