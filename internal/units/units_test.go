package units

import "testing"

func TestUnitNames(t *testing.T) {
	want := []string{"PFU", "IMC", "DPU", "LSU", "DMC", "BIU", "SCU"}
	for i, name := range want {
		u := Unit(i)
		if u.String() != name {
			t.Errorf("unit %d = %q, want %q", i, u.String(), name)
		}
		if !u.Valid() {
			t.Errorf("unit %d invalid", i)
		}
	}
	if Unit(99).Valid() {
		t.Error("unit 99 valid")
	}
	if Unit(99).String() == "" {
		t.Error("out-of-range unit has empty name")
	}
}

func TestFineCoarseMapping(t *testing.T) {
	pairs := map[Fine]Unit{
		FinePFU:        PFU,
		FineIMC:        IMC,
		FineLSU:        LSU,
		FineDMC:        DMC,
		FineBIU:        BIU,
		FineSCU:        SCU,
		FineDPUDecode:  DPU,
		FineDPUOperand: DPU,
		FineDPURegFile: DPU,
		FineDPUALU:     DPU,
		FineDPUMul:     DPU,
		FineDPUDiv:     DPU,
		FineDPURetire:  DPU,
	}
	if len(pairs) != NumFine {
		t.Fatalf("test covers %d fine units, want %d", len(pairs), NumFine)
	}
	for f, u := range pairs {
		if f.Coarse() != u {
			t.Errorf("%v.Coarse() = %v, want %v", f, f.Coarse(), u)
		}
	}
}

func TestDPUSubUnits(t *testing.T) {
	count := 0
	for _, f := range AllFine() {
		if f.IsDPUSub() {
			count++
			if f.Coarse() != DPU {
				t.Errorf("%v claims DPU sub-unit but maps to %v", f, f.Coarse())
			}
		}
	}
	// Section V-D: the DPU is broken down into 7 smaller units.
	if count != 7 {
		t.Fatalf("%d DPU sub-units, want 7", count)
	}
}

func TestEnumerations(t *testing.T) {
	if len(AllUnits()) != NumUnits || NumUnits != 7 {
		t.Fatal("coarse enumeration wrong")
	}
	if len(AllFine()) != NumFine || NumFine != 13 {
		t.Fatal("fine enumeration wrong")
	}
	seen := map[string]bool{}
	for _, f := range AllFine() {
		name := f.String()
		if seen[name] {
			t.Errorf("duplicate fine name %q", name)
		}
		seen[name] = true
		if !f.Valid() {
			t.Errorf("%v invalid", f)
		}
	}
}
