// Package units defines the logical organization of the SR5 CPU: the seven
// coarse-granular units of the paper's Figure 8 and the thirteen-unit fine
// configuration of Section V-D in which the Data Processing Unit (DPU) is
// broken down into seven constituent sub-units.
//
// Every flip-flop in the CPU model is tagged with both a coarse Unit and a
// fine Unit so that fault-injection campaigns, prediction models and STL
// orderings can be evaluated at either granularity.
package units

import "fmt"

// Unit is a coarse logical CPU unit (7-unit configuration).
type Unit uint8

// The seven coarse units, mirroring the Cortex-R5 organization in the
// paper's Figure 8.
const (
	PFU      Unit = iota // Prefetch Unit: PC, fetch queue, redirect handling
	IMC                  // Instruction Memory Control: instruction-port interface
	DPU                  // Data Processing Unit: decode, regfile, ALU, mul/div, retire
	LSU                  // Load Store Unit: access formatting, external-wait control
	DMC                  // Data Memory Control: data-port interface
	BIU                  // Bus Interface Unit: external (AXI-like) bus master
	SCU                  // System Control Unit: counters, exception and halt state
	NumUnits = 7
)

var unitNames = [NumUnits]string{"PFU", "IMC", "DPU", "LSU", "DMC", "BIU", "SCU"}

// String returns the unit's short name.
func (u Unit) String() string {
	if int(u) < NumUnits {
		return unitNames[u]
	}
	return fmt.Sprintf("Unit(%d)", uint8(u))
}

// Valid reports whether u is one of the seven defined units.
func (u Unit) Valid() bool { return int(u) < NumUnits }

// Fine is a fine-granular logical CPU unit (13-unit configuration):
// the six non-DPU units plus seven DPU sub-units.
type Fine uint8

// Fine units. The first six match the coarse units; the remaining seven
// partition the DPU.
const (
	FinePFU Fine = iota
	FineIMC
	FineLSU
	FineDMC
	FineBIU
	FineSCU
	FineDPUDecode  // ID/EX control latch: opcode, rd, immediate, PC
	FineDPUOperand // latched source operand values and register numbers
	FineDPURegFile // architectural register file
	FineDPUALU     // EX/MEM latch: ALU result, store data, control
	FineDPUMul     // multiplier pipeline registers
	FineDPUDiv     // iterative divider registers
	FineDPURetire  // MEM/WB latch and commit trace registers
	NumFine        = 13
)

var fineNames = [NumFine]string{
	"PFU", "IMC", "LSU", "DMC", "BIU", "SCU",
	"DPU.Decode", "DPU.Operand", "DPU.RegFile", "DPU.ALU",
	"DPU.Mul", "DPU.Div", "DPU.Retire",
}

// String returns the fine unit's name.
func (f Fine) String() string {
	if int(f) < NumFine {
		return fineNames[f]
	}
	return fmt.Sprintf("Fine(%d)", uint8(f))
}

// Valid reports whether f is one of the thirteen defined fine units.
func (f Fine) Valid() bool { return int(f) < NumFine }

// Coarse maps a fine unit to its coarse unit: DPU sub-units map to DPU,
// the rest map to themselves.
func (f Fine) Coarse() Unit {
	switch f {
	case FinePFU:
		return PFU
	case FineIMC:
		return IMC
	case FineLSU:
		return LSU
	case FineDMC:
		return DMC
	case FineBIU:
		return BIU
	case FineSCU:
		return SCU
	default:
		return DPU
	}
}

// IsDPUSub reports whether f is one of the seven DPU sub-units.
func (f Fine) IsDPUSub() bool { return f >= FineDPUDecode && f < NumFine }

// AllUnits lists the coarse units in canonical order.
func AllUnits() []Unit {
	out := make([]Unit, NumUnits)
	for i := range out {
		out[i] = Unit(i)
	}
	return out
}

// AllFine lists the fine units in canonical order.
func AllFine() []Fine {
	out := make([]Fine, NumFine)
	for i := range out {
		out[i] = Fine(i)
	}
	return out
}
