package mem

import "sort"

// This file implements golden-trace memory replay: the campaign's
// injection hot path steps only the redundant (faulty) CPU, so something
// else has to play the role the main CPU used to play — driving the
// memory image forward cycle by cycle. During the one-time golden run a
// Recorder logs every RAM write (and the read data the CPU consumed);
// afterwards a ReplayBus can reconstruct the main-CPU-visible memory
// image at any cycle of the golden timeline and serve reads for ANY
// address, which matters because a faulty redundant CPU may fetch or
// load from addresses the golden run never touched.

// WriteEvent is one golden RAM write, tagged with the cycle whose clock
// edge committed it. Events are logged in execution order, which is also
// ascending (stable) cycle order.
type WriteEvent struct {
	Cycle int32  // golden cycle the write landed
	Addr  uint32 // word-aligned RAM address
	Data  uint32
	Mask  uint32 // expanded byte-lane mask
}

// ReadEvent is one word of bus read data the golden CPU consumed
// (instruction fetch, TCM load or BIU read), in execution order.
type ReadEvent struct {
	Cycle int32
	Addr  uint32
	Data  uint32
}

// Sizes of the trace event records, for footprint accounting.
const (
	WriteEventBytes = 16
	ReadEventBytes  = 12
)

// Recorder wraps a System for golden-trace recording: all traffic is
// forwarded unchanged, RAM-region writes are appended to Writes and every
// read's consumed data to Reads, tagged with the caller-maintained Cycle.
// The recorded write log is what lets a ReplayBus stand in for the main
// CPU during injection replay; the read log pins the exact input stream
// for the trace self-check tests.
type Recorder struct {
	Sys    *System
	Cycle  int32
	Writes []WriteEvent
	Reads  []ReadEvent
}

// ReadWord implements Bus, logging the consumed data.
func (r *Recorder) ReadWord(addr uint32) uint32 {
	w := r.Sys.ReadWord(addr)
	r.Reads = append(r.Reads, ReadEvent{Cycle: r.Cycle, Addr: addr &^ 3, Data: w})
	return w
}

// WriteMasked implements Bus, logging writes that land in RAM. External
// (peripheral) writes are forwarded but not logged: replayed reads from
// the external region are pure (SensorValue), so peripheral state never
// feeds back into a replayed CPU.
func (r *Recorder) WriteMasked(addr, data, mask uint32) {
	r.Sys.WriteMasked(addr, data, mask)
	if addr < RAMBytes {
		r.Writes = append(r.Writes, WriteEvent{Cycle: r.Cycle, Addr: addr &^ 3, Data: data, Mask: mask})
	}
}

// ReplayBus serves a redundant CPU the exact memory inputs a live
// main-CPU-driven System would have: reads come from a RAM image
// reconstructed at the bus's current golden cycle (external reads are the
// pure SensorValue pattern), and writes are discarded, because a
// compare-only CPU never drives the bus (Monitor semantics).
//
// The image is positioned with Load (full snapshot copy) and moved with
// AdvanceTo / Seek. Seek is incremental: repositioning touches only the
// words the golden write log says changed between the old and new
// positions, so a worker reusing one ReplayBus across thousands of
// experiments pays word-sized deltas instead of a 256 KiB memcpy per
// experiment. The zero value is valid; the image buffer is allocated on
// first Load and reused forever after (zero-realloc discipline).
type ReplayBus struct {
	ram   []uint32
	log   []WriteEvent
	pos   int // index of the first log entry with Cycle > cycle
	cycle int // the image reflects golden RAM at the end of this cycle
}

// Cycle returns the golden cycle the image currently reflects.
func (r *ReplayBus) Cycle() int { return r.cycle }

// Load positions the bus on a new golden timeline: the image becomes a
// copy of snapRAM (the full RAM image snapshotted at the end of
// snapCycle) and log becomes the timeline's write history. Use Seek for
// subsequent repositioning on the same timeline.
func (r *ReplayBus) Load(snapRAM []uint32, snapCycle int, log []WriteEvent) {
	if r.ram == nil {
		r.ram = make([]uint32, RAMBytes/4)
	}
	n := copy(r.ram, snapRAM)
	for i := n; i < len(r.ram); i++ {
		r.ram[i] = 0
	}
	r.log = log
	r.cycle = snapCycle
	r.pos = sort.Search(len(log), func(i int) bool { return int(log[i].Cycle) > snapCycle })
}

// AdvanceTo applies all golden writes up to and including cycle, moving
// the image forward on its timeline. The injection loop calls this right
// before stepping the redundant CPU for a cycle, mirroring the legacy
// dual-CPU ordering where the main CPU's writes of cycle N are visible to
// the redundant CPU stepping cycle N.
func (r *ReplayBus) AdvanceTo(cycle int) {
	for r.pos < len(r.log) && int(r.log[r.pos].Cycle) <= cycle {
		e := &r.log[r.pos]
		i := e.Addr / 4
		r.ram[i] = r.ram[i]&^e.Mask | e.Data&e.Mask
		r.pos++
	}
	r.cycle = cycle
}

// Seek repositions the image to the end of golden cycle target on the
// timeline installed by the last Load. snapRAM/snapCycle must be a golden
// snapshot at or before target (the rewind source). Moving forward is a
// plain AdvanceTo; moving backward resets only the words written in
// (target, current] to their snapshot values and replays the writes in
// (snapCycle, target], both tiny compared to a full image copy.
func (r *ReplayBus) Seek(snapRAM []uint32, snapCycle, target int) {
	if target >= r.cycle {
		r.AdvanceTo(target)
		return
	}
	lo := sort.Search(len(r.log), func(i int) bool { return int(r.log[i].Cycle) > target })
	// Undo writes beyond target: back to the snapshot's view of the word.
	for _, e := range r.log[lo:r.pos] {
		r.ram[e.Addr/4] = snapRAM[e.Addr/4]
	}
	// Re-apply the writes between the snapshot and the target, in order.
	// Applying a write whose effect is already present is idempotent, so
	// words untouched by the undo loop come out unchanged.
	start := sort.Search(len(r.log), func(i int) bool { return int(r.log[i].Cycle) > snapCycle })
	for _, e := range r.log[start:lo] {
		i := e.Addr / 4
		r.ram[i] = r.ram[i]&^e.Mask | e.Data&e.Mask
	}
	r.pos = lo
	r.cycle = target
}

// ReadWord implements Bus against the reconstructed image.
func (r *ReplayBus) ReadWord(addr uint32) uint32 {
	if addr >= ExtBase {
		return SensorValue(addr)
	}
	i := addr / 4
	if int(i) >= len(r.ram) {
		return 0
	}
	return r.ram[i]
}

// WriteMasked implements Bus by dropping the write, exactly like Monitor:
// a faulty redundant CPU cannot corrupt the golden image.
func (r *ReplayBus) WriteMasked(addr, data, mask uint32) {}
