// Package mem models the memory system outside the CPU's sphere of
// replication: the tightly-coupled SRAM (instruction and data ports) and an
// external "ECU peripheral" region reached through the CPU's Bus Interface
// Unit. In CPU-level lockstepping (Figure 1c of the paper) memories are
// outside the sphere and assumed ECC-protected, so this package is never a
// fault-injection target; it only has to be deterministic.
package mem

import (
	"fmt"

	"lockstep/internal/asm"
)

// Memory map constants.
const (
	// RAMBytes is the size of the tightly-coupled SRAM. Code and data share
	// one flat TCM image (separate instruction/data ports, single array).
	RAMBytes = 256 * 1024

	// ExtBase is the start of the external peripheral region, reached via
	// the BIU with multi-cycle latency.
	ExtBase = 0x8000_0000

	// ExtActuatorWords is the size of the peripheral's write-capture ring.
	ExtActuatorWords = 64
)

// Bus is the CPU's view of the world outside the sphere of replication.
// ReadWord must be side-effect free so that redundant (compare-only) CPUs
// can share one System with the main CPU.
type Bus interface {
	// ReadWord returns the word at the word-aligned address addr&^3.
	// Addresses in the external region return peripheral data.
	ReadWord(addr uint32) uint32
	// WriteMasked writes the bits selected by mask (an expanded byte-lane
	// mask) of data to the word at addr&^3.
	WriteMasked(addr, data, mask uint32)
}

// System is the memory system driven by the main CPU: SRAM plus the
// external peripheral.
type System struct {
	ram []uint32
	ext ExtPort
}

// NewSystem returns a zeroed memory system.
func NewSystem() *System {
	return &System{ram: make([]uint32, RAMBytes/4)}
}

// Reset zeroes RAM and the peripheral, preserving capacity.
func (s *System) Reset() {
	for i := range s.ram {
		s.ram[i] = 0
	}
	s.ext = ExtPort{}
}

// LoadProgram copies an assembled image into RAM.
// It returns an error if the image does not fit.
func (s *System) LoadProgram(p *asm.Program) error {
	base := p.Origin / 4
	if int(base)+len(p.Words) > len(s.ram) {
		return fmt.Errorf("mem: program [0x%x, 0x%x) exceeds %d-byte RAM",
			p.Origin, p.Origin+uint32(len(p.Words)*4), RAMBytes)
	}
	copy(s.ram[base:], p.Words)
	return nil
}

// ReadWord implements Bus.
func (s *System) ReadWord(addr uint32) uint32 {
	if addr >= ExtBase {
		return s.ext.read(addr)
	}
	i := addr / 4
	if int(i) >= len(s.ram) {
		return 0
	}
	return s.ram[i]
}

// WriteMasked implements Bus.
func (s *System) WriteMasked(addr, data, mask uint32) {
	if addr >= ExtBase {
		s.ext.write(addr, data, mask)
		return
	}
	i := addr / 4
	if int(i) >= len(s.ram) {
		return
	}
	s.ram[i] = s.ram[i]&^mask | data&mask
}

// Ext exposes the peripheral for inspection by tests and examples.
func (s *System) Ext() *ExtPort { return &s.ext }

// RestoreRAM overwrites RAM from a snapshot taken with Snapshot(0, ...).
// Short snapshots leave the tail of RAM untouched.
func (s *System) RestoreRAM(words []uint32) {
	copy(s.ram, words)
}

// Snapshot returns a copy of a RAM word range for test assertions.
func (s *System) Snapshot(addr uint32, words int) []uint32 {
	out := make([]uint32, words)
	copy(out, s.ram[addr/4:])
	return out
}

// Monitor adapts a System for a redundant, compare-only CPU: reads are
// forwarded (they are side-effect free) and writes are discarded, because
// in CPU-level lockstepping only the main CPU drives the bus. A faulty
// redundant CPU therefore cannot corrupt the shared memory image.
type Monitor struct {
	Sys *System
}

// ReadWord implements Bus.
func (m Monitor) ReadWord(addr uint32) uint32 { return m.Sys.ReadWord(addr) }

// WriteMasked implements Bus by dropping the write.
func (m Monitor) WriteMasked(addr, data, mask uint32) {}

// ExtWrite is one recorded actuator write.
type ExtWrite struct {
	Addr, Data, Mask uint32
}

// ExtPort is a deterministic external peripheral standing in for the
// automotive sensors and actuators an ECU talks to: reads return a fixed
// pseudo-random "sensor" pattern derived from the address, and writes are
// captured into an actuator ring so workloads have observable external
// output traffic through the BIU.
type ExtPort struct {
	Actuator [ExtActuatorWords]uint32
	Writes   uint64 // total accepted writes
	Reads    uint64 // total reads served

	// TraceCap > 0 records the first TraceCap writes into TraceLog,
	// giving tests an ordered view of the actuator output stream.
	TraceCap int
	TraceLog []ExtWrite
}

func (e *ExtPort) read(addr uint32) uint32 {
	e.Reads++
	return SensorValue(addr)
}

func (e *ExtPort) write(addr, data, mask uint32) {
	idx := (addr / 4) % ExtActuatorWords
	e.Actuator[idx] = e.Actuator[idx]&^mask | data&mask
	e.Writes++
	if len(e.TraceLog) < e.TraceCap {
		e.TraceLog = append(e.TraceLog, ExtWrite{Addr: addr, Data: data, Mask: mask})
	}
}

// SensorValue is the deterministic read pattern of the peripheral region:
// a 32-bit mix of the word address. It is pure so golden and replayed runs
// observe identical inputs.
func SensorValue(addr uint32) uint32 {
	x := addr &^ 3
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

// ByteLaneMask expands a 4-bit byte-enable into a 32-bit write mask.
func ByteLaneMask(be uint32) uint32 {
	var m uint32
	if be&1 != 0 {
		m |= 0x0000_00FF
	}
	if be&2 != 0 {
		m |= 0x0000_FF00
	}
	if be&4 != 0 {
		m |= 0x00FF_0000
	}
	if be&8 != 0 {
		m |= 0xFF00_0000
	}
	return m
}
