package mem

import (
	"testing"
	"testing/quick"

	"lockstep/internal/asm"
)

func TestByteLaneMask(t *testing.T) {
	cases := map[uint32]uint32{
		0b0000: 0x0000_0000,
		0b0001: 0x0000_00FF,
		0b0010: 0x0000_FF00,
		0b0100: 0x00FF_0000,
		0b1000: 0xFF00_0000,
		0b1111: 0xFFFF_FFFF,
		0b0101: 0x00FF_00FF,
	}
	for be, want := range cases {
		if got := ByteLaneMask(be); got != want {
			t.Errorf("ByteLaneMask(%#b) = %#x, want %#x", be, got, want)
		}
	}
}

func TestWriteMaskedMergesLanes(t *testing.T) {
	s := NewSystem()
	s.WriteMasked(0x100, 0xAABBCCDD, 0xFFFF_FFFF)
	s.WriteMasked(0x100, 0x0000_EE00, 0x0000_FF00)
	if got := s.ReadWord(0x100); got != 0xAABBEEDD {
		t.Fatalf("merged word %#x", got)
	}
}

// TestWriteMaskedProperty: only masked bits change.
func TestWriteMaskedProperty(t *testing.T) {
	f := func(addrRaw, old, data, beRaw uint32) bool {
		addr := addrRaw % (RAMBytes - 4) &^ 3
		mask := ByteLaneMask(beRaw & 0xF)
		s := NewSystem()
		s.WriteMasked(addr, old, 0xFFFF_FFFF)
		s.WriteMasked(addr, data, mask)
		got := s.ReadWord(addr)
		return got == old&^mask|data&mask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfRangeAccessIsBenign(t *testing.T) {
	s := NewSystem()
	s.WriteMasked(RAMBytes+0x1000, 0xFFFFFFFF, 0xFFFFFFFF) // hole: dropped
	if got := s.ReadWord(RAMBytes + 0x1000); got != 0 {
		t.Fatalf("hole read %#x", got)
	}
}

func TestSensorDeterminism(t *testing.T) {
	a := SensorValue(ExtBase + 0x40)
	b := SensorValue(ExtBase + 0x40)
	if a != b {
		t.Fatal("sensor not deterministic")
	}
	if SensorValue(ExtBase) == SensorValue(ExtBase+4) {
		t.Fatal("adjacent sensors should differ")
	}
	// Sub-word addresses alias to the word.
	if SensorValue(ExtBase+0x41) != SensorValue(ExtBase+0x40) {
		t.Fatal("sensor should be word-granular")
	}
}

func TestExtPortActuator(t *testing.T) {
	s := NewSystem()
	s.WriteMasked(ExtBase+8, 0x1234, 0xFFFF_FFFF)
	if got := s.Ext().Actuator[2]; got != 0x1234 {
		t.Fatalf("actuator[2] = %#x", got)
	}
	if s.Ext().Writes != 1 {
		t.Fatalf("writes = %d", s.Ext().Writes)
	}
	s.ReadWord(ExtBase)
	if s.Ext().Reads != 1 {
		t.Fatalf("reads = %d", s.Ext().Reads)
	}
	// Ring wrap.
	s.WriteMasked(ExtBase+uint32(ExtActuatorWords*4)+8, 0x5678, 0xFFFF_FFFF)
	if got := s.Ext().Actuator[2]; got != 0x5678 {
		t.Fatalf("wrapped actuator[2] = %#x", got)
	}
}

func TestExtPortTrace(t *testing.T) {
	s := NewSystem()
	s.Ext().TraceCap = 2
	for i := uint32(0); i < 5; i++ {
		s.WriteMasked(ExtBase+i*4, i, 0xFFFF_FFFF)
	}
	log := s.Ext().TraceLog
	if len(log) != 2 {
		t.Fatalf("trace length %d, want cap 2", len(log))
	}
	if log[0].Addr != ExtBase || log[1].Addr != ExtBase+4 {
		t.Fatalf("trace order wrong: %+v", log)
	}
}

func TestMonitorDropsWrites(t *testing.T) {
	s := NewSystem()
	s.WriteMasked(0x200, 0xCAFE, 0xFFFF_FFFF)
	m := Monitor{Sys: s}
	m.WriteMasked(0x200, 0xDEAD, 0xFFFF_FFFF)
	m.WriteMasked(ExtBase, 0xDEAD, 0xFFFF_FFFF)
	if got := m.ReadWord(0x200); got != 0xCAFE {
		t.Fatalf("monitor write leaked: %#x", got)
	}
	if s.Ext().Writes != 0 {
		t.Fatal("monitor peripheral write leaked")
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := NewSystem()
	for i := uint32(0); i < 64; i += 4 {
		s.WriteMasked(i, i*7, 0xFFFF_FFFF)
	}
	snap := s.Snapshot(0, RAMBytes/4)
	s.WriteMasked(8, 0xFFFF_FFFF, 0xFFFF_FFFF)
	s.RestoreRAM(snap)
	if got := s.ReadWord(8); got != 56 {
		t.Fatalf("restore failed: %#x", got)
	}
}

func TestReset(t *testing.T) {
	s := NewSystem()
	s.WriteMasked(0, 1, 0xFFFF_FFFF)
	s.WriteMasked(ExtBase, 2, 0xFFFF_FFFF)
	s.Reset()
	if s.ReadWord(0) != 0 || s.Ext().Writes != 0 || s.Ext().Actuator[0] != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestLoadProgram(t *testing.T) {
	s := NewSystem()
	p := &asm.Program{Origin: 0x40, Words: []uint32{0xAAAA, 0xBBBB}}
	if err := s.LoadProgram(p); err != nil {
		t.Fatal(err)
	}
	if s.ReadWord(0x40) != 0xAAAA || s.ReadWord(0x44) != 0xBBBB {
		t.Fatal("program not loaded")
	}
	// Too large.
	big := &asm.Program{Origin: RAMBytes - 4, Words: []uint32{1, 2}}
	if err := s.LoadProgram(big); err == nil {
		t.Fatal("oversized program accepted")
	}
}
