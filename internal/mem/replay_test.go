package mem

import (
	"math/rand"
	"testing"
)

// TestRecorderLogsTraffic: RAM writes are logged with their cycle tag and
// forwarded; external writes are forwarded but not logged; every read is
// logged with the data actually served.
func TestRecorderLogsTraffic(t *testing.T) {
	sys := NewSystem()
	rec := &Recorder{Sys: sys}

	rec.Cycle = 3
	rec.WriteMasked(0x100, 0xdeadbeef, 0xffffffff)
	rec.Cycle = 5
	rec.WriteMasked(0x102, 0x00ee0000, 0x00ff0000) // masked lanes, same word
	rec.WriteMasked(ExtBase+0x40, 0x1234, 0xffffffff)

	if got := sys.ReadWord(0x100); got != 0xdeeebeef {
		t.Fatalf("RAM word = %#x, want 0xdeeebeef", got)
	}
	if sys.Ext().Writes != 1 {
		t.Fatalf("peripheral saw %d writes, want 1", sys.Ext().Writes)
	}
	want := []WriteEvent{
		{Cycle: 3, Addr: 0x100, Data: 0xdeadbeef, Mask: 0xffffffff},
		{Cycle: 5, Addr: 0x100, Data: 0x00ee0000, Mask: 0x00ff0000},
	}
	if len(rec.Writes) != len(want) {
		t.Fatalf("logged %d writes, want %d (ext writes must not be logged)", len(rec.Writes), len(want))
	}
	for i, w := range want {
		if rec.Writes[i] != w {
			t.Fatalf("write %d = %+v, want %+v", i, rec.Writes[i], w)
		}
	}

	rec.Cycle = 7
	if got := rec.ReadWord(0x100); got != 0xdeeebeef {
		t.Fatalf("read through recorder = %#x, want 0xdeeebeef", got)
	}
	ext := rec.ReadWord(ExtBase + 0x80)
	if ext != SensorValue(ExtBase+0x80) {
		t.Fatalf("ext read = %#x, want pure sensor value", ext)
	}
	if len(rec.Reads) != 2 ||
		rec.Reads[0] != (ReadEvent{Cycle: 7, Addr: 0x100, Data: 0xdeeebeef}) ||
		rec.Reads[1] != (ReadEvent{Cycle: 7, Addr: ExtBase + 0x80, Data: ext}) {
		t.Fatalf("read log %+v unexpected", rec.Reads)
	}
}

// TestReplayBusReads: reads hit the loaded image, external addresses are
// the pure sensor pattern, out-of-range addresses read as 0, and writes
// are dropped (Monitor semantics).
func TestReplayBusReads(t *testing.T) {
	snap := make([]uint32, RAMBytes/4)
	snap[4] = 0xabcd1234
	var bus ReplayBus
	bus.Load(snap, 0, nil)

	if got := bus.ReadWord(0x10); got != 0xabcd1234 {
		t.Fatalf("image read = %#x, want 0xabcd1234", got)
	}
	if got := bus.ReadWord(ExtBase + 0x20); got != SensorValue(ExtBase+0x20) {
		t.Fatalf("ext read = %#x, want sensor value", got)
	}
	if got := bus.ReadWord(RAMBytes + 64); got != 0 {
		t.Fatalf("out-of-range read = %#x, want 0", got)
	}
	bus.WriteMasked(0x10, 0xffffffff, 0xffffffff)
	if got := bus.ReadWord(0x10); got != 0xabcd1234 {
		t.Fatalf("write was not dropped: word now %#x", got)
	}
}

// randomLog builds a deterministic synthetic golden timeline: a snapshot
// image per snapshot cycle plus a write log, by actually applying the
// writes to a model RAM.
func randomLog(rng *rand.Rand, cycles, writesPerCycle, words int) (log []WriteEvent, at map[int][]uint32) {
	ram := make([]uint32, words)
	at = map[int][]uint32{0: append([]uint32(nil), ram...)}
	for cyc := 1; cyc <= cycles; cyc++ {
		for w := 0; w < writesPerCycle; w++ {
			e := WriteEvent{
				Cycle: int32(cyc),
				Addr:  uint32(rng.Intn(words)) * 4,
				Data:  rng.Uint32(),
				Mask:  []uint32{0xffffffff, 0x0000ffff, 0xff000000}[rng.Intn(3)],
			}
			ram[e.Addr/4] = ram[e.Addr/4]&^e.Mask | e.Data&e.Mask
			log = append(log, e)
		}
		at[cyc] = append([]uint32(nil), ram...)
	}
	return log, at
}

// TestReplayBusSeekMatchesLoad: for every (from, to) pair on a synthetic
// timeline, incrementally Seeking an image equals a fresh Load at the
// target — rewinds, forwards and no-ops all reconstruct the exact RAM.
func TestReplayBusSeekMatchesLoad(t *testing.T) {
	const cycles, words = 40, 32
	rng := rand.New(rand.NewSource(7))
	log, at := randomLog(rng, cycles, 3, words)

	check := func(bus *ReplayBus, cycle int, what string) {
		t.Helper()
		want := at[cycle]
		for i := 0; i < words; i++ {
			if got := bus.ReadWord(uint32(i) * 4); got != want[i] {
				t.Fatalf("%s at cycle %d: word %d = %#x, want %#x", what, cycle, i, got, want[i])
			}
		}
	}

	for from := 0; from <= cycles; from++ {
		for to := 0; to <= cycles; to++ {
			// Snapshot every 10 cycles: the rewind source is the latest
			// snapshot at or before the target, like Golden.restore picks.
			snapCycle := to / 10 * 10
			var bus ReplayBus
			bus.Load(at[0], 0, log)
			bus.AdvanceTo(from)
			check(&bus, from, "AdvanceTo")
			bus.Seek(at[snapCycle], snapCycle, to)
			if bus.Cycle() != to {
				t.Fatalf("Seek(%d->%d): Cycle() = %d", from, to, bus.Cycle())
			}
			check(&bus, to, "Seek")
			// And the image must remain seekable afterwards.
			bus.AdvanceTo(cycles)
			check(&bus, cycles, "AdvanceTo after Seek")
		}
	}
}

// TestReplayBusLoadReuse: re-Loading a shorter image zeroes the tail, so
// a buffer reused across timelines cannot leak stale words.
func TestReplayBusLoadReuse(t *testing.T) {
	full := make([]uint32, RAMBytes/4)
	for i := range full {
		full[i] = 0xffffffff
	}
	var bus ReplayBus
	bus.Load(full, 0, nil)
	short := []uint32{1, 2, 3}
	bus.Load(short, 0, nil)
	if got := bus.ReadWord(0); got != 1 {
		t.Fatalf("word 0 = %#x, want 1", got)
	}
	if got := bus.ReadWord(0x40); got != 0 {
		t.Fatalf("word past the short snapshot = %#x, want 0 (stale data leaked)", got)
	}
}
