// Package sbist models software built-in self-test (SBIST) diagnostics and
// the lockstep error reaction time (LERT) of the paper's baseline and
// prediction models (Section IV-C, Figure 9).
//
// When the checker detects an error, the system controller runs the
// software test library (STL) of each CPU unit in some order until a hard
// fault is found; if none is found the error is deemed soft and the CPUs
// are reset and the application restarted. LERT is the cycle count of that
// whole reaction. Five models order the STLs differently:
//
//	base-random        new random unit order per error
//	base-ascending     units in ascending STL latency
//	base-manifest      units in descending error manifestation rate
//	pred-location-only the predictor's per-error unit order
//	pred-comb          location order + error type prediction, which skips
//	                   SBIST entirely for predicted-soft errors
package sbist

import (
	"math/rand"
	"sort"

	"lockstep/internal/core"
	"lockstep/internal/dataset"
	"lockstep/internal/stats"
	"lockstep/internal/units"
)

// Table access latencies of the paper's Table II.
const (
	OnChipTableAccess  = 2
	OffChipTableAccess = 100
)

// Config carries the latency environment shared by all models.
type Config struct {
	Gran core.Granularity
	// STL latency in cycles per unit, indexed by unit ID at Gran.
	STL []int64
	// Restart penalty per kernel in cycles (reset + outer-loop restart).
	Restart map[string]int64
	// TableAccess is the prediction table read latency (prediction models
	// only).
	TableAccess int64
}

// DefaultSTL returns synthetic per-unit STL latencies matching the
// published range of Table II ([25k, 170k, 700k] min/mean/max for the
// seven-unit configuration) and, for the fine configuration, the DPU STL
// broken into its seven constituents (Section V-D).
func DefaultSTL(gran core.Granularity) []int64 {
	if gran == core.Fine13 {
		out := make([]int64, units.NumFine)
		out[units.FinePFU] = 60_000
		out[units.FineIMC] = 45_000
		out[units.FineLSU] = 90_000
		out[units.FineDMC] = 50_000
		out[units.FineBIU] = 25_000
		out[units.FineSCU] = 200_000
		out[units.FineDPUDecode] = 60_000
		out[units.FineDPUOperand] = 40_000
		out[units.FineDPURegFile] = 180_000
		out[units.FineDPUALU] = 150_000
		out[units.FineDPUMul] = 90_000
		out[units.FineDPUDiv] = 100_000
		out[units.FineDPURetire] = 80_000
		return out
	}
	out := make([]int64, units.NumUnits)
	out[units.PFU] = 60_000
	out[units.IMC] = 45_000
	out[units.DPU] = 700_000
	out[units.LSU] = 90_000
	out[units.DMC] = 50_000
	out[units.BIU] = 25_000
	out[units.SCU] = 200_000
	return out
}

// NewConfig builds a Config with default STLs and the given per-kernel
// restart penalties and table access latency.
func NewConfig(gran core.Granularity, restart map[string]int64, tableAccess int64) Config {
	return Config{Gran: gran, STL: DefaultSTL(gran), Restart: restart, TableAccess: tableAccess}
}

// RestartOf returns the restart penalty for a kernel, falling back to the
// paper's Table II mean (10k cycles) for unknown kernels.
func (c Config) RestartOf(kernel string) int64 {
	if v, ok := c.Restart[kernel]; ok {
		return v
	}
	return 10_000
}

// allSTL is the run-to-completion SBIST cost (every unit tested).
func (c Config) allSTL() int64 {
	var sum int64
	for _, l := range c.STL {
		sum += l
	}
	return sum
}

// scan runs STLs in the given order until the faulty unit's STL fires.
func (c Config) scan(order []uint8, faulty int) (cycles int64, tested int) {
	for i, u := range order {
		cycles += c.STL[u]
		if int(u) == faulty {
			return cycles, i + 1
		}
	}
	// The faulty unit must appear in a full order; partial orders are
	// completed by the caller before calling scan.
	return cycles, len(order)
}

// Result is one error's reaction accounting.
type Result struct {
	Cycles      int64 // the LERT
	UnitsTested int   // STLs executed before reaching the safe state
	SBISTRun    bool  // whether SBIST was invoked at all
}

// Model computes the reaction for one detected lockstep error.
type Model interface {
	Name() string
	React(r dataset.Record, rng *rand.Rand) Result
}

// reactBIST implements the Figure 9a/9b skeleton shared by baselines and
// the location-only predictor: run STLs in the given order; hard errors
// stop at the faulty unit, soft errors run every STL and then pay the
// restart penalty.
func (c Config) reactBIST(order []uint8, r dataset.Record, extra int64) Result {
	if r.Hard() {
		cycles, tested := c.scan(order, c.Gran.UnitOf(r))
		return Result{Cycles: extra + cycles, UnitsTested: tested, SBISTRun: true}
	}
	return Result{
		Cycles:      extra + c.allSTL() + c.RestartOf(r.Kernel),
		UnitsTested: len(order),
		SBISTRun:    true,
	}
}

// ---- baseline models ------------------------------------------------------

// BaseRandom orders the STLs pseudo-randomly anew for every detected error
// (the paper's dynamic baseline).
type BaseRandom struct{ Cfg Config }

func (m BaseRandom) Name() string { return "base-random" }

func (m BaseRandom) React(r dataset.Record, rng *rand.Rand) Result {
	n := m.Cfg.Gran.Units()
	order := make([]uint8, n)
	for i := range order {
		order[i] = uint8(i)
	}
	rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	return m.Cfg.reactBIST(order, r, 0)
}

// BaseAscending orders the STLs by ascending latency, so cheap units are
// ruled out first.
type BaseAscending struct {
	Cfg   Config
	order []uint8
}

// NewBaseAscending builds the static ascending-latency order.
func NewBaseAscending(cfg Config) *BaseAscending {
	lat := make([]float64, len(cfg.STL))
	for i, l := range cfg.STL {
		lat[i] = float64(l)
	}
	idx := stats.ArgsortAsc(lat)
	order := make([]uint8, len(idx))
	for i, u := range idx {
		order[i] = uint8(u)
	}
	return &BaseAscending{Cfg: cfg, order: order}
}

func (m *BaseAscending) Name() string { return "base-ascending" }

func (m *BaseAscending) React(r dataset.Record, rng *rand.Rand) Result {
	return m.Cfg.reactBIST(m.order, r, 0)
}

// BaseManifest orders the STLs by descending error manifestation rate
// measured on the training set: units that expose faults most often are
// tested first.
type BaseManifest struct {
	Cfg   Config
	order []uint8
}

// NewBaseManifest derives the manifestation-rate order from training data.
func NewBaseManifest(cfg Config, train *dataset.Dataset) *BaseManifest {
	n := cfg.Gran.Units()
	injected := make([]float64, n)
	manifested := make([]float64, n)
	for _, rec := range train.Records {
		u := cfg.Gran.UnitOf(rec)
		injected[u]++
		if rec.Detected {
			manifested[u]++
		}
	}
	rates := make([]float64, n)
	for u := range rates {
		if injected[u] > 0 {
			rates[u] = manifested[u] / injected[u]
		}
	}
	idx := stats.ArgsortDesc(rates)
	order := make([]uint8, n)
	for i, u := range idx {
		order[i] = uint8(u)
	}
	return &BaseManifest{Cfg: cfg, order: order}
}

func (m *BaseManifest) Name() string { return "base-manifest" }

func (m *BaseManifest) React(r dataset.Record, rng *rand.Rand) Result {
	return m.Cfg.reactBIST(m.order, r, 0)
}

// ---- prediction models ------------------------------------------------------

// PredLocationOnly is the Figure 9b model: the SBIST tests units in the
// predictor's order (most to least likely), with no type prediction.
type PredLocationOnly struct {
	Cfg   Config
	Table *core.Table
}

func (m PredLocationOnly) Name() string { return "pred-location-only" }

func (m PredLocationOnly) React(r dataset.Record, rng *rand.Rand) Result {
	order, _ := m.Table.PredictOrder(r.DSR, rng)
	return m.Cfg.reactBIST(order, r, m.Cfg.TableAccess)
}

// PredComb is the Figure 9c model: location prediction plus the 1-bit type
// prediction. Predicted-soft errors skip SBIST entirely (reset & restart);
// if a predicted-soft error was actually hard, the error recurs and is
// then always treated as hard (Section IV-C3), and diagnosis proceeds in
// the predicted order. The interval between the restart and the error's
// recurrence is normal operation (the system is available), so the
// accounted reaction time for the misprediction is the first reaction
// (table access + restart) plus the second reaction (table access + scan)
// — which keeps pred-comb's LERT bounded by the baseline's, as Section
// IV-C3 asserts ("safety is never compromised").
type PredComb struct {
	Cfg   Config
	Table *core.Table
}

func (m PredComb) Name() string { return "pred-comb" }

func (m PredComb) React(r dataset.Record, rng *rand.Rand) Result {
	order, predHard := m.Table.PredictOrder(r.DSR, rng)
	base := m.Cfg.TableAccess
	if predHard {
		// Same flow as location-only: scan; if no hard fault found the
		// error was soft (type misprediction) and the system restarts.
		return m.Cfg.reactBIST(order, r, base)
	}
	// Predicted soft: reset & restart immediately.
	if !r.Hard() {
		return Result{Cycles: base + m.Cfg.RestartOf(r.Kernel), UnitsTested: 0, SBISTRun: false}
	}
	// Type misprediction on a hard error: the recurrence is treated as
	// hard and diagnosed in the predicted order.
	cycles, tested := m.Cfg.scan(order, m.Cfg.Gran.UnitOf(r))
	return Result{
		Cycles:      base + m.Cfg.RestartOf(r.Kernel) + m.Cfg.TableAccess + cycles,
		UnitsTested: tested,
		SBISTRun:    true,
	}
}

// ---- dynamic-predictor ablation ---------------------------------------------

// PredDynamic wraps the Section VII dynamic predictor: it predicts from
// accumulated error history and observes the diagnosed truth after every
// error. Evaluate it on a record stream in arrival order.
type PredDynamic struct {
	Cfg Config
	Dyn *core.Dynamic
}

func (m PredDynamic) Name() string { return "pred-dynamic" }

func (m PredDynamic) React(r dataset.Record, rng *rand.Rand) Result {
	p := m.Dyn.Predict(r.DSR)
	res := func() Result {
		if p.Hard {
			return m.Cfg.reactBIST(p.Units, r, m.Cfg.TableAccess)
		}
		if !r.Hard() {
			return Result{Cycles: m.Cfg.TableAccess + m.Cfg.RestartOf(r.Kernel)}
		}
		cycles, tested := m.Cfg.scan(p.Units, m.Cfg.Gran.UnitOf(r))
		return Result{
			Cycles:      m.Cfg.TableAccess + m.Cfg.RestartOf(r.Kernel) + m.Cfg.TableAccess + cycles,
			UnitsTested: tested,
			SBISTRun:    true,
		}
	}()
	// Diagnosis (BIST or recurrence) reveals the truth; learn from it.
	m.Dyn.Observe(r.DSR, m.Cfg.Gran.UnitOf(r), r.Hard())
	return res
}

// ---- evaluation -------------------------------------------------------------

// Eval aggregates a model's reaction over a test set of detected errors.
// Besides the paper's mean LERT, it reports the p95 and maximum reaction
// times — the quantities a safety engineer provisions the hard deadline
// against (Figure 2's statically provisioned error reaction time).
type Eval struct {
	Model      string
	MeanLERT   float64
	P95LERT    float64
	MaxLERT    float64
	MeanUnits  float64
	SBISTShare float64 // fraction of errors that invoked SBIST
	N          int
}

// Evaluate runs the model over every detected error in the test set.
func Evaluate(m Model, test *dataset.Dataset, seed int64) Eval {
	rng := rand.New(rand.NewSource(seed))
	var lert, unitsSum, sbist float64
	var all []int64
	for _, r := range test.Records {
		if !r.Detected {
			continue
		}
		res := m.React(r, rng)
		lert += float64(res.Cycles)
		unitsSum += float64(res.UnitsTested)
		if res.SBISTRun {
			sbist++
		}
		all = append(all, res.Cycles)
	}
	n := len(all)
	e := Eval{Model: m.Name(), N: n}
	if n > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		e.MeanLERT = lert / float64(n)
		e.P95LERT = float64(all[min(n-1, n*95/100)])
		e.MaxLERT = float64(all[n-1])
		e.MeanUnits = unitsSum / float64(n)
		e.SBISTShare = sbist / float64(n)
	}
	return e
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
