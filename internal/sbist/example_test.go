package sbist_test

import (
	"fmt"
	"math/rand"

	"lockstep/internal/core"
	"lockstep/internal/dataset"
	"lockstep/internal/lockstep"
	"lockstep/internal/sbist"
	"lockstep/internal/units"
)

// ExamplePredComb shows the Figure 9c reaction-time accounting for one
// hard error whose signature the table knows: prediction table access plus
// a single STL, versus the baseline's worst-case ordering.
func ExamplePredComb() {
	// Train a toy table: DSR 0b10 means "hard fault in the LSU".
	log := &dataset.Dataset{}
	for i := 0; i < 5; i++ {
		log.Records = append(log.Records, dataset.Record{
			Kernel: "demo", Detected: true, DSR: 0b10,
			Unit: units.LSU, Fine: units.FineLSU, Kind: lockstep.Stuck0,
		})
	}
	table := core.Train(log, core.Coarse7, 0)
	cfg := sbist.NewConfig(core.Coarse7,
		map[string]int64{"demo": 10_000}, sbist.OffChipTableAccess)

	err := dataset.Record{
		Kernel: "demo", Detected: true, DSR: 0b10,
		Unit: units.LSU, Fine: units.FineLSU, Kind: lockstep.Stuck1,
	}
	rng := rand.New(rand.NewSource(1))
	pred := sbist.PredComb{Cfg: cfg, Table: table}.React(err, rng)
	base := sbist.NewBaseAscending(cfg).React(err, rng)
	fmt.Printf("pred-comb: %d cycles, %d unit tested\n", pred.Cycles, pred.UnitsTested)
	fmt.Printf("baseline:  %d cycles, %d units tested\n", base.Cycles, base.UnitsTested)
	// Output:
	// pred-comb: 90100 cycles, 1 unit tested
	// baseline:  270000 cycles, 5 units tested
}
