package sbist

import (
	"math/rand"
	"testing"

	"lockstep/internal/core"
	"lockstep/internal/dataset"
	"lockstep/internal/lockstep"
	"lockstep/internal/units"
)

func testConfig(gran core.Granularity) Config {
	return NewConfig(gran, map[string]int64{"k": 5000}, OnChipTableAccess)
}

func hardRec(fine units.Fine, dsr uint64) dataset.Record {
	return dataset.Record{
		Kernel: "k", Detected: true, DSR: dsr,
		Unit: fine.Coarse(), Fine: fine, Kind: lockstep.Stuck1,
		InjectCycle: 100, DetectCycle: 300,
	}
}

func softRec(fine units.Fine, dsr uint64) dataset.Record {
	r := hardRec(fine, dsr)
	r.Kind = lockstep.SoftFlip
	return r
}

func TestDefaultSTLMatchesTableII(t *testing.T) {
	stl := DefaultSTL(core.Coarse7)
	if len(stl) != 7 {
		t.Fatalf("%d coarse STLs", len(stl))
	}
	min, max, sum := stl[0], stl[0], int64(0)
	for _, l := range stl {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
		sum += l
	}
	if min != 25_000 || max != 700_000 {
		t.Fatalf("range [%d, %d], want [25000, 700000] (paper Table II)", min, max)
	}
	mean := sum / 7
	if mean < 150_000 || mean > 190_000 {
		t.Fatalf("mean %d not near the paper's 170k", mean)
	}
}

func TestFineSTLPartitionsDPU(t *testing.T) {
	coarse := DefaultSTL(core.Coarse7)
	fine := DefaultSTL(core.Fine13)
	var dpuSum int64
	for f := units.FineDPUDecode; f < units.NumFine; f++ {
		dpuSum += fine[f]
	}
	if dpuSum != coarse[units.DPU] {
		t.Fatalf("DPU constituents sum to %d, want %d (Section V-D: the DPU STL is broken into its 7 constituents)",
			dpuSum, coarse[units.DPU])
	}
	// Non-DPU units keep their coarse latencies.
	pairs := [][2]int64{
		{fine[units.FinePFU], coarse[units.PFU]},
		{fine[units.FineIMC], coarse[units.IMC]},
		{fine[units.FineLSU], coarse[units.LSU]},
		{fine[units.FineDMC], coarse[units.DMC]},
		{fine[units.FineBIU], coarse[units.BIU]},
		{fine[units.FineSCU], coarse[units.SCU]},
	}
	for i, p := range pairs {
		if p[0] != p[1] {
			t.Fatalf("pair %d: fine %d != coarse %d", i, p[0], p[1])
		}
	}
}

func TestScanAccounting(t *testing.T) {
	cfg := testConfig(core.Coarse7)
	order := []uint8{uint8(units.BIU), uint8(units.DPU), uint8(units.PFU)}
	cycles, tested := cfg.scan(order, int(units.DPU))
	if tested != 2 {
		t.Fatalf("tested %d, want 2", tested)
	}
	if want := cfg.STL[units.BIU] + cfg.STL[units.DPU]; cycles != want {
		t.Fatalf("cycles %d, want %d", cycles, want)
	}
}

func TestBaselineHardError(t *testing.T) {
	cfg := testConfig(core.Coarse7)
	m := NewBaseAscending(cfg)
	rng := rand.New(rand.NewSource(1))
	// base-ascending order: BIU(25k) IMC(45k) DMC(50k) PFU(60k) LSU(90k)
	// SCU(200k) DPU(700k).
	res := m.React(hardRec(units.FineDMC, 1), rng)
	if res.UnitsTested != 3 {
		t.Fatalf("tested %d units, want 3", res.UnitsTested)
	}
	if want := int64(25_000 + 45_000 + 50_000); res.Cycles != want {
		t.Fatalf("LERT %d, want %d", res.Cycles, want)
	}
	if !res.SBISTRun {
		t.Fatal("SBIST should run")
	}
}

func TestBaselineSoftError(t *testing.T) {
	cfg := testConfig(core.Coarse7)
	m := NewBaseAscending(cfg)
	rng := rand.New(rand.NewSource(1))
	res := m.React(softRec(units.FinePFU, 1), rng)
	if want := cfg.allSTL() + 5000; res.Cycles != want {
		t.Fatalf("soft LERT %d, want all STLs + restart = %d", res.Cycles, want)
	}
	if res.UnitsTested != 7 {
		t.Fatalf("soft error should test all units, got %d", res.UnitsTested)
	}
}

func TestBaseRandomAlwaysFinds(t *testing.T) {
	cfg := testConfig(core.Fine13)
	m := BaseRandom{Cfg: cfg}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		fine := units.Fine(rng.Intn(units.NumFine))
		res := m.React(hardRec(fine, 1), rng)
		if res.UnitsTested < 1 || res.UnitsTested > 13 {
			t.Fatalf("tested %d units", res.UnitsTested)
		}
		if res.Cycles < cfg.STL[fine] {
			t.Fatalf("LERT %d below the faulty unit's own STL", res.Cycles)
		}
	}
}

func TestBaseManifestOrdering(t *testing.T) {
	cfg := testConfig(core.Coarse7)
	// Training data: LSU manifests at 100%, PFU at 50%, others never.
	train := &dataset.Dataset{}
	for i := 0; i < 10; i++ {
		train.Records = append(train.Records, hardRec(units.FineLSU, 1))
	}
	for i := 0; i < 5; i++ {
		train.Records = append(train.Records, hardRec(units.FinePFU, 1))
		r := hardRec(units.FinePFU, 0)
		r.Detected = false
		train.Records = append(train.Records, r)
	}
	m := NewBaseManifest(cfg, train)
	if m.order[0] != uint8(units.LSU) || m.order[1] != uint8(units.PFU) {
		t.Fatalf("order %v, want LSU then PFU first", m.order)
	}
}

func trainedTable(t *testing.T) *core.Table {
	t.Helper()
	d := &dataset.Dataset{}
	// Set 1<<u belongs to unit u; softs in set 0b1000000000 only.
	fines := []units.Fine{units.FinePFU, units.FineIMC, units.FineLSU,
		units.FineDMC, units.FineBIU, units.FineSCU, units.FineDPUALU}
	for u, f := range fines {
		for i := 0; i < 6; i++ {
			d.Records = append(d.Records, hardRec(f, 1<<uint(u+1)))
		}
	}
	for i := 0; i < 6; i++ {
		d.Records = append(d.Records, softRec(units.FinePFU, 1<<20))
	}
	return core.Train(d, core.Coarse7, 0)
}

func TestPredLocationOnly(t *testing.T) {
	cfg := testConfig(core.Coarse7)
	table := trainedTable(t)
	m := PredLocationOnly{Cfg: cfg, Table: table}
	rng := rand.New(rand.NewSource(3))
	// Known hard signature: predicted unit first, one STL + table access.
	r := hardRec(units.FineLSU, 1<<3)
	res := m.React(r, rng)
	if res.UnitsTested != 1 {
		t.Fatalf("tested %d, want 1", res.UnitsTested)
	}
	if want := cfg.TableAccess + cfg.STL[units.LSU]; res.Cycles != want {
		t.Fatalf("LERT %d, want %d", res.Cycles, want)
	}
}

func TestPredCombSoftSkipsSBIST(t *testing.T) {
	cfg := testConfig(core.Coarse7)
	table := trainedTable(t)
	m := PredComb{Cfg: cfg, Table: table}
	rng := rand.New(rand.NewSource(4))
	res := m.React(softRec(units.FinePFU, 1<<20), rng)
	if res.SBISTRun {
		t.Fatal("correctly predicted soft error must skip SBIST")
	}
	if res.UnitsTested != 0 {
		t.Fatalf("tested %d units, want 0", res.UnitsTested)
	}
	if want := cfg.TableAccess + 5000; res.Cycles != want {
		t.Fatalf("LERT %d, want table access + restart = %d", res.Cycles, want)
	}
}

func TestPredCombMispredictedHard(t *testing.T) {
	cfg := testConfig(core.Coarse7)
	table := trainedTable(t)
	m := PredComb{Cfg: cfg, Table: table}
	rng := rand.New(rand.NewSource(5))
	// A hard error that produces the soft-looking signature: predicted
	// soft, recurs, then diagnosed in the predicted order.
	r := hardRec(units.FinePFU, 1<<20)
	res := m.React(r, rng)
	if !res.SBISTRun {
		t.Fatal("second error must trigger SBIST")
	}
	// Accounting: access + restart + access + scan-to-PFU. The entry for
	// 1<<20 was trained on PFU records, so PFU is first.
	if want := cfg.TableAccess + 5000 + cfg.TableAccess + cfg.STL[units.PFU]; res.Cycles != want {
		t.Fatalf("LERT %d, want %d", res.Cycles, want)
	}
}

// TestPredCombNeverWorseThanWorstCase: the paper's safety argument — the
// combined model's LERT never exceeds the provisioned worst case (all
// STLs + restart + bounded table accesses).
func TestPredCombNeverWorseThanWorstCase(t *testing.T) {
	cfg := testConfig(core.Coarse7)
	table := trainedTable(t)
	m := PredComb{Cfg: cfg, Table: table}
	rng := rand.New(rand.NewSource(6))
	worst := cfg.allSTL() + 5000 + 2*cfg.TableAccess
	for i := 0; i < 500; i++ {
		fine := units.Fine(rng.Intn(units.NumFine))
		var r dataset.Record
		if rng.Intn(2) == 0 {
			r = hardRec(fine, rng.Uint64()%64)
		} else {
			r = softRec(fine, rng.Uint64()%64)
		}
		res := m.React(r, rng)
		if res.Cycles > worst {
			t.Fatalf("LERT %d exceeds worst case %d for %+v", res.Cycles, worst, r)
		}
	}
}

func TestEvaluateAggregates(t *testing.T) {
	cfg := testConfig(core.Coarse7)
	table := trainedTable(t)
	test := &dataset.Dataset{}
	test.Records = append(test.Records,
		hardRec(units.FineLSU, 1<<3),
		softRec(units.FinePFU, 1<<20),
		dataset.Record{Kernel: "k", Detected: false}, // skipped
	)
	e := Evaluate(PredComb{Cfg: cfg, Table: table}, test, 1)
	if e.N != 2 {
		t.Fatalf("N = %d, want 2", e.N)
	}
	if e.SBISTShare != 0.5 {
		t.Fatalf("SBIST share %v, want 0.5", e.SBISTShare)
	}
	if e.Model != "pred-comb" {
		t.Fatalf("model name %q", e.Model)
	}
	wantMean := float64(cfg.TableAccess+cfg.STL[units.LSU]+cfg.TableAccess+5000) / 2
	if e.MeanLERT != wantMean {
		t.Fatalf("mean LERT %v, want %v", e.MeanLERT, wantMean)
	}
}

func TestRestartFallback(t *testing.T) {
	cfg := testConfig(core.Coarse7)
	if cfg.RestartOf("unknown-kernel") != 10_000 {
		t.Fatal("fallback restart should be the paper's 10k mean")
	}
	if cfg.RestartOf("k") != 5000 {
		t.Fatal("known kernel restart wrong")
	}
}

func TestPredDynamicLearnsOnline(t *testing.T) {
	cfg := testConfig(core.Coarse7)
	m := PredDynamic{Cfg: cfg, Dyn: core.NewDynamic(core.Coarse7)}
	rng := rand.New(rand.NewSource(7))
	r := hardRec(units.FineLSU, 0b1010)
	first := m.React(r, rng)
	// After observing the same signature repeatedly, the predictor should
	// place LSU first and the reaction should shrink.
	for i := 0; i < 10; i++ {
		m.React(r, rng)
	}
	last := m.React(r, rng)
	if last.Cycles > first.Cycles {
		t.Fatalf("dynamic predictor did not improve: %d -> %d", first.Cycles, last.Cycles)
	}
	if last.UnitsTested != 1 {
		t.Fatalf("converged dynamic predictor tests %d units", last.UnitsTested)
	}
}

func TestLBISTLatencies(t *testing.T) {
	for _, gran := range []core.Granularity{core.Coarse7, core.Fine13} {
		lat := LBISTLatencies(gran)
		if len(lat) != gran.Units() {
			t.Fatalf("%v: %d latencies", gran, len(lat))
		}
		for u, l := range lat {
			if l <= 0 {
				t.Fatalf("%v unit %d: latency %d", gran, u, l)
			}
		}
	}
	coarse := LBISTLatencies(core.Coarse7)
	// The DPU has the most flops, so the longest scan session.
	maxU, maxL := 0, int64(0)
	for u, l := range coarse {
		if l > maxL {
			maxU, maxL = u, l
		}
	}
	if units.Unit(maxU) != units.DPU && units.Unit(maxU) != units.SCU {
		t.Fatalf("largest LBIST session in %v; want DPU or SCU (most flops)", units.Unit(maxU))
	}
}

func TestLBISTConfigWorksWithModels(t *testing.T) {
	cfg := NewLBISTConfig(core.Coarse7, map[string]int64{"k": 5000}, OffChipTableAccess)
	table := trainedTable(t)
	rng := rand.New(rand.NewSource(8))
	base := NewBaseAscending(cfg).React(hardRec(units.FineDPUALU, 1<<7), rng)
	pred := PredLocationOnly{Cfg: cfg, Table: table}.React(hardRec(units.FineDPUALU, 1<<7), rng)
	if pred.Cycles >= base.Cycles {
		t.Fatalf("LBIST prediction (%d) should beat ascending order (%d) for a DPU fault",
			pred.Cycles, base.Cycles)
	}
}
