package sbist

import (
	"lockstep/internal/core"
	"lockstep/internal/cpu"
	"lockstep/internal/units"
)

// LBIST support. Section III of the paper notes the predictor serves both
// BIST styles: an LBIST controller "can constrain the test search space to
// the scan chains relevant to the predicted CPU units". Modelling-wise,
// LBIST diagnosis per unit costs patterns x (scan chain length + capture),
// where the chain length is that unit's flop count — which this repository
// knows exactly, from the fault-injection registry.
//
// The baseline and prediction Models are latency-agnostic, so LBIST reuse
// is just a Config with LBIST latencies: the same five orderings apply to
// scan-chain groups instead of software test libraries.

// LBISTPatterns is the pseudo-random pattern count applied per unit's
// chain group (a typical production LBIST session applies hundreds to
// thousands of patterns).
const LBISTPatterns = 512

// LBISTCaptureOverhead is the per-pattern capture/compare overhead in
// cycles on top of the scan shift.
const LBISTCaptureOverhead = 8

// LBISTLatencies derives per-unit LBIST diagnosis latencies from the CPU's
// actual per-unit flip-flop counts.
func LBISTLatencies(gran core.Granularity) []int64 {
	n := gran.Units()
	out := make([]int64, n)
	for u := 0; u < n; u++ {
		var flops int
		if gran == core.Fine13 {
			flops = cpu.FineFlops(units.Fine(u))
		} else {
			flops = cpu.UnitFlops(units.Unit(u))
		}
		out[u] = int64(LBISTPatterns) * int64(flops+LBISTCaptureOverhead)
	}
	return out
}

// NewLBISTConfig builds a Config whose unit latencies model LBIST
// scan-chain sessions instead of software test libraries.
func NewLBISTConfig(gran core.Granularity, restart map[string]int64, tableAccess int64) Config {
	return Config{Gran: gran, STL: LBISTLatencies(gran), Restart: restart, TableAccess: tableAccess}
}
