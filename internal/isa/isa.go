// Package isa defines SR32, the 32-bit RISC instruction set executed by the
// SR5 CPU model. SR32 is a small fixed-width ISA in the spirit of the
// embedded cores used in safety-critical ECUs: 16 general-purpose registers,
// two-operand ALU instructions, register-relative loads/stores, compare-and-
// branch instructions, and a handful of system instructions.
//
// Encoding (32 bits, big fields first):
//
//	R-type:  op[31:26] rd[25:22] rs1[21:18] rs2[17:14] zero[13:0]
//	I-type:  op[31:26] rd[25:22] rs1[21:18] imm18[17:0]   (sign-extended)
//	B-type:  op[31:26] rs1[25:22] rs2[21:18] imm18[17:0]  (instr offset)
//	J-type:  op[31:26] rd[25:22] imm22[21:0]              (instr offset)
//	U-type:  op[31:26] rd[25:22] imm22[21:0]              (value << 10)
//
// Branch and jump offsets are counted in instructions (4-byte units)
// relative to the instruction following the branch.
package isa

import "fmt"

// NumRegs is the number of architectural general-purpose registers.
// R0 is hardwired to zero; writes to it are discarded.
const NumRegs = 16

// WordBytes is the architectural word size in bytes.
const WordBytes = 4

// Op is an SR32 opcode.
type Op uint8

// Opcode space. The zero value is OpInvalid so that uninitialised
// instruction words decode to an illegal instruction rather than a NOP.
const (
	OpInvalid Op = iota

	// R-type ALU.
	OpADD
	OpSUB
	OpAND
	OpOR
	OpXOR
	OpSLL
	OpSRL
	OpSRA
	OpSLT
	OpSLTU
	OpMUL
	OpMULH
	OpDIV
	OpREM

	// I-type ALU.
	OpADDI
	OpANDI
	OpORI
	OpXORI
	OpSLTI
	OpSLLI
	OpSRLI
	OpSRAI

	// U-type.
	OpLUI

	// Loads (I-type: rd <- mem[rs1+imm]).
	OpLW
	OpLH
	OpLHU
	OpLB
	OpLBU

	// Stores (B-type field layout: mem[rs1+imm] <- rs2).
	OpSW
	OpSH
	OpSB

	// Branches (B-type).
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLTU
	OpBGEU

	// Jumps.
	OpJAL  // J-type: rd <- pc+4; pc <- pc+4+imm*4
	OpJALR // I-type: rd <- pc+4; pc <- (rs1+imm*4)

	// System.
	OpRDCYC // I-type, rd <- cycle counter (low 32 bits); rs1/imm ignored
	OpHALT  // stops the CPU; outputs quiesce

	opMax
)

var opNames = [...]string{
	OpInvalid: "invalid",
	OpADD:     "add", OpSUB: "sub", OpAND: "and", OpOR: "or", OpXOR: "xor",
	OpSLL: "sll", OpSRL: "srl", OpSRA: "sra", OpSLT: "slt", OpSLTU: "sltu",
	OpMUL: "mul", OpMULH: "mulh", OpDIV: "div", OpREM: "rem",
	OpADDI: "addi", OpANDI: "andi", OpORI: "ori", OpXORI: "xori",
	OpSLTI: "slti", OpSLLI: "slli", OpSRLI: "srli", OpSRAI: "srai",
	OpLUI: "lui",
	OpLW:  "lw", OpLH: "lh", OpLHU: "lhu", OpLB: "lb", OpLBU: "lbu",
	OpSW: "sw", OpSH: "sh", OpSB: "sb",
	OpBEQ: "beq", OpBNE: "bne", OpBLT: "blt", OpBGE: "bge",
	OpBLTU: "bltu", OpBGEU: "bgeu",
	OpJAL: "jal", OpJALR: "jalr",
	OpRDCYC: "rdcyc", OpHALT: "halt",
}

// String returns the assembler mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o > OpInvalid && o < opMax }

// Format describes the field layout of an opcode.
type Format uint8

// Instruction formats.
const (
	FormatR Format = iota // rd, rs1, rs2
	FormatI               // rd, rs1, imm18
	FormatB               // rs1, rs2, imm18
	FormatJ               // rd, imm22
	FormatU               // rd, imm22
	FormatN               // no operands (HALT)
)

// FormatOf returns the encoding format used by op.
func FormatOf(op Op) Format {
	switch op {
	case OpADD, OpSUB, OpAND, OpOR, OpXOR, OpSLL, OpSRL, OpSRA,
		OpSLT, OpSLTU, OpMUL, OpMULH, OpDIV, OpREM:
		return FormatR
	case OpADDI, OpANDI, OpORI, OpXORI, OpSLTI, OpSLLI, OpSRLI, OpSRAI,
		OpLW, OpLH, OpLHU, OpLB, OpLBU, OpJALR, OpRDCYC:
		return FormatI
	case OpSW, OpSH, OpSB, OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		return FormatB
	case OpJAL:
		return FormatJ
	case OpLUI:
		return FormatU
	case OpHALT:
		return FormatN
	default:
		return FormatN
	}
}

// IsLoad reports whether op reads data memory.
func IsLoad(op Op) bool {
	switch op {
	case OpLW, OpLH, OpLHU, OpLB, OpLBU:
		return true
	}
	return false
}

// IsStore reports whether op writes data memory.
func IsStore(op Op) bool {
	switch op {
	case OpSW, OpSH, OpSB:
		return true
	}
	return false
}

// IsBranch reports whether op is a conditional branch.
func IsBranch(op Op) bool {
	switch op {
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		return true
	}
	return false
}

// IsJump reports whether op unconditionally redirects the PC.
func IsJump(op Op) bool { return op == OpJAL || op == OpJALR }

// WritesReg reports whether op writes a destination register.
func WritesReg(op Op) bool {
	switch FormatOf(op) {
	case FormatR, FormatI, FormatJ, FormatU:
		return !IsStore(op) // stores use FormatB so this is always true here
	}
	return false
}

// MemBytes returns the access width in bytes for a load or store opcode,
// and zero for other opcodes.
func MemBytes(op Op) uint32 {
	switch op {
	case OpLW, OpSW:
		return 4
	case OpLH, OpLHU, OpSH:
		return 2
	case OpLB, OpLBU, OpSB:
		return 1
	}
	return 0
}

// Immediate field limits.
const (
	Imm18Min  = -(1 << 17)
	Imm18Max  = 1<<17 - 1
	Imm22Min  = -(1 << 21)
	Imm22Max  = 1<<21 - 1
	UImm22Max = 1<<22 - 1
)

// Instr is a decoded SR32 instruction.
type Instr struct {
	Op  Op
	Rd  uint8 // destination register (R/I/J/U)
	Rs1 uint8 // first source register (R/I/B)
	Rs2 uint8 // second source register (R/B)
	Imm int32 // sign-extended immediate (I/B/J); U holds imm<<10 as int32
}

// Encode packs the instruction into its 32-bit machine word.
// Field values outside their encodable range are truncated; use the
// assembler for range checking.
func Encode(in Instr) uint32 {
	w := uint32(in.Op) << 26
	switch FormatOf(in.Op) {
	case FormatR:
		w |= uint32(in.Rd&0xF) << 22
		w |= uint32(in.Rs1&0xF) << 18
		w |= uint32(in.Rs2&0xF) << 14
	case FormatI:
		w |= uint32(in.Rd&0xF) << 22
		w |= uint32(in.Rs1&0xF) << 18
		w |= uint32(in.Imm) & 0x3FFFF
	case FormatB:
		w |= uint32(in.Rs1&0xF) << 22
		w |= uint32(in.Rs2&0xF) << 18
		w |= uint32(in.Imm) & 0x3FFFF
	case FormatJ:
		w |= uint32(in.Rd&0xF) << 22
		w |= uint32(in.Imm) & 0x3FFFFF
	case FormatU:
		w |= uint32(in.Rd&0xF) << 22
		w |= (uint32(in.Imm) >> 10) & 0x3FFFFF
	case FormatN:
		// opcode only
	}
	return w
}

// Decode unpacks a 32-bit machine word. Words whose opcode field is not a
// defined opcode decode to an Instr with Op == OpInvalid; the CPU raises an
// illegal-instruction exception for those.
func Decode(w uint32) Instr {
	op := Op(w >> 26)
	if !op.Valid() {
		return Instr{Op: OpInvalid}
	}
	in := Instr{Op: op}
	switch FormatOf(op) {
	case FormatR:
		in.Rd = uint8(w >> 22 & 0xF)
		in.Rs1 = uint8(w >> 18 & 0xF)
		in.Rs2 = uint8(w >> 14 & 0xF)
	case FormatI:
		in.Rd = uint8(w >> 22 & 0xF)
		in.Rs1 = uint8(w >> 18 & 0xF)
		in.Imm = signExtend18(w)
	case FormatB:
		in.Rs1 = uint8(w >> 22 & 0xF)
		in.Rs2 = uint8(w >> 18 & 0xF)
		in.Imm = signExtend18(w)
	case FormatJ:
		in.Rd = uint8(w >> 22 & 0xF)
		in.Imm = signExtend22(w)
	case FormatU:
		in.Rd = uint8(w >> 22 & 0xF)
		in.Imm = int32(w & 0x3FFFFF << 10)
	}
	return in
}

func signExtend18(w uint32) int32 {
	return int32(w<<14) >> 14
}

func signExtend22(w uint32) int32 {
	return int32(w<<10) >> 10
}

// Disassemble renders the instruction in assembler syntax.
func Disassemble(in Instr) string {
	switch FormatOf(in.Op) {
	case FormatR:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs1, in.Rs2)
	case FormatI:
		if IsLoad(in.Op) {
			return fmt.Sprintf("%s r%d, %d(r%d)", in.Op, in.Rd, in.Imm, in.Rs1)
		}
		if in.Op == OpJALR {
			return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs1, in.Imm)
		}
		if in.Op == OpRDCYC {
			return fmt.Sprintf("%s r%d", in.Op, in.Rd)
		}
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	case FormatB:
		if IsStore(in.Op) {
			return fmt.Sprintf("%s r%d, %d(r%d)", in.Op, in.Rs2, in.Imm, in.Rs1)
		}
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rs1, in.Rs2, in.Imm)
	case FormatJ:
		return fmt.Sprintf("%s r%d, %d", in.Op, in.Rd, in.Imm)
	case FormatU:
		return fmt.Sprintf("%s r%d, 0x%x", in.Op, in.Rd, uint32(in.Imm)>>10)
	default:
		return in.Op.String()
	}
}
