package isa

import (
	"testing"
	"testing/quick"
)

// TestEncodeDecodeRoundTrip is a property test: any well-formed instruction
// survives an encode/decode round trip with its fields canonicalised to the
// format's encodable ranges.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(opRaw, rd, rs1, rs2 uint8, imm int32) bool {
		op := Op(opRaw%uint8(opMax-1) + 1) // valid opcodes only
		in := Instr{Op: op, Rd: rd & 0xF, Rs1: rs1 & 0xF, Rs2: rs2 & 0xF}
		switch FormatOf(op) {
		case FormatR:
			// no immediate
		case FormatI, FormatB:
			in.Imm = imm << 14 >> 14 // clamp to 18-bit signed
		case FormatJ:
			in.Imm = imm << 10 >> 10 // clamp to 22-bit signed
		case FormatU:
			in.Imm = imm &^ 0x3FF // low 10 bits not representable
		case FormatN:
			in.Rd, in.Rs1, in.Rs2 = 0, 0, 0
		}
		// Fields not carried by the format are not preserved.
		switch FormatOf(op) {
		case FormatI:
			in.Rs2 = 0
		case FormatB:
			in.Rd = 0
		case FormatJ, FormatU:
			in.Rs1, in.Rs2 = 0, 0
		}
		got := Decode(Encode(in))
		return got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeInvalidOpcode(t *testing.T) {
	for _, w := range []uint32{
		0x0000_0000,                   // opcode 0
		uint32(opMax) << 26,           // first undefined
		0xFFFF_FFFF,                   // all ones
		uint32(opMax+5)<<26 | 0x12345, // undefined with junk fields
	} {
		if in := Decode(w); in.Op != OpInvalid {
			t.Errorf("Decode(%#x).Op = %v, want OpInvalid", w, in.Op)
		}
	}
}

func TestSignExtension(t *testing.T) {
	// ADDI with most negative 18-bit immediate.
	in := Instr{Op: OpADDI, Rd: 1, Rs1: 2, Imm: Imm18Min}
	if got := Decode(Encode(in)); got.Imm != Imm18Min {
		t.Errorf("imm18 min: got %d", got.Imm)
	}
	in.Imm = Imm18Max
	if got := Decode(Encode(in)); got.Imm != Imm18Max {
		t.Errorf("imm18 max: got %d", got.Imm)
	}
	// JAL with 22-bit bounds.
	j := Instr{Op: OpJAL, Rd: 15, Imm: Imm22Min}
	if got := Decode(Encode(j)); got.Imm != Imm22Min {
		t.Errorf("imm22 min: got %d", got.Imm)
	}
	j.Imm = Imm22Max
	if got := Decode(Encode(j)); got.Imm != Imm22Max {
		t.Errorf("imm22 max: got %d", got.Imm)
	}
}

func TestLUIEncoding(t *testing.T) {
	v := uint32(0xDEADB000) &^ 0x3FF
	in := Instr{Op: OpLUI, Rd: 3, Imm: int32(v)}
	got := Decode(Encode(in))
	if uint32(got.Imm) != v {
		t.Errorf("lui imm: got %#x", uint32(got.Imm))
	}
}

func TestOpClassPredicates(t *testing.T) {
	loads := []Op{OpLW, OpLH, OpLHU, OpLB, OpLBU}
	stores := []Op{OpSW, OpSH, OpSB}
	branches := []Op{OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU}
	for op := OpInvalid + 1; op.Valid(); op++ {
		if IsLoad(op) != contains(loads, op) {
			t.Errorf("IsLoad(%v) wrong", op)
		}
		if IsStore(op) != contains(stores, op) {
			t.Errorf("IsStore(%v) wrong", op)
		}
		if IsBranch(op) != contains(branches, op) {
			t.Errorf("IsBranch(%v) wrong", op)
		}
		if IsJump(op) != (op == OpJAL || op == OpJALR) {
			t.Errorf("IsJump(%v) wrong", op)
		}
		if IsStore(op) && WritesReg(op) {
			t.Errorf("store %v claims to write a register", op)
		}
		if IsLoad(op) && !WritesReg(op) {
			t.Errorf("load %v claims not to write a register", op)
		}
	}
}

func TestMemBytes(t *testing.T) {
	cases := map[Op]uint32{
		OpLW: 4, OpSW: 4, OpLH: 2, OpLHU: 2, OpSH: 2,
		OpLB: 1, OpLBU: 1, OpSB: 1, OpADD: 0, OpBEQ: 0, OpHALT: 0,
	}
	for op, want := range cases {
		if got := MemBytes(op); got != want {
			t.Errorf("MemBytes(%v) = %d, want %d", op, got, want)
		}
	}
}

func TestOpStringUnique(t *testing.T) {
	seen := map[string]Op{}
	for op := OpInvalid + 1; op.Valid(); op++ {
		name := op.String()
		if name == "" || name == "invalid" {
			t.Errorf("op %d has no mnemonic", op)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("mnemonic %q used by both %d and %d", name, prev, op)
		}
		seen[name] = op
	}
}

func TestDisassembleSmoke(t *testing.T) {
	cases := map[string]Instr{
		"add r1, r2, r3":  {Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3},
		"addi r1, r2, -5": {Op: OpADDI, Rd: 1, Rs1: 2, Imm: -5},
		"lw r4, 16(r5)":   {Op: OpLW, Rd: 4, Rs1: 5, Imm: 16},
		"sw r4, -8(r5)":   {Op: OpSW, Rs2: 4, Rs1: 5, Imm: -8},
		"beq r1, r2, 12":  {Op: OpBEQ, Rs1: 1, Rs2: 2, Imm: 12},
		"jal r15, -3":     {Op: OpJAL, Rd: 15, Imm: -3},
		"jalr r0, r15, 0": {Op: OpJALR, Rd: 0, Rs1: 15},
		"rdcyc r7":        {Op: OpRDCYC, Rd: 7},
		"halt":            {Op: OpHALT},
		"lui r2, 0x12345": {Op: OpLUI, Rd: 2, Imm: int32(0x12345 << 10)},
	}
	for want, in := range cases {
		if got := Disassemble(in); got != want {
			t.Errorf("Disassemble(%+v) = %q, want %q", in, got, want)
		}
	}
}

func contains(ops []Op, op Op) bool {
	for _, o := range ops {
		if o == op {
			return true
		}
	}
	return false
}
