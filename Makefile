# CI entry points. `make ci` is the gate: vet, build, the full test suite
# under the race detector, the campaign determinism check (a serial vs
# workers=4 Small-scale campaign must be byte-identical, and the replay
# path must match the legacy dual-CPU oracle), the telemetry concurrency
# tests under -race, and the injection hot-path allocation guard.
GO ?= go

.PHONY: ci vet build test race determinism telemetry alloc cover bench bench-quick fuzz

ci: vet build race determinism telemetry alloc

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The campaign determinism contracts, explicitly and under -race: the
# sharded campaign must reproduce the serial dataset bit for bit, and the
# golden-trace replay path must reproduce the legacy dual-CPU oracle's
# outcomes bit for bit (per-experiment and as a whole campaign dataset).
determinism:
	$(GO) test -race -run 'TestWorkerCountInvariance|TestProgressMonotonic|TestConcurrentInjectMatchesSerial|TestReplayMatchesLegacyOracle|TestLegacyOracleDatasetIdentical|TestGoldenTraceSelfCheck' -count=1 \
		./internal/inject/ ./internal/lockstep/

# The telemetry layer's own contract, under -race: exact totals from
# NumCPU hammering goroutines, monotone histogram buckets, and
# byte-deterministic snapshots.
telemetry:
	$(GO) test -race -count=1 ./internal/telemetry/

# Coverage report with a per-package floor: internal/telemetry is the
# observability backbone and must stay >= 60% statement-covered.
cover:
	$(GO) test -coverprofile=cover.out ./...
	@$(GO) tool cover -func=cover.out | tail -n 1
	@pct=$$($(GO) test -cover ./internal/telemetry/ | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
	if [ -z "$$pct" ]; then echo "cover: could not measure internal/telemetry coverage"; exit 1; fi; \
	ok=$$(awk -v p="$$pct" 'BEGIN { print (p >= 60) ? 1 : 0 }'); \
	if [ "$$ok" != "1" ]; then echo "cover: internal/telemetry $$pct% below the 60% floor"; exit 1; fi; \
	echo "cover: internal/telemetry $$pct% (floor 60%)"

# Allocation regression guard for the injection hot path: steady-state
# Replayer.InjectW must perform zero heap allocations. Run without -race
# (the detector's instrumentation allocates; the test skips itself there).
alloc:
	$(GO) test -run 'TestInjectReplayZeroAlloc' -count=1 ./internal/lockstep/

bench:
	$(GO) test -bench=. -benchmem

# Quick perf check of the injection hot path: golden-trace replay vs the
# legacy dual-CPU oracle on the same mix (see BENCH_inject.json for the
# recorded trajectory).
bench-quick:
	$(GO) test -run '^$$' -bench 'BenchmarkInject(Replay|Legacy)$$' -benchmem -benchtime=200ms .

# Short fuzz pass over the campaign-log parser.
fuzz:
	$(GO) test -fuzz=FuzzReadCSV -fuzztime=30s ./internal/dataset/
